// mnsctl — operator CLI for snapshot-backed sessions (DESIGN.md §8).
//
// The paper's economy is "pay for structure once, reuse it everywhere";
// mnsctl makes "once" survive the process. It generates certificate-family
// instances, snapshots them, warm-builds the shortcut structure, runs any
// registered Session workload FROM a snapshot (a warmed snapshot solves
// with charged_construction_rounds == 0), and diffs RunReport / BENCH JSON
// documents field-by-field — the tool the CI bench-regression gate scripts
// against (`mnsctl diff --baseline`).
//
//   mnsctl gen --family planar --size 16 -o net.mns
//   mnsctl build net.mns --workload sssp.approx     # pay construction once
//   mnsctl solve net.mns --workload sssp.approx -o report.json
//   mnsctl inspect net.mns
//   mnsctl diff --baseline bench/baselines/session.json BENCH_session.json
//   mnsctl baseline BENCH_session.json -o bench/baselines/session.json
//
// Exit codes: 0 ok, 1 drift / verification failure, 2 usage or I/O error.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_instances.hpp"
#include "congest/session.hpp"
#include "gen/apex.hpp"
#include "gen/planar.hpp"
#include "io/fnv.hpp"
#include "io/json.hpp"
#include "io/report_json.hpp"
#include "io/snapshot.hpp"
#include "serve/query_server.hpp"
#include "transport/fault_injection.hpp"
#include "transport/socket_transport.hpp"

using namespace mns;

namespace {

constexpr const char* kUsage = R"(mnsctl — snapshot-backed CONGEST sessions
usage:
  mnsctl gen --family <planar|treewidth|apex|cliquesum> [--size N] [--seed S]
             -o <snapshot>
  mnsctl build <snapshot> [--workload W] [--threads T] [-o <snapshot>]
  mnsctl update <snapshot> --batch <edits.json> [-o <snapshot>]
  mnsctl solve <snapshot> --workload W [--partition <workload|ldd>]
               [--threads T] [--repeat K] [--cold] [-o report.json]
  mnsctl serve <snapshot> [--workload W] [--workers N] [--requests K]
               [--threads T] [-o responses.json]
  mnsctl dist <snapshot> --workload W [--ranks N] [--threads T]
              [--drop-rate P] [--dup-rate P] [--reorder-rate P]
              [--fault-seed S] [-o report.json]
  mnsctl inspect <snapshot>
  mnsctl diff [--baseline] <a.json> <b.json>
  mnsctl baseline <in.json> -o <out.json>

gen      builds a seeded family instance (graph + adversarial weights +
         structural certificate) and writes it as a snapshot.
build    restores a session, runs one workload to build + cache the shortcut
         structure, and re-saves the WARMED snapshot (construction is now
         paid; later solves from it charge 0 construction rounds).
update   applies a JSON edit batch to a warmed snapshot INCREMENTALLY
         (DESIGN.md §12): weight-only edits keep every cached shortcut,
         structural edits migrate clean entries and re-hang only broken
         tree subpaths; the updated snapshot is re-saved. The batch file is
         an object with any of: "set_weight": [{"u","v","weight"}],
         "insert_edges": [{"u","v","weight"?}], "remove_edges":
         [{"u","v"}], "remove_vertices": [id...], "add_vertices": N
         (insert endpoints >= n address the batch's new vertices).
solve    restores a session and runs a registered workload; prints the
         canonical RunReport JSON (io/report_json.hpp). --repeat K runs the
         workload K times through the same session (later runs hit the
         cache) and emits one wrapper document with all K reports.
         --partition ldd makes shortcut-backed workloads draw from the
         core's low-diameter decomposition (ONE cached shortcut shared by
         mst/mincut/sssp.approx; repeats charge 0 construction rounds).
serve    restores the snapshot into one shared SolverCore and fans K
         requests across N concurrent workers (serve::QueryServer,
         DESIGN.md §10); emits one response JSON line per request in
         request order (each tagged {"request": i, ...}), then a summary
         line with throughput (qps) and latency percentiles.
dist     restores the snapshot in N OS processes (rank 0 = this one, ranks
         1..N-1 forked) wired by acked UDP SocketTransports (DESIGN.md
         §11), solves the workload on every rank in lock-step, verifies all
         replicas produced the identical report (FNV digest all-gather),
         and emits rank 0's canonical RunReport — diffable against a
         single-process `mnsctl solve` report via `mnsctl diff --baseline`.
         --drop-rate/--dup-rate/--reorder-rate inject seeded faults into
         every rank's outbound datagrams.
inspect  prints a JSON summary of a snapshot's sections: file version,
         update history (v2), per-entry cache fingerprints in MRU order,
         and the estimated in-memory footprint of each section
         (graph/weights/certificate/tree/cache bytes; DESIGN.md §9).
diff     compares two JSON documents field-by-field. --baseline compares
         only fields present in <a> and skips nondeterministic ones
         (wall_ms*, wall_time_ms, hardware_concurrency, peak_rss_bytes,
         qps, and the transport delivery counters: retransmits,
         datagrams_*, acks_sent, faults_*) — the CI bench gate.
baseline strips the nondeterministic fields from a BENCH_*.json, producing
         a committable baseline (rounds/messages only survive).
)";

/// One space-separated line of the registered workload names, derived from
/// the registry itself (congest::builtin_workload_names()) so the usage text
/// can never go stale against the Session catalogue.
std::string workload_catalogue() {
  std::string out;
  for (const std::string& name : congest::builtin_workload_names()) {
    if (!out.empty()) out += ' ';
    out += name;
  }
  return out;
}

const std::string& usage_text() {
  static const std::string text = std::string(kUsage) +
                                  "registered workloads (--workload): " +
                                  workload_catalogue() + "\n";
  return text;
}

int usage_error(const char* msg) {
  std::fprintf(stderr, "mnsctl: %s\n%s", msg, usage_text().c_str());
  return 2;
}

// ------------------------------------------------------------ arg parsing --

struct Args {
  std::vector<std::string> positional;
  std::string family;
  std::string workload;
  std::string output;
  std::string batch;
  long long size = 0;
  std::optional<unsigned> seed;
  int threads = 0;
  long long repeat = 1;
  int workers = 1;
  long long requests = 8;
  std::string partition = "workload";
  bool cold = false;
  bool baseline = false;
  int ranks = 2;
  double drop_rate = 0.0;
  double dup_rate = 0.0;
  double reorder_rate = 0.0;
  long long fault_seed = 1;
};

/// Strict numeric flag parsing: a typo'd value must exit 2, never silently
/// become 0 (which would fall back to a default shape and "succeed").
bool parse_number(const char* flag, const char* v, long long min_value,
                  long long max_value, long long& out) {
  if (v == nullptr) return false;
  char* end = nullptr;
  const long long x = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0' || x < min_value || x > max_value) {
    std::fprintf(stderr, "mnsctl: %s: invalid value '%s'\n", flag, v);
    return false;
  }
  out = x;
  return true;
}

/// Same strictness for real-valued flags (fault probabilities).
bool parse_real(const char* flag, const char* v, double min_value,
                double max_value, double& out) {
  if (v == nullptr) return false;
  char* end = nullptr;
  const double x = std::strtod(v, &end);
  if (end == v || *end != '\0' || x < min_value || x > max_value) {
    std::fprintf(stderr, "mnsctl: %s: invalid value '%s'\n", flag, v);
    return false;
  }
  out = x;
  return true;
}

bool parse_args(int argc, char** argv, int first, Args& out) {
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "mnsctl: %s requires a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--family") {
      const char* v = value("--family");
      if (v == nullptr) return false;
      out.family = v;
    } else if (a == "--workload") {
      const char* v = value("--workload");
      if (v == nullptr) return false;
      out.workload = v;
    } else if (a == "-o" || a == "--output") {
      const char* v = value("-o");
      if (v == nullptr) return false;
      out.output = v;
    } else if (a == "--batch") {
      const char* v = value("--batch");
      if (v == nullptr) return false;
      out.batch = v;
    } else if (a == "--size") {
      if (!parse_number("--size", value("--size"), 1, 1 << 24, out.size))
        return false;
    } else if (a == "--seed") {
      long long s = 0;
      if (!parse_number("--seed", value("--seed"), 0, 0xffffffffLL, s))
        return false;
      out.seed = static_cast<unsigned>(s);
    } else if (a == "--threads") {
      long long t = 0;
      if (!parse_number("--threads", value("--threads"), -1, 4096, t))
        return false;
      out.threads = static_cast<int>(t);
    } else if (a == "--repeat") {
      if (!parse_number("--repeat", value("--repeat"), 1, 1 << 20, out.repeat))
        return false;
    } else if (a == "--workers") {
      long long n = 0;
      if (!parse_number("--workers", value("--workers"), 1, 4096, n))
        return false;
      out.workers = static_cast<int>(n);
    } else if (a == "--requests") {
      if (!parse_number("--requests", value("--requests"), 1, 1 << 20,
                        out.requests))
        return false;
    } else if (a == "--ranks") {
      long long r = 0;
      if (!parse_number("--ranks", value("--ranks"), 1, 64, r)) return false;
      out.ranks = static_cast<int>(r);
    } else if (a == "--drop-rate") {
      if (!parse_real("--drop-rate", value("--drop-rate"), 0.0, 0.9,
                      out.drop_rate))
        return false;
    } else if (a == "--dup-rate") {
      if (!parse_real("--dup-rate", value("--dup-rate"), 0.0, 0.9,
                      out.dup_rate))
        return false;
    } else if (a == "--reorder-rate") {
      if (!parse_real("--reorder-rate", value("--reorder-rate"), 0.0, 0.9,
                      out.reorder_rate))
        return false;
    } else if (a == "--fault-seed") {
      if (!parse_number("--fault-seed", value("--fault-seed"), 1,
                        0x7fffffffffffffffLL, out.fault_seed))
        return false;
    } else if (a == "--partition") {
      const char* v = value("--partition");
      if (v == nullptr) return false;
      if (std::strcmp(v, "workload") != 0 && std::strcmp(v, "ldd") != 0) {
        std::fprintf(stderr,
                     "mnsctl: --partition: invalid value '%s' (workload|ldd)\n",
                     v);
        return false;
      }
      out.partition = v;
    } else if (a == "--cold") {
      out.cold = true;
    } else if (a == "--baseline") {
      out.baseline = true;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "mnsctl: unknown flag '%s'\n", a.c_str());
      return false;
    } else {
      out.positional.push_back(a);
    }
  }
  return true;
}

// ------------------------------------------------------------- instances --

/// Seeded family instance — the same generators and default seeds as
/// bench_session/bench_sssp, so snapshots reproduce the bench trajectories.
io::Snapshot gen_instance(const std::string& family, long long size,
                          std::optional<unsigned> seed) {
  io::Snapshot snap;
  if (family == "planar") {
    const int side = size > 0 ? static_cast<int>(size) : 16;
    Rng rng(seed.value_or(static_cast<unsigned>(side)));
    // grid_graph streams edges straight into the builder (no embedding
    // rotations materialized) — same graph, half the generation peak.
    snap.graph = gen::grid_graph(side, side);
    snap.weights = bench::dfs_light_weights(snap.graph, rng);
    snap.certificate = greedy_certificate();
  } else if (family == "treewidth") {
    const VertexId n = size > 0 ? static_cast<VertexId>(size) : 256;
    Rng rng(seed.value_or(static_cast<unsigned>(n)));
    bench::HubbedKPath kt = bench::hubbed_kpath(n, 3);
    snap.graph = std::move(kt.graph);
    snap.weights = bench::spine_light_weights(snap.graph, n, rng);
    snap.certificate = treewidth_certificate(std::move(kt.decomposition));
  } else if (family == "apex") {
    const int side = size > 0 ? static_cast<int>(size) : 16;
    Rng rng(seed.value_or(static_cast<unsigned>(100 + side)));
    gen::ApexResult ar =
        gen::add_apices(gen::grid(side, side).graph(), 1, 0.10, rng);
    snap.graph = std::move(ar.graph);
    snap.weights = bench::dfs_light_weights(snap.graph, rng);
    snap.certificate = apex_certificate(ar.apices);
  } else if (family == "cliquesum") {
    const int bags = size > 0 ? static_cast<int>(size) : 4;
    Rng rng(seed.value_or(static_cast<unsigned>(bags)));
    bench::ApexChain chain = bench::apexed_chain_cliquesum(bags, rng);
    snap.certificate = bench::apex_chain_certificate(chain);
    snap.graph = std::move(chain.graph);
    snap.weights = std::move(chain.weights);
  } else {
    throw std::invalid_argument("unknown family '" + family +
                                "' (planar|treewidth|apex|cliquesum)");
  }
  return snap;
}

/// The deterministic parameter set every mnsctl run (and the bench rows it
/// is diffed against) uses: source-independent Voronoi cells so a warmed
/// snapshot's partitions are the ones a later solve asks for.
congest::Session::WorkloadParams default_params(const Graph& g,
                                                std::vector<Weight> weights) {
  congest::Session::WorkloadParams p;
  p.weights = std::move(weights);
  p.num_trees = 6;
  p.epsilon = 0.25;
  p.num_seeds = std::max<VertexId>(
      8, static_cast<VertexId>(
             std::sqrt(static_cast<double>(g.num_vertices()))) / 8);
  p.repartition_growth = 1.0;
  p.wavefront_seeds = false;
  return p;
}

// ------------------------------------------------------------ subcommands --

int cmd_gen(const Args& args) {
  if (args.family.empty()) return usage_error("gen requires --family");
  if (args.output.empty()) return usage_error("gen requires -o <snapshot>");
  io::Snapshot snap = gen_instance(args.family, args.size, args.seed);
  io::write_snapshot(snap, args.output);
  std::printf(
      "{\"command\": \"gen\", \"family\": %s, \"vertices\": %d, "
      "\"edges\": %d, \"snapshot\": %s}\n",
      io::json_quote(args.family).c_str(), snap.graph.num_vertices(),
      snap.graph.num_edges(), io::json_quote(args.output).c_str());
  return 0;
}

int cmd_build(const Args& args) {
  if (args.positional.empty()) return usage_error("build requires <snapshot>");
  const std::string& path = args.positional[0];
  const std::string out = args.output.empty() ? path : args.output;
  const std::string workload =
      args.workload.empty() ? "sssp.approx" : args.workload;

  io::Snapshot snap = io::read_snapshot(path);
  std::vector<Weight> weights = snap.weights;
  congest::Session session = congest::Session::restore(std::move(snap));
  congest::Session::WorkloadParams params =
      default_params(session.graph(), weights);
  congest::SolveOptions opt;
  opt.threads = args.threads;
  congest::RunReport report = session.solve(workload, params, opt);
  session.save(out, std::move(weights));
  std::printf(
      "{\"command\": \"build\", \"workload\": %s, "
      "\"charged_construction_rounds\": %lld, \"rounds\": %lld, "
      "\"cached_shortcuts\": %zu, \"snapshot\": %s}\n",
      io::json_quote(workload).c_str(), report.charged_construction_rounds,
      report.rounds, session.cache_size(), io::json_quote(out).c_str());
  return 0;
}

// ------------------------------------------------------------------ update --

io::JsonValue parse_file(const std::string& path);  // defined with diff below

/// Endpoint-addressed edge lookup: batch files name edges {u, v}, never raw
/// edge ids (ids are an artifact of CSR order and change across updates).
EdgeId resolve_edge(const Graph& g, long long u, long long v,
                    const char* what) {
  if (u < 0 || u >= g.num_vertices() || v < 0 || v >= g.num_vertices())
    throw std::invalid_argument(std::string("update: ") + what +
                                " endpoint out of range");
  const EdgeId e = g.find_edge(static_cast<VertexId>(u),
                               static_cast<VertexId>(v));
  if (e == kInvalidEdge)
    throw std::invalid_argument(std::string("update: ") + what + " edge {" +
                                std::to_string(u) + ", " + std::to_string(v) +
                                "} not in the graph");
  return e;
}

long long batch_int(const io::JsonValue& obj, const char* key,
                    const char* what, bool required, long long fallback) {
  const io::JsonValue* v = obj.find(key);
  if (v == nullptr) {
    if (required)
      throw std::invalid_argument(std::string("update: ") + what +
                                  " entry is missing '" + key + "'");
    return fallback;
  }
  if (v->kind != io::JsonValue::Kind::kNumber)
    throw std::invalid_argument(std::string("update: ") + what + " '" + key +
                                "' must be a number");
  return static_cast<long long>(v->number);
}

const std::vector<io::JsonValue>& batch_array(const io::JsonValue& v,
                                              const std::string& key) {
  if (v.kind != io::JsonValue::Kind::kArray)
    throw std::invalid_argument("update: '" + key + "' must be an array");
  return v.items;
}

/// Parses the documented edit-batch schema against the CURRENT graph.
UpdateBatch parse_batch(const io::JsonValue& doc, const Graph& g) {
  if (doc.kind != io::JsonValue::Kind::kObject)
    throw std::invalid_argument("update: batch document must be an object");
  UpdateBatch batch;
  for (const auto& [key, value] : doc.members) {
    if (key == "set_weight") {
      for (const io::JsonValue& item : batch_array(value, key))
        batch.weight_changes.push_back(WeightChange{
            resolve_edge(g, batch_int(item, "u", "set_weight", true, 0),
                         batch_int(item, "v", "set_weight", true, 0),
                         "set_weight"),
            static_cast<Weight>(
                batch_int(item, "weight", "set_weight", true, 0))});
    } else if (key == "insert_edges") {
      // Endpoints live in the extended old id space: >= n addresses the
      // batch's own new vertices, so no graph-side validation here
      // (apply_delta bounds-checks against n + add_vertices).
      for (const io::JsonValue& item : batch_array(value, key))
        batch.insert_edges.push_back(EdgeInsert{
            static_cast<VertexId>(
                batch_int(item, "u", "insert_edges", true, 0)),
            static_cast<VertexId>(
                batch_int(item, "v", "insert_edges", true, 0)),
            static_cast<Weight>(
                batch_int(item, "weight", "insert_edges", false, 1))});
    } else if (key == "remove_edges") {
      for (const io::JsonValue& item : batch_array(value, key))
        batch.remove_edges.push_back(
            resolve_edge(g, batch_int(item, "u", "remove_edges", true, 0),
                         batch_int(item, "v", "remove_edges", true, 0),
                         "remove_edges"));
    } else if (key == "remove_vertices") {
      for (const io::JsonValue& item : batch_array(value, key)) {
        if (item.kind != io::JsonValue::Kind::kNumber)
          throw std::invalid_argument(
              "update: 'remove_vertices' entries must be numbers");
        batch.remove_vertices.push_back(
            static_cast<VertexId>(item.number));
      }
    } else if (key == "add_vertices") {
      if (value.kind != io::JsonValue::Kind::kNumber)
        throw std::invalid_argument("update: 'add_vertices' must be a number");
      batch.add_vertices = static_cast<VertexId>(value.number);
    } else {
      throw std::invalid_argument("update: unknown batch key '" + key + "'");
    }
  }
  return batch;
}

int cmd_update(const Args& args) {
  if (args.positional.empty()) return usage_error("update requires <snapshot>");
  if (args.batch.empty())
    return usage_error("update requires --batch <edits.json>");
  const std::string& path = args.positional[0];
  const std::string out = args.output.empty() ? path : args.output;

  io::Snapshot snap = io::read_snapshot(path);
  std::vector<Weight> weights = snap.weights;
  congest::Session session = congest::Session::restore(std::move(snap));
  const UpdateBatch batch = parse_batch(parse_file(args.batch),
                                        session.graph());

  const congest::UpdateStats stats = session.update(batch, &weights);
  session.save(out, std::move(weights));
  std::printf(
      "{\"command\": \"update\", \"snapshot\": %s, \"structural\": %s, "
      "\"vertices\": %d, \"edges\": %d, \"entries_kept\": %zu, "
      "\"entries_invalidated\": %zu, \"subpaths_rebuilt\": %zu, "
      "\"cached_shortcuts\": %zu}\n",
      io::json_quote(out).c_str(), stats.structural ? "true" : "false",
      session.graph().num_vertices(), session.graph().num_edges(),
      stats.entries_kept, stats.entries_invalidated, stats.subpaths_rebuilt,
      session.cache_size());
  return 0;
}

int cmd_solve(const Args& args) {
  if (args.positional.empty()) return usage_error("solve requires <snapshot>");
  if (args.workload.empty()) return usage_error("solve requires --workload");
  // Name check BEFORE the snapshot is read: a typo'd workload fails fast
  // with the registered catalogue, not after seconds of restore work.
  const std::vector<std::string>& names = congest::builtin_workload_names();
  if (std::find(names.begin(), names.end(), args.workload) == names.end()) {
    const std::string msg = "unknown workload '" + args.workload + "'";
    return usage_error(msg.c_str());
  }

  io::Snapshot snap = io::read_snapshot(args.positional[0]);
  std::vector<Weight> weights = snap.weights;
  congest::Session session = congest::Session::restore(std::move(snap));
  congest::Session::WorkloadParams params =
      default_params(session.graph(), std::move(weights));
  congest::SolveOptions opt;
  opt.threads = args.threads;
  opt.use_cache = !args.cold;
  if (args.partition == "ldd")
    opt.partition = congest::PartitionSource::kLdd;
  std::string json;
  if (args.repeat <= 1) {
    json = io::run_report_to_json(session.solve(args.workload, params, opt));
  } else {
    // K repeats through ONE session: the first run may build, the rest hit
    // the cache. The wrapper records the exercised knobs alongside all K
    // canonical reports.
    json = "{\"command\": \"solve\", \"workload\": " +
           io::json_quote(args.workload) +
           ", \"threads\": " + std::to_string(args.threads) +
           ", \"repeat\": " + std::to_string(args.repeat) + ", \"reports\": [";
    for (long long k = 0; k < args.repeat; ++k) {
      if (k) json += ", ";
      json += io::run_report_to_json(session.solve(args.workload, params, opt));
    }
    json += "]}";
  }
  if (args.output.empty()) {
    std::printf("%s\n", json.c_str());
    return 0;
  }
  std::ofstream f(args.output);
  f << json << '\n';
  f.close();
  if (!f) {
    std::fprintf(stderr, "mnsctl: cannot write '%s'\n", args.output.c_str());
    return 2;
  }
  return 0;
}

// ------------------------------------------------------------------ serve --

int cmd_serve(const Args& args) {
  if (args.positional.empty()) return usage_error("serve requires <snapshot>");
  const std::string workload =
      args.workload.empty() ? "sssp.approx" : args.workload;

  io::Snapshot snap = io::read_snapshot(args.positional[0]);
  std::vector<Weight> weights = snap.weights;
  serve::ServerConfig cfg;
  cfg.workers = args.workers;
  auto core = congest::SolverCore::restore(std::move(snap), cfg.core);
  serve::QueryServer server(core, cfg);

  const Graph& g = server.core().graph();
  congest::Session::WorkloadParams params =
      default_params(g, std::move(weights));
  std::vector<serve::Request> batch;
  batch.reserve(static_cast<std::size_t>(args.requests));
  const VertexId stride =
      g.num_vertices() / static_cast<VertexId>(
                             std::min<long long>(args.requests, 64)) +
      1;
  for (long long i = 0; i < args.requests; ++i) {
    serve::Request r;
    r.workload = workload;
    r.params = params;
    r.params.source =
        static_cast<VertexId>((static_cast<long long>(stride) * i) %
                              g.num_vertices());
    r.options.threads = args.threads;
    batch.push_back(std::move(r));
  }

  std::ofstream file;
  if (!args.output.empty()) {
    file.open(args.output);
    if (!file.good()) {
      std::fprintf(stderr, "mnsctl: cannot write '%s'\n", args.output.c_str());
      return 2;
    }
  }
  std::ostream* out = args.output.empty() ? nullptr : &file;

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<serve::Response> responses = server.serve(batch);
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  // Emit in REQUEST order (serve() indexes responses by request, but
  // completion order is scheduling-dependent), tagging each line with its
  // request index so consumers can join responses back to requests.
  long long errors = 0;
  std::vector<double> lat;
  lat.reserve(responses.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const serve::Response& r = responses[i];
    const std::string body = serve::response_to_json(r);
    const std::string line =
        "{\"request\": " + std::to_string(i) + ", " + body.substr(1);
    if (out != nullptr)
      *out << line << '\n';
    else
      std::printf("%s\n", line.c_str());
    if (!r.ok()) ++errors;
    lat.push_back(r.report.wall_ms);
  }
  std::sort(lat.begin(), lat.end());
  auto pct = [&](double p) {
    if (lat.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(lat.size() - 1) + 0.5);
    return lat[std::min(idx, lat.size() - 1)];
  };
  const double qps =
      wall_ms > 0.0
          ? static_cast<double>(responses.size()) * 1000.0 / wall_ms
          : 0.0;
  std::printf(
      "{\"command\": \"serve\", \"workload\": %s, \"workers\": %d, "
      "\"requests\": %zu, \"errors\": %lld, \"qps\": %.1f, "
      "\"p50_wall_ms\": %.3f, \"p99_wall_ms\": %.3f}\n",
      io::json_quote(workload).c_str(), args.workers, responses.size(),
      errors, qps, pct(0.50), pct(0.99));
  if (out != nullptr) {
    file.close();
    if (!file) {
      std::fprintf(stderr, "mnsctl: write error on '%s'\n",
                   args.output.c_str());
      return 2;
    }
  }
  return errors == 0 ? 0 : 1;
}

// ------------------------------------------------------------------- dist --

/// Decorrelates the per-rank fault adversaries (same derivation as
/// transport::make_loopback_cluster so `dist` and the loopback tests drive
/// identical fault laws for a given --fault-seed).
std::uint64_t fault_seed_for_rank(std::uint64_t seed, int rank) {
  const std::uint64_t s =
      seed ^ (0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(rank) + 1));
  return s == 0 ? 1 : s;
}

/// FNV digest of the canonical report JSON with the wall clock zeroed —
/// what the replicas all-gather to prove they computed the SAME answer.
std::uint64_t report_digest(congest::RunReport report) {
  report.wall_ms = 0.0;
  io::Fnv64 fnv;
  const std::string json = io::run_report_to_json(report);
  fnv.mix_bytes({reinterpret_cast<const std::uint8_t*>(json.data()),
                 json.size()});
  return fnv.value();
}

/// One rank's whole life: restore the replica, wire the transport, solve in
/// lock-step, cross-check digests, and (rank 0 only) emit the canonical
/// report. Runs in the parent (rank 0) or a forked child (ranks 1..N-1).
int run_dist_rank(const Args& args, const std::string& workload, int rank,
                  std::vector<std::unique_ptr<transport::UdpTransport>> sockets,
                  const std::vector<transport::PeerAddress>& peers) {
  io::Snapshot snap = io::read_snapshot(args.positional[0]);
  std::vector<Weight> weights = snap.weights;
  congest::Session session = congest::Session::restore(std::move(snap));

  sockets[static_cast<std::size_t>(rank)]->set_peers(peers);
  std::unique_ptr<transport::DatagramTransport> net =
      std::move(sockets[static_cast<std::size_t>(rank)]);
  sockets.clear();  // drop the other ranks' inherited sockets
  transport::FaultConfig faults;
  faults.drop_rate = args.drop_rate;
  faults.dup_rate = args.dup_rate;
  faults.reorder_rate = args.reorder_rate;
  if (faults.active()) {
    faults.seed = fault_seed_for_rank(
        static_cast<std::uint64_t>(args.fault_seed), rank);
    net = std::make_unique<transport::FaultInjectingTransport>(std::move(net),
                                                               faults);
  }
  transport::SocketTransportConfig cfg;
  cfg.rank = rank;
  cfg.ranks = args.ranks;
  transport::SocketTransport transport(session.graph(), cfg, std::move(net));

  // Handshake: every replica must have restored the same instance shape
  // before any round traffic flows.
  const std::uint64_t shape =
      (static_cast<std::uint64_t>(session.graph().num_vertices()) << 32) ^
      static_cast<std::uint64_t>(session.graph().num_edges());
  for (const std::uint64_t v : transport.all_gather(1, shape))
    if (v != shape) {
      std::fprintf(stderr,
                   "mnsctl dist rank %d: peers restored a different "
                   "instance (handshake mismatch)\n",
                   rank);
      return 2;
    }

  congest::Session::WorkloadParams params =
      default_params(session.graph(), std::move(weights));
  congest::SolveOptions opt;
  opt.threads = args.threads;
  session.set_transport(&transport);
  congest::RunReport report = session.solve(workload, params, opt);
  session.set_transport(nullptr);

  const std::uint64_t digest = report_digest(report);
  bool identical = true;
  for (const std::uint64_t v : transport.all_gather(2, digest))
    if (v != digest) identical = false;
  // Completion barrier: everyone learns everyone's verdict, so all ranks
  // agree on the exit code before the links go quiet.
  bool all_ok = identical;
  for (const std::uint64_t v :
       transport.all_gather(3, identical ? 1 : 0))
    if (v == 0) all_ok = false;
  transport.shutdown();
  if (!all_ok) {
    std::fprintf(stderr,
                 "mnsctl dist rank %d: replica reports diverged (digest "
                 "mismatch)\n",
                 rank);
    return 1;
  }
  if (rank != 0) return 0;

  // Rank 0 emits the canonical RunReport — the SAME document `mnsctl solve`
  // emits, so `mnsctl diff --baseline solve.json dist.json` gates parity.
  const std::string json = io::run_report_to_json(report);
  if (!args.output.empty()) {
    std::ofstream f(args.output);
    f << json << '\n';
    f.close();
    if (!f) {
      std::fprintf(stderr, "mnsctl: cannot write '%s'\n",
                   args.output.c_str());
      return 2;
    }
  } else {
    std::printf("%s\n", json.c_str());
  }
  const transport::TransportStats st = transport.stats();
  std::printf(
      "{\"command\": \"dist\", \"workload\": %s, \"ranks\": %d, "
      "\"rounds\": %lld, \"messages\": %lld, \"rounds_exchanged\": %lld, "
      "\"wire_records\": %lld, \"datagrams_sent\": %lld, "
      "\"retransmits\": %lld, \"replicas_identical\": true}\n",
      io::json_quote(workload).c_str(), args.ranks, report.rounds,
      report.messages, st.rounds_exchanged, st.wire_records,
      st.datagrams_sent, st.retransmits);
  return 0;
}

int cmd_dist(const Args& args) {
  if (args.positional.empty()) return usage_error("dist requires <snapshot>");
  if (args.workload.empty()) return usage_error("dist requires --workload");
  {
    // Probe the snapshot BEFORE forking: a bad path should fail once with
    // one message, not once per rank.
    std::ifstream probe(args.positional[0], std::ios::binary);
    if (!probe.good()) {
      std::fprintf(stderr, "mnsctl: cannot read '%s'\n",
                   args.positional[0].c_str());
      return 2;
    }
  }
  // Bind every rank's socket before forking, so the full port table is
  // known to every process without a rendezvous service.
  std::vector<std::unique_ptr<transport::UdpTransport>> sockets;
  std::vector<transport::PeerAddress> peers;
  sockets.reserve(static_cast<std::size_t>(args.ranks));
  peers.reserve(static_cast<std::size_t>(args.ranks));
  for (int r = 0; r < args.ranks; ++r) {
    sockets.push_back(
        std::make_unique<transport::UdpTransport>("127.0.0.1", 0));
    peers.push_back(transport::PeerAddress{"127.0.0.1",
                                           sockets.back()->port()});
  }
  const std::string workload = args.workload;
  std::vector<pid_t> children;
  children.reserve(static_cast<std::size_t>(args.ranks - 1));
  std::fflush(nullptr);  // nothing of the parent's buffers leaks into kids
  for (int r = 1; r < args.ranks; ++r) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::fprintf(stderr, "mnsctl dist: fork failed\n");
      for (const pid_t kid : children) ::kill(kid, SIGKILL);
      return 2;
    }
    if (pid == 0) {
      int rc = 2;
      try {
        rc = run_dist_rank(args, workload, r, std::move(sockets), peers);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "mnsctl dist rank %d: %s\n", r, e.what());
      }
      std::fflush(nullptr);
      std::_Exit(rc);  // no static destructors in the forked replica
    }
    children.push_back(pid);
  }
  int rc = 2;
  try {
    rc = run_dist_rank(args, workload, 0, std::move(sockets), peers);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mnsctl dist rank 0: %s\n", e.what());
  }
  for (const pid_t pid : children) {
    int status = 0;
    if (::waitpid(pid, &status, 0) < 0 || !WIFEXITED(status))
      rc = std::max(rc, 2);
    else
      rc = std::max(rc, WEXITSTATUS(status));
  }
  return rc;
}

/// Estimated heap bytes of the certificate's payload (the variant's vector
/// contents; the inline variant storage itself is negligible).
long long certificate_bytes(const StructuralCertificate& cert) {
  struct Visitor {
    long long operator()(const UniformCertificate&) const { return 0; }
    long long operator()(const TreewidthCertificate& c) const {
      const TreeDecomposition& td = c.decomposition;
      long long bytes = static_cast<long long>(td.num_bags()) *
                        static_cast<long long>(2 * sizeof(BagId));
      for (BagId b = 0; b < td.num_bags(); ++b)
        bytes += static_cast<long long>(td.bag(b).size() * sizeof(VertexId)) +
                 static_cast<long long>(td.children(b).size() * sizeof(BagId));
      return bytes;
    }
    long long operator()(const ApexCertificate& c) const {
      return static_cast<long long>(c.apices.size() * sizeof(VertexId));
    }
    long long operator()(const CliqueSumCertificate& c) const {
      const CliqueSumDecomposition& d = c.decomposition;
      long long bytes = static_cast<long long>(d.num_bags()) *
                        static_cast<long long>(2 * sizeof(BagId));
      for (BagId b = 0; b < d.num_bags(); ++b)
        bytes += static_cast<long long>(
            (d.bag_vertices(b).size() + d.parent_clique(b).size()) *
                sizeof(VertexId) +
            d.bag_edges(b).size() * sizeof(EdgeId) +
            d.children(b).size() * sizeof(BagId));
      for (const auto& apices : c.bag_apices)
        bytes += static_cast<long long>(apices.size() * sizeof(VertexId));
      return bytes;
    }
  };
  return std::visit(Visitor{}, cert);
}

int cmd_inspect(const Args& args) {
  if (args.positional.empty())
    return usage_error("inspect requires <snapshot>");
  io::Snapshot snap = io::read_snapshot(args.positional[0]);

  // Estimated in-memory footprint of the restored session, section by
  // section (DESIGN.md §9). Array payloads only — allocator slack and small
  // struct headers are noise at the scales where this number matters.
  const long long n = snap.graph.num_vertices();
  const long long m = snap.graph.num_edges();
  // CSR graph: Edge records + offsets + two half-edge arrays (2m entries).
  const long long graph_bytes =
      m * static_cast<long long>(sizeof(Edge)) +
      (n + 1) * static_cast<long long>(sizeof(std::size_t)) +
      2 * m *
          static_cast<long long>(sizeof(VertexId) + sizeof(EdgeId));
  const long long weight_bytes =
      static_cast<long long>(snap.weights.size() * sizeof(Weight));
  const long long cert_bytes = certificate_bytes(snap.certificate);
  const long long tree_bytes =
      snap.tree ? static_cast<long long>(
                      snap.tree->parent.size() * sizeof(VertexId) +
                      snap.tree->parent_edge.size() * sizeof(EdgeId))
                : 0;
  long long cache_bytes = 0;
  for (const io::CachedShortcut& cs : snap.shortcuts) {
    cache_bytes += static_cast<long long>(cs.part_of.size() * sizeof(PartId));
    for (const auto& part : cs.shortcut.edges_of_part)
      cache_bytes += static_cast<long long>(part.size() * sizeof(EdgeId));
  }
  const long long total_bytes =
      graph_bytes + weight_bytes + cert_bytes + tree_bytes + cache_bytes;

  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "{\"command\": \"inspect\", \"snapshot\": %s, \"version\": %u, "
      "\"vertices\": %d, \"edges\": %d, \"weights\": %zu, "
      "\"certificate\": %s, \"tree\": %s, \"cached_shortcuts\": %zu",
      io::json_quote(args.positional[0]).c_str(), snap.version,
      snap.graph.num_vertices(), snap.graph.num_edges(), snap.weights.size(),
      io::json_quote(builder_name_for(snap.certificate)).c_str(),
      snap.tree ? "true" : "false", snap.shortcuts.size());
  std::string json = buf;
  if (snap.history.any()) {
    std::snprintf(buf, sizeof buf,
                  ", \"history\": {\"updates_applied\": %llu, "
                  "\"entries_kept\": %llu, \"entries_invalidated\": %llu, "
                  "\"subpaths_rebuilt\": %llu}",
                  static_cast<unsigned long long>(snap.history.updates_applied),
                  static_cast<unsigned long long>(snap.history.entries_kept),
                  static_cast<unsigned long long>(
                      snap.history.entries_invalidated),
                  static_cast<unsigned long long>(
                      snap.history.subpaths_rebuilt));
    json += buf;
  }
  // Per-entry cache identity, MRU first: the SAME fingerprint the restored
  // core will key the entry under (seed_cache derives num_parts the same
  // way), so operators can correlate snapshots with live cache behavior.
  json += ", \"cache_entries\": [";
  for (std::size_t i = 0; i < snap.shortcuts.size(); ++i) {
    const io::CachedShortcut& cs = snap.shortcuts[i];
    PartId num_parts = 0;
    for (const PartId p : cs.part_of)
      num_parts = std::max(num_parts, static_cast<PartId>(p + 1));
    const std::uint64_t fp = congest::SolverCore::partition_fingerprint(
        num_parts, cs.part_of);
    std::snprintf(buf, sizeof buf,
                  "%s{\"mru_rank\": %zu, \"num_parts\": %d, "
                  "\"fingerprint\": \"0x%016llx\"}",
                  i ? ", " : "", i, num_parts,
                  static_cast<unsigned long long>(fp));
    json += buf;
  }
  json += "]";
  std::snprintf(
      buf, sizeof buf,
      ", \"footprint\": {\"graph_bytes\": %lld, \"weight_bytes\": %lld, "
      "\"certificate_bytes\": %lld, \"tree_bytes\": %lld, "
      "\"cache_bytes\": %lld, \"total_bytes\": %lld}}",
      graph_bytes, weight_bytes, cert_bytes, tree_bytes, cache_bytes,
      total_bytes);
  json += buf;
  std::printf("%s\n", json.c_str());
  return 0;
}

// ------------------------------------------------------------------ diff --

/// Fields that legitimately differ between two runs of the same code: wall
/// clock and machine shape. Everything else in our artifacts is
/// deterministic and gated.
bool is_volatile_key(const std::string& key) {
  return key == "wall_time_ms" || key == "hardware_concurrency" ||
         key == "peak_rss_bytes" || key == "qps" ||
         // Transport delivery counters depend on timing and injected faults
         // (DESIGN.md §11); the deterministic transport fields
         // (rounds_exchanged, wire_records) stay gated.
         key == "retransmits" || key == "datagrams_sent" ||
         key == "datagrams_received" || key == "acks_sent" ||
         key.rfind("faults_", 0) == 0 ||
         key.find("wall_ms") != std::string::npos;
}

std::string scalar_repr(const io::JsonValue& v) { return v.render(); }

bool scalars_equal(const io::JsonValue& a, const io::JsonValue& b) {
  using Kind = io::JsonValue::Kind;
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case Kind::kNull: return true;
    case Kind::kBool: return a.boolean == b.boolean;
    case Kind::kString: return a.text == b.text;
    case Kind::kNumber:
      // Raw lexeme first (what was written); double fallback tolerates
      // equivalent renderings like 1.5 vs 1.50.
      return a.text == b.text || a.number == b.number;
    default: return false;
  }
}

void diff_values(const io::JsonValue& a, const io::JsonValue& b,
                 const std::string& path, bool baseline,
                 std::vector<std::string>& drifts) {
  using Kind = io::JsonValue::Kind;
  if (a.kind == Kind::kObject && b.kind == Kind::kObject) {
    for (const auto& [key, av] : a.members) {
      if (baseline && is_volatile_key(key)) continue;
      const io::JsonValue* bv = b.find(key);
      const std::string sub = path.empty() ? key : path + "." + key;
      if (bv == nullptr) {
        drifts.push_back(sub + ": missing in candidate");
        continue;
      }
      diff_values(av, *bv, sub, baseline, drifts);
    }
    if (!baseline) {  // strict mode: extra fields are drift too
      for (const auto& [key, bv] : b.members)
        if (a.find(key) == nullptr)
          drifts.push_back((path.empty() ? key : path + "." + key) +
                           ": missing in first document");
    }
    return;
  }
  if (a.kind == Kind::kArray && b.kind == Kind::kArray) {
    if (a.items.size() != b.items.size())
      drifts.push_back(path + ": length " + std::to_string(a.items.size()) +
                       " vs " + std::to_string(b.items.size()));
    const std::size_t common = std::min(a.items.size(), b.items.size());
    for (std::size_t i = 0; i < common; ++i)
      diff_values(a.items[i], b.items[i],
                  path + "[" + std::to_string(i) + "]", baseline, drifts);
    return;
  }
  if (!scalars_equal(a, b))
    drifts.push_back(path + ": " + scalar_repr(a) + " vs " + scalar_repr(b));
}

io::JsonValue parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good())
    throw io::JsonError("cannot open '" + path + "' for reading");
  std::stringstream buf;
  buf << in.rdbuf();
  return io::parse_json(buf.str());
}

int cmd_diff(const Args& args) {
  if (args.positional.size() != 2)
    return usage_error("diff requires <a.json> <b.json>");
  io::JsonValue a = parse_file(args.positional[0]);
  io::JsonValue b = parse_file(args.positional[1]);
  std::vector<std::string> drifts;
  diff_values(a, b, "", args.baseline, drifts);
  if (drifts.empty()) {
    std::printf("mnsctl diff: %s == %s (%s)\n", args.positional[0].c_str(),
                args.positional[1].c_str(),
                args.baseline ? "baseline fields" : "all fields");
    return 0;
  }
  std::fprintf(stderr, "mnsctl diff: %zu field(s) drifted (%s vs %s):\n",
               drifts.size(), args.positional[0].c_str(),
               args.positional[1].c_str());
  for (const std::string& d : drifts)
    std::fprintf(stderr, "  %s\n", d.c_str());
  return 1;
}

// -------------------------------------------------------------- baseline --

io::JsonValue strip_volatile(const io::JsonValue& v) {
  io::JsonValue out = v;
  if (v.kind == io::JsonValue::Kind::kObject) {
    out.members.clear();
    for (const auto& [key, value] : v.members) {
      if (is_volatile_key(key)) continue;
      out.members.emplace_back(key, strip_volatile(value));
    }
  } else if (v.kind == io::JsonValue::Kind::kArray) {
    out.items.clear();
    for (const io::JsonValue& item : v.items)
      out.items.push_back(strip_volatile(item));
  }
  return out;
}

/// Renders a stripped BENCH document with one row per line (reviewable git
/// diffs); any other shape falls back to the compact canonical render.
std::string render_baseline(const io::JsonValue& v) {
  const io::JsonValue* rows = v.find("rows");
  if (v.kind != io::JsonValue::Kind::kObject || rows == nullptr ||
      rows->kind != io::JsonValue::Kind::kArray)
    return v.render() + "\n";
  std::string out = "{\n";
  bool first = true;
  for (const auto& [key, value] : v.members) {
    if (!first) out += ",\n";
    first = false;
    if (&value == rows) {
      out += "  \"rows\": [\n";
      for (std::size_t i = 0; i < rows->items.size(); ++i) {
        out += "    " + rows->items[i].render();
        if (i + 1 < rows->items.size()) out += ',';
        out += '\n';
      }
      out += "  ]";
    } else {
      out += "  " + io::json_quote(key) + ": " + value.render();
    }
  }
  out += "\n}\n";
  return out;
}

int cmd_baseline(const Args& args) {
  if (args.positional.empty())
    return usage_error("baseline requires <in.json>");
  if (args.output.empty()) return usage_error("baseline requires -o <out>");
  io::JsonValue stripped = strip_volatile(parse_file(args.positional[0]));
  std::ofstream f(args.output);
  f << render_baseline(stripped);
  f.close();
  if (!f) {
    std::fprintf(stderr, "mnsctl: cannot write '%s'\n", args.output.c_str());
    return 2;
  }
  std::printf("mnsctl baseline: %s -> %s (volatile fields stripped)\n",
              args.positional[0].c_str(), args.output.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage_error("missing subcommand");
  const std::string cmd = argv[1];
  Args args;
  // Every malformed invocation behaves identically: the specific complaint
  // (already on stderr from the parser), then the usage block, then exit 2 —
  // same shape as unknown subcommands and missing arguments (pinned by
  // tests/test_mnsctl_cli.cpp).
  if (!parse_args(argc, argv, 2, args)) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  try {
    if (cmd == "gen") return cmd_gen(args);
    if (cmd == "build") return cmd_build(args);
    if (cmd == "update") return cmd_update(args);
    if (cmd == "solve") return cmd_solve(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "dist") return cmd_dist(args);
    if (cmd == "inspect") return cmd_inspect(args);
    if (cmd == "diff") return cmd_diff(args);
    if (cmd == "baseline") return cmd_baseline(args);
    return usage_error(("unknown subcommand '" + cmd + "'").c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mnsctl %s: %s\n", cmd.c_str(), e.what());
    return 2;
  }
}
