// Road-network shortest path: the same planar street grid + satellite apex
// as road_network_mst (a planar+apex excluded-minor network), now serving
// weighted distance queries — "how far is every intersection from the
// depot?". The adversarial toll weights make the true routes snake through
// the grid, so the exact distributed Bellman-Ford pays ~one round per snake
// hop while the shortcut-accelerated (1+eps) SSSP leaps whole Voronoi cells
// per aggregation.
//
//   $ ./examples/road_network_sssp   (exits 1 on any verification failure)
#include <algorithm>
#include <cstdio>

#include "congest/session.hpp"
#include "gen/apex.hpp"
#include "gen/planar.hpp"
#include "graph/algorithms.hpp"

int main() {
  using namespace mns;
  Rng rng(2026);

  const int rows = 48, cols = 48;
  EmbeddedGraph roads = gen::grid(rows, cols);
  gen::ApexResult with_satellite = gen::add_apices(roads.graph(), 1, 0.10, rng);
  const Graph& g = with_satellite.graph;

  // Adversarial toll weights: cheap roads trace a street-sweeping
  // (boustrophedon) route; every other road (and the satellite hops) costs
  // more than any all-cheap route, so true shortest paths follow the snake.
  std::vector<Weight> w(g.num_edges(), 0);
  {
    auto id = [&](int r, int c) { return static_cast<VertexId>(r * cols + c); };
    std::vector<char> on_route(g.num_edges(), 0);
    int route_len = 0;
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c + 1 < cols; ++c) {
        on_route[g.find_edge(id(r, c), id(r, c + 1))] = 1;
        ++route_len;
      }
      if (r + 1 < rows) {
        int turn = (r % 2 == 0) ? cols - 1 : 0;
        on_route[g.find_edge(id(r, turn), id(r + 1, turn))] = 1;
        ++route_len;
      }
    }
    std::vector<Weight> light(route_len);
    for (int i = 0; i < route_len; ++i) light[i] = i + 1;
    std::shuffle(light.begin(), light.end(), rng);
    std::size_t li = 0;
    Weight heavy =
        10 * static_cast<Weight>(g.num_vertices()) * g.num_vertices();
    for (EdgeId e = 0; e < g.num_edges(); ++e)
      w[e] = on_route[e] ? light[li++] : heavy++;
  }
  const VertexId depot = 0;
  std::printf("road network: n=%d m=%d (satellite apex %d), depot=%d\n",
              g.num_vertices(), g.num_edges(), with_satellite.apices[0],
              depot);

  ShortestPathResult oracle = dijkstra(g, w, depot);
  bool ok = true;

  // One Session serves both the baseline and the accelerated query.
  congest::SessionConfig cfg;
  cfg.tree = center_tree_factory(5);
  congest::Session session(g, apex_certificate(with_satellite.apices),
                           std::move(cfg));

  // 1. Exact distributed Bellman-Ford (the baseline).
  congest::RunReport bf = session.solve(congest::ExactSssp{w, depot});
  bool bf_ok = bf.sssp().dist == oracle.dist;
  ok = ok && bf_ok;
  std::printf("%-38s rounds=%8lld  %s\n", "exact Bellman-Ford",
              bf.total_rounds(), bf_ok ? "verified" : "MISMATCH");

  // 2. Shortcut-accelerated (1+eps) SSSP with the apex certificate.
  const double eps = 0.25;
  congest::ApproxSssp query{w, depot};
  query.epsilon = eps;
  // Long Voronoi cells (each spans many snake hops per jump) and a single
  // partition phase — the tuning bench_sssp uses on every family.
  query.num_seeds = 8;
  query.repartition_growth = 1.0;
  congest::RunReport ap = session.solve(query);
  const std::vector<Weight>& ap_dist = ap.sssp().dist;
  double max_ratio = 1.0;
  bool ap_ok = true;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (oracle.dist[v] == kUnreachedWeight || oracle.dist[v] == 0) continue;
    if (ap_dist[v] < oracle.dist[v]) ap_ok = false;
    max_ratio = std::max(max_ratio, static_cast<double>(ap_dist[v]) /
                                        static_cast<double>(oracle.dist[v]));
  }
  ap_ok = ap_ok && max_ratio <= 1.0 + eps + 1e-9;
  ok = ok && ap_ok;
  std::printf("%-38s rounds=%8lld  %s (max ratio %.4f <= %.2f, %d phases, "
              "%lld jumps)\n",
              "(1+eps) SSSP, apex shortcuts", ap.total_rounds(),
              ap_ok ? "verified" : "MISMATCH", max_ratio, 1.0 + eps,
              ap.phases, ap.aggregations);
  std::printf("speedup: %.2fx fewer rounds than Bellman-Ford\n",
              static_cast<double>(bf.total_rounds()) /
                  static_cast<double>(ap.total_rounds()));
  return ok ? 0 : 1;
}
