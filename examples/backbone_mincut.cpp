// ISP-backbone scenario: series-parallel backbones (K4-minor-free, [FL03])
// composed by clique-sums into a country-wide network. Estimates the global
// min cut — the network's weakest link capacity — with the distributed
// tree-packing algorithm and verifies against exact Stoer-Wagner.
//
//   $ ./examples/backbone_mincut
#include <cstdio>

#include "congest/session.hpp"
#include "gen/clique_sum.hpp"
#include "gen/series_parallel.hpp"
#include "gen/weights.hpp"
#include "graph/algorithms.hpp"

int main() {
  using namespace mns;
  Rng rng(99);

  // Regional backbones glued at shared routers / trunk links (2-clique-sums).
  std::vector<gen::BagInput> regions;
  for (int i = 0; i < 6; ++i) {
    Graph region = gen::random_series_parallel(40, rng);
    regions.push_back({region, gen::default_glue_cliques(region, 2)});
  }
  gen::CliqueSumResult net = gen::compose_clique_sum(regions, 2, 0.0, rng);
  const Graph& g = net.graph;
  std::vector<Weight> cap = gen::random_weights(g, 5, 50, rng);
  std::printf("backbone: n=%d m=%d diameter=%d (%d regions)\n",
              g.num_vertices(), g.num_edges(), diameter_exact(g), 6);

  Weight exact = congest::exact_min_cut(g, cap);

  // Theorem 7 pipeline on the recorded decomposition, behind one Session.
  congest::SessionConfig cfg;
  cfg.tree = center_tree_factory(3);
  congest::Session session(g, cliquesum_certificate(net.decomposition),
                           std::move(cfg));
  congest::MinCut query{cap};
  query.num_trees = 12;
  congest::RunReport res = session.solve(query);
  const Weight packed = res.min_cut().value;

  std::printf("exact min cut (Stoer-Wagner):    %lld\n",
              static_cast<long long>(exact));
  std::printf("tree-packing estimate:           %lld (%d trees, "
              "%lld cache hits)\n",
              static_cast<long long>(packed), res.min_cut().trees,
              res.cache_hits);
  std::printf("approximation ratio:             %.3f\n",
              static_cast<double>(packed) / static_cast<double>(exact));
  std::printf("simulated CONGEST rounds:        %lld\n", res.total_rounds());
  return packed >= exact && packed <= 2 * exact + 1 ? 0 : 1;
}
