// Sensor-network scenario: a large planar sensor field where connected
// clusters (administrative zones) repeatedly compute the minimum battery
// level in their zone — exactly the part-wise aggregation subproblem of
// Definition 9. Demonstrates how shortcut quality (Definition 13) translates
// into measured CONGEST rounds (Theorem 1's mechanism).
//
//   $ ./examples/sensor_grid
#include <cstdio>

#include "congest/aggregation.hpp"
#include "congest/simulator.hpp"
#include "core/shortcut_engine.hpp"
#include "gen/planar.hpp"
#include "graph/algorithms.hpp"

int main() {
  using namespace mns;
  Rng rng(7);

  const int rows = 48, cols = 48;
  EmbeddedGraph field = gen::grid(rows, cols);
  const Graph& g = field.graph();

  // Zones: serpentines snaking through column bands — each zone's isolated
  // diameter is Theta(rows * width), far above the grid diameter. This is
  // the grid analogue of the paper's wheel pathology.
  Partition zones = grid_serpentines(rows, cols, 6);
  std::printf("sensor field: n=%d, %d zones, graph diameter %d\n",
              g.num_vertices(), zones.num_parts(), rows + cols - 2);

  Rng rootrng(1);
  VertexId center = approximate_center(g, rootrng);
  RootedTree tree = RootedTree::from_bfs(bfs(g, center), center);

  std::vector<congest::AggValue> battery(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    battery[v] = {static_cast<Weight>(1000 + (v * 7919) % 5000), v};

  struct Variant {
    const char* name;
    Shortcut shortcut;
  };
  const ShortcutEngine& engine = ShortcutEngine::global();
  Shortcut none;
  none.edges_of_part.resize(zones.num_parts());
  Variant variants[] = {
      {"no shortcuts (flooding)", std::move(none)},
      {"steiner shortcuts",
       engine.build(g, tree, zones, steiner_certificate()).shortcut},
      {"greedy shortcuts [HIZ16a]",
       engine.build(g, tree, zones, greedy_certificate()).shortcut},
  };

  std::printf("%-28s %10s %10s %8s %6s %6s\n", "variant", "rounds", "msgs",
              "quality", "b", "c");
  for (auto& variant : variants) {
    ShortcutMetrics m = measure_shortcut(g, tree, zones, variant.shortcut);
    congest::Simulator sim(g);
    congest::PartwiseAggregator agg(g, zones, variant.shortcut);
    auto res = agg.aggregate_min(sim, battery);
    std::printf("%-28s %10lld %10lld %8lld %6d %6d\n", variant.name,
                res.rounds, sim.messages_sent(), m.quality, m.block,
                m.congestion);
  }
  std::printf("\nEvery zone head now knows its zone's minimum battery.\n");
  return 0;
}
