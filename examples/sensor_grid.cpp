// Sensor-network scenario: a large planar sensor field where connected
// clusters (administrative zones) repeatedly compute the minimum battery
// level in their zone — exactly the part-wise aggregation subproblem of
// Definition 9, served through congest::Session. Demonstrates two things:
// how shortcut quality (Definition 13) translates into measured CONGEST
// rounds (Theorem 1's mechanism), and how the session's partition-keyed
// shortcut cache amortizes construction across the periodic re-queries a
// monitoring deployment actually issues.
//
//   $ ./examples/sensor_grid
#include <cstdio>

#include "congest/session.hpp"
#include "gen/planar.hpp"
#include "graph/algorithms.hpp"

int main() {
  using namespace mns;

  const int rows = 48, cols = 48;
  EmbeddedGraph field = gen::grid(rows, cols);
  const Graph& g = field.graph();

  // Zones: serpentines snaking through column bands — each zone's isolated
  // diameter is Theta(rows * width), far above the grid diameter. This is
  // the grid analogue of the paper's wheel pathology.
  Partition zones = grid_serpentines(rows, cols, 6);
  std::printf("sensor field: n=%d, %d zones, graph diameter %d\n",
              g.num_vertices(), zones.num_parts(), rows + cols - 2);

  auto battery_reading = [&](int epoch) {
    std::vector<congest::AggValue> battery(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      battery[v] = {static_cast<Weight>(1000 + ((v + epoch) * 7919) % 5000),
                    v};
    return battery;
  };

  congest::Session session(g);  // greedy certificate by default
  std::printf("%-28s %10s %10s %8s %6s %6s %6s\n", "variant", "rounds",
              "msgs", "quality", "b", "c", "cache");

  struct Variant {
    const char* name;
    bool shortcuts;
    StructuralCertificate cert;
  };
  const Variant variants[] = {
      {"no shortcuts (flooding)", false, greedy_certificate()},
      {"steiner shortcuts", true, steiner_certificate()},
      {"greedy shortcuts [HIZ16a]", true, greedy_certificate()},
  };
  for (const Variant& variant : variants) {
    session.set_certificate(variant.cert);  // invalidates the cache
    congest::SolveOptions opt;
    opt.use_shortcuts = variant.shortcuts;
    // Two monitoring sweeps with fresh readings: the second hits the
    // session's shortcut cache (same zones, same certificate).
    ShortcutMetrics m;
    if (variant.shortcuts) {
      m = session.analyze(zones).metrics;
    } else {
      m = measure_shortcut(g, session.tree(), zones,
                           empty_shortcut_provider()(g, zones));
    }
    congest::RunReport sweep1 =
        session.solve(congest::Aggregate{zones, battery_reading(0)}, opt);
    congest::RunReport sweep2 =
        session.solve(congest::Aggregate{zones, battery_reading(1)}, opt);
    std::printf("%-28s %10lld %10lld %8lld %6d %6d %5lld/%lld\n",
                variant.name, sweep1.rounds, sweep1.messages, m.quality,
                m.block, m.congestion, sweep1.cache_hits + sweep2.cache_hits,
                sweep1.cache_misses + sweep2.cache_misses);
  }
  std::printf("\nEvery zone head now knows its zone's minimum battery; "
              "repeat sweeps re-use the cached shortcut.\n");
  return 0;
}
