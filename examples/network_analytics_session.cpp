// Network-analytics scenario: one long-lived congest::Session serving a
// whole analytics pipeline on one excluded-minor network — the multi-query
// traffic pattern the Session API exists for. A road grid with a satellite
// apex answers, in order:
//
//   1. "mst"          — the cheapest maintenance backbone,
//   2. "mincut"       — the network's weakest link capacity,
//   3. "sssp.approx"  — (1+eps) distances from each of several depots.
//
// Every query goes through the SAME session.solve() surface (selected by
// registry name, like ShortcutEngine's builder registry) and returns the
// same RunReport telemetry; the partition-keyed shortcut cache amortizes
// construction across the pipeline (the min-cut's packing MSTs revisit the
// MST's partitions; every depot after the first re-uses the SSSP cells).
// Every answer is verified against its sequential oracle (Kruskal,
// Stoer-Wagner, Dijkstra).
//
//   $ ./examples/network_analytics_session   (exits 1 on any mismatch)
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "congest/session.hpp"
#include "gen/apex.hpp"
#include "gen/planar.hpp"
#include "gen/weights.hpp"
#include "graph/algorithms.hpp"

int main() {
  using namespace mns;
  Rng rng(2026);

  // The road network: planar street grid + satellite uplink (planar+apex).
  const int rows = 32, cols = 32;
  gen::ApexResult net = gen::add_apices(gen::grid(rows, cols).graph(), 1,
                                        0.10, rng);
  const Graph& g = net.graph;
  std::vector<Weight> toll = gen::random_weights(g, 1, 50, rng);
  std::printf("network: n=%d m=%d (satellite apex %d)\n", g.num_vertices(),
              g.num_edges(), net.apices[0]);

  congest::Session session(g, apex_certificate(net.apices));
  std::printf("registered workloads:");
  for (const std::string& name : session.workload_names())
    std::printf(" %s", name.c_str());
  std::printf("\n\n");
  std::printf("%-14s %10s %10s %9s %7s %11s  %s\n", "workload", "rounds",
              "messages", "charged", "cache", "wall(ms)", "verdict");

  bool ok = true;
  auto show = [&](const congest::RunReport& r, bool verified) {
    ok = ok && verified;
    char cache[32];
    std::snprintf(cache, sizeof cache, "%lld/%lld", r.cache_hits,
                  r.cache_misses);
    std::printf("%-14s %10lld %10lld %9lld %7s %11.2f  %s\n",
                r.workload.c_str(), r.rounds, r.messages,
                r.charged_construction_rounds, cache, r.wall_ms,
                verified ? "verified" : "MISMATCH");
  };

  congest::Session::WorkloadParams params;
  params.weights = toll;

  // 1. MST vs Kruskal.
  congest::RunReport mst = session.solve("mst", params);
  std::vector<EdgeId> ref = congest::kruskal_mst(g, toll);
  std::sort(ref.begin(), ref.end());
  show(mst, mst.mst().edges == ref);

  // 2. Min cut vs Stoer-Wagner (within the packing guarantee).
  params.num_trees = 10;
  congest::RunReport cut = session.solve("mincut", params);
  Weight exact = congest::exact_min_cut(g, toll);
  show(cut, cut.min_cut().value >= exact &&
                cut.min_cut().value <= 2 * exact + 1);

  // 3. (1+eps) SSSP from several depots vs Dijkstra. Source-independent
  //    cells, so every depot after the first hits the session cache.
  params.epsilon = 0.25;
  params.num_seeds = 8;
  params.repartition_growth = 1.0;
  params.wavefront_seeds = false;
  for (VertexId depot : {0, 517, 1023}) {
    params.source = depot;
    congest::RunReport sssp = session.solve("sssp.approx", params);
    ShortestPathResult oracle = dijkstra(g, toll, depot);
    bool within = true;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (oracle.dist[v] == 0) continue;
      const double ratio = static_cast<double>(sssp.sssp().dist[v]) /
                           static_cast<double>(oracle.dist[v]);
      within = within && sssp.sssp().dist[v] >= oracle.dist[v] &&
               ratio <= 1.0 + params.epsilon + 1e-9;
    }
    show(sssp, within);
  }

  std::printf("\nsession totals: %lld cache hits / %lld misses across the "
              "pipeline\n",
              session.cache_hits(), session.cache_misses());
  return ok ? 0 : 1;
}
