// Quickstart: build a planar network, compute its MST distributively with
// low-congestion shortcuts, and compare the round count against the
// no-shortcut baseline.
//
//   $ ./examples/quickstart
//
// The network is the paper's own motivating instance (§1): "a planar graph
// with an added vertex attached to every other node" — an excluded-minor
// graph of diameter 2 on which pre-existing Õ(sqrt(n))-round algorithms are
// stuck. The edge weights are adversarial: the lightest edges trace a
// serpentine path, so Boruvka fragments grow into long snakes whose isolated
// diameter is Theta(n) despite the tiny network diameter — the exact
// pathology (paper §1.3.3) that low-congestion shortcuts repair.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "congest/mst.hpp"
#include "congest/simulator.hpp"
#include "core/shortcut_engine.hpp"
#include "gen/planar.hpp"
#include "graph/algorithms.hpp"

int main() {
  using namespace mns;
  const int rows = 48, cols = 32;

  // 1. A planar grid plus an apex attached to every other node: diameter ~2.
  EmbeddedGraph embedded = gen::grid(rows, cols);
  const VertexId grid_n = embedded.graph().num_vertices();
  const VertexId apex = grid_n;
  Graph g;
  {
    GraphBuilder b(grid_n + 1);
    for (EdgeId e = 0; e < embedded.graph().num_edges(); ++e)
      b.add_edge(embedded.graph().edge(e).u, embedded.graph().edge(e).v);
    for (VertexId v = 0; v < grid_n; v += 2) b.add_edge(apex, v);
    g = b.build();
  }
  std::printf("network: n=%d m=%d diameter=%d (apex = node %d)\n",
              g.num_vertices(), g.num_edges(), diameter_exact(g), apex);

  // 2. Adversarial weights: a boustrophedon path (row 0 left-to-right, row 1
  //    right-to-left, ...) gets weights 1..n-1; everything else is heavier.
  auto id = [&](int r, int c) { return static_cast<VertexId>(r * cols + c); };
  std::vector<Weight> w(g.num_edges(), 0);
  {
    std::vector<char> on_path(g.num_edges(), 0);
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c + 1 < cols; ++c) {
        EdgeId e = g.find_edge(id(r, c), id(r, c + 1));
        on_path[e] = 1;
      }
      if (r + 1 < rows) {
        int turn = (r % 2 == 0) ? cols - 1 : 0;
        on_path[g.find_edge(id(r, turn), id(r + 1, turn))] = 1;
      }
    }
    // Light weights are shuffled so Boruvka needs ~log n phases, with the
    // mid-run fragments forming long serpentine segments. Apex and non-path
    // grid edges are heavy, so they never shape the fragments.
    std::vector<Weight> light;
    for (Weight x = 1; x <= grid_n; ++x) light.push_back(x);
    Rng wrng(3);
    std::shuffle(light.begin(), light.end(), wrng);
    std::size_t li = 0;
    Weight next_heavy = 10 * static_cast<Weight>(g.num_vertices());
    for (EdgeId e = 0; e < g.num_edges(); ++e)
      w[e] = on_path[e] ? light[li++] : next_heavy++;
  }

  // 3. Distributed MST with the paper's apex-aware shortcuts (Lemma 9).
  //    Shortcut construction cost is charged as one extra aggregation per
  //    phase.
  congest::Simulator sim_fast(g);
  congest::MstOptions fast;
  fast.provider = ShortcutEngine::global().provider(
      apex_certificate({apex}),
      [apex](const Graph& gg) {
        return RootedTree::from_bfs(bfs(gg, apex), apex);
      });
  congest::MstResult with_shortcuts = congest::boruvka_mst(sim_fast, w, fast);

  // 4. The naive baseline: Boruvka where each fragment floods internally.
  congest::Simulator sim_slow(g);
  congest::MstOptions slow;
  slow.provider = congest::empty_shortcut_provider();
  slow.charge_construction = false;
  congest::MstResult without = congest::boruvka_mst(sim_slow, w, slow);

  // 5. Verify both against Kruskal.
  std::vector<EdgeId> ref = congest::kruskal_mst(g, w);
  std::sort(ref.begin(), ref.end());
  bool ok = with_shortcuts.edges == ref && without.edges == ref;
  std::printf("MST edges: %zu (kruskal: %zu) -> %s\n",
              with_shortcuts.edges.size(), ref.size(),
              ok ? "verified" : "MISMATCH");
  std::printf("rounds with shortcuts:    %lld (%d phases)\n",
              with_shortcuts.rounds, with_shortcuts.phases);
  std::printf("rounds without shortcuts: %lld (%d phases)\n", without.rounds,
              without.phases);
  return ok ? 0 : 1;
}
