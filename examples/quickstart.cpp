// Quickstart: build a planar network, compute its MST distributively with
// low-congestion shortcuts, and compare the round count against the
// no-shortcut baseline.
//
//   $ ./examples/quickstart
//
// The network is the paper's own motivating instance (§1): "a planar graph
// with an added vertex attached to every other node" — an excluded-minor
// graph of diameter 2 on which pre-existing Õ(sqrt(n))-round algorithms are
// stuck. The edge weights are adversarial: the lightest edges trace a
// serpentine path, so Boruvka fragments grow into long snakes whose isolated
// diameter is Theta(n) despite the tiny network diameter — the exact
// pathology (paper §1.3.3) that low-congestion shortcuts repair.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "congest/session.hpp"
#include "gen/planar.hpp"
#include "graph/algorithms.hpp"

int main() {
  using namespace mns;
  const int rows = 48, cols = 32;

  // 1. A planar grid plus an apex attached to every other node: diameter ~2.
  EmbeddedGraph embedded = gen::grid(rows, cols);
  const VertexId grid_n = embedded.graph().num_vertices();
  const VertexId apex = grid_n;
  Graph g;
  {
    GraphBuilder b(grid_n + 1);
    for (EdgeId e = 0; e < embedded.graph().num_edges(); ++e)
      b.add_edge(embedded.graph().edge(e).u, embedded.graph().edge(e).v);
    for (VertexId v = 0; v < grid_n; v += 2) b.add_edge(apex, v);
    g = b.build();
  }
  std::printf("network: n=%d m=%d diameter=%d (apex = node %d)\n",
              g.num_vertices(), g.num_edges(), diameter_exact(g), apex);

  // 2. Adversarial weights: a boustrophedon path (row 0 left-to-right, row 1
  //    right-to-left, ...) gets weights 1..n-1; everything else is heavier.
  auto id = [&](int r, int c) { return static_cast<VertexId>(r * cols + c); };
  std::vector<Weight> w(g.num_edges(), 0);
  {
    std::vector<char> on_path(g.num_edges(), 0);
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c + 1 < cols; ++c) {
        EdgeId e = g.find_edge(id(r, c), id(r, c + 1));
        on_path[e] = 1;
      }
      if (r + 1 < rows) {
        int turn = (r % 2 == 0) ? cols - 1 : 0;
        on_path[g.find_edge(id(r, turn), id(r + 1, turn))] = 1;
      }
    }
    // Light weights are shuffled so Boruvka needs ~log n phases, with the
    // mid-run fragments forming long serpentine segments. Apex and non-path
    // grid edges are heavy, so they never shape the fragments.
    std::vector<Weight> light;
    for (Weight x = 1; x <= grid_n; ++x) light.push_back(x);
    Rng wrng(3);
    std::shuffle(light.begin(), light.end(), wrng);
    std::size_t li = 0;
    Weight next_heavy = 10 * static_cast<Weight>(g.num_vertices());
    for (EdgeId e = 0; e < g.num_edges(); ++e)
      w[e] = on_path[e] ? light[li++] : next_heavy++;
  }

  // 3. One Session over the network, carrying the paper's apex certificate
  //    (Lemma 9): the uniform solver API for every workload. The shortcut
  //    run charges construction as one extra aggregation per fresh
  //    partition; the session cache serves revisited partitions for free.
  congest::SessionConfig cfg;
  cfg.tree = [apex](const Graph& gg) {
    return RootedTree::from_bfs(bfs(gg, apex), apex);
  };
  congest::Session session(g, apex_certificate({apex}), std::move(cfg));
  congest::RunReport with_shortcuts = session.solve(congest::Mst{w});

  // 4. The naive baseline on the SAME session: Boruvka where each fragment
  //    floods internally (no shortcuts, nothing constructed or charged).
  congest::SolveOptions flooding;
  flooding.use_shortcuts = false;
  congest::RunReport without = session.solve(congest::Mst{w}, flooding);

  // 5. Verify both against Kruskal.
  std::vector<EdgeId> ref = congest::kruskal_mst(g, w);
  std::sort(ref.begin(), ref.end());
  bool ok = with_shortcuts.mst().edges == ref && without.mst().edges == ref;
  std::printf("MST edges: %zu (kruskal: %zu) -> %s\n",
              with_shortcuts.mst().edges.size(), ref.size(),
              ok ? "verified" : "MISMATCH");
  std::printf("rounds with shortcuts:    %lld (%d phases, %lld cache hits)\n",
              with_shortcuts.total_rounds(), with_shortcuts.phases,
              with_shortcuts.cache_hits);
  std::printf("rounds without shortcuts: %lld (%d phases)\n",
              without.total_rounds(), without.phases);
  return ok ? 0 : 1;
}
