// Road-network scenario: a planar road map plus a satellite uplink reaching a
// random subset of towns — i.e., a planar graph with an apex (Definition 2),
// the canonical excluded-minor network that is NOT planar and where planar
// algorithms break (see the paper's robustness discussion in §1). Computes a
// distributed MST three ways and reports rounds.
//
//   $ ./examples/road_network_mst
#include <algorithm>
#include <cstdio>

#include "congest/mst.hpp"
#include "congest/simulator.hpp"
#include "core/shortcut_engine.hpp"
#include "gen/apex.hpp"
#include "gen/planar.hpp"
#include "gen/weights.hpp"
#include "graph/algorithms.hpp"

int main() {
  using namespace mns;
  Rng rng(2026);

  // Manhattan-style street grid (roads are sparse!) plus a satellite uplink
  // reaching a random ~10% of intersections — a planar + apex network.
  const int rows = 60, cols = 60;
  EmbeddedGraph roads = gen::grid(rows, cols);
  gen::ApexResult with_satellite = gen::add_apices(roads.graph(), 1, 0.10, rng);
  const Graph& g = with_satellite.graph;

  // Adversarial toll weights: the cheap roads trace a street-sweeping
  // (boustrophedon) route, so MST fragments grow into long snakes — the
  // worst case the shortcut guarantee covers. Random weights would keep
  // fragments compact and make even naive flooding fast.
  std::vector<Weight> w(g.num_edges(), 0);
  {
    auto id = [&](int r, int c) { return static_cast<VertexId>(r * cols + c); };
    std::vector<char> on_route(g.num_edges(), 0);
    int route_len = 0;
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c + 1 < cols; ++c) {
        on_route[g.find_edge(id(r, c), id(r, c + 1))] = 1;
        ++route_len;
      }
      if (r + 1 < rows) {
        int turn = (r % 2 == 0) ? cols - 1 : 0;
        on_route[g.find_edge(id(r, turn), id(r + 1, turn))] = 1;
        ++route_len;
      }
    }
    std::vector<Weight> light(route_len);
    for (int i = 0; i < route_len; ++i) light[i] = i + 1;
    std::shuffle(light.begin(), light.end(), rng);
    std::size_t li = 0;
    Weight heavy = 10 * static_cast<Weight>(g.num_vertices());
    for (EdgeId e = 0; e < g.num_edges(); ++e)
      w[e] = on_route[e] ? light[li++] : heavy++;
  }
  std::printf("road network: n=%d m=%d diameter=%d (satellite apex %d)\n",
              g.num_vertices(), g.num_edges(), diameter_exact(g),
              with_satellite.apices[0]);

  auto run = [&](const char* name, congest::MstOptions opt) {
    congest::Simulator sim(g);
    congest::MstResult res = congest::boruvka_mst(sim, w, opt);
    std::vector<EdgeId> ref = congest::kruskal_mst(g, w);
    std::printf("%-34s rounds=%8lld phases=%2d  %s\n", name, res.rounds,
                res.phases,
                res.edges.size() == ref.size() ? "verified" : "MISMATCH");
  };

  // 1. Apex-aware shortcuts (Lemma 9): the paper's construction.
  const ShortcutEngine& engine = ShortcutEngine::global();
  congest::MstOptions apex_aware;
  apex_aware.provider = engine.provider(
      apex_certificate(with_satellite.apices), center_tree_factory(5));
  run("apex-aware shortcuts (Lemma 9)", apex_aware);

  // 2. Structure-oblivious greedy shortcuts.
  congest::MstOptions oblivious;
  oblivious.provider =
      engine.provider(greedy_certificate(), center_tree_factory(5));
  run("structure-oblivious greedy", oblivious);

  // 3. No shortcuts.
  congest::MstOptions naive;
  naive.provider = congest::empty_shortcut_provider();
  naive.charge_construction = false;
  run("no shortcuts", naive);
  return 0;
}
