// Road-network scenario: a planar road map plus a satellite uplink reaching a
// random subset of towns — i.e., a planar graph with an apex (Definition 2),
// the canonical excluded-minor network that is NOT planar and where planar
// algorithms break (see the paper's robustness discussion in §1). Computes a
// distributed MST three ways and reports rounds.
//
//   $ ./examples/road_network_mst
#include <algorithm>
#include <cstdio>

#include "congest/session.hpp"
#include "gen/apex.hpp"
#include "gen/planar.hpp"
#include "gen/weights.hpp"
#include "graph/algorithms.hpp"

int main() {
  using namespace mns;
  Rng rng(2026);

  // Manhattan-style street grid (roads are sparse!) plus a satellite uplink
  // reaching a random ~10% of intersections — a planar + apex network.
  const int rows = 60, cols = 60;
  EmbeddedGraph roads = gen::grid(rows, cols);
  gen::ApexResult with_satellite = gen::add_apices(roads.graph(), 1, 0.10, rng);
  const Graph& g = with_satellite.graph;

  // Adversarial toll weights: the cheap roads trace a street-sweeping
  // (boustrophedon) route, so MST fragments grow into long snakes — the
  // worst case the shortcut guarantee covers. Random weights would keep
  // fragments compact and make even naive flooding fast.
  std::vector<Weight> w(g.num_edges(), 0);
  {
    auto id = [&](int r, int c) { return static_cast<VertexId>(r * cols + c); };
    std::vector<char> on_route(g.num_edges(), 0);
    int route_len = 0;
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c + 1 < cols; ++c) {
        on_route[g.find_edge(id(r, c), id(r, c + 1))] = 1;
        ++route_len;
      }
      if (r + 1 < rows) {
        int turn = (r % 2 == 0) ? cols - 1 : 0;
        on_route[g.find_edge(id(r, turn), id(r + 1, turn))] = 1;
        ++route_len;
      }
    }
    std::vector<Weight> light(route_len);
    for (int i = 0; i < route_len; ++i) light[i] = i + 1;
    std::shuffle(light.begin(), light.end(), rng);
    std::size_t li = 0;
    Weight heavy = 10 * static_cast<Weight>(g.num_vertices());
    for (EdgeId e = 0; e < g.num_edges(); ++e)
      w[e] = on_route[e] ? light[li++] : heavy++;
  }
  std::printf("road network: n=%d m=%d diameter=%d (satellite apex %d)\n",
              g.num_vertices(), g.num_edges(), diameter_exact(g),
              with_satellite.apices[0]);

  std::vector<EdgeId> ref = congest::kruskal_mst(g, w);
  auto record = [&](const char* name, const congest::RunReport& res) {
    std::printf("%-34s rounds=%8lld phases=%2d  %s\n", name,
                res.total_rounds(), res.phases,
                res.mst().edges.size() == ref.size() ? "verified"
                                                     : "MISMATCH");
  };

  congest::SessionConfig cfg;
  cfg.tree = center_tree_factory(5);

  // 1. Apex-aware shortcuts (Lemma 9): the paper's construction. The
  //    session's certificate IS the structural knowledge; solve() does the
  //    rest.
  congest::Session session(g, apex_certificate(with_satellite.apices), cfg);
  record("apex-aware shortcuts (Lemma 9)", session.solve(congest::Mst{w}));

  // 2. Structure-oblivious greedy shortcuts: swap the certificate (this
  //    invalidates the session's shortcut cache) and re-solve.
  session.set_certificate(greedy_certificate());
  record("structure-oblivious greedy", session.solve(congest::Mst{w}));

  // 3. No shortcuts: the flooding baseline on the same session.
  congest::SolveOptions flooding;
  flooding.use_shortcuts = false;
  record("no shortcuts", session.solve(congest::Mst{w}, flooding));
  return 0;
}
