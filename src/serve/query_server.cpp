#include "serve/query_server.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <utility>

#include "io/json.hpp"
#include "io/report_json.hpp"
#include "io/snapshot.hpp"

namespace mns::serve {

std::string response_to_json(const Response& response) {
  if (!response.ok())
    return "{\"ok\":false,\"error\":" + io::json_quote(response.error) + "}";
  return "{\"ok\":true,\"report\":" +
         io::run_report_to_json(response.report) + "}";
}

QueryServer::QueryServer(std::shared_ptr<const congest::SolverCore> core,
                         ServerConfig config)
    : core_((require(core != nullptr, "QueryServer: null core"),
             std::move(core))),
      config_((config.workers = std::max(1, config.workers), config)),
      pool_(config_.workers) {
  require(config_.transport == nullptr || config_.workers == 1,
          "QueryServer: a transport is one lock-step endpoint and requires "
          "workers == 1");
  handles_.reserve(static_cast<std::size_t>(config_.workers));
  for (int w = 0; w < config_.workers; ++w)
    handles_.push_back(std::make_unique<congest::SolveHandle>(
        core_, congest::ExecutionPolicy{1}));
  if (config_.transport != nullptr)
    handles_[0]->set_transport(config_.transport);
}

QueryServer QueryServer::from_snapshot(const std::string& path,
                                       ServerConfig config) {
  auto core =
      congest::SolverCore::restore(io::read_snapshot(path), config.core);
  return QueryServer(std::move(core), std::move(config));
}

Request QueryServer::normalize(const Request& request) const {
  Request r = request;
  // The batching rule (DESIGN.md §10): source-independent Voronoi cells give
  // every source of a k-source batch the SAME partition, so the shared
  // cache pays one construction for the whole batch.
  if (config_.batch_shared_partitions && r.workload == "sssp.approx")
    r.params.wavefront_seeds = false;
  return r;
}

Response QueryServer::answer(congest::SolveHandle& handle,
                             const Request& request) {
  Response out;
  try {
    const Request r = normalize(request);
    out.report = handle.solve(r.workload, r.params, r.options);
  } catch (const std::exception& e) {
    out.report = congest::RunReport{};
    out.error = e.what();
    if (out.error.empty()) out.error = "unknown error";
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

std::vector<Response> QueryServer::warm(const std::vector<Request>& batch) {
  std::vector<Response> out;
  out.reserve(batch.size());
  for (const Request& r : batch) out.push_back(answer(*handles_[0], r));
  return out;
}

std::vector<Response> QueryServer::serve(const std::vector<Request>& batch) {
  return serve(batch, ResponseSink{});
}

std::vector<Response> QueryServer::serve(const std::vector<Request>& batch,
                                         const ResponseSink& sink) {
  std::vector<Response> out(batch.size());
  std::atomic<std::size_t> next{0};
  std::mutex sink_mutex;
  pool_.run(config_.workers, [&](int w) {
    congest::SolveHandle& handle = *handles_[static_cast<std::size_t>(w)];
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= batch.size()) break;
      out[i] = answer(handle, batch[i]);
      if (sink) {
        std::lock_guard<std::mutex> lock(sink_mutex);
        sink(i, out[i]);
      }
    }
  });
  return out;
}

}  // namespace mns::serve
