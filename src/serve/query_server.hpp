// serve::QueryServer — concurrent query serving over one shared SolverCore
// (DESIGN.md §10 "Serving architecture").
//
// This is the paper's amortization argument taken to its operational
// conclusion: the expensive structural object (certificate + tree +
// shortcuts) is paid for ONCE, held in an immutable congest::SolverCore, and
// any number of requests then answer cheaply against it. The server maps a
// restored snapshot (or a live core) into that shared state and fans
// batches of requests across a congest::WorkerPool, where every worker
// drives its OWN congest::SolveHandle — so simulators, arenas, and
// per-request telemetry never share, and the only contended object is the
// core's read-mostly shortcut cache.
//
// Serving discipline (the §10 contract):
//   * warm() first: run the workload mix once, sequentially, so every
//     distinct partition's shortcut is constructed and cached exactly once.
//     Post-warm-up, every request is a cache hit with
//     charged_construction_rounds == 0, and concurrent RunReports are
//     bit-identical to sequential ones (pinned by tests/test_serve.cpp).
//     Cold concurrent serving stays correct — racing builders of one
//     partition insert once and results are bit-identical — but BOTH may
//     pay the construction charge, so cold reports are width-dependent.
//   * batching: with batch_shared_partitions (default), k-source
//     "sssp.approx" requests are normalized to wavefront_seeds=false —
//     source-independent Voronoi cells make all k sources share ONE
//     partition, so the whole batch hits one cached shortcut instead of
//     building k wavefront-specific ones.
//   * each Response carries the canonical RunReport (io/report_json
//     renders it; response_to_json below wraps it with request status).
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "congest/execution.hpp"
#include "congest/solve_handle.hpp"
#include "congest/solver_core.hpp"

namespace mns::serve {

/// One query: a registry workload name plus its parameter bundle.
struct Request {
  std::string workload;  ///< "mst", "mincut", "sssp.approx", ... ("bfs" etc.)
  congest::WorkloadParams params;
  congest::SolveOptions options;
};

/// One answer. `error` is empty on success; on failure the report is
/// default-constructed and `error` carries the exception message.
struct Response {
  congest::RunReport report;
  std::string error;
  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

struct ServerConfig {
  /// Concurrent workers (= SolveHandles) serving a batch; >= 1.
  int workers = 1;
  /// Normalize "sssp.approx" requests to wavefront_seeds=false so k-source
  /// batches share one partition (and therefore one cached shortcut).
  bool batch_shared_partitions = true;
  /// Core construction knobs for from_snapshot (ignored by the shared-core
  /// constructor, whose core is already built).
  congest::CoreConfig core;
  /// Optional message transport installed on the serving handle (non-owning,
  /// must outlive the server — DESIGN.md §11): the server then answers
  /// queries over a distributed round engine, e.g. one rank of a
  /// SocketTransport cluster. Requires workers == 1 — a transport is ONE
  /// lock-step endpoint and cannot be shared by concurrent handles.
  transport::Transport* transport = nullptr;
};

/// Canonical JSON for one response: the RunReport document wrapped with
/// request status — {"ok":true,"report":{...}} or {"ok":false,"error":"..."}.
[[nodiscard]] std::string response_to_json(const Response& response);

class QueryServer {
 public:
  /// Serves over an existing shared core (e.g. Session::core_ptr()).
  explicit QueryServer(std::shared_ptr<const congest::SolverCore> core,
                       ServerConfig config = {});

  /// read_snapshot(path) -> SolverCore::restore -> server. The snapshot's
  /// cached shortcuts arrive warm: requests over snapshotted partitions hit
  /// immediately. Throws io::SnapshotError on corruption.
  [[nodiscard]] static QueryServer from_snapshot(const std::string& path,
                                                 ServerConfig config = {});

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  [[nodiscard]] const congest::SolverCore& core() const noexcept {
    return *core_;
  }
  [[nodiscard]] const std::shared_ptr<const congest::SolverCore>& core_ptr()
      const noexcept {
    return core_;
  }
  [[nodiscard]] int workers() const noexcept { return config_.workers; }

  /// Runs the batch SEQUENTIALLY (worker 0 only), in order. Use it to (a)
  /// pre-construct every distinct shortcut the mix needs and (b) produce
  /// the sequential reference reports that concurrent serve() runs must
  /// bit-match (io::run_reports_identical).
  [[nodiscard]] std::vector<Response> warm(const std::vector<Request>& batch);

  /// Fans the batch across the worker pool: requests are claimed
  /// dynamically, each worker solves on its own handle, and responses land
  /// at their request's index. Not reentrant (one serve() at a time).
  [[nodiscard]] std::vector<Response> serve(const std::vector<Request>& batch);

  /// Streaming variant: `sink(index, response)` fires as each request
  /// completes (serialized — sinks never race), in completion order.
  using ResponseSink = std::function<void(std::size_t, const Response&)>;
  std::vector<Response> serve(const std::vector<Request>& batch,
                              const ResponseSink& sink);

  /// Requests completed over the server's lifetime (warm + serve).
  [[nodiscard]] long long requests_served() const noexcept {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  /// Applies the batching rules to one request (see ServerConfig).
  [[nodiscard]] Request normalize(const Request& request) const;
  [[nodiscard]] Response answer(congest::SolveHandle& handle,
                                const Request& request);

  std::shared_ptr<const congest::SolverCore> core_;
  ServerConfig config_;
  /// One handle per worker, created up front: worker w always solves on
  /// handles_[w], so arenas stay warm across batches.
  std::vector<std::unique_ptr<congest::SolveHandle>> handles_;
  congest::WorkerPool pool_;
  std::atomic<long long> requests_served_{0};
};

}  // namespace mns::serve
