// Incremental maintenance of the session's structural objects under graph
// churn (DESIGN.md §12): patch the rooted spanning tree by re-hanging only
// the subpaths an edit actually broke, and carry a StructuralCertificate
// across a delta by remapping ids and extending bags for inserted material.
//
// Both functions are pure: they read the old object + the GraphDelta and
// produce the patched object for the post-update graph. Edits the
// certificate cannot absorb locally (an inserted edge no bag covers, an
// added vertex whose neighbors share no bag) throw UpdateError — the caller
// should then build a fresh Session with a new certificate.
#pragma once

#include <cstddef>
#include <vector>

#include "core/certificate.hpp"
#include "graph/delta.hpp"
#include "graph/rooted_tree.hpp"

namespace mns {

/// Parent arrays of the patched tree plus the number of re-hung subpaths
/// (each broken chain re-attached through one edge reversal, and each added
/// vertex's attachment, counts as one).
struct TreePatch {
  VertexId root = kInvalidVertex;
  std::vector<VertexId> parent;
  std::vector<EdgeId> parent_edge;
  std::size_t subpaths_rebuilt = 0;
};

/// Patches `tree` (spanning the pre-update graph) onto `new_g`: surviving
/// parent links are remapped in place; vertices whose parent vertex or
/// parent edge was removed — and all added vertices — are re-attached by
/// reversing the path to the nearest still-attached neighbor. Requires the
/// tree to carry edge bindings. Throws UpdateError if `new_g` is
/// disconnected (no spanning tree exists) or empty.
[[nodiscard]] TreePatch patch_tree(const RootedTree& tree, const Graph& new_g,
                                   const GraphDelta& delta);

/// Carries `cert` across the delta. Uniform certificates pass through;
/// decomposition-backed certificates are remapped (removed vertices/edges
/// dropped from bags) and extended: an inserted edge must be covered by an
/// existing bag, and an added vertex gets a fresh bag under a bag containing
/// all its (existing) neighbors. Throws UpdateError when no such bag exists
/// or an inserted edge joins two added vertices.
[[nodiscard]] StructuralCertificate update_certificate(
    const StructuralCertificate& cert, const Graph& old_g, const Graph& new_g,
    const GraphDelta& delta, const UpdateBatch& batch);

}  // namespace mns
