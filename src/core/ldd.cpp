#include "core/ldd.hpp"

#include <algorithm>
#include <utility>

namespace mns {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Geometric(beta) start delay for v, capped: count Bernoulli(beta) failures
/// over a per-(seed, v, trial) hash stream. Integer compare against a fixed
/// 32-bit threshold — the only floating-point step is the one-time threshold
/// conversion, so draws are platform-independent.
int geometric_delay(std::uint64_t seed, VertexId v, std::uint64_t threshold,
                    int cap) {
  int delay = 0;
  while (delay < cap) {
    const std::uint64_t h = splitmix64(
        seed ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)) |
                (static_cast<std::uint64_t>(delay) << 32)));
    if ((h >> 32) < threshold) break;  // success: the delay expires here
    ++delay;
  }
  return delay;
}

/// ceil-ish log_{1/(1-beta)}(n) by repeated multiplication — the ball-radius
/// scale of the decomposition. Deterministic (a fixed sequence of IEEE
/// multiplies), no libm.
int delay_scale(VertexId n, double beta) {
  double mass = static_cast<double>(n < 1 ? 1 : n);
  const double keep = 1.0 - beta;
  int k = 0;
  while (mass >= 1.0 && k < 1 << 20) {
    mass *= keep;
    ++k;
  }
  return k;
}

}  // namespace

LddDecomposition ldd_decompose(const Graph& g, const LddOptions& options) {
  require(options.beta > 0.0 && options.beta < 1.0,
          "ldd_decompose: beta must be in (0, 1)");
  const VertexId n = g.num_vertices();
  require(n > 0, "ldd_decompose: empty graph");
  const int cap = options.delay_cap > 0
                      ? options.delay_cap
                      : 2 * delay_scale(n, options.beta) + 8;
  const auto threshold =
      static_cast<std::uint64_t>(options.beta * 4294967296.0);  // beta * 2^32
  // Per MPX, LARGE delays start growing first: vertex v activates as a ball
  // center at time cap - delay(v) unless some earlier ball claimed it first.
  std::vector<std::vector<VertexId>> bucket(static_cast<std::size_t>(cap) + 1);
  for (VertexId v = 0; v < n; ++v) {
    const int d = geometric_delay(options.seed, v, threshold, cap);
    bucket[static_cast<std::size_t>(cap - d)].push_back(v);
  }

  std::vector<VertexId> owner(static_cast<std::size_t>(n), kInvalidVertex);
  std::vector<VertexId> parent(static_cast<std::size_t>(n), kInvalidVertex);
  std::vector<EdgeId> parent_edge(static_cast<std::size_t>(n), kInvalidEdge);
  std::vector<int> depth(static_cast<std::size_t>(n), 0);
  std::vector<VertexId> frontier, next;
  for (int t = 0; t <= cap || !frontier.empty(); ++t) {
    if (t <= cap)
      for (VertexId v : bucket[static_cast<std::size_t>(t)])
        if (owner[static_cast<std::size_t>(v)] == kInvalidVertex) {
          owner[static_cast<std::size_t>(v)] = v;
          frontier.push_back(v);
        }
    // Tie rule: among same-time claimants the smallest vertex id wins —
    // sorted frontier + sequential first-claim-sticks makes it so.
    std::sort(frontier.begin(), frontier.end());
    next.clear();
    for (VertexId v : frontier) {
      const std::span<const VertexId> nb = g.neighbors(v);
      const std::span<const EdgeId> ie = g.incident_edges(v);
      for (std::size_t i = 0; i < nb.size(); ++i) {
        const VertexId u = nb[i];
        if (owner[static_cast<std::size_t>(u)] != kInvalidVertex) continue;
        owner[static_cast<std::size_t>(u)] = owner[static_cast<std::size_t>(v)];
        parent[static_cast<std::size_t>(u)] = v;
        parent_edge[static_cast<std::size_t>(u)] = ie[i];
        depth[static_cast<std::size_t>(u)] = depth[static_cast<std::size_t>(v)] + 1;
        next.push_back(u);
      }
    }
    frontier.swap(next);
  }

  // Dense cluster ids in increasing center-id order (canonical regardless of
  // discovery order).
  std::vector<VertexId> centers;
  for (VertexId v = 0; v < n; ++v)
    if (owner[static_cast<std::size_t>(v)] == v) centers.push_back(v);
  std::vector<PartId> index_of(static_cast<std::size_t>(n), kNoPart);
  for (std::size_t i = 0; i < centers.size(); ++i)
    index_of[static_cast<std::size_t>(centers[i])] = static_cast<PartId>(i);
  std::vector<PartId> part_of(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v)
    part_of[static_cast<std::size_t>(v)] =
        index_of[static_cast<std::size_t>(owner[static_cast<std::size_t>(v)])];

  int radius = 0;
  for (int d : depth) radius = std::max(radius, d);
  EdgeId cut = 0;
  for (const Edge& e : g.edges())
    if (part_of[static_cast<std::size_t>(e.u)] !=
        part_of[static_cast<std::size_t>(e.v)])
      ++cut;

  return LddDecomposition{Partition(std::move(part_of)),
                          std::move(centers),
                          std::move(parent),
                          std::move(parent_edge),
                          std::move(depth),
                          radius,
                          cut};
}

std::vector<Weight> ldd_forest_distances(const LddDecomposition& ldd,
                                         const Graph& g,
                                         const std::vector<Weight>& w) {
  const VertexId n = g.num_vertices();
  require(static_cast<VertexId>(ldd.parent.size()) == n,
          "ldd_forest_distances: decomposition size mismatch");
  require(static_cast<EdgeId>(w.size()) == g.num_edges(),
          "ldd_forest_distances: weight size mismatch");
  // Settle in increasing depth order so every parent is final before its
  // children (counting sort: depths are bounded by the radius).
  std::vector<std::vector<VertexId>> by_depth(
      static_cast<std::size_t>(ldd.radius) + 1);
  for (VertexId v = 0; v < n; ++v)
    by_depth[static_cast<std::size_t>(ldd.depth[static_cast<std::size_t>(v)])]
        .push_back(v);
  std::vector<Weight> dist(static_cast<std::size_t>(n), 0);
  for (const std::vector<VertexId>& layer : by_depth)
    for (VertexId v : layer) {
      const VertexId p = ldd.parent[static_cast<std::size_t>(v)];
      if (p == kInvalidVertex) continue;  // a center
      dist[static_cast<std::size_t>(v)] =
          dist[static_cast<std::size_t>(p)] +
          w[static_cast<std::size_t>(ldd.parent_edge[static_cast<std::size_t>(v)])];
    }
  return dist;
}

std::string validate_ldd(const Graph& g, const LddDecomposition& ldd) {
  const VertexId n = g.num_vertices();
  const auto sz = static_cast<std::size_t>(n);
  if (ldd.parent.size() != sz || ldd.parent_edge.size() != sz ||
      ldd.depth.size() != sz)
    return "forest arrays sized differently from the graph";
  if (static_cast<std::size_t>(ldd.parts.num_parts()) != ldd.center.size())
    return "center list does not match the part count";
  if (std::string err = ldd.parts.validate(g); !err.empty()) return err;
  int radius = 0;
  EdgeId cut = 0;
  for (VertexId v = 0; v < n; ++v) {
    const PartId p = ldd.parts.part_of(v);
    if (p == kNoPart) return "vertex without a cluster";
    const VertexId c = ldd.center[static_cast<std::size_t>(p)];
    const VertexId par = ldd.parent[static_cast<std::size_t>(v)];
    if (v == c) {
      if (par != kInvalidVertex || ldd.depth[static_cast<std::size_t>(v)] != 0)
        return "center with a parent or nonzero depth";
      continue;
    }
    if (par == kInvalidVertex) return "non-center without a parent";
    if (ldd.parts.part_of(par) != p) return "parent in a different cluster";
    if (ldd.depth[static_cast<std::size_t>(v)] !=
        ldd.depth[static_cast<std::size_t>(par)] + 1)
      return "depth not parent depth + 1";
    const EdgeId e = ldd.parent_edge[static_cast<std::size_t>(v)];
    if (e < 0 || e >= g.num_edges() || g.other_endpoint(e, v) != par)
      return "parent edge does not join vertex and parent";
    radius = std::max(radius, ldd.depth[static_cast<std::size_t>(v)]);
  }
  for (const Edge& e : g.edges())
    if (ldd.parts.part_of(e.u) != ldd.parts.part_of(e.v)) ++cut;
  if (radius != ldd.radius) return "radius does not match max depth";
  if (cut != ldd.cut_edges) return "cut edge count mismatch";
  return "";
}

}  // namespace mns
