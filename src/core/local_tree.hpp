// The "repaired tree" T^2_h of Theorem 7's proof: the minor of the global
// spanning tree T induced on a bag's vertex set (path contraction of
// Figure 3). Edges whose contracted path is a single T edge are "real" — only
// those may enter the final shortcut; the rest exist so the local oracle sees
// a connected tree of diameter O(d_T).
#pragma once

#include <span>
#include <vector>

#include "graph/rooted_tree.hpp"

namespace mns {

struct LocalTree {
  /// Tree on local indices 0..s-1 (s = number of bag vertices).
  RootedTree tree;
  /// local index -> global vertex id.
  std::vector<VertexId> to_global;
  /// Per local vertex: the global T edge realizing its parent edge, or
  /// kInvalidEdge when the parent edge is a contracted (virtual) path.
  std::vector<EdgeId> real_parent_edge;
};

/// Builds the Steiner minor of `T` on `vertices` (must be non-empty, global
/// ids, duplicates allowed). Runs in O(s log s) using tin-ordered virtual
/// trees.
[[nodiscard]] LocalTree steiner_minor(const RootedTree& T,
                                      std::span<const VertexId> vertices);

}  // namespace mns
