#include "core/local_tree.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace mns {

LocalTree steiner_minor(const RootedTree& T,
                        std::span<const VertexId> vertices) {
  if (vertices.empty())
    throw std::invalid_argument("steiner_minor: empty vertex set");

  // tin order (preorder position) for virtual-tree construction.
  const auto& pre = T.preorder();
  std::vector<int> tin(T.num_vertices());
  for (int i = 0; i < static_cast<int>(pre.size()); ++i) tin[pre[i]] = i;

  std::vector<VertexId> terms(vertices.begin(), vertices.end());
  std::sort(terms.begin(), terms.end(),
            [&](VertexId a, VertexId b) { return tin[a] < tin[b]; });
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());

  // Candidates: terminals plus consecutive LCAs.
  std::vector<VertexId> cand = terms;
  for (std::size_t i = 0; i + 1 < terms.size(); ++i)
    cand.push_back(T.lca(terms[i], terms[i + 1]));
  std::sort(cand.begin(), cand.end(),
            [&](VertexId a, VertexId b) { return tin[a] < tin[b]; });
  cand.erase(std::unique(cand.begin(), cand.end()), cand.end());

  // Stack-based virtual tree: candidates in tin order; an element's virtual
  // parent is the nearest open ancestor.
  std::map<VertexId, std::vector<VertexId>> vchildren;
  std::map<VertexId, VertexId> vparent;
  std::vector<VertexId> stack;
  for (VertexId v : cand) {
    while (!stack.empty() && !T.is_ancestor(stack.back(), v)) stack.pop_back();
    if (!stack.empty()) {
      vparent[v] = stack.back();
      vchildren[stack.back()].push_back(v);
    }
    stack.push_back(v);
  }

  // Contract non-terminal candidates bottom-up (reverse tin order is a valid
  // bottom-up order for the virtual tree).
  std::vector<char> is_term(T.num_vertices(), 0);
  for (VertexId t : terms) is_term[t] = 1;

  LocalTree out{RootedTree(0, {kInvalidVertex}), {}, {}};
  out.to_global = terms;
  std::map<VertexId, VertexId> local_of;
  for (std::size_t i = 0; i < terms.size(); ++i)
    local_of[terms[i]] = static_cast<VertexId>(i);

  std::vector<VertexId> parent_local(terms.size(), kInvalidVertex);
  std::vector<EdgeId> real_edge(terms.size(), kInvalidEdge);
  std::map<VertexId, VertexId> rep;  // candidate -> terminal representative

  auto attach = [&](VertexId child_term, VertexId parent_term,
                    bool straight_up) {
    VertexId cl = local_of.at(child_term);
    require(parent_local[cl] == kInvalidVertex, "steiner_minor: reattach");
    parent_local[cl] = local_of.at(parent_term);
    if (straight_up && T.parent(child_term) == parent_term)
      real_edge[cl] = T.parent_edge(child_term);
  };

  for (auto it = cand.rbegin(); it != cand.rend(); ++it) {
    VertexId v = *it;
    std::vector<VertexId> child_reps;
    auto ch = vchildren.find(v);
    if (ch != vchildren.end())
      for (VertexId c : ch->second)
        if (rep.count(c)) child_reps.push_back(rep[c]);
    if (is_term[v]) {
      for (VertexId r : child_reps) attach(r, v, /*straight_up=*/true);
      rep[v] = v;
    } else if (!child_reps.empty()) {
      rep[v] = child_reps[0];
      for (std::size_t i = 1; i < child_reps.size(); ++i)
        attach(child_reps[i], child_reps[0], /*straight_up=*/false);
    }
  }

  // Root of the local tree: rep of the top candidate.
  VertexId top = cand.front();  // smallest tin = ancestor of all candidates
  require(rep.count(top) > 0, "steiner_minor: no representative at top");
  VertexId root_local = local_of.at(rep.at(top));
  out.tree = RootedTree(root_local, std::move(parent_local));
  out.real_parent_edge = std::move(real_edge);
  return out;
}

}  // namespace mns
