#include "core/shortcut_engine.hpp"

#include <utility>

#include "core/engine.hpp"
#include "graph/algorithms.hpp"

namespace mns {

namespace {

template <typename Cert>
const Cert& expect(const StructuralCertificate& cert, const char* builder) {
  const Cert* c = std::get_if<Cert>(&cert);
  if (c == nullptr)
    throw InvariantViolation(std::string("ShortcutEngine: builder '") +
                             builder +
                             "' received a certificate of another kind");
  return *c;
}

}  // namespace

std::string builder_name_for(const StructuralCertificate& cert) {
  struct Visitor {
    std::string operator()(const UniformCertificate& u) const {
      switch (u.kind) {
        case UniformCertificate::Kind::kGreedy:
          return "uniform.greedy";
        case UniformCertificate::Kind::kSteiner:
          return "uniform.steiner";
        case UniformCertificate::Kind::kAncestor:
          return "uniform.ancestor";
      }
      throw InvariantViolation("builder_name_for: unknown uniform kind");
    }
    std::string operator()(const TreewidthCertificate&) const {
      return "treewidth";
    }
    std::string operator()(const ApexCertificate&) const { return "apex"; }
    std::string operator()(const CliqueSumCertificate&) const {
      return "cliquesum";
    }
  };
  return std::visit(Visitor{}, cert);
}

TreeFactory center_tree_factory(unsigned seed) {
  return [seed](const Graph& g) {
    Rng rng(seed);
    VertexId c = approximate_center(g, rng);
    return RootedTree::from_bfs(bfs(g, c), c);
  };
}

ShortcutEngine::ShortcutEngine() {
  register_builder("uniform.greedy",
                   [](const Graph& g, const RootedTree& t, const Partition& p,
                      const StructuralCertificate& cert) {
                     (void)expect<UniformCertificate>(cert, "uniform.greedy");
                     return build_greedy_shortcut(g, t, p);
                   });
  register_builder("uniform.steiner",
                   [](const Graph& g, const RootedTree& t, const Partition& p,
                      const StructuralCertificate& cert) {
                     (void)expect<UniformCertificate>(cert, "uniform.steiner");
                     return build_steiner_shortcut(g, t, p);
                   });
  register_builder(
      "uniform.ancestor",
      [](const Graph& g, const RootedTree& t, const Partition& p,
         const StructuralCertificate& cert) {
        const auto& c = expect<UniformCertificate>(cert, "uniform.ancestor");
        return build_ancestor_shortcut(g, t, p, c.levels);
      });
  register_builder(
      "treewidth",
      [](const Graph& g, const RootedTree& t, const Partition& p,
         const StructuralCertificate& cert) {
        const auto& c = expect<TreewidthCertificate>(cert, "treewidth");
        return build_treewidth_shortcut(g, t, p, c.decomposition);
      });
  register_builder(
      "apex", [](const Graph& g, const RootedTree& t, const Partition& p,
                 const StructuralCertificate& cert) {
        const auto& c = expect<ApexCertificate>(cert, "apex");
        return build_apex_shortcut(g, t, p, c.apices, make_oracle(c.inner));
      });
  register_builder(
      "cliquesum",
      [](const Graph& g, const RootedTree& t, const Partition& p,
         const StructuralCertificate& cert) {
        const auto& c = expect<CliqueSumCertificate>(cert, "cliquesum");
        CliqueSumShortcutOptions opt;
        opt.fold = c.fold;
        opt.local_oracle = c.apex_aware
                               ? make_apex_oracle(make_oracle(c.local_oracle))
                               : make_oracle(c.local_oracle);
        opt.bag_apices = c.bag_apices;
        return build_cliquesum_shortcut(g, t, p, c.decomposition,
                                        std::move(opt));
      });
}

void ShortcutEngine::register_builder(std::string name,
                                      ShortcutBuilder builder) {
  require(!name.empty(), "ShortcutEngine: empty builder name");
  require(static_cast<bool>(builder), "ShortcutEngine: null builder");
  auto [it, inserted] = builders_.emplace(std::move(name), std::move(builder));
  if (!inserted)
    throw InvariantViolation("ShortcutEngine: duplicate builder '" +
                             it->first + "'");
}

bool ShortcutEngine::has_builder(std::string_view name) const {
  return builders_.find(name) != builders_.end();
}

std::vector<std::string> ShortcutEngine::builder_names() const {
  std::vector<std::string> out;
  out.reserve(builders_.size());
  for (const auto& [name, fn] : builders_) out.push_back(name);
  return out;
}

const ShortcutBuilder& ShortcutEngine::find_builder(
    std::string_view name) const {
  auto it = builders_.find(name);
  if (it == builders_.end())
    throw InvariantViolation("ShortcutEngine: no builder named '" +
                             std::string(name) + "'");
  return it->second;
}

BuildResult ShortcutEngine::build(const Graph& g, const RootedTree& tree,
                                  const Partition& parts,
                                  const StructuralCertificate& cert) const {
  return build_with(builder_name_for(cert), g, tree, parts, cert);
}

BuildResult ShortcutEngine::build_with(std::string_view name, const Graph& g,
                                       const RootedTree& tree,
                                       const Partition& parts,
                                       const StructuralCertificate& cert) const {
  const ShortcutBuilder& builder = find_builder(name);
  BuildResult out;
  out.builder = std::string(name);
  out.shortcut = builder(g, tree, parts, cert);
  std::string err = validate_tree_restricted(g, tree, out.shortcut);
  if (!err.empty())
    throw InvariantViolation("ShortcutEngine: builder '" + out.builder +
                             "' produced an invalid shortcut: " + err);
  out.metrics = measure_shortcut(g, tree, parts, out.shortcut);
  return out;
}

Shortcut ShortcutEngine::build_shortcut(const Graph& g, const RootedTree& tree,
                                        const Partition& parts,
                                        const StructuralCertificate& cert) const {
  std::string name = builder_name_for(cert);
  Shortcut sc = find_builder(name)(g, tree, parts, cert);
  std::string err = validate_tree_restricted(g, tree, sc);
  if (!err.empty())
    throw InvariantViolation("ShortcutEngine: builder '" + name +
                             "' produced an invalid shortcut: " + err);
  return sc;
}

ShortcutProvider ShortcutEngine::provider(StructuralCertificate cert,
                                          TreeFactory tree) const {
  if (!tree) tree = center_tree_factory();
  std::string name = builder_name_for(cert);
  const ShortcutBuilder& builder = find_builder(name);
  // The provider outlives this call; capture everything it needs by value.
  return [cert = std::move(cert), tree = std::move(tree),
          name = std::move(name),
          builder](const Graph& g, const Partition& parts) {
    RootedTree t = tree(g);
    Shortcut sc = builder(g, t, parts, cert);
    std::string err = validate_tree_restricted(g, t, sc);
    if (!err.empty())
      throw InvariantViolation("ShortcutEngine: builder '" + name +
                               "' produced an invalid shortcut: " + err);
    return sc;
  };
}

const ShortcutEngine& ShortcutEngine::global() {
  static const ShortcutEngine engine;
  return engine;
}

}  // namespace mns
