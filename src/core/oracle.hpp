// Bag oracles: pluggable local shortcut constructors used by the clique-sum
// builder (Theorem 7) for the per-bag "local shortcut" step. Each oracle sees
// an instance-local tree plus terminal sets and returns, per set, the tree
// edges taken (identified by their child vertex).
//
//  - trivial:   nothing (the right choice for width-k bags; Theorem 5)
//  - steiner:   full Steiner subtrees (block 1, congestion unbounded)
//  - greedy:    [HIZ16a]-style tuned capped climbing
//  - apex:      Lemmas 9-10 — handles the bag's apices via cells +
//               cell-assignment, delegating within cells to an inner oracle.
#pragma once

#include <functional>

#include "core/construct_tree.hpp"
#include "graph/rooted_tree.hpp"

namespace mns {

struct LocalInstance {
  RootedTree tree;
  std::vector<std::vector<VertexId>> terminal_sets;  ///< instance-local ids
  std::vector<VertexId> apices;                      ///< instance-local ids
};

using BagOracle =
    std::function<std::vector<TreeEdgeSet>(const LocalInstance&)>;

[[nodiscard]] BagOracle make_trivial_oracle();
[[nodiscard]] BagOracle make_steiner_oracle();
[[nodiscard]] BagOracle make_greedy_oracle();
/// Lemma 9/10 construction; `inner` builds the within-cell local shortcuts.
[[nodiscard]] BagOracle make_apex_oracle(BagOracle inner);

/// Value-type oracle descriptor so certificates stay plain data (printable,
/// comparable, serializable) instead of capturing std::function objects.
enum class OracleKind { kTrivial, kSteiner, kGreedy };

[[nodiscard]] BagOracle make_oracle(OracleKind kind);
[[nodiscard]] const char* oracle_kind_name(OracleKind kind);

}  // namespace mns
