// Theorem 7: shortcut construction on k-clique-sums. Implements Lemma 1's
// local/global split on the (optionally folded, §2.2) decomposition tree:
//
//  * global shortcuts — for part P with LCA node h_P, all spanning-tree edges
//    inside the descendant subtrees of h_P that P reaches, minus h_P's own
//    edges; block roots collapse into B_{h_P}.
//  * local shortcuts — per node, the bag oracle runs on the repaired tree
//    T^2_h (Steiner minor, src/core/local_tree.hpp) for the parts whose LCA
//    is that node; only "real" T edges survive, and edges inside the parent
//    separator are discarded (they belong to an ancestor bag).
#pragma once

#include <optional>

#include "core/oracle.hpp"
#include "core/partition.hpp"
#include "core/shortcut.hpp"
#include "structure/clique_sum.hpp"

namespace mns {

struct CliqueSumShortcutOptions {
  /// Apply the §2.2 heavy-light folding (depth O(log^2 n)). Disable to
  /// reproduce Lemma 1's dependence on depth(DT) (bench E4).
  bool fold = true;
  /// Local constructor within each node; defaults to the tuned greedy oracle.
  BagOracle local_oracle;
  /// Optional per-ORIGINAL-bag apex vertices (global ids) forwarded into the
  /// local instances (consumed by make_apex_oracle).
  std::vector<std::vector<VertexId>> bag_apices;
};

[[nodiscard]] Shortcut build_cliquesum_shortcut(
    const Graph& g, const RootedTree& tree, const Partition& parts,
    const CliqueSumDecomposition& csd, CliqueSumShortcutOptions options = {});

}  // namespace mns
