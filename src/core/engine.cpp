#include "core/engine.hpp"

namespace mns {

namespace {

std::vector<std::vector<VertexId>> member_sets(const Partition& parts) {
  std::vector<std::vector<VertexId>> out;
  out.reserve(parts.num_parts());
  for (PartId p = 0; p < parts.num_parts(); ++p) {
    auto m = parts.members(p);
    out.emplace_back(m.begin(), m.end());
  }
  return out;
}

}  // namespace

Shortcut build_greedy_shortcut(const Graph&, const RootedTree& tree,
                               const Partition& parts) {
  return to_shortcut(tree, tuned_greedy(tree, member_sets(parts)).sets);
}

Shortcut build_steiner_shortcut(const Graph&, const RootedTree& tree,
                                const Partition& parts) {
  return to_shortcut(tree, steiner_subtrees(tree, member_sets(parts)));
}

Shortcut build_ancestor_shortcut(const Graph&, const RootedTree& tree,
                                 const Partition& parts, int levels) {
  return to_shortcut(tree, ancestor_climb(tree, member_sets(parts), levels));
}

Shortcut build_treewidth_shortcut(const Graph& g, const RootedTree& tree,
                                  const Partition& parts,
                                  const TreeDecomposition& td) {
  CliqueSumDecomposition csd = clique_sum_from_tree_decomposition(td, g);
  CliqueSumShortcutOptions opt;
  opt.fold = true;
  opt.local_oracle = make_trivial_oracle();
  return build_cliquesum_shortcut(g, tree, parts, csd, std::move(opt));
}

Shortcut build_apex_shortcut(const Graph&, const RootedTree& tree,
                             const Partition& parts,
                             const std::vector<VertexId>& apices,
                             BagOracle inner) {
  LocalInstance inst{tree, member_sets(parts), apices};
  BagOracle oracle = make_apex_oracle(std::move(inner));
  return to_shortcut(tree, oracle(inst));
}

}  // namespace mns
