// Tree-restricted shortcuts and their quality measures (Definitions 10-13).
//
// A Shortcut assigns each part a set of spanning-tree edges H_i. Quality is
// measured, never assumed: congestion (Def 11) is the max number of parts
// sharing an edge, the block parameter (Def 12) counts the connected
// components of (V, H_i) touching P_i, and quality (Def 13) is
// b * diam(T) + c — exactly the quantity Theorem 1 converts into rounds.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/partition.hpp"
#include "graph/rooted_tree.hpp"

namespace mns {

struct Shortcut {
  /// Per part: edge ids of H_i (tree edges of the ambient graph).
  std::vector<std::vector<EdgeId>> edges_of_part;
};

/// The single hand-off point between the construction layer and the CONGEST
/// layer: given the network and the current partition (e.g. this Boruvka
/// phase's fragments), produce the shortcut to aggregate over.
/// ShortcutEngine::provider() is the canonical way to obtain one.
using ShortcutProvider = std::function<Shortcut(const Graph&, const Partition&)>;

/// How a provider roots the spanning tree on each invocation.
using TreeFactory = std::function<RootedTree(const Graph&)>;

/// Provider returning empty shortcuts (the no-shortcut flooding baseline):
/// every part communicates over G[P_i] alone. Lives here, next to
/// ShortcutProvider itself — it is a core concept, not an MST detail.
[[nodiscard]] ShortcutProvider empty_shortcut_provider();

struct ShortcutMetrics {
  int congestion = 0;        ///< c: max parts per edge (Def 11)
  int block = 0;             ///< b: max block components per part (Def 12)
  int tree_diameter = 0;     ///< d_T
  long long quality = 0;     ///< q = b * d_T + c (Def 13)
  std::vector<int> block_of_part;
  double mean_block = 0.0;
  double mean_congestion = 0.0;  ///< over edges with nonzero congestion
};

/// "" iff every assigned edge is an edge of `tree` (Definition 10) and edge
/// ids are in range. Duplicate edges within one part are rejected.
[[nodiscard]] std::string validate_tree_restricted(const Graph& g,
                                                   const RootedTree& tree,
                                                   const Shortcut& shortcut);

/// Measures congestion / block / quality of `shortcut` for `parts` on `tree`.
[[nodiscard]] ShortcutMetrics measure_shortcut(const Graph& g,
                                               const RootedTree& tree,
                                               const Partition& parts,
                                               const Shortcut& shortcut);

/// Diameter of the spanning tree as a graph (two BFS passes over tree edges).
[[nodiscard]] int tree_diameter(const RootedTree& tree);

}  // namespace mns
