#include "core/oracle.hpp"

#include <algorithm>
#include <set>

#include "structure/cells.hpp"

namespace mns {

BagOracle make_trivial_oracle() {
  return [](const LocalInstance& inst) {
    return std::vector<TreeEdgeSet>(inst.terminal_sets.size());
  };
}

BagOracle make_steiner_oracle() {
  return [](const LocalInstance& inst) {
    return steiner_subtrees(inst.tree, inst.terminal_sets);
  };
}

BagOracle make_greedy_oracle() {
  return [](const LocalInstance& inst) {
    return tuned_greedy(inst.tree, inst.terminal_sets).sets;
  };
}

BagOracle make_oracle(OracleKind kind) {
  switch (kind) {
    case OracleKind::kTrivial:
      return make_trivial_oracle();
    case OracleKind::kSteiner:
      return make_steiner_oracle();
    case OracleKind::kGreedy:
      return make_greedy_oracle();
  }
  throw InvariantViolation("make_oracle: unknown kind");
}

const char* oracle_kind_name(OracleKind kind) {
  switch (kind) {
    case OracleKind::kTrivial:
      return "trivial";
    case OracleKind::kSteiner:
      return "steiner";
    case OracleKind::kGreedy:
      return "greedy";
  }
  return "?";
}

BagOracle make_apex_oracle(BagOracle inner) {
  return [inner = std::move(inner)](const LocalInstance& inst) {
    const RootedTree& tree = inst.tree;
    const std::size_t S = inst.terminal_sets.size();
    std::vector<TreeEdgeSet> out(S);
    if (inst.apices.empty()) return inner(inst);

    std::vector<char> is_apex(tree.num_vertices(), 0);
    for (VertexId a : inst.apices) is_apex[a] = 1;

    // Sets containing an apex receive the whole tree (at most q of them per
    // apex; Theorem 8's +q congestion term).
    std::vector<char> has_apex(S, 0);
    for (std::size_t s = 0; s < S; ++s)
      for (VertexId t : inst.terminal_sets[s])
        if (is_apex[t]) has_apex[s] = 1;
    for (std::size_t s = 0; s < S; ++s)
      if (has_apex[s])
        for (VertexId v = 0; v < tree.num_vertices(); ++v)
          if (v != tree.root()) out[s].push_back(v);

    // Cells: subtrees of T minus the apices (Lemma 9).
    TreeCells tc = cells_from_tree_minus_vertices(tree, inst.apices);
    if (tc.partition.num_cells() == 0) return out;

    // Incidence of apex-free sets with cells.
    std::vector<std::vector<CellId>> intersects(S);
    for (std::size_t s = 0; s < S; ++s) {
      if (has_apex[s]) continue;
      std::set<CellId> touched;
      for (VertexId t : inst.terminal_sets[s]) {
        CellId c = tc.partition.cell_of(t);
        if (c != kInvalidCell) touched.insert(c);
      }
      intersects[s].assign(touched.begin(), touched.end());
    }
    CellAssignment assign =
        assign_cells(intersects, tc.partition.num_cells());

    // Global shortcut: assigned cells contribute their full subtree plus the
    // uplink edge to the apex above the cell root.
    for (std::size_t s = 0; s < S; ++s) {
      if (has_apex[s]) continue;
      for (CellId c : assign.cells_of_part[s]) {
        for (VertexId v : tc.partition.members(c))
          if (v != tc.cell_root[c]) out[s].push_back(v);
        if (tc.uplink_target[c] != kInvalidVertex)
          out[s].push_back(tc.cell_root[c]);  // edge (cell_root -> apex)
      }
    }

    // Local shortcuts inside the <= 2 missing cells of each set, via the
    // inner oracle on the cell's subtree.
    // Group requests per cell first.
    std::vector<std::vector<std::size_t>> requests(tc.partition.num_cells());
    for (std::size_t s = 0; s < S; ++s)
      for (CellId c : assign.missing_cells_of_part[s]) requests[c].push_back(s);

    for (CellId c = 0; c < tc.partition.num_cells(); ++c) {
      if (requests[c].empty()) continue;
      auto cell_members = tc.partition.members(c);
      // Cell-local indexing.
      std::vector<VertexId> to_outer(cell_members.begin(), cell_members.end());
      std::vector<VertexId> outer_to_cell(tree.num_vertices(), kInvalidVertex);
      for (VertexId i = 0; i < static_cast<VertexId>(to_outer.size()); ++i)
        outer_to_cell[to_outer[i]] = i;
      std::vector<VertexId> cparent(to_outer.size(), kInvalidVertex);
      for (VertexId i = 0; i < static_cast<VertexId>(to_outer.size()); ++i) {
        VertexId v = to_outer[i];
        if (v == tc.cell_root[c]) continue;
        cparent[i] = outer_to_cell[tree.parent(v)];
      }
      LocalInstance sub{
          RootedTree(outer_to_cell[tc.cell_root[c]], std::move(cparent)),
          {},
          {}};
      for (std::size_t s : requests[c]) {
        std::vector<VertexId> terms;
        for (VertexId t : inst.terminal_sets[s])
          if (outer_to_cell[t] != kInvalidVertex &&
              tc.partition.cell_of(t) == c)
            terms.push_back(outer_to_cell[t]);
        sub.terminal_sets.push_back(std::move(terms));
      }
      std::vector<TreeEdgeSet> local = inner(sub);
      for (std::size_t i = 0; i < requests[c].size(); ++i)
        for (VertexId cv : local[i]) out[requests[c][i]].push_back(to_outer[cv]);
    }

    // De-duplicate (global + local can overlap in principle).
    for (auto& es : out) {
      std::sort(es.begin(), es.end());
      es.erase(std::unique(es.begin(), es.end()), es.end());
    }
    return out;
  };
}

}  // namespace mns
