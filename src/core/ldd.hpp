// Low-diameter decomposition (LDD) by seeded exponential-delay ball growing
// — the second structural partition source next to the certificate families.
//
// Miller-Peng-Xu-style construction, discretized and derandomized by seed:
// every vertex draws a geometric start delay from a hash of (seed, vertex),
// then a multi-source BFS grows balls outward from the vertices whose delay
// expires first; a vertex joins the first ball to reach it. The result is a
// total partition into connected clusters whose hop radius is bounded by the
// delay cap O(log n / beta), with an expected beta-fraction of edges cut.
//
// Why it lives in core/: Chang and Barenboim-Elkin-Gavoille (PAPERS.md) make
// LDD the reusable primitive for symmetry-breaking on bounded-genus and
// minor-free graphs, and here it plays the same role the certificate's
// partitions play for shortcuts — SolverCore computes ONE decomposition per
// network (weight-independent, so every workload shares it) and feeds its
// partition through ShortcutEngine and the shortcut cache
// (SolveOptions::partition == PartitionSource::kLdd, DESIGN.md §13).
//
// Determinism contract: integer-only arithmetic on splitmix64 hashes — no
// std::log / libm in the per-vertex delay draw — so the decomposition is
// bit-identical across platforms, thread counts and transport ranks, and the
// committed bench baselines can pin its shape.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/partition.hpp"

namespace mns {

struct LddOptions {
  /// Cut parameter: each vertex's start delay is Geometric(beta), so balls
  /// have hop radius O(log n / beta) and an expected ~beta fraction of edges
  /// crosses clusters. Smaller beta = bigger, rounder clusters.
  double beta = 0.25;
  /// Seeds the per-vertex delay hashes; same seed = same decomposition.
  std::uint64_t seed = 1;
  /// Hard cap on the start delays (and thus the cluster hop radius);
  /// 0 = auto, about 4 ln(n) / beta.
  int delay_cap = 0;
};

/// One decomposition: a total partition into connected clusters plus the
/// BFS growth forest that produced it (the forest is what intra-cluster
/// routing and SSSP cell distances reuse).
struct LddDecomposition {
  Partition parts;                    ///< cluster of every vertex (total)
  std::vector<VertexId> center;       ///< per part: the ball's center vertex
  std::vector<VertexId> parent;       ///< growth forest; kInvalidVertex at centers
  std::vector<EdgeId> parent_edge;    ///< edge to parent; kInvalidEdge at centers
  std::vector<int> depth;             ///< hop distance to the own center
  int radius = 0;                     ///< max depth — the construction charge
  EdgeId cut_edges = 0;               ///< edges whose endpoints differ in cluster
};

/// Deterministic seeded ball growing over the whole graph. Works on
/// disconnected graphs too (every component is covered by its own balls).
[[nodiscard]] LddDecomposition ldd_decompose(const Graph& g,
                                             const LddOptions& options = {});

/// Weighted distance from every vertex to its cluster center along the
/// growth forest (real path lengths — what approx SSSP uses as cell
/// distances so estimates never undershoot true distances).
[[nodiscard]] std::vector<Weight> ldd_forest_distances(
    const LddDecomposition& ldd, const Graph& g, const std::vector<Weight>& w);

/// "" iff the decomposition is internally consistent for `g`: the partition
/// is total and valid, every cluster's forest paths lead to its center with
/// correct depths, and radius/cut_edges match the structure.
[[nodiscard]] std::string validate_ldd(const Graph& g,
                                       const LddDecomposition& ldd);

}  // namespace mns
