#include "core/construct_tree.hpp"

#include <algorithm>
#include <cstdint>

namespace mns {

namespace {

/// Per-set ownership bookkeeping: (set, vertex) pairs packed into one
/// insert-only open-addressing table (key = set << 32 | vertex). The greedy
/// constructors probe this once per climb step at n-scale set counts, so the
/// node-based per-set hash sets this replaces dominated construction time
/// (DESIGN.md §9); membership semantics are identical.
class Owned {
 public:
  explicit Owned(std::size_t expected_pairs) {
    std::size_t cap = 64;
    while (cap < expected_pairs * 2) cap *= 2;
    slot_.assign(cap, 0);
    mask_ = cap - 1;
  }

  /// True iff (s, v) was not yet present (and is now).
  bool insert(std::size_t s, VertexId v) {
    const std::uint64_t key = pack(s, v);
    std::size_t i = probe(key);
    if (slot_[i] == key) return false;
    slot_[i] = key;
    if (++size_ * 2 > slot_.size()) grow();
    return true;
  }

  [[nodiscard]] bool contains(std::size_t s, VertexId v) const {
    return slot_[probe(pack(s, v))] == pack(s, v);
  }

 private:
  // Keys are stored biased by +1 so 0 can mark an empty slot.
  static std::uint64_t pack(std::size_t s, VertexId v) {
    return (static_cast<std::uint64_t>(s) << 32 |
            static_cast<std::uint32_t>(v)) +
           1;
  }
  static std::size_t mix(std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }
  /// Index of `key` if present, else of the empty slot where it belongs.
  [[nodiscard]] std::size_t probe(std::uint64_t key) const {
    std::size_t i = mix(key) & mask_;
    while (slot_[i] != 0 && slot_[i] != key) i = (i + 1) & mask_;
    return i;
  }
  void grow() {
    std::vector<std::uint64_t> old = std::move(slot_);
    slot_.assign(old.size() * 2, 0);
    mask_ = slot_.size() - 1;
    for (std::uint64_t key : old)
      if (key != 0) slot_[probe(key)] = key;
  }

  std::vector<std::uint64_t> slot_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

/// Sum of terminal counts — the Owned sizing hint every constructor starts
/// from (climbs add more; the table grows geometrically).
std::size_t total_terminals(
    const std::vector<std::vector<VertexId>>& terminal_sets) {
  std::size_t total = 0;
  for (const auto& ts : terminal_sets) total += ts.size();
  return total;
}

}  // namespace

std::vector<TreeEdgeSet> ancestor_climb(
    const RootedTree& tree,
    const std::vector<std::vector<VertexId>>& terminal_sets, int levels) {
  std::vector<TreeEdgeSet> out(terminal_sets.size());
  Owned owned(total_terminals(terminal_sets));
  for (std::size_t s = 0; s < terminal_sets.size(); ++s) {
    for (VertexId t : terminal_sets[s]) {
      VertexId v = t;
      int steps = 0;
      while (v != tree.root() && (levels < 0 || steps < levels)) {
        if (!owned.insert(s, v)) break;  // already walked from here
        out[s].push_back(v);
        v = tree.parent(v);
        ++steps;
      }
    }
  }
  return out;
}

std::vector<TreeEdgeSet> steiner_subtrees(
    const RootedTree& tree,
    const std::vector<std::vector<VertexId>>& terminal_sets) {
  std::vector<TreeEdgeSet> out(terminal_sets.size());
  Owned owned(total_terminals(terminal_sets));
  for (std::size_t s = 0; s < terminal_sets.size(); ++s) {
    const auto& ts = terminal_sets[s];
    if (ts.size() <= 1) continue;
    // The set's LCA.
    VertexId anchor = ts[0];
    for (VertexId t : ts) anchor = tree.lca(anchor, t);
    owned.insert(s, anchor);
    for (VertexId t : ts) {
      VertexId v = t;
      while (owned.insert(s, v)) {
        out[s].push_back(v);  // edge (v, parent(v)) — v != anchor here since
                              // anchor pre-inserted stops the walk
        v = tree.parent(v);
      }
    }
  }
  return out;
}

std::vector<TreeEdgeSet> capped_greedy(
    const RootedTree& tree,
    const std::vector<std::vector<VertexId>>& terminal_sets,
    int congestion_cap) {
  require(congestion_cap >= 1, "capped_greedy: cap must be >= 1");
  const std::size_t S = terminal_sets.size();
  const int height = tree.height();
  std::vector<TreeEdgeSet> out(S);
  Owned owned(total_terminals(terminal_sets));
  // heads_left[s]: current number of components (terminals merge as heads
  // meet owned territory). Stop climbing at 1.
  std::vector<int> heads_left(S, 0);
  // Buckets of (vertex, set) climbing fronts by depth.
  std::vector<std::vector<std::pair<VertexId, std::size_t>>> bucket(height + 1);
  for (std::size_t s = 0; s < S; ++s) {
    for (VertexId t : terminal_sets[s]) {
      if (owned.insert(s, t)) {
        ++heads_left[s];
        bucket[tree.depth(t)].push_back({t, s});
      }
    }
  }
  // Initial ancestor-terminal merges happen naturally during the climb.
  std::vector<int> edge_load(tree.num_vertices(), 0);  // keyed by child vertex
  for (int d = height; d >= 1; --d) {
    for (auto [v, s] : bucket[d]) {
      if (heads_left[s] <= 1) continue;  // set already connected
      if (edge_load[v] >= congestion_cap) continue;  // freeze: block root
      ++edge_load[v];
      out[s].push_back(v);
      VertexId w = tree.parent(v);
      if (owned.insert(s, w)) {
        bucket[d - 1].push_back({w, s});
      } else {
        --heads_left[s];  // merged into own territory
      }
    }
  }
  return out;
}

TunedGreedyResult tuned_greedy(
    const RootedTree& tree,
    const std::vector<std::vector<VertexId>>& terminal_sets) {
  const int d = std::max(1, tree_diameter(tree));
  TunedGreedyResult best;
  long long best_quality = -1;
  // Scratch reused across the cap ladder: per-edge load and a stamp array
  // marking which vertices the current set has touched (distinct-count
  // without materializing per-set vertex sets).
  std::vector<int> load(tree.num_vertices());
  std::vector<std::int64_t> stamp(tree.num_vertices(), -1);
  std::int64_t mark = 0;
  for (int cap = 1;; cap *= 2) {
    std::vector<TreeEdgeSet> sets = capped_greedy(tree, terminal_sets, cap);
    // Quality from these sets directly: block = components after climb,
    // congestion <= cap (use measured max).
    std::fill(load.begin(), load.end(), 0);
    int congestion = 0;
    for (const auto& es : sets)
      for (VertexId v : es) congestion = std::max(congestion, ++load[v]);
    // Blocks: climbing leaves each set's acquired edges forming components;
    // components = |distinct vertices touched| - |edges|.
    int block = 1;
    for (std::size_t s = 0; s < sets.size(); ++s) {
      ++mark;
      int distinct = 0;
      auto touch = [&](VertexId v) {
        if (stamp[v] != mark) {
          stamp[v] = mark;
          ++distinct;
        }
      };
      for (VertexId v : sets[s]) {
        touch(v);
        touch(tree.parent(v));
      }
      for (VertexId t : terminal_sets[s]) touch(t);
      block = std::max(block, distinct - static_cast<int>(sets[s].size()));
    }
    long long q = static_cast<long long>(block) * d + congestion;
    if (best_quality < 0 || q < best_quality) {
      best_quality = q;
      best.sets = std::move(sets);
      best.chosen_cap = cap;
    }
    if (cap >= static_cast<int>(terminal_sets.size()) || cap >= 1 << 20) break;
  }
  return best;
}

Shortcut to_shortcut(const RootedTree& tree,
                     const std::vector<TreeEdgeSet>& sets) {
  Shortcut sc;
  sc.edges_of_part.resize(sets.size());
  for (std::size_t s = 0; s < sets.size(); ++s)
    for (VertexId v : sets[s]) {
      EdgeId e = tree.parent_edge(v);
      require(e != kInvalidEdge, "to_shortcut: tree lacks edge bindings");
      sc.edges_of_part[s].push_back(e);
    }
  return sc;
}

}  // namespace mns
