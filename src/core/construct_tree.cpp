#include "core/construct_tree.hpp"

#include <algorithm>
#include <set>
#include <unordered_set>

namespace mns {

namespace {

/// Per-set ownership bookkeeping with O(1) amortized queries: (set, vertex)
/// pairs packed into per-set hash sets.
struct Owned {
  std::vector<std::unordered_set<VertexId>> by_set;
  explicit Owned(std::size_t sets) : by_set(sets) {}
  bool insert(std::size_t s, VertexId v) { return by_set[s].insert(v).second; }
  [[nodiscard]] bool contains(std::size_t s, VertexId v) const {
    return by_set[s].count(v) > 0;
  }
};

}  // namespace

std::vector<TreeEdgeSet> ancestor_climb(
    const RootedTree& tree,
    const std::vector<std::vector<VertexId>>& terminal_sets, int levels) {
  std::vector<TreeEdgeSet> out(terminal_sets.size());
  Owned owned(terminal_sets.size());
  for (std::size_t s = 0; s < terminal_sets.size(); ++s) {
    for (VertexId t : terminal_sets[s]) {
      VertexId v = t;
      int steps = 0;
      while (v != tree.root() && (levels < 0 || steps < levels)) {
        if (!owned.insert(s, v)) break;  // already walked from here
        out[s].push_back(v);
        v = tree.parent(v);
        ++steps;
      }
    }
  }
  return out;
}

std::vector<TreeEdgeSet> steiner_subtrees(
    const RootedTree& tree,
    const std::vector<std::vector<VertexId>>& terminal_sets) {
  std::vector<TreeEdgeSet> out(terminal_sets.size());
  Owned owned(terminal_sets.size());
  for (std::size_t s = 0; s < terminal_sets.size(); ++s) {
    const auto& ts = terminal_sets[s];
    if (ts.size() <= 1) continue;
    // The set's LCA.
    VertexId anchor = ts[0];
    for (VertexId t : ts) anchor = tree.lca(anchor, t);
    owned.insert(s, anchor);
    for (VertexId t : ts) {
      VertexId v = t;
      while (owned.insert(s, v)) {
        out[s].push_back(v);  // edge (v, parent(v)) — v != anchor here since
                              // anchor pre-inserted stops the walk
        v = tree.parent(v);
      }
    }
  }
  return out;
}

std::vector<TreeEdgeSet> capped_greedy(
    const RootedTree& tree,
    const std::vector<std::vector<VertexId>>& terminal_sets,
    int congestion_cap) {
  require(congestion_cap >= 1, "capped_greedy: cap must be >= 1");
  const std::size_t S = terminal_sets.size();
  const int height = tree.height();
  std::vector<TreeEdgeSet> out(S);
  Owned owned(S);
  // heads_left[s]: current number of components (terminals merge as heads
  // meet owned territory). Stop climbing at 1.
  std::vector<int> heads_left(S, 0);
  // Buckets of (vertex, set) climbing fronts by depth.
  std::vector<std::vector<std::pair<VertexId, std::size_t>>> bucket(height + 1);
  for (std::size_t s = 0; s < S; ++s) {
    for (VertexId t : terminal_sets[s]) {
      if (owned.insert(s, t)) {
        ++heads_left[s];
        bucket[tree.depth(t)].push_back({t, s});
      }
    }
  }
  // Initial ancestor-terminal merges happen naturally during the climb.
  std::vector<int> edge_load(tree.num_vertices(), 0);  // keyed by child vertex
  for (int d = height; d >= 1; --d) {
    for (auto [v, s] : bucket[d]) {
      if (heads_left[s] <= 1) continue;  // set already connected
      if (edge_load[v] >= congestion_cap) continue;  // freeze: block root
      ++edge_load[v];
      out[s].push_back(v);
      VertexId w = tree.parent(v);
      if (owned.insert(s, w)) {
        bucket[d - 1].push_back({w, s});
      } else {
        --heads_left[s];  // merged into own territory
      }
    }
  }
  return out;
}

TunedGreedyResult tuned_greedy(
    const RootedTree& tree,
    const std::vector<std::vector<VertexId>>& terminal_sets) {
  const int d = std::max(1, tree_diameter(tree));
  TunedGreedyResult best;
  long long best_quality = -1;
  for (int cap = 1;; cap *= 2) {
    std::vector<TreeEdgeSet> sets = capped_greedy(tree, terminal_sets, cap);
    // Quality from these sets directly: block = components after climb,
    // congestion <= cap (use measured max).
    std::vector<int> load(tree.num_vertices(), 0);
    int congestion = 0;
    for (const auto& es : sets)
      for (VertexId v : es) congestion = std::max(congestion, ++load[v]);
    // Blocks: recount per set via a small DSU-free pass — climbing leaves
    // each set's acquired edges forming components; count roots = terminals
    // minus merges is already tracked implicitly, so recompute exactly.
    int block = 1;
    {
      // Component count per set: heads that never merged. Recompute by
      // building adjacency on the fly is costly; reuse capped_greedy's
      // accounting by running it again is wasteful — instead compute from
      // the edge sets: components = |vertices touched| - |edges|.
      std::vector<std::set<VertexId>> verts(sets.size());
      for (std::size_t s = 0; s < sets.size(); ++s) {
        for (VertexId v : sets[s]) {
          verts[s].insert(v);
          verts[s].insert(tree.parent(v));
        }
        for (VertexId t : terminal_sets[s]) verts[s].insert(t);
        int comps = static_cast<int>(verts[s].size()) -
                    static_cast<int>(sets[s].size());
        block = std::max(block, comps);
      }
    }
    long long q = static_cast<long long>(block) * d + congestion;
    if (best_quality < 0 || q < best_quality) {
      best_quality = q;
      best.sets = std::move(sets);
      best.chosen_cap = cap;
    }
    if (cap >= static_cast<int>(terminal_sets.size()) || cap >= 1 << 20) break;
  }
  return best;
}

Shortcut to_shortcut(const RootedTree& tree,
                     const std::vector<TreeEdgeSet>& sets) {
  Shortcut sc;
  sc.edges_of_part.resize(sets.size());
  for (std::size_t s = 0; s < sets.size(); ++s)
    for (VertexId v : sets[s]) {
      EdgeId e = tree.parent_edge(v);
      require(e != kInvalidEdge, "to_shortcut: tree lacks edge bindings");
      sc.edges_of_part[s].push_back(e);
    }
  return sc;
}

}  // namespace mns
