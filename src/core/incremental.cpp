#include "core/incremental.hpp"

#include <algorithm>
#include <span>
#include <string>

namespace mns {
namespace {

[[noreturn]] void bad(const std::string& what) { throw UpdateError(what); }

[[nodiscard]] bool contains(std::span<const VertexId> sorted, VertexId v) {
  return std::binary_search(sorted.begin(), sorted.end(), v);
}

}  // namespace

TreePatch patch_tree(const RootedTree& tree, const Graph& new_g,
                     const GraphDelta& delta) {
  const VertexId old_n = tree.num_vertices();
  const VertexId new_n = new_g.num_vertices();
  require(static_cast<std::size_t>(old_n) == delta.vertex_map.size(),
          "patch_tree: delta does not match the tree's graph");
  if (new_n == 0) bad("patch_tree: update removes every vertex");

  TreePatch patch;
  patch.parent.assign(static_cast<std::size_t>(new_n), kInvalidVertex);
  patch.parent_edge.assign(static_cast<std::size_t>(new_n), kInvalidEdge);
  std::vector<char> broken(static_cast<std::size_t>(new_n), 0);

  patch.root = kInvalidVertex;
  for (VertexId v = 0; v < old_n; ++v) {
    const VertexId nv = delta.vertex_map[static_cast<std::size_t>(v)];
    if (nv == kInvalidVertex) continue;
    if (v == tree.root()) {
      patch.root = nv;
      continue;
    }
    const EdgeId pe = tree.parent_edge(v);
    if (pe == kInvalidEdge)
      bad("patch_tree: tree carries no edge bindings");
    const VertexId np =
        delta.vertex_map[static_cast<std::size_t>(tree.parent(v))];
    const EdgeId ne = delta.edge_map[static_cast<std::size_t>(pe)];
    if (np == kInvalidVertex || ne == kInvalidEdge) {
      broken[static_cast<std::size_t>(nv)] = 1;
    } else {
      patch.parent[static_cast<std::size_t>(nv)] = np;
      patch.parent_edge[static_cast<std::size_t>(nv)] = ne;
    }
  }
  // Vertices with no link and no designated root are broken: the added
  // vertices, plus survivors whose parent vertex/edge vanished (marked
  // above).
  for (VertexId nv = 0; nv < new_n; ++nv)
    if (nv != patch.root &&
        patch.parent[static_cast<std::size_t>(nv)] == kInvalidVertex)
      broken[static_cast<std::size_t>(nv)] = 1;

  // If the root itself was removed, promote the smallest broken vertex; its
  // chain already points nowhere, so no reversal is needed for it.
  if (patch.root == kInvalidVertex) {
    for (VertexId nv = 0; nv < new_n; ++nv)
      if (broken[static_cast<std::size_t>(nv)]) {
        patch.root = nv;
        broken[static_cast<std::size_t>(nv)] = 0;
        break;
      }
    require(patch.root != kInvalidVertex, "patch_tree: no root candidate");
  }

  // state: 0 = unresolved, 1 = attached to the root, 2 = dangling (its
  // parent chain ends at a broken vertex).
  std::vector<char> state(static_cast<std::size_t>(new_n), 0);
  std::vector<VertexId> chain;
  auto resolve_states = [&] {
    std::fill(state.begin(), state.end(), char{0});
    state[static_cast<std::size_t>(patch.root)] = 1;
    for (VertexId nv = 0; nv < new_n; ++nv)
      if (broken[static_cast<std::size_t>(nv)])
        state[static_cast<std::size_t>(nv)] = 2;
    for (VertexId nv = 0; nv < new_n; ++nv) {
      if (state[static_cast<std::size_t>(nv)] != 0) continue;
      chain.clear();
      VertexId cur = nv;
      while (state[static_cast<std::size_t>(cur)] == 0) {
        chain.push_back(cur);
        cur = patch.parent[static_cast<std::size_t>(cur)];
      }
      const char s = state[static_cast<std::size_t>(cur)];
      for (VertexId x : chain) state[static_cast<std::size_t>(x)] = s;
    }
  };
  resolve_states();

  // Re-hang one dangling subpath per round: pick the smallest dangling
  // vertex x with an attached neighbor y and reverse the parent path from x
  // up to its broken head, grafting the whole component below y.
  for (;;) {
    VertexId x = kInvalidVertex, y = kInvalidVertex;
    EdgeId xy = kInvalidEdge;
    bool any_dangling = false;
    for (VertexId nv = 0; nv < new_n && x == kInvalidVertex; ++nv) {
      if (state[static_cast<std::size_t>(nv)] != 2) continue;
      any_dangling = true;
      auto nbrs = new_g.neighbors(nv);
      auto eids = new_g.incident_edges(nv);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (state[static_cast<std::size_t>(nbrs[i])] == 1) {
          x = nv;
          y = nbrs[i];
          xy = eids[i];
          break;
        }
      }
    }
    if (!any_dangling) break;
    if (x == kInvalidVertex)
      bad("patch_tree: update disconnects the graph; no spanning tree exists");

    VertexId cur = x, np = y;
    EdgeId ne = xy;
    for (;;) {
      const VertexId old_parent = patch.parent[static_cast<std::size_t>(cur)];
      const EdgeId old_edge = patch.parent_edge[static_cast<std::size_t>(cur)];
      patch.parent[static_cast<std::size_t>(cur)] = np;
      patch.parent_edge[static_cast<std::size_t>(cur)] = ne;
      if (broken[static_cast<std::size_t>(cur)]) {
        broken[static_cast<std::size_t>(cur)] = 0;
        break;
      }
      np = cur;
      ne = old_edge;
      cur = old_parent;
    }
    ++patch.subpaths_rebuilt;
    resolve_states();
  }
  return patch;
}

namespace {

// Shared by the treewidth and clique-sum paths: the inserted-edge endpoints
// live in the extended old id space ([old_n, old_n + add) = added vertices).
struct ExtendedIds {
  VertexId old_n = 0;
  VertexId survivors = 0;
  const GraphDelta* delta = nullptr;

  [[nodiscard]] bool is_new(VertexId v) const { return v >= old_n; }
  [[nodiscard]] VertexId to_new(VertexId v) const {
    return is_new(v) ? survivors + (v - old_n)
                     : delta->vertex_map[static_cast<std::size_t>(v)];
  }
};

[[nodiscard]] ExtendedIds make_extended(const Graph& old_g,
                                        const GraphDelta& delta) {
  ExtendedIds ext{old_g.num_vertices(), 0, &delta};
  for (VertexId v = 0; v < ext.old_n; ++v)
    if (delta.vertex_map[static_cast<std::size_t>(v)] != kInvalidVertex)
      ++ext.survivors;
  return ext;
}

// Old neighbors (extended old ids) each added vertex gains from the batch;
// rejects edges between two added vertices.
[[nodiscard]] std::vector<std::vector<VertexId>> added_vertex_neighbors(
    const ExtendedIds& ext, const UpdateBatch& batch) {
  std::vector<std::vector<VertexId>> nbrs(
      static_cast<std::size_t>(batch.add_vertices));
  for (const EdgeInsert& ins : batch.insert_edges) {
    const bool nu = ext.is_new(ins.u), nv = ext.is_new(ins.v);
    if (nu && nv)
      bad("update_certificate: an edge between two added vertices is not "
          "supported; supply a new certificate");
    if (nu) nbrs[static_cast<std::size_t>(ins.u - ext.old_n)].push_back(ins.v);
    if (nv) nbrs[static_cast<std::size_t>(ins.v - ext.old_n)].push_back(ins.u);
  }
  for (std::size_t i = 0; i < nbrs.size(); ++i)
    if (nbrs[i].empty())
      bad("update_certificate: an added vertex has no inserted edges");
  return nbrs;
}

[[nodiscard]] StructuralCertificate update_treewidth(
    const TreewidthCertificate& cert, const Graph& old_g,
    const GraphDelta& delta, const UpdateBatch& batch) {
  const TreeDecomposition& td = cert.decomposition;
  const ExtendedIds ext = make_extended(old_g, delta);

  std::vector<std::vector<VertexId>> bags(
      static_cast<std::size_t>(td.num_bags()));
  std::vector<BagId> parent(static_cast<std::size_t>(td.num_bags()));
  for (BagId b = 0; b < td.num_bags(); ++b) {
    parent[static_cast<std::size_t>(b)] = td.parent(b);
    for (VertexId v : td.bag(b)) {
      VertexId nv = delta.vertex_map[static_cast<std::size_t>(v)];
      if (nv != kInvalidVertex)
        bags[static_cast<std::size_t>(b)].push_back(nv);
    }
  }

  // Every inserted edge between existing vertices must already be covered.
  for (const EdgeInsert& ins : batch.insert_edges) {
    if (ext.is_new(ins.u) || ext.is_new(ins.v)) continue;
    bool covered = false;
    for (BagId b : td.bags_containing(ins.u))
      if (contains(td.bag(b), ins.v)) {
        covered = true;
        break;
      }
    if (!covered)
      bad("update_certificate: inserted edge is not covered by any bag of "
          "the treewidth certificate; supply a new certificate");
  }

  // Each added vertex gets a fresh bag {w} ∪ N(w) under a bag that already
  // holds all of N(w) — the only extension that preserves the axioms.
  const auto added = added_vertex_neighbors(ext, batch);
  for (std::size_t i = 0; i < added.size(); ++i) {
    BagId host = kInvalidBag;
    for (BagId b : td.bags_containing(added[i][0])) {
      bool all = true;
      for (VertexId u : added[i]) all = all && contains(td.bag(b), u);
      if (all) {
        host = b;
        break;
      }
    }
    if (host == kInvalidBag)
      bad("update_certificate: an added vertex's neighbors share no bag of "
          "the treewidth certificate; supply a new certificate");
    std::vector<VertexId> bag{ext.to_new(
        static_cast<VertexId>(ext.old_n + static_cast<VertexId>(i)))};
    for (VertexId u : added[i]) bag.push_back(ext.to_new(u));
    bags.push_back(std::move(bag));
    parent.push_back(host);
  }
  return treewidth_certificate(
      TreeDecomposition(std::move(bags), std::move(parent)));
}

[[nodiscard]] StructuralCertificate update_cliquesum(
    const CliqueSumCertificate& cert, const Graph& old_g, const Graph& new_g,
    const GraphDelta& delta, const UpdateBatch& batch) {
  const CliqueSumDecomposition& csd = cert.decomposition;
  const ExtendedIds ext = make_extended(old_g, delta);

  std::vector<std::vector<VertexId>> bag_vertices(
      static_cast<std::size_t>(csd.num_bags()));
  std::vector<std::vector<EdgeId>> bag_edges(
      static_cast<std::size_t>(csd.num_bags()));
  std::vector<BagId> parent(static_cast<std::size_t>(csd.num_bags()));
  std::vector<std::vector<VertexId>> parent_clique(
      static_cast<std::size_t>(csd.num_bags()));
  for (BagId b = 0; b < csd.num_bags(); ++b) {
    parent[static_cast<std::size_t>(b)] = csd.parent(b);
    for (VertexId v : csd.bag_vertices(b)) {
      VertexId nv = delta.vertex_map[static_cast<std::size_t>(v)];
      if (nv != kInvalidVertex)
        bag_vertices[static_cast<std::size_t>(b)].push_back(nv);
    }
    for (EdgeId e : csd.bag_edges(b)) {
      EdgeId ne = delta.edge_map[static_cast<std::size_t>(e)];
      if (ne != kInvalidEdge)
        bag_edges[static_cast<std::size_t>(b)].push_back(ne);
    }
    for (VertexId v : csd.parent_clique(b)) {
      VertexId nv = delta.vertex_map[static_cast<std::size_t>(v)];
      if (nv != kInvalidVertex)
        parent_clique[static_cast<std::size_t>(b)].push_back(nv);
    }
  }

  // Bag edges partition E (Definition 8): each inserted edge between
  // existing vertices is assigned to the first bag holding both endpoints.
  for (const EdgeInsert& ins : batch.insert_edges) {
    if (ext.is_new(ins.u) || ext.is_new(ins.v)) continue;
    BagId host = kInvalidBag;
    for (BagId b = 0; b < csd.num_bags() && host == kInvalidBag; ++b)
      if (contains(csd.bag_vertices(b), ins.u) &&
          contains(csd.bag_vertices(b), ins.v))
        host = b;
    if (host == kInvalidBag)
      bad("update_certificate: inserted edge is not covered by any bag of "
          "the clique-sum certificate; supply a new certificate");
    const EdgeId ne = new_g.find_edge(ext.to_new(ins.u), ext.to_new(ins.v));
    require(ne != kInvalidEdge, "update_certificate: inserted edge missing");
    bag_edges[static_cast<std::size_t>(host)].push_back(ne);
  }

  // Each added vertex becomes a fresh leaf bag glued along its neighbor set.
  const auto added = added_vertex_neighbors(ext, batch);
  for (std::size_t i = 0; i < added.size(); ++i) {
    BagId host = kInvalidBag;
    for (BagId b = 0; b < csd.num_bags() && host == kInvalidBag; ++b) {
      bool all = true;
      for (VertexId u : added[i]) all = all && contains(csd.bag_vertices(b), u);
      if (all) host = b;
    }
    if (host == kInvalidBag)
      bad("update_certificate: an added vertex's neighbors share no bag of "
          "the clique-sum certificate; supply a new certificate");
    const VertexId w =
        ext.to_new(static_cast<VertexId>(ext.old_n + static_cast<VertexId>(i)));
    std::vector<VertexId> verts{w};
    std::vector<VertexId> clique;
    std::vector<EdgeId> edges;
    for (VertexId u : added[i]) {
      verts.push_back(ext.to_new(u));
      clique.push_back(ext.to_new(u));
      const EdgeId ne = new_g.find_edge(w, ext.to_new(u));
      require(ne != kInvalidEdge, "update_certificate: inserted edge missing");
      edges.push_back(ne);
    }
    bag_vertices.push_back(std::move(verts));
    bag_edges.push_back(std::move(edges));
    parent.push_back(host);
    parent_clique.push_back(std::move(clique));
  }

  CliqueSumCertificate out = cert;
  out.decomposition = CliqueSumDecomposition(
      std::move(bag_vertices), std::move(bag_edges), std::move(parent),
      std::move(parent_clique));
  // bag_apices is indexed by ORIGINAL bag id; remap and pad for new bags.
  for (auto& apices : out.bag_apices) {
    std::vector<VertexId> mapped;
    for (VertexId v : apices) {
      VertexId nv = delta.vertex_map[static_cast<std::size_t>(v)];
      if (nv != kInvalidVertex) mapped.push_back(nv);
    }
    apices = std::move(mapped);
  }
  if (!out.bag_apices.empty())
    out.bag_apices.resize(
        static_cast<std::size_t>(out.decomposition.num_bags()));
  return out;
}

}  // namespace

StructuralCertificate update_certificate(const StructuralCertificate& cert,
                                         const Graph& old_g,
                                         const Graph& new_g,
                                         const GraphDelta& delta,
                                         const UpdateBatch& batch) {
  if (std::holds_alternative<UniformCertificate>(cert)) return cert;
  if (const auto* tw = std::get_if<TreewidthCertificate>(&cert))
    return update_treewidth(*tw, old_g, delta, batch);
  if (const auto* ap = std::get_if<ApexCertificate>(&cert)) {
    ApexCertificate out = *ap;
    std::vector<VertexId> mapped;
    for (VertexId v : out.apices) {
      VertexId nv = delta.vertex_map[static_cast<std::size_t>(v)];
      if (nv != kInvalidVertex) mapped.push_back(nv);
    }
    out.apices = std::move(mapped);
    return out;
  }
  return update_cliquesum(std::get<CliqueSumCertificate>(cert), old_g, new_g,
                          delta, batch);
}

}  // namespace mns
