// Uniform (structure-oblivious) tree-restricted shortcut constructors in the
// spirit of [HIZ16a]: they see only the spanning tree and the parts, exactly
// like the distributed algorithm the paper's Theorem 1 relies on. Used both
// as stand-alone constructions and as the base-case "oracle" inside the
// clique-sum / apex composition builders.
//
// All constructors work on *terminal sets*, which are allowed to be
// disconnected inside a local subproblem (the composition builders restrict
// parts to bags); validity of top-level parts is checked separately.
#pragma once

#include <functional>
#include <vector>

#include "core/shortcut.hpp"
#include "graph/rooted_tree.hpp"

namespace mns {

/// Edges identified by the child endpoint: taking "vertex v" means taking the
/// tree edge (v, parent(v)).
using TreeEdgeSet = std::vector<VertexId>;

/// Every terminal climbs `levels` tree levels toward the root (-1 = all the
/// way). Small levels trade block count for congestion.
[[nodiscard]] std::vector<TreeEdgeSet> ancestor_climb(
    const RootedTree& tree,
    const std::vector<std::vector<VertexId>>& terminal_sets, int levels);

/// Each set takes its full Steiner subtree in T (paths to the set's LCA):
/// block = 1 by construction, congestion whatever it costs.
[[nodiscard]] std::vector<TreeEdgeSet> steiner_subtrees(
    const RootedTree& tree,
    const std::vector<std::vector<VertexId>>& terminal_sets);

/// Level-synchronous capped greedy: heads climb from the terminals toward the
/// root, merging when they meet previously acquired vertices of their own
/// set; an edge admits at most `congestion_cap` sets, later arrivals freeze
/// in place (becoming block roots).
[[nodiscard]] std::vector<TreeEdgeSet> capped_greedy(
    const RootedTree& tree,
    const std::vector<std::vector<VertexId>>& terminal_sets,
    int congestion_cap);

/// Runs capped_greedy over a geometric ladder of caps and keeps the result
/// with the best quality b * diam(T) + c (the [HIZ16a]-style tuning loop a
/// distributed implementation performs by doubling).
struct TunedGreedyResult {
  std::vector<TreeEdgeSet> sets;
  int chosen_cap = 0;
};
[[nodiscard]] TunedGreedyResult tuned_greedy(
    const RootedTree& tree,
    const std::vector<std::vector<VertexId>>& terminal_sets);

/// Converts child-vertex edge sets into a Shortcut over graph edge ids using
/// the tree's parent_edge bindings.
[[nodiscard]] Shortcut to_shortcut(const RootedTree& tree,
                                   const std::vector<TreeEdgeSet>& sets);

}  // namespace mns
