#include "core/shortcut.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "graph/union_find.hpp"

namespace mns {

ShortcutProvider empty_shortcut_provider() {
  return [](const Graph&, const Partition& parts) {
    Shortcut sc;
    sc.edges_of_part.resize(parts.num_parts());
    return sc;
  };
}

std::string validate_tree_restricted(const Graph& g, const RootedTree& tree,
                                     const Shortcut& shortcut) {
  // Mark tree edges.
  std::vector<char> is_tree_edge(g.num_edges(), 0);
  for (VertexId v = 0; v < tree.num_vertices(); ++v)
    if (v != tree.root() && tree.parent_edge(v) != kInvalidEdge)
      is_tree_edge[tree.parent_edge(v)] = 1;
  for (std::size_t p = 0; p < shortcut.edges_of_part.size(); ++p) {
    std::set<EdgeId> seen;
    for (EdgeId e : shortcut.edges_of_part[p]) {
      if (e < 0 || e >= g.num_edges()) {
        std::ostringstream os;
        os << "part " << p << " has out-of-range edge id";
        return os.str();
      }
      if (!is_tree_edge[e]) {
        std::ostringstream os;
        os << "part " << p << " uses non-tree edge " << e;
        return os.str();
      }
      if (!seen.insert(e).second) {
        std::ostringstream os;
        os << "part " << p << " lists edge " << e << " twice";
        return os.str();
      }
    }
  }
  return {};
}

ShortcutMetrics measure_shortcut(const Graph& g, const RootedTree& tree,
                                 const Partition& parts,
                                 const Shortcut& shortcut) {
  require(static_cast<PartId>(shortcut.edges_of_part.size()) ==
              parts.num_parts(),
          "measure_shortcut: shortcut/partition size mismatch");
  ShortcutMetrics m;
  m.tree_diameter = tree_diameter(tree);

  // Congestion.
  std::vector<int> cong(g.num_edges(), 0);
  for (const auto& edges : shortcut.edges_of_part)
    for (EdgeId e : edges) ++cong[e];
  long long cong_sum = 0;
  int cong_edges = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    m.congestion = std::max(m.congestion, cong[e]);
    if (cong[e] > 0) {
      cong_sum += cong[e];
      ++cong_edges;
    }
  }
  m.mean_congestion =
      cong_edges == 0 ? 0.0 : static_cast<double>(cong_sum) / cong_edges;

  // Block parameter: components of (V, H_i) containing a P_i vertex. A DSU
  // over only the vertices each part touches keeps this linear in the total
  // shortcut size rather than parts * n.
  m.block_of_part.resize(parts.num_parts());
  long long block_sum = 0;
  std::vector<VertexId> local_index(g.num_vertices(), kInvalidVertex);
  std::vector<VertexId> touched;
  for (PartId p = 0; p < parts.num_parts(); ++p) {
    touched.clear();
    auto touch = [&](VertexId v) {
      if (local_index[v] == kInvalidVertex) {
        local_index[v] = static_cast<VertexId>(touched.size());
        touched.push_back(v);
      }
    };
    for (VertexId v : parts.members(p)) touch(v);
    for (EdgeId e : shortcut.edges_of_part[p]) {
      touch(g.edge(e).u);
      touch(g.edge(e).v);
    }
    UnionFind uf(static_cast<VertexId>(touched.size()));
    for (EdgeId e : shortcut.edges_of_part[p])
      uf.unite(local_index[g.edge(e).u], local_index[g.edge(e).v]);
    std::set<VertexId> roots;
    for (VertexId v : parts.members(p)) roots.insert(uf.find(local_index[v]));
    m.block_of_part[p] = static_cast<int>(roots.size());
    m.block = std::max(m.block, m.block_of_part[p]);
    block_sum += m.block_of_part[p];
    for (VertexId v : touched) local_index[v] = kInvalidVertex;
  }
  m.mean_block = parts.num_parts() == 0
                     ? 0.0
                     : static_cast<double>(block_sum) / parts.num_parts();
  m.quality = static_cast<long long>(m.block) * m.tree_diameter + m.congestion;
  return m;
}

int tree_diameter(const RootedTree& tree) {
  const VertexId n = tree.num_vertices();
  if (n <= 1) return 0;
  // Farthest vertex from the root, then farthest from that one, walking only
  // tree edges (parent/children).
  auto bfs_far = [&](VertexId src) {
    std::vector<int> dist(n, -1);
    std::vector<VertexId> queue{src};
    dist[src] = 0;
    std::size_t head = 0;
    VertexId far = src;
    while (head < queue.size()) {
      VertexId v = queue[head++];
      if (dist[v] > dist[far]) far = v;
      auto visit = [&](VertexId w) {
        if (w != kInvalidVertex && dist[w] == -1) {
          dist[w] = dist[v] + 1;
          queue.push_back(w);
        }
      };
      visit(tree.parent(v));
      for (VertexId c : tree.children(v)) visit(c);
    }
    return std::pair(far, dist[far]);
  };
  auto [far, _] = bfs_far(tree.root());
  return bfs_far(far).second;
}

}  // namespace mns
