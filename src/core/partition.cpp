#include "core/partition.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

#include "graph/algorithms.hpp"

namespace mns {

Partition::Partition(std::vector<PartId> part_of)
    : part_of_(std::move(part_of)) {
  PartId max_part = kNoPart;
  for (PartId p : part_of_) {
    if (p < kNoPart) throw std::invalid_argument("Partition: bad part id");
    max_part = std::max(max_part, p);
  }
  members_.assign(static_cast<std::size_t>(max_part) + 1, {});
  for (VertexId v = 0; v < static_cast<VertexId>(part_of_.size()); ++v)
    if (part_of_[v] != kNoPart) members_[part_of_[v]].push_back(v);
  for (const auto& m : members_)
    if (m.empty())
      throw std::invalid_argument("Partition: part ids must be dense");
}

Partition Partition::from_parts(
    VertexId n, const std::vector<std::vector<VertexId>>& parts) {
  std::vector<PartId> part_of(n, kNoPart);
  for (std::size_t p = 0; p < parts.size(); ++p)
    for (VertexId v : parts[p]) {
      if (v < 0 || v >= n)
        throw std::invalid_argument("Partition: vertex out of range");
      if (part_of[v] != kNoPart)
        throw std::invalid_argument("Partition: parts overlap");
      part_of[v] = static_cast<PartId>(p);
    }
  return Partition(std::move(part_of));
}

std::string Partition::validate(const Graph& g) const {
  if (static_cast<VertexId>(part_of_.size()) != g.num_vertices())
    return "part_of size differs from graph";
  for (PartId p = 0; p < num_parts(); ++p) {
    if (!is_connected_subset(g, members_[p])) {
      std::ostringstream os;
      os << "part " << p << " is not connected";
      return os.str();
    }
  }
  return {};
}

Partition voronoi_partition(const Graph& g, int num_seeds, Rng& rng) {
  if (num_seeds < 1) throw std::invalid_argument("voronoi_partition: seeds<1");
  const VertexId n = g.num_vertices();
  std::vector<VertexId> all(n);
  for (VertexId v = 0; v < n; ++v) all[v] = v;
  std::shuffle(all.begin(), all.end(), rng);
  all.resize(std::min<std::size_t>(all.size(), num_seeds));
  BfsResult r = bfs_multi(g, all);
  // Dense ids per seed.
  std::vector<PartId> seed_label(n, kNoPart);
  PartId next = 0;
  for (VertexId s : all) seed_label[s] = next++;
  std::vector<PartId> part_of(n, kNoPart);
  for (VertexId v = 0; v < n; ++v)
    if (r.source[v] != kInvalidVertex) part_of[v] = seed_label[r.source[v]];
  return Partition(std::move(part_of));
}

Partition ring_sectors(VertexId n, VertexId first, VertexId count,
                       int sectors) {
  if (sectors < 1 || count < sectors)
    throw std::invalid_argument("ring_sectors: bad sector count");
  std::vector<PartId> part_of(n, kNoPart);
  for (VertexId i = 0; i < count; ++i)
    part_of[first + i] =
        static_cast<PartId>((static_cast<long long>(i) * sectors) / count);
  return Partition(std::move(part_of));
}

Partition grid_serpentines(int rows, int cols, int width) {
  if (width < 1 || cols < width)
    throw std::invalid_argument("grid_serpentines: bad width");
  std::vector<PartId> part_of(static_cast<std::size_t>(rows) * cols, kNoPart);
  const int bands = cols / width;
  for (int k = 0; k < bands; ++k) {
    const int c0 = k * width;
    const int c1 = c0 + width - 1;  // inclusive band end
    for (int r = 0; r < rows; ++r) {
      if (r % 2 == 0) {
        // Full row segment within the band.
        for (int c = c0; c <= c1; ++c)
          part_of[static_cast<std::size_t>(r) * cols + c] =
              static_cast<PartId>(k);
      } else {
        // Connector cell at alternating ends links consecutive segments
        // into one snake of induced diameter ~ rows * width / 2.
        int c = ((r / 2) % 2 == 0) ? c1 : c0;
        part_of[static_cast<std::size_t>(r) * cols + c] =
            static_cast<PartId>(k);
      }
    }
  }
  return Partition(std::move(part_of));
}

Partition grid_stripes(int rows, int cols, int band) {
  if (band < 1) throw std::invalid_argument("grid_stripes: band < 1");
  std::vector<PartId> part_of(static_cast<std::size_t>(rows) * cols, kNoPart);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      part_of[static_cast<std::size_t>(r) * cols + c] =
          static_cast<PartId>(r / band);
  return Partition(std::move(part_of));
}

}  // namespace mns
