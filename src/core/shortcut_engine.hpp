// ShortcutEngine: the one polymorphic construction layer between structural
// knowledge and the CONGEST algorithms.
//
// The engine owns a registry of named ShortcutBuilder strategies (the
// built-ins cover every construction in the paper; follow-up constructions
// register additional names), dispatches a StructuralCertificate to the
// right builder, validates every result against Definition 10
// (validate_tree_restricted) and measures it (measure_shortcut), and hands
// the CONGEST layer a single ShortcutProvider. Benches, examples, and tests
// all go through here — there is exactly one place where "certificate in,
// shortcut out" happens.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/certificate.hpp"
#include "core/shortcut.hpp"

namespace mns {

/// A registered construction strategy. Builders receive the full certificate
/// and std::get<> their own alternative; build()/build_with() report a clear
/// error when certificate and builder disagree.
using ShortcutBuilder =
    std::function<Shortcut(const Graph&, const RootedTree&, const Partition&,
                           const StructuralCertificate&)>;

/// Every engine result is validated and measured — quality is observed, never
/// assumed (the repo's core discipline).
struct BuildResult {
  Shortcut shortcut;
  ShortcutMetrics metrics;
  std::string builder;  ///< registry name that produced it
};

/// Default TreeFactory: BFS tree rooted near the approximate center
/// (height <= D up to the approximation), deterministic for a fixed seed.
[[nodiscard]] TreeFactory center_tree_factory(unsigned seed = 1);

class ShortcutEngine {
 public:
  /// Constructs with the built-in builders registered:
  ///   uniform.greedy, uniform.steiner, uniform.ancestor   ([HIZ16a]-style)
  ///   treewidth                                           (Theorem 5)
  ///   apex                                                (Lemmas 9-10)
  ///   cliquesum                                           (Theorems 6-7)
  ShortcutEngine();

  /// Registers a strategy. Throws InvariantViolation on empty or duplicate
  /// names.
  void register_builder(std::string name, ShortcutBuilder builder);

  [[nodiscard]] bool has_builder(std::string_view name) const;
  /// Sorted registry names.
  [[nodiscard]] std::vector<std::string> builder_names() const;

  /// Certificate-dispatched construction: picks the builder named by
  /// builder_name_for(cert), builds, validates, measures.
  [[nodiscard]] BuildResult build(const Graph& g, const RootedTree& tree,
                                  const Partition& parts,
                                  const StructuralCertificate& cert) const;

  /// Same but with an explicit registry name (ablations / overrides).
  [[nodiscard]] BuildResult build_with(std::string_view name, const Graph& g,
                                       const RootedTree& tree,
                                       const Partition& parts,
                                       const StructuralCertificate& cert) const;

  /// Construction-only path (what provider() pays per invocation): dispatch
  /// and validate, skip measuring. For callers that only need the shortcut.
  [[nodiscard]] Shortcut build_shortcut(const Graph& g, const RootedTree& tree,
                                        const Partition& parts,
                                        const StructuralCertificate& cert) const;

  /// The hand-off to the CONGEST layer: a provider that re-roots a tree via
  /// `tree` (default: center_tree_factory()) and rebuilds the certificate's
  /// shortcut for whatever partition the caller is at (e.g. per Boruvka
  /// phase). Results are validated; measuring is skipped on this hot path.
  [[nodiscard]] ShortcutProvider provider(StructuralCertificate cert,
                                          TreeFactory tree = {}) const;

  /// Shared default-configured engine (the built-ins only). Register custom
  /// builders on your own instance instead of mutating this one.
  [[nodiscard]] static const ShortcutEngine& global();

 private:
  [[nodiscard]] const ShortcutBuilder& find_builder(std::string_view name) const;

  std::map<std::string, ShortcutBuilder, std::less<>> builders_;
};

}  // namespace mns
