// Parts (Definition 9): pairwise-disjoint, individually-connected vertex
// subsets for which part-wise aggregation must be solved. Includes the part
// generators used by tests and benches (BFS/Voronoi parts, ring sectors,
// grid stripes) — Boruvka fragments arrive from src/congest at runtime.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace mns {

using PartId = std::int32_t;
inline constexpr PartId kNoPart = -1;

class Partition {
 public:
  /// `part_of[v]` = part id in [0, num_parts) or kNoPart. Part ids must be
  /// dense (every id below the max occurs).
  explicit Partition(std::vector<PartId> part_of);

  /// Builds from explicit member lists (unlisted vertices get kNoPart).
  static Partition from_parts(VertexId n,
                              const std::vector<std::vector<VertexId>>& parts);

  [[nodiscard]] PartId num_parts() const noexcept {
    return static_cast<PartId>(members_.size());
  }
  [[nodiscard]] PartId part_of(VertexId v) const { return part_of_[v]; }
  [[nodiscard]] std::span<const VertexId> members(PartId p) const {
    return members_[p];
  }
  [[nodiscard]] const std::vector<std::vector<VertexId>>& all_members()
      const noexcept {
    return members_;
  }
  /// The dense per-vertex part map (what Session fingerprints for its
  /// shortcut cache).
  [[nodiscard]] std::span<const PartId> part_of_all() const noexcept {
    return part_of_;
  }

  /// "" iff every part is non-empty and G[P_i] is connected (Definition 9).
  [[nodiscard]] std::string validate(const Graph& g) const;

 private:
  std::vector<PartId> part_of_;
  std::vector<std::vector<VertexId>> members_;
};

/// Voronoi parts: multi-source BFS from `num_seeds` random vertices; each
/// vertex joins its closest seed. Parts are connected by construction.
[[nodiscard]] Partition voronoi_partition(const Graph& g, int num_seeds,
                                          Rng& rng);

/// Splits a cycle-like vertex range [first, first+count) into `sectors`
/// contiguous arcs (the wheel adversarial case: long skinny ring parts).
[[nodiscard]] Partition ring_sectors(VertexId n, VertexId first,
                                     VertexId count, int sectors);

/// Horizontal stripes of a rows x cols grid, each `band` rows tall — long
/// parts whose isolated diameter is cols >> grid diameter when band is small.
[[nodiscard]] Partition grid_stripes(int rows, int cols, int band);

/// Serpentine ("boustrophedon") parts of a rows x cols grid: part k snakes
/// through the column band [k*width, (k+1)*width), giving isolated part
/// diameter Theta(rows * width) on a grid of diameter Theta(rows + cols) —
/// the grid analogue of the wheel pathology, where shortcuts are essential.
[[nodiscard]] Partition grid_serpentines(int rows, int cols, int width);

}  // namespace mns
