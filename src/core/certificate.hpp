// Structural certificates: the "what do we know about this network" input of
// the paper's whole pipeline. Every theorem has the same shape — structural
// knowledge about the family implies a good tree-restricted shortcut — and a
// StructuralCertificate is that knowledge reified as plain data:
//
//   UniformCertificate    — nothing is known; the [HIZ16a]-style uniform
//                           constructions apply (greedy / steiner / ancestor).
//   TreewidthCertificate  — a width-k tree decomposition (Theorem 5).
//   ApexCertificate       — apex vertices of an apex graph, with the
//                           within-cell oracle of Lemmas 9-10 (Theorem 8 at
//                           top level).
//   CliqueSumCertificate  — a k-clique-sum decomposition (Theorem 7);
//                           apex-aware local oracles turn it into the full
//                           Theorem 6 pipeline for L_k / excluded-minor
//                           networks (via Theorem 3).
//
// ShortcutEngine dispatches on the certificate to the registered builder, so
// new constructions (genus/vortex routes, dense-minor shortcuts, ...) plug in
// as additional alternatives + builders without touching any call site.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "core/oracle.hpp"
#include "structure/clique_sum.hpp"
#include "structure/tree_decomposition.hpp"

namespace mns {

/// No structural knowledge: pick one of the uniform constructions.
struct UniformCertificate {
  enum class Kind { kGreedy, kSteiner, kAncestor };
  Kind kind = Kind::kGreedy;
  /// kAncestor only: tree levels every terminal climbs (-1 = to the root).
  int levels = -1;
};

/// Theorem 5: the network has the recorded width-k tree decomposition.
struct TreewidthCertificate {
  TreeDecomposition decomposition;
};

/// Lemmas 9-10 at top level: `apices` whose removal leaves the easy part;
/// `inner` builds the within-cell local shortcuts.
struct ApexCertificate {
  std::vector<VertexId> apices;
  OracleKind inner = OracleKind::kGreedy;
};

/// Theorem 7: the network is the recorded k-clique-sum of its bags. With
/// `apex_aware` + `bag_apices` this is the Theorem 6 pipeline for L_k graphs.
struct CliqueSumCertificate {
  CliqueSumDecomposition decomposition;
  /// Apply the §2.2 heavy-light folding (depth O(log^2 n)).
  bool fold = true;
  /// Local constructor within each decomposition node.
  OracleKind local_oracle = OracleKind::kGreedy;
  /// Wrap `local_oracle` in the Lemma 9 apex oracle (consumes `bag_apices`).
  bool apex_aware = false;
  /// Per ORIGINAL bag: apex vertices (global ids) forwarded into the local
  /// instances.
  std::vector<std::vector<VertexId>> bag_apices;
};

using StructuralCertificate =
    std::variant<UniformCertificate, TreewidthCertificate, ApexCertificate,
                 CliqueSumCertificate>;

/// Registry name of the builder this certificate dispatches to
/// ("uniform.greedy", "uniform.steiner", "uniform.ancestor", "treewidth",
/// "apex", "cliquesum").
[[nodiscard]] std::string builder_name_for(const StructuralCertificate& cert);

// Shorthand constructors for the common cases.
[[nodiscard]] inline StructuralCertificate greedy_certificate() {
  return UniformCertificate{UniformCertificate::Kind::kGreedy, -1};
}
[[nodiscard]] inline StructuralCertificate steiner_certificate() {
  return UniformCertificate{UniformCertificate::Kind::kSteiner, -1};
}
[[nodiscard]] inline StructuralCertificate ancestor_certificate(int levels) {
  return UniformCertificate{UniformCertificate::Kind::kAncestor, levels};
}
[[nodiscard]] inline StructuralCertificate treewidth_certificate(
    TreeDecomposition td) {
  return TreewidthCertificate{std::move(td)};
}
[[nodiscard]] inline StructuralCertificate apex_certificate(
    std::vector<VertexId> apices, OracleKind inner = OracleKind::kGreedy) {
  return ApexCertificate{std::move(apices), inner};
}
[[nodiscard]] inline StructuralCertificate cliquesum_certificate(
    CliqueSumDecomposition csd) {
  CliqueSumCertificate c{std::move(csd), /*fold=*/true, OracleKind::kGreedy,
                         /*apex_aware=*/false, /*bag_apices=*/{}};
  return c;
}

}  // namespace mns
