#include "core/construct_cliquesum.hpp"

#include <algorithm>
#include <unordered_map>

#include "core/local_tree.hpp"

namespace mns {

Shortcut build_cliquesum_shortcut(const Graph& g, const RootedTree& tree,
                                  const Partition& parts,
                                  const CliqueSumDecomposition& csd,
                                  CliqueSumShortcutOptions options) {
  if (!options.local_oracle) options.local_oracle = make_greedy_oracle();

  // 1. Fold (or wrap each bag as its own node).
  FoldedDecomposition fd;
  if (options.fold) {
    fd = fold_decomposition(csd);
  } else {
    fd.groups.resize(csd.num_bags());
    fd.parent.resize(csd.num_bags());
    fd.parent_separator_bags.resize(csd.num_bags());
    for (BagId b = 0; b < csd.num_bags(); ++b) {
      fd.groups[b] = {b};
      fd.parent[b] = csd.parent(b);
      if (csd.parent(b) != kInvalidBag) fd.parent_separator_bags[b] = {b};
    }
    fd.depth = csd.depth();
  }
  const BagId N = fd.num_nodes();

  // 2. Per-node data.
  std::vector<char> is_tree_edge(g.num_edges(), 0);
  for (VertexId v = 0; v < tree.num_vertices(); ++v)
    if (v != tree.root()) is_tree_edge[tree.parent_edge(v)] = 1;

  std::vector<std::vector<VertexId>> node_vertices(N);
  std::vector<std::vector<EdgeId>> node_tree_edges(N);   // sorted
  std::vector<std::vector<VertexId>> node_separator(N);  // sorted
  for (BagId x = 0; x < N; ++x) {
    for (BagId b : fd.groups[x]) {
      auto bv = csd.bag_vertices(b);
      node_vertices[x].insert(node_vertices[x].end(), bv.begin(), bv.end());
      for (EdgeId e : csd.bag_edges(b))
        if (is_tree_edge[e]) node_tree_edges[x].push_back(e);
    }
    for (BagId b : fd.parent_separator_bags[x]) {
      auto pc = csd.parent_clique(b);
      node_separator[x].insert(node_separator[x].end(), pc.begin(), pc.end());
    }
    auto sort_unique = [](auto& v) {
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
    };
    sort_unique(node_vertices[x]);
    sort_unique(node_tree_edges[x]);
    sort_unique(node_separator[x]);
  }

  // Node tree with LCA support.
  BagId node_root = kInvalidBag;
  for (BagId x = 0; x < N; ++x)
    if (fd.parent[x] == kInvalidBag) node_root = x;
  RootedTree node_tree(node_root,
                       std::vector<VertexId>(fd.parent.begin(), fd.parent.end()));

  // 3. Vertex -> nodes containing it.
  std::vector<std::vector<BagId>> holders(g.num_vertices());
  for (BagId x = 0; x < N; ++x)
    for (VertexId v : node_vertices[x]) holders[v].push_back(x);

  // 4. Per part: S_P and its LCA node.
  const PartId P = parts.num_parts();
  std::vector<std::vector<BagId>> nodes_of_part(P);
  std::vector<BagId> lca_node(P, kInvalidBag);
  for (PartId p = 0; p < P; ++p) {
    std::vector<BagId> s;
    for (VertexId v : parts.members(p))
      s.insert(s.end(), holders[v].begin(), holders[v].end());
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    require(!s.empty(), "cliquesum shortcut: part hits no node");
    BagId h = s[0];
    for (BagId x : s) h = node_tree.lca(h, x);
    nodes_of_part[p] = std::move(s);
    lca_node[p] = h;
  }

  Shortcut sc;
  sc.edges_of_part.resize(P);

  // 5. Global shortcuts.
  std::vector<int> edge_stamp(g.num_edges(), -1);
  std::vector<std::vector<BagId>> node_children(N);
  for (BagId x = 0; x < N; ++x)
    if (fd.parent[x] != kInvalidBag) node_children[fd.parent[x]].push_back(x);
  for (PartId p = 0; p < P; ++p) {
    BagId h = lca_node[p];
    // Children of h whose subtree holds part nodes.
    std::vector<BagId> roots;
    for (BagId x : nodes_of_part[p]) {
      if (x == h) continue;
      BagId c = node_tree.kth_ancestor(x, node_tree.depth(x) -
                                              node_tree.depth(h) - 1);
      roots.push_back(c);
    }
    std::sort(roots.begin(), roots.end());
    roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
    // Stamp h's own edges as excluded, then collect descendant edges.
    for (EdgeId e : node_tree_edges[h]) edge_stamp[e] = p;
    std::vector<BagId> stack(roots);
    while (!stack.empty()) {
      BagId x = stack.back();
      stack.pop_back();
      for (EdgeId e : node_tree_edges[x])
        if (edge_stamp[e] != p) {
          edge_stamp[e] = p;
          sc.edges_of_part[p].push_back(e);
        }
      for (BagId c : node_children[x]) stack.push_back(c);
    }
  }

  // 6. Local shortcuts per node.
  std::vector<std::vector<PartId>> parts_at_node(N);
  for (PartId p = 0; p < P; ++p) parts_at_node[lca_node[p]].push_back(p);
  std::vector<VertexId> global_to_local(g.num_vertices(), kInvalidVertex);
  for (BagId x = 0; x < N; ++x) {
    if (parts_at_node[x].empty()) continue;
    LocalTree lt = steiner_minor(tree, node_vertices[x]);
    for (VertexId i = 0; i < static_cast<VertexId>(lt.to_global.size()); ++i)
      global_to_local[lt.to_global[i]] = i;

    LocalInstance inst{std::move(lt.tree), {}, {}};
    for (PartId p : parts_at_node[x]) {
      std::vector<VertexId> terms;
      for (VertexId v : parts.members(p))
        if (std::binary_search(node_vertices[x].begin(),
                               node_vertices[x].end(), v))
          terms.push_back(global_to_local[v]);
      inst.terminal_sets.push_back(std::move(terms));
    }
    if (!options.bag_apices.empty())
      for (BagId b : fd.groups[x])
        if (b < static_cast<BagId>(options.bag_apices.size()))
          for (VertexId a : options.bag_apices[b])
            if (global_to_local[a] != kInvalidVertex &&
                std::binary_search(node_vertices[x].begin(),
                                   node_vertices[x].end(), a))
              inst.apices.push_back(global_to_local[a]);

    std::vector<TreeEdgeSet> local = options.local_oracle(inst);
    require(local.size() == inst.terminal_sets.size(),
            "cliquesum shortcut: oracle returned wrong set count");
    for (std::size_t i = 0; i < parts_at_node[x].size(); ++i) {
      PartId p = parts_at_node[x][i];
      for (VertexId child_local : local[i]) {
        EdgeId e = lt.real_parent_edge[child_local];
        if (e == kInvalidEdge) continue;  // virtual (contracted) edge
        const Edge& ed = g.edge(e);
        // Discard edges inside the parent separator: they belong higher up.
        if (std::binary_search(node_separator[x].begin(),
                               node_separator[x].end(), ed.u) &&
            std::binary_search(node_separator[x].begin(),
                               node_separator[x].end(), ed.v))
          continue;
        sc.edges_of_part[p].push_back(e);
      }
    }
    for (VertexId v : lt.to_global) global_to_local[v] = kInvalidVertex;
  }

  // 7. De-duplicate per part.
  for (auto& es : sc.edges_of_part) {
    std::sort(es.begin(), es.end());
    es.erase(std::unique(es.begin(), es.end()), es.end());
  }
  return sc;
}

}  // namespace mns
