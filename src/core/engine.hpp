// Internal construction entry points: one free function per construction in
// the paper. These are the implementations the ShortcutEngine's built-in
// builders wrap — all code outside core/ goes through the engine
// (certificate-dispatched, validated, measured); the one exception is the
// parity suite in tests/test_shortcut_engine.cpp, which uses these as its
// pre-refactor oracle.
//
//   build_greedy / build_steiner / build_ancestor  — uniform constructions
//     ([HIZ16a]-style; no structural knowledge, like the actual distributed
//     algorithm).
//   build_treewidth_shortcut  — Theorem 5 via the clique-sum machinery with
//     width-k bags and the trivial oracle.
//   build_apex_shortcut       — Lemmas 9-10 at top level (apex + cells +
//     assignment, inner oracle within cells).
//   build_cliquesum_shortcut  — Theorem 7 (see construct_cliquesum.hpp);
//     combined with apex-aware oracles it yields the Theorem 6 pipeline for
//     L_k graphs (Theorem 3 reduces H-minor-free networks to exactly that).
#pragma once

#include "core/construct_cliquesum.hpp"
#include "core/construct_tree.hpp"
#include "core/oracle.hpp"
#include "structure/tree_decomposition.hpp"

namespace mns {

[[nodiscard]] Shortcut build_greedy_shortcut(const Graph& g,
                                             const RootedTree& tree,
                                             const Partition& parts);

[[nodiscard]] Shortcut build_steiner_shortcut(const Graph& g,
                                              const RootedTree& tree,
                                              const Partition& parts);

[[nodiscard]] Shortcut build_ancestor_shortcut(const Graph& g,
                                               const RootedTree& tree,
                                               const Partition& parts,
                                               int levels);

/// Theorem 5: width-k tree decomposition -> shortcuts with b = O(k),
/// c = O(k log n) (measured).
[[nodiscard]] Shortcut build_treewidth_shortcut(const Graph& g,
                                                const RootedTree& tree,
                                                const Partition& parts,
                                                const TreeDecomposition& td);

/// Lemmas 9-10: single-level apex construction over the whole network.
[[nodiscard]] Shortcut build_apex_shortcut(const Graph& g,
                                           const RootedTree& tree,
                                           const Partition& parts,
                                           const std::vector<VertexId>& apices,
                                           BagOracle inner);

}  // namespace mns
