// Fundamental identifier and numeric types shared by every module.
#pragma once

#include <cstdint>
#include <random>
#include <stdexcept>
#include <string>

namespace mns {

/// Vertex identifier: dense 0-based index into a Graph.
using VertexId = std::int32_t;
/// Edge identifier: dense 0-based index into a Graph's edge list.
using EdgeId = std::int32_t;
/// Edge weight. Integral weights keep distributed comparisons exact.
using Weight = std::int64_t;

inline constexpr VertexId kInvalidVertex = -1;
inline constexpr EdgeId kInvalidEdge = -1;

/// Random engine threaded explicitly through every randomized component so
/// that all generators and algorithms are reproducible from a single seed.
using Rng = std::mt19937_64;

/// Internal invariant check. Unlike assert(), stays on in release builds and
/// throws (so tests can observe violations) rather than aborting.
class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& what)
      : std::logic_error(what) {}
};

inline void require(bool condition, const char* message) {
  if (!condition) throw InvariantViolation(message);
}

}  // namespace mns
