// Edit batches against an immutable Graph, and the delta bookkeeping that
// lets higher layers (tree patching, certificate maintenance, the SolverCore
// shortcut cache) do the *minimum* structural work per update instead of a
// full rebuild (DESIGN.md §12).
//
// A Graph is frozen CSR, so a structural edit necessarily produces a NEW
// Graph object — but apply_delta also produces old→new id maps and the set
// of structurally touched vertices, which is exactly what incremental
// invalidation needs: a cached shortcut survives an update iff none of its
// part vertices are touched and none of its edges were deleted.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace mns {

/// Re-weight one surviving edge (addressed by its pre-batch edge id).
struct WeightChange {
  EdgeId edge = kInvalidEdge;
  Weight weight = 0;
};

/// Insert undirected edge {u, v}. Endpoints live in the *extended* old id
/// space: ids in [0, old_n) are existing vertices, ids in
/// [old_n, old_n + add_vertices) address the batch's new vertices.
struct EdgeInsert {
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;
  Weight weight = 1;
};

/// One atomic group of graph edits. Weight changes are applied first (they
/// are non-structural); then edge/vertex removals, then vertex additions,
/// then edge insertions.
struct UpdateBatch {
  std::vector<WeightChange> weight_changes;
  std::vector<EdgeInsert> insert_edges;
  std::vector<EdgeId> remove_edges;      // pre-batch edge ids
  std::vector<VertexId> remove_vertices; // incident edges are removed too
  VertexId add_vertices = 0;             // appended after surviving vertices

  /// True if the batch changes the vertex or edge *set* (anything beyond
  /// weight changes).
  [[nodiscard]] bool structural() const noexcept {
    return !insert_edges.empty() || !remove_edges.empty() ||
           !remove_vertices.empty() || add_vertices > 0;
  }
  [[nodiscard]] bool empty() const noexcept {
    return weight_changes.empty() && !structural();
  }
};

/// Result of applying a structural UpdateBatch: the post-batch graph plus
/// the old→new id maps (kInvalidVertex / kInvalidEdge for removed ids) and
/// the set of structurally touched vertices in NEW ids — endpoints of
/// inserted or removed edges, plus every new vertex. Weight-only changes
/// touch nothing.
struct GraphDelta {
  Graph graph;
  std::vector<VertexId> vertex_map; // old id -> new id
  std::vector<EdgeId> edge_map;     // old id -> new id
  std::vector<char> touched;        // indexed by NEW vertex id
};

/// Typed error for update batches that cannot be applied (unknown ids,
/// duplicate inserts, edits the certificate cannot absorb, edits that
/// disconnect the graph).
class UpdateError : public std::invalid_argument {
 public:
  explicit UpdateError(const std::string& what)
      : std::invalid_argument(what) {}
};

/// Applies a structural batch to `g`. Throws UpdateError on out-of-range
/// ids, inserts of already-present (or doubly-inserted) edges, and edges
/// referencing removed vertices. Surviving vertices keep their relative
/// order; new vertices are appended.
[[nodiscard]] GraphDelta apply_delta(const Graph& g, const UpdateBatch& batch);

/// Carries `weights` (parallel to the OLD graph's edges) across a delta:
/// applies batch.weight_changes, drops removed edges, remaps survivors, and
/// assigns each inserted edge its batch weight. Returns a vector parallel to
/// `new_g.edges()`.
[[nodiscard]] std::vector<Weight> remap_weights(const Graph& old_g,
                                                const Graph& new_g,
                                                const GraphDelta& delta,
                                                const UpdateBatch& batch,
                                                std::vector<Weight> weights);

/// Same, from bare id maps (what congest::UpdateStats carries once the
/// GraphDelta itself has been consumed by SolverCore::update).
[[nodiscard]] std::vector<Weight> remap_weights(
    const Graph& old_g, const Graph& new_g,
    std::span<const VertexId> vertex_map, std::span<const EdgeId> edge_map,
    const UpdateBatch& batch, std::vector<Weight> weights);

/// Applies only the weight changes of `batch` to `weights` in place (the
/// whole story for non-structural batches). Throws UpdateError on
/// out-of-range edge ids.
void apply_weight_changes(const UpdateBatch& batch,
                          std::vector<Weight>& weights);

/// Cumulative churn telemetry carried by a SolverCore across update()
/// generations and persisted in snapshot v2 (DESIGN.md §8, §12).
struct UpdateHistory {
  std::uint64_t updates_applied = 0;
  std::uint64_t entries_kept = 0;
  std::uint64_t entries_invalidated = 0;
  std::uint64_t subpaths_rebuilt = 0;

  [[nodiscard]] bool any() const noexcept {
    return updates_applied != 0 || entries_kept != 0 ||
           entries_invalidated != 0 || subpaths_rebuilt != 0;
  }
  friend bool operator==(const UpdateHistory&, const UpdateHistory&) = default;
};

}  // namespace mns
