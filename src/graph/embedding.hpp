// Combinatorial (rotation-system) embeddings of graphs on orientable
// surfaces, with face tracing and Euler-genus accounting (Definition 3).
//
// A rotation system fixes, for every vertex, the cyclic order of incident
// edges on the surface. Faces are recovered as orbits of the standard
// face-tracing permutation; the Euler characteristic n - m + f = 2 - 2g then
// yields the genus. Generators in src/gen produce these embeddings for planar
// grids, maximal planar graphs, and torus grids, and the vortex construction
// (Definition 4) consumes face cycles from here.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace mns {

/// A half-edge (directed occurrence of an undirected edge).
/// Encoding: half-edge of edge e with tail edge(e).u is 2e; tail edge(e).v is
/// 2e+1.
using HalfEdgeId = std::int32_t;

class EmbeddedGraph {
 public:
  /// `rotation[v]` lists v's incident edge ids in cyclic order around v.
  /// Throws unless every rotation is a permutation of incident_edges(v).
  EmbeddedGraph(Graph graph, std::vector<std::vector<EdgeId>> rotation);

  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }
  [[nodiscard]] const std::vector<std::vector<EdgeId>>& rotation()
      const noexcept {
    return rotation_;
  }

  [[nodiscard]] HalfEdgeId twin(HalfEdgeId h) const noexcept { return h ^ 1; }
  [[nodiscard]] VertexId tail(HalfEdgeId h) const {
    const Edge& e = graph_.edge(h >> 1);
    return (h & 1) ? e.v : e.u;
  }
  [[nodiscard]] VertexId head(HalfEdgeId h) const {
    const Edge& e = graph_.edge(h >> 1);
    return (h & 1) ? e.u : e.v;
  }
  /// Half-edge along edge e leaving vertex `from` (an endpoint of e).
  [[nodiscard]] HalfEdgeId half_edge(EdgeId e, VertexId from) const;

  /// Next half-edge when tracing the face to the left of h:
  /// rotation-successor of twin(h) around head(h).
  [[nodiscard]] HalfEdgeId face_next(HalfEdgeId h) const;

  /// All faces, each as the cyclic sequence of half-edges along its boundary.
  [[nodiscard]] const std::vector<std::vector<HalfEdgeId>>& faces()
      const noexcept {
    return faces_;
  }
  [[nodiscard]] int num_faces() const noexcept {
    return static_cast<int>(faces_.size());
  }

  /// Vertex sequence around face f (tails of its half-edges).
  [[nodiscard]] std::vector<VertexId> face_vertices(int f) const;

  /// Genus from Euler's formula (graph must be connected):
  /// g = (2 - n + m - f) / 2.
  [[nodiscard]] int genus() const;

  /// True if every face of f is a simple cycle (no repeated vertices); such
  /// faces are valid vortex attachment sites (Definition 4 requires a cycle).
  [[nodiscard]] bool face_is_simple_cycle(int f) const;

 private:
  void trace_faces();

  Graph graph_;
  std::vector<std::vector<EdgeId>> rotation_;
  // Position of the edge of half-edge h in rotation_[tail(h)].
  std::vector<int> pos_in_rotation_;
  std::vector<std::vector<HalfEdgeId>> faces_;
};

}  // namespace mns
