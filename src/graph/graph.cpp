#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace mns {

bool Graph::has_edge(VertexId u, VertexId v) const {
  return find_edge(u, v) != kInvalidEdge;
}

EdgeId Graph::find_edge(VertexId u, VertexId v) const {
  if (u < 0 || u >= num_vertices() || v < 0 || v >= num_vertices())
    return kInvalidEdge;
  auto nbrs = neighbors(u);
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return kInvalidEdge;
  return incident_edges(u)[static_cast<std::size_t>(it - nbrs.begin())];
}

GraphBuilder::GraphBuilder(VertexId n) : n_(n) {
  if (n < 0) throw GraphError("GraphBuilder: negative vertex count");
}

void GraphBuilder::add_edge(VertexId u, VertexId v) {
  if (u < 0 || u >= n_ || v < 0 || v >= n_)
    throw GraphError("GraphBuilder::add_edge: vertex out of range");
  if (u == v)
    throw GraphError("GraphBuilder::add_edge: self-loop rejected");
  if (u > v) std::swap(u, v);
  pending_.push_back({u, v});
}

Graph GraphBuilder::build() {
  if (built_) throw std::logic_error("GraphBuilder::build called twice");
  built_ = true;

  std::sort(pending_.begin(), pending_.end(),
            [](const Edge& a, const Edge& b) {
              return std::pair(a.u, a.v) < std::pair(b.u, b.v);
            });
  pending_.erase(std::unique(pending_.begin(), pending_.end()),
                 pending_.end());

  Graph g;
  g.edges_ = std::move(pending_);

  // Degree counting pass, then prefix sums, then fill.
  std::vector<std::size_t> degree(static_cast<std::size_t>(n_) + 1, 0);
  for (const Edge& e : g.edges_) {
    ++degree[static_cast<std::size_t>(e.u) + 1];
    ++degree[static_cast<std::size_t>(e.v) + 1];
  }
  g.offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (VertexId v = 0; v < n_; ++v)
    g.offsets_[static_cast<std::size_t>(v) + 1] =
        g.offsets_[v] + degree[static_cast<std::size_t>(v) + 1];

  g.adj_targets_.resize(g.offsets_[static_cast<std::size_t>(n_)]);
  g.adj_edges_.resize(g.adj_targets_.size());
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edges_[e];
    g.adj_targets_[cursor[ed.u]] = ed.v;
    g.adj_edges_[cursor[ed.u]++] = e;
    g.adj_targets_[cursor[ed.v]] = ed.u;
    g.adj_edges_[cursor[ed.v]++] = e;
  }
  // Edges were inserted in (u, v)-sorted order, so each adjacency list is
  // already sorted by target; binary search in find_edge relies on this.
  return g;
}

}  // namespace mns
