#include "graph/union_find.hpp"

#include <numeric>
#include <stdexcept>

namespace mns {

UnionFind::UnionFind(VertexId n) : num_sets_(n) {
  if (n < 0) throw std::invalid_argument("UnionFind: negative size");
  parent_.resize(static_cast<std::size_t>(n));
  std::iota(parent_.begin(), parent_.end(), 0);
  size_.assign(static_cast<std::size_t>(n), 1);
}

VertexId UnionFind::find(VertexId v) {
  VertexId root = v;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[v] != root) {
    VertexId next = parent_[v];
    parent_[v] = root;
    v = next;
  }
  return root;
}

bool UnionFind::unite(VertexId a, VertexId b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (size_[a] < size_[b]) std::swap(a, b);
  parent_[b] = a;
  size_[a] += size_[b];
  --num_sets_;
  return true;
}

VertexId UnionFind::set_size(VertexId v) { return size_[find(v)]; }

std::vector<VertexId> UnionFind::dense_labels() {
  std::vector<VertexId> label(parent_.size(), kInvalidVertex);
  VertexId next = 0;
  std::vector<VertexId> out(parent_.size());
  for (VertexId v = 0; v < static_cast<VertexId>(parent_.size()); ++v) {
    VertexId r = find(v);
    if (label[r] == kInvalidVertex) label[r] = next++;
    out[v] = label[r];
  }
  return out;
}

}  // namespace mns
