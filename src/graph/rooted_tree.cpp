#include "graph/rooted_tree.hpp"

#include <algorithm>
#include <stdexcept>

namespace mns {

RootedTree::RootedTree(VertexId root, std::vector<VertexId> parent,
                       std::vector<EdgeId> parent_edge)
    : root_(root),
      parent_(std::move(parent)),
      parent_edge_(std::move(parent_edge)) {
  const VertexId n = static_cast<VertexId>(parent_.size());
  if (root < 0 || root >= n)
    throw std::invalid_argument("RootedTree: root out of range");
  if (parent_[root] != kInvalidVertex)
    throw std::invalid_argument("RootedTree: root must have no parent");
  if (parent_edge_.empty()) parent_edge_.assign(n, kInvalidEdge);
  if (static_cast<VertexId>(parent_edge_.size()) != n)
    throw std::invalid_argument("RootedTree: parent_edge size mismatch");
  build_structures();
}

RootedTree RootedTree::from_bfs(const BfsResult& bfs, VertexId root) {
  const VertexId n = static_cast<VertexId>(bfs.dist.size());
  for (VertexId v = 0; v < n; ++v)
    if (!bfs.reached(v))
      throw std::invalid_argument("RootedTree::from_bfs: unreached vertex");
  if (bfs.parent[root] != kInvalidVertex || bfs.dist[root] != 0)
    throw std::invalid_argument("RootedTree::from_bfs: root is not a source");
  return RootedTree(root, bfs.parent, bfs.parent_edge);
}

void RootedTree::build_structures() {
  const VertexId n = num_vertices();
  // Children lists (CSR).
  std::vector<std::size_t> cnt(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId v = 0; v < n; ++v)
    if (v != root_) {
      if (parent_[v] < 0 || parent_[v] >= n)
        throw std::invalid_argument("RootedTree: bad parent pointer");
      ++cnt[static_cast<std::size_t>(parent_[v]) + 1];
    }
  child_offset_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId v = 0; v < n; ++v)
    child_offset_[static_cast<std::size_t>(v) + 1] =
        child_offset_[v] + cnt[static_cast<std::size_t>(v) + 1];
  children_flat_.resize(child_offset_[static_cast<std::size_t>(n)]);
  {
    std::vector<std::size_t> cur(child_offset_.begin(),
                                 child_offset_.end() - 1);
    for (VertexId v = 0; v < n; ++v)
      if (v != root_) children_flat_[cur[parent_[v]]++] = v;
  }

  // Iterative preorder, depth, subtree sizes; also validates tree-ness.
  depth_.assign(n, -1);
  preorder_.clear();
  preorder_.reserve(n);
  std::vector<VertexId> stack{root_};
  depth_[root_] = 0;
  while (!stack.empty()) {
    VertexId v = stack.back();
    stack.pop_back();
    preorder_.push_back(v);
    for (VertexId c : children(v)) {
      if (depth_[c] != -1)
        throw std::invalid_argument("RootedTree: parent array has a cycle");
      depth_[c] = depth_[v] + 1;
      stack.push_back(c);
    }
  }
  if (static_cast<VertexId>(preorder_.size()) != n)
    throw std::invalid_argument("RootedTree: parent array is disconnected");
  height_ = *std::max_element(depth_.begin(), depth_.end());

  subtree_size_.assign(n, 1);
  for (auto it = preorder_.rbegin(); it != preorder_.rend(); ++it)
    if (*it != root_) subtree_size_[parent_[*it]] += subtree_size_[*it];

  // Euler intervals.
  tin_.assign(n, 0);
  tout_.assign(n, 0);
  {
    int timer = 0;
    // tin = preorder position; tout = tin + subtree_size - 1 works for
    // preorder numbering within subtrees.
    for (VertexId v : preorder_) tin_[v] = timer++;
    for (VertexId v = 0; v < n; ++v)
      tout_[v] = tin_[v] + subtree_size_[v] - 1;
  }

  // Binary lifting.
  int levels = 1;
  while ((1 << levels) < std::max(2, height_ + 1)) ++levels;
  up_.assign(levels, std::vector<VertexId>(n));
  for (VertexId v = 0; v < n; ++v)
    up_[0][v] = (v == root_) ? root_ : parent_[v];
  for (int k = 1; k < levels; ++k)
    for (VertexId v = 0; v < n; ++v) up_[k][v] = up_[k - 1][up_[k - 1][v]];

  // Heavy-light chains: heavy child = child with max subtree size.
  chain_head_.assign(n, kInvalidVertex);
  for (VertexId v : preorder_) {
    if (chain_head_[v] == kInvalidVertex) chain_head_[v] = v;
    VertexId heavy = kInvalidVertex;
    VertexId best = 0;
    for (VertexId c : children(v))
      if (subtree_size_[c] > best) {
        best = subtree_size_[c];
        heavy = c;
      }
    if (heavy != kInvalidVertex) chain_head_[heavy] = chain_head_[v];
  }
}

VertexId RootedTree::lca(VertexId u, VertexId v) const {
  if (is_ancestor(u, v)) return u;
  if (is_ancestor(v, u)) return v;
  for (int k = static_cast<int>(up_.size()) - 1; k >= 0; --k)
    if (!is_ancestor(up_[k][u], v)) u = up_[k][u];
  return up_[0][u];
}

VertexId RootedTree::kth_ancestor(VertexId v, int k) const {
  if (k > depth_[v])
    throw std::invalid_argument("kth_ancestor: k exceeds depth");
  for (int bit = 0; k > 0; ++bit, k >>= 1)
    if (k & 1) v = up_[bit][v];
  return v;
}

std::vector<EdgeId> RootedTree::path_edges(VertexId u, VertexId v) const {
  std::vector<EdgeId> out;
  VertexId a = lca(u, v);
  for (VertexId x = u; x != a; x = parent_[x]) out.push_back(parent_edge_[x]);
  std::vector<EdgeId> down;
  for (VertexId x = v; x != a; x = parent_[x]) down.push_back(parent_edge_[x]);
  out.insert(out.end(), down.rbegin(), down.rend());
  return out;
}

std::vector<VertexId> RootedTree::path_vertices(VertexId u, VertexId v) const {
  std::vector<VertexId> out;
  VertexId a = lca(u, v);
  for (VertexId x = u; x != a; x = parent_[x]) out.push_back(x);
  out.push_back(a);
  std::vector<VertexId> down;
  for (VertexId x = v; x != a; x = parent_[x]) down.push_back(x);
  out.insert(out.end(), down.rbegin(), down.rend());
  return out;
}

}  // namespace mns
