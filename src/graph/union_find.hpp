// Disjoint-set union with union by size and path compression.
#pragma once

#include <vector>

#include "graph/types.hpp"

namespace mns {

class UnionFind {
 public:
  explicit UnionFind(VertexId n);

  /// Representative of v's set.
  [[nodiscard]] VertexId find(VertexId v);

  /// Merges the sets of a and b; returns false if already merged.
  bool unite(VertexId a, VertexId b);

  [[nodiscard]] bool same(VertexId a, VertexId b) { return find(a) == find(b); }

  [[nodiscard]] VertexId num_sets() const noexcept { return num_sets_; }

  /// Size of v's set.
  [[nodiscard]] VertexId set_size(VertexId v);

  /// Relabels sets as dense ids 0..num_sets-1; returns per-vertex labels.
  [[nodiscard]] std::vector<VertexId> dense_labels();

 private:
  std::vector<VertexId> parent_;
  std::vector<VertexId> size_;
  VertexId num_sets_ = 0;
};

}  // namespace mns
