// Graph traversals and measurements used across the library: BFS trees,
// connectivity, eccentricity/diameter, and induced subgraphs with vertex maps.
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace mns {

inline constexpr int kUnreached = std::numeric_limits<int>::max();

/// Output of a (multi-source) breadth-first search.
struct BfsResult {
  /// Hop distance from the nearest source, kUnreached if disconnected.
  std::vector<int> dist;
  /// BFS-tree parent, kInvalidVertex for sources/unreached vertices.
  std::vector<VertexId> parent;
  /// Edge to parent, kInvalidEdge for sources/unreached vertices.
  std::vector<EdgeId> parent_edge;
  /// Which source claimed each vertex (ties by BFS order), kInvalidVertex if
  /// unreached. For single-source BFS this is the source everywhere reached.
  std::vector<VertexId> source;

  [[nodiscard]] bool reached(VertexId v) const { return dist[v] != kUnreached; }
  /// Max finite distance (0 for empty source sets on empty graphs).
  [[nodiscard]] int max_distance() const;
};

[[nodiscard]] BfsResult bfs(const Graph& g, VertexId source);
[[nodiscard]] BfsResult bfs_multi(const Graph& g,
                                  std::span<const VertexId> sources);

/// Weighted distance of an unreachable vertex.
inline constexpr Weight kUnreachedWeight = std::numeric_limits<Weight>::max();

/// Output of a (multi-source) weighted shortest-path computation.
struct ShortestPathResult {
  /// Weighted distance from the nearest source, kUnreachedWeight if
  /// disconnected.
  std::vector<Weight> dist;
  /// Shortest-path-tree parent, kInvalidVertex for sources/unreached.
  std::vector<VertexId> parent;
  /// Edge to parent, kInvalidEdge for sources/unreached.
  std::vector<EdgeId> parent_edge;
  /// Which source claimed each vertex (ties by (distance, source id)),
  /// kInvalidVertex if unreached.
  std::vector<VertexId> source;
  /// Hop count of the recorded shortest path, kUnreached if unreached.
  std::vector<int> hops;

  [[nodiscard]] bool reached(VertexId v) const {
    return dist[v] != kUnreachedWeight;
  }
  /// Deepest recorded path (0 when nothing is reached beyond the sources).
  [[nodiscard]] int max_hops() const;
};

/// Sequential Dijkstra — the verification oracle for every distributed SSSP
/// in src/congest. Requires non-negative weights, one per edge.
[[nodiscard]] ShortestPathResult dijkstra(const Graph& g,
                                          const std::vector<Weight>& w,
                                          VertexId source);

/// Multi-source Dijkstra: every vertex joins its closest source (ties broken
/// by smaller source id, so the claimed regions — weighted Voronoi cells —
/// are connected and the recorded parent path to the owning source stays
/// inside the cell). With `hop_cap >= 0` growth stops at that hop depth and
/// everything further stays unreached — the hop-capped Voronoi cells of the
/// approximate-SSSP scale phases (the cap bounds the rounds a distributed
/// cell growth would take).
[[nodiscard]] ShortestPathResult dijkstra_multi(
    const Graph& g, const std::vector<Weight>& w,
    std::span<const VertexId> sources, int hop_cap = -1);

/// Component labels in [0, count) and the component count.
struct Components {
  std::vector<VertexId> label;
  VertexId count = 0;
};
[[nodiscard]] Components connected_components(const Graph& g);
[[nodiscard]] bool is_connected(const Graph& g);

/// True if `subset` induces a connected subgraph of g (empty -> true).
[[nodiscard]] bool is_connected_subset(const Graph& g,
                                       std::span<const VertexId> subset);

/// Max hop distance from v (graph must be connected from v).
[[nodiscard]] int eccentricity(const Graph& g, VertexId v);

/// Exact diameter via all-pairs BFS. O(n·m) — for tests and small graphs.
[[nodiscard]] int diameter_exact(const Graph& g);

/// Double-sweep lower bound on the diameter (exact on trees). O(m).
[[nodiscard]] int diameter_double_sweep(const Graph& g, Rng& rng);

/// A vertex of (approximately) minimum eccentricity found by double sweep +
/// midpoint; used to root BFS spanning trees with height close to D/2..D.
[[nodiscard]] VertexId approximate_center(const Graph& g, Rng& rng);

/// An induced subgraph together with its vertex translation maps.
struct InducedSubgraph {
  Graph graph;
  /// local vertex -> vertex of the parent graph.
  std::vector<VertexId> to_parent;
  /// parent vertex -> local vertex or kInvalidVertex.
  std::vector<VertexId> to_local;
  /// local edge -> edge id in the parent graph.
  std::vector<EdgeId> edge_to_parent;
};
[[nodiscard]] InducedSubgraph induced_subgraph(
    const Graph& g, std::span<const VertexId> vertices);

/// Sum of degrees, max degree.
struct DegreeStats {
  std::size_t total = 0;
  int max = 0;
  double average = 0.0;
};
[[nodiscard]] DegreeStats degree_stats(const Graph& g);

}  // namespace mns
