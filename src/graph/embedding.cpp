#include "graph/embedding.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/algorithms.hpp"

namespace mns {

EmbeddedGraph::EmbeddedGraph(Graph graph,
                             std::vector<std::vector<EdgeId>> rotation)
    : graph_(std::move(graph)), rotation_(std::move(rotation)) {
  const VertexId n = graph_.num_vertices();
  if (static_cast<VertexId>(rotation_.size()) != n)
    throw std::invalid_argument("EmbeddedGraph: rotation size mismatch");

  pos_in_rotation_.assign(static_cast<std::size_t>(graph_.num_edges()) * 2, -1);
  for (VertexId v = 0; v < n; ++v) {
    auto incident = graph_.incident_edges(v);
    if (rotation_[v].size() != incident.size())
      throw std::invalid_argument(
          "EmbeddedGraph: rotation of wrong length at a vertex");
    std::vector<EdgeId> sorted_rot = rotation_[v];
    std::sort(sorted_rot.begin(), sorted_rot.end());
    std::vector<EdgeId> sorted_inc(incident.begin(), incident.end());
    std::sort(sorted_inc.begin(), sorted_inc.end());
    if (sorted_rot != sorted_inc)
      throw std::invalid_argument(
          "EmbeddedGraph: rotation is not a permutation of incident edges");
    for (int i = 0; i < static_cast<int>(rotation_[v].size()); ++i) {
      EdgeId e = rotation_[v][i];
      pos_in_rotation_[half_edge(e, v)] = i;
    }
  }
  trace_faces();
}

HalfEdgeId EmbeddedGraph::half_edge(EdgeId e, VertexId from) const {
  const Edge& ed = graph_.edge(e);
  require(ed.u == from || ed.v == from, "half_edge: vertex not on edge");
  return static_cast<HalfEdgeId>(2 * e + (ed.u == from ? 0 : 1));
}

HalfEdgeId EmbeddedGraph::face_next(HalfEdgeId h) const {
  HalfEdgeId t = twin(h);
  VertexId v = tail(t);  // == head(h)
  const auto& rot = rotation_[v];
  int pos = pos_in_rotation_[t];
  int next_pos = (pos + 1) % static_cast<int>(rot.size());
  return half_edge(rot[next_pos], v);
}

void EmbeddedGraph::trace_faces() {
  const std::size_t num_half = static_cast<std::size_t>(graph_.num_edges()) * 2;
  std::vector<char> visited(num_half, 0);
  faces_.clear();
  for (HalfEdgeId h0 = 0; h0 < static_cast<HalfEdgeId>(num_half); ++h0) {
    if (visited[h0]) continue;
    std::vector<HalfEdgeId> face;
    HalfEdgeId h = h0;
    do {
      visited[h] = 1;
      face.push_back(h);
      h = face_next(h);
    } while (h != h0);
    faces_.push_back(std::move(face));
  }
}

std::vector<VertexId> EmbeddedGraph::face_vertices(int f) const {
  std::vector<VertexId> out;
  out.reserve(faces_[f].size());
  for (HalfEdgeId h : faces_[f]) out.push_back(tail(h));
  return out;
}

int EmbeddedGraph::genus() const {
  if (!is_connected(graph_))
    throw std::invalid_argument("EmbeddedGraph::genus: graph disconnected");
  const long long n = graph_.num_vertices();
  const long long m = graph_.num_edges();
  const long long f = num_faces();
  const long long euler = n - m + f;  // == 2 - 2g
  require((2 - euler) % 2 == 0, "genus: odd Euler defect");
  return static_cast<int>((2 - euler) / 2);
}

bool EmbeddedGraph::face_is_simple_cycle(int f) const {
  std::vector<VertexId> verts = face_vertices(f);
  std::vector<VertexId> sorted = verts;
  std::sort(sorted.begin(), sorted.end());
  return std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end() &&
         verts.size() >= 3;
}

}  // namespace mns
