// Rooted spanning trees with LCA, ancestor queries, and heavy-light chains.
//
// The shortcut framework (Definitions 10-13) measures everything against a
// rooted spanning tree T of the network; this class is that tree. It is built
// either from a BfsResult (giving a BFS tree of height <= D) or from explicit
// parent arrays (e.g. the "repaired" trees T^2_h of Theorem 7's proof).
#pragma once

#include <span>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/graph.hpp"

namespace mns {

class RootedTree {
 public:
  /// Builds from explicit parent pointers. parent[root] == kInvalidVertex.
  /// parent_edge[v] may be kInvalidEdge throughout if the tree is not tied to
  /// graph edge ids (pass empty to default).
  RootedTree(VertexId root, std::vector<VertexId> parent,
             std::vector<EdgeId> parent_edge = {});

  /// Builds the BFS tree of a connected graph rooted at `bfs.source` vertices'
  /// tree. Requires the BFS to have reached every vertex.
  static RootedTree from_bfs(const BfsResult& bfs, VertexId root);

  [[nodiscard]] VertexId root() const noexcept { return root_; }
  [[nodiscard]] VertexId num_vertices() const noexcept {
    return static_cast<VertexId>(parent_.size());
  }
  [[nodiscard]] VertexId parent(VertexId v) const { return parent_[v]; }
  [[nodiscard]] EdgeId parent_edge(VertexId v) const { return parent_edge_[v]; }
  [[nodiscard]] int depth(VertexId v) const { return depth_[v]; }
  /// Max depth over all vertices (the tree's height).
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] std::span<const VertexId> children(VertexId v) const {
    return {children_flat_.data() + child_offset_[v],
            children_flat_.data() + child_offset_[v + 1]};
  }
  [[nodiscard]] VertexId subtree_size(VertexId v) const {
    return subtree_size_[v];
  }
  /// Vertices in preorder (root first; children after parents).
  [[nodiscard]] const std::vector<VertexId>& preorder() const noexcept {
    return preorder_;
  }

  [[nodiscard]] bool is_ancestor(VertexId anc, VertexId v) const {
    return tin_[anc] <= tin_[v] && tout_[v] <= tout_[anc];
  }
  [[nodiscard]] VertexId lca(VertexId u, VertexId v) const;
  /// Ancestor of v that is k levels up (k <= depth(v)).
  [[nodiscard]] VertexId kth_ancestor(VertexId v, int k) const;

  /// Heavy-light decomposition: head of the chain containing v. Two vertices
  /// are on the same chain iff they share a head. Any root-to-leaf path meets
  /// O(log n) chains (Theorem 7's folding step relies on this).
  [[nodiscard]] VertexId chain_head(VertexId v) const { return chain_head_[v]; }

  /// Edge ids on the tree path from u to v (requires parent_edge bindings).
  [[nodiscard]] std::vector<EdgeId> path_edges(VertexId u, VertexId v) const;

  /// Vertices on the tree path from u to v inclusive.
  [[nodiscard]] std::vector<VertexId> path_vertices(VertexId u,
                                                    VertexId v) const;

 private:
  void build_structures();

  VertexId root_ = kInvalidVertex;
  std::vector<VertexId> parent_;
  std::vector<EdgeId> parent_edge_;
  std::vector<int> depth_;
  int height_ = 0;
  std::vector<VertexId> preorder_;
  std::vector<VertexId> subtree_size_;
  std::vector<std::size_t> child_offset_;
  std::vector<VertexId> children_flat_;
  std::vector<int> tin_, tout_;
  std::vector<std::vector<VertexId>> up_;  // binary lifting table
  std::vector<VertexId> chain_head_;
};

}  // namespace mns
