// Immutable simple undirected graph in CSR (compressed sparse row) layout.
//
// Graphs are assembled through GraphBuilder and frozen on build(); all
// algorithms in this library take `const Graph&`. Self-loops are rejected
// (the CONGEST model ignores them, paper §1.3) and parallel edges are merged,
// which makes composition operations such as clique-sum identification
// (Definition 1) safe to express as plain edge insertion.
#pragma once

#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "graph/types.hpp"

namespace mns {

/// Typed error for malformed graph construction input (self-loops,
/// out-of-range endpoints, negative vertex counts). Derives from
/// std::invalid_argument — and therefore std::logic_error — so the snapshot
/// decoder's logic_error→SnapshotError translation keeps covering it.
class GraphError : public std::invalid_argument {
 public:
  explicit GraphError(const std::string& what) : std::invalid_argument(what) {}
};

/// An undirected edge as an ordered pair (u < v after normalization).
struct Edge {
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;

  friend bool operator==(const Edge&, const Edge&) = default;
};

class Graph {
 public:
  Graph() = default;

  /// Number of vertices.
  [[nodiscard]] VertexId num_vertices() const noexcept {
    return static_cast<VertexId>(offsets_.size()) - 1;
  }
  /// Number of (undirected, de-duplicated) edges.
  [[nodiscard]] EdgeId num_edges() const noexcept {
    return static_cast<EdgeId>(edges_.size());
  }

  [[nodiscard]] const Edge& edge(EdgeId e) const { return edges_[e]; }

  /// The endpoint of `e` that is not `v`. Requires v to be an endpoint of e.
  [[nodiscard]] VertexId other_endpoint(EdgeId e, VertexId v) const {
    const Edge& ed = edges_[e];
    require(ed.u == v || ed.v == v, "other_endpoint: v not on edge");
    return ed.u == v ? ed.v : ed.u;
  }

  [[nodiscard]] int degree(VertexId v) const {
    return static_cast<int>(offsets_[v + 1] - offsets_[v]);
  }

  /// Neighbors of v, sorted ascending.
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const {
    return {adj_targets_.data() + offsets_[v],
            adj_targets_.data() + offsets_[v + 1]};
  }

  /// Edge ids incident to v, parallel to neighbors(v).
  [[nodiscard]] std::span<const EdgeId> incident_edges(VertexId v) const {
    return {adj_edges_.data() + offsets_[v],
            adj_edges_.data() + offsets_[v + 1]};
  }

  /// True if the (undirected) edge {u, v} exists. O(log deg(u)).
  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const;

  /// Edge id of {u, v}, or kInvalidEdge. O(log deg(u)).
  [[nodiscard]] EdgeId find_edge(VertexId u, VertexId v) const;

  [[nodiscard]] const std::vector<Edge>& edges() const noexcept {
    return edges_;
  }

 private:
  friend class GraphBuilder;

  std::vector<Edge> edges_;
  // CSR adjacency: half-edges of vertex v occupy [offsets_[v], offsets_[v+1]).
  std::vector<std::size_t> offsets_;
  std::vector<VertexId> adj_targets_;
  std::vector<EdgeId> adj_edges_;
};

/// Accumulates edges, then freezes them into a Graph.
class GraphBuilder {
 public:
  /// Creates a builder for a graph with `n` vertices (n >= 0).
  explicit GraphBuilder(VertexId n);

  /// Adds undirected edge {u, v}. Throws GraphError on self-loops or
  /// out-of-range ids. Duplicate edges are merged at build() time.
  void add_edge(VertexId u, VertexId v);

  /// Pre-sizes the pending edge buffer. Streaming generators that know their
  /// edge count (grids: exact; clique-sums: an upper bound) call this so
  /// construction never pays vector-doubling peaks — the point of the
  /// stream-into-builder paths (DESIGN.md §9).
  void reserve_edges(std::size_t count) { pending_.reserve(count); }

  [[nodiscard]] VertexId num_vertices() const noexcept { return n_; }

  /// Freezes into an immutable Graph. The builder may not be reused.
  [[nodiscard]] Graph build();

 private:
  VertexId n_ = 0;
  std::vector<Edge> pending_;
  bool built_ = false;
};

}  // namespace mns
