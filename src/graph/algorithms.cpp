#include "graph/algorithms.hpp"

#include <algorithm>
#include <deque>
#include <queue>
#include <stdexcept>
#include <tuple>

namespace mns {

int BfsResult::max_distance() const {
  int best = 0;
  for (int d : dist)
    if (d != kUnreached) best = std::max(best, d);
  return best;
}

BfsResult bfs(const Graph& g, VertexId source) {
  return bfs_multi(g, std::span<const VertexId>(&source, 1));
}

BfsResult bfs_multi(const Graph& g, std::span<const VertexId> sources) {
  const VertexId n = g.num_vertices();
  BfsResult r;
  r.dist.assign(n, kUnreached);
  r.parent.assign(n, kInvalidVertex);
  r.parent_edge.assign(n, kInvalidEdge);
  r.source.assign(n, kInvalidVertex);

  std::deque<VertexId> queue;
  for (VertexId s : sources) {
    if (s < 0 || s >= n) throw std::invalid_argument("bfs: source out of range");
    if (r.dist[s] == 0) continue;  // duplicate source
    r.dist[s] = 0;
    r.source[s] = s;
    queue.push_back(s);
  }
  while (!queue.empty()) {
    VertexId v = queue.front();
    queue.pop_front();
    auto nbrs = g.neighbors(v);
    auto eids = g.incident_edges(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      VertexId w = nbrs[i];
      if (r.dist[w] != kUnreached) continue;
      r.dist[w] = r.dist[v] + 1;
      r.parent[w] = v;
      r.parent_edge[w] = eids[i];
      r.source[w] = r.source[v];
      queue.push_back(w);
    }
  }
  return r;
}

int ShortestPathResult::max_hops() const {
  int best = 0;
  for (int h : hops)
    if (h != kUnreached) best = std::max(best, h);
  return best;
}

ShortestPathResult dijkstra(const Graph& g, const std::vector<Weight>& w,
                            VertexId source) {
  return dijkstra_multi(g, w, std::span<const VertexId>(&source, 1));
}

ShortestPathResult dijkstra_multi(const Graph& g, const std::vector<Weight>& w,
                                  std::span<const VertexId> sources,
                                  int hop_cap) {
  const VertexId n = g.num_vertices();
  if (static_cast<EdgeId>(w.size()) != g.num_edges())
    throw std::invalid_argument("dijkstra: weight size mismatch");
  for (Weight x : w)
    if (x < 0) throw std::invalid_argument("dijkstra: negative weight");

  ShortestPathResult r;
  r.dist.assign(n, kUnreachedWeight);
  r.parent.assign(n, kInvalidVertex);
  r.parent_edge.assign(n, kInvalidEdge);
  r.source.assign(n, kInvalidVertex);
  r.hops.assign(n, kUnreached);

  // (distance, owning source, vertex): the source in the key makes the
  // tie-break deterministic, so weighted Voronoi cells are well defined.
  using Entry = std::tuple<Weight, VertexId, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  for (VertexId s : sources) {
    if (s < 0 || s >= n)
      throw std::invalid_argument("dijkstra: source out of range");
    if (r.dist[s] == 0) continue;  // duplicate source
    r.dist[s] = 0;
    r.source[s] = s;
    r.hops[s] = 0;
    pq.push({0, s, s});
  }
  std::vector<char> settled(n, 0);
  while (!pq.empty()) {
    auto [d, owner, v] = pq.top();
    pq.pop();
    if (settled[v]) continue;
    settled[v] = 1;
    // r.hops[v] is final here (relaxations only come from settled vertices).
    if (hop_cap >= 0 && r.hops[v] >= hop_cap) continue;
    auto nbrs = g.neighbors(v);
    auto eids = g.incident_edges(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      VertexId u = nbrs[i];
      if (settled[u]) continue;
      Weight cand = d + w[eids[i]];
      if (cand < r.dist[u] ||
          (cand == r.dist[u] && r.source[u] != kInvalidVertex &&
           owner < r.source[u])) {
        r.dist[u] = cand;
        r.parent[u] = v;
        r.parent_edge[u] = eids[i];
        r.source[u] = owner;
        r.hops[u] = r.hops[v] + 1;
        pq.push({cand, owner, u});
      }
    }
  }
  if (hop_cap >= 0)
    for (VertexId v = 0; v < n; ++v)
      if (!settled[v]) {  // tentative labels beyond the cap are discarded
        r.dist[v] = kUnreachedWeight;
        r.parent[v] = kInvalidVertex;
        r.parent_edge[v] = kInvalidEdge;
        r.source[v] = kInvalidVertex;
        r.hops[v] = kUnreached;
      }
  return r;
}

Components connected_components(const Graph& g) {
  const VertexId n = g.num_vertices();
  Components c;
  c.label.assign(n, kInvalidVertex);
  for (VertexId s = 0; s < n; ++s) {
    if (c.label[s] != kInvalidVertex) continue;
    std::vector<VertexId> stack{s};
    c.label[s] = c.count;
    while (!stack.empty()) {
      VertexId v = stack.back();
      stack.pop_back();
      for (VertexId w : g.neighbors(v)) {
        if (c.label[w] == kInvalidVertex) {
          c.label[w] = c.count;
          stack.push_back(w);
        }
      }
    }
    ++c.count;
  }
  return c;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  return connected_components(g).count == 1;
}

bool is_connected_subset(const Graph& g, std::span<const VertexId> subset) {
  if (subset.empty()) return true;
  std::vector<char> in_subset(g.num_vertices(), 0);
  for (VertexId v : subset) {
    if (v < 0 || v >= g.num_vertices())
      throw std::invalid_argument("is_connected_subset: vertex out of range");
    in_subset[v] = 1;
  }
  std::vector<char> seen(g.num_vertices(), 0);
  std::vector<VertexId> stack{subset[0]};
  seen[subset[0]] = 1;
  std::size_t visited = 1;
  while (!stack.empty()) {
    VertexId v = stack.back();
    stack.pop_back();
    for (VertexId w : g.neighbors(v)) {
      if (in_subset[w] && !seen[w]) {
        seen[w] = 1;
        ++visited;
        stack.push_back(w);
      }
    }
  }
  std::size_t distinct = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) distinct += in_subset[v];
  return visited == distinct;
}

int eccentricity(const Graph& g, VertexId v) {
  BfsResult r = bfs(g, v);
  for (VertexId w = 0; w < g.num_vertices(); ++w)
    if (!r.reached(w))
      throw std::invalid_argument("eccentricity: graph is disconnected");
  return r.max_distance();
}

int diameter_exact(const Graph& g) {
  int best = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    best = std::max(best, eccentricity(g, v));
  return best;
}

int diameter_double_sweep(const Graph& g, Rng& rng) {
  if (g.num_vertices() == 0) return 0;
  std::uniform_int_distribution<VertexId> pick(0, g.num_vertices() - 1);
  BfsResult first = bfs(g, pick(rng));
  VertexId far = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (first.dist[v] != kUnreached && first.dist[v] > first.dist[far]) far = v;
  return eccentricity(g, far);
}

VertexId approximate_center(const Graph& g, Rng& rng) {
  if (g.num_vertices() == 0)
    throw std::invalid_argument("approximate_center: empty graph");
  std::uniform_int_distribution<VertexId> pick(0, g.num_vertices() - 1);
  BfsResult a = bfs(g, pick(rng));
  VertexId u = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (a.dist[v] != kUnreached && a.dist[v] > a.dist[u]) u = v;
  BfsResult b = bfs(g, u);
  VertexId w = u;
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (b.dist[v] != kUnreached && b.dist[v] > b.dist[w]) w = v;
  // Walk half-way back from w toward u along BFS parents.
  int steps = b.dist[w] / 2;
  VertexId mid = w;
  for (int i = 0; i < steps && b.parent[mid] != kInvalidVertex; ++i)
    mid = b.parent[mid];
  return mid;
}

InducedSubgraph induced_subgraph(const Graph& g,
                                 std::span<const VertexId> vertices) {
  InducedSubgraph s;
  s.to_parent.assign(vertices.begin(), vertices.end());
  std::sort(s.to_parent.begin(), s.to_parent.end());
  s.to_parent.erase(std::unique(s.to_parent.begin(), s.to_parent.end()),
                    s.to_parent.end());
  s.to_local.assign(g.num_vertices(), kInvalidVertex);
  for (VertexId i = 0; i < static_cast<VertexId>(s.to_parent.size()); ++i) {
    VertexId p = s.to_parent[i];
    if (p < 0 || p >= g.num_vertices())
      throw std::invalid_argument("induced_subgraph: vertex out of range");
    s.to_local[p] = i;
  }
  GraphBuilder builder(static_cast<VertexId>(s.to_parent.size()));
  std::vector<EdgeId> kept;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(e);
    if (s.to_local[ed.u] != kInvalidVertex &&
        s.to_local[ed.v] != kInvalidVertex) {
      builder.add_edge(s.to_local[ed.u], s.to_local[ed.v]);
      kept.push_back(e);
    }
  }
  s.graph = builder.build();
  // GraphBuilder sorts edges by normalized endpoints; replicate that order to
  // map local edge ids back to parent edge ids.
  std::sort(kept.begin(), kept.end(), [&](EdgeId a, EdgeId b) {
    auto key = [&](EdgeId e) {
      VertexId lu = s.to_local[g.edge(e).u];
      VertexId lv = s.to_local[g.edge(e).v];
      if (lu > lv) std::swap(lu, lv);
      return std::pair(lu, lv);
    };
    return key(a) < key(b);
  });
  s.edge_to_parent = std::move(kept);
  return s;
}

DegreeStats degree_stats(const Graph& g) {
  DegreeStats d;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    d.total += static_cast<std::size_t>(g.degree(v));
    d.max = std::max(d.max, g.degree(v));
  }
  d.average =
      g.num_vertices() == 0
          ? 0.0
          : static_cast<double>(d.total) / static_cast<double>(g.num_vertices());
  return d;
}

}  // namespace mns
