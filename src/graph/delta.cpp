#include "graph/delta.hpp"

#include <algorithm>
#include <string>

namespace mns {
namespace {

[[noreturn]] void bad(const std::string& what) { throw UpdateError(what); }

}  // namespace

GraphDelta apply_delta(const Graph& g, const UpdateBatch& batch) {
  const VertexId n = g.num_vertices();
  const EdgeId m = g.num_edges();
  if (batch.add_vertices < 0) bad("apply_delta: negative add_vertices");

  std::vector<char> vertex_removed(static_cast<std::size_t>(n), 0);
  for (VertexId v : batch.remove_vertices) {
    if (v < 0 || v >= n) bad("apply_delta: remove_vertices id out of range");
    vertex_removed[static_cast<std::size_t>(v)] = 1;
  }
  std::vector<char> edge_removed(static_cast<std::size_t>(m), 0);
  for (EdgeId e : batch.remove_edges) {
    if (e < 0 || e >= m) bad("apply_delta: remove_edges id out of range");
    edge_removed[static_cast<std::size_t>(e)] = 1;
  }
  // Edges incident to a removed vertex go with it.
  for (EdgeId e = 0; e < m; ++e) {
    const Edge& ed = g.edge(e);
    if (vertex_removed[static_cast<std::size_t>(ed.u)] ||
        vertex_removed[static_cast<std::size_t>(ed.v)])
      edge_removed[static_cast<std::size_t>(e)] = 1;
  }

  GraphDelta delta;
  delta.vertex_map.assign(static_cast<std::size_t>(n), kInvalidVertex);
  VertexId next = 0;
  for (VertexId v = 0; v < n; ++v)
    if (!vertex_removed[static_cast<std::size_t>(v)])
      delta.vertex_map[static_cast<std::size_t>(v)] = next++;
  const VertexId survivors = next;
  const VertexId new_n = survivors + batch.add_vertices;
  // Extended old id space: old id n + i addresses the i-th added vertex.
  auto map_extended = [&](VertexId v) -> VertexId {
    if (v < 0 || v >= n + batch.add_vertices)
      bad("apply_delta: insert_edges endpoint out of range");
    if (v >= n) return survivors + (v - n);
    VertexId nv = delta.vertex_map[static_cast<std::size_t>(v)];
    if (nv == kInvalidVertex)
      bad("apply_delta: insert_edges endpoint was removed");
    return nv;
  };

  EdgeId surviving_edges = 0;
  for (EdgeId e = 0; e < m; ++e)
    if (!edge_removed[static_cast<std::size_t>(e)]) ++surviving_edges;

  GraphBuilder b(new_n);
  b.reserve_edges(static_cast<std::size_t>(surviving_edges) +
                  batch.insert_edges.size());
  for (EdgeId e = 0; e < m; ++e) {
    if (edge_removed[static_cast<std::size_t>(e)]) continue;
    const Edge& ed = g.edge(e);
    b.add_edge(delta.vertex_map[static_cast<std::size_t>(ed.u)],
               delta.vertex_map[static_cast<std::size_t>(ed.v)]);
  }
  for (const EdgeInsert& ins : batch.insert_edges)
    b.add_edge(map_extended(ins.u), map_extended(ins.v));
  delta.graph = b.build();

  // The builder merges duplicates silently; an insert colliding with a
  // surviving edge (or another insert) would desynchronise edge ids and
  // weights, so reject it.
  if (delta.graph.num_edges() !=
      surviving_edges + static_cast<EdgeId>(batch.insert_edges.size()))
    bad("apply_delta: inserted edge duplicates an existing edge");

  delta.edge_map.assign(static_cast<std::size_t>(m), kInvalidEdge);
  for (EdgeId e = 0; e < m; ++e) {
    if (edge_removed[static_cast<std::size_t>(e)]) continue;
    const Edge& ed = g.edge(e);
    delta.edge_map[static_cast<std::size_t>(e)] = delta.graph.find_edge(
        delta.vertex_map[static_cast<std::size_t>(ed.u)],
        delta.vertex_map[static_cast<std::size_t>(ed.v)]);
  }

  delta.touched.assign(static_cast<std::size_t>(new_n), 0);
  auto touch_old = [&](VertexId v) {
    VertexId nv = delta.vertex_map[static_cast<std::size_t>(v)];
    if (nv != kInvalidVertex) delta.touched[static_cast<std::size_t>(nv)] = 1;
  };
  for (EdgeId e = 0; e < m; ++e) {
    if (!edge_removed[static_cast<std::size_t>(e)]) continue;
    touch_old(g.edge(e).u);
    touch_old(g.edge(e).v);
  }
  for (const EdgeInsert& ins : batch.insert_edges) {
    delta.touched[static_cast<std::size_t>(map_extended(ins.u))] = 1;
    delta.touched[static_cast<std::size_t>(map_extended(ins.v))] = 1;
  }
  for (VertexId i = 0; i < batch.add_vertices; ++i)
    delta.touched[static_cast<std::size_t>(survivors + i)] = 1;
  return delta;
}

std::vector<Weight> remap_weights(const Graph& old_g, const Graph& new_g,
                                  const GraphDelta& delta,
                                  const UpdateBatch& batch,
                                  std::vector<Weight> weights) {
  return remap_weights(old_g, new_g, delta.vertex_map, delta.edge_map, batch,
                       std::move(weights));
}

std::vector<Weight> remap_weights(const Graph& old_g, const Graph& new_g,
                                  std::span<const VertexId> vertex_map,
                                  std::span<const EdgeId> edge_map,
                                  const UpdateBatch& batch,
                                  std::vector<Weight> weights) {
  if (weights.size() != static_cast<std::size_t>(old_g.num_edges()))
    bad("remap_weights: weights not parallel to the old edge list");
  apply_weight_changes(batch, weights);

  std::vector<Weight> out(static_cast<std::size_t>(new_g.num_edges()), 0);
  for (EdgeId e = 0; e < old_g.num_edges(); ++e) {
    EdgeId ne = edge_map[static_cast<std::size_t>(e)];
    if (ne != kInvalidEdge)
      out[static_cast<std::size_t>(ne)] = weights[static_cast<std::size_t>(e)];
  }
  const VertexId old_n = old_g.num_vertices();
  VertexId survivors = 0;
  for (VertexId v = 0; v < old_n; ++v)
    if (vertex_map[static_cast<std::size_t>(v)] != kInvalidVertex) ++survivors;
  auto map_extended = [&](VertexId v) -> VertexId {
    return v >= old_n ? survivors + (v - old_n)
                      : vertex_map[static_cast<std::size_t>(v)];
  };
  for (const EdgeInsert& ins : batch.insert_edges) {
    EdgeId ne = new_g.find_edge(map_extended(ins.u), map_extended(ins.v));
    require(ne != kInvalidEdge, "remap_weights: inserted edge not found");
    out[static_cast<std::size_t>(ne)] = ins.weight;
  }
  return out;
}

void apply_weight_changes(const UpdateBatch& batch,
                          std::vector<Weight>& weights) {
  for (const WeightChange& wc : batch.weight_changes) {
    if (wc.edge < 0 ||
        static_cast<std::size_t>(wc.edge) >= weights.size())
      bad("apply_weight_changes: edge id out of range");
    weights[static_cast<std::size_t>(wc.edge)] = wc.weight;
  }
}

}  // namespace mns
