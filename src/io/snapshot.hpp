// Versioned binary snapshots: cross-process persistence for everything a
// congest::Session pays to derive (DESIGN.md §8).
//
// The paper's economics are "pay for structure once, reuse it across
// optimization problems" — a snapshot extends "once" across process
// boundaries. It captures the network (Graph + per-edge weights), the
// structural knowledge (StructuralCertificate, all four variants), the
// session's rooted spanning tree, and the shortcut cache (each cached
// partition's part_of map plus its built Shortcut), so a restored session
// starts WARM: the first solve over a snapshotted partition is a cache hit
// with charged_construction_rounds == 0 and is bit-identical to the
// in-process warm solve.
//
// Format (all integers little-endian, explicitly byte-serialized):
//
//   magic "MNSSNAP\0" | u32 version | u32 section_count
//   section*: u32 tag | u64 payload_bytes | payload | u64 fnv1a64(payload)
//
// Sections: 1=graph, 2=weights, 3=certificate, 4=tree, 5=shortcut-cache,
// 6=update-history (v2 only; DESIGN.md §12). Graph and certificate are
// mandatory; the rest appear when present. Version policy (DESIGN.md §8):
// the writer emits the OLDEST version that can represent the content — v1
// unless update history is present, so pre-churn snapshots stay byte-stable
// — and readers accept every version up to kSnapshotVersion, rejecting
// v2-only sections in a file stamped v1.
// Readers verify magic, version, and every section checksum BEFORE parsing
// a payload, and every decoder is bounds-checked — corruption (truncation,
// bit flips, wrong version, out-of-range certificate tags) throws
// SnapshotError, never UB (pinned by tests/test_snapshot.cpp under ASan).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/certificate.hpp"
#include "core/shortcut.hpp"
#include "graph/delta.hpp"
#include "graph/graph.hpp"

namespace mns::io {

/// Typed decode/I-O error: anything wrong with a snapshot file — unreadable,
/// truncated, checksum mismatch, unsupported version, malformed payload —
/// surfaces as this exception.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what) : std::runtime_error(what) {}
};

/// Newest version this build reads AND the version stamped on snapshots
/// that need v2 content (update history); content representable in v1 is
/// still written as v1 so existing snapshots round-trip byte-identically.
inline constexpr std::uint32_t kSnapshotVersion = 2;

/// The session's rooted spanning tree as plain data (rebuilt through the
/// validating RootedTree constructor on restore).
struct TreeSnapshot {
  VertexId root = kInvalidVertex;
  std::vector<VertexId> parent;      ///< parent[root] == kInvalidVertex
  std::vector<EdgeId> parent_edge;   ///< graph edge ids, kInvalidEdge at root
};

/// One shortcut-cache entry: the dense per-vertex part map it was built for
/// (the cache key's exact guard) and the built shortcut.
struct CachedShortcut {
  std::vector<PartId> part_of;
  Shortcut shortcut;
};

struct Snapshot {
  Graph graph;
  /// Per-edge weights of the instance (empty = unweighted snapshot).
  std::vector<Weight> weights;
  StructuralCertificate certificate = greedy_certificate();
  /// Session rooted tree, if it was built before save.
  std::optional<TreeSnapshot> tree;
  /// Cached shortcuts, most-recently-used first (LRU order is preserved
  /// across save/restore).
  std::vector<CachedShortcut> shortcuts;
  /// Cumulative incremental-update telemetry (DESIGN.md §12). All-zero
  /// history is omitted on encode (and forces no version bump).
  UpdateHistory history{};
  /// Version of the file this snapshot was decoded from (encode ignores it;
  /// the writer picks the oldest version that fits the content).
  std::uint32_t version = kSnapshotVersion;
};

/// Serializes to the versioned, checksummed byte format above.
[[nodiscard]] std::vector<std::uint8_t> encode_snapshot(const Snapshot& snap);

/// Decodes and cross-validates (weights/tree/cache sizes against the graph,
/// edge and part ids in range). Throws SnapshotError on any corruption.
[[nodiscard]] Snapshot decode_snapshot(std::span<const std::uint8_t> bytes);

/// encode + write to `path`; throws SnapshotError on I/O failure.
void write_snapshot(const Snapshot& snap, const std::string& path);

/// read `path` + decode; throws SnapshotError on I/O failure or corruption.
[[nodiscard]] Snapshot read_snapshot(const std::string& path);

}  // namespace mns::io
