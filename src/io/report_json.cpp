#include "io/report_json.hpp"

#include <cinttypes>
#include <cstdio>

#include "io/fnv.hpp"
#include "io/json.hpp"

namespace mns::io {

namespace {

using congest::RunReport;

std::uint64_t digest_i64(const std::vector<std::int64_t>& v) {
  Fnv64 h;
  for (std::int64_t x : v) h.mix_i64(x);
  return h.value();
}

std::uint64_t digest_i32(const std::vector<std::int32_t>& v) {
  Fnv64 h;
  for (std::int32_t x : v) h.mix_i64(x);
  return h.value();
}

std::uint64_t digest_int(const std::vector<int>& v) {
  Fnv64 h;
  for (int x : v) h.mix_i64(x);
  return h.value();
}

std::uint64_t digest_membership(const std::vector<char>& v) {
  Fnv64 h;
  for (char x : v) h.mix_i64(x != 0 ? 1 : 0);
  return h.value();
}

std::uint64_t digest_agg(const std::vector<congest::AggValue>& v) {
  Fnv64 h;
  for (const congest::AggValue& x : v) {
    h.mix_i64(x.value);
    h.mix_i64(x.aux);
  }
  return h.value();
}

std::string hex64(std::uint64_t x) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016" PRIx64, x);
  return buf;
}

void field(std::string& out, const char* key, const std::string& rendered,
           bool first = false) {
  if (!first) out += ", ";
  out += json_quote(key) + ": " + rendered;
}

std::string payload_json(const RunReport& r) {
  std::string out = "{";
  if (const auto* mst = std::get_if<congest::MstPayload>(&r.payload)) {
    field(out, "kind", json_quote("mst"), true);
    field(out, "num_edges", json_number(
        static_cast<long long>(mst->edges.size())));
    field(out, "edges_fnv", json_quote(hex64(digest_i32(mst->edges))));
    field(out, "fragments_fnv",
          json_quote(hex64(digest_i32(mst->fragment_of))));
  } else if (const auto* cut =
                 std::get_if<congest::MinCutPayload>(&r.payload)) {
    field(out, "kind", json_quote("mincut"), true);
    field(out, "value", json_number(static_cast<long long>(cut->value)));
    field(out, "trees", json_number(static_cast<long long>(cut->trees)));
  } else if (const auto* sssp = std::get_if<congest::SsspPayload>(&r.payload)) {
    field(out, "kind", json_quote("sssp"), true);
    field(out, "num_vertices", json_number(
        static_cast<long long>(sssp->dist.size())));
    field(out, "dist_fnv", json_quote(hex64(digest_i64(sssp->dist))));
    field(out, "jumps", json_number(sssp->jumps));
  } else if (const auto* bfs = std::get_if<congest::BfsPayload>(&r.payload)) {
    field(out, "kind", json_quote("bfs"), true);
    field(out, "num_vertices", json_number(
        static_cast<long long>(bfs->dist.size())));
    field(out, "dist_fnv", json_quote(hex64(digest_int(bfs->dist))));
    field(out, "parent_fnv", json_quote(hex64(digest_i32(bfs->parent))));
  } else if (const auto* agg =
                 std::get_if<congest::AggregatePayload>(&r.payload)) {
    field(out, "kind", json_quote("aggregate"), true);
    field(out, "num_parts", json_number(
        static_cast<long long>(agg->min_of_part.size())));
    field(out, "min_fnv", json_quote(hex64(digest_agg(agg->min_of_part))));
  } else if (const auto* mis = std::get_if<congest::MisPayload>(&r.payload)) {
    field(out, "kind", json_quote("mis"), true);
    field(out, "num_vertices", json_number(
        static_cast<long long>(mis->in_mis.size())));
    field(out, "size", json_number(static_cast<long long>(mis->size)));
    field(out, "members_fnv",
          json_quote(hex64(digest_membership(mis->in_mis))));
  } else if (const auto* ds = std::get_if<congest::DomsetPayload>(&r.payload)) {
    field(out, "kind", json_quote("domset"), true);
    field(out, "num_vertices", json_number(
        static_cast<long long>(ds->in_set.size())));
    field(out, "size", json_number(static_cast<long long>(ds->size)));
    field(out, "members_fnv",
          json_quote(hex64(digest_membership(ds->in_set))));
  } else {
    field(out, "kind", json_quote("none"), true);
  }
  out += '}';
  return out;
}

}  // namespace

std::string run_report_to_json(const RunReport& r) {
  std::string out = "{";
  field(out, "workload", json_quote(r.workload), true);
  field(out, "rounds", json_number(r.rounds));
  field(out, "messages", json_number(r.messages));
  field(out, "threads", json_number(static_cast<long long>(r.threads)));
  field(out, "charged_construction_rounds",
        json_number(r.charged_construction_rounds));
  field(out, "total_rounds", json_number(r.total_rounds()));
  field(out, "phases", json_number(static_cast<long long>(r.phases)));
  field(out, "aggregations", json_number(r.aggregations));
  field(out, "cache_hits", json_number(r.cache_hits));
  field(out, "cache_misses", json_number(r.cache_misses));
  field(out, "cache_evictions", json_number(r.cache_evictions));
  field(out, "wall_ms", json_number(r.wall_ms));
  field(out, "payload", payload_json(r));
  out += '}';
  return out;
}

bool run_reports_identical(const RunReport& a, const RunReport& b) {
  if (a.workload != b.workload || a.rounds != b.rounds ||
      a.messages != b.messages || a.threads != b.threads ||
      a.charged_construction_rounds != b.charged_construction_rounds ||
      a.phases != b.phases || a.aggregations != b.aggregations ||
      a.cache_hits != b.cache_hits || a.cache_misses != b.cache_misses ||
      a.cache_evictions != b.cache_evictions)
    return false;
  // Full payload content (the digest comparison in JSON is the same check
  // modulo FNV collisions; here we have the real data, so compare exactly).
  if (a.payload.index() != b.payload.index()) return false;
  if (const auto* am = std::get_if<congest::MstPayload>(&a.payload)) {
    const auto& bm = std::get<congest::MstPayload>(b.payload);
    return am->edges == bm.edges && am->fragment_of == bm.fragment_of;
  }
  if (const auto* ac = std::get_if<congest::MinCutPayload>(&a.payload)) {
    const auto& bc = std::get<congest::MinCutPayload>(b.payload);
    return ac->value == bc.value && ac->trees == bc.trees;
  }
  if (const auto* as = std::get_if<congest::SsspPayload>(&a.payload)) {
    const auto& bs = std::get<congest::SsspPayload>(b.payload);
    return as->dist == bs.dist && as->jumps == bs.jumps;
  }
  if (const auto* ab = std::get_if<congest::BfsPayload>(&a.payload)) {
    const auto& bb = std::get<congest::BfsPayload>(b.payload);
    return ab->dist == bb.dist && ab->parent == bb.parent &&
           ab->parent_edge == bb.parent_edge;
  }
  if (const auto* aa = std::get_if<congest::AggregatePayload>(&a.payload)) {
    const auto& ba = std::get<congest::AggregatePayload>(b.payload);
    if (aa->min_of_part.size() != ba.min_of_part.size()) return false;
    for (std::size_t i = 0; i < aa->min_of_part.size(); ++i)
      if (aa->min_of_part[i] != ba.min_of_part[i]) return false;
    return true;
  }
  if (const auto* ai = std::get_if<congest::MisPayload>(&a.payload)) {
    const auto& bi = std::get<congest::MisPayload>(b.payload);
    return ai->in_mis == bi.in_mis && ai->size == bi.size;
  }
  if (const auto* ad = std::get_if<congest::DomsetPayload>(&a.payload)) {
    const auto& bd = std::get<congest::DomsetPayload>(b.payload);
    return ad->in_set == bd.in_set && ad->size == bd.size;
  }
  return true;  // both monostate
}

}  // namespace mns::io
