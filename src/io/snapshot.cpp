#include "io/snapshot.hpp"

#include <array>
#include <cstdio>
#include <utility>

#include "io/fnv.hpp"

namespace mns::io {

namespace {

constexpr std::array<std::uint8_t, 8> kMagic = {'M', 'N', 'S', 'S',
                                                'N', 'A', 'P', '\0'};

enum SectionTag : std::uint32_t {
  kSectionGraph = 1,
  kSectionWeights = 2,
  kSectionCertificate = 3,
  kSectionTree = 4,
  kSectionShortcutCache = 5,
  kSectionUpdateHistory = 6,  // v2+
};

enum CertTag : std::uint32_t {
  kCertUniform = 0,
  kCertTreewidth = 1,
  kCertApex = 2,
  kCertCliqueSum = 3,
};

// ----------------------------------------------------------------- writer --

class Writer {
 public:
  void put_u8(std::uint8_t b) { out_.push_back(b); }
  void put_u32(std::uint32_t x) {
    for (int byte = 0; byte < 4; ++byte)
      out_.push_back(static_cast<std::uint8_t>((x >> (8 * byte)) & 0xffu));
  }
  void put_u64(std::uint64_t x) {
    for (int byte = 0; byte < 8; ++byte)
      out_.push_back(static_cast<std::uint8_t>((x >> (8 * byte)) & 0xffu));
  }
  void put_i32(std::int32_t x) { put_u32(static_cast<std::uint32_t>(x)); }
  void put_i64(std::int64_t x) { put_u64(static_cast<std::uint64_t>(x)); }
  void put_vec_i32(std::span<const std::int32_t> v) {
    put_u64(v.size());
    for (std::int32_t x : v) put_i32(x);
  }
  void put_bytes(std::span<const std::uint8_t> bytes) {
    out_.insert(out_.end(), bytes.begin(), bytes.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return out_;
  }

 private:
  std::vector<std::uint8_t> out_;
};

// ----------------------------------------------------------------- reader --

/// Bounds-checked cursor over one section payload (or the container frame).
/// Every read validates the remaining byte count first, so a malformed
/// length can only ever produce a SnapshotError, never an out-of-range read.
class Reader {
 public:
  Reader(std::span<const std::uint8_t> bytes, const char* what)
      : bytes_(bytes), what_(what) {}

  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }
  [[nodiscard]] bool done() const noexcept { return remaining() == 0; }

  std::uint8_t get_u8() {
    need(1);
    return bytes_[pos_++];
  }
  std::uint32_t get_u32() {
    need(4);
    std::uint32_t x = 0;
    for (int byte = 0; byte < 4; ++byte)
      x |= static_cast<std::uint32_t>(bytes_[pos_++]) << (8 * byte);
    return x;
  }
  std::uint64_t get_u64() {
    need(8);
    std::uint64_t x = 0;
    for (int byte = 0; byte < 8; ++byte)
      x |= static_cast<std::uint64_t>(bytes_[pos_++]) << (8 * byte);
    return x;
  }
  std::int32_t get_i32() { return static_cast<std::int32_t>(get_u32()); }
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }

  /// Reads an element count and checks the payload can actually hold that
  /// many `elem_bytes`-sized elements (rejects absurd counts up front).
  std::size_t get_count(std::size_t elem_bytes) {
    const std::uint64_t count = get_u64();
    if (count > remaining() / elem_bytes)
      throw SnapshotError(std::string("snapshot: ") + what_ +
                          ": element count exceeds payload size");
    return static_cast<std::size_t>(count);
  }

  std::vector<std::int32_t> get_vec_i32() {
    const std::size_t count = get_count(4);
    std::vector<std::int32_t> v;
    v.reserve(count);
    for (std::size_t i = 0; i < count; ++i) v.push_back(get_i32());
    return v;
  }

  std::span<const std::uint8_t> get_bytes(std::size_t count) {
    need(count);
    auto out = bytes_.subspan(pos_, count);
    pos_ += count;
    return out;
  }

  void expect_done() const {
    if (!done())
      throw SnapshotError(std::string("snapshot: ") + what_ +
                          ": trailing bytes in section");
  }

 private:
  void need(std::size_t n) const {
    if (remaining() < n)
      throw SnapshotError(std::string("snapshot: truncated ") + what_);
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  const char* what_;
};

// --------------------------------------------------- section payload codecs

void encode_graph(Writer& w, const Graph& g) {
  w.put_u64(static_cast<std::uint64_t>(g.num_vertices()));
  w.put_u64(static_cast<std::uint64_t>(g.num_edges()));
  for (const Edge& e : g.edges()) {
    w.put_i32(e.u);
    w.put_i32(e.v);
  }
}

Graph decode_graph(Reader& r) {
  const std::uint64_t n = r.get_u64();
  if (n > static_cast<std::uint64_t>(INT32_MAX))
    throw SnapshotError("snapshot: graph vertex count out of range");
  const std::size_t m = r.get_count(8);
  GraphBuilder b(static_cast<VertexId>(n));
  b.reserve_edges(m);  // stream into the builder at exact capacity
  for (std::size_t e = 0; e < m; ++e) {
    const VertexId u = r.get_i32();
    const VertexId v = r.get_i32();
    b.add_edge(u, v);  // validates range / self-loops
  }
  Graph g = b.build();
  // GraphBuilder sorts and dedups; a valid snapshot's edge list is already
  // sorted unique, so the ids (and thus weights/shortcuts/tree bindings)
  // survive the round trip exactly. A corrupt list that dedups differently
  // is caught here.
  if (static_cast<std::size_t>(g.num_edges()) != m)
    throw SnapshotError("snapshot: graph edge list not sorted-unique");
  return g;
}

void encode_certificate(Writer& w, const StructuralCertificate& cert) {
  if (const auto* u = std::get_if<UniformCertificate>(&cert)) {
    w.put_u32(kCertUniform);
    w.put_u32(static_cast<std::uint32_t>(u->kind));
    w.put_i32(u->levels);
  } else if (const auto* t = std::get_if<TreewidthCertificate>(&cert)) {
    w.put_u32(kCertTreewidth);
    const TreeDecomposition& td = t->decomposition;
    w.put_u64(static_cast<std::uint64_t>(td.num_bags()));
    for (BagId b = 0; b < td.num_bags(); ++b) w.put_vec_i32(td.bag(b));
    for (BagId b = 0; b < td.num_bags(); ++b) w.put_i32(td.parent(b));
  } else if (const auto* a = std::get_if<ApexCertificate>(&cert)) {
    w.put_u32(kCertApex);
    w.put_vec_i32(a->apices);
    w.put_u32(static_cast<std::uint32_t>(a->inner));
  } else {
    const auto& c = std::get<CliqueSumCertificate>(cert);
    w.put_u32(kCertCliqueSum);
    const CliqueSumDecomposition& csd = c.decomposition;
    w.put_u64(static_cast<std::uint64_t>(csd.num_bags()));
    for (BagId b = 0; b < csd.num_bags(); ++b) {
      w.put_vec_i32(csd.bag_vertices(b));
      w.put_vec_i32(csd.bag_edges(b));
      w.put_i32(csd.parent(b));
      w.put_vec_i32(csd.parent_clique(b));
    }
    w.put_u8(c.fold ? 1 : 0);
    w.put_u32(static_cast<std::uint32_t>(c.local_oracle));
    w.put_u8(c.apex_aware ? 1 : 0);
    w.put_u64(c.bag_apices.size());
    for (const auto& apices : c.bag_apices) w.put_vec_i32(apices);
  }
}

OracleKind decode_oracle_kind(std::uint32_t raw) {
  if (raw > static_cast<std::uint32_t>(OracleKind::kGreedy))
    throw SnapshotError("snapshot: certificate oracle kind out of range");
  return static_cast<OracleKind>(raw);
}

StructuralCertificate decode_certificate(Reader& r) {
  const std::uint32_t tag = r.get_u32();
  switch (tag) {
    case kCertUniform: {
      const std::uint32_t kind = r.get_u32();
      if (kind > static_cast<std::uint32_t>(UniformCertificate::Kind::kAncestor))
        throw SnapshotError("snapshot: uniform certificate kind out of range");
      UniformCertificate u;
      u.kind = static_cast<UniformCertificate::Kind>(kind);
      u.levels = r.get_i32();
      return u;
    }
    case kCertTreewidth: {
      const std::size_t bags = r.get_count(8);
      std::vector<std::vector<VertexId>> bag_vertices(bags);
      for (std::size_t b = 0; b < bags; ++b) bag_vertices[b] = r.get_vec_i32();
      std::vector<BagId> parent(bags);
      for (std::size_t b = 0; b < bags; ++b) parent[b] = r.get_i32();
      // The TreeDecomposition constructor validates tree structure eagerly.
      return TreewidthCertificate{
          TreeDecomposition(std::move(bag_vertices), std::move(parent))};
    }
    case kCertApex: {
      ApexCertificate a;
      a.apices = r.get_vec_i32();
      a.inner = decode_oracle_kind(r.get_u32());
      return a;
    }
    case kCertCliqueSum: {
      const std::size_t bags = r.get_count(8);
      std::vector<std::vector<VertexId>> bag_vertices(bags);
      std::vector<std::vector<EdgeId>> bag_edges(bags);
      std::vector<BagId> parent(bags);
      std::vector<std::vector<VertexId>> parent_clique(bags);
      for (std::size_t b = 0; b < bags; ++b) {
        bag_vertices[b] = r.get_vec_i32();
        bag_edges[b] = r.get_vec_i32();
        parent[b] = r.get_i32();
        parent_clique[b] = r.get_vec_i32();
      }
      CliqueSumCertificate c{
          CliqueSumDecomposition(std::move(bag_vertices), std::move(bag_edges),
                                 std::move(parent), std::move(parent_clique)),
          /*fold=*/true, OracleKind::kGreedy, /*apex_aware=*/false,
          /*bag_apices=*/{}};
      c.fold = r.get_u8() != 0;
      c.local_oracle = decode_oracle_kind(r.get_u32());
      c.apex_aware = r.get_u8() != 0;
      const std::size_t apex_lists = r.get_count(8);
      c.bag_apices.resize(apex_lists);
      for (std::size_t b = 0; b < apex_lists; ++b)
        c.bag_apices[b] = r.get_vec_i32();
      return c;
    }
    default:
      throw SnapshotError("snapshot: unknown certificate family tag " +
                          std::to_string(tag));
  }
}

void encode_tree(Writer& w, const TreeSnapshot& t) {
  w.put_i32(t.root);
  w.put_vec_i32(t.parent);
  w.put_vec_i32(t.parent_edge);
}

TreeSnapshot decode_tree(Reader& r) {
  TreeSnapshot t;
  t.root = r.get_i32();
  t.parent = r.get_vec_i32();
  t.parent_edge = r.get_vec_i32();
  return t;
}

void encode_cache(Writer& w, const std::vector<CachedShortcut>& cache) {
  w.put_u64(cache.size());
  for (const CachedShortcut& entry : cache) {
    w.put_vec_i32(entry.part_of);
    w.put_u64(entry.shortcut.edges_of_part.size());
    for (const auto& edges : entry.shortcut.edges_of_part)
      w.put_vec_i32(edges);
  }
}

std::vector<CachedShortcut> decode_cache(Reader& r) {
  const std::size_t entries = r.get_count(8);
  std::vector<CachedShortcut> cache(entries);
  for (std::size_t i = 0; i < entries; ++i) {
    cache[i].part_of = r.get_vec_i32();
    const std::size_t parts = r.get_count(8);
    cache[i].shortcut.edges_of_part.resize(parts);
    for (std::size_t p = 0; p < parts; ++p)
      cache[i].shortcut.edges_of_part[p] = r.get_vec_i32();
  }
  return cache;
}

void append_section(Writer& out, std::uint32_t tag, const Writer& payload) {
  out.put_u32(tag);
  out.put_u64(payload.bytes().size());
  out.put_bytes(payload.bytes());
  out.put_u64(fnv1a64(payload.bytes()));
}

void check_vertex_ids(std::span<const VertexId> ids, VertexId n,
                      const char* what) {
  for (VertexId v : ids)
    if (v < 0 || v >= n)
      throw SnapshotError(std::string("snapshot: ") + what +
                          " vertex id out of range");
}

/// Cross-section consistency: every id a section carries must be in range
/// for the decoded graph (a snapshot whose sections disagree is corrupt —
/// and anything this function admits is later consumed unchecked by the
/// builders, so admitting a bad id would be the UB the format contract
/// forbids).
void validate_against_graph(const Snapshot& snap) {
  const VertexId n = snap.graph.num_vertices();
  const EdgeId m = snap.graph.num_edges();
  if (!snap.weights.empty() &&
      snap.weights.size() != static_cast<std::size_t>(m))
    throw SnapshotError("snapshot: weights count != edge count");
  if (const auto* t = std::get_if<TreewidthCertificate>(&snap.certificate)) {
    for (BagId b = 0; b < t->decomposition.num_bags(); ++b)
      check_vertex_ids(t->decomposition.bag(b), n, "certificate bag");
  } else if (const auto* a =
                 std::get_if<ApexCertificate>(&snap.certificate)) {
    check_vertex_ids(a->apices, n, "certificate apex");
  } else if (const auto* c =
                 std::get_if<CliqueSumCertificate>(&snap.certificate)) {
    const CliqueSumDecomposition& csd = c->decomposition;
    for (BagId b = 0; b < csd.num_bags(); ++b) {
      check_vertex_ids(csd.bag_vertices(b), n, "certificate bag");
      check_vertex_ids(csd.parent_clique(b), n, "certificate clique");
      for (EdgeId e : csd.bag_edges(b))
        if (e < 0 || e >= m)
          throw SnapshotError("snapshot: certificate bag edge out of range");
    }
    for (const auto& apices : c->bag_apices)
      check_vertex_ids(apices, n, "certificate apex");
  }
  if (snap.tree) {
    if (snap.tree->parent.size() != static_cast<std::size_t>(n) ||
        snap.tree->parent_edge.size() != static_cast<std::size_t>(n))
      throw SnapshotError("snapshot: tree size != vertex count");
    for (EdgeId e : snap.tree->parent_edge)
      if (e != kInvalidEdge && (e < 0 || e >= m))
        throw SnapshotError("snapshot: tree parent edge out of range");
  }
  for (const CachedShortcut& entry : snap.shortcuts) {
    if (entry.part_of.size() != static_cast<std::size_t>(n))
      throw SnapshotError("snapshot: cached part map size != vertex count");
    // Parts are disjoint and non-empty, so a valid dense part id is < n —
    // which also keeps every later `p + 1` clear of signed overflow.
    PartId num_parts = 0;
    for (PartId p : entry.part_of) {
      if (p < kNoPart || p >= n)
        throw SnapshotError("snapshot: cached part id out of range");
      if (p >= num_parts) num_parts = p + 1;
    }
    if (entry.shortcut.edges_of_part.size() !=
        static_cast<std::size_t>(num_parts))
      throw SnapshotError(
          "snapshot: cached shortcut part count != partition part count");
    for (const auto& edges : entry.shortcut.edges_of_part)
      for (EdgeId e : edges)
        if (e < 0 || e >= m)
          throw SnapshotError("snapshot: cached shortcut edge out of range");
  }
}

}  // namespace

std::vector<std::uint8_t> encode_snapshot(const Snapshot& snap) {
  std::vector<std::pair<std::uint32_t, Writer>> sections;
  {
    Writer w;
    encode_graph(w, snap.graph);
    sections.emplace_back(kSectionGraph, std::move(w));
  }
  if (!snap.weights.empty()) {
    Writer w;
    w.put_u64(snap.weights.size());
    for (Weight x : snap.weights) w.put_i64(x);
    sections.emplace_back(kSectionWeights, std::move(w));
  }
  {
    Writer w;
    encode_certificate(w, snap.certificate);
    sections.emplace_back(kSectionCertificate, std::move(w));
  }
  if (snap.tree) {
    Writer w;
    encode_tree(w, *snap.tree);
    sections.emplace_back(kSectionTree, std::move(w));
  }
  if (!snap.shortcuts.empty()) {
    Writer w;
    encode_cache(w, snap.shortcuts);
    sections.emplace_back(kSectionShortcutCache, std::move(w));
  }
  if (snap.history.any()) {
    Writer w;
    w.put_u64(snap.history.updates_applied);
    w.put_u64(snap.history.entries_kept);
    w.put_u64(snap.history.entries_invalidated);
    w.put_u64(snap.history.subpaths_rebuilt);
    sections.emplace_back(kSectionUpdateHistory, std::move(w));
  }

  Writer out;
  out.put_bytes(kMagic);
  // Oldest version that can represent the content: only the update-history
  // section needs v2, so pre-churn snapshots stay byte-identical to v1.
  out.put_u32(snap.history.any() ? kSnapshotVersion : 1u);
  out.put_u32(static_cast<std::uint32_t>(sections.size()));
  for (const auto& [tag, payload] : sections) append_section(out, tag, payload);
  return out.bytes();
}

Snapshot decode_snapshot(std::span<const std::uint8_t> bytes) {
  Reader frame(bytes, "container");
  const auto magic = frame.get_bytes(kMagic.size());
  for (std::size_t i = 0; i < kMagic.size(); ++i)
    if (magic[i] != kMagic[i])
      throw SnapshotError("snapshot: bad magic (not a snapshot file)");
  const std::uint32_t version = frame.get_u32();
  if (version < 1 || version > kSnapshotVersion)
    throw SnapshotError("snapshot: unsupported version " +
                        std::to_string(version) + " (this build reads 1.." +
                        std::to_string(kSnapshotVersion) + ")");
  const std::uint32_t section_count = frame.get_u32();

  Snapshot snap;
  snap.version = version;
  bool have_graph = false, have_weights = false, have_cert = false,
       have_tree = false, have_cache = false, have_history = false;
  for (std::uint32_t s = 0; s < section_count; ++s) {
    const std::uint32_t tag = frame.get_u32();
    const std::uint64_t size = frame.get_u64();
    if (size > frame.remaining())
      throw SnapshotError("snapshot: truncated section payload");
    const auto payload = frame.get_bytes(static_cast<std::size_t>(size));
    const std::uint64_t stored = frame.get_u64();
    if (fnv1a64(payload) != stored)
      throw SnapshotError("snapshot: section " + std::to_string(tag) +
                          " checksum mismatch (corrupt snapshot)");
    Reader r(payload, "section");
    // Decomposition/graph constructors validate their own structural
    // invariants; translate those failures into the snapshot error domain.
    try {
      switch (tag) {
        case kSectionGraph:
          if (std::exchange(have_graph, true))
            throw SnapshotError("snapshot: duplicate graph section");
          snap.graph = decode_graph(r);
          break;
        case kSectionWeights: {
          if (std::exchange(have_weights, true))
            throw SnapshotError("snapshot: duplicate weights section");
          const std::size_t count = r.get_count(8);
          snap.weights.reserve(count);
          for (std::size_t i = 0; i < count; ++i)
            snap.weights.push_back(r.get_i64());
          break;
        }
        case kSectionCertificate:
          if (std::exchange(have_cert, true))
            throw SnapshotError("snapshot: duplicate certificate section");
          snap.certificate = decode_certificate(r);
          break;
        case kSectionTree:
          if (std::exchange(have_tree, true))
            throw SnapshotError("snapshot: duplicate tree section");
          snap.tree = decode_tree(r);
          break;
        case kSectionShortcutCache:
          if (std::exchange(have_cache, true))
            throw SnapshotError("snapshot: duplicate cache section");
          snap.shortcuts = decode_cache(r);
          break;
        case kSectionUpdateHistory:
          if (version < 2)
            throw SnapshotError(
                "snapshot: update-history section in a v1 file");
          if (std::exchange(have_history, true))
            throw SnapshotError("snapshot: duplicate update-history section");
          snap.history.updates_applied = r.get_u64();
          snap.history.entries_kept = r.get_u64();
          snap.history.entries_invalidated = r.get_u64();
          snap.history.subpaths_rebuilt = r.get_u64();
          break;
        default:
          throw SnapshotError("snapshot: unknown section tag " +
                              std::to_string(tag));
      }
    } catch (const SnapshotError&) {
      throw;
    } catch (const std::logic_error& e) {
      throw SnapshotError(std::string("snapshot: invalid section ") +
                          std::to_string(tag) + ": " + e.what());
    }
    r.expect_done();
  }
  frame.expect_done();
  if (!have_graph) throw SnapshotError("snapshot: missing graph section");
  if (!have_cert) throw SnapshotError("snapshot: missing certificate section");
  validate_against_graph(snap);
  return snap;
}

void write_snapshot(const Snapshot& snap, const std::string& path) {
  const std::vector<std::uint8_t> bytes = encode_snapshot(snap);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr)
    throw SnapshotError("snapshot: cannot open '" + path + "' for writing");
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != bytes.size() || !closed)
    throw SnapshotError("snapshot: short write to '" + path + "'");
}

Snapshot read_snapshot(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    throw SnapshotError("snapshot: cannot open '" + path + "' for reading");
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
    bytes.insert(bytes.end(), buf, buf + got);
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) throw SnapshotError("snapshot: read error on '" + path + "'");
  return decode_snapshot(bytes);
}

}  // namespace mns::io
