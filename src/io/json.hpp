// Canonical JSON: the one escaping/rendering/parsing implementation every
// machine-readable artifact goes through — BENCH_*.json (bench_util adopts
// json_quote), canonical RunReport documents (io/report_json.hpp), and the
// mnsctl diff/baseline/inspect subcommands.
//
// The writer side is a set of free functions (quote, number rendering); the
// reader side is a small recursive-descent parser into JsonValue, which
// preserves object member order and the raw numeric lexemes so a
// parse -> render round trip of our own output is byte-identical and two
// documents can be diffed field-by-field without float-formatting noise.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mns::io {

/// Typed parse/structure error; malformed input never produces UB or a
/// partially-initialized value.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

/// RFC 8259 string escaping: quote, backslash, and EVERY control character
/// (named escapes for the common ones, \u00XX otherwise).
[[nodiscard]] std::string json_quote(std::string_view s);

/// Canonical number rendering: integers via to_string, doubles via "%.6g"
/// (what the bench writer has always emitted).
[[nodiscard]] std::string json_number(double value);
[[nodiscard]] std::string json_number(long long value);

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  /// String value for kString; the RAW numeric lexeme for kNumber (kept so
  /// diffs compare what was written, not a reformatted double).
  std::string text;
  std::vector<JsonValue> items;                            ///< kArray
  std::vector<std::pair<std::string, JsonValue>> members;  ///< kObject, in order

  /// Object member lookup (first match); nullptr if absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Compact canonical re-render (numbers from their raw lexemes).
  [[nodiscard]] std::string render() const;
};

/// Parses a complete JSON document (objects / arrays / strings / numbers /
/// booleans / null). Throws JsonError on any malformation, trailing garbage,
/// or nesting deeper than an internal safety cap.
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace mns::io
