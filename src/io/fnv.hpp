// FNV-1a 64-bit hashing, the one hash the persistence layer speaks.
//
// Used for (a) the per-section payload checksums of the snapshot format
// (io/snapshot.hpp), (b) the Session's partition fingerprints, and (c) the
// payload digests of the canonical RunReport JSON (io/report_json.hpp).
// Integers are always mixed byte-by-byte little-endian, so every digest is
// identical across platforms regardless of host endianness.
#pragma once

#include <cstdint>
#include <span>

namespace mns::io {

class Fnv64 {
 public:
  void mix_byte(std::uint8_t b) noexcept {
    h_ = (h_ ^ b) * 0x100000001b3ull;
  }
  void mix_bytes(std::span<const std::uint8_t> bytes) noexcept {
    for (std::uint8_t b : bytes) mix_byte(b);
  }
  /// Mixes x as 8 little-endian bytes (endian-independent).
  void mix_u64(std::uint64_t x) noexcept {
    for (int byte = 0; byte < 8; ++byte)
      mix_byte(static_cast<std::uint8_t>((x >> (8 * byte)) & 0xffu));
  }
  void mix_i64(std::int64_t x) noexcept {
    mix_u64(static_cast<std::uint64_t>(x));
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;  // FNV offset basis
};

[[nodiscard]] inline std::uint64_t fnv1a64(
    std::span<const std::uint8_t> bytes) noexcept {
  Fnv64 h;
  h.mix_bytes(bytes);
  return h.value();
}

}  // namespace mns::io
