#include "io/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace mns::io {

std::string json_quote(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_number(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

std::string json_number(long long value) { return std::to_string(value); }

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members)
    if (name == key) return &value;
  return nullptr;
}

std::string JsonValue::render() const {
  switch (kind) {
    case Kind::kNull: return "null";
    case Kind::kBool: return boolean ? "true" : "false";
    case Kind::kNumber: return text.empty() ? json_number(number) : text;
    case Kind::kString: return json_quote(text);
    case Kind::kArray: {
      std::string out = "[";
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i) out += ", ";
        out += items[i].render();
      }
      out += ']';
      return out;
    }
    case Kind::kObject: {
      std::string out = "{";
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (i) out += ", ";
        out += json_quote(members[i].first) + ": " + members[i].second.render();
      }
      out += '}';
      return out;
    }
  }
  throw JsonError("json: corrupt value kind");
}

namespace {

/// Deep-enough for every artifact we write; shallow enough that hostile
/// nesting can never smash the stack.
constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view s) : s_(s) {}

  JsonValue parse_document() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (i_ != s_.size())
      throw JsonError("json: trailing garbage at offset " + std::to_string(i_));
    return v;
  }

 private:
  void skip_ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\n' ||
                              s_[i_] == '\t' || s_[i_] == '\r'))
      ++i_;
  }
  char peek() {
    skip_ws();
    if (i_ >= s_.size()) throw JsonError("json: unexpected end of input");
    return s_[i_];
  }
  void expect(char c) {
    if (peek() != c)
      throw JsonError(std::string("json: expected '") + c + "' at offset " +
                      std::to_string(i_));
    ++i_;
  }
  bool consume_literal(std::string_view lit) {
    if (s_.substr(i_, lit.size()) != lit) return false;
    i_ += lit.size();
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (i_ >= s_.size()) throw JsonError("json: unterminated string");
      char c = s_[i_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20)
        throw JsonError("json: raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (i_ >= s_.size()) throw JsonError("json: dangling escape");
      char e = s_[i_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (i_ + 4 > s_.size()) throw JsonError("json: truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            char h = s_[i_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else
              throw JsonError("json: bad hex digit in \\u escape");
          }
          // Our writers only \u-escape control characters; reject the rest
          // rather than half-implementing UTF-16 surrogate pairs.
          if (code > 0xFF) throw JsonError("json: unsupported non-ASCII \\u");
          out += static_cast<char>(code);
          break;
        }
        default: throw JsonError("json: unknown escape");
      }
    }
    return out;
  }

  JsonValue parse_number() {
    skip_ws();
    const std::size_t start = i_;
    if (i_ < s_.size() && s_[i_] == '-') ++i_;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) || s_[i_] == '.' ||
            s_[i_] == 'e' || s_[i_] == 'E' || s_[i_] == '+' || s_[i_] == '-'))
      ++i_;
    if (i_ == start) throw JsonError("json: expected number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.text = std::string(s_.substr(start, i_ - start));
    char* end = nullptr;
    v.number = std::strtod(v.text.c_str(), &end);
    if (end == nullptr || *end != '\0')
      throw JsonError("json: malformed number '" + v.text + "'");
    return v;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) throw JsonError("json: nesting too deep");
    const char c = peek();
    if (c == '{') {
      ++i_;
      JsonValue v;
      v.kind = JsonValue::Kind::kObject;
      if (peek() == '}') {
        ++i_;
        return v;
      }
      while (true) {
        std::string key = parse_string();
        expect(':');
        v.members.emplace_back(std::move(key), parse_value(depth + 1));
        if (peek() == ',') {
          ++i_;
          continue;
        }
        expect('}');
        break;
      }
      return v;
    }
    if (c == '[') {
      ++i_;
      JsonValue v;
      v.kind = JsonValue::Kind::kArray;
      if (peek() == ']') {
        ++i_;
        return v;
      }
      while (true) {
        v.items.push_back(parse_value(depth + 1));
        if (peek() == ',') {
          ++i_;
          continue;
        }
        expect(']');
        break;
      }
      return v;
    }
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.text = parse_string();
      return v;
    }
    skip_ws();
    if (consume_literal("true")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = false;
      return v;
    }
    if (consume_literal("null")) return JsonValue{};
    return parse_number();
  }

  std::string_view s_;
  std::size_t i_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace mns::io
