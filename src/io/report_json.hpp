// Canonical JSON rendering of a congest::RunReport — the document mnsctl
// prints, operators script against, and `mnsctl diff` compares
// field-by-field.
//
// Canonical means: fixed field order, fixed number formatting (io/json.hpp),
// and payload arrays compressed into exact FNV-1a digests (hex strings) plus
// their lengths — two reports render identically iff the runs were
// bit-identical in everything the digest covers (rounds, messages, charges,
// phases, aggregations, cache behavior, full payload content). wall_ms is
// the ONE nondeterministic field; diff tools must skip it (mnsctl diff
// --baseline does).
#pragma once

#include <string>

#include "congest/session.hpp"

namespace mns::io {

/// One-line canonical JSON object for the report.
[[nodiscard]] std::string run_report_to_json(const congest::RunReport& report);

/// True iff the two reports are bit-identical in every deterministic field,
/// including full payload content (wall_ms is ignored). This is the
/// restore-parity predicate of DESIGN.md §8.
[[nodiscard]] bool run_reports_identical(const congest::RunReport& a,
                                         const congest::RunReport& b);

}  // namespace mns::io
