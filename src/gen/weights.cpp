#include "gen/weights.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace mns::gen {

std::vector<Weight> random_weights(const Graph& g, Weight lo, Weight hi,
                                   Rng& rng) {
  if (lo > hi) throw std::invalid_argument("random_weights: lo > hi");
  std::uniform_int_distribution<Weight> dist(lo, hi);
  std::vector<Weight> w(g.num_edges());
  for (auto& x : w) x = dist(rng);
  return w;
}

std::vector<Weight> unique_random_weights(const Graph& g, Rng& rng) {
  std::vector<Weight> w(g.num_edges());
  std::iota(w.begin(), w.end(), 1);
  std::shuffle(w.begin(), w.end(), rng);
  return w;
}

}  // namespace mns::gen
