#include "gen/ktree.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/algorithms.hpp"
#include "graph/union_find.hpp"

namespace mns::gen {

namespace {

struct RawKTree {
  std::vector<Edge> edges;
  std::vector<std::vector<VertexId>> bags;
  std::vector<BagId> parent;
};

RawKTree build_raw(VertexId n, int k, Rng& rng) {
  if (k < 1) throw std::invalid_argument("random_ktree: k < 1");
  if (n < k + 1) throw std::invalid_argument("random_ktree: n < k+1");
  RawKTree out;
  // Bag 0: the initial clique {0..k}.
  std::vector<VertexId> base(k + 1);
  for (int i = 0; i <= k; ++i) base[i] = i;
  out.bags.push_back(base);
  out.parent.push_back(kInvalidBag);
  for (int i = 0; i <= k; ++i)
    for (int j = i + 1; j <= k; ++j)
      out.edges.push_back({static_cast<VertexId>(i), static_cast<VertexId>(j)});

  // Candidate k-cliques with the bag that contains them.
  struct Candidate {
    std::vector<VertexId> clique;
    BagId home;
  };
  std::vector<Candidate> cliques;
  for (int skip = 0; skip <= k; ++skip) {
    std::vector<VertexId> c;
    for (int i = 0; i <= k; ++i)
      if (i != skip) c.push_back(i);
    cliques.push_back({std::move(c), 0});
  }

  for (VertexId v = k + 1; v < n; ++v) {
    std::uniform_int_distribution<std::size_t> pick(0, cliques.size() - 1);
    const Candidate chosen = cliques[pick(rng)];
    for (VertexId u : chosen.clique) out.edges.push_back({u, v});
    std::vector<VertexId> bag = chosen.clique;
    bag.push_back(v);
    std::sort(bag.begin(), bag.end());
    BagId bid = static_cast<BagId>(out.bags.size());
    out.bags.push_back(bag);
    out.parent.push_back(chosen.home);
    for (std::size_t skip = 0; skip < chosen.clique.size(); ++skip) {
      std::vector<VertexId> c;
      for (std::size_t i = 0; i < chosen.clique.size(); ++i)
        if (i != skip) c.push_back(chosen.clique[i]);
      c.push_back(v);
      cliques.push_back({std::move(c), bid});
    }
  }
  return out;
}

}  // namespace

KTreeResult random_ktree(VertexId n, int k, Rng& rng) {
  RawKTree raw = build_raw(n, k, rng);
  GraphBuilder b(n);
  for (const Edge& e : raw.edges) b.add_edge(e.u, e.v);
  return {b.build(),
          TreeDecomposition(std::move(raw.bags), std::move(raw.parent))};
}

KTreeResult random_partial_ktree(VertexId n, int k, double drop_prob,
                                 Rng& rng) {
  if (drop_prob < 0.0 || drop_prob > 1.0)
    throw std::invalid_argument("random_partial_ktree: bad probability");
  RawKTree raw = build_raw(n, k, rng);
  // Keep a spanning tree: process edges in random order through a DSU; edges
  // that merge components are always kept.
  std::vector<std::size_t> order(raw.edges.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::shuffle(order.begin(), order.end(), rng);
  UnionFind uf(n);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::vector<char> keep(raw.edges.size(), 0);
  for (std::size_t i : order) {
    const Edge& e = raw.edges[i];
    if (uf.unite(e.u, e.v) || coin(rng) >= drop_prob) keep[i] = 1;
  }
  GraphBuilder b(n);
  for (std::size_t i = 0; i < raw.edges.size(); ++i)
    if (keep[i]) b.add_edge(raw.edges[i].u, raw.edges[i].v);
  return {b.build(),
          TreeDecomposition(std::move(raw.bags), std::move(raw.parent))};
}

}  // namespace mns::gen
