#include "gen/apex.hpp"

#include <stdexcept>

namespace mns::gen {

ApexResult add_apices(const Graph& g, int q, double attach_prob, Rng& rng) {
  if (q < 0) throw std::invalid_argument("add_apices: q < 0");
  if (attach_prob < 0.0 || attach_prob > 1.0)
    throw std::invalid_argument("add_apices: bad probability");
  const VertexId n = g.num_vertices();
  ApexResult out;
  GraphBuilder builder(n + q);
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    builder.add_edge(g.edge(e).u, g.edge(e).v);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (int i = 0; i < q; ++i) {
    VertexId apex = n + i;
    out.apices.push_back(apex);
    bool any = false;
    for (VertexId v = 0; v < n; ++v)
      if (coin(rng) < attach_prob) {
        builder.add_edge(apex, v);
        any = true;
      }
    if (!any && n > 0) {
      std::uniform_int_distribution<VertexId> pick(0, n - 1);
      builder.add_edge(apex, pick(rng));
    }
    for (int j = 0; j < i; ++j)
      if (coin(rng) < 0.5) builder.add_edge(apex, n + j);
  }
  out.graph = builder.build();
  return out;
}

ApexResult add_universal_apex(const Graph& g) {
  const VertexId n = g.num_vertices();
  ApexResult out;
  out.apices.push_back(n);
  GraphBuilder builder(n + 1);
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    builder.add_edge(g.edge(e).u, g.edge(e).v);
  for (VertexId v = 0; v < n; ++v) builder.add_edge(n, v);
  out.graph = builder.build();
  return out;
}

}  // namespace mns::gen
