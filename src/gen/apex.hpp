// Apex addition (Definition 2): new vertices connected to arbitrary subsets
// of the existing graph (and optionally to each other), Definition 5 step
// (iii). Apices can shrink the diameter arbitrarily — the hard case of
// Section 2.3.2.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace mns::gen {

struct ApexResult {
  Graph graph;
  std::vector<VertexId> apices;  ///< ids of the added apex vertices.
};

/// Adds `q` apices; each connects to every prior vertex independently with
/// probability `attach_prob` (at least one attachment is forced so the graph
/// stays connected) and to each earlier apex with probability 1/2.
[[nodiscard]] ApexResult add_apices(const Graph& g, int q, double attach_prob,
                                    Rng& rng);

/// Adds a single "universal" apex adjacent to every vertex (the wheel-style
/// worst case: diameter collapses to <= 2).
[[nodiscard]] ApexResult add_universal_apex(const Graph& g);

}  // namespace mns::gen
