// Unit-disk graphs: the wireless-network family of Khan-Pandurangan [KP08]
// discussed in the paper's related work (§1.2). Random points in the unit
// square, edges between pairs within the radius; edge weights can be the
// (scaled) Euclidean distances, matching [KP08]'s "weights = distances".
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace mns::gen {

struct UnitDiskGraph {
  Graph graph;
  std::vector<double> x, y;       ///< point coordinates in [0, 1]
  std::vector<Weight> distances;  ///< per edge: Euclidean distance * 10^6
};

/// n random points, edges within `radius`. Keeps only the largest connected
/// component's topology intact by connecting stranded components to their
/// nearest neighbour (so the result is always connected).
[[nodiscard]] UnitDiskGraph unit_disk(VertexId n, double radius, Rng& rng);

}  // namespace mns::gen
