#include "gen/series_parallel.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

namespace mns::gen {

Graph random_series_parallel(int ops, Rng& rng) {
  if (ops < 0) throw std::invalid_argument("random_series_parallel: ops < 0");
  std::vector<std::pair<VertexId, VertexId>> edges{{0, 1}};
  VertexId next = 2;
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (int i = 0; i < ops; ++i) {
    std::uniform_int_distribution<std::size_t> pick(0, edges.size() - 1);
    std::size_t ei = pick(rng);
    auto [u, v] = edges[ei];
    if (coin(rng) < 0.5) {
      // Series: subdivide (u,v) with a new vertex w.
      VertexId w = next++;
      edges[ei] = {u, w};
      edges.push_back({w, v});
    } else {
      // Parallel: add a second u-w-v path (keeps the graph simple).
      VertexId w = next++;
      edges.push_back({u, w});
      edges.push_back({w, v});
    }
  }
  GraphBuilder b(next);
  for (auto [u, v] : edges) b.add_edge(u, v);
  return b.build();
}

}  // namespace mns::gen
