// Bounded-genus generators: torus grids and generic handle attachment.
// These realize the "(0, g, 0, 0)-almost-embeddable" base graphs of
// Definition 5 step (i).
#pragma once

#include "graph/embedding.hpp"

namespace mns::gen {

/// rows x cols grid with wrap-around in both directions, embedded on the
/// torus (genus 1). Requires rows, cols >= 3 to stay a simple graph.
[[nodiscard]] EmbeddedGraph torus_grid(int rows, int cols);

/// Attaches `handles` tubes between pairs of disjoint quadrilateral faces,
/// raising the genus by exactly `handles`. Faces are chosen at random among
/// simple 4-faces that are vertex-disjoint and non-adjacent; throws if not
/// enough suitable faces exist.
[[nodiscard]] EmbeddedGraph add_handles(const EmbeddedGraph& base, int handles,
                                        Rng& rng);

/// Convenience: genus-g surface graph built from a grid (g == 0), a torus
/// grid (g == 1), or a torus grid plus g-1 handles.
[[nodiscard]] EmbeddedGraph surface_grid(int rows, int cols, int genus,
                                         Rng& rng);

}  // namespace mns::gen
