#include "gen/almost_embeddable.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "gen/apex.hpp"
#include "gen/surfaces.hpp"
#include "gen/vortex.hpp"

namespace mns::gen {

AlmostEmbeddable random_almost_embeddable(const AlmostEmbeddableParams& params,
                                          Rng& rng) {
  if (params.num_vortices < 0 || params.apices < 0 || params.genus < 0)
    throw std::invalid_argument("random_almost_embeddable: bad params");
  EmbeddedGraph base =
      surface_grid(params.rows, params.cols, params.genus, rng);

  // Candidate vortex faces: simple cycles, vertex-disjoint from one another.
  std::vector<std::vector<VertexId>> chosen_faces;
  if (params.num_vortices > 0) {
    std::vector<int> face_ids;
    for (int f = 0; f < base.num_faces(); ++f)
      if (base.face_is_simple_cycle(f)) face_ids.push_back(f);
    std::shuffle(face_ids.begin(), face_ids.end(), rng);
    std::set<VertexId> used;
    for (int f : face_ids) {
      if (static_cast<int>(chosen_faces.size()) == params.num_vortices) break;
      auto fv = base.face_vertices(f);
      bool ok = true;
      for (VertexId v : fv)
        if (used.count(v)) ok = false;
      if (!ok) continue;
      for (VertexId v : fv) used.insert(v);
      chosen_faces.push_back(std::move(fv));
    }
    if (static_cast<int>(chosen_faces.size()) < params.num_vortices)
      throw std::invalid_argument(
          "random_almost_embeddable: not enough disjoint vortex faces");
  }

  Graph current = base.graph();
  std::vector<VortexSpec> vortices;
  for (const auto& face : chosen_faces) {
    VortexResult vr = add_vortex(current, face, params.vortex_depth,
                                 params.internal_per_vortex, rng);
    current = std::move(vr.graph);
    vortices.push_back(std::move(vr.vortex));
  }

  ApexResult ar = add_apices(current, params.apices, params.apex_attach_prob,
                             rng);
  return AlmostEmbeddable{std::move(ar.graph), std::move(base),
                          std::move(vortices), std::move(ar.apices), params};
}

}  // namespace mns::gen
