#include "gen/planar.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace mns::gen {

namespace {

/// Builds an EmbeddedGraph from per-vertex neighbor orders (cyclic).
EmbeddedGraph from_neighbor_rotation(
    Graph g, const std::vector<std::vector<VertexId>>& nbr_rot) {
  std::vector<std::vector<EdgeId>> rot(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    rot[v].reserve(nbr_rot[v].size());
    for (VertexId w : nbr_rot[v]) {
      EdgeId e = g.find_edge(v, w);
      require(e != kInvalidEdge, "rotation references a missing edge");
      rot[v].push_back(e);
    }
  }
  return EmbeddedGraph(std::move(g), std::move(rot));
}

}  // namespace

Graph grid_graph(int rows, int cols) {
  if (rows < 1 || cols < 1) throw std::invalid_argument("grid: bad dims");
  const VertexId n = static_cast<VertexId>(rows) * cols;
  auto id = [&](int r, int c) { return static_cast<VertexId>(r * cols + c); };
  GraphBuilder b(n);
  b.reserve_edges(static_cast<std::size_t>(rows) * (cols - 1) +
                  static_cast<std::size_t>(rows - 1) * cols);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  return b.build();
}

EmbeddedGraph grid(int rows, int cols) {
  Graph g = grid_graph(rows, cols);
  const VertexId n = g.num_vertices();
  auto id = [&](int r, int c) { return static_cast<VertexId>(r * cols + c); };
  // Edge ids without lookups: edges are frozen in (u, v)-sorted order, and
  // vertex u emits E = {u, u+1} before S = {u, u+cols}, so a prefix count of
  // emitted edges gives every id in closed form (streamed — no neighbor-id
  // intermediate and no find_edge pass).
  std::vector<EdgeId> base(static_cast<std::size_t>(n));
  EdgeId next = 0;
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      base[static_cast<std::size_t>(id(r, c))] = next;
      next += (c + 1 < cols ? 1 : 0) + (r + 1 < rows ? 1 : 0);
    }
  auto east = [&](int r, int c) { return base[static_cast<std::size_t>(id(r, c))]; };
  auto south = [&](int r, int c) {
    return base[static_cast<std::size_t>(id(r, c))] + (c + 1 < cols ? 1 : 0);
  };
  // CCW edge order (x = c, y = -r): E, N, W, S.
  std::vector<std::vector<EdgeId>> rot(static_cast<std::size_t>(n));
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      auto& o = rot[static_cast<std::size_t>(id(r, c))];
      o.reserve(static_cast<std::size_t>(g.degree(id(r, c))));
      if (c + 1 < cols) o.push_back(east(r, c));      // E
      if (r - 1 >= 0) o.push_back(south(r - 1, c));   // N
      if (c - 1 >= 0) o.push_back(east(r, c - 1));    // W
      if (r + 1 < rows) o.push_back(south(r, c));     // S
    }
  return EmbeddedGraph(std::move(g), std::move(rot));
}

EmbeddedGraph triangulated_grid(int rows, int cols) {
  if (rows < 2 || cols < 2)
    throw std::invalid_argument("triangulated_grid: bad dims");
  const VertexId n = static_cast<VertexId>(rows) * cols;
  auto id = [&](int r, int c) { return static_cast<VertexId>(r * cols + c); };
  GraphBuilder b(n);
  b.reserve_edges(static_cast<std::size_t>(rows) * (cols - 1) +
                  static_cast<std::size_t>(rows - 1) * cols +
                  static_cast<std::size_t>(rows - 1) * (cols - 1));
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
      if (r + 1 < rows && c + 1 < cols) b.add_edge(id(r, c), id(r + 1, c + 1));
    }
  Graph g = b.build();
  // Closed-form edge ids, as in grid(): vertex u emits E = {u, u+1}, then
  // S = {u, u+cols}, then SE = {u, u+cols+1}, already (u, v)-sorted.
  std::vector<EdgeId> base(static_cast<std::size_t>(n));
  EdgeId next = 0;
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      base[static_cast<std::size_t>(id(r, c))] = next;
      next += (c + 1 < cols ? 1 : 0) + (r + 1 < rows ? 1 : 0) +
              (r + 1 < rows && c + 1 < cols ? 1 : 0);
    }
  auto east = [&](int r, int c) { return base[static_cast<std::size_t>(id(r, c))]; };
  auto south = [&](int r, int c) {
    return base[static_cast<std::size_t>(id(r, c))] + (c + 1 < cols ? 1 : 0);
  };
  auto southeast = [&](int r, int c) {
    return base[static_cast<std::size_t>(id(r, c))] + (c + 1 < cols ? 1 : 0) +
           (r + 1 < rows ? 1 : 0);
  };
  // CCW: E(0°), N(90°), NW(135°), W(180°), S(270°), SE(315°).
  std::vector<std::vector<EdgeId>> rot(static_cast<std::size_t>(n));
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      auto& o = rot[static_cast<std::size_t>(id(r, c))];
      o.reserve(static_cast<std::size_t>(g.degree(id(r, c))));
      if (c + 1 < cols) o.push_back(east(r, c));                          // E
      if (r - 1 >= 0) o.push_back(south(r - 1, c));                       // N
      if (r - 1 >= 0 && c - 1 >= 0) o.push_back(southeast(r - 1, c - 1)); // NW
      if (c - 1 >= 0) o.push_back(east(r, c - 1));                        // W
      if (r + 1 < rows) o.push_back(south(r, c));                         // S
      if (r + 1 < rows && c + 1 < cols) o.push_back(southeast(r, c));     // SE
    }
  return EmbeddedGraph(std::move(g), std::move(rot));
}

EmbeddedGraph random_maximal_planar(VertexId n, Rng& rng) {
  if (n < 3) throw std::invalid_argument("random_maximal_planar: n >= 3");
  // Neighbor rotations maintained incrementally; faces as directed triples.
  std::vector<std::vector<VertexId>> rot(n);
  rot[0] = {1, 2};
  rot[1] = {2, 0};
  rot[2] = {0, 1};
  std::vector<std::array<VertexId, 3>> faces{{0, 1, 2}, {0, 2, 1}};

  auto insert_after = [&](VertexId at, VertexId after, VertexId novel) {
    auto& o = rot[at];
    auto it = std::find(o.begin(), o.end(), after);
    require(it != o.end(), "random_maximal_planar: rotation corrupted");
    o.insert(it + 1, novel);
  };

  for (VertexId v = 3; v < n; ++v) {
    std::uniform_int_distribution<std::size_t> pick(0, faces.size() - 1);
    std::size_t fi = pick(rng);
    auto [a, b, c] = faces[fi];
    // New vertex v inside face (a -> b -> c -> a): rotation of v is the
    // reversed face order; at each corner the edge to v goes right after the
    // face's arrival edge.
    rot[v] = {a, c, b};
    insert_after(a, c, v);  // arrival at a is via edge {c, a}
    insert_after(b, a, v);
    insert_after(c, b, v);
    faces[fi] = {a, b, v};
    faces.push_back({b, c, v});
    faces.push_back({c, a, v});
  }

  GraphBuilder builder(n);
  builder.reserve_edges(static_cast<std::size_t>(n) * 3 - 6);
  for (VertexId v = 0; v < n; ++v)
    for (VertexId w : rot[v])
      if (v < w) builder.add_edge(v, w);
  return from_neighbor_rotation(builder.build(), rot);
}

}  // namespace mns::gen
