#include "gen/clique_sum.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "graph/algorithms.hpp"

namespace mns::gen {

std::vector<std::vector<VertexId>> default_glue_cliques(const Graph& g,
                                                        int max_size) {
  std::vector<std::vector<VertexId>> out;
  if (max_size >= 1)
    for (VertexId v = 0; v < g.num_vertices(); ++v) out.push_back({v});
  if (max_size >= 2)
    for (EdgeId e = 0; e < g.num_edges(); ++e)
      out.push_back({g.edge(e).u, g.edge(e).v});
  return out;
}

CliqueSumResult compose_clique_sum(const std::vector<BagInput>& bags, int k,
                                   double drop_edge_prob, Rng& rng) {
  if (bags.empty())
    throw std::invalid_argument("compose_clique_sum: no bags");
  if (k < 1) throw std::invalid_argument("compose_clique_sum: k < 1");
  const std::size_t B = bags.size();

  // Verify glue cliques really are cliques of size <= k.
  for (const BagInput& bi : bags)
    for (const auto& c : bi.glue_cliques) {
      if (c.empty() || static_cast<int>(c.size()) > k)
        throw std::invalid_argument("compose_clique_sum: bad clique size");
      for (std::size_t i = 0; i < c.size(); ++i)
        for (std::size_t j = i + 1; j < c.size(); ++j)
          if (!bi.graph.has_edge(c[i], c[j]))
            throw std::invalid_argument(
                "compose_clique_sum: glue tuple is not a clique");
    }

  std::vector<std::vector<VertexId>> local_to_global(B);
  std::vector<BagId> parent(B, kInvalidBag);
  std::vector<std::vector<VertexId>> parent_clique(B);

  VertexId next_global = bags[0].graph.num_vertices();
  local_to_global[0].resize(next_global);
  for (VertexId v = 0; v < next_global; ++v) local_to_global[0][v] = v;

  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::set<std::pair<VertexId, VertexId>> dropped;

  for (std::size_t i = 1; i < B; ++i) {
    std::uniform_int_distribution<std::size_t> pick_parent(0, i - 1);
    std::size_t p = pick_parent(rng);
    // Compatible glue pair: same size <= k on both sides.
    std::vector<std::pair<std::size_t, std::size_t>> pairs;
    for (std::size_t a = 0; a < bags[i].glue_cliques.size(); ++a)
      for (std::size_t b = 0; b < bags[p].glue_cliques.size(); ++b)
        if (bags[i].glue_cliques[a].size() == bags[p].glue_cliques[b].size())
          pairs.push_back({a, b});
    if (pairs.empty())
      throw std::invalid_argument(
          "compose_clique_sum: no compatible glue cliques");
    std::uniform_int_distribution<std::size_t> pick_pair(0, pairs.size() - 1);
    auto [ca, cb] = pairs[pick_pair(rng)];
    const auto& child_clique = bags[i].glue_cliques[ca];
    const auto& parent_clique_local = bags[p].glue_cliques[cb];

    auto& map = local_to_global[i];
    map.assign(bags[i].graph.num_vertices(), kInvalidVertex);
    std::vector<VertexId> clique_global;
    for (std::size_t j = 0; j < child_clique.size(); ++j) {
      VertexId g = local_to_global[p][parent_clique_local[j]];
      map[child_clique[j]] = g;
      clique_global.push_back(g);
    }
    for (VertexId v = 0; v < bags[i].graph.num_vertices(); ++v)
      if (map[v] == kInvalidVertex) map[v] = next_global++;
    parent[i] = static_cast<BagId>(p);
    parent_clique[i] = clique_global;
    // Optional deletions among the identified clique's edges.
    for (std::size_t a = 0; a < clique_global.size(); ++a)
      for (std::size_t b = a + 1; b < clique_global.size(); ++b)
        if (coin(rng) < drop_edge_prob) {
          VertexId x = clique_global[a], y = clique_global[b];
          if (x > y) std::swap(x, y);
          dropped.insert({x, y});
        }
  }

  // Decide the deletion rollback BEFORE materializing anything: a union-find
  // over the streamed global edge list answers "still connected?" without
  // building a graph. The old path built the composed graph, checked
  // is_connected, and on failure built it a second time — two full
  // materializations at peak. Streaming the decision keeps exactly one.
  std::size_t total_bag_edges = 0;
  for (const BagInput& bi : bags)
    total_bag_edges += static_cast<std::size_t>(bi.graph.num_edges());
  if (!dropped.empty()) {
    std::vector<VertexId> uf(static_cast<std::size_t>(next_global));
    for (VertexId v = 0; v < next_global; ++v)
      uf[static_cast<std::size_t>(v)] = v;
    auto find = [&](VertexId x) {
      while (uf[static_cast<std::size_t>(x)] != x) {
        uf[static_cast<std::size_t>(x)] =
            uf[static_cast<std::size_t>(uf[static_cast<std::size_t>(x)])];
        x = uf[static_cast<std::size_t>(x)];
      }
      return x;
    };
    for (std::size_t i = 0; i < B; ++i)
      for (EdgeId e = 0; e < bags[i].graph.num_edges(); ++e) {
        VertexId u = local_to_global[i][bags[i].graph.edge(e).u];
        VertexId v = local_to_global[i][bags[i].graph.edge(e).v];
        if (u > v) std::swap(u, v);
        if (dropped.count({u, v})) continue;
        VertexId ru = find(u), rv = find(v);
        if (ru != rv) uf[static_cast<std::size_t>(ru)] = rv;
      }
    const VertexId root = find(0);
    for (VertexId v = 1; v < next_global; ++v)
      if (find(v) != root) {
        dropped.clear();  // roll back deletions (rare)
        break;
      }
  }
  // Union all bag edges in global coordinates — a single streamed build.
  GraphBuilder builder(next_global);
  builder.reserve_edges(total_bag_edges);
  for (std::size_t i = 0; i < B; ++i)
    for (EdgeId e = 0; e < bags[i].graph.num_edges(); ++e) {
      VertexId u = local_to_global[i][bags[i].graph.edge(e).u];
      VertexId v = local_to_global[i][bags[i].graph.edge(e).v];
      if (u > v) std::swap(u, v);
      if (!dropped.count({u, v})) builder.add_edge(u, v);
    }
  Graph graph = builder.build();

  // Assemble the decomposition record.
  std::vector<std::vector<VertexId>> bag_vertices(B);
  std::vector<std::vector<EdgeId>> bag_edges(B);
  for (std::size_t i = 0; i < B; ++i) {
    bag_vertices[i] = local_to_global[i];
    for (EdgeId e = 0; e < bags[i].graph.num_edges(); ++e) {
      VertexId u = local_to_global[i][bags[i].graph.edge(e).u];
      VertexId v = local_to_global[i][bags[i].graph.edge(e).v];
      EdgeId ge = graph.find_edge(u, v);
      if (ge != kInvalidEdge) bag_edges[i].push_back(ge);
    }
  }
  CliqueSumDecomposition decomposition(std::move(bag_vertices),
                                       std::move(bag_edges), std::move(parent),
                                       std::move(parent_clique));
  return CliqueSumResult{std::move(graph), std::move(decomposition),
                         std::move(local_to_global)};
}

}  // namespace mns::gen
