// Elementary graph families used across tests, examples and benches.
#pragma once

#include "graph/graph.hpp"

namespace mns::gen {

[[nodiscard]] Graph path(VertexId n);
[[nodiscard]] Graph cycle(VertexId n);
[[nodiscard]] Graph star(VertexId leaves);
/// Hub 0 plus a ring 1..n-1 (the paper's recurring apex example: Θ(1)
/// diameter, ring parts of Θ(n) isolated diameter).
[[nodiscard]] Graph wheel(VertexId n);
[[nodiscard]] Graph complete(VertexId n);
/// Uniform random tree (each vertex attaches to a random predecessor).
[[nodiscard]] Graph random_tree(VertexId n, Rng& rng);
/// G(n, m) Erdős–Rényi-style: m distinct uniform edges plus, if
/// `ensure_connected`, a random spanning tree.
[[nodiscard]] Graph erdos_renyi(VertexId n, EdgeId m, bool ensure_connected,
                                Rng& rng);

}  // namespace mns::gen
