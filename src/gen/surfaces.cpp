#include "gen/surfaces.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "gen/planar.hpp"

namespace mns::gen {

EmbeddedGraph torus_grid(int rows, int cols) {
  if (rows < 3 || cols < 3)
    throw std::invalid_argument("torus_grid: need rows, cols >= 3");
  const VertexId n = static_cast<VertexId>(rows) * cols;
  auto id = [&](int r, int c) {
    return static_cast<VertexId>(((r + rows) % rows) * cols +
                                 (c + cols) % cols);
  };
  GraphBuilder b(n);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      b.add_edge(id(r, c), id(r, c + 1));
      b.add_edge(id(r, c), id(r + 1, c));
    }
  Graph g = b.build();
  std::vector<std::vector<EdgeId>> rot(n);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      VertexId v = id(r, c);
      rot[v] = {g.find_edge(v, id(r, c + 1)), g.find_edge(v, id(r + 1, c)),
                g.find_edge(v, id(r, c - 1)), g.find_edge(v, id(r - 1, c))};
    }
  return EmbeddedGraph(std::move(g), std::move(rot));
}

EmbeddedGraph add_handles(const EmbeddedGraph& base, int handles, Rng& rng) {
  const Graph& g0 = base.graph();
  const VertexId n = g0.num_vertices();

  // Candidate faces: simple 4-cycles, as vertex sequences in face order.
  std::vector<std::array<VertexId, 4>> quads;
  for (int f = 0; f < base.num_faces(); ++f) {
    if (base.faces()[f].size() != 4 || !base.face_is_simple_cycle(f)) continue;
    auto fv = base.face_vertices(f);
    quads.push_back({fv[0], fv[1], fv[2], fv[3]});
  }
  std::shuffle(quads.begin(), quads.end(), rng);

  // Pick `handles` pairs of quads: all chosen faces vertex-disjoint and
  // pairwise non-adjacent in g0 (so the 4 new edges per handle are fresh).
  std::vector<std::pair<std::array<VertexId, 4>, std::array<VertexId, 4>>>
      chosen;
  std::set<VertexId> used;
  auto usable = [&](const std::array<VertexId, 4>& q) {
    for (VertexId v : q) {
      if (used.count(v)) return false;
      for (VertexId w : g0.neighbors(v))
        if (used.count(w)) return false;
    }
    return true;
  };
  std::vector<std::array<VertexId, 4>> picked;
  for (const auto& q : quads) {
    if (static_cast<int>(picked.size()) == 2 * handles) break;
    if (!usable(q)) continue;
    picked.push_back(q);
    for (VertexId v : q) used.insert(v);
  }
  if (static_cast<int>(picked.size()) < 2 * handles)
    throw std::invalid_argument("add_handles: not enough disjoint quad faces");
  for (int h = 0; h < handles; ++h)
    chosen.push_back({picked[2 * h], picked[2 * h + 1]});

  // Neighbor rotations of the base, to be edited in place.
  std::vector<std::vector<VertexId>> rot(n);
  for (VertexId v = 0; v < n; ++v)
    for (EdgeId e : base.rotation()[v]) rot[v].push_back(g0.other_endpoint(e, v));

  GraphBuilder builder(n);
  for (EdgeId e = 0; e < g0.num_edges(); ++e)
    builder.add_edge(g0.edge(e).u, g0.edge(e).v);

  // Insert `novel` into rot[at] between consecutive neighbors prev -> next
  // (face arrival edge {prev, at}, departure edge {at, next}).
  auto insert_between = [&](VertexId at, VertexId prev, VertexId novel) {
    auto& o = rot[at];
    auto it = std::find(o.begin(), o.end(), prev);
    require(it != o.end(), "add_handles: rotation corrupted");
    o.insert(it + 1, novel);
  };

  for (auto& [A, B] : chosen) {
    // Pair a_i with b_{(-i) mod 4}; both faces keep their own face order.
    for (int i = 0; i < 4; ++i) {
      VertexId ai = A[i];
      VertexId bj = B[((4 - i) % 4)];
      builder.add_edge(ai, bj);
      // At a_i: tube edge goes between arrival {a_{i-1}, a_i} and departure
      // {a_i, a_{i+1}} of the destroyed face A.
      insert_between(ai, A[(i + 3) % 4], bj);
      // At b_j (j = -i): between arrival {b_{j-1}, b_j} and departure
      // {b_j, b_{j+1}} of the destroyed face B.
      int j = (4 - i) % 4;
      insert_between(bj, B[(j + 3) % 4], ai);
    }
  }

  Graph g1 = builder.build();
  std::vector<std::vector<EdgeId>> erot(n);
  for (VertexId v = 0; v < n; ++v) {
    erot[v].reserve(rot[v].size());
    for (VertexId w : rot[v]) {
      EdgeId e = g1.find_edge(v, w);
      require(e != kInvalidEdge, "add_handles: missing edge after rebuild");
      erot[v].push_back(e);
    }
  }
  return EmbeddedGraph(std::move(g1), std::move(erot));
}

EmbeddedGraph surface_grid(int rows, int cols, int genus, Rng& rng) {
  if (genus < 0) throw std::invalid_argument("surface_grid: genus < 0");
  if (genus == 0) return grid(rows, cols);
  EmbeddedGraph t = torus_grid(rows, cols);
  if (genus == 1) return t;
  return add_handles(t, genus - 1, rng);
}

}  // namespace mns::gen
