// Vortex construction (Definition 4): given a face cycle of an embedded
// graph, attach internal vortex nodes along arcs of the cycle so that no
// boundary vertex lies in more than `depth` arcs.
#pragma once

#include <span>

#include "graph/graph.hpp"
#include "structure/surface_decomposition.hpp"

namespace mns::gen {

struct VortexResult {
  Graph graph;        ///< base graph plus the internal vortex nodes.
  VortexSpec vortex;  ///< arcs / internal node record (global vertex ids).
};

/// Adds a depth-`depth` vortex with `num_internal` internal nodes to the
/// cycle `face_cycle` of `g`. Arcs are contiguous windows: the cycle is cut
/// into `num_internal` segments and arc i spans segment i plus up to
/// `depth - 1` following segments, so each boundary vertex is covered by at
/// most `depth` arcs. Each internal node connects to a random non-empty
/// subset of its arc; internal nodes of overlapping arcs are joined by an
/// edge with probability 1/2 (Definition 4's optional edges).
[[nodiscard]] VortexResult add_vortex(const Graph& g,
                                      std::span<const VertexId> face_cycle,
                                      int depth, int num_internal, Rng& rng);

}  // namespace mns::gen
