// Edge weight assignment helpers for weighted problems (MST, min-cut).
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace mns::gen {

/// Uniform integer weights in [lo, hi].
[[nodiscard]] std::vector<Weight> random_weights(const Graph& g, Weight lo,
                                                 Weight hi, Rng& rng);

/// A random permutation of 1..m — all weights distinct, so the MST is unique.
[[nodiscard]] std::vector<Weight> unique_random_weights(const Graph& g,
                                                        Rng& rng);

}  // namespace mns::gen
