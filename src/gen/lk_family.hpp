// Random members of L_k (Definition 6): k-clique-sums of k-almost-embeddable
// graphs. By the Graph Structure Theorem (Theorem 3), every H-minor-free
// graph lies in some L_k; sampling L_k directly exercises every construction
// of the paper with the decomposition known by construction (see DESIGN.md
// §4 on why generation replaces decomposition).
#pragma once

#include <vector>

#include "gen/almost_embeddable.hpp"
#include "gen/clique_sum.hpp"

namespace mns::gen {

struct LkSample {
  Graph graph;
  CliqueSumDecomposition decomposition;
  /// Per bag: the almost-embeddable structure in *local* ids plus the map.
  std::vector<AlmostEmbeddable> bag_meta;
  std::vector<std::vector<VertexId>> local_to_global;
  /// Per bag, in *global* ids: apex vertices and vortex records.
  std::vector<std::vector<VertexId>> global_apices;
  std::vector<std::vector<VortexSpec>> global_vortices;
};

/// Samples a random graph of L_k: `num_bags` almost-embeddable graphs built
/// with `bag_params`, glued by cliques of size <= glue_size (1 or 2) chosen
/// among base vertices/edges. Identified-clique edges are deleted with
/// probability `drop_edge_prob`.
[[nodiscard]] LkSample random_lk_graph(int num_bags,
                                       const AlmostEmbeddableParams& bag_params,
                                       int glue_size, double drop_edge_prob,
                                       Rng& rng);

}  // namespace mns::gen
