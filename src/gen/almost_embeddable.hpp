// (q, g, k, l)-almost-embeddable graphs (Definition 5): a bounded-genus base
// (step i), l vortices of depth k on faces (step ii), q apices (step iii) —
// generated with the full structure recorded so shortcut constructions and
// validators can consume it.
#pragma once

#include <vector>

#include "graph/embedding.hpp"
#include "structure/surface_decomposition.hpp"

namespace mns::gen {

struct AlmostEmbeddableParams {
  int apices = 0;        ///< q
  int genus = 0;         ///< g
  int vortex_depth = 1;  ///< k
  int num_vortices = 0;  ///< l
  int rows = 8;          ///< base surface-grid rows
  int cols = 8;          ///< base surface-grid cols
  int internal_per_vortex = 4;
  double apex_attach_prob = 0.3;
};

struct AlmostEmbeddable {
  Graph graph;                      ///< the full almost-embeddable graph
  EmbeddedGraph base;               ///< step (i): genus-<=g embedded base
  std::vector<VortexSpec> vortices; ///< step (ii); ids refer to `graph`
  std::vector<VertexId> apices;     ///< step (iii); ids refer to `graph`
  AlmostEmbeddableParams params;
};

/// Builds a random almost-embeddable graph per Definition 5. Vertex ids:
/// base vertices first, then vortex internals (per vortex), then apices.
[[nodiscard]] AlmostEmbeddable random_almost_embeddable(
    const AlmostEmbeddableParams& params, Rng& rng);

}  // namespace mns::gen
