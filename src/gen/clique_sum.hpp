// k-clique-sum composition (Definitions 1 and 8): glues component graphs
// ("bags") into one network by identifying cliques, optionally deleting some
// identified-clique edges, and records the resulting decomposition tree.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "structure/clique_sum.hpp"

namespace mns::gen {

/// One component to glue: its graph plus candidate attachment cliques
/// (local vertex ids; every listed tuple must be a clique in `graph`).
struct BagInput {
  Graph graph;
  std::vector<std::vector<VertexId>> glue_cliques;
};

struct CliqueSumResult {
  Graph graph;
  CliqueSumDecomposition decomposition;
  /// per bag: local vertex id -> global vertex id.
  std::vector<std::vector<VertexId>> local_to_global;
};

/// Composes the bags into a k-clique-sum: bag 0 seeds the graph; every later
/// bag attaches to a uniformly random earlier bag by identifying one of its
/// glue cliques (of size <= k) with an equal-sized glue clique of the parent.
/// Each identified-clique edge is deleted with probability `drop_edge_prob`
/// (Definition 1's optional deletions); if the deletions happen to disconnect
/// the graph, they are rolled back.
[[nodiscard]] CliqueSumResult compose_clique_sum(
    const std::vector<BagInput>& bags, int k, double drop_edge_prob, Rng& rng);

/// All single vertices and edge endpoints of g as glue cliques of size 1 / 2.
[[nodiscard]] std::vector<std::vector<VertexId>> default_glue_cliques(
    const Graph& g, int max_size);

}  // namespace mns::gen
