#include "gen/lower_bound.hpp"

#include <stdexcept>

namespace mns::gen {

LowerBoundGraph lower_bound_graph(int p) {
  if (p < 2) throw std::invalid_argument("lower_bound_graph: p < 2");
  // Layout: p*p path vertices, then a complete binary tree whose p leaves sit
  // above the p columns. Tree stored heap-style with `tree_size` nodes; we
  // round p up to a power of two for the tree shape and connect only the
  // first p leaves.
  int leaves = 1;
  while (leaves < p) leaves *= 2;
  const int tree_size = 2 * leaves - 1;
  const VertexId n = static_cast<VertexId>(p) * p + tree_size;
  LowerBoundGraph out;
  out.num_paths = p;
  out.path_length = p;
  out.first_tree_vertex = static_cast<VertexId>(p) * p;

  GraphBuilder b(n);
  for (int i = 0; i < p; ++i)
    for (int j = 0; j + 1 < p; ++j)
      b.add_edge(out.path_vertex(i, j), out.path_vertex(i, j + 1));
  auto tree_id = [&](int heap_index) {  // heap_index in [0, tree_size)
    return out.first_tree_vertex + heap_index;
  };
  for (int h = 1; h < tree_size; ++h)
    b.add_edge(tree_id(h), tree_id((h - 1) / 2));
  // Leaf l (heap index leaves-1+l) connects to every path vertex in column l
  // for l < p; spare leaves attach only to the tree.
  for (int l = 0; l < p; ++l)
    for (int i = 0; i < p; ++i)
      b.add_edge(tree_id(leaves - 1 + l), out.path_vertex(i, l));
  out.graph = b.build();
  return out;
}

}  // namespace mns::gen
