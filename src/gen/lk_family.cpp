#include "gen/lk_family.hpp"

#include <stdexcept>

namespace mns::gen {

LkSample random_lk_graph(int num_bags,
                         const AlmostEmbeddableParams& bag_params,
                         int glue_size, double drop_edge_prob, Rng& rng) {
  if (num_bags < 1) throw std::invalid_argument("random_lk_graph: no bags");
  if (glue_size < 1 || glue_size > 2)
    throw std::invalid_argument("random_lk_graph: glue_size must be 1 or 2");

  std::vector<AlmostEmbeddable> metas;
  std::vector<BagInput> inputs;
  metas.reserve(static_cast<std::size_t>(num_bags));
  inputs.reserve(static_cast<std::size_t>(num_bags));
  for (int i = 0; i < num_bags; ++i) {
    metas.push_back(random_almost_embeddable(bag_params, rng));
    const AlmostEmbeddable& ae = metas.back();
    // Glue only on base vertices/edges: apices and vortex internals stay
    // private to their bag. Exact-capacity reserve: one singleton per base
    // vertex plus (for glue_size 2) at most one pair per base edge.
    std::vector<std::vector<VertexId>> cliques;
    const Graph& base_graph = ae.base.graph();
    cliques.reserve(static_cast<std::size_t>(base_graph.num_vertices()) +
                    (glue_size >= 2
                         ? static_cast<std::size_t>(base_graph.num_edges())
                         : 0));
    for (VertexId v = 0; v < base_graph.num_vertices(); ++v)
      cliques.push_back({v});
    if (glue_size >= 2)
      for (EdgeId e = 0; e < base_graph.num_edges(); ++e)
        if (ae.graph.has_edge(base_graph.edge(e).u, base_graph.edge(e).v))
          cliques.push_back({base_graph.edge(e).u, base_graph.edge(e).v});
    inputs.push_back(BagInput{ae.graph, std::move(cliques)});
  }

  CliqueSumResult comp =
      compose_clique_sum(inputs, glue_size, drop_edge_prob, rng);

  LkSample out{std::move(comp.graph), std::move(comp.decomposition),
               std::move(metas), std::move(comp.local_to_global),
               {}, {}};
  out.global_apices.resize(num_bags);
  out.global_vortices.resize(num_bags);
  for (int i = 0; i < num_bags; ++i) {
    const auto& map = out.local_to_global[i];
    for (VertexId a : out.bag_meta[i].apices)
      out.global_apices[i].push_back(map[a]);
    for (const VortexSpec& vs : out.bag_meta[i].vortices) {
      VortexSpec g;
      g.internal_nodes.reserve(vs.internal_nodes.size());
      for (VertexId v : vs.internal_nodes) g.internal_nodes.push_back(map[v]);
      g.arcs.reserve(vs.arcs.size());
      for (const auto& arc : vs.arcs) {
        std::vector<VertexId> garc;
        garc.reserve(arc.size());
        for (VertexId v : arc) garc.push_back(map[v]);
        g.arcs.push_back(std::move(garc));
      }
      g.boundary_cycle.reserve(vs.boundary_cycle.size());
      for (VertexId v : vs.boundary_cycle) g.boundary_cycle.push_back(map[v]);
      out.global_vortices[i].push_back(std::move(g));
    }
  }
  return out;
}

}  // namespace mns::gen
