// The Ω(√n) CONGEST lower-bound family of Das Sarma et al. [SHK+12] /
// Elkin [Elk06] in its standard simplified form: p parallel paths of length
// p, bridged column-wise by a complete binary tree. Diameter O(log n), yet
// MST needs Ω~(√n) rounds. This graph contains large clique minors — it is
// exactly the pathological instance excluded-minor families rule out, and the
// adversarial baseline for bench E11.
#pragma once

#include "graph/graph.hpp"

namespace mns::gen {

struct LowerBoundGraph {
  Graph graph;
  int num_paths = 0;    ///< p
  int path_length = 0;  ///< vertices per path (== p)
  /// vertex id of path i, column j.
  [[nodiscard]] VertexId path_vertex(int i, int j) const {
    return static_cast<VertexId>(i * path_length + j);
  }
  /// id of tree leaf above column j.
  VertexId first_tree_vertex = 0;
};

/// Builds the instance with p paths of p vertices each. n ~ p^2 + 2p.
[[nodiscard]] LowerBoundGraph lower_bound_graph(int p);

}  // namespace mns::gen
