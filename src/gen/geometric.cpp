#include "gen/geometric.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "graph/algorithms.hpp"
#include "graph/union_find.hpp"

namespace mns::gen {

UnitDiskGraph unit_disk(VertexId n, double radius, Rng& rng) {
  if (n < 1) throw std::invalid_argument("unit_disk: n < 1");
  if (radius <= 0.0) throw std::invalid_argument("unit_disk: radius <= 0");
  UnitDiskGraph out;
  out.x.resize(n);
  out.y.resize(n);
  std::uniform_real_distribution<double> coord(0.0, 1.0);
  for (VertexId v = 0; v < n; ++v) {
    out.x[v] = coord(rng);
    out.y[v] = coord(rng);
  }
  auto dist2 = [&](VertexId a, VertexId b) {
    double dx = out.x[a] - out.x[b], dy = out.y[a] - out.y[b];
    return dx * dx + dy * dy;
  };
  GraphBuilder b(n);
  UnionFind uf(n);
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = u + 1; v < n; ++v)
      if (dist2(u, v) <= radius * radius) {
        b.add_edge(u, v);
        uf.unite(u, v);
      }
  // Stitch remaining components through their closest cross pair.
  while (uf.num_sets() > 1) {
    VertexId best_u = kInvalidVertex, best_v = kInvalidVertex;
    double best = std::numeric_limits<double>::max();
    for (VertexId u = 0; u < n; ++u)
      for (VertexId v = u + 1; v < n; ++v)
        if (!uf.same(u, v) && dist2(u, v) < best) {
          best = dist2(u, v);
          best_u = u;
          best_v = v;
        }
    b.add_edge(best_u, best_v);
    uf.unite(best_u, best_v);
  }
  out.graph = b.build();
  out.distances.resize(out.graph.num_edges());
  for (EdgeId e = 0; e < out.graph.num_edges(); ++e)
    out.distances[e] = static_cast<Weight>(
        std::sqrt(dist2(out.graph.edge(e).u, out.graph.edge(e).v)) * 1e6);
  return out;
}

}  // namespace mns::gen
