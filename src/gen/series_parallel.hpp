// Random series-parallel graphs (K4-minor-free, treewidth <= 2) — the
// "network backbone" family the paper's introduction motivates [FL03].
#pragma once

#include "graph/graph.hpp"

namespace mns::gen {

/// Random two-terminal series-parallel graph grown from a single edge by
/// `ops` random compositions (series subdivision or parallel path insertion).
/// Terminals are vertices 0 and 1.
[[nodiscard]] Graph random_series_parallel(int ops, Rng& rng);

}  // namespace mns::gen
