#include "gen/vortex.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace mns::gen {

VortexResult add_vortex(const Graph& g, std::span<const VertexId> face_cycle,
                        int depth, int num_internal, Rng& rng) {
  const int L = static_cast<int>(face_cycle.size());
  if (L < 3) throw std::invalid_argument("add_vortex: cycle too short");
  if (depth < 1) throw std::invalid_argument("add_vortex: depth < 1");
  if (num_internal < 1)
    throw std::invalid_argument("add_vortex: need >= 1 internal node");
  {
    std::set<VertexId> uniq(face_cycle.begin(), face_cycle.end());
    if (static_cast<int>(uniq.size()) != L)
      throw std::invalid_argument("add_vortex: cycle has repeated vertices");
  }

  const VertexId n = g.num_vertices();
  const int t = num_internal;

  // Segment s covers cycle positions [s*L/t, (s+1)*L/t).
  auto seg_begin = [&](int s) { return static_cast<int>((static_cast<long long>(s % t) * L) / t); };
  std::uniform_int_distribution<int> ext_dist(0, depth - 1);

  VortexResult out;
  out.vortex.boundary_cycle.assign(face_cycle.begin(), face_cycle.end());
  GraphBuilder builder(n + t);
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    builder.add_edge(g.edge(e).u, g.edge(e).v);

  std::vector<std::pair<int, int>> arc_pos(t);  // [begin, end) segment span
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (int i = 0; i < t; ++i) {
    VertexId node = n + i;
    out.vortex.internal_nodes.push_back(node);
    int ext = ext_dist(rng);  // extra segments; keeps coverage <= depth
    int seg_count = std::min(1 + ext, t);
    int begin_pos = seg_begin(i);
    int end_idx = i + seg_count;
    int end_pos = seg_count == t ? begin_pos + L
                  : end_idx >= t ? seg_begin(end_idx - t) + L
                                 : seg_begin(end_idx);
    require(end_pos > begin_pos && end_pos <= begin_pos + L,
            "add_vortex: bad arc window");
    std::vector<VertexId> arc;
    for (int p = begin_pos; p < end_pos; ++p) arc.push_back(face_cycle[p % L]);
    arc_pos[i] = {begin_pos, end_pos};
    // Connect to a random non-empty subset of the arc.
    bool any = false;
    for (VertexId v : arc)
      if (coin(rng) < 0.7) {
        builder.add_edge(node, v);
        any = true;
      }
    if (!any) {
      std::uniform_int_distribution<std::size_t> pick(0, arc.size() - 1);
      builder.add_edge(node, arc[pick(rng)]);
    }
    out.vortex.arcs.push_back(std::move(arc));
  }

  // Optional internal-internal edges between overlapping arcs.
  auto overlaps = [&](int i, int j) {
    // Positions modulo L; arcs are intervals of length <= L.
    auto [b1, e1] = arc_pos[i];
    auto [b2, e2] = arc_pos[j];
    for (int shift : {-L, 0, L}) {
      if (std::max(b1, b2 + shift) < std::min(e1, e2 + shift)) return true;
    }
    return false;
  };
  for (int i = 0; i < t; ++i)
    for (int j = i + 1; j < t; ++j)
      if (overlaps(i, j) && coin(rng) < 0.5)
        builder.add_edge(n + i, n + j);

  out.graph = builder.build();
  return out;
}

}  // namespace mns::gen
