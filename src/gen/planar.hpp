// Planar generators with maintained combinatorial embeddings: grids,
// triangulated grids, and random maximal planar graphs (random Apollonian
// triangulations). Planar graphs are the (0,0,0,0)-almost-embeddable base
// case of the paper's constructions.
#pragma once

#include "graph/embedding.hpp"

namespace mns::gen {

/// rows x cols grid with its planar embedding. Vertex (r, c) = r*cols + c.
[[nodiscard]] EmbeddedGraph grid(int rows, int cols);

/// The grid's graph alone, streamed straight into a GraphBuilder with an
/// exact edge reserve — no rotation system, no face tracing. This is the
/// n = 2^20 scale path (bench_scale, mnsctl's planar family): at a million
/// vertices the embedding's per-vertex rotation vectors dominate peak-RSS,
/// and the scale workloads never look at them. Same vertex numbering and
/// edge set as grid(rows, cols).graph().
[[nodiscard]] Graph grid_graph(int rows, int cols);

/// Grid plus the (r,c)-(r+1,c+1) diagonals, embedded. All inner faces are
/// triangles.
[[nodiscard]] EmbeddedGraph triangulated_grid(int rows, int cols);

/// Random maximal planar graph ("stacked triangulation"): start from a
/// triangle and repeatedly insert a vertex into a uniformly random face.
/// n >= 3; the result has exactly 3n - 6 edges and genus 0.
[[nodiscard]] EmbeddedGraph random_maximal_planar(VertexId n, Rng& rng);

}  // namespace mns::gen
