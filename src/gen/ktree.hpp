// Random k-trees and partial k-trees: the canonical treewidth-k family for
// Theorem 5, generated together with their exact width-k tree decomposition.
#pragma once

#include "graph/graph.hpp"
#include "structure/tree_decomposition.hpp"

namespace mns::gen {

struct KTreeResult {
  Graph graph;
  TreeDecomposition decomposition;  ///< valid, width exactly k.
};

/// Random k-tree on n >= k+1 vertices: start from a (k+1)-clique; every new
/// vertex attaches to a uniformly random existing k-clique.
[[nodiscard]] KTreeResult random_ktree(VertexId n, int k, Rng& rng);

/// Partial k-tree: random k-tree with every edge removed independently with
/// probability `drop_prob`; a random spanning tree of the k-tree is kept so
/// the result stays connected. The recorded decomposition remains valid.
[[nodiscard]] KTreeResult random_partial_ktree(VertexId n, int k,
                                               double drop_prob, Rng& rng);

}  // namespace mns::gen
