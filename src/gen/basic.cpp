#include "gen/basic.hpp"

#include <set>
#include <stdexcept>

namespace mns::gen {

Graph path(VertexId n) {
  GraphBuilder b(n);
  for (VertexId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

Graph cycle(VertexId n) {
  if (n < 3) throw std::invalid_argument("cycle: need n >= 3");
  GraphBuilder b(n);
  for (VertexId v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  return b.build();
}

Graph star(VertexId leaves) {
  GraphBuilder b(leaves + 1);
  for (VertexId v = 1; v <= leaves; ++v) b.add_edge(0, v);
  return b.build();
}

Graph wheel(VertexId n) {
  if (n < 4) throw std::invalid_argument("wheel: need n >= 4");
  GraphBuilder b(n);
  for (VertexId v = 1; v < n; ++v) {
    b.add_edge(0, v);
    b.add_edge(v, v == n - 1 ? 1 : v + 1);
  }
  return b.build();
}

Graph complete(VertexId n) {
  GraphBuilder b(n);
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = u + 1; v < n; ++v) b.add_edge(u, v);
  return b.build();
}

Graph random_tree(VertexId n, Rng& rng) {
  GraphBuilder b(n);
  for (VertexId v = 1; v < n; ++v) {
    std::uniform_int_distribution<VertexId> pick(0, v - 1);
    b.add_edge(pick(rng), v);
  }
  return b.build();
}

Graph erdos_renyi(VertexId n, EdgeId m, bool ensure_connected, Rng& rng) {
  GraphBuilder b(n);
  if (ensure_connected)
    for (VertexId v = 1; v < n; ++v) {
      std::uniform_int_distribution<VertexId> pick(0, v - 1);
      b.add_edge(pick(rng), v);
    }
  std::uniform_int_distribution<VertexId> pick(0, n - 1);
  std::set<std::pair<VertexId, VertexId>> seen;
  int attempts = 0;
  while (static_cast<EdgeId>(seen.size()) < m && attempts < 20 * m + 100) {
    ++attempts;
    VertexId u = pick(rng), v = pick(rng);
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (seen.insert({u, v}).second) b.add_edge(u, v);
  }
  return b.build();
}

}  // namespace mns::gen
