// transport::SocketTransport — sequence-numbered, acknowledged,
// retransmitting datagram delivery for the CONGEST round engine
// (DESIGN.md §11 "Transport layer").
//
// Reliability discipline (per ordered peer pair, both directions):
//   * every DATA / FENCE / CTRL packet carries a link-local sequence number
//     (seq 1, 2, ...); the receiver delivers strictly in order, buffers
//     out-of-order arrivals, and answers every reliable packet with a
//     cumulative ACK;
//   * the sender keeps at most `window` unacked packets in flight (excess
//     is queued and pumped as ACKs arrive) and retransmits a packet whose
//     ACK is overdue, with exponential backoff from initial_timeout_ms to
//     max_timeout_ms;
//   * duplicates (retransmit races, injected faults) are detected by seq
//     and re-ACKed, never re-delivered.
//
// Round-barrier protocol: exchange(R) sends this rank's authoritative
// cut-edge records for round R (DATA packets, batched), then a FENCE(R) to
// EVERY peer — also when there is no data, so the fence doubles as the
// lock-step barrier. Because links are reliable and ordered, receiving
// FENCE(R) from a peer proves all of that peer's round-R records arrived.
// The call returns once every peer's fence arrived and every expected
// record was substituted into the round's payload buffer; a record whose
// slot matches nothing this replica computed (or arrives twice) is replica
// divergence and throws TransportError.
//
// The vertex-range partition: rank r owns the contiguous range
// [n*r/ranks, n*(r+1)/ranks). A message is wire traffic iff its sender's
// owner differs from its receiver's owner; the sender's owner transmits,
// the receiver's owner substitutes the wire bytes into its inbox buffer
// (transport.hpp documents the replicated-computation model this slots
// into).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "transport/datagram.hpp"
#include "transport/transport.hpp"

namespace mns::transport {

struct SocketTransportConfig {
  int rank = 0;
  int ranks = 1;
  /// Per-peer unacked-packet cap; excess packets queue until ACKs arrive.
  int window = 64;
  /// First retransmit fires after this long without an ACK ...
  int initial_timeout_ms = 2;
  /// ... doubling per retransmit up to this ceiling.
  int max_timeout_ms = 256;
  /// No datagram received for this long while a barrier is incomplete =>
  /// the peer is gone; throw instead of wedging the round loop.
  int stall_timeout_ms = 30000;
};

class SocketTransport final : public Transport {
 public:
  /// `graph` re-derives each packed slot's sender endpoint and must equal
  /// every peer's graph (replicated construction from one seed/snapshot).
  SocketTransport(const Graph& graph, SocketTransportConfig config,
                  std::unique_ptr<DatagramTransport> net);
  ~SocketTransport() override;

  void exchange(const RoundTraffic& traffic) override;
  /// Includes the faults_* counters when the datagram layer is a
  /// FaultInjectingTransport.
  [[nodiscard]] TransportStats stats() const override;

  [[nodiscard]] int rank() const noexcept { return config_.rank; }
  [[nodiscard]] int ranks() const noexcept { return config_.ranks; }
  /// The rank owning vertex v under the contiguous range partition.
  [[nodiscard]] int owner(VertexId v) const noexcept;

  /// Reliable small-value all-gather over the same links, used OUTSIDE the
  /// round loop: the pre-solve handshake, RunReport digest aggregation at
  /// rank 0, and the shutdown barrier. Tags must be distinct per gather and
  /// issued in the same order on every rank. Returns all ranks' values,
  /// indexed by rank.
  std::vector<std::uint64_t> all_gather(std::uint64_t tag,
                                        std::uint64_t value);

  /// Post-barrier linger: keeps re-ACKing peer retransmits until the link
  /// has been silent for `grace_ms`, so a peer whose final ACK was lost can
  /// finish instead of stalling. Call after the last all_gather, before
  /// destruction.
  void shutdown(int grace_ms = 100);

 private:
  struct SentPacket {
    std::uint64_t seq;
    std::vector<std::uint8_t> bytes;
    std::int64_t deadline_ms;  ///< steady-clock ms of the next retransmit
    int timeout_ms;
  };
  /// One delivered (in-order) reliable packet awaiting consumption.
  struct Inbound {
    std::uint8_t type;
    std::int64_t round;  ///< DATA/FENCE round; CTRL tag
    std::vector<std::uint32_t> slots;
    std::vector<congest::Message> payloads;
    std::uint64_t ctrl_value = 0;
  };
  struct Link {
    // send side
    std::uint64_t next_seq = 1;
    std::uint64_t cum_acked = 0;
    std::deque<SentPacket> inflight;
    std::deque<SentPacket> queued;  ///< built + seq'd, awaiting window space
    // receive side
    std::uint64_t next_expected = 1;
    std::map<std::uint64_t, Inbound> out_of_order;
    std::deque<Inbound> ready;  ///< in-order, not yet consumed
  };

  void send_reliable(int peer, std::uint8_t type, std::int64_t round,
                     std::vector<std::uint8_t> body, std::uint16_t count);
  void transmit(int peer, SentPacket& packet);
  void pump(int peer);
  void send_ack(int peer);
  void retransmit_due();
  /// Waits up to the next retransmit deadline for one datagram and folds it
  /// into the link state. Returns true if anything was received.
  bool poll_once();
  void handle_datagram(std::span<const std::uint8_t> bytes);
  [[nodiscard]] std::int64_t now_ms() const;

  const Graph* g_;
  SocketTransportConfig config_;
  std::unique_ptr<DatagramTransport> net_;
  std::vector<VertexId> range_begin_;  ///< ranks+1 ownership boundaries
  std::vector<Link> links_;            ///< indexed by rank (self unused)
  std::vector<std::uint8_t> recv_buf_;
  std::int64_t last_receipt_ms_ = 0;
  TransportStats stats_;
};

}  // namespace mns::transport
