#include "transport/socket_transport.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <utility>

#include "transport/fault_injection.hpp"

namespace mns::transport {

namespace {

// Wire format (little-endian, fixed 24-byte header):
//   u32 magic 'MNS1' | u8 type | u8 from_rank | u16 count | u64 seq |
//   i64 round (DATA/FENCE: round, CTRL: tag, ACK: 0)
// DATA body: count * 20-byte records {u32 slot, i32 tag, i32 aux, i64 value}
// CTRL body: one u64 value. ACK: seq = cumulative ack, no body.
constexpr std::uint32_t kMagic = 0x314e534d;  // "MNS1"
constexpr std::uint8_t kData = 1;
constexpr std::uint8_t kFence = 2;
constexpr std::uint8_t kAck = 3;
constexpr std::uint8_t kCtrl = 4;
constexpr std::size_t kHeaderBytes = 24;
constexpr std::size_t kRecordBytes = 20;
/// 24 + 64*20 = 1304 bytes, under UdpTransport::kMaxDatagramBytes.
constexpr std::size_t kMaxRecordsPerDatagram = 64;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t x) {
  out.push_back(static_cast<std::uint8_t>(x & 0xffu));
  out.push_back(static_cast<std::uint8_t>(x >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t x) {
  for (int b = 0; b < 4; ++b)
    out.push_back(static_cast<std::uint8_t>((x >> (8 * b)) & 0xffu));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t x) {
  for (int b = 0; b < 8; ++b)
    out.push_back(static_cast<std::uint8_t>((x >> (8 * b)) & 0xffu));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t x = 0;
  for (int b = 3; b >= 0; --b) x = (x << 8) | p[b];
  return x;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t x = 0;
  for (int b = 7; b >= 0; --b) x = (x << 8) | p[b];
  return x;
}

void put_record(std::vector<std::uint8_t>& out, std::uint32_t slot,
                const congest::Message& m) {
  put_u32(out, slot);
  put_u32(out, static_cast<std::uint32_t>(m.tag));
  put_u32(out, static_cast<std::uint32_t>(m.aux));
  put_u64(out, static_cast<std::uint64_t>(m.value));
}

std::vector<std::uint8_t> build_packet(std::uint8_t type, int from_rank,
                                       std::uint16_t count, std::uint64_t seq,
                                       std::int64_t round,
                                       std::vector<std::uint8_t> body) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + body.size());
  put_u32(out, kMagic);
  out.push_back(type);
  out.push_back(static_cast<std::uint8_t>(from_rank));
  put_u16(out, count);
  put_u64(out, seq);
  put_u64(out, static_cast<std::uint64_t>(round));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

}  // namespace

SocketTransport::SocketTransport(const Graph& graph,
                                 SocketTransportConfig config,
                                 std::unique_ptr<DatagramTransport> net)
    : g_(&graph), config_(config), net_(std::move(net)) {
  if (config_.ranks < 1 || config_.rank < 0 || config_.rank >= config_.ranks)
    throw TransportError("SocketTransport: rank " +
                         std::to_string(config_.rank) + " not in [0, " +
                         std::to_string(config_.ranks) + ")");
  if (config_.ranks > 1 && net_ == nullptr)
    throw TransportError("SocketTransport: null datagram transport");
  if (config_.window < 1 || config_.initial_timeout_ms < 1 ||
      config_.max_timeout_ms < config_.initial_timeout_ms ||
      config_.stall_timeout_ms < config_.max_timeout_ms)
    throw TransportError("SocketTransport: bad window/timeout configuration");
  const long long n = graph.num_vertices();
  range_begin_.resize(static_cast<std::size_t>(config_.ranks) + 1);
  for (int r = 0; r <= config_.ranks; ++r)
    range_begin_[static_cast<std::size_t>(r)] =
        static_cast<VertexId>(n * r / config_.ranks);
  links_.resize(static_cast<std::size_t>(config_.ranks));
}

SocketTransport::~SocketTransport() = default;

TransportStats SocketTransport::stats() const {
  TransportStats out = stats_;
  if (const auto* faults =
          dynamic_cast<const FaultInjectingTransport*>(net_.get())) {
    out.faults_dropped = faults->dropped();
    out.faults_duplicated = faults->duplicated();
    out.faults_held = faults->held();
  }
  return out;
}

int SocketTransport::owner(VertexId v) const noexcept {
  for (int r = 1; r < config_.ranks; ++r)
    if (v < range_begin_[static_cast<std::size_t>(r)]) return r - 1;
  return config_.ranks - 1;
}

std::int64_t SocketTransport::now_ms() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SocketTransport::transmit(int peer, SentPacket& packet) {
  net_->send(peer, packet.bytes);
  ++stats_.datagrams_sent;
  packet.deadline_ms = now_ms() + packet.timeout_ms;
}

void SocketTransport::pump(int peer) {
  Link& link = links_[static_cast<std::size_t>(peer)];
  while (link.inflight.size() < static_cast<std::size_t>(config_.window) &&
         !link.queued.empty()) {
    SentPacket packet = std::move(link.queued.front());
    link.queued.pop_front();
    transmit(peer, packet);
    link.inflight.push_back(std::move(packet));
  }
}

void SocketTransport::send_reliable(int peer, std::uint8_t type,
                                    std::int64_t round,
                                    std::vector<std::uint8_t> body,
                                    std::uint16_t count) {
  Link& link = links_[static_cast<std::size_t>(peer)];
  SentPacket packet;
  packet.seq = link.next_seq++;
  packet.timeout_ms = config_.initial_timeout_ms;
  packet.deadline_ms = 0;
  packet.bytes = build_packet(type, config_.rank, count, packet.seq, round,
                              std::move(body));
  if (link.inflight.size() < static_cast<std::size_t>(config_.window)) {
    transmit(peer, packet);
    link.inflight.push_back(std::move(packet));
  } else {
    link.queued.push_back(std::move(packet));
  }
}

void SocketTransport::send_ack(int peer) {
  const Link& link = links_[static_cast<std::size_t>(peer)];
  net_->send(peer, build_packet(kAck, config_.rank, 0,
                                link.next_expected - 1, 0, {}));
  ++stats_.datagrams_sent;
  ++stats_.acks_sent;
}

void SocketTransport::retransmit_due() {
  const std::int64_t now = now_ms();
  for (int p = 0; p < config_.ranks; ++p) {
    if (p == config_.rank) continue;
    for (SentPacket& packet : links_[static_cast<std::size_t>(p)].inflight) {
      if (now < packet.deadline_ms) continue;
      packet.timeout_ms = std::min(packet.timeout_ms * 2,
                                   config_.max_timeout_ms);
      transmit(p, packet);
      ++stats_.retransmits;
    }
  }
}

void SocketTransport::handle_datagram(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderBytes) return;  // malformed: drop
  if (get_u32(bytes.data()) != kMagic) return;
  const std::uint8_t type = bytes[4];
  const int from = bytes[5];
  const std::uint16_t count = get_u16(bytes.data() + 6);
  const std::uint64_t seq = get_u64(bytes.data() + 8);
  const auto round = static_cast<std::int64_t>(get_u64(bytes.data() + 16));
  if (from == config_.rank || from >= config_.ranks) return;
  Link& link = links_[static_cast<std::size_t>(from)];

  if (type == kAck) {
    while (!link.inflight.empty() && link.inflight.front().seq <= seq)
      link.inflight.pop_front();
    link.cum_acked = std::max(link.cum_acked, seq);
    pump(from);
    return;
  }
  if (type != kData && type != kFence && type != kCtrl) return;

  // Reliable path: dedup / in-order delivery / out-of-order buffering.
  if (seq < link.next_expected) {
    send_ack(from);  // duplicate (retransmit race or injected dup)
    return;
  }
  Inbound in;
  in.type = type;
  in.round = round;
  const std::uint8_t* body = bytes.data() + kHeaderBytes;
  const std::size_t body_len = bytes.size() - kHeaderBytes;
  if (type == kData) {
    if (body_len < static_cast<std::size_t>(count) * kRecordBytes) return;
    in.slots.reserve(count);
    in.payloads.reserve(count);
    for (std::uint16_t i = 0; i < count; ++i) {
      const std::uint8_t* rec = body + static_cast<std::size_t>(i) *
                                           kRecordBytes;
      in.slots.push_back(get_u32(rec));
      congest::Message m;
      m.tag = static_cast<std::int32_t>(get_u32(rec + 4));
      m.aux = static_cast<std::int32_t>(get_u32(rec + 8));
      m.value = static_cast<std::int64_t>(get_u64(rec + 12));
      in.payloads.push_back(m);
    }
  } else if (type == kCtrl) {
    if (body_len < 8) return;
    in.ctrl_value = get_u64(body);
  }
  if (seq == link.next_expected) {
    link.ready.push_back(std::move(in));
    ++link.next_expected;
    auto it = link.out_of_order.find(link.next_expected);
    while (it != link.out_of_order.end()) {
      link.ready.push_back(std::move(it->second));
      link.out_of_order.erase(it);
      ++link.next_expected;
      it = link.out_of_order.find(link.next_expected);
    }
  } else {
    link.out_of_order.emplace(seq, std::move(in));
  }
  send_ack(from);
}

bool SocketTransport::poll_once() {
  // Wait at most until the earliest retransmit deadline (clamped to a small
  // cap so stall detection stays responsive).
  const std::int64_t now = now_ms();
  std::int64_t wait = 5;
  for (int p = 0; p < config_.ranks; ++p) {
    if (p == config_.rank) continue;
    const Link& link = links_[static_cast<std::size_t>(p)];
    if (!link.inflight.empty())
      wait = std::min(wait, link.inflight.front().deadline_ms - now);
  }
  wait = std::max<std::int64_t>(wait, 0);
  const bool got = net_->receive(recv_buf_, static_cast<int>(wait));
  if (got) {
    ++stats_.datagrams_received;
    last_receipt_ms_ = now_ms();
    handle_datagram(recv_buf_);
    // Drain whatever else is already queued on the socket without waiting.
    while (net_->receive(recv_buf_, 0)) {
      ++stats_.datagrams_received;
      handle_datagram(recv_buf_);
    }
  }
  retransmit_due();
  return got;
}

void SocketTransport::exchange(const RoundTraffic& traffic) {
  ++stats_.rounds_exchanged;
  if (config_.ranks <= 1) return;
  const std::int64_t round = traffic.round;

  // Classify the canonical batch: entries whose sender this rank owns and
  // whose receiver it does not become wire records; the mirror-image
  // entries become the expected inbound set (slot -> batch index).
  struct Expected {
    std::uint32_t slot;
    std::size_t index;
    bool written;
  };
  std::vector<Expected> expected;
  std::vector<std::vector<std::uint8_t>> body(
      static_cast<std::size_t>(config_.ranks));
  std::vector<std::uint16_t> body_count(
      static_cast<std::size_t>(config_.ranks), 0);
  for (std::size_t i = 0; i < traffic.size(); ++i) {
    const std::uint32_t slot = traffic.slot[i];
    const Edge& ed = g_->edge(static_cast<EdgeId>(slot >> 1));
    const VertexId from = (slot & 1u) != 0 ? ed.v : ed.u;
    const int sender_owner = owner(from);
    const int receiver_owner = owner(traffic.to[i]);
    if (sender_owner == receiver_owner) continue;  // shard-local
    if (sender_owner == config_.rank) {
      auto& b = body[static_cast<std::size_t>(receiver_owner)];
      put_record(b, slot, traffic.payload[i]);
      ++stats_.wire_records;
      if (++body_count[static_cast<std::size_t>(receiver_owner)] ==
          kMaxRecordsPerDatagram) {
        send_reliable(receiver_owner, kData, round, std::move(b),
                      kMaxRecordsPerDatagram);
        b.clear();
        body_count[static_cast<std::size_t>(receiver_owner)] = 0;
      }
    } else if (receiver_owner == config_.rank) {
      expected.push_back(Expected{slot, i, false});
    }
    // Third-party traffic (neither endpoint owned here) stays a local
    // replica computation; the owning pair exchanges it themselves.
  }
  for (int p = 0; p < config_.ranks; ++p) {
    if (p == config_.rank) continue;
    if (body_count[static_cast<std::size_t>(p)] > 0)
      send_reliable(p, kData, round,
                    std::move(body[static_cast<std::size_t>(p)]),
                    body_count[static_cast<std::size_t>(p)]);
    // The fence travels after all data on the ordered link: receiving it
    // proves the peer's round is complete. Sent every round — it IS the
    // lock-step barrier.
    send_reliable(p, kFence, round, {}, 0);
  }
  std::sort(expected.begin(), expected.end(),
            [](const Expected& a, const Expected& b) {
              return a.slot < b.slot;
            });

  std::vector<char> fenced(static_cast<std::size_t>(config_.ranks), 0);
  fenced[static_cast<std::size_t>(config_.rank)] = 1;
  std::size_t matched = 0;
  last_receipt_ms_ = now_ms();
  for (;;) {
    bool all_fenced = true;
    for (int p = 0; p < config_.ranks; ++p) {
      if (fenced[static_cast<std::size_t>(p)] != 0) continue;
      auto& ready = links_[static_cast<std::size_t>(p)].ready;
      while (!ready.empty()) {
        Inbound& in = ready.front();
        if (in.type == kCtrl) break;  // a later all_gather's traffic
        if (in.round != round)
          throw TransportError(
              "SocketTransport rank " + std::to_string(config_.rank) +
              ": peer " + std::to_string(p) + " sent round " +
              std::to_string(in.round) + " traffic inside round " +
              std::to_string(round) + " (replica divergence)");
        if (in.type == kFence) {
          fenced[static_cast<std::size_t>(p)] = 1;
          ready.pop_front();
          break;
        }
        for (std::size_t j = 0; j < in.slots.size(); ++j) {
          const std::uint32_t slot = in.slots[j];
          auto it = std::lower_bound(
              expected.begin(), expected.end(), slot,
              [](const Expected& e, std::uint32_t s) { return e.slot < s; });
          if (it == expected.end() || it->slot != slot || it->written)
            throw TransportError(
                "SocketTransport rank " + std::to_string(config_.rank) +
                ": peer " + std::to_string(p) +
                " delivered unexpected slot " + std::to_string(slot) +
                " in round " + std::to_string(round) +
                " (replica divergence)");
          // The authoritative substitution: this inbox payload now comes
          // from the wire, not from local computation.
          traffic.payload[it->index] = in.payloads[j];
          it->written = true;
          ++matched;
        }
        ready.pop_front();
      }
      if (fenced[static_cast<std::size_t>(p)] == 0) all_fenced = false;
    }
    if (all_fenced) break;
    if (!poll_once() &&
        now_ms() - last_receipt_ms_ > config_.stall_timeout_ms)
      throw TransportError("SocketTransport rank " +
                           std::to_string(config_.rank) +
                           ": no datagrams for " +
                           std::to_string(config_.stall_timeout_ms) +
                           "ms awaiting round " + std::to_string(round) +
                           " (peer lost?)");
  }
  if (matched != expected.size())
    throw TransportError(
        "SocketTransport rank " + std::to_string(config_.rank) + ": round " +
        std::to_string(round) + " fenced with " + std::to_string(matched) +
        " of " + std::to_string(expected.size()) +
        " expected records delivered (replica divergence)");
}

std::vector<std::uint64_t> SocketTransport::all_gather(std::uint64_t tag,
                                                       std::uint64_t value) {
  std::vector<std::uint64_t> values(static_cast<std::size_t>(config_.ranks),
                                    0);
  values[static_cast<std::size_t>(config_.rank)] = value;
  if (config_.ranks <= 1) return values;
  for (int p = 0; p < config_.ranks; ++p) {
    if (p == config_.rank) continue;
    std::vector<std::uint8_t> body;
    put_u64(body, value);
    send_reliable(p, kCtrl, static_cast<std::int64_t>(tag), std::move(body),
                  1);
  }
  std::vector<char> got(static_cast<std::size_t>(config_.ranks), 0);
  got[static_cast<std::size_t>(config_.rank)] = 1;
  last_receipt_ms_ = now_ms();
  for (;;) {
    bool all = true;
    for (int p = 0; p < config_.ranks; ++p) {
      if (got[static_cast<std::size_t>(p)] != 0) continue;
      auto& ready = links_[static_cast<std::size_t>(p)].ready;
      if (!ready.empty()) {
        Inbound& in = ready.front();
        if (in.type != kCtrl)
          throw TransportError(
              "SocketTransport rank " + std::to_string(config_.rank) +
              ": peer " + std::to_string(p) +
              " sent round traffic inside all_gather (phase divergence)");
        if (in.round != static_cast<std::int64_t>(tag))
          throw TransportError(
              "SocketTransport rank " + std::to_string(config_.rank) +
              ": all_gather tag mismatch with peer " + std::to_string(p));
        values[static_cast<std::size_t>(p)] = in.ctrl_value;
        got[static_cast<std::size_t>(p)] = 1;
        ready.pop_front();
        continue;
      }
      all = false;
    }
    if (all) break;
    if (!poll_once() &&
        now_ms() - last_receipt_ms_ > config_.stall_timeout_ms)
      throw TransportError("SocketTransport rank " +
                           std::to_string(config_.rank) +
                           ": all_gather stalled (peer lost?)");
  }
  return values;
}

void SocketTransport::shutdown(int grace_ms) {
  if (config_.ranks <= 1 || net_ == nullptr) return;
  // Keep servicing retransmits (re-ACK dups, resend our unacked tail) until
  // the cluster has been silent for the grace period: a peer whose final
  // ACK was dropped can then finish its barrier instead of stalling.
  last_receipt_ms_ = now_ms();
  while (now_ms() - last_receipt_ms_ < grace_ms) (void)poll_once();
}

}  // namespace mns::transport
