#include "transport/fault_injection.hpp"

#include <utility>

#include "transport/transport.hpp"

namespace mns::transport {

FaultInjectingTransport::FaultInjectingTransport(
    std::unique_ptr<DatagramTransport> inner, FaultConfig config)
    : inner_(std::move(inner)), config_(config), state_(config.seed) {
  if (inner_ == nullptr)
    throw TransportError("FaultInjectingTransport: null inner transport");
  if (config.seed == 0)
    throw TransportError(
        "FaultInjectingTransport: seed 0 would degenerate the splitmix64 "
        "stream");
}

std::uint64_t FaultInjectingTransport::next_u64() {
  // splitmix64 (public-domain constants): deterministic, stateless but for
  // the 64-bit counter, and good enough for Bernoulli fault draws.
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double FaultInjectingTransport::next_unit() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

void FaultInjectingTransport::tick() {
  ++ops_;
  while (!held_.empty() && held_.front().release_at <= ops_) {
    Held h = std::move(held_.front());
    held_.pop_front();
    inner_->send(h.to_rank, h.bytes);
  }
}

void FaultInjectingTransport::send(int to_rank,
                                   std::span<const std::uint8_t> datagram) {
  tick();
  const double fate = next_unit();
  if (fate < config_.drop_rate) {
    ++dropped_;
    return;
  }
  if (fate < config_.drop_rate + config_.reorder_rate) {
    // Held datagrams overtake nothing themselves but are OVERTAKEN by every
    // datagram sent while they wait — release after a seeded number of
    // later operations.
    const std::uint64_t hold =
        1 + next_u64() % static_cast<std::uint64_t>(
                             config_.max_hold_ops > 0 ? config_.max_hold_ops
                                                      : 1);
    held_.push_back(Held{to_rank,
                         std::vector<std::uint8_t>(datagram.begin(),
                                                   datagram.end()),
                         ops_ + hold});
    ++held_count_;
    return;
  }
  inner_->send(to_rank, datagram);
  if (next_unit() < config_.dup_rate) {
    ++duplicated_;
    inner_->send(to_rank, datagram);
  }
}

bool FaultInjectingTransport::receive(std::vector<std::uint8_t>& out,
                                      int timeout_ms) {
  tick();
  return inner_->receive(out, timeout_ms);
}

}  // namespace mns::transport
