// transport::FaultInjectingTransport — a DatagramTransport decorator that
// drops, duplicates, reorders and delays outbound datagrams deterministically
// from a seed (DESIGN.md §11).
//
// Purpose: prove that SocketTransport's seq/ack/retransmit discipline
// converges to IDENTICAL results under adversarial loss — the
// fault-injection tests pin run_reports_identical against the clean run and
// bound the retransmit count. Faults are applied on the SEND side only, so
// each rank's adversary is independent and reproducible from (seed, rank).
//
// Determinism guarantee (the precise statement DESIGN.md §11 makes): the
// fate of the n-th datagram a rank sends is a pure function of the seed and
// n. Retransmission TIMING still depends on the wall clock, so the total
// number of datagrams (and therefore which of them are dropped) varies
// run-to-run — what is deterministic is the fault LAW, and what the tests
// pin is that the delivered RESULTS are bit-identical regardless.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "transport/datagram.hpp"

namespace mns::transport {

struct FaultConfig {
  std::uint64_t seed = 1;
  double drop_rate = 0.0;     ///< P(outbound datagram silently vanishes)
  double dup_rate = 0.0;      ///< P(outbound datagram is sent twice)
  double reorder_rate = 0.0;  ///< P(datagram is held back, then released
                              ///  after 1..max_hold_ops later operations —
                              ///  delaying it past its successors)
  int max_hold_ops = 4;

  [[nodiscard]] bool active() const noexcept {
    return drop_rate > 0.0 || dup_rate > 0.0 || reorder_rate > 0.0;
  }
};

class FaultInjectingTransport final : public DatagramTransport {
 public:
  FaultInjectingTransport(std::unique_ptr<DatagramTransport> inner,
                          FaultConfig config);

  void send(int to_rank, std::span<const std::uint8_t> datagram) override;
  bool receive(std::vector<std::uint8_t>& out, int timeout_ms) override;

  [[nodiscard]] long long dropped() const noexcept { return dropped_; }
  [[nodiscard]] long long duplicated() const noexcept { return duplicated_; }
  [[nodiscard]] long long held() const noexcept { return held_count_; }
  [[nodiscard]] const DatagramTransport& inner() const noexcept {
    return *inner_;
  }
  [[nodiscard]] DatagramTransport& inner() noexcept { return *inner_; }

 private:
  struct Held {
    int to_rank;
    std::vector<std::uint8_t> bytes;
    std::uint64_t release_at;  ///< op counter value that frees it
  };

  /// splitmix64 stream: one draw per decision, seeded once.
  std::uint64_t next_u64();
  double next_unit();
  /// Every send/receive call ticks the op clock and releases due holds.
  void tick();

  std::unique_ptr<DatagramTransport> inner_;
  FaultConfig config_;
  std::uint64_t state_;
  std::uint64_t ops_ = 0;
  std::deque<Held> held_;
  long long dropped_ = 0;
  long long duplicated_ = 0;
  long long held_count_ = 0;
};

}  // namespace mns::transport
