#include "transport/loopback.hpp"

#include <string>
#include <utility>

namespace mns::transport {

std::vector<std::unique_ptr<SocketTransport>> make_loopback_cluster(
    const Graph& graph, int ranks, SocketTransportConfig config,
    const FaultConfig& faults) {
  if (ranks < 1)
    throw TransportError("make_loopback_cluster: ranks must be >= 1");
  std::vector<std::unique_ptr<UdpTransport>> sockets;
  std::vector<PeerAddress> peers;
  sockets.reserve(static_cast<std::size_t>(ranks));
  peers.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    sockets.push_back(std::make_unique<UdpTransport>("127.0.0.1", 0));
    peers.push_back(PeerAddress{"127.0.0.1", sockets.back()->port()});
  }
  std::vector<std::unique_ptr<SocketTransport>> cluster;
  cluster.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    sockets[static_cast<std::size_t>(r)]->set_peers(peers);
    std::unique_ptr<DatagramTransport> net =
        std::move(sockets[static_cast<std::size_t>(r)]);
    if (faults.active()) {
      FaultConfig per_rank = faults;
      per_rank.seed =
          faults.seed ^ (0x9e3779b97f4a7c15ull *
                         (static_cast<std::uint64_t>(r) + 1));
      if (per_rank.seed == 0) per_rank.seed = 1;
      net = std::make_unique<FaultInjectingTransport>(std::move(net),
                                                      per_rank);
    }
    SocketTransportConfig c = config;
    c.rank = r;
    c.ranks = ranks;
    cluster.push_back(
        std::make_unique<SocketTransport>(graph, c, std::move(net)));
  }
  return cluster;
}

}  // namespace mns::transport
