// transport::make_loopback_cluster — N SocketTransports wired to each other
// over 127.0.0.1 UDP sockets in ONE process (DESIGN.md §11).
//
// This is the test/bench harness for the socket stack: each returned
// transport is a fully real SocketTransport (seq/ack/retransmit, fences,
// the lot) bound to its own ephemeral UDP port; only the process boundary
// is missing. Drive each rank from its own thread — exchange() blocks on
// peer fences, so single-threaded lock-step driving would deadlock.
//
// With an active FaultConfig every rank's OUTBOUND datagrams pass through
// an independent FaultInjectingTransport seeded from (faults.seed, rank).
#pragma once

#include <memory>
#include <vector>

#include "transport/fault_injection.hpp"
#include "transport/socket_transport.hpp"

namespace mns::transport {

/// Binds `ranks` UDP sockets on 127.0.0.1, exchanges the port table, and
/// returns one SocketTransport per rank (index = rank). `config.rank` and
/// `config.ranks` are overwritten; the remaining knobs apply to every rank.
std::vector<std::unique_ptr<SocketTransport>> make_loopback_cluster(
    const Graph& graph, int ranks, SocketTransportConfig config = {},
    const FaultConfig& faults = {});

}  // namespace mns::transport
