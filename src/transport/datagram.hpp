// transport::DatagramTransport — the unreliable, rank-addressed datagram
// layer under SocketTransport (DESIGN.md §11).
//
// The split mirrors the classic reliable-link construction: SocketTransport
// implements sequence numbers, acks, retransmission and round fences ON TOP
// of a fair-lossy datagram service, and the datagram service itself is
// swappable — UdpTransport speaks real UDP sockets, and
// FaultInjectingTransport (fault_injection.hpp) decorates any
// DatagramTransport with seeded drop/duplicate/reorder/delay so tests can
// prove the reliability layer converges under adversarial loss.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace mns::transport {

/// Best-effort datagram delivery between a fixed set of ranks. Datagrams
/// may be dropped, duplicated, reordered or delayed; they are never
/// corrupted in flight (UDP checksums / in-memory queues). Not thread-safe:
/// one owner drives send and receive (SocketTransport progresses only
/// inside exchange(), so the lock-step protocol needs no background I/O
/// thread).
class DatagramTransport {
 public:
  virtual ~DatagramTransport() = default;

  /// Fire-and-forget send of one datagram to `to_rank`.
  virtual void send(int to_rank, std::span<const std::uint8_t> datagram) = 0;

  /// Blocks up to `timeout_ms` for one datagram; false on timeout. The
  /// sender's identity travels inside the packet header, not the transport.
  virtual bool receive(std::vector<std::uint8_t>& out, int timeout_ms) = 0;
};

/// One peer's UDP address.
struct PeerAddress {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// Real UDP (AF_INET, SOCK_DGRAM). Binding to port 0 lets the kernel pick a
/// free port — the multi-process driver binds every rank's socket BEFORE
/// forking, so the full port table is known to all ranks with no rendezvous
/// service. Maximum datagram size is bounded by kMaxDatagramBytes, kept
/// under the loopback/ethernet MTU so packets never fragment.
class UdpTransport final : public DatagramTransport {
 public:
  static constexpr std::size_t kMaxDatagramBytes = 1400;

  /// Binds to host:port (port 0 = ephemeral). Throws TransportError on
  /// socket failure.
  explicit UdpTransport(const std::string& host = "127.0.0.1",
                        std::uint16_t port = 0);
  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;
  ~UdpTransport() override;

  /// The locally bound port (resolved after an ephemeral bind).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Installs the rank -> address table (index = rank). Must be called
  /// before the first send; entries must outnumber every to_rank used.
  void set_peers(const std::vector<PeerAddress>& peers);

  void send(int to_rank, std::span<const std::uint8_t> datagram) override;
  bool receive(std::vector<std::uint8_t>& out, int timeout_ms) override;

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  // Opaque storage for sockaddr_in per peer (kept POD-copied to avoid
  // leaking <netinet/in.h> into the header).
  std::vector<std::array<std::uint8_t, 16>> peers_;
};

}  // namespace mns::transport
