#include "transport/datagram.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "transport/transport.hpp"

namespace mns::transport {

namespace {

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

UdpTransport::UdpTransport(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) throw TransportError(errno_text("UdpTransport: socket"));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw TransportError("UdpTransport: bad host '" + host + "'");
  }
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const std::string msg = errno_text("UdpTransport: bind");
    ::close(fd_);
    fd_ = -1;
    throw TransportError(msg);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const std::string msg = errno_text("UdpTransport: getsockname");
    ::close(fd_);
    fd_ = -1;
    throw TransportError(msg);
  }
  port_ = ntohs(bound.sin_port);
}

UdpTransport::~UdpTransport() {
  if (fd_ >= 0) ::close(fd_);
}

void UdpTransport::set_peers(const std::vector<PeerAddress>& peers) {
  peers_.clear();
  peers_.reserve(peers.size());
  for (const PeerAddress& p : peers) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(p.port);
    if (::inet_pton(AF_INET, p.host.c_str(), &addr.sin_addr) != 1)
      throw TransportError("UdpTransport: bad peer host '" + p.host + "'");
    std::array<std::uint8_t, 16> raw{};
    static_assert(sizeof(sockaddr_in) <= 16);
    std::memcpy(raw.data(), &addr, sizeof addr);
    peers_.push_back(raw);
  }
}

void UdpTransport::send(int to_rank, std::span<const std::uint8_t> datagram) {
  if (to_rank < 0 || static_cast<std::size_t>(to_rank) >= peers_.size())
    throw TransportError("UdpTransport: send to unknown rank " +
                         std::to_string(to_rank));
  if (datagram.size() > kMaxDatagramBytes)
    throw TransportError("UdpTransport: datagram exceeds kMaxDatagramBytes");
  sockaddr_in addr{};
  std::memcpy(&addr, peers_[static_cast<std::size_t>(to_rank)].data(),
              sizeof addr);
  // EAGAIN (a full loopback socket buffer) is treated as a drop: the
  // reliability layer above retransmits, which is exactly the fair-lossy
  // contract DatagramTransport promises.
  const ssize_t sent =
      ::sendto(fd_, datagram.data(), datagram.size(), 0,
               reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  if (sent < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
      errno != ENOBUFS && errno != ECONNREFUSED)
    throw TransportError(errno_text("UdpTransport: sendto"));
}

bool UdpTransport::receive(std::vector<std::uint8_t>& out, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  for (;;) {
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw TransportError(errno_text("UdpTransport: poll"));
    }
    if (ready == 0) return false;
    out.resize(kMaxDatagramBytes);
    const ssize_t n = ::recvfrom(fd_, out.data(), out.size(), 0, nullptr,
                                 nullptr);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
          errno == ECONNREFUSED)
        continue;
      throw TransportError(errno_text("UdpTransport: recvfrom"));
    }
    out.resize(static_cast<std::size_t>(n));
    return true;
  }
}

}  // namespace mns::transport
