// transport::Transport — the pluggable message-delivery seam of the CONGEST
// round engine (DESIGN.md §11 "Transport layer").
//
// congest::Simulator::finish_round() merges the round's sends into ONE
// canonical SoA batch (destination, packed directed slot, payload) in the
// deterministic merge order that every parity test pins (DESIGN.md §7). A
// Transport observes that batch at the round boundary — after the merge,
// before the inbox scatter — and is allowed to do exactly two things:
//
//   1. block until the round's traffic is COMPLETE at this endpoint, and
//   2. overwrite the payload bytes of deliveries this endpoint receives
//      authoritatively from a remote peer.
//
// It may never add, remove, or reorder entries: the batch's shape IS the
// bit-identical rounds/messages/inbox contract, and a transport that
// preserved anything less would change measured results. The in-process
// implementation is therefore a no-op; the socket implementation
// (socket_transport.hpp) ships cut-edge entries between OS processes with
// sequence-numbered acked delivery and substitutes the received bytes.
//
// Execution model (v1, documented in DESIGN.md §11): every rank runs the
// SAME deterministic lock-step computation over the full graph — replicated
// state machines — while message delivery across the vertex-range partition
// boundary is authoritative: a cut-edge payload delivered to a vertex this
// rank owns is taken FROM THE WIRE, not from local computation, so the
// reliability layer is load-bearing for every owned inbox. Divergence
// between replicas surfaces as a slot-mismatch TransportError at the next
// round barrier.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>

#include "congest/simulator.hpp"
#include "graph/types.hpp"

namespace mns::transport {

/// Any transport-layer failure: peer divergence, malformed protocol state,
/// a stalled link past its no-progress deadline, socket errors.
class TransportError : public std::runtime_error {
 public:
  explicit TransportError(const std::string& what)
      : std::runtime_error(what) {}
};

/// One finished round's canonical in-flight traffic, exactly as the
/// simulator merged it (DESIGN.md §9 wire format: packed directed slot
/// `2e + side` + 16-byte payload, SoA). Spans alias the simulator's arena
/// buffers and are valid only for the duration of the exchange() call.
struct RoundTraffic {
  /// The simulator's round counter AFTER this round was counted (1-based).
  long long round = 0;
  std::span<const VertexId> to;
  std::span<const std::uint32_t> slot;
  /// Mutable: an authoritative receiver substitutes wire bytes here.
  std::span<congest::Message> payload;

  [[nodiscard]] std::size_t size() const noexcept { return to.size(); }
};

/// Counters a transport accumulates over its lifetime. The starred fields
/// are DETERMINISTIC given the run (they count canonical traffic);
/// everything else depends on timing/faults and must be masked volatile by
/// diff tooling (mnsctl's volatile-key list).
struct TransportStats {
  long long rounds_exchanged = 0;  ///< * exchange() calls (== rounds fenced)
  long long wire_records = 0;      ///< * unique cut-edge records sent
  long long datagrams_sent = 0;    ///< incl. retransmits + acks
  long long datagrams_received = 0;
  long long acks_sent = 0;
  long long retransmits = 0;       ///< timed-out packets resent
  long long faults_dropped = 0;    ///< injected by FaultInjectingTransport
  long long faults_duplicated = 0;
  long long faults_held = 0;       ///< delayed/reordered datagrams
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Round barrier: returns once every payload in `traffic` is final at
  /// this endpoint. Called exactly once per Simulator::finish_round(), in
  /// round order, including for rounds with empty traffic (the barrier is
  /// what keeps distributed ranks lock-step). Throws TransportError on
  /// divergence or delivery failure; the round is then poisoned and the
  /// simulator must not be reused.
  virtual void exchange(const RoundTraffic& traffic) = 0;

  [[nodiscard]] virtual TransportStats stats() const { return {}; }
};

/// Today's sharded SoA delivery path behind the interface: everything is
/// already local, so the exchange is complete the moment the simulator's
/// deterministic merge finished. Byte-for-byte identical to running with no
/// transport installed (pinned by tests/test_transport.cpp); exists so code
/// can be written against Transport unconditionally.
class InProcessTransport final : public Transport {
 public:
  void exchange(const RoundTraffic& traffic) override {
    stats_.rounds_exchanged += 1;
    (void)traffic;
  }
  [[nodiscard]] TransportStats stats() const override { return stats_; }

 private:
  TransportStats stats_;
};

}  // namespace mns::transport
