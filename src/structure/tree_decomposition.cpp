#include "structure/tree_decomposition.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

#include "graph/algorithms.hpp"

namespace mns {

TreeDecomposition::TreeDecomposition(std::vector<std::vector<VertexId>> bags,
                                     std::vector<BagId> parent)
    : bags_(std::move(bags)), parent_(std::move(parent)) {
  if (bags_.size() != parent_.size())
    throw std::invalid_argument("TreeDecomposition: bags/parent size mismatch");
  if (bags_.empty())
    throw std::invalid_argument("TreeDecomposition: no bags");
  for (auto& b : bags_) {
    std::sort(b.begin(), b.end());
    b.erase(std::unique(b.begin(), b.end()), b.end());
  }
  children_.assign(bags_.size(), {});
  for (BagId b = 0; b < num_bags(); ++b) {
    if (parent_[b] == kInvalidBag) {
      if (root_ != kInvalidBag)
        throw std::invalid_argument("TreeDecomposition: multiple roots");
      root_ = b;
    } else {
      if (parent_[b] < 0 || parent_[b] >= num_bags())
        throw std::invalid_argument("TreeDecomposition: bad parent");
      children_[parent_[b]].push_back(b);
    }
  }
  if (root_ == kInvalidBag)
    throw std::invalid_argument("TreeDecomposition: no root");
  // Verify tree-ness (connected, acyclic) and compute depth by BFS from root.
  std::vector<int> dist(bags_.size(), -1);
  std::vector<BagId> queue{root_};
  dist[root_] = 0;
  std::size_t head = 0;
  while (head < queue.size()) {
    BagId b = queue[head++];
    depth_ = std::max(depth_, dist[b]);
    for (BagId c : children_[b]) {
      if (dist[c] != -1)
        throw std::invalid_argument("TreeDecomposition: cycle in bag tree");
      dist[c] = dist[b] + 1;
      queue.push_back(c);
    }
  }
  if (queue.size() != bags_.size())
    throw std::invalid_argument("TreeDecomposition: bag tree disconnected");
}

int TreeDecomposition::width() const {
  std::size_t w = 0;
  for (const auto& b : bags_) w = std::max(w, b.size());
  return static_cast<int>(w) - 1;
}

std::string TreeDecomposition::validate(const Graph& g) const {
  const VertexId n = g.num_vertices();
  // Axiom (i): bags cover V; also collect, per vertex, the bags holding it.
  std::vector<std::vector<BagId>> holders(n);
  for (BagId b = 0; b < num_bags(); ++b)
    for (VertexId v : bags_[b]) {
      if (v < 0 || v >= n) return "bag contains out-of-range vertex";
      holders[v].push_back(b);
    }
  for (VertexId v = 0; v < n; ++v)
    if (holders[v].empty()) {
      std::ostringstream os;
      os << "vertex " << v << " is in no bag";
      return os.str();
    }
  // Axiom (ii): holders of each vertex form a connected subtree. Check: the
  // number of holder bags whose parent is NOT a holder must be exactly 1.
  for (VertexId v = 0; v < n; ++v) {
    std::set<BagId> hs(holders[v].begin(), holders[v].end());
    int roots = 0;
    for (BagId b : hs)
      if (parent_[b] == kInvalidBag || !hs.count(parent_[b])) ++roots;
    if (roots != 1) {
      std::ostringstream os;
      os << "bags containing vertex " << v << " are not connected";
      return os.str();
    }
  }
  // Axiom (iii): every edge is inside some bag.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(e);
    bool found = false;
    for (BagId b : holders[ed.u]) {
      if (std::binary_search(bags_[b].begin(), bags_[b].end(), ed.v)) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::ostringstream os;
      os << "edge {" << ed.u << "," << ed.v << "} is covered by no bag";
      return os.str();
    }
  }
  return {};
}

std::vector<BagId> TreeDecomposition::bags_containing(VertexId v) const {
  std::vector<BagId> out;
  for (BagId b = 0; b < num_bags(); ++b)
    if (std::binary_search(bags_[b].begin(), bags_[b].end(), v))
      out.push_back(b);
  return out;
}

TreeDecomposition min_degree_decomposition(const Graph& g) {
  const VertexId n = g.num_vertices();
  if (n == 0) throw std::invalid_argument("min_degree_decomposition: empty");
  // Work on adjacency sets; eliminate min-degree vertex, fill its neighbors.
  std::vector<std::set<VertexId>> adj(n);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    adj[g.edge(e).u].insert(g.edge(e).v);
    adj[g.edge(e).v].insert(g.edge(e).u);
  }
  std::vector<char> eliminated(n, 0);
  std::vector<VertexId> order;
  order.reserve(n);
  std::vector<std::vector<VertexId>> bag_of(n);
  for (VertexId step = 0; step < n; ++step) {
    VertexId best = kInvalidVertex;
    std::size_t best_deg = static_cast<std::size_t>(n) + 1;
    for (VertexId v = 0; v < n; ++v)
      if (!eliminated[v] && adj[v].size() < best_deg) {
        best_deg = adj[v].size();
        best = v;
      }
    eliminated[best] = 1;
    order.push_back(best);
    bag_of[best].assign(adj[best].begin(), adj[best].end());
    bag_of[best].push_back(best);
    std::sort(bag_of[best].begin(), bag_of[best].end());
    // Fill: neighbors of best become a clique.
    std::vector<VertexId> nbrs(adj[best].begin(), adj[best].end());
    for (std::size_t i = 0; i < nbrs.size(); ++i)
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        adj[nbrs[i]].insert(nbrs[j]);
        adj[nbrs[j]].insert(nbrs[i]);
      }
    for (VertexId w : nbrs) adj[w].erase(best);
    adj[best].clear();
  }
  // Bag tree: parent of bag(v) = bag(u) where u = earliest-eliminated vertex
  // of bag(v) \ {v} in elimination order after v. Last eliminated is root.
  std::vector<VertexId> elim_pos(n);
  for (VertexId i = 0; i < n; ++i) elim_pos[order[i]] = i;
  std::vector<BagId> parent(n, kInvalidBag);
  std::vector<std::vector<VertexId>> bags(n);
  for (VertexId i = 0; i < n; ++i) {
    VertexId v = order[i];
    bags[i] = bag_of[v];
    VertexId succ = kInvalidVertex;
    VertexId succ_pos = n;
    for (VertexId w : bag_of[v])
      if (w != v && elim_pos[w] > i && elim_pos[w] < succ_pos) {
        succ_pos = elim_pos[w];
        succ = w;
      }
    if (succ != kInvalidVertex) parent[i] = succ_pos;
  }
  // Disconnected graphs produce several roots; chain extra roots under the
  // last bag so the structure is a single tree (bags may be shared freely).
  BagId main_root = kInvalidBag;
  for (BagId b = n - 1; b >= 0; --b)
    if (parent[b] == kInvalidBag) {
      if (main_root == kInvalidBag)
        main_root = b;
      else
        parent[b] = main_root;
    }
  return TreeDecomposition(std::move(bags), std::move(parent));
}

}  // namespace mns
