// Tree decompositions (paper §2.3.1): the substrate for the treewidth-based
// shortcut construction (Theorem 5) and for the Genus+Vortex treewidth bound
// (Lemmas 2-3).
//
// A TreeDecomposition is a rooted tree of bags (vertex subsets) satisfying the
// three axioms: (i) bags cover V, (ii) the bags containing any vertex form a
// connected subtree, (iii) every edge has both endpoints in some bag. Width =
// max bag size - 1.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace mns {

using BagId = std::int32_t;
inline constexpr BagId kInvalidBag = -1;

class TreeDecomposition {
 public:
  /// Builds a decomposition with the given bags and bag-tree parent pointers
  /// (parent[root] == kInvalidBag, exactly one root). Bag vertex lists are
  /// sorted and de-duplicated. Structural tree-ness is validated eagerly;
  /// decomposition axioms are checked by validate().
  TreeDecomposition(std::vector<std::vector<VertexId>> bags,
                    std::vector<BagId> parent);

  [[nodiscard]] BagId num_bags() const noexcept {
    return static_cast<BagId>(bags_.size());
  }
  [[nodiscard]] std::span<const VertexId> bag(BagId b) const {
    return bags_[b];
  }
  [[nodiscard]] BagId parent(BagId b) const { return parent_[b]; }
  [[nodiscard]] BagId root() const noexcept { return root_; }
  [[nodiscard]] std::span<const BagId> children(BagId b) const {
    return children_[b];
  }
  /// Depth of the bag tree (root = 0).
  [[nodiscard]] int depth() const noexcept { return depth_; }

  /// Width = max bag size - 1.
  [[nodiscard]] int width() const;

  /// Checks the three decomposition axioms against g. Returns an empty string
  /// if valid, else a human-readable description of the first violation.
  [[nodiscard]] std::string validate(const Graph& g) const;

  /// All bags containing v (sorted ascending).
  [[nodiscard]] std::vector<BagId> bags_containing(VertexId v) const;

 private:
  std::vector<std::vector<VertexId>> bags_;
  std::vector<BagId> parent_;
  std::vector<std::vector<BagId>> children_;
  BagId root_ = kInvalidBag;
  int depth_ = 0;
};

/// Greedy min-degree heuristic tree decomposition. Returns a valid
/// decomposition of any connected graph; width is heuristic (not optimal) but
/// matches the true treewidth on chordal graphs such as k-trees.
[[nodiscard]] TreeDecomposition min_degree_decomposition(const Graph& g);

}  // namespace mns
