// Combinatorial gates (Definition 17): per pair of adjacent cells, a gate
// S covering all inter-cell edges with a fence F controlling its boundary.
// Lemma 7 shows planar cell partitions of diameter d admit 36d-gates via
// extremal edges and laminar cycle regions; Lemmas 4-6 convert an
// s-combinatorial gate into 2s-cell-assignability.
//
// This module provides the gate data type, the full 6-property validator
// (the test oracle), and a boundary construction for embedded planar cells:
// gate(i,j) = endpoints of all (i,j) inter-cell edges with F = S. Properties
// (1)-(5) hold by construction; property (6)'s parameter s = Σ|F| / |C| is
// *measured* and reported (bench E7 compares it against Lemma 7's 36d), per
// DESIGN.md §4's substitution for the extremal-edge construction.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "structure/cells.hpp"

namespace mns {

struct GateSystem {
  /// Parallel arrays: fences[i] ⊆ gates[i] (sorted vertex lists).
  std::vector<std::vector<VertexId>> fences;
  std::vector<std::vector<VertexId>> gates;

  [[nodiscard]] std::size_t size() const noexcept { return gates.size(); }
};

/// Checks Definition 17's properties (1)-(5); on success writes the measured
/// s = (sum of fence sizes) / (number of cells) to `s_out` (property 6).
/// Returns "" or a description of the first violation.
[[nodiscard]] std::string validate_gates(const Graph& g,
                                         const CellPartition& cells,
                                         const GateSystem& gs, double* s_out);

/// Boundary gate construction for a cell partition of any graph: one gate
/// per adjacent cell pair consisting of the inter-cell edge endpoints.
[[nodiscard]] GateSystem build_boundary_gates(const Graph& g,
                                              const CellPartition& cells);

}  // namespace mns
