// Cell partitions (Definition 14) and β-cell-assignment (Definition 15).
//
// Cells are disjoint, connected, low-diameter vertex groups. The canonical
// construction for apex graphs (Lemma 9): remove the apices from the spanning
// tree T; every surviving subtree is one cell. The assignment relation R
// pairs cells with parts so that (i) every part misses at most 2 of the cells
// it intersects and (ii) no cell serves more than β parts; it is computed by
// the elimination procedure from the proofs of Lemmas 4-6.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/rooted_tree.hpp"

namespace mns {

using CellId = std::int32_t;
inline constexpr CellId kInvalidCell = -1;

class CellPartition {
 public:
  /// `cell_of[v]` = cell id or kInvalidCell for excluded vertices (apices).
  explicit CellPartition(std::vector<CellId> cell_of);

  [[nodiscard]] CellId num_cells() const noexcept {
    return static_cast<CellId>(members_.size());
  }
  [[nodiscard]] CellId cell_of(VertexId v) const { return cell_of_[v]; }
  [[nodiscard]] std::span<const VertexId> members(CellId c) const {
    return members_[c];
  }

  /// Valid iff every cell is non-empty and connected in g and the cell
  /// diameters (within the cell subgraph) are bounded as promised. Returns ""
  /// or a description of the violation. `max_diameter < 0` skips that check.
  [[nodiscard]] std::string validate(const Graph& g, int max_diameter) const;

 private:
  std::vector<CellId> cell_of_;
  std::vector<std::vector<VertexId>> members_;
};

/// Lemma 9's cell construction: delete `removed` (the apices) from the
/// spanning tree; each connected subtree of T - removed is a cell. Also
/// reports each cell's root (its shallowest vertex) and the root's tree
/// parent ("uplink" target — an apex or the tree root's parent, i.e. none).
struct TreeCells {
  CellPartition partition;
  /// cell -> shallowest vertex of the cell in T.
  std::vector<VertexId> cell_root;
  /// cell -> T-parent of cell_root (an element of `removed`), or
  /// kInvalidVertex if cell_root is the tree root.
  std::vector<VertexId> uplink_target;
};
[[nodiscard]] TreeCells cells_from_tree_minus_vertices(
    const RootedTree& tree, std::span<const VertexId> removed);

/// The relation R of Definition 15 plus bookkeeping.
struct CellAssignment {
  /// part -> cells assigned to it in R.
  std::vector<std::vector<CellId>> cells_of_part;
  /// part -> cells it intersects but was NOT assigned (must be <= 2 each for
  /// the construction below).
  std::vector<std::vector<CellId>> missing_cells_of_part;
  /// max over cells of the number of parts assigned to it (the measured β).
  int beta = 0;
};

/// Greedy elimination from Lemmas 4-6: repeatedly drop any part intersecting
/// at most two remaining cells (it is assigned every other cell it touched
/// already — none here, so those two cells become its "missing" cells), else
/// assign the remaining cell with fewest incident parts to all of them and
/// remove it. `intersects[p]` lists the cells part p intersects.
[[nodiscard]] CellAssignment assign_cells(
    const std::vector<std::vector<CellId>>& intersects, CellId num_cells);

/// Convenience: builds the intersection lists for parts over a partition.
[[nodiscard]] std::vector<std::vector<CellId>> cell_intersections(
    const CellPartition& cells, const std::vector<std::vector<VertexId>>& parts);

}  // namespace mns
