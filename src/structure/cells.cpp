#include "structure/cells.hpp"

#include <algorithm>
#include <queue>
#include <sstream>
#include <stdexcept>

#include "graph/algorithms.hpp"

namespace mns {

CellPartition::CellPartition(std::vector<CellId> cell_of)
    : cell_of_(std::move(cell_of)) {
  CellId max_cell = kInvalidCell;
  for (CellId c : cell_of_) {
    if (c < kInvalidCell)
      throw std::invalid_argument("CellPartition: bad cell id");
    max_cell = std::max(max_cell, c);
  }
  members_.assign(static_cast<std::size_t>(max_cell) + 1, {});
  for (VertexId v = 0; v < static_cast<VertexId>(cell_of_.size()); ++v)
    if (cell_of_[v] != kInvalidCell) members_[cell_of_[v]].push_back(v);
  for (const auto& m : members_)
    if (m.empty())
      throw std::invalid_argument("CellPartition: empty cell id in range");
}

std::string CellPartition::validate(const Graph& g, int max_diameter) const {
  if (static_cast<VertexId>(cell_of_.size()) != g.num_vertices())
    return "cell_of size differs from graph";
  for (CellId c = 0; c < num_cells(); ++c) {
    if (!is_connected_subset(g, members_[c])) {
      std::ostringstream os;
      os << "cell " << c << " is not connected";
      return os.str();
    }
    if (max_diameter >= 0) {
      InducedSubgraph sub = induced_subgraph(g, members_[c]);
      int d = diameter_exact(sub.graph);
      if (d > max_diameter) {
        std::ostringstream os;
        os << "cell " << c << " has diameter " << d << " > " << max_diameter;
        return os.str();
      }
    }
  }
  return {};
}

TreeCells cells_from_tree_minus_vertices(const RootedTree& tree,
                                         std::span<const VertexId> removed) {
  const VertexId n = tree.num_vertices();
  std::vector<char> is_removed(n, 0);
  for (VertexId v : removed) {
    if (v < 0 || v >= n)
      throw std::invalid_argument("cells_from_tree: removed vertex bad");
    is_removed[v] = 1;
  }
  TreeCells out{CellPartition(std::vector<CellId>(n, kInvalidCell)), {}, {}};
  std::vector<CellId> cell_of(n, kInvalidCell);
  std::vector<VertexId> roots;
  // Preorder guarantees parents come first, so a vertex either joins its
  // parent's cell or opens a new one.
  for (VertexId v : tree.preorder()) {
    if (is_removed[v]) continue;
    VertexId p = tree.parent(v);
    if (p != kInvalidVertex && !is_removed[p]) {
      cell_of[v] = cell_of[p];
    } else {
      cell_of[v] = static_cast<CellId>(roots.size());
      roots.push_back(v);
    }
  }
  out.partition = CellPartition(cell_of);
  out.cell_root = roots;
  out.uplink_target.reserve(roots.size());
  for (VertexId r : roots) out.uplink_target.push_back(tree.parent(r));
  return out;
}

std::vector<std::vector<CellId>> cell_intersections(
    const CellPartition& cells, const std::vector<std::vector<VertexId>>& parts) {
  std::vector<std::vector<CellId>> out(parts.size());
  for (std::size_t p = 0; p < parts.size(); ++p) {
    std::vector<CellId> touched;
    for (VertexId v : parts[p]) {
      CellId c = cells.cell_of(v);
      if (c != kInvalidCell) touched.push_back(c);
    }
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
    out[p] = std::move(touched);
  }
  return out;
}

CellAssignment assign_cells(const std::vector<std::vector<CellId>>& intersects,
                            CellId num_cells) {
  const std::size_t P = intersects.size();
  CellAssignment out;
  out.cells_of_part.assign(P, {});
  out.missing_cells_of_part.assign(P, {});

  // Incidence: cell -> incident (remaining) parts; part -> remaining cells.
  std::vector<std::vector<std::int32_t>> parts_of_cell(num_cells);
  std::vector<std::vector<CellId>> cells_of_part(P);
  for (std::size_t p = 0; p < P; ++p)
    for (CellId c : intersects[p]) {
      if (c < 0 || c >= num_cells)
        throw std::invalid_argument("assign_cells: cell id out of range");
      parts_of_cell[c].push_back(static_cast<std::int32_t>(p));
      cells_of_part[p].push_back(c);
    }

  std::vector<char> part_alive(P, 1), cell_alive(num_cells, 1);
  std::vector<int> part_deg(P), cell_deg(num_cells);
  for (std::size_t p = 0; p < P; ++p)
    part_deg[p] = static_cast<int>(cells_of_part[p].size());
  for (CellId c = 0; c < num_cells; ++c)
    cell_deg[c] = static_cast<int>(parts_of_cell[c].size());

  // Min-heap of cells by (lazy) degree.
  using CellEntry = std::pair<int, CellId>;
  std::priority_queue<CellEntry, std::vector<CellEntry>, std::greater<>> heap;
  for (CellId c = 0; c < num_cells; ++c) heap.push({cell_deg[c], c});

  std::size_t parts_left = P;
  auto drop_low_degree_parts = [&] {
    for (std::size_t p = 0; p < P; ++p) {
      if (!part_alive[p] || part_deg[p] > 2) continue;
      part_alive[p] = 0;
      --parts_left;
      for (CellId c : cells_of_part[p])
        if (cell_alive[c]) {
          out.missing_cells_of_part[p].push_back(c);
          --cell_deg[c];
          heap.push({cell_deg[c], c});
        }
    }
  };

  drop_low_degree_parts();
  while (parts_left > 0 && !heap.empty()) {
    auto [deg, c] = heap.top();
    heap.pop();
    if (!cell_alive[c] || deg != cell_deg[c]) continue;  // stale entry
    cell_alive[c] = 0;
    int assigned = 0;
    for (std::int32_t p : parts_of_cell[c])
      if (part_alive[p]) {
        out.cells_of_part[p].push_back(c);
        --part_deg[p];
        ++assigned;
      }
    out.beta = std::max(out.beta, assigned);
    drop_low_degree_parts();
  }
  return out;
}

}  // namespace mns
