#include "structure/gates.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace mns {

std::string validate_gates(const Graph& g, const CellPartition& cells,
                           const GateSystem& gs, double* s_out) {
  if (gs.fences.size() != gs.gates.size())
    return "fence/gate count mismatch";
  const VertexId n = g.num_vertices();
  for (std::size_t i = 0; i < gs.size(); ++i) {
    const auto& fence = gs.fences[i];
    const auto& gate = gs.gates[i];
    if (!std::is_sorted(fence.begin(), fence.end()) ||
        !std::is_sorted(gate.begin(), gate.end()))
      return "fence/gate lists must be sorted";
    // Property 1: F ⊆ S.
    if (!std::includes(gate.begin(), gate.end(), fence.begin(), fence.end()))
      return "property 1: fence not inside gate";
    // Property 2: ∂S ⊆ F.
    for (VertexId v : gate) {
      if (v < 0 || v >= n) return "gate vertex out of range";
      bool boundary = false;
      for (VertexId w : g.neighbors(v))
        if (!std::binary_search(gate.begin(), gate.end(), w)) boundary = true;
      if (boundary && !std::binary_search(fence.begin(), fence.end(), v)) {
        std::ostringstream os;
        os << "property 2: boundary vertex " << v << " of gate " << i
           << " missing from its fence";
        return os.str();
      }
    }
    // Property 4: gate intersects at most two cells.
    std::set<CellId> touched;
    for (VertexId v : gate)
      if (cells.cell_of(v) != kInvalidCell) touched.insert(cells.cell_of(v));
    if (touched.size() > 2) {
      std::ostringstream os;
      os << "property 4: gate " << i << " touches " << touched.size()
         << " cells";
      return os.str();
    }
  }
  // Property 3: every inter-cell edge is covered by some gate.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    VertexId a = g.edge(e).u, b = g.edge(e).v;
    CellId ca = cells.cell_of(a), cb = cells.cell_of(b);
    if (ca == cb || ca == kInvalidCell || cb == kInvalidCell) continue;
    bool covered = false;
    for (std::size_t i = 0; i < gs.size() && !covered; ++i)
      covered = std::binary_search(gs.gates[i].begin(), gs.gates[i].end(), a) &&
                std::binary_search(gs.gates[i].begin(), gs.gates[i].end(), b);
    if (!covered) {
      std::ostringstream os;
      os << "property 3: inter-cell edge {" << a << "," << b << "} uncovered";
      return os.str();
    }
  }
  // Property 5: non-fence gate vertices are private to one gate.
  {
    std::vector<int> owner(n, -1);
    for (std::size_t i = 0; i < gs.size(); ++i)
      for (VertexId v : gs.gates[i]) {
        if (std::binary_search(gs.fences[i].begin(), gs.fences[i].end(), v))
          continue;
        if (owner[v] != -1) {
          std::ostringstream os;
          os << "property 5: vertex " << v << " is non-fence in two gates";
          return os.str();
        }
        owner[v] = static_cast<int>(i);
      }
  }
  if (s_out != nullptr) {
    std::size_t total = 0;
    for (const auto& f : gs.fences) total += f.size();
    *s_out = cells.num_cells() == 0
                 ? 0.0
                 : static_cast<double>(total) / cells.num_cells();
  }
  return {};
}

GateSystem build_boundary_gates(const Graph& g, const CellPartition& cells) {
  std::map<std::pair<CellId, CellId>, std::set<VertexId>> pair_vertices;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    VertexId a = g.edge(e).u, b = g.edge(e).v;
    CellId ca = cells.cell_of(a), cb = cells.cell_of(b);
    if (ca == cb || ca == kInvalidCell || cb == kInvalidCell) continue;
    auto key = std::minmax(ca, cb);
    auto& s = pair_vertices[{key.first, key.second}];
    s.insert(a);
    s.insert(b);
  }
  GateSystem gs;
  for (auto& [key, verts] : pair_vertices) {
    std::vector<VertexId> v(verts.begin(), verts.end());
    gs.fences.push_back(v);
    gs.gates.push_back(std::move(v));
  }
  return gs;
}

}  // namespace mns
