#include "structure/clique_sum.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

namespace mns {

namespace {

void sort_unique(std::vector<VertexId>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

}  // namespace

CliqueSumDecomposition::CliqueSumDecomposition(
    std::vector<std::vector<VertexId>> bag_vertices,
    std::vector<std::vector<EdgeId>> bag_edges, std::vector<BagId> parent,
    std::vector<std::vector<VertexId>> parent_clique)
    : bag_vertices_(std::move(bag_vertices)),
      bag_edges_(std::move(bag_edges)),
      parent_(std::move(parent)),
      parent_clique_(std::move(parent_clique)) {
  const std::size_t B = bag_vertices_.size();
  if (bag_edges_.size() != B || parent_.size() != B ||
      parent_clique_.size() != B)
    throw std::invalid_argument("CliqueSumDecomposition: size mismatch");
  if (B == 0) throw std::invalid_argument("CliqueSumDecomposition: no bags");
  for (auto& b : bag_vertices_) sort_unique(b);
  for (auto& c : parent_clique_) sort_unique(c);
  for (auto& e : bag_edges_) {
    std::sort(e.begin(), e.end());
    e.erase(std::unique(e.begin(), e.end()), e.end());
  }
  children_.assign(B, {});
  for (BagId b = 0; b < num_bags(); ++b) {
    if (parent_[b] == kInvalidBag) {
      if (root_ != kInvalidBag)
        throw std::invalid_argument("CliqueSumDecomposition: multiple roots");
      root_ = b;
    } else {
      if (parent_[b] < 0 || parent_[b] >= num_bags())
        throw std::invalid_argument("CliqueSumDecomposition: bad parent");
      children_[parent_[b]].push_back(b);
    }
  }
  if (root_ == kInvalidBag)
    throw std::invalid_argument("CliqueSumDecomposition: no root");
  std::vector<int> dist(B, -1);
  std::vector<BagId> queue{root_};
  dist[root_] = 0;
  std::size_t head = 0;
  while (head < queue.size()) {
    BagId b = queue[head++];
    depth_ = std::max(depth_, dist[b]);
    for (BagId c : children_[b]) {
      if (dist[c] != -1)
        throw std::invalid_argument("CliqueSumDecomposition: cycle");
      dist[c] = dist[b] + 1;
      queue.push_back(c);
    }
  }
  if (queue.size() != B)
    throw std::invalid_argument("CliqueSumDecomposition: disconnected tree");
}

int CliqueSumDecomposition::max_clique_size() const {
  std::size_t k = 0;
  for (const auto& c : parent_clique_) k = std::max(k, c.size());
  return static_cast<int>(k);
}

std::string CliqueSumDecomposition::validate(const Graph& g) const {
  const VertexId n = g.num_vertices();
  std::vector<std::vector<BagId>> holders(n);
  for (BagId b = 0; b < num_bags(); ++b)
    for (VertexId v : bag_vertices_[b]) {
      if (v < 0 || v >= n) return "bag vertex out of range";
      holders[v].push_back(b);
    }
  // Property 1: bags cover V(G).
  for (VertexId v = 0; v < n; ++v)
    if (holders[v].empty()) {
      std::ostringstream os;
      os << "property 1: vertex " << v << " in no bag";
      return os.str();
    }
  // Property 2: every bag is a subgraph of G (edges exist, endpoints inside).
  for (BagId b = 0; b < num_bags(); ++b)
    for (EdgeId e : bag_edges_[b]) {
      if (e < 0 || e >= g.num_edges()) return "property 2: bad bag edge id";
      const Edge& ed = g.edge(e);
      if (!std::binary_search(bag_vertices_[b].begin(),
                              bag_vertices_[b].end(), ed.u) ||
          !std::binary_search(bag_vertices_[b].begin(),
                              bag_vertices_[b].end(), ed.v))
        return "property 2: bag edge endpoint outside bag";
    }
  // Property 3: Bi ∩ Bparent == Cf for every tree edge.
  for (BagId b = 0; b < num_bags(); ++b) {
    if (parent_[b] == kInvalidBag) {
      if (!parent_clique_[b].empty())
        return "property 3: root has a parent clique";
      continue;
    }
    std::vector<VertexId> inter;
    std::set_intersection(bag_vertices_[b].begin(), bag_vertices_[b].end(),
                          bag_vertices_[parent_[b]].begin(),
                          bag_vertices_[parent_[b]].end(),
                          std::back_inserter(inter));
    if (inter != parent_clique_[b]) {
      std::ostringstream os;
      os << "property 3: bag " << b
         << " intersection with parent differs from its partial clique";
      return os.str();
    }
  }
  // Property 4: per-vertex bag sets are connected in the bag tree.
  for (VertexId v = 0; v < n; ++v) {
    std::set<BagId> hs(holders[v].begin(), holders[v].end());
    int roots = 0;
    for (BagId b : hs)
      if (parent_[b] == kInvalidBag || !hs.count(parent_[b])) ++roots;
    if (roots != 1) {
      std::ostringstream os;
      os << "property 4: bag set of vertex " << v << " disconnected";
      return os.str();
    }
  }
  // Property 5: every edge of G appears in some bag.
  std::vector<char> covered(g.num_edges(), 0);
  for (BagId b = 0; b < num_bags(); ++b)
    for (EdgeId e : bag_edges_[b]) covered[e] = 1;
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    if (!covered[e]) {
      std::ostringstream os;
      os << "property 5: edge " << e << " in no bag";
      return os.str();
    }
  return {};
}

CliqueSumDecomposition clique_sum_from_tree_decomposition(
    const TreeDecomposition& td, const Graph& g) {
  const BagId B = td.num_bags();
  std::vector<std::vector<VertexId>> verts(B);
  std::vector<std::vector<EdgeId>> edges(B);
  std::vector<BagId> parent(B);
  std::vector<std::vector<VertexId>> cliques(B);
  for (BagId b = 0; b < B; ++b) {
    verts[b].assign(td.bag(b).begin(), td.bag(b).end());
    parent[b] = td.parent(b);
    // Bag edges: all edges of G induced inside the bag.
    for (std::size_t i = 0; i < verts[b].size(); ++i)
      for (std::size_t j = i + 1; j < verts[b].size(); ++j) {
        EdgeId e = g.find_edge(verts[b][i], verts[b][j]);
        if (e != kInvalidEdge) edges[b].push_back(e);
      }
    if (td.parent(b) != kInvalidBag) {
      std::set_intersection(td.bag(b).begin(), td.bag(b).end(),
                            td.bag(td.parent(b)).begin(),
                            td.bag(td.parent(b)).end(),
                            std::back_inserter(cliques[b]));
    }
  }
  return CliqueSumDecomposition(std::move(verts), std::move(edges),
                                std::move(parent), std::move(cliques));
}

FoldedDecomposition fold_decomposition(const CliqueSumDecomposition& csd) {
  const BagId B = csd.num_bags();
  // Subtree sizes (children lists are available; process reverse-BFS).
  std::vector<BagId> order;
  order.reserve(B);
  order.push_back(csd.root());
  for (std::size_t i = 0; i < order.size(); ++i)
    for (BagId c : csd.children(order[i])) order.push_back(c);
  std::vector<int> subtree(B, 1);
  for (auto it = order.rbegin(); it != order.rend(); ++it)
    if (csd.parent(*it) != kInvalidBag) subtree[csd.parent(*it)] += subtree[*it];
  std::vector<BagId> heavy(B, kInvalidBag);
  for (BagId b = 0; b < B; ++b) {
    int best = 0;
    for (BagId c : csd.children(b))
      if (subtree[c] > best) {
        best = subtree[c];
        heavy[b] = c;
      }
  }
  // Chains: heads are the root and every non-heavy child.
  std::vector<std::vector<BagId>> chains;
  std::vector<BagId> chain_of(B, kInvalidBag);
  for (BagId b : order) {
    bool is_head = (csd.parent(b) == kInvalidBag) ||
                   (heavy[csd.parent(b)] != b);
    if (!is_head) continue;
    std::vector<BagId> chain;
    for (BagId x = b; x != kInvalidBag; x = heavy[x]) {
      chain_of[x] = static_cast<BagId>(chains.size());
      chain.push_back(x);
    }
    chains.push_back(std::move(chain));
  }

  FoldedDecomposition out;
  std::vector<BagId> node_of(B, kInvalidBag);
  std::vector<BagId> fold_root_of_chain(chains.size(), kInvalidBag);

  auto new_node = [&](std::initializer_list<BagId> bags) {
    BagId id = static_cast<BagId>(out.groups.size());
    std::vector<BagId> group;
    for (BagId b : bags)
      if (b != kInvalidBag &&
          std::find(group.begin(), group.end(), b) == group.end()) {
        group.push_back(b);
        node_of[b] = id;
      }
    out.groups.push_back(std::move(group));
    out.parent.push_back(kInvalidBag);
    out.parent_separator_bags.push_back({});
    return id;
  };

  // Balanced fold of chain[l..r]; returns the fold-subtree root node.
  auto fold_range = [&](const std::vector<BagId>& chain, int l, int r,
                        auto&& self) -> BagId {
    if (l > r) return kInvalidBag;
    if (r - l + 1 <= 3) {
      // Small ranges collapse to a single node (new_node de-duplicates).
      return new_node({chain[l], chain[(l + r) / 2], chain[r]});
    }
    int mid = (l + r) / 2;
    BagId node = new_node({chain[l], chain[mid], chain[r]});
    BagId left = self(chain, l + 1, mid - 1, self);
    if (left != kInvalidBag) {
      out.parent[left] = node;
      // Double edge: partial cliques of the two crossing original edges,
      // identified by their child-side bags.
      out.parent_separator_bags[left] = {chain[l + 1], chain[mid]};
    }
    BagId right = self(chain, mid + 1, r - 1, self);
    if (right != kInvalidBag) {
      out.parent[right] = node;
      out.parent_separator_bags[right] = {chain[mid + 1], chain[r]};
    }
    return node;
  };

  for (std::size_t ci = 0; ci < chains.size(); ++ci)
    fold_root_of_chain[ci] = fold_range(
        chains[ci], 0, static_cast<int>(chains[ci].size()) - 1, fold_range);

  // Attach each chain's fold root under the node holding the chain head's
  // original parent (a single partial clique; not a double edge).
  for (std::size_t ci = 0; ci < chains.size(); ++ci) {
    BagId head = chains[ci][0];
    BagId p = csd.parent(head);
    if (p == kInvalidBag) continue;  // the root chain
    BagId attach = node_of[p];
    BagId fr = fold_root_of_chain[ci];
    require(attach != kInvalidBag && fr != kInvalidBag,
            "fold: dangling chain attachment");
    out.parent[fr] = attach;
    out.parent_separator_bags[fr] = {head};
  }

  // Depth by BFS over the folded tree.
  const BagId N = out.num_nodes();
  std::vector<std::vector<BagId>> kids(N);
  BagId root = kInvalidBag;
  for (BagId v = 0; v < N; ++v) {
    if (out.parent[v] == kInvalidBag)
      root = v;
    else
      kids[out.parent[v]].push_back(v);
  }
  require(root != kInvalidBag, "fold: no root");
  std::vector<std::pair<BagId, int>> stack{{root, 0}};
  int seen = 0;
  while (!stack.empty()) {
    auto [v, d] = stack.back();
    stack.pop_back();
    ++seen;
    out.depth = std::max(out.depth, d);
    for (BagId c : kids[v]) stack.push_back({c, d + 1});
  }
  require(seen == N, "fold: folded structure is not a tree");
  return out;
}

}  // namespace mns
