// k-clique-sum decomposition trees (Definitions 1, 7, 8) and the depth
// compression ("folding") of Theorem 7's proof (§2.2, Figure 4).
//
// A CliqueSumDecomposition records how a graph G was glued from bags
// B_1..B_l: the bag tree, each bag's vertices and edges (as subsets of G),
// and the partial clique C_f shared across each tree edge. validate() checks
// the five properties of Definition 8. fold_decomposition() compresses the
// tree to depth O(log^2 n) via heavy-light chains + balanced path folding;
// the folded tree's separators are unions of at most two partial cliques
// ("double edges" in the paper).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "structure/tree_decomposition.hpp"

namespace mns {

class CliqueSumDecomposition {
 public:
  /// `bag_vertices[i]` / `bag_edges[i]`: vertex and edge ids of bag i in G.
  /// `parent`: bag-tree structure, kInvalidBag for the single root.
  /// `parent_clique[i]`: the partial clique shared with the parent bag
  /// (empty for the root). Lists are sorted and de-duplicated on construction.
  CliqueSumDecomposition(std::vector<std::vector<VertexId>> bag_vertices,
                         std::vector<std::vector<EdgeId>> bag_edges,
                         std::vector<BagId> parent,
                         std::vector<std::vector<VertexId>> parent_clique);

  [[nodiscard]] BagId num_bags() const noexcept {
    return static_cast<BagId>(bag_vertices_.size());
  }
  [[nodiscard]] std::span<const VertexId> bag_vertices(BagId b) const {
    return bag_vertices_[b];
  }
  [[nodiscard]] std::span<const EdgeId> bag_edges(BagId b) const {
    return bag_edges_[b];
  }
  [[nodiscard]] BagId parent(BagId b) const { return parent_[b]; }
  [[nodiscard]] BagId root() const noexcept { return root_; }
  [[nodiscard]] std::span<const BagId> children(BagId b) const {
    return children_[b];
  }
  [[nodiscard]] std::span<const VertexId> parent_clique(BagId b) const {
    return parent_clique_[b];
  }
  /// Depth of the bag tree.
  [[nodiscard]] int depth() const noexcept { return depth_; }
  /// Max partial-clique size (the "k" of the k-clique-sum).
  [[nodiscard]] int max_clique_size() const;

  /// Checks Definition 8's properties (1)-(5) plus Bi ∩ Bparent == Cf.
  /// Returns empty string if valid, else a description of the violation.
  [[nodiscard]] std::string validate(const Graph& g) const;

 private:
  std::vector<std::vector<VertexId>> bag_vertices_;
  std::vector<std::vector<EdgeId>> bag_edges_;
  std::vector<BagId> parent_;
  std::vector<std::vector<VertexId>> parent_clique_;
  std::vector<std::vector<BagId>> children_;
  BagId root_ = kInvalidBag;
  int depth_ = 0;
};

/// Converts a tree decomposition into the equivalent clique-sum view: bag i
/// keeps its vertex set; bag edges are the edges of G with both endpoints in
/// the bag (assigned to the shallowest such bag); C_f = B_i ∩ B_parent.
[[nodiscard]] CliqueSumDecomposition clique_sum_from_tree_decomposition(
    const TreeDecomposition& td, const Graph& g);

/// Result of folding: a shallow tree whose nodes group original bags.
struct FoldedDecomposition {
  /// node -> original bags merged into it (1 or 3 per path-folding step).
  std::vector<std::vector<BagId>> groups;
  /// node tree (kInvalidBag for root).
  std::vector<BagId> parent;
  /// node -> original partial cliques crossing to the parent node (<= 2;
  /// two entries form a "double edge").
  std::vector<std::vector<BagId>> parent_separator_bags;
  int depth = 0;

  [[nodiscard]] BagId num_nodes() const {
    return static_cast<BagId>(groups.size());
  }
};

/// §2.2: heavy-light decomposition of the bag tree, then balanced folding of
/// every heavy chain. Resulting depth is O(log^2 B) for B bags; every node
/// has at most two children attached through double edges.
[[nodiscard]] FoldedDecomposition fold_decomposition(
    const CliqueSumDecomposition& csd);

}  // namespace mns
