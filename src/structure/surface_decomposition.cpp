#include "structure/surface_decomposition.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "graph/algorithms.hpp"
#include "graph/rooted_tree.hpp"

namespace mns {

StarTriangulation star_triangulate(const EmbeddedGraph& base) {
  const Graph& g = base.graph();
  const VertexId n = g.num_vertices();

  // Identify big faces and their vertex cycles.
  std::vector<std::vector<VertexId>> big_faces;
  for (int f = 0; f < base.num_faces(); ++f) {
    if (base.faces()[f].size() <= 3) continue;
    if (!base.face_is_simple_cycle(f))
      throw std::invalid_argument(
          "star_triangulate: face of size > 3 is not a simple cycle");
    big_faces.push_back(base.face_vertices(f));
  }

  const VertexId first_center = n;
  GraphBuilder builder(n + static_cast<VertexId>(big_faces.size()));
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    builder.add_edge(g.edge(e).u, g.edge(e).v);
  for (std::size_t i = 0; i < big_faces.size(); ++i) {
    VertexId center = first_center + static_cast<VertexId>(i);
    for (VertexId v : big_faces[i]) builder.add_edge(center, v);
  }
  Graph g1 = builder.build();

  // Rotations, expressed as neighbor sequences first, then mapped to edges.
  // For the face cycle v_0..v_{L-1}: the star edge at v_{i+1} goes right
  // after the face's arrival edge {v_i, v_{i+1}}; rotation of the center
  // lists the face in reverse order.
  std::vector<std::vector<VertexId>> nbr_rot(g1.num_vertices());
  // per original vertex: arrival edge id -> center to insert after it.
  std::vector<std::map<EdgeId, VertexId>> insert_after(n);
  for (std::size_t i = 0; i < big_faces.size(); ++i) {
    const auto& cyc = big_faces[i];
    VertexId center = first_center + static_cast<VertexId>(i);
    const std::size_t L = cyc.size();
    for (std::size_t j = 0; j < L; ++j) {
      VertexId from = cyc[j];
      VertexId to = cyc[(j + 1) % L];
      EdgeId arrival = g.find_edge(from, to);
      require(arrival != kInvalidEdge, "star_triangulate: missing face edge");
      insert_after[to].emplace(arrival, center);
    }
    // rotation of center: reverse face order.
    for (std::size_t j = 0; j < L; ++j)
      nbr_rot[center].push_back(cyc[L - 1 - j]);
  }
  for (VertexId v = 0; v < n; ++v) {
    for (EdgeId e : base.rotation()[v]) {
      nbr_rot[v].push_back(g.other_endpoint(e, v));
      auto it = insert_after[v].find(e);
      if (it != insert_after[v].end()) nbr_rot[v].push_back(it->second);
    }
  }

  std::vector<std::vector<EdgeId>> rot(g1.num_vertices());
  for (VertexId v = 0; v < g1.num_vertices(); ++v) {
    rot[v].reserve(nbr_rot[v].size());
    for (VertexId w : nbr_rot[v]) {
      EdgeId e = g1.find_edge(v, w);
      require(e != kInvalidEdge, "star_triangulate: rotation edge missing");
      rot[v].push_back(e);
    }
  }
  return StarTriangulation{EmbeddedGraph(std::move(g1), std::move(rot)),
                           first_center};
}

namespace {

/// Enforces the connectedness axiom by closing each vertex's holder set under
/// Steiner paths in the bag tree, then returns the decomposition.
TreeDecomposition repair_and_build(std::vector<std::vector<VertexId>> bags,
                                   std::vector<BagId> parent,
                                   VertexId num_graph_vertices) {
  const BagId B = static_cast<BagId>(bags.size());
  std::vector<VertexId> tree_parent(parent.begin(), parent.end());
  BagId root = kInvalidBag;
  for (BagId b = 0; b < B; ++b)
    if (parent[b] == kInvalidBag) root = b;
  require(root != kInvalidBag, "repair_and_build: no root bag");
  RootedTree bag_tree(root, std::vector<VertexId>(tree_parent.begin(),
                                                  tree_parent.end()));

  std::vector<std::vector<BagId>> holders(num_graph_vertices);
  for (BagId b = 0; b < B; ++b) {
    std::sort(bags[b].begin(), bags[b].end());
    bags[b].erase(std::unique(bags[b].begin(), bags[b].end()), bags[b].end());
    for (VertexId v : bags[b]) holders[v].push_back(b);
  }

  // DFS-order positions of bags for Steiner closure.
  std::vector<int> tin(B);
  {
    const auto& pre = bag_tree.preorder();
    for (int i = 0; i < static_cast<int>(pre.size()); ++i) tin[pre[i]] = i;
  }
  for (VertexId v = 0; v < num_graph_vertices; ++v) {
    auto& hs = holders[v];
    if (hs.size() <= 1) continue;
    std::sort(hs.begin(), hs.end(),
              [&](BagId a, BagId b) { return tin[a] < tin[b]; });
    std::set<BagId> holder_set(hs.begin(), hs.end());
    std::vector<BagId> to_add;
    for (std::size_t i = 0; i + 1 < hs.size(); ++i) {
      // Add all bags strictly inside the tree path hs[i] .. hs[i+1].
      BagId a = hs[i], b = hs[i + 1];
      BagId l = bag_tree.lca(a, b);
      for (BagId x = a; x != l; x = bag_tree.parent(x))
        if (!holder_set.count(x)) to_add.push_back(x);
      for (BagId x = b; x != l; x = bag_tree.parent(x))
        if (!holder_set.count(x)) to_add.push_back(x);
      if (!holder_set.count(l)) to_add.push_back(l);
      for (BagId x : to_add) holder_set.insert(x);
      for (BagId x : to_add) bags[x].push_back(v);
      to_add.clear();
    }
  }
  return TreeDecomposition(std::move(bags), std::move(parent));
}

}  // namespace

TreeDecomposition surface_bfs_decomposition(const EmbeddedGraph& base,
                                            VertexId root) {
  StarTriangulation st = star_triangulate(base);
  const EmbeddedGraph& emb = st.embedded;
  const Graph& g1 = emb.graph();

  BfsResult bfsres = bfs(g1, root);
  for (VertexId v = 0; v < g1.num_vertices(); ++v)
    if (!bfsres.reached(v))
      throw std::invalid_argument("surface_bfs_decomposition: disconnected");
  RootedTree tree = RootedTree::from_bfs(bfsres, root);
  std::vector<char> is_tree_edge(g1.num_edges(), 0);
  for (VertexId v = 0; v < g1.num_vertices(); ++v)
    if (v != root) is_tree_edge[tree.parent_edge(v)] = 1;

  // Face of each half-edge.
  const int F = emb.num_faces();
  std::vector<int> face_of(static_cast<std::size_t>(g1.num_edges()) * 2, -1);
  for (int f = 0; f < F; ++f)
    for (HalfEdgeId h : emb.faces()[f]) face_of[h] = f;

  // Dual BFS over non-tree edges -> dual spanning tree (the bag tree) and the
  // leftover "generator" edges (2g of them).
  std::vector<BagId> parent(F, kInvalidBag);
  std::vector<char> dual_seen(F, 0);
  std::vector<EdgeId> used_dual_edge(F, kInvalidEdge);
  std::vector<int> queue{0};
  dual_seen[0] = 1;
  std::size_t head = 0;
  while (head < queue.size()) {
    int f = queue[head++];
    for (HalfEdgeId h : emb.faces()[f]) {
      EdgeId e = h >> 1;
      if (is_tree_edge[e]) continue;
      int nf = face_of[emb.twin(h)];
      if (nf == f || dual_seen[nf]) continue;
      dual_seen[nf] = 1;
      parent[nf] = f;
      used_dual_edge[nf] = e;
      queue.push_back(nf);
    }
  }
  require(queue.size() == static_cast<std::size_t>(F),
          "surface_bfs_decomposition: dual graph over non-tree edges is "
          "disconnected");

  // Leftover non-tree edges (not used by the dual spanning tree).
  std::vector<char> used(g1.num_edges(), 0);
  for (int f = 0; f < F; ++f)
    if (used_dual_edge[f] != kInvalidEdge) used[used_dual_edge[f]] = 1;
  std::vector<VertexId> generator_path_vertices;
  for (EdgeId e = 0; e < g1.num_edges(); ++e) {
    if (is_tree_edge[e] || used[e]) continue;
    for (VertexId x : {g1.edge(e).u, g1.edge(e).v})
      for (VertexId y = x;; y = tree.parent(y)) {
        generator_path_vertices.push_back(y);
        if (y == root) break;
      }
  }
  std::sort(generator_path_vertices.begin(), generator_path_vertices.end());
  generator_path_vertices.erase(std::unique(generator_path_vertices.begin(),
                                            generator_path_vertices.end()),
                                generator_path_vertices.end());

  // Bags: root paths of each face's corners + all generator path vertices.
  std::vector<std::vector<VertexId>> bags(F);
  for (int f = 0; f < F; ++f) {
    std::vector<VertexId>& bag = bags[f];
    for (HalfEdgeId h : emb.faces()[f])
      for (VertexId y = emb.tail(h);; y = tree.parent(y)) {
        bag.push_back(y);
        if (y == root) break;
      }
    bag.insert(bag.end(), generator_path_vertices.begin(),
               generator_path_vertices.end());
  }

  TreeDecomposition td =
      repair_and_build(std::move(bags), std::move(parent), g1.num_vertices());

  // Strip the triangulation centers: they are not vertices of the base graph.
  if (st.first_center == g1.num_vertices()) return td;
  std::vector<std::vector<VertexId>> stripped(td.num_bags());
  std::vector<BagId> par(td.num_bags());
  for (BagId b = 0; b < td.num_bags(); ++b) {
    par[b] = td.parent(b);
    for (VertexId v : td.bag(b))
      if (v < st.first_center) stripped[b].push_back(v);
    if (stripped[b].empty())
      stripped[b].push_back(root);  // keep bags non-empty
  }
  return TreeDecomposition(std::move(stripped), std::move(par));
}

TreeDecomposition augment_with_vortices(const TreeDecomposition& td,
                                        const Graph& full_graph,
                                        std::span<const VortexSpec> vortices) {
  std::vector<std::vector<VertexId>> bags(td.num_bags());
  std::vector<BagId> parent(td.num_bags());
  for (BagId b = 0; b < td.num_bags(); ++b) {
    bags[b].assign(td.bag(b).begin(), td.bag(b).end());
    parent[b] = td.parent(b);
  }
  // For each internal node, add it to every bag holding one of its arc's
  // boundary vertices (Lemma 2's augmentation).
  std::vector<std::vector<BagId>> holders(full_graph.num_vertices());
  for (BagId b = 0; b < td.num_bags(); ++b)
    for (VertexId v : td.bag(b)) holders[v].push_back(b);
  for (const VortexSpec& vx : vortices) {
    if (vx.internal_nodes.size() != vx.arcs.size())
      throw std::invalid_argument("augment_with_vortices: arcs size mismatch");
    for (std::size_t i = 0; i < vx.internal_nodes.size(); ++i) {
      std::set<BagId> target;
      for (VertexId b_vertex : vx.arcs[i])
        for (BagId b : holders[b_vertex]) target.insert(b);
      for (BagId b : target) bags[b].push_back(vx.internal_nodes[i]);
    }
  }
  return TreeDecomposition(std::move(bags), std::move(parent));
}

}  // namespace mns
