// Constructive treewidth bounds for embedded graphs (Lemmas 2-3).
//
// The paper's route to shortcuts in Genus+Vortex graphs first bounds their
// treewidth: a genus-g, diameter-D graph has treewidth O((g+1)D) (Eppstein),
// and adding l vortices of depth k multiplies this by O(kl). This module
// makes those bounds constructive:
//
//   1. star_triangulate(): subdivides every face of size > 3 with a fresh
//      center vertex (keeps the embedding valid and the genus unchanged).
//   2. surface_bfs_decomposition(): BFS tree T from a root, dual spanning
//      tree over non-tree edges; bag(face) = root paths of the face corners,
//      plus the root paths of the <= 2g leftover ("generator") edges added to
//      every bag; a Steiner repair pass then enforces the connectedness axiom
//      so the result is always a valid TreeDecomposition.
//   3. augment_with_vortices(): Lemma 2's bag augmentation — each internal
//      vortex node joins every bag holding a boundary vertex of its arc.
#pragma once

#include <span>
#include <vector>

#include "graph/embedding.hpp"
#include "structure/tree_decomposition.hpp"

namespace mns {

/// One vortex (Definition 4) as recorded by the generator: internal node i
/// attaches to the boundary vertices arcs[i] (a contiguous arc of the vortex
/// boundary cycle).
struct VortexSpec {
  std::vector<VertexId> internal_nodes;
  std::vector<std::vector<VertexId>> arcs;
  std::vector<VertexId> boundary_cycle;
};

/// Embedding with star centers added inside every face of size > 3. Original
/// vertices keep their ids; centers are the vertices >= first_center. Throws
/// if a face of size > 3 is not a simple cycle (never happens for this
/// library's generators, which produce 2-connected embedded bases).
struct StarTriangulation {
  EmbeddedGraph embedded;
  VertexId first_center;
};
[[nodiscard]] StarTriangulation star_triangulate(const EmbeddedGraph& base);

/// Valid tree decomposition of the *base* graph of `base` via the BFS +
/// dual-tree construction. Width is O((g+1) * height(BFS tree)) by Eppstein's
/// argument; the validator-backed repair pass keeps the output valid on every
/// input. Centers added during triangulation are stripped from the bags.
[[nodiscard]] TreeDecomposition surface_bfs_decomposition(
    const EmbeddedGraph& base, VertexId root);

/// Lemma 2/3: extends a decomposition of the embedded base graph to the graph
/// with vortex internal nodes added. `full_graph` is the base plus all vortex
/// internals/edges. The result is a valid decomposition of `full_graph` of
/// width O(k * l * width(td)).
[[nodiscard]] TreeDecomposition augment_with_vortices(
    const TreeDecomposition& td, const Graph& full_graph,
    std::span<const VortexSpec> vortices);

}  // namespace mns
