// Part-wise aggregation — the primitive Theorem 1 accelerates. Every part
// must compute (and disseminate to all its members) the minimum of its
// members' values. Communication of part p flows over G[P_p] plus p's
// shortcut edges H_p, with the CONGEST capacity of one message per directed
// edge per round honestly simulated: parts sharing a tree edge queue behind
// each other, so congestion shows up as real measured rounds. With an empty
// shortcut this degrades to intra-part flooding — the naive baseline whose
// round count is the isolated part diameter.
#pragma once

#include <utility>

#include "congest/simulator.hpp"
#include "core/partition.hpp"
#include "core/shortcut.hpp"

namespace mns::congest {

/// A value with a tiebreaker, compared lexicographically.
struct AggValue {
  std::int64_t value = 0;
  std::int32_t aux = 0;
  friend bool operator<(const AggValue& a, const AggValue& b) {
    return std::pair(a.value, a.aux) < std::pair(b.value, b.aux);
  }
  friend bool operator==(const AggValue&, const AggValue&) = default;
};

struct AggregationResult {
  std::vector<AggValue> min_of_part;
  long long rounds = 0;
};

class PartwiseAggregator {
 public:
  /// Precomputes the per-part communication graphs. `shortcut` may be empty
  /// (edges_of_part all empty) for the no-shortcut baseline.
  PartwiseAggregator(const Graph& g, const Partition& parts,
                     const Shortcut& shortcut);

  /// Distributed min: `initial[v]` is v's input (only read for vertices that
  /// belong to a part). On return every member of part p holds
  /// min_of_part[p]; the simulator's round counter advances by the measured
  /// number of communication rounds.
  [[nodiscard]] AggregationResult aggregate_min(
      Simulator& sim, const std::vector<AggValue>& initial);

  /// Number of (node, part) participation pairs — a size/memory metric.
  [[nodiscard]] std::size_t participations() const noexcept {
    return participations_;
  }

 private:
  const Graph* g_;
  const Partition* parts_;
  // Directed-edge-indexed communication structure: for directed edge d
  // (= 2e + side), the parts that may use it.
  std::vector<std::vector<PartId>> parts_of_edge_;  // indexed by edge id
  // Per node: sorted list of parts it participates in.
  std::vector<std::vector<PartId>> parts_of_node_;
  std::size_t participations_ = 0;
};

}  // namespace mns::congest
