// Part-wise aggregation — the primitive Theorem 1 accelerates. Every part
// must compute (and disseminate to all its members) the minimum of its
// members' values. Communication of part p flows over G[P_p] plus p's
// shortcut edges H_p, with the CONGEST capacity of one message per directed
// edge per round honestly simulated: parts sharing a tree edge queue behind
// each other, so congestion shows up as real measured rounds. With an empty
// shortcut this degrades to intra-part flooding — the naive baseline whose
// round count is the isolated part diameter.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "congest/simulator.hpp"
#include "core/partition.hpp"
#include "core/shortcut.hpp"

namespace mns::congest {

/// A value with a tiebreaker, compared lexicographically.
struct AggValue {
  std::int64_t value = 0;
  std::int32_t aux = 0;
  friend bool operator<(const AggValue& a, const AggValue& b) {
    return std::pair(a.value, a.aux) < std::pair(b.value, b.aux);
  }
  friend bool operator==(const AggValue&, const AggValue&) = default;
};

struct AggregationResult {
  std::vector<AggValue> min_of_part;
  long long rounds = 0;
};

class PartwiseAggregator {
 public:
  /// Precomputes the per-part communication graphs. `shortcut` may be empty
  /// (edges_of_part all empty) for the no-shortcut baseline.
  PartwiseAggregator(const Graph& g, const Partition& parts,
                     const Shortcut& shortcut);

  /// Distributed min: `initial[v]` is v's input (only read for vertices that
  /// belong to a part). On return every member of part p holds
  /// min_of_part[p]; the simulator's round counter advances by the measured
  /// number of communication rounds.
  [[nodiscard]] AggregationResult aggregate_min(
      Simulator& sim, const std::vector<AggValue>& initial);

  /// Number of (node, part) participation pairs — a size/memory metric.
  [[nodiscard]] std::size_t participations() const noexcept {
    return participations_;
  }

  /// Raw-pointer view of the precomputed CSR machinery (members below),
  /// handed to aggregate_min's internal VertexProgram.
  struct SlotTables {
    const std::size_t* poe_off;
    const PartId* poe_flat;
    const std::size_t* pon_off;
    const PartId* pon_flat;
    const std::uint32_t* word_off;
  };
  [[nodiscard]] SlotTables slot_tables() const noexcept {
    return {poe_offset_.data(), poe_flat_.data(), pon_offset_.data(),
            pon_flat_.data(), word_off_.data()};
  }

 private:
  const Graph* g_;
  const Partition* parts_;
  // Per-edge / per-node part lists in CSR form (sorted within each range).
  // Flat arrays instead of vector-of-vectors: at n = 2^20 the m inner
  // vectors alone cost tens of MB of headers and a heap allocation each —
  // the DESIGN.md §9 memory model keeps the per-round data path flat.
  std::vector<std::size_t> poe_offset_;  // size m+1; parts of edge e
  std::vector<PartId> poe_flat_;
  std::vector<std::size_t> pon_offset_;  // size n+1; parts of node v
  std::vector<PartId> pon_flat_;
  std::size_t participations_ = 0;

  // Dirty-word offsets for aggregate_min's packed per-slot bitmasks
  // (DESIGN.md §9): directed slot d = 2e + side owns one dirty bit per part
  // of edge e, stored word-aligned in ceil(k/64) uint64 words at
  // word_off_[d]. Offsets are precomputed here (they depend only on the
  // partition); the words themselves live in the per-call program so the
  // aggregator stays read-only during rounds.
  std::vector<std::uint32_t> word_off_;  // size 2m+1

  [[nodiscard]] std::span<const PartId> parts_of_edge(EdgeId e) const {
    return {poe_flat_.data() + poe_offset_[static_cast<std::size_t>(e)],
            poe_flat_.data() + poe_offset_[static_cast<std::size_t>(e) + 1]};
  }
  [[nodiscard]] std::span<const PartId> parts_of_node(VertexId v) const {
    return {pon_flat_.data() + pon_offset_[static_cast<std::size_t>(v)],
            pon_flat_.data() + pon_offset_[static_cast<std::size_t>(v) + 1]};
  }
};

}  // namespace mns::congest
