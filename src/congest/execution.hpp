// Execution policy and worker pool for the vertex-parallel round engine
// (DESIGN.md §7). The CONGEST capacity rule — one message per directed edge
// per round — makes per-vertex send work naturally conflict-free: directed
// edge slot 2e+side is written only by its `from` endpoint, and the engine
// assigns every vertex to exactly one shard, so staging buffers never race.
// Parallelism changes WALL CLOCK only: rounds, messages, inbox contents and
// every algorithm result are bit-identical to sequential execution (the
// deterministic shard-merge in Simulator::finish_round() is what pins this
// down; see DESIGN.md §7 for the argument).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace mns::congest {

/// How many shards (worker threads) the round engine fans each round phase
/// over. threads == 1 is plain sequential execution; threads == 0 resolves
/// to std::thread::hardware_concurrency(). Any value yields bit-identical
/// rounds/messages/results — the policy is a wall-clock knob, never a
/// semantic one.
struct ExecutionPolicy {
  int threads = 1;

  /// The effective shard count (>= 1).
  [[nodiscard]] int resolved() const {
    if (threads > 0) return threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
  }
};

/// A tiny persistent fork-join pool: run(tasks, fn) executes fn(0..tasks-1)
/// across the pool (the calling thread participates) and returns when every
/// task finished. Workers sleep on a condition variable between rounds, so
/// oversubscribed configurations (threads > cores, or a 1-core CI box) stay
/// correct and merely gain nothing. The first exception thrown by any task
/// is rethrown on the calling thread after the join — Simulator::stage_send
/// validation errors propagate exactly like sequential send() throws.
class WorkerPool {
 public:
  /// Spawns `threads - 1` workers (the caller is the remaining one).
  explicit WorkerPool(int threads);
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;
  ~WorkerPool();

  [[nodiscard]] int threads() const noexcept {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Non-owning type-erased task callback. run() borrows the callable by
  /// pointer instead of wrapping it in std::function — per-phase dispatch
  /// performs NO heap allocation, which the steady-state allocation contract
  /// (DESIGN.md §9) depends on: the engine calls run() twice per round.
  using TaskFn = void (*)(void* ctx, int task);

  /// Blocks until fn(ctx, t) ran for every t in [0, tasks). Tasks are
  /// claimed dynamically; which THREAD runs a task is irrelevant to
  /// determinism because all engine state is indexed by task (shard) id,
  /// never by thread identity. Not reentrant. The callable behind `ctx`
  /// must stay alive until run() returns.
  void run(int tasks, void* ctx, TaskFn fn);

  /// Convenience adapter for lambdas: run(n, [&](int t) { ... }).
  template <typename Fn>
  void run(int tasks, Fn&& fn) {
    using Decayed = std::remove_reference_t<Fn>;
    run(tasks, const_cast<void*>(static_cast<const void*>(std::addressof(fn))),
        [](void* ctx, int task) { (*static_cast<Decayed*>(ctx))(task); });
  }

 private:
  void worker_loop();
  void claim_and_run();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< workers wait for a new generation
  std::condition_variable done_cv_;  ///< run() waits for completion
  void* job_ctx_ = nullptr;
  TaskFn job_ = nullptr;
  int tasks_ = 0;
  int next_task_ = 0;
  int finished_ = 0;
  std::uint64_t generation_ = 0;
  std::exception_ptr first_error_;
  bool shutdown_ = false;
};

}  // namespace mns::congest
