// Distributed BFS-tree construction by flooding: the O(D) primitive every
// shortcut algorithm starts from (Theorem 1 roots everything at a BFS tree).
#pragma once

#include "congest/simulator.hpp"
#include "graph/rooted_tree.hpp"

namespace mns::congest {

struct DistributedBfsResult {
  std::vector<int> dist;
  std::vector<VertexId> parent;
  std::vector<EdgeId> parent_edge;
  long long rounds = 0;  ///< rounds consumed (== eccentricity of root)
};

/// Floods from `root`; every node adopts the first sender as parent.
/// Requires a connected graph.
[[nodiscard]] DistributedBfsResult distributed_bfs(Simulator& sim,
                                                   VertexId root);

/// Convenience: RootedTree from the distributed result.
[[nodiscard]] RootedTree tree_from_distributed_bfs(
    const DistributedBfsResult& r, VertexId root);

}  // namespace mns::congest
