#include "congest/mis.hpp"

#include <algorithm>

#include "congest/vertex_program.hpp"

namespace mns::congest {

namespace {

constexpr std::int32_t kTagPriority = 0;  ///< undecided: my phase priority
constexpr std::int32_t kTagJoined = 1;    ///< I just joined the MIS
constexpr std::int32_t kTagOut = 2;       ///< I am dominated; stop messaging me

constexpr char kUndecided = 0;
constexpr char kInMis = 1;
constexpr char kOut = 2;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Two rounds per phase:
///   Priority — undecided vertices exchange (priority, id); last phase's
///              departures say kTagOut once and fall silent forever.
///   Notify   — unbeaten vertices announce kTagJoined; undecided receivers
///              become dominated.
/// All receive-side writes are v-local (beaten flag, dominated flag, the
/// per-adjacency-slot decided bits of v's own rows); status transitions and
/// list rebuilds happen at the sequential end_round barrier.
struct LubyProgram {
  const Graph& g;
  std::uint64_t seed;
  std::vector<char>& status;
  std::vector<std::size_t> adj_base;  ///< v's slot range in adj_decided
  std::vector<char> adj_decided;      ///< per directed slot: neighbor decided
  std::vector<char> beaten;           ///< some rival outranked v this phase
  std::vector<char> dominated;        ///< a neighbor joined this phase
  std::vector<VertexId> undecided;    ///< ascending id order, rebuilt per phase
  std::vector<VertexId> farewell;     ///< went out last phase; announce once
  std::vector<VertexId> winners;
  std::vector<VertexId> active;       ///< this round's frontier
  int phase = 0;
  bool notify_round = false;

  LubyProgram(Simulator& sim, std::uint64_t s, std::vector<char>& st)
      : g(sim.graph()), seed(s), status(st) {
    const VertexId n = g.num_vertices();
    adj_base.resize(static_cast<std::size_t>(n) + 1, 0);
    for (VertexId v = 0; v < n; ++v)
      adj_base[static_cast<std::size_t>(v) + 1] =
          adj_base[static_cast<std::size_t>(v)] +
          static_cast<std::size_t>(g.degree(v));
    adj_decided.assign(adj_base.back(), 0);
    beaten.assign(static_cast<std::size_t>(n), 0);
    dominated.assign(static_cast<std::size_t>(n), 0);
    undecided.reserve(static_cast<std::size_t>(n));
    for (VertexId v = 0; v < n; ++v) undecided.push_back(v);
    active = undecided;
  }

  [[nodiscard]] std::size_t slot_of(VertexId v, VertexId neighbor) const {
    const std::span<const VertexId> nb = g.neighbors(v);
    const auto it = std::lower_bound(nb.begin(), nb.end(), neighbor);
    return adj_base[static_cast<std::size_t>(v)] +
           static_cast<std::size_t>(it - nb.begin());
  }

  [[nodiscard]] std::span<const VertexId> frontier() const { return active; }

  void send(VertexId v, VertexSender& out) {
    const std::span<const EdgeId> ie = g.incident_edges(v);
    const std::size_t base = adj_base[static_cast<std::size_t>(v)];
    if (!notify_round) {
      const bool leaving = status[static_cast<std::size_t>(v)] == kOut;
      const Message msg = leaving
                              ? Message{kTagOut, 0, 0}
                              : Message{kTagPriority, 0,
                                        mis_priority(seed, phase, v)};
      for (std::size_t i = 0; i < ie.size(); ++i)
        if (!adj_decided[base + i]) out.send(ie[i], msg);
    } else {
      for (std::size_t i = 0; i < ie.size(); ++i)
        if (!adj_decided[base + i]) out.send(ie[i], Message{kTagJoined, 0, 0});
    }
  }

  void receive(VertexId v, Inbox inbox, const ShardContext&) {
    const std::int64_t mine =
        mis_priority(seed, phase, v);  // only read when undecided
    for (const Delivery& d : inbox) {
      switch (d.msg.tag) {
        case kTagPriority:
          if (status[static_cast<std::size_t>(v)] == kUndecided &&
              (d.msg.value > mine || (d.msg.value == mine && d.from < v)))
            beaten[static_cast<std::size_t>(v)] = 1;
          break;
        case kTagJoined:
          adj_decided[slot_of(v, d.from)] = 1;
          if (status[static_cast<std::size_t>(v)] == kUndecided)
            dominated[static_cast<std::size_t>(v)] = 1;
          break;
        case kTagOut:
        default:
          adj_decided[slot_of(v, d.from)] = 1;
          break;
      }
    }
  }

  void end_round() {
    if (!notify_round) {
      // Priority barrier: unbeaten undecided vertices win this phase. The
      // maximum (priority, id) is never beaten, so winners is never empty.
      farewell.clear();
      winners.clear();
      for (VertexId v : undecided)
        if (!beaten[static_cast<std::size_t>(v)])
          winners.push_back(v);
        else
          beaten[static_cast<std::size_t>(v)] = 0;
      active = winners;
      notify_round = true;
      return;
    }
    // Notify barrier: winners join, dominated vertices leave (and will say
    // farewell in the next priority round).
    std::vector<VertexId> still;
    still.reserve(undecided.size());
    for (VertexId v : winners) status[static_cast<std::size_t>(v)] = kInMis;
    for (VertexId v : undecided) {
      if (status[static_cast<std::size_t>(v)] != kUndecided) continue;
      if (dominated[static_cast<std::size_t>(v)]) {
        dominated[static_cast<std::size_t>(v)] = 0;
        status[static_cast<std::size_t>(v)] = kOut;
        farewell.push_back(v);
      } else {
        still.push_back(v);
      }
    }
    undecided.swap(still);
    ++phase;
    notify_round = false;
    // Next priority-round frontier: survivors plus the one-shot departure
    // announcements, merged in ascending id order (both lists are sorted).
    active.clear();
    if (!undecided.empty()) {
      std::merge(undecided.begin(), undecided.end(), farewell.begin(),
                 farewell.end(), std::back_inserter(active));
    }
  }
};

}  // namespace

std::int64_t mis_priority(std::uint64_t seed, int phase, VertexId v) {
  const std::uint64_t h = splitmix64(
      seed ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)) |
              (static_cast<std::uint64_t>(static_cast<std::uint32_t>(phase))
               << 32)));
  return static_cast<std::int64_t>(h >> 1);  // non-negative
}

MisResult luby_mis(Simulator& sim, const MisOptions& options) {
  const Graph& g = sim.graph();
  MisResult out;
  out.in_mis.assign(static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<char> status(static_cast<std::size_t>(g.num_vertices()),
                           kUndecided);
  LubyProgram prog(sim, options.seed, status);
  if (options.trace) {
    // Phase-granular telemetry: drive one phase (two rounds) at a time.
    long long rounds = 0;
    while (!prog.frontier().empty()) {
      const int this_phase = prog.phase;
      const long long r0 = sim.rounds();
      const long long m0 = sim.messages_sent();
      while (prog.phase == this_phase && !prog.frontier().empty())
        rounds += run_vertex_program_round(sim, prog);
      options.trace(RoundTrace{"luby-phase", this_phase + 1,
                               sim.rounds() - r0, sim.messages_sent() - m0, 0});
    }
    out.rounds = rounds;
  } else {
    out.rounds = run_vertex_program(sim, prog);
  }
  out.phases = prog.phase;
  for (std::size_t v = 0; v < status.size(); ++v)
    if (status[v] == kInMis) {
      out.in_mis[v] = 1;
      ++out.size;
    }
  return out;
}

std::vector<char> greedy_mis(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<char> in(static_cast<std::size_t>(n), 0);
  std::vector<char> blocked(static_cast<std::size_t>(n), 0);
  for (VertexId v = 0; v < n; ++v) {
    if (blocked[static_cast<std::size_t>(v)]) continue;
    in[static_cast<std::size_t>(v)] = 1;
    for (VertexId u : g.neighbors(v)) blocked[static_cast<std::size_t>(u)] = 1;
  }
  return in;
}

std::string verify_maximal_independent_set(const Graph& g,
                                           const std::vector<char>& in_mis) {
  const VertexId n = g.num_vertices();
  if (static_cast<VertexId>(in_mis.size()) != n)
    return "membership vector sized differently from the graph";
  for (VertexId v = 0; v < n; ++v) {
    bool covered = in_mis[static_cast<std::size_t>(v)] != 0;
    for (VertexId u : g.neighbors(v)) {
      if (in_mis[static_cast<std::size_t>(u)]) {
        if (in_mis[static_cast<std::size_t>(v)]) return "two adjacent members";
        covered = true;
      }
    }
    if (!covered) return "uncovered vertex: the set is not maximal";
  }
  return "";
}

}  // namespace mns::congest
