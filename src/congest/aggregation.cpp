#include "congest/aggregation.hpp"

#include <algorithm>
#include <limits>

namespace mns::congest {

namespace {
constexpr AggValue kInfinity{std::numeric_limits<std::int64_t>::max(),
                             std::numeric_limits<std::int32_t>::max()};
}  // namespace

PartwiseAggregator::PartwiseAggregator(const Graph& g, const Partition& parts,
                                       const Shortcut& shortcut)
    : g_(&g), parts_(&parts) {
  require(static_cast<PartId>(shortcut.edges_of_part.size()) ==
              parts.num_parts(),
          "PartwiseAggregator: shortcut size mismatch");
  parts_of_edge_.assign(g.num_edges(), {});
  // Intra-part graph edges.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    PartId pu = parts.part_of(g.edge(e).u);
    PartId pv = parts.part_of(g.edge(e).v);
    if (pu != kNoPart && pu == pv) parts_of_edge_[e].push_back(pu);
  }
  // Shortcut edges.
  for (PartId p = 0; p < parts.num_parts(); ++p)
    for (EdgeId e : shortcut.edges_of_part[p]) parts_of_edge_[e].push_back(p);
  for (auto& ps : parts_of_edge_) {
    std::sort(ps.begin(), ps.end());
    ps.erase(std::unique(ps.begin(), ps.end()), ps.end());
  }
  // Node participations: part membership plus incident communication edges.
  parts_of_node_.assign(g.num_vertices(), {});
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (parts.part_of(v) != kNoPart)
      parts_of_node_[v].push_back(parts.part_of(v));
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    for (PartId p : parts_of_edge_[e]) {
      parts_of_node_[g.edge(e).u].push_back(p);
      parts_of_node_[g.edge(e).v].push_back(p);
    }
  for (auto& ps : parts_of_node_) {
    std::sort(ps.begin(), ps.end());
    ps.erase(std::unique(ps.begin(), ps.end()), ps.end());
    participations_ += ps.size();
  }
}

AggregationResult PartwiseAggregator::aggregate_min(
    Simulator& sim, const std::vector<AggValue>& initial) {
  const Graph& g = *g_;
  const Partition& parts = *parts_;
  const VertexId n = g.num_vertices();
  require(static_cast<VertexId>(initial.size()) == n,
          "aggregate_min: initial size mismatch");

  // Flat per-(node, part) state.
  std::vector<std::size_t> state_offset(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId v = 0; v < n; ++v)
    state_offset[static_cast<std::size_t>(v) + 1] =
        state_offset[v] + parts_of_node_[v].size();
  std::vector<AggValue> state(state_offset[n], kInfinity);
  auto slot = [&](VertexId v, PartId p) -> std::size_t {
    const auto& ps = parts_of_node_[v];
    auto it = std::lower_bound(ps.begin(), ps.end(), p);
    require(it != ps.end() && *it == p, "aggregate_min: missing slot");
    return state_offset[v] + static_cast<std::size_t>(it - ps.begin());
  };
  for (VertexId v = 0; v < n; ++v)
    if (parts.part_of(v) != kNoPart)
      state[slot(v, parts.part_of(v))] = initial[v];

  // Dirty tracking per directed edge: parallel bitmask over parts_of_edge_.
  // Directed edge d = 2e + side (side 0: u -> v).
  std::vector<std::vector<char>> dirty(static_cast<std::size_t>(g.num_edges())
                                       * 2);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    dirty[2 * e].assign(parts_of_edge_[e].size(), 0);
    dirty[2 * e + 1].assign(parts_of_edge_[e].size(), 0);
  }
  std::vector<std::size_t> cursor(static_cast<std::size_t>(g.num_edges()) * 2,
                                  0);
  std::vector<EdgeId> active;  // directed edges with any dirty part
  std::vector<char> in_active(static_cast<std::size_t>(g.num_edges()) * 2, 0);
  auto mark_dirty = [&](EdgeId e, int side, std::size_t idx) {
    std::size_t d = 2 * static_cast<std::size_t>(e) + side;
    if (!dirty[d][idx]) dirty[d][idx] = 1;
    if (!in_active[d]) {
      in_active[d] = 1;
      active.push_back(static_cast<EdgeId>(d));
    }
  };
  // Initially every participating (node, edge, part) with a finite value is
  // dirty outward.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(e);
    for (std::size_t i = 0; i < parts_of_edge_[e].size(); ++i) {
      PartId p = parts_of_edge_[e][i];
      if (!(state[slot(ed.u, p)] == kInfinity)) mark_dirty(e, 0, i);
      if (!(state[slot(ed.v, p)] == kInfinity)) mark_dirty(e, 1, i);
    }
  }

  long long start = sim.rounds();
  std::vector<EdgeId> snapshot;
  (void)run_round_loop(
      sim,
      [&] {
        if (active.empty()) return false;
        snapshot.clear();
        snapshot.swap(active);
        for (EdgeId d : snapshot) in_active[d] = 0;
        // Each active directed edge transmits ONE part's value (round-robin).
        for (EdgeId d : snapshot) {
          EdgeId e = d / 2;
          int side = d % 2;
          const Edge& ed = g.edge(e);
          VertexId from = side == 0 ? ed.u : ed.v;
          auto& dbits = dirty[d];
          std::size_t k = dbits.size();
          std::size_t sent = k;  // index of the part sent, k = none
          for (std::size_t step = 0; step < k; ++step) {
            std::size_t i = (cursor[d] + step) % k;
            if (dbits[i]) {
              PartId p = parts_of_edge_[e][i];
              AggValue val = state[slot(from, p)];
              sim.send(from, e, Message{p, val.aux, val.value});
              dbits[i] = 0;
              sent = i;
              break;
            }
          }
          if (sent != k) {
            cursor[d] = (sent + 1) % k;
            // Still-dirty parts keep the edge active.
            for (std::size_t i = 0; i < k; ++i)
              if (dbits[i]) {
                if (!in_active[d]) {
                  in_active[d] = 1;
                  active.push_back(d);
                }
                break;
              }
          }
        }
        return true;
      },
      [&] {
        // Deliver: improvements re-dirty the receiving node's outgoing edges.
        for (VertexId v : sim.delivered_to()) {
          for (const Delivery& del : sim.inbox(v)) {
            PartId p = del.msg.tag;
            AggValue incoming{del.msg.value, del.msg.aux};
            std::size_t s = slot(v, p);
            if (incoming < state[s]) {
              state[s] = incoming;
              auto eids = g.incident_edges(v);
              for (EdgeId e2 : eids) {
                const auto& ps = parts_of_edge_[e2];
                auto it = std::lower_bound(ps.begin(), ps.end(), p);
                if (it == ps.end() || *it != p) continue;
                std::size_t idx = static_cast<std::size_t>(it - ps.begin());
                int side2 = (g.edge(e2).u == v) ? 0 : 1;
                mark_dirty(e2, side2, idx);
              }
            }
          }
        }
      });

  AggregationResult out;
  out.rounds = sim.rounds() - start;
  out.min_of_part.assign(parts.num_parts(), kInfinity);
  for (VertexId v = 0; v < n; ++v) {
    PartId p = parts.part_of(v);
    if (p != kNoPart)
      out.min_of_part[p] = std::min(out.min_of_part[p], state[slot(v, p)]);
  }
  // Convergence check: every member must hold the part minimum.
  for (VertexId v = 0; v < n; ++v) {
    PartId p = parts.part_of(v);
    if (p != kNoPart)
      require(state[slot(v, p)] == out.min_of_part[p],
              "aggregate_min: member did not converge to the part minimum");
  }
  return out;
}

}  // namespace mns::congest
