#include "congest/aggregation.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>

#include "congest/vertex_program.hpp"

namespace mns::congest {
namespace {
constexpr AggValue kInfinity{std::numeric_limits<std::int64_t>::max(),
                             std::numeric_limits<std::int32_t>::max()};

/// Sorts + dedups each CSR range of (offset, flat) in place and compacts the
/// arrays; offsets are rewritten to the deduped ranges.
void sort_unique_compact(std::vector<std::size_t>& offset,
                         std::vector<PartId>& flat) {
  std::size_t write = 0;
  std::size_t range_begin = 0;
  for (std::size_t i = 0; i + 1 < offset.size(); ++i) {
    auto* b = flat.data() + range_begin;
    auto* e = flat.data() + offset[i + 1];
    range_begin = offset[i + 1];
    std::sort(b, e);
    auto* ue = std::unique(b, e);
    offset[i] = write;
    for (auto* p = b; p != ue; ++p) flat[write++] = *p;
  }
  offset.back() = write;
  flat.resize(write);
  flat.shrink_to_fit();
}
}  // namespace

PartwiseAggregator::PartwiseAggregator(const Graph& g, const Partition& parts,
                                       const Shortcut& shortcut)
    : g_(&g), parts_(&parts) {
  require(static_cast<PartId>(shortcut.edges_of_part.size()) ==
              parts.num_parts(),
          "PartwiseAggregator: shortcut size mismatch");
  const std::size_t m = static_cast<std::size_t>(g.num_edges());
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());

  // parts-of-edge CSR: count, fill, then sort + dedup each range.
  std::vector<std::size_t> count(m, 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    PartId pu = parts.part_of(g.edge(e).u);
    PartId pv = parts.part_of(g.edge(e).v);
    if (pu != kNoPart && pu == pv) ++count[static_cast<std::size_t>(e)];
  }
  for (PartId p = 0; p < parts.num_parts(); ++p)
    for (EdgeId e : shortcut.edges_of_part[p])
      ++count[static_cast<std::size_t>(e)];
  poe_offset_.assign(m + 1, 0);
  for (std::size_t e = 0; e < m; ++e)
    poe_offset_[e + 1] = poe_offset_[e] + count[e];
  poe_flat_.resize(poe_offset_[m]);
  std::vector<std::size_t> cursor(poe_offset_.begin(), poe_offset_.end() - 1);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    PartId pu = parts.part_of(g.edge(e).u);
    PartId pv = parts.part_of(g.edge(e).v);
    if (pu != kNoPart && pu == pv)
      poe_flat_[cursor[static_cast<std::size_t>(e)]++] = pu;
  }
  for (PartId p = 0; p < parts.num_parts(); ++p)
    for (EdgeId e : shortcut.edges_of_part[p])
      poe_flat_[cursor[static_cast<std::size_t>(e)]++] = p;
  sort_unique_compact(poe_offset_, poe_flat_);

  // parts-of-node CSR: part membership plus incident communication edges.
  count.assign(n, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (parts.part_of(v) != kNoPart) ++count[static_cast<std::size_t>(v)];
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const std::size_t deg = poe_offset_[static_cast<std::size_t>(e) + 1] -
                            poe_offset_[static_cast<std::size_t>(e)];
    count[static_cast<std::size_t>(g.edge(e).u)] += deg;
    count[static_cast<std::size_t>(g.edge(e).v)] += deg;
  }
  pon_offset_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v)
    pon_offset_[v + 1] = pon_offset_[v] + count[v];
  pon_flat_.resize(pon_offset_[n]);
  cursor.assign(pon_offset_.begin(), pon_offset_.end() - 1);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (parts.part_of(v) != kNoPart)
      pon_flat_[cursor[static_cast<std::size_t>(v)]++] = parts.part_of(v);
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    for (PartId p : parts_of_edge(e)) {
      pon_flat_[cursor[static_cast<std::size_t>(g.edge(e).u)]++] = p;
      pon_flat_[cursor[static_cast<std::size_t>(g.edge(e).v)]++] = p;
    }
  sort_unique_compact(pon_offset_, pon_flat_);
  participations_ = pon_flat_.size();

  // -- per-directed-slot machinery (header comment; DESIGN.md §9) --
  const std::size_t total_bits = 2 * poe_offset_[m];
  require(total_bits < std::numeric_limits<std::uint32_t>::max() &&
              participations_ < std::numeric_limits<std::uint32_t>::max(),
          "PartwiseAggregator: instance exceeds packed 32-bit slot indexing");
  word_off_.assign(2 * m + 1, 0);
  for (std::size_t d = 0; d < 2 * m; ++d) {
    const std::size_t k = poe_offset_[d / 2 + 1] - poe_offset_[d / 2];
    word_off_[d + 1] =
        word_off_[d] + static_cast<std::uint32_t>((k + 63) / 64);
  }
}

namespace {

/// The flooding schedule of aggregate_min as a VertexProgram. Ownership
/// discipline (what makes the parallel fan-out race-free): every directed
/// slot d = 2e + side belongs to its sender endpoint from(d); dirty bits,
/// cursors and the per-vertex active-slot lists of d are touched only while
/// the engine is running from(d) — in the send phase when from(d) transmits,
/// in the receive phase when from(d) absorbs an improvement and re-dirties
/// its own outgoing slots. Per-(node, part) state is v-local by
/// construction. The only cross-vertex structure is the frontier itself,
/// assembled from PerShard lists at the barrier.
///
/// Per-slot bookkeeping is word-packed (DESIGN.md §9): slot d owns the
/// word-aligned dirty bitmask [word_off[d], word_off[d+1]) over
/// parts_of_edge(e), scanned with countr_zero — 1/8th the footprint of a
/// byte-per-part dirty array and O(k/64) for the round-robin scan and the
/// still-dirty check. The transmit order and the re-dirty order are exactly
/// the reference decoder's, so traffic is bit-identical (pinned by the
/// parity tests).
struct AggregationProgram {
  const Graph& g;
  const PartwiseAggregator::SlotTables t;  ///< precomputed (see header)
  std::vector<AggValue>& state;

  std::vector<std::uint64_t> bits;  ///< packed dirty masks, word_off layout
  std::vector<std::uint32_t> cursor;
  std::vector<char> slot_active;
  // Per vertex: owned slots with >= 1 dirty part.
  std::vector<std::vector<std::uint32_t>> active_slots;
  FrontierTracker tracker;

  [[nodiscard]] std::size_t part_count(EdgeId e) const {
    return t.poe_off[static_cast<std::size_t>(e) + 1] -
           t.poe_off[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] std::span<const PartId> edge_parts(EdgeId e) const {
    return {t.poe_flat + t.poe_off[static_cast<std::size_t>(e)],
            t.poe_flat + t.poe_off[static_cast<std::size_t>(e) + 1]};
  }
  [[nodiscard]] std::span<const PartId> node_parts(VertexId v) const {
    return {t.pon_flat + t.pon_off[static_cast<std::size_t>(v)],
            t.pon_flat + t.pon_off[static_cast<std::size_t>(v) + 1]};
  }
  /// Participation slot of (v, p); p must participate at v.
  [[nodiscard]] std::size_t node_slot(VertexId v, PartId p) const {
    const std::span<const PartId> ps = node_parts(v);
    return t.pon_off[static_cast<std::size_t>(v)] +
           static_cast<std::size_t>(
               std::lower_bound(ps.begin(), ps.end(), p) - ps.begin());
  }

  AggregationProgram(Simulator& sim, const PartwiseAggregator::SlotTables& st,
                     std::vector<AggValue>& state_in)
      : g(sim.graph()), t(st), state(state_in),
        bits(t.word_off[static_cast<std::size_t>(g.num_edges()) * 2], 0),
        cursor(static_cast<std::size_t>(g.num_edges()) * 2, 0),
        slot_active(static_cast<std::size_t>(g.num_edges()) * 2, 0),
        active_slots(static_cast<std::size_t>(g.num_vertices())),
        tracker(sim.num_shards(), g.num_vertices()) {
    // Initially every participating (node, edge, part) with a finite value
    // is dirty outward.
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const Edge& ed = g.edge(e);
      const std::span<const PartId> ps = edge_parts(e);
      for (std::size_t i = 0; i < ps.size(); ++i) {
        if (!(state[node_slot(ed.u, ps[i])] == kInfinity)) seed_dirty(e, 0, i);
        if (!(state[node_slot(ed.v, ps[i])] == kInfinity)) seed_dirty(e, 1, i);
      }
    }
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      if (!active_slots[static_cast<std::size_t>(v)].empty()) tracker.seed(v);
  }

  void set_bit(std::size_t d, std::size_t i) {
    bits[t.word_off[d] + (i >> 6)] |= std::uint64_t{1} << (i & 63);
  }

  void seed_dirty(EdgeId e, int side, std::size_t idx) {
    const std::size_t d =
        2 * static_cast<std::size_t>(e) + static_cast<std::size_t>(side);
    set_bit(d, idx);
    if (!slot_active[d]) {
      slot_active[d] = 1;
      const Edge& ed = g.edge(e);
      const VertexId owner = side == 0 ? ed.u : ed.v;
      active_slots[static_cast<std::size_t>(owner)].push_back(
          static_cast<std::uint32_t>(d));
    }
  }

  [[nodiscard]] std::span<const VertexId> frontier() const {
    return tracker.frontier();
  }

  void send(VertexId u, VertexSender& out) {
    // Each active directed slot transmits ONE part's value (round-robin) —
    // the same schedule the sequential loop ran per active edge, now grouped
    // under the owning sender.
    auto& slots = active_slots[static_cast<std::size_t>(u)];
    std::size_t kept = 0;
    for (std::size_t si = 0; si < slots.size(); ++si) {
      const std::uint32_t d = slots[si];
      const EdgeId e = static_cast<EdgeId>(d / 2);
      const std::size_t k = part_count(e);
      std::uint64_t* w = bits.data() + t.word_off[d];
      const std::size_t nw = t.word_off[d + 1] - t.word_off[d];
      const std::size_t cur = cursor[d];
      // First dirty bit in circular order from cur: scan [cur, k) then
      // [0, cur) — the same choice the per-bit reference loop makes.
      std::size_t sent = k;
      for (std::size_t wi = cur >> 6; wi < nw && sent == k; ++wi) {
        std::uint64_t mask = w[wi];
        if (wi == cur >> 6) mask &= ~std::uint64_t{0} << (cur & 63);
        if (mask != 0)
          sent = (wi << 6) +
                 static_cast<std::size_t>(std::countr_zero(mask));
      }
      for (std::size_t wi = 0; wi <= (cur >> 6) && wi < nw && sent == k;
           ++wi) {
        std::uint64_t mask = w[wi];
        if (wi == cur >> 6)
          mask &= (cur & 63) != 0
                      ? (std::uint64_t{1} << (cur & 63)) - 1
                      : 0;
        if (mask != 0)
          sent = (wi << 6) +
                 static_cast<std::size_t>(std::countr_zero(mask));
      }
      bool still_dirty = false;
      if (sent != k) {
        const PartId p =
            t.poe_flat[t.poe_off[static_cast<std::size_t>(e)] + sent];
        const AggValue val = state[node_slot(u, p)];
        out.send(e, Message{p, val.aux, val.value});
        w[sent >> 6] &= ~(std::uint64_t{1} << (sent & 63));
        cursor[d] = static_cast<std::uint32_t>((sent + 1) % k);
        for (std::size_t wi = 0; wi < nw && !still_dirty; ++wi)
          if (w[wi] != 0) still_dirty = true;
      }
      if (still_dirty)
        slots[kept++] = d;
      else
        slot_active[d] = 0;
    }
    slots.resize(kept);
    if (kept > 0) tracker.keep_from_send(u, out.shard());
  }

  void receive(VertexId v, Inbox inbox, const ShardContext& ctx) {
    bool woke = false;
    const std::span<const PartId> vparts = node_parts(v);
    const std::size_t vbase = t.pon_off[static_cast<std::size_t>(v)];
    for (const Delivery& del : inbox) {
      const PartId p = del.msg.tag;
      const AggValue incoming{del.msg.value, del.msg.aux};
      const std::size_t s =
          vbase + static_cast<std::size_t>(
                      std::lower_bound(vparts.begin(), vparts.end(), p) -
                      vparts.begin());
      if (incoming < state[s]) {
        state[s] = incoming;
        // Improvements re-dirty v's own outgoing slots for part p.
        for (EdgeId e2 : g.incident_edges(v)) {
          const std::span<const PartId> ps = edge_parts(e2);
          const auto it = std::lower_bound(ps.begin(), ps.end(), p);
          if (it == ps.end() || *it != p) continue;
          const std::size_t idx = static_cast<std::size_t>(it - ps.begin());
          const std::size_t d = 2 * static_cast<std::size_t>(e2) +
                                (g.edge(e2).u == v ? 0u : 1u);
          set_bit(d, idx);
          if (!slot_active[d]) {
            slot_active[d] = 1;
            active_slots[static_cast<std::size_t>(v)].push_back(
                static_cast<std::uint32_t>(d));
            woke = true;
          }
        }
      }
    }
    if (woke) tracker.wake_from_receive(v, ctx.shard);
  }

  void end_round() { tracker.end_round(); }
};

}  // namespace

AggregationResult PartwiseAggregator::aggregate_min(
    Simulator& sim, const std::vector<AggValue>& initial) {
  const Graph& g = *g_;
  const Partition& parts = *parts_;
  const VertexId n = g.num_vertices();
  require(static_cast<VertexId>(initial.size()) == n,
          "aggregate_min: initial size mismatch");

  // Flat per-(node, part) state, indexed by the parts-of-node CSR.
  std::vector<AggValue> state(participations_, kInfinity);
  auto slot = [&](VertexId v, PartId p) -> std::size_t {
    const std::span<const PartId> ps = parts_of_node(v);
    auto it = std::lower_bound(ps.begin(), ps.end(), p);
    require(it != ps.end() && *it == p, "aggregate_min: missing slot");
    return pon_offset_[static_cast<std::size_t>(v)] +
           static_cast<std::size_t>(it - ps.begin());
  };
  for (VertexId v = 0; v < n; ++v)
    if (parts.part_of(v) != kNoPart)
      state[slot(v, parts.part_of(v))] = initial[v];

  long long start = sim.rounds();
  AggregationProgram prog(sim, slot_tables(), state);
  (void)run_vertex_program(sim, prog);

  AggregationResult out;
  out.rounds = sim.rounds() - start;
  out.min_of_part.assign(parts.num_parts(), kInfinity);
  for (VertexId v = 0; v < n; ++v) {
    PartId p = parts.part_of(v);
    if (p != kNoPart)
      out.min_of_part[p] = std::min(out.min_of_part[p], state[slot(v, p)]);
  }
  // Convergence check: every member must hold the part minimum.
  for (VertexId v = 0; v < n; ++v) {
    PartId p = parts.part_of(v);
    if (p != kNoPart)
      require(state[slot(v, p)] == out.min_of_part[p],
              "aggregate_min: member did not converge to the part minimum");
  }
  return out;
}

}  // namespace mns::congest
