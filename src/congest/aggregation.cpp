#include "congest/aggregation.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>

#include "congest/vertex_program.hpp"

namespace mns::congest {

namespace {
constexpr AggValue kInfinity{std::numeric_limits<std::int64_t>::max(),
                             std::numeric_limits<std::int32_t>::max()};
}  // namespace

PartwiseAggregator::PartwiseAggregator(const Graph& g, const Partition& parts,
                                       const Shortcut& shortcut)
    : g_(&g), parts_(&parts) {
  require(static_cast<PartId>(shortcut.edges_of_part.size()) ==
              parts.num_parts(),
          "PartwiseAggregator: shortcut size mismatch");
  parts_of_edge_.assign(g.num_edges(), {});
  // Intra-part graph edges.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    PartId pu = parts.part_of(g.edge(e).u);
    PartId pv = parts.part_of(g.edge(e).v);
    if (pu != kNoPart && pu == pv) parts_of_edge_[e].push_back(pu);
  }
  // Shortcut edges.
  for (PartId p = 0; p < parts.num_parts(); ++p)
    for (EdgeId e : shortcut.edges_of_part[p]) parts_of_edge_[e].push_back(p);
  for (auto& ps : parts_of_edge_) {
    std::sort(ps.begin(), ps.end());
    ps.erase(std::unique(ps.begin(), ps.end()), ps.end());
  }
  // Node participations: part membership plus incident communication edges.
  parts_of_node_.assign(g.num_vertices(), {});
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (parts.part_of(v) != kNoPart)
      parts_of_node_[v].push_back(parts.part_of(v));
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    for (PartId p : parts_of_edge_[e]) {
      parts_of_node_[g.edge(e).u].push_back(p);
      parts_of_node_[g.edge(e).v].push_back(p);
    }
  for (auto& ps : parts_of_node_) {
    std::sort(ps.begin(), ps.end());
    ps.erase(std::unique(ps.begin(), ps.end()), ps.end());
    participations_ += ps.size();
  }
}

namespace {

/// The flooding schedule of aggregate_min as a VertexProgram. Ownership
/// discipline (what makes the parallel fan-out race-free): every directed
/// slot d = 2e + side belongs to its sender endpoint from(d); dirty bits,
/// cursors and the per-vertex active-slot lists of d are touched only while
/// the engine is running from(d) — in the send phase when from(d) transmits,
/// in the receive phase when from(d) absorbs an improvement and re-dirties
/// its own outgoing slots. Per-(node, part) state is v-local by
/// construction. The only cross-vertex structure is the frontier itself,
/// assembled from PerShard lists at the barrier.
template <typename SlotFn>
struct AggregationProgram {
  const Graph& g;
  const std::vector<std::vector<PartId>>& parts_of_edge;
  std::vector<AggValue>& state;
  const SlotFn& slot;  ///< templated (not std::function): called per message

  // Per directed slot (2e + side): dirty bitmask over parts_of_edge[e],
  // round-robin cursor, and membership in its owner's active list.
  std::vector<std::vector<char>> dirty;
  std::vector<std::size_t> cursor;
  std::vector<char> slot_active;
  // Per vertex: owned slots with >= 1 dirty part.
  std::vector<std::vector<std::uint32_t>> active_slots;
  FrontierTracker tracker;

  AggregationProgram(Simulator& sim,
                     const std::vector<std::vector<PartId>>& poe,
                     std::vector<AggValue>& st, const SlotFn& sl)
      : g(sim.graph()), parts_of_edge(poe), state(st), slot(sl),
        dirty(static_cast<std::size_t>(g.num_edges()) * 2),
        cursor(static_cast<std::size_t>(g.num_edges()) * 2, 0),
        slot_active(static_cast<std::size_t>(g.num_edges()) * 2, 0),
        active_slots(static_cast<std::size_t>(g.num_vertices())),
        tracker(sim.num_shards(), g.num_vertices()) {
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      dirty[2 * static_cast<std::size_t>(e)].assign(
          parts_of_edge[static_cast<std::size_t>(e)].size(), 0);
      dirty[2 * static_cast<std::size_t>(e) + 1].assign(
          parts_of_edge[static_cast<std::size_t>(e)].size(), 0);
    }
    // Initially every participating (node, edge, part) with a finite value
    // is dirty outward.
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const Edge& ed = g.edge(e);
      for (std::size_t i = 0;
           i < parts_of_edge[static_cast<std::size_t>(e)].size(); ++i) {
        PartId p = parts_of_edge[static_cast<std::size_t>(e)][i];
        if (!(state[slot(ed.u, p)] == kInfinity)) seed_dirty(e, 0, i);
        if (!(state[slot(ed.v, p)] == kInfinity)) seed_dirty(e, 1, i);
      }
    }
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      if (!active_slots[static_cast<std::size_t>(v)].empty()) tracker.seed(v);
  }

  void seed_dirty(EdgeId e, int side, std::size_t idx) {
    const std::size_t d =
        2 * static_cast<std::size_t>(e) + static_cast<std::size_t>(side);
    dirty[d][idx] = 1;
    if (!slot_active[d]) {
      slot_active[d] = 1;
      const Edge& ed = g.edge(e);
      const VertexId owner = side == 0 ? ed.u : ed.v;
      active_slots[static_cast<std::size_t>(owner)].push_back(
          static_cast<std::uint32_t>(d));
    }
  }

  [[nodiscard]] std::span<const VertexId> frontier() const {
    return tracker.frontier();
  }

  void send(VertexId u, VertexSender& out) {
    // Each active directed slot transmits ONE part's value (round-robin) —
    // the same schedule the sequential loop ran per active edge, now grouped
    // under the owning sender.
    auto& slots = active_slots[static_cast<std::size_t>(u)];
    std::size_t kept = 0;
    for (std::size_t si = 0; si < slots.size(); ++si) {
      const std::size_t d = slots[si];
      const EdgeId e = static_cast<EdgeId>(d / 2);
      auto& dbits = dirty[d];
      const std::size_t k = dbits.size();
      std::size_t sent = k;  // index of the part sent, k = none
      for (std::size_t step = 0; step < k; ++step) {
        std::size_t i = (cursor[d] + step) % k;
        if (dbits[i]) {
          PartId p = parts_of_edge[static_cast<std::size_t>(e)][i];
          AggValue val = state[slot(u, p)];
          out.send(e, Message{p, val.aux, val.value});
          dbits[i] = 0;
          sent = i;
          break;
        }
      }
      bool still_dirty = false;
      if (sent != k) {
        cursor[d] = (sent + 1) % k;
        for (std::size_t i = 0; i < k && !still_dirty; ++i)
          if (dbits[i]) still_dirty = true;
      }
      if (still_dirty)
        slots[kept++] = static_cast<std::uint32_t>(d);
      else
        slot_active[d] = 0;
    }
    slots.resize(kept);
    if (kept > 0) tracker.keep_from_send(u, out.shard());
  }

  void receive(VertexId v, std::span<const Delivery> inbox,
               const ShardContext& ctx) {
    bool woke = false;
    for (const Delivery& del : inbox) {
      PartId p = del.msg.tag;
      AggValue incoming{del.msg.value, del.msg.aux};
      std::size_t s = slot(v, p);
      if (incoming < state[s]) {
        state[s] = incoming;
        // Improvements re-dirty v's own outgoing slots for part p.
        for (EdgeId e2 : g.incident_edges(v)) {
          const auto& ps = parts_of_edge[static_cast<std::size_t>(e2)];
          auto it = std::lower_bound(ps.begin(), ps.end(), p);
          if (it == ps.end() || *it != p) continue;
          const std::size_t idx = static_cast<std::size_t>(it - ps.begin());
          const std::size_t d = 2 * static_cast<std::size_t>(e2) +
                                (g.edge(e2).u == v ? 0u : 1u);
          if (!dirty[d][idx]) dirty[d][idx] = 1;
          if (!slot_active[d]) {
            slot_active[d] = 1;
            active_slots[static_cast<std::size_t>(v)].push_back(
                static_cast<std::uint32_t>(d));
            woke = true;
          }
        }
      }
    }
    if (woke) tracker.wake_from_receive(v, ctx.shard);
  }

  void end_round() { tracker.end_round(); }
};

}  // namespace

AggregationResult PartwiseAggregator::aggregate_min(
    Simulator& sim, const std::vector<AggValue>& initial) {
  const Graph& g = *g_;
  const Partition& parts = *parts_;
  const VertexId n = g.num_vertices();
  require(static_cast<VertexId>(initial.size()) == n,
          "aggregate_min: initial size mismatch");

  // Flat per-(node, part) state.
  std::vector<std::size_t> state_offset(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId v = 0; v < n; ++v)
    state_offset[static_cast<std::size_t>(v) + 1] =
        state_offset[v] + parts_of_node_[v].size();
  std::vector<AggValue> state(state_offset[n], kInfinity);
  auto slot = [&](VertexId v, PartId p) -> std::size_t {
    const auto& ps = parts_of_node_[v];
    auto it = std::lower_bound(ps.begin(), ps.end(), p);
    require(it != ps.end() && *it == p, "aggregate_min: missing slot");
    return state_offset[v] + static_cast<std::size_t>(it - ps.begin());
  };
  for (VertexId v = 0; v < n; ++v)
    if (parts.part_of(v) != kNoPart)
      state[slot(v, parts.part_of(v))] = initial[v];

  long long start = sim.rounds();
  AggregationProgram prog(sim, parts_of_edge_, state, slot);
  (void)run_vertex_program(sim, prog);

  AggregationResult out;
  out.rounds = sim.rounds() - start;
  out.min_of_part.assign(parts.num_parts(), kInfinity);
  for (VertexId v = 0; v < n; ++v) {
    PartId p = parts.part_of(v);
    if (p != kNoPart)
      out.min_of_part[p] = std::min(out.min_of_part[p], state[slot(v, p)]);
  }
  // Convergence check: every member must hold the part minimum.
  for (VertexId v = 0; v < n; ++v) {
    PartId p = parts.part_of(v);
    if (p != kNoPart)
      require(state[slot(v, p)] == out.min_of_part[p],
              "aggregate_min: member did not converge to the part minimum");
  }
  return out;
}

}  // namespace mns::congest
