#include "congest/solver_core.hpp"

#include <algorithm>
#include <utility>

#include "core/incremental.hpp"
#include "io/fnv.hpp"
#include "io/snapshot.hpp"

namespace mns::congest {

SolverCore::SolverCore(Graph g, StructuralCertificate certificate,
                       CoreConfig config)
    : SolverCore(std::make_shared<const Graph>(std::move(g)),
                 std::move(certificate), std::move(config)) {}

SolverCore::SolverCore(std::shared_ptr<const Graph> g,
                       StructuralCertificate certificate, CoreConfig config)
    : g_(std::move(g)),
      cert_(std::move(certificate)),
      tree_factory_(config.tree ? std::move(config.tree)
                                : center_tree_factory()),
      engine_(config.engine != nullptr ? config.engine
                                       : &ShortcutEngine::global()),
      cache_capacity_(std::max<std::size_t>(1, config.cache_capacity)),
      ldd_options_(config.ldd) {
  require(g_ != nullptr, "SolverCore: null graph");
}

const RootedTree& SolverCore::tree() const {
  std::call_once(tree_once_, [&] { tree_.emplace(tree_factory_(*g_)); });
  return *tree_;
}

const LddDecomposition& SolverCore::ldd() const {
  std::call_once(ldd_once_, [&] { ldd_.emplace(ldd_decompose(*g_, ldd_options_)); });
  return *ldd_;
}

std::uint64_t SolverCore::partition_fingerprint(
    PartId num_parts, std::span<const PartId> part_of) {
  io::Fnv64 h;
  h.mix_u64(static_cast<std::uint64_t>(num_parts));
  for (PartId p : part_of)
    h.mix_u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(p)));
  return h.value();
}

std::size_t SolverCore::insert_locked(
    std::uint64_t key, std::vector<PartId> part_of,
    std::shared_ptr<const Shortcut> shortcut) const {
  // Insert-once: a racing builder of the same partition refreshes the
  // resident entry instead of storing a duplicate (the builds are
  // deterministic, so the kept shortcut equals the dropped one).
  auto idx = index_.find(key);
  if (idx != index_.end()) {
    for (auto it : idx->second) {
      if (it->part_of.size() == part_of.size() &&
          std::equal(part_of.begin(), part_of.end(), it->part_of.begin())) {
        it->last_use.store(next_use(), std::memory_order_relaxed);
        return 0;
      }
    }
  }
  std::size_t evicted = 0;
  while (entries_.size() >= cache_capacity_) {
    // Exact LRU: evict the entry with the smallest use stamp. The stamps
    // come from one atomic clock, so the eviction order is the total hit
    // order even when the hits raced on the shared-locked path.
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it)
      if (it->last_use.load(std::memory_order_relaxed) <
          victim->last_use.load(std::memory_order_relaxed))
        victim = it;
    auto vidx = index_.find(victim->key);
    if (vidx != index_.end()) {
      auto& slots = vidx->second;
      slots.erase(std::remove(slots.begin(), slots.end(), victim),
                  slots.end());
      if (slots.empty()) index_.erase(vidx);
    }
    entries_.erase(victim);
    ++evicted;
  }
  entries_.emplace_front(key, std::move(part_of), std::move(shortcut),
                         next_use());
  index_[key].push_back(entries_.begin());
  evictions_.fetch_add(static_cast<long long>(evicted),
                       std::memory_order_relaxed);
  return evicted;
}

SolverCore::Acquired SolverCore::acquire(const Partition& parts,
                                         bool use_cache) const {
  if (use_cache) {
    const std::uint64_t key = fingerprint(parts.num_parts(),
                                          parts.part_of_all());
    {
      std::shared_lock<std::shared_mutex> lock(cache_mutex_);
      auto idx = index_.find(key);
      if (idx != index_.end()) {
        auto span = parts.part_of_all();
        for (auto it : idx->second) {
          if (it->part_of.size() == span.size() &&
              std::equal(span.begin(), span.end(), it->part_of.begin())) {
            it->last_use.store(next_use(), std::memory_order_relaxed);
            hits_.fetch_add(1, std::memory_order_relaxed);
            return Acquired{it->shortcut, /*fresh=*/false, /*hit=*/true};
          }
        }
      }
    }
    // Miss: build OUTSIDE any lock (constructions are the expensive part and
    // must not serialize concurrent requests), then insert once.
    misses_.fetch_add(1, std::memory_order_relaxed);
    auto built = std::make_shared<const Shortcut>(
        engine_->build_shortcut(*g_, tree(), parts, cert_));
    auto span = parts.part_of_all();
    std::size_t evicted = 0;
    {
      std::unique_lock<std::shared_mutex> lock(cache_mutex_);
      evicted = insert_locked(
          key, std::vector<PartId>(span.begin(), span.end()), built);
    }
    return Acquired{std::move(built), /*fresh=*/true, /*hit=*/false, evicted};
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  auto built = std::make_shared<const Shortcut>(
      engine_->build_shortcut(*g_, tree(), parts, cert_));
  return Acquired{std::move(built), /*fresh=*/true, /*hit=*/false};
}

BuildResult SolverCore::analyze(const Partition& parts) const {
  BuildResult out = engine_->build(*g_, tree(), parts, cert_);
  // Seed the cache so a following solve over the same partition hits
  // (counter-neutral: analysis is not query traffic).
  auto span = parts.part_of_all();
  const std::uint64_t key = fingerprint(parts.num_parts(), span);
  std::unique_lock<std::shared_mutex> lock(cache_mutex_);
  (void)insert_locked(key, std::vector<PartId>(span.begin(), span.end()),
                      std::make_shared<const Shortcut>(out.shortcut));
  return out;
}

SolverCore::CacheStats SolverCore::cache_stats() const noexcept {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.entries = cache_size();
  s.capacity = cache_capacity_;
  return s;
}

UpdateHistory SolverCore::history() const noexcept {
  UpdateHistory h = history_;
  h.updates_applied += weight_updates_.load(std::memory_order_relaxed);
  return h;
}

std::size_t SolverCore::cache_size() const noexcept {
  std::shared_lock<std::shared_mutex> lock(cache_mutex_);
  return entries_.size();
}

void SolverCore::clear_cache() const {
  std::unique_lock<std::shared_mutex> lock(cache_mutex_);
  entries_.clear();
  index_.clear();
}

std::vector<io::CachedShortcut> SolverCore::export_cache() const {
  std::shared_lock<std::shared_mutex> lock(cache_mutex_);
  std::vector<const CacheEntry*> order;
  order.reserve(entries_.size());
  for (const CacheEntry& e : entries_) order.push_back(&e);
  // MRU first == descending use stamp (stamps are unique: one atomic clock).
  std::sort(order.begin(), order.end(),
            [](const CacheEntry* a, const CacheEntry* b) {
              return a->last_use.load(std::memory_order_relaxed) >
                     b->last_use.load(std::memory_order_relaxed);
            });
  std::vector<io::CachedShortcut> out;
  out.reserve(order.size());
  for (const CacheEntry* e : order)
    out.push_back(io::CachedShortcut{e->part_of, *e->shortcut});
  return out;
}

void SolverCore::seed_cache(std::vector<PartId> part_of,
                            std::shared_ptr<const Shortcut> shortcut) const {
  PartId num_parts = 0;
  for (PartId p : part_of)
    if (p >= num_parts) num_parts = static_cast<PartId>(p + 1);
  const std::uint64_t key = fingerprint(num_parts, part_of);
  std::unique_lock<std::shared_mutex> lock(cache_mutex_);
  (void)insert_locked(key, std::move(part_of), std::move(shortcut));
}

std::shared_ptr<const SolverCore> SolverCore::update(const UpdateBatch& batch,
                                                     UpdateStats& stats) const {
  require(batch.structural(),
          "SolverCore::update: weight-only batches need no new core");
  GraphDelta delta = apply_delta(*g_, batch);
  StructuralCertificate cert =
      update_certificate(cert_, *g_, delta.graph, delta, batch);

  // Dirty test works in OLD vertex ids (cached part_of lives there): a
  // removed vertex, or a surviving vertex that is structurally touched.
  const VertexId old_n = g_->num_vertices();
  std::vector<char> touched_old(static_cast<std::size_t>(old_n), 0);
  for (VertexId v = 0; v < old_n; ++v) {
    const VertexId nv = delta.vertex_map[static_cast<std::size_t>(v)];
    touched_old[static_cast<std::size_t>(v)] =
        nv == kInvalidVertex ? char{1}
                             : delta.touched[static_cast<std::size_t>(nv)];
  }

  CoreConfig cfg;
  cfg.tree = tree_factory_;
  cfg.engine = engine_;
  cfg.cache_capacity = cache_capacity_;
  cfg.ldd = ldd_options_;
  auto core = std::make_shared<SolverCore>(
      std::make_shared<const Graph>(std::move(delta.graph)), std::move(cert),
      std::move(cfg));
  const VertexId new_n = core->graph().num_vertices();

  stats.structural = true;
  stats.subpaths_rebuilt = 0;
  // Patch the spanning tree only if this core ever built one; a cold core
  // stays cold (the successor's factory builds fresh on first use).
  if (tree_.has_value()) {
    TreePatch patch = patch_tree(*tree_, core->graph(), delta);
    stats.subpaths_rebuilt = patch.subpaths_rebuilt;
    std::call_once(core->tree_once_, [&] {
      core->tree_.emplace(patch.root, std::move(patch.parent),
                          std::move(patch.parent_edge));
    });
  }

  // Migrate surviving cache entries, LRU-first so relative recency carries
  // over. An entry is dirty iff its partition contains a touched vertex or
  // its shortcut lost an edge; everything else stays live as-is (remapped
  // ids) — no epoch-wide flush.
  stats.entries_kept = 0;
  stats.entries_invalidated = 0;
  {
    std::shared_lock<std::shared_mutex> lock(cache_mutex_);
    std::vector<const CacheEntry*> order;
    order.reserve(entries_.size());
    for (const CacheEntry& e : entries_) order.push_back(&e);
    std::sort(order.begin(), order.end(),
              [](const CacheEntry* a, const CacheEntry* b) {
                return a->last_use.load(std::memory_order_relaxed) <
                       b->last_use.load(std::memory_order_relaxed);
              });
    for (const CacheEntry* e : order) {
      bool dirty = false;
      for (VertexId v = 0; v < old_n && !dirty; ++v)
        dirty = touched_old[static_cast<std::size_t>(v)] &&
                e->part_of[static_cast<std::size_t>(v)] != kNoPart;
      for (const auto& part_edges : e->shortcut->edges_of_part)
        for (EdgeId pe : part_edges) {
          if (dirty) break;
          dirty = delta.edge_map[static_cast<std::size_t>(pe)] == kInvalidEdge;
        }
      if (dirty) {
        ++stats.entries_invalidated;
        continue;
      }
      std::vector<PartId> part_of(static_cast<std::size_t>(new_n), kNoPart);
      for (VertexId v = 0; v < old_n; ++v) {
        const VertexId nv = delta.vertex_map[static_cast<std::size_t>(v)];
        if (nv != kInvalidVertex)
          part_of[static_cast<std::size_t>(nv)] =
              e->part_of[static_cast<std::size_t>(v)];
      }
      auto shortcut = std::make_shared<Shortcut>();
      shortcut->edges_of_part.reserve(e->shortcut->edges_of_part.size());
      for (const auto& part_edges : e->shortcut->edges_of_part) {
        std::vector<EdgeId> mapped;
        mapped.reserve(part_edges.size());
        for (EdgeId pe : part_edges)
          mapped.push_back(delta.edge_map[static_cast<std::size_t>(pe)]);
        shortcut->edges_of_part.push_back(std::move(mapped));
      }
      core->seed_cache(std::move(part_of),
                       std::shared_ptr<const Shortcut>(std::move(shortcut)));
      ++stats.entries_kept;
    }
  }

  stats.vertex_map = std::move(delta.vertex_map);
  stats.edge_map = std::move(delta.edge_map);

  // Lifetime counters and churn telemetry carry into the successor.
  core->hits_.store(hits_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  core->misses_.store(misses_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  core->evictions_.store(evictions_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  core->history_ = history();
  core->history_.updates_applied += 1;
  core->history_.entries_kept += stats.entries_kept;
  core->history_.entries_invalidated += stats.entries_invalidated;
  core->history_.subpaths_rebuilt += stats.subpaths_rebuilt;
  return core;
}

std::shared_ptr<const SolverCore> SolverCore::restore(io::Snapshot&& snapshot,
                                                      CoreConfig config) {
  auto core = std::make_shared<SolverCore>(std::move(snapshot.graph),
                                           std::move(snapshot.certificate),
                                           std::move(config));
  const VertexId n = core->graph().num_vertices();
  if (snapshot.tree) {
    io::TreeSnapshot& ts = *snapshot.tree;
    if (ts.parent.size() != static_cast<std::size_t>(n))
      throw io::SnapshotError("snapshot: tree size != vertex count");
    std::call_once(core->tree_once_, [&] {
      core->tree_.emplace(ts.root, std::move(ts.parent),
                          std::move(ts.parent_edge));
    });
  }
  // Re-key every cached shortcut under THIS core's partition fingerprints,
  // seeding LRU-first so the snapshot's MRU entry ends up most recent.
  for (auto it = snapshot.shortcuts.rbegin(); it != snapshot.shortcuts.rend();
       ++it) {
    if (it->part_of.size() != static_cast<std::size_t>(n))
      throw io::SnapshotError("snapshot: cached part map size != vertex count");
    for (PartId p : it->part_of) {
      // decode_snapshot validates this too; re-check here so a
      // caller-constructed Snapshot cannot smuggle ids past the cache
      // (p < n also keeps p + 1 clear of signed overflow in seed_cache).
      if (p < kNoPart || p >= n)
        throw io::SnapshotError("snapshot: cached part id out of range");
    }
    core->seed_cache(std::move(it->part_of),
                     std::make_shared<const Shortcut>(std::move(it->shortcut)));
  }
  core->history_ = snapshot.history;
  return core;
}

}  // namespace mns::congest
