#include "congest/execution.hpp"

#include <algorithm>

namespace mns::congest {

WorkerPool::WorkerPool(int threads) {
  const int extra = std::max(0, threads - 1);
  workers_.reserve(static_cast<std::size_t>(extra));
  for (int i = 0; i < extra; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkerPool::claim_and_run() {
  // mutex_ is held on entry and exit; released around each task body.
  while (next_task_ < tasks_) {
    const int task = next_task_++;
    void* ctx = job_ctx_;
    const TaskFn job = job_;
    mutex_.unlock();
    std::exception_ptr error;
    try {
      job(ctx, task);
    } catch (...) {
      error = std::current_exception();
    }
    mutex_.lock();
    if (error && !first_error_) first_error_ = error;
    ++finished_;
  }
}

void WorkerPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  std::uint64_t seen = 0;
  for (;;) {
    work_cv_.wait(lock,
                  [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    seen = generation_;
    claim_and_run();
    if (finished_ == tasks_) done_cv_.notify_all();
  }
}

void WorkerPool::run(int tasks, void* ctx, TaskFn fn) {
  if (tasks <= 0) return;
  std::unique_lock<std::mutex> lock(mutex_);
  job_ctx_ = ctx;
  job_ = fn;
  tasks_ = tasks;
  next_task_ = 0;
  finished_ = 0;
  first_error_ = nullptr;
  ++generation_;
  if (tasks > 1) work_cv_.notify_all();
  claim_and_run();  // the calling thread participates
  done_cv_.wait(lock, [&] { return finished_ == tasks_; });
  job_ = nullptr;
  job_ctx_ = nullptr;
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace mns::congest
