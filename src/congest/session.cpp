#include "congest/session.hpp"

#include <utility>

#include "io/snapshot.hpp"

namespace mns::congest {

namespace {

CoreConfig core_config(const SessionConfig& config) {
  CoreConfig cc;
  cc.tree = config.tree;
  cc.engine = config.engine;
  cc.cache_capacity = config.cache_capacity;
  cc.ldd = config.ldd;
  return cc;
}

}  // namespace

Session::Session(Graph g, StructuralCertificate certificate,
                 SessionConfig config)
    : core_(std::make_shared<const SolverCore>(
          std::move(g), std::move(certificate), core_config(config))),
      execution_(config.execution),
      handle_(std::make_unique<SolveHandle>(core_, execution_)) {
  register_builtin_workloads();
}

Session::Session(std::shared_ptr<const SolverCore> core, SessionConfig config)
    : core_(std::move(core)),
      execution_(config.execution),
      handle_(std::make_unique<SolveHandle>(core_, execution_)) {
  register_builtin_workloads();
}

void Session::swap_core(StructuralCertificate cert, TreeFactory tree) {
  CoreConfig cc;
  cc.tree = std::move(tree);
  cc.engine = &core_->engine();
  cc.cache_capacity = core_->cache_capacity();
  core_ = std::make_shared<const SolverCore>(core_->graph_ptr(),
                                             std::move(cert), std::move(cc));
  handle_->rebind(core_);
}

void Session::set_certificate(StructuralCertificate cert) {
  swap_core(std::move(cert), core_->tree_factory());
}

void Session::set_tree_factory(TreeFactory tree) {
  swap_core(core_->certificate(),
            tree ? std::move(tree) : center_tree_factory());
}

// ------------------------------------------------ persistence (DESIGN.md §8)

void Session::save(const std::string& path, std::vector<Weight> weights) {
  require(weights.empty() ||
              weights.size() ==
                  static_cast<std::size_t>(core_->graph().num_edges()),
          "Session::save: weights count != edge count");
  io::Snapshot snap;
  snap.graph = core_->graph();
  snap.weights = std::move(weights);
  snap.certificate = core_->certificate();
  const RootedTree& t = core_->tree();  // force-build: restore never re-derives
  io::TreeSnapshot ts;
  ts.root = t.root();
  const VertexId n = t.num_vertices();
  ts.parent.reserve(static_cast<std::size_t>(n));
  ts.parent_edge.reserve(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) {
    ts.parent.push_back(t.parent(v));
    ts.parent_edge.push_back(t.parent_edge(v));
  }
  snap.tree = std::move(ts);
  snap.shortcuts = core_->export_cache();  // MRU first; order is preserved
  snap.history = core_->history();  // all-zero history keeps the file at v1
  io::write_snapshot(snap, path);
}

// ----------------------------------------- incremental updates (DESIGN.md §12)

UpdateStats Session::update(const UpdateBatch& batch,
                            std::vector<Weight>* weights) {
  require(weights == nullptr || weights->empty() ||
              weights->size() ==
                  static_cast<std::size_t>(core_->graph().num_edges()),
          "Session::update: weights count != edge count");
  UpdateStats stats;
  if (!batch.structural()) {
    // Weight-only fast path: no builder or tree factory ever consumes
    // weights, so the core (and with it every cache entry) stays live.
    if (weights != nullptr && !weights->empty())
      apply_weight_changes(batch, *weights);
    else if (!batch.weight_changes.empty())
      throw UpdateError(
          "Session::update: weight changes need a weights vector to land in");
    core_->note_weight_update();
    stats.entries_kept = core_->cache_size();
    return stats;
  }
  // Build the successor state fully before installing any of it, so a
  // throwing batch leaves the session untouched.
  std::shared_ptr<const SolverCore> next = core_->update(batch, stats);
  const bool carry = weights != nullptr && !weights->empty();
  if (carry)
    *weights = remap_weights(core_->graph(), next->graph(), stats.vertex_map,
                             stats.edge_map, batch, std::move(*weights));
  core_ = std::move(next);
  // The graph object changed, so the old handle's simulator references are
  // void: recreate the default handle (drops any installed transport).
  handle_ = std::make_unique<SolveHandle>(core_, execution_);
  return stats;
}

Session Session::restore(io::Snapshot snapshot, SessionConfig config) {
  auto core = SolverCore::restore(std::move(snapshot), core_config(config));
  return Session(std::move(core), std::move(config));
}

Session Session::restore(const std::string& path, SessionConfig config) {
  return restore(io::read_snapshot(path), std::move(config));
}

// ---------------------------------------------------------------- registry

void Session::register_workload(std::string name, WorkloadFn fn) {
  require(!name.empty(), "Session: empty workload name");
  require(static_cast<bool>(fn), "Session: null workload");
  auto [it, inserted] = workloads_.emplace(std::move(name), std::move(fn));
  if (!inserted)
    throw InvariantViolation("Session: duplicate workload '" + it->first +
                             "'");
}

bool Session::has_workload(std::string_view name) const {
  return workloads_.find(name) != workloads_.end();
}

std::vector<std::string> Session::workload_names() const {
  std::vector<std::string> names;
  names.reserve(workloads_.size());
  for (const auto& [name, fn] : workloads_) names.push_back(name);
  return names;
}

RunReport Session::solve(std::string_view workload,
                         const WorkloadParams& params,
                         const SolveOptions& opt) {
  auto it = workloads_.find(workload);
  if (it == workloads_.end())
    throw InvariantViolation("Session: unknown workload '" +
                             std::string(workload) + "'");
  RunReport r = it->second(*this, params, opt);
  r.workload = std::string(workload);
  return r;
}

void Session::register_builtin_workloads() {
  register_workload("mst", [](Session& s, const WorkloadParams& p,
                              const SolveOptions& o) {
    return s.solve(Mst{p.weights, p.stop_at_fragment_size}, o);
  });
  register_workload("mst.ghs", [](Session& s, const WorkloadParams& p,
                                  const SolveOptions& o) {
    return s.solve(GhsMst{p.weights}, o);
  });
  register_workload("mincut", [](Session& s, const WorkloadParams& p,
                                 const SolveOptions& o) {
    return s.solve(MinCut{p.weights, p.num_trees, p.two_respecting}, o);
  });
  register_workload("sssp.exact", [](Session& s, const WorkloadParams& p,
                                     const SolveOptions& o) {
    return s.solve(ExactSssp{p.weights, p.source}, o);
  });
  register_workload("sssp.approx", [](Session& s, const WorkloadParams& p,
                                      const SolveOptions& o) {
    return s.solve(
        ApproxSssp{p.weights, p.source, p.epsilon, p.num_seeds,
                   p.bf_rounds_per_cycle, p.repartition_growth,
                   p.voronoi_hop_cap, p.wavefront_seeds},
        o);
  });
  register_workload("bfs", [](Session& s, const WorkloadParams& p,
                              const SolveOptions& o) {
    return s.solve(Bfs{p.source}, o);
  });
  register_workload("mis", [](Session& s, const WorkloadParams& p,
                              const SolveOptions& o) {
    return s.solve(Mis{p.seed}, o);
  });
  register_workload("domset", [](Session& s, const WorkloadParams& p,
                                 const SolveOptions& o) {
    (void)p;  // span greedy has no parameter knobs
    return s.solve(DominatingSet{}, o);
  });
}

}  // namespace mns::congest
