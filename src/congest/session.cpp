#include "congest/session.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "io/fnv.hpp"
#include "io/snapshot.hpp"

namespace mns::congest {

// -------------------------------------------------------- payload accessors

const MstPayload& RunReport::mst() const {
  const auto* p = std::get_if<MstPayload>(&payload);
  require(p != nullptr, "RunReport: not an MST payload");
  return *p;
}
const MinCutPayload& RunReport::min_cut() const {
  const auto* p = std::get_if<MinCutPayload>(&payload);
  require(p != nullptr, "RunReport: not a min-cut payload");
  return *p;
}
const SsspPayload& RunReport::sssp() const {
  const auto* p = std::get_if<SsspPayload>(&payload);
  require(p != nullptr, "RunReport: not an SSSP payload");
  return *p;
}
const BfsPayload& RunReport::bfs() const {
  const auto* p = std::get_if<BfsPayload>(&payload);
  require(p != nullptr, "RunReport: not a BFS payload");
  return *p;
}
const AggregatePayload& RunReport::aggregate() const {
  const auto* p = std::get_if<AggregatePayload>(&payload);
  require(p != nullptr, "RunReport: not an aggregation payload");
  return *p;
}

// ----------------------------------------------------------------- session

Session::Session(Graph g, StructuralCertificate certificate,
                 SessionConfig config)
    : g_(std::move(g)),
      config_execution_(config.execution),
      sim_(g_, config.execution),
      cert_(std::move(certificate)),
      tree_factory_(config.tree ? std::move(config.tree)
                                : center_tree_factory()),
      engine_(config.engine != nullptr ? config.engine
                                       : &ShortcutEngine::global()),
      cache_capacity_(std::max<std::size_t>(1, config.cache_capacity)) {
  register_builtin_workloads();
}

const RootedTree& Session::tree() {
  if (!tree_) tree_.emplace(tree_factory_(g_));
  return *tree_;
}

void Session::set_certificate(StructuralCertificate cert) {
  cert_ = std::move(cert);
  ++epoch_;
  clear_cache();
}

void Session::set_tree_factory(TreeFactory tree) {
  tree_factory_ = tree ? std::move(tree) : center_tree_factory();
  tree_.reset();
  ++epoch_;
  clear_cache();
}

std::size_t Session::cache_size() const noexcept { return lru_.size(); }

void Session::clear_cache() {
  lru_.clear();
  cache_index_.clear();
}

std::uint64_t Session::fingerprint(PartId num_parts,
                                   std::span<const PartId> part_of) const {
  io::Fnv64 h;
  h.mix_u64(epoch_);
  h.mix_u64(static_cast<std::uint64_t>(num_parts));
  for (PartId p : part_of)
    h.mix_u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(p)));
  return h.value();
}

std::uint64_t Session::fingerprint(const Partition& parts) const {
  return fingerprint(parts.num_parts(), parts.part_of_all());
}

void Session::cache_insert(std::uint64_t key, std::vector<PartId> part_of,
                           std::shared_ptr<const Shortcut> shortcut) {
  while (lru_.size() >= cache_capacity_) {
    const CacheEntry& victim = lru_.back();
    auto idx = cache_index_.find(victim.key);
    if (idx != cache_index_.end()) {
      auto& slots = idx->second;
      slots.erase(std::remove_if(slots.begin(), slots.end(),
                                 [&](auto it) { return &*it == &victim; }),
                  slots.end());
      if (slots.empty()) cache_index_.erase(idx);
    }
    lru_.pop_back();
  }
  lru_.push_front(CacheEntry{key, std::move(part_of), std::move(shortcut)});
  cache_index_[key].push_back(lru_.begin());
}

SourcedShortcut Session::shortcut_for(const Partition& parts, bool use_cache) {
  const std::uint64_t key = use_cache ? fingerprint(parts) : 0;
  if (use_cache) {
    auto idx = cache_index_.find(key);
    if (idx != cache_index_.end()) {
      auto span = parts.part_of_all();
      for (auto it : idx->second) {
        if (it->part_of.size() == span.size() &&
            std::equal(span.begin(), span.end(), it->part_of.begin())) {
          ++hits_;
          lru_.splice(lru_.begin(), lru_, it);  // refresh LRU position
          return SourcedShortcut{it->shortcut, /*fresh=*/false};
        }
      }
    }
  }
  ++misses_;
  auto built = std::make_shared<const Shortcut>(
      engine_->build_shortcut(g_, tree(), parts, cert_));
  if (use_cache) {
    auto span = parts.part_of_all();
    cache_insert(key, std::vector<PartId>(span.begin(), span.end()), built);
  }
  return SourcedShortcut{std::move(built), /*fresh=*/true};
}

ShortcutSource Session::make_source(const SolveOptions& opt) {
  if (!opt.use_shortcuts) return empty_shortcut_source();
  return [this, use_cache = opt.use_cache,
          charge = opt.charge_construction](const Graph& g,
                                            const Partition& parts) {
    require(&g == &this->g_, "Session: shortcut requested for foreign graph");
    SourcedShortcut s = this->shortcut_for(parts, use_cache);
    if (!charge) s.fresh = false;  // ablation: never charge construction
    return s;
  };
}

BuildResult Session::analyze(const Partition& parts) {
  BuildResult out = engine_->build(g_, tree(), parts, cert_);
  // Seed the cache so a following solve over the same partition hits
  // (counter-neutral: analysis is not query traffic).
  const std::uint64_t key = fingerprint(parts);
  auto idx = cache_index_.find(key);
  auto span = parts.part_of_all();
  if (idx != cache_index_.end())
    for (auto it : idx->second)
      if (it->part_of.size() == span.size() &&
          std::equal(span.begin(), span.end(), it->part_of.begin())) {
        lru_.splice(lru_.begin(), lru_, it);  // already cached: keep it hot
        return out;
      }
  cache_insert(key, std::vector<PartId>(span.begin(), span.end()),
               std::make_shared<const Shortcut>(out.shortcut));
  return out;
}

// ------------------------------------------------ persistence (DESIGN.md §8)

void Session::save(const std::string& path, std::vector<Weight> weights) {
  require(weights.empty() ||
              weights.size() == static_cast<std::size_t>(g_.num_edges()),
          "Session::save: weights count != edge count");
  io::Snapshot snap;
  snap.graph = g_;
  snap.weights = std::move(weights);
  snap.certificate = cert_;
  const RootedTree& t = tree();  // force-build: restore must never re-derive
  io::TreeSnapshot ts;
  ts.root = t.root();
  const VertexId n = t.num_vertices();
  ts.parent.reserve(static_cast<std::size_t>(n));
  ts.parent_edge.reserve(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) {
    ts.parent.push_back(t.parent(v));
    ts.parent_edge.push_back(t.parent_edge(v));
  }
  snap.tree = std::move(ts);
  snap.shortcuts.reserve(lru_.size());
  for (const CacheEntry& entry : lru_)  // front = MRU; order is preserved
    snap.shortcuts.push_back(io::CachedShortcut{entry.part_of, *entry.shortcut});
  io::write_snapshot(snap, path);
}

Session Session::restore(io::Snapshot snapshot, SessionConfig config) {
  return Session(RestoreTag{}, std::move(snapshot), std::move(config));
}

Session Session::restore(const std::string& path, SessionConfig config) {
  return Session(RestoreTag{}, io::read_snapshot(path), std::move(config));
}

Session::Session(RestoreTag, io::Snapshot&& snapshot, SessionConfig&& config)
    : Session(std::move(snapshot.graph), std::move(snapshot.certificate),
              std::move(config)) {
  const VertexId n = g_.num_vertices();
  if (snapshot.tree) {
    io::TreeSnapshot& ts = *snapshot.tree;
    if (ts.parent.size() != static_cast<std::size_t>(n))
      throw io::SnapshotError("snapshot: tree size != vertex count");
    tree_.emplace(ts.root, std::move(ts.parent), std::move(ts.parent_edge));
  }
  // Re-key every cached shortcut under THIS session's epoch, inserting
  // LRU-first so the front of the list ends up the snapshot's MRU entry.
  for (auto it = snapshot.shortcuts.rbegin(); it != snapshot.shortcuts.rend();
       ++it) {
    if (it->part_of.size() != static_cast<std::size_t>(n))
      throw io::SnapshotError("snapshot: cached part map size != vertex count");
    PartId num_parts = 0;
    for (PartId p : it->part_of) {
      // decode_snapshot validates this too; re-check here so a
      // caller-constructed Snapshot cannot smuggle ids past the cache
      // (p < n also keeps p + 1 clear of signed overflow).
      if (p < kNoPart || p >= n)
        throw io::SnapshotError("snapshot: cached part id out of range");
      if (p >= num_parts) num_parts = static_cast<PartId>(p + 1);
    }
    const std::uint64_t key = fingerprint(num_parts, it->part_of);
    cache_insert(key, std::move(it->part_of),
                 std::make_shared<const Shortcut>(std::move(it->shortcut)));
  }
}

template <typename Body>
RunReport Session::run(const char* workload, const SolveOptions& opt,
                       Body&& body) {
  // Apply this solve's execution policy before anything is staged: 0 keeps
  // the session default, -1 asks for hardware_concurrency, N pins N shards.
  ExecutionPolicy policy = config_execution_;
  if (opt.threads > 0) policy.threads = opt.threads;
  if (opt.threads < 0) policy.threads = 0;  // resolve to hardware width
  if (policy.resolved() != sim_.num_shards()) sim_.set_execution_policy(policy);
  const auto start_clock = std::chrono::steady_clock::now();
  const long long start_rounds = sim_.rounds();
  const long long start_messages = sim_.messages_sent();
  const long long start_hits = hits_;
  const long long start_misses = misses_;
  RunReport r;
  r.workload = workload;
  r.threads = sim_.num_shards();
  body(r);
  r.rounds = sim_.rounds() - start_rounds;
  r.messages = sim_.messages_sent() - start_messages;
  r.cache_hits = hits_ - start_hits;
  r.cache_misses = misses_ - start_misses;
  r.wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start_clock)
                  .count();
  return r;
}

RunReport Session::solve(const Mst& q, const SolveOptions& opt) {
  return run("mst", opt, [&](RunReport& r) {
    MstOptions mopt;
    mopt.source = make_source(opt);
    mopt.stop_at_fragment_size = q.stop_at_fragment_size;
    mopt.trace = opt.trace;
    MstResult res = boruvka_mst(sim_, q.weights, mopt);
    r.charged_construction_rounds = res.charged_construction_rounds;
    r.phases = res.phases;
    r.aggregations = res.aggregations;
    r.payload = MstPayload{std::move(res.edges), std::move(res.fragment_of)};
  });
}

RunReport Session::solve(const GhsMst& q, const SolveOptions& opt) {
  return run("mst.ghs", opt, [&](RunReport& r) {
    // GHS is shortcut-free: nothing to cache or charge; only the trace
    // stream applies.
    MstResult res = controlled_ghs_mst(sim_, tree(), q.weights, opt.trace);
    r.phases = res.phases;
    r.aggregations = res.aggregations;
    r.payload = MstPayload{std::move(res.edges), std::move(res.fragment_of)};
  });
}

RunReport Session::solve(const MinCut& q, const SolveOptions& opt) {
  return run("mincut", opt, [&](RunReport& r) {
    MinCutOptions copt;
    copt.source = make_source(opt);
    copt.num_trees = q.num_trees;
    copt.two_respecting = q.two_respecting;
    copt.trace = opt.trace;
    MinCutResult res = approx_min_cut(sim_, q.weights, copt);
    r.charged_construction_rounds = res.charged_construction_rounds;
    r.phases = res.trees;
    r.aggregations = res.aggregations;
    r.payload = MinCutPayload{res.value, res.trees};
  });
}

RunReport Session::solve(const ExactSssp& q, const SolveOptions& opt) {
  return run("sssp.exact", opt, [&](RunReport& r) {
    (void)opt;  // Bellman-Ford is shortcut-free
    SsspResult res = exact_sssp(sim_, q.weights, q.source);
    r.phases = res.phases;
    r.payload = SsspPayload{std::move(res.dist), res.jumps};
  });
}

RunReport Session::solve(const ApproxSssp& q, const SolveOptions& opt) {
  return run("sssp.approx", opt, [&](RunReport& r) {
    ApproxSsspOptions sopt;
    sopt.source = make_source(opt);
    sopt.epsilon = q.epsilon;
    sopt.num_seeds = q.num_seeds;
    sopt.bf_rounds_per_cycle = q.bf_rounds_per_cycle;
    sopt.repartition_growth = q.repartition_growth;
    sopt.voronoi_hop_cap = q.voronoi_hop_cap;
    sopt.wavefront_seeds = q.wavefront_seeds;
    sopt.trace = opt.trace;
    SsspResult res = approx_sssp(sim_, q.weights, q.source, sopt);
    r.charged_construction_rounds = res.charged_construction_rounds;
    r.phases = res.phases;
    r.aggregations = res.jumps;
    r.payload = SsspPayload{std::move(res.dist), res.jumps};
  });
}

RunReport Session::solve(const Bfs& q, const SolveOptions& opt) {
  return run("bfs", opt, [&](RunReport& r) {
    (void)opt;  // flooding needs no shortcuts
    DistributedBfsResult res = distributed_bfs(sim_, q.root);
    r.phases = 1;
    r.payload = BfsPayload{std::move(res.dist), std::move(res.parent),
                           std::move(res.parent_edge)};
  });
}

RunReport Session::solve(const Aggregate& q, const SolveOptions& opt) {
  return run("aggregate", opt, [&](RunReport& r) {
    require(static_cast<VertexId>(q.values.size()) == g_.num_vertices(),
            "Session: aggregate values size mismatch");
    SourcedShortcut s = make_source(opt)(g_, q.parts);
    PartwiseAggregator agg(g_, q.parts, *s.shortcut);
    AggregationResult res = agg.aggregate_min(sim_, q.values);
    r.phases = 1;
    r.aggregations = 1;
    if (s.fresh) r.charged_construction_rounds = res.rounds;
    r.payload = AggregatePayload{std::move(res.min_of_part)};
  });
}

// ---------------------------------------------------------------- registry

void Session::register_workload(std::string name, WorkloadFn fn) {
  require(!name.empty(), "Session: empty workload name");
  require(static_cast<bool>(fn), "Session: null workload");
  auto [it, inserted] = workloads_.emplace(std::move(name), std::move(fn));
  if (!inserted)
    throw InvariantViolation("Session: duplicate workload '" + it->first +
                             "'");
}

bool Session::has_workload(std::string_view name) const {
  return workloads_.find(name) != workloads_.end();
}

std::vector<std::string> Session::workload_names() const {
  std::vector<std::string> names;
  names.reserve(workloads_.size());
  for (const auto& [name, fn] : workloads_) names.push_back(name);
  return names;
}

RunReport Session::solve(std::string_view workload,
                         const WorkloadParams& params,
                         const SolveOptions& opt) {
  auto it = workloads_.find(workload);
  if (it == workloads_.end())
    throw InvariantViolation("Session: unknown workload '" +
                             std::string(workload) + "'");
  RunReport r = it->second(*this, params, opt);
  r.workload = std::string(workload);
  return r;
}

void Session::register_builtin_workloads() {
  register_workload("mst", [](Session& s, const WorkloadParams& p,
                              const SolveOptions& o) {
    return s.solve(Mst{p.weights, p.stop_at_fragment_size}, o);
  });
  register_workload("mst.ghs", [](Session& s, const WorkloadParams& p,
                                  const SolveOptions& o) {
    return s.solve(GhsMst{p.weights}, o);
  });
  register_workload("mincut", [](Session& s, const WorkloadParams& p,
                                 const SolveOptions& o) {
    return s.solve(MinCut{p.weights, p.num_trees, p.two_respecting}, o);
  });
  register_workload("sssp.exact", [](Session& s, const WorkloadParams& p,
                                     const SolveOptions& o) {
    return s.solve(ExactSssp{p.weights, p.source}, o);
  });
  register_workload("sssp.approx", [](Session& s, const WorkloadParams& p,
                                      const SolveOptions& o) {
    return s.solve(
        ApproxSssp{p.weights, p.source, p.epsilon, p.num_seeds,
                   p.bf_rounds_per_cycle, p.repartition_growth,
                   p.voronoi_hop_cap, p.wavefront_seeds},
        o);
  });
  register_workload("bfs", [](Session& s, const WorkloadParams& p,
                              const SolveOptions& o) {
    return s.solve(Bfs{p.source}, o);
  });
}

}  // namespace mns::congest
