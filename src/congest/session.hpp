// congest::Session — one solver API over every part-wise workload.
//
// The paper's thesis is that ONE structural object (the low-congestion
// shortcut, dispatched from a StructuralCertificate) accelerates EVERY
// part-wise optimization problem on the network: MST, min-cut, SSSP
// [Haeupler-Li-Zuzic PODC 2018; Ghaffari-Haeupler]. A Session is that thesis
// as an API: it serves every workload through one entry point:
//
//   Session s(graph, apex_certificate({hub}));
//   RunReport mst  = s.solve(Mst{weights});
//   RunReport cut  = s.solve(MinCut{weights, /*num_trees=*/12});
//   RunReport path = s.solve(ApproxSssp{weights, depot});
//
// Repeated queries — Boruvka phases that revisit a partition, k-source SSSP
// batches, an MST -> min-cut -> SSSP pipeline on the same network — stop
// re-paying ShortcutEngine::build_shortcut: the cache serves the built
// shortcut back, and the construction-round charge is applied once per
// distinct partition (DESIGN.md §2, §5).
//
// Since the SolverCore/SolveHandle split (DESIGN.md §10 "Serving
// architecture"), Session is a thin compatibility facade over the two
// layers that actually own the state:
//
//   SolverCore  (solver_core.hpp)  the immutable, shareable half: graph,
//                                  certificate, rooted tree, shortcut cache
//                                  behind a read-mostly concurrency discipline
//   SolveHandle (solve_handle.hpp) the cheap per-request half: Simulator,
//                                  arenas, execution policy, per-request
//                                  cache accounting, workload registry
//
// One Session = one core + one default handle, single-threaded semantics
// preserved exactly. Code that wants concurrent queries over one warm core
// shares the Session's core_ptr() across many SolveHandles — or uses
// serve::QueryServer (src/serve/query_server.hpp), which does that fan-out
// over a WorkerPool.
//
// Sessions also survive graph churn without re-paying construction:
// update() applies an UpdateBatch incrementally — weight-only batches touch
// nothing structural, structural batches replace the core with a successor
// that migrates every clean cache entry live and re-hangs only broken tree
// subpaths (DESIGN.md §12 "Incremental updates").
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "congest/solve_handle.hpp"
#include "congest/solver_core.hpp"

namespace mns::io {
struct Snapshot;  // io/snapshot.hpp
}

namespace mns::congest {

struct SessionConfig {
  /// Roots the session spanning tree (built ONCE, reused by every build);
  /// default center_tree_factory().
  TreeFactory tree;
  /// Construction engine; default &ShortcutEngine::global(). Must outlive
  /// the session.
  const ShortcutEngine* engine = nullptr;
  /// Max cached shortcuts before LRU eviction.
  std::size_t cache_capacity = 64;
  /// Knobs for the core's low-diameter decomposition (the kLdd partition
  /// source — core/ldd.hpp).
  LddOptions ldd;
  /// Default execution policy for every solve (overridable per solve via
  /// SolveOptions::threads).
  ExecutionPolicy execution;
};

class Session {
 public:
  /// Parameter bundle for string dispatch (historically nested here; now the
  /// namespace-scope congest::WorkloadParams shared with SolveHandle).
  using WorkloadParams = ::mns::congest::WorkloadParams;

  /// Takes ownership of the network. The certificate is the session's
  /// structural knowledge; every shortcut dispatches through it.
  explicit Session(Graph g,
                   StructuralCertificate certificate = greedy_certificate(),
                   SessionConfig config = {});

  /// Wraps an existing shared core (serving path): the session becomes one
  /// more client of `core`. Only `config.execution` applies — the core
  /// already fixed tree/engine/capacity at its own construction.
  explicit Session(std::shared_ptr<const SolverCore> core,
                   SessionConfig config = {});

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // -- cross-process persistence (DESIGN.md §8) --

  /// Persists the session to the versioned binary snapshot format
  /// (io/snapshot.hpp): graph, certificate, the rooted tree (built now if
  /// not yet — a restored session must never re-derive it), and every
  /// cached shortcut with its partition, in LRU order. `weights` rides
  /// along as instance data (pass the workload's edge weights, or empty).
  /// Throws io::SnapshotError on I/O failure.
  void save(const std::string& path, std::vector<Weight> weights = {});

  /// Rebuilds a session from a snapshot. Epoch-correct: restored shortcuts
  /// land in the LRU cache keyed with the new core's partition
  /// fingerprints, so the first solve over a snapshotted partition is a
  /// cache HIT — bit-identical to the in-process warm solve and with
  /// charged_construction_rounds == 0 (pinned by tests/test_snapshot.cpp
  /// and bench_session's restore rows). `config.tree` only applies if the
  /// snapshot carries no tree.
  [[nodiscard]] static Session restore(io::Snapshot snapshot,
                                       SessionConfig config = {});
  /// read_snapshot(path) + restore. Throws io::SnapshotError on corruption.
  [[nodiscard]] static Session restore(const std::string& path,
                                       SessionConfig config = {});

  // -- incremental updates (DESIGN.md §12) --

  /// Applies an edit batch to the live session, doing the minimum
  /// structural work instead of a rebuild:
  ///
  ///   * weight-only batch — applied to `*weights` in place; NO structural
  ///     object moves (builders never consume weights), so every cache entry
  ///     stays live and subsequent solves still hit with
  ///     charged_construction_rounds == 0.
  ///   * structural batch — the core is replaced by SolverCore::update's
  ///     successor: certificate remapped, broken tree subpaths re-hung,
  ///     clean cache entries migrated live, dirty ones dropped. `*weights`
  ///     (if non-empty) is carried across the id remap. The default handle
  ///     is recreated over the new graph, which resets the per-session
  ///     hit/miss counters and DETACHES any installed transport.
  ///
  /// `weights` may be null or empty when the caller keeps no edge weights.
  /// Returns what happened (entries kept/invalidated, subpaths rebuilt, id
  /// maps for carrying external side data). Throws UpdateError on batches
  /// the structures cannot absorb; the session is unchanged in that case.
  UpdateStats update(const UpdateBatch& batch,
                     std::vector<Weight>* weights = nullptr);

  // -- the uniform solve surface (delegates to the default handle) --
  [[nodiscard]] RunReport solve(const Mst& q, const SolveOptions& opt = {}) {
    return handle_->solve(q, opt);
  }
  [[nodiscard]] RunReport solve(const GhsMst& q, const SolveOptions& opt = {}) {
    return handle_->solve(q, opt);
  }
  [[nodiscard]] RunReport solve(const MinCut& q, const SolveOptions& opt = {}) {
    return handle_->solve(q, opt);
  }
  [[nodiscard]] RunReport solve(const ExactSssp& q,
                                const SolveOptions& opt = {}) {
    return handle_->solve(q, opt);
  }
  [[nodiscard]] RunReport solve(const ApproxSssp& q,
                                const SolveOptions& opt = {}) {
    return handle_->solve(q, opt);
  }
  [[nodiscard]] RunReport solve(const Bfs& q, const SolveOptions& opt = {}) {
    return handle_->solve(q, opt);
  }
  [[nodiscard]] RunReport solve(const Mis& q, const SolveOptions& opt = {}) {
    return handle_->solve(q, opt);
  }
  [[nodiscard]] RunReport solve(const DominatingSet& q,
                                const SolveOptions& opt = {}) {
    return handle_->solve(q, opt);
  }
  [[nodiscard]] RunReport solve(const Aggregate& q,
                                const SolveOptions& opt = {}) {
    return handle_->solve(q, opt);
  }

  // -- the name-keyed workload registry (mirrors ShortcutEngine's builders) --

  /// Runs the named workload (builtin_workload_names(): "bfs", "domset",
  /// "mincut", "mis", "mst", "mst.ghs", "sssp.approx", "sssp.exact").
  /// Throws InvariantViolation naming the offender on unknown names.
  [[nodiscard]] RunReport solve(std::string_view workload,
                                const WorkloadParams& params,
                                const SolveOptions& opt = {});

  using WorkloadFn = std::function<RunReport(Session&, const WorkloadParams&,
                                             const SolveOptions&)>;
  /// Registers a strategy. Throws InvariantViolation on empty or duplicate
  /// names.
  void register_workload(std::string name, WorkloadFn fn);
  [[nodiscard]] bool has_workload(std::string_view name) const;
  /// Sorted registry names.
  [[nodiscard]] std::vector<std::string> workload_names() const;

  // -- owned state --
  [[nodiscard]] const Graph& graph() const noexcept { return core_->graph(); }
  [[nodiscard]] Simulator& simulator() noexcept { return handle_->simulator(); }
  /// Installs a message transport on the default handle's round engine
  /// (non-owning; DESIGN.md §11 "Transport layer").
  void set_transport(transport::Transport* transport) {
    handle_->set_transport(transport);
  }
  [[nodiscard]] const StructuralCertificate& certificate() const noexcept {
    return core_->certificate();
  }
  /// The shared half: hand this to other SolveHandles (or a QueryServer) to
  /// serve concurrent queries over this session's warm state.
  [[nodiscard]] const std::shared_ptr<const SolverCore>& core_ptr()
      const noexcept {
    return handle_->core_ptr();
  }

  /// Swaps the structural knowledge; invalidates every cached shortcut (a
  /// NEW core is built over the SAME graph, so the simulator stays valid).
  void set_certificate(StructuralCertificate cert);
  /// Swaps the tree factory; rebuilds the session tree lazily and
  /// invalidates the cache (shortcuts are tree-restricted).
  void set_tree_factory(TreeFactory tree);
  /// The session spanning tree (built on first use, then reused by every
  /// shortcut construction — unlike bare engine providers, which re-root
  /// per invocation).
  [[nodiscard]] const RootedTree& tree() const { return core_->tree(); }

  /// Builds, validates, AND measures the current certificate's shortcut for
  /// `parts` (quality metrics for analysis/benches); the built shortcut is
  /// inserted into the cache, so a following solve(Aggregate{parts,...})
  /// hits.
  [[nodiscard]] BuildResult analyze(const Partition& parts) const {
    return core_->analyze(parts);
  }

  // -- cache introspection --
  [[nodiscard]] std::size_t cache_size() const noexcept {
    return core_->cache_size();
  }
  [[nodiscard]] long long cache_hits() const noexcept {
    return handle_->cache_hits();
  }
  [[nodiscard]] long long cache_misses() const noexcept {
    return handle_->cache_misses();
  }
  [[nodiscard]] long long cache_evictions() const noexcept {
    return handle_->cache_evictions();
  }
  void clear_cache() { core_->clear_cache(); }

 private:
  void register_builtin_workloads();
  /// set_certificate/set_tree_factory: swap structural knowledge by building
  /// a NEW core over the SAME graph object and rebinding the handle (the
  /// old epoch-bump-and-flush, expressed as core replacement).
  void swap_core(StructuralCertificate cert, TreeFactory tree);

  std::shared_ptr<const SolverCore> core_;
  /// The per-solve execution policy, kept so update() can recreate the
  /// default handle over a successor graph.
  ExecutionPolicy execution_;
  /// unique_ptr (not a member object): a structural update() replaces the
  /// graph, and SolveHandle::rebind only accepts same-graph swaps.
  std::unique_ptr<SolveHandle> handle_;
  std::map<std::string, WorkloadFn, std::less<>> workloads_;
};

}  // namespace mns::congest
