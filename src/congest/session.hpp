// congest::Session — one solver API over every part-wise workload.
//
// The paper's thesis is that ONE structural object (the low-congestion
// shortcut, dispatched from a StructuralCertificate) accelerates EVERY
// part-wise optimization problem on the network: MST, min-cut, SSSP
// [Haeupler-Li-Zuzic PODC 2018; Ghaffari-Haeupler]. A Session is that thesis
// as an API: it owns the network (Graph + Simulator), the structural
// knowledge (certificate + spanning-tree factory + ShortcutEngine), and a
// partition-fingerprint-keyed LRU cache of built shortcuts, and serves every
// workload through one entry point:
//
//   Session s(graph, apex_certificate({hub}));
//   RunReport mst  = s.solve(Mst{weights});
//   RunReport cut  = s.solve(MinCut{weights, /*num_trees=*/12});
//   RunReport path = s.solve(ApproxSssp{weights, depot});
//
// Repeated queries — Boruvka phases that revisit a partition, k-source SSSP
// batches, an MST -> min-cut -> SSSP pipeline on the same network — stop
// re-paying ShortcutEngine::build_shortcut: the cache serves the built
// shortcut back, and the construction-round charge is applied once per
// distinct partition (DESIGN.md §2, §5). Measured rounds are identical
// between cached and cold runs; only wall time and charged construction
// drop. Every run returns the same RunReport telemetry (rounds, messages,
// charges, cache hits/misses, per-phase RoundTrace) with a problem-specific
// payload, and a name-keyed workload registry (mirroring ShortcutEngine's
// builder registry) lets harnesses select workloads by string.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "congest/aggregation.hpp"
#include "congest/bfs.hpp"
#include "congest/mincut.hpp"
#include "congest/mst.hpp"
#include "congest/simulator.hpp"
#include "congest/sssp.hpp"
#include "core/certificate.hpp"
#include "core/shortcut_engine.hpp"

namespace mns::io {
struct Snapshot;  // io/snapshot.hpp
}

namespace mns::congest {

// ---------------------------------------------------------------- workloads

/// Distributed MST (Boruvka over shortcut-backed aggregations).
struct Mst {
  std::vector<Weight> weights;
  /// Stop once every fragment has at least this many vertices; 0 = full MST.
  VertexId stop_at_fragment_size = 0;
};

/// The O~(D + sqrt(n)) controlled-GHS MST baseline over the session tree.
struct GhsMst {
  std::vector<Weight> weights;
};

/// (2+eps)/(1+eps) min cut via greedy tree packing.
struct MinCut {
  std::vector<Weight> weights;
  int num_trees = 8;
  bool two_respecting = false;
};

/// Exact lock-step Bellman-Ford SSSP (the no-shortcut baseline).
struct ExactSssp {
  std::vector<Weight> weights;
  VertexId source = 0;
};

/// (1+eps)-approximate shortcut-accelerated SSSP.
struct ApproxSssp {
  std::vector<Weight> weights;
  VertexId source = 0;
  double epsilon = 0.25;
  VertexId num_seeds = 0;        ///< 0 = ceil(sqrt(n))
  int bf_rounds_per_cycle = 8;
  double repartition_growth = 0.5;
  int voronoi_hop_cap = 0;       ///< 0 = auto
  /// false = source-independent cells: identical partitions across a k-source
  /// batch, so the session cache pays construction once (DESIGN.md §5).
  bool wavefront_seeds = true;
};

/// Distributed BFS tree construction by flooding (the O(D) primitive).
struct Bfs {
  VertexId root = 0;
};

/// One part-wise min aggregation over an explicit partition (Definition 9) —
/// the primitive every workload above is built from. Repeated aggregations
/// over the same partition (e.g. periodic per-zone sensor queries) hit the
/// shortcut cache.
struct Aggregate {
  Partition parts;
  std::vector<AggValue> values;
};

// ----------------------------------------------------------------- payloads

struct MstPayload {
  std::vector<EdgeId> edges;
  std::vector<PartId> fragment_of;
};
struct MinCutPayload {
  Weight value = 0;
  int trees = 0;
};
struct SsspPayload {
  std::vector<Weight> dist;
  long long jumps = 0;
};
struct BfsPayload {
  std::vector<int> dist;
  std::vector<VertexId> parent;
  std::vector<EdgeId> parent_edge;
};
struct AggregatePayload {
  std::vector<AggValue> min_of_part;
};

// --------------------------------------------------------------- run report

/// Uniform telemetry for every solve(): what the run cost and what the cache
/// did, plus the problem-specific payload.
struct RunReport {
  std::string workload;  ///< registry name ("mst", "sssp.approx", ...)
  long long rounds = 0;    ///< measured communication rounds of this run
  long long messages = 0;  ///< messages sent during this run
  /// Worker threads the round engine fanned this run over (DESIGN.md §7).
  /// Purely a wall-clock knob: every other field of the report is
  /// bit-identical across thread counts (pinned by the test_session parity
  /// sweep and bench_parallel_scaling).
  int threads = 1;
  /// Substitution charges for constructions paid by this run (DESIGN.md §2);
  /// cache hits re-pay nothing, so warm runs charge less than cold ones.
  long long charged_construction_rounds = 0;
  int phases = 0;              ///< Boruvka phases / packing trees / scale phases
  long long aggregations = 0;  ///< part-wise aggregations performed
  long long cache_hits = 0;    ///< shortcut-cache hits during this run
  long long cache_misses = 0;  ///< misses (constructions) during this run
  double wall_ms = 0.0;        ///< wall-clock time of the run

  std::variant<std::monostate, MstPayload, MinCutPayload, SsspPayload,
               BfsPayload, AggregatePayload>
      payload;

  /// Measured + charged: the round count comparisons should quote.
  [[nodiscard]] long long total_rounds() const {
    return rounds + charged_construction_rounds;
  }

  // Checked payload accessors (throw InvariantViolation on the wrong kind).
  [[nodiscard]] const MstPayload& mst() const;
  [[nodiscard]] const MinCutPayload& min_cut() const;
  [[nodiscard]] const SsspPayload& sssp() const;
  [[nodiscard]] const BfsPayload& bfs() const;
  [[nodiscard]] const AggregatePayload& aggregate() const;
};

// ------------------------------------------------------------------ session

/// Per-solve knobs shared by every workload (the one place the old
/// per-algorithm provider/charge_construction fields collapsed into).
struct SolveOptions {
  /// false = flooding baseline: empty shortcuts, nothing constructed or
  /// charged (replaces the old empty_shortcut_provider +
  /// charge_construction=false pairing).
  bool use_shortcuts = true;
  /// false = cold run: bypass the cache, build every shortcut fresh (every
  /// build counts as a miss). Benches use this as the uncached baseline.
  bool use_cache = true;
  /// false = do not charge construction substitutions at all (ablations).
  bool charge_construction = true;
  /// Per-phase telemetry stream (Boruvka phase / packing tree / scale phase
  /// / GHS phase). Workloads with no phase structure (ExactSssp, Bfs,
  /// single-shot Aggregate) emit nothing.
  RoundTraceHook trace;
  /// Worker threads for this solve: 0 = the session default
  /// (SessionConfig::execution), 1 = sequential, N = fan each round phase
  /// over N shards, -1 = hardware_concurrency. Never changes results — only
  /// wall clock (DESIGN.md §7).
  int threads = 0;
};

struct SessionConfig {
  /// Roots the session spanning tree (built ONCE, reused by every build);
  /// default center_tree_factory().
  TreeFactory tree;
  /// Construction engine; default &ShortcutEngine::global(). Must outlive
  /// the session.
  const ShortcutEngine* engine = nullptr;
  /// Max cached shortcuts before LRU eviction.
  std::size_t cache_capacity = 64;
  /// Default execution policy for every solve (overridable per solve via
  /// SolveOptions::threads).
  ExecutionPolicy execution;
};

class Session {
 public:
  /// Parameter bundle for string dispatch: the union of every built-in
  /// workload's knobs, defaulted like the typed structs (defined below).
  struct WorkloadParams;

  /// Takes ownership of the network. The certificate is the session's
  /// structural knowledge; every shortcut dispatches through it.
  explicit Session(Graph g,
                   StructuralCertificate certificate = greedy_certificate(),
                   SessionConfig config = {});

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // -- cross-process persistence (DESIGN.md §8) --

  /// Persists the session to the versioned binary snapshot format
  /// (io/snapshot.hpp): graph, certificate, the rooted tree (built now if
  /// not yet — a restored session must never re-derive it), and every
  /// cached shortcut with its partition, in LRU order. `weights` rides
  /// along as instance data (pass the workload's edge weights, or empty).
  /// Throws io::SnapshotError on I/O failure.
  void save(const std::string& path, std::vector<Weight> weights = {});

  /// Rebuilds a session from a snapshot. Epoch-correct: restored shortcuts
  /// land in the LRU cache keyed with the new session's partition
  /// fingerprints, so the first solve over a snapshotted partition is a
  /// cache HIT — bit-identical to the in-process warm solve and with
  /// charged_construction_rounds == 0 (pinned by tests/test_snapshot.cpp
  /// and bench_session's restore rows). `config.tree` only applies if the
  /// snapshot carries no tree.
  [[nodiscard]] static Session restore(io::Snapshot snapshot,
                                       SessionConfig config = {});
  /// read_snapshot(path) + restore. Throws io::SnapshotError on corruption.
  [[nodiscard]] static Session restore(const std::string& path,
                                       SessionConfig config = {});

  // -- the uniform solve surface --
  [[nodiscard]] RunReport solve(const Mst& q, const SolveOptions& opt = {});
  [[nodiscard]] RunReport solve(const GhsMst& q, const SolveOptions& opt = {});
  [[nodiscard]] RunReport solve(const MinCut& q, const SolveOptions& opt = {});
  [[nodiscard]] RunReport solve(const ExactSssp& q,
                                const SolveOptions& opt = {});
  [[nodiscard]] RunReport solve(const ApproxSssp& q,
                                const SolveOptions& opt = {});
  [[nodiscard]] RunReport solve(const Bfs& q, const SolveOptions& opt = {});
  [[nodiscard]] RunReport solve(const Aggregate& q,
                                const SolveOptions& opt = {});

  // -- the name-keyed workload registry (mirrors ShortcutEngine's builders) --

  /// Runs the named workload ("mst", "mst.ghs", "mincut", "sssp.exact",
  /// "sssp.approx", "bfs"). Throws InvariantViolation on unknown names.
  [[nodiscard]] RunReport solve(std::string_view workload,
                                const WorkloadParams& params,
                                const SolveOptions& opt = {});

  using WorkloadFn = std::function<RunReport(Session&, const WorkloadParams&,
                                             const SolveOptions&)>;
  /// Registers a strategy. Throws InvariantViolation on empty or duplicate
  /// names.
  void register_workload(std::string name, WorkloadFn fn);
  [[nodiscard]] bool has_workload(std::string_view name) const;
  /// Sorted registry names.
  [[nodiscard]] std::vector<std::string> workload_names() const;

  // -- owned state --
  [[nodiscard]] const Graph& graph() const noexcept { return g_; }
  [[nodiscard]] Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] const StructuralCertificate& certificate() const noexcept {
    return cert_;
  }
  /// Swaps the structural knowledge; invalidates every cached shortcut (the
  /// cache key includes the certificate epoch).
  void set_certificate(StructuralCertificate cert);
  /// Swaps the tree factory; rebuilds the session tree lazily and
  /// invalidates the cache (shortcuts are tree-restricted).
  void set_tree_factory(TreeFactory tree);
  /// The session spanning tree (built on first use, then reused by every
  /// shortcut construction — unlike bare engine providers, which re-root
  /// per invocation).
  [[nodiscard]] const RootedTree& tree();

  /// Builds, validates, AND measures the current certificate's shortcut for
  /// `parts` (quality metrics for analysis/benches); the built shortcut is
  /// inserted into the cache, so a following solve(Aggregate{parts,...})
  /// hits.
  [[nodiscard]] BuildResult analyze(const Partition& parts);

  // -- cache introspection --
  [[nodiscard]] std::size_t cache_size() const noexcept;
  [[nodiscard]] long long cache_hits() const noexcept { return hits_; }
  [[nodiscard]] long long cache_misses() const noexcept { return misses_; }
  void clear_cache();

 private:
  struct CacheEntry {
    std::uint64_t key = 0;             ///< fingerprint(epoch, part_of)
    std::vector<PartId> part_of;       ///< exact guard against hash collisions
    std::shared_ptr<const Shortcut> shortcut;
  };

  /// Restore path: delegate to the main constructor, then install the
  /// snapshotted tree and re-key the cached shortcuts under this session's
  /// epoch.
  struct RestoreTag {};
  Session(RestoreTag, io::Snapshot&& snapshot, SessionConfig&& config);

  [[nodiscard]] SourcedShortcut shortcut_for(const Partition& parts,
                                             bool use_cache);
  [[nodiscard]] ShortcutSource make_source(const SolveOptions& opt);
  [[nodiscard]] std::uint64_t fingerprint(PartId num_parts,
                                          std::span<const PartId> part_of)
      const;
  [[nodiscard]] std::uint64_t fingerprint(const Partition& parts) const;
  void cache_insert(std::uint64_t key, std::vector<PartId> part_of,
                    std::shared_ptr<const Shortcut> shortcut);
  void register_builtin_workloads();

  /// Runs `body` between telemetry snapshots and assembles the RunReport;
  /// applies the solve's execution policy (threads) to the simulator first.
  template <typename Body>
  RunReport run(const char* workload, const SolveOptions& opt, Body&& body);

  Graph g_;
  ExecutionPolicy config_execution_;  ///< session-default thread policy
  Simulator sim_;
  StructuralCertificate cert_;
  TreeFactory tree_factory_;
  const ShortcutEngine* engine_;
  std::optional<RootedTree> tree_;
  std::size_t cache_capacity_;
  /// Bumped on set_certificate/set_tree_factory: stale entries can never be
  /// served because the fingerprint folds the epoch in.
  std::uint64_t epoch_ = 0;
  std::list<CacheEntry> lru_;  ///< front = most recently used
  std::map<std::uint64_t, std::vector<std::list<CacheEntry>::iterator>>
      cache_index_;
  long long hits_ = 0;
  long long misses_ = 0;
  std::map<std::string, WorkloadFn, std::less<>> workloads_;
};

/// Parameter bundle for name-keyed dispatch (see Session::solve(name, ...)).
struct Session::WorkloadParams {
  std::vector<Weight> weights;
  VertexId source = 0;  ///< SSSP source / BFS root
  VertexId stop_at_fragment_size = 0;
  int num_trees = 8;
  bool two_respecting = false;
  double epsilon = 0.25;
  VertexId num_seeds = 0;
  int bf_rounds_per_cycle = 8;
  double repartition_growth = 0.5;
  int voronoi_hop_cap = 0;
  bool wavefront_seeds = true;
};

}  // namespace mns::congest
