// The vertex-parallel round engine (DESIGN.md §7). A VertexProgram
// expresses one lock-step algorithm as per-vertex hooks —
//
//   frontier()              the vertices that act this round (canonical order)
//   send(v, out)            queue v's messages for this round
//   receive(v, inbox, ctx)  drain v's inbox, update v-local state
//   end_round()             sequential barrier: merge shard buffers, rebuild
//                           the frontier, flip round-global flags
//
// — and run_vertex_program() drives the rounds, fanning send/receive over
// the simulator's shards when the ExecutionPolicy asks for threads.
//
// The determinism contract (DESIGN.md §7): the engine splits the frontier
// into CONTIGUOUS blocks, one per shard; within a block vertices run in
// frontier order, and Simulator::finish_round() concatenates the shard
// staging buffers in shard order — so the merged send order equals the
// sequential order, message for message, at any thread count. Programs keep
// the contract by (a) writing only v-owned state from send(v)/receive(v),
// (b) funneling all cross-vertex effects through PerShard accumulators
// merged in end_round() (shard order == frontier order, deterministic), and
// (c) never branching on shard identity or thread timing.
//
// Round accounting: an empty frontier is checked BEFORE the round is
// counted, so quiescence costs no rounds.
#pragma once

#include <span>
#include <vector>

#include "congest/arena.hpp"
#include "congest/simulator.hpp"

namespace mns::congest {

/// Below this frontier size a phase runs inline on the calling thread (as
/// shard 0): waking the pool costs more than the work. Purely a wall-clock
/// heuristic — block merging makes the result identical either way.
inline constexpr std::size_t kParallelGrain = 256;

/// Send-phase context: all sends originate at the vertex the engine is
/// currently running (that is what keeps the per-shard staging race-free —
/// directed slot 2e+side belongs to exactly one endpoint, and each vertex
/// runs in exactly one shard).
class VertexSender {
 public:
  VertexSender(Simulator& sim, int shard, bool direct) noexcept
      : sim_(&sim), shard_(shard), direct_(direct) {}

  /// Sends from the current vertex across `edge`. Throws (possibly deferred
  /// to finish_round) on endpoint or CONGEST-capacity violations.
  void send(EdgeId edge, const Message& msg) {
    if (direct_)
      sim_->send(v_, edge, msg);
    else
      sim_->stage_send(shard_, v_, edge, msg);
  }

  [[nodiscard]] VertexId vertex() const noexcept { return v_; }
  [[nodiscard]] int shard() const noexcept { return shard_; }

  /// Engine-internal: repointed per vertex.
  void set_vertex(VertexId v) noexcept { v_ = v; }

 private:
  Simulator* sim_;
  VertexId v_ = kInvalidVertex;
  int shard_;
  bool direct_;
};

/// Receive-phase context: identifies the shard so programs can write into
/// PerShard accumulators instead of shared state.
struct ShardContext {
  int shard = 0;
  int num_shards = 1;
};

/// Per-shard accumulator for cross-vertex effects (next-frontier lists,
/// changed flags, counters, effect queues). Slots are cache-line padded;
/// merge in shard order (for_each) — with contiguous-block sharding that
/// order IS the frontier order, which is what keeps merged results
/// bit-identical to sequential execution.
template <typename T>
class PerShard {
 public:
  PerShard() = default;
  explicit PerShard(int num_shards) { reset(num_shards); }

  void reset(int num_shards) {
    slots_.assign(static_cast<std::size_t>(num_shards), Slot{});
  }
  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(slots_.size());
  }
  [[nodiscard]] T& operator[](int shard) {
    return slots_[static_cast<std::size_t>(shard)].value;
  }

  /// Visits every slot in shard order (the deterministic merge order).
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (Slot& s : slots_) fn(s.value);
  }

 private:
  struct alignas(64) Slot {
    T value{};
  };
  std::vector<Slot> slots_;
};

/// The dual-phase frontier bookkeeping shared by stateful programs
/// (aggregation, GHS upcast/downcast, capped-greedy): a vertex re-enters
/// the next round's frontier either from the send phase (it kept pending
/// work), from the receive phase (a delivery woke it), or at the barrier
/// (a cross-vertex effect). The queued_ flags dedup across all three paths
/// — safe because send(v)/receive(v) only ever flag v itself, and barrier
/// wakes run sequentially. Merge order is send-keeps then receive-wakes
/// then barrier wakes, each in shard order == frontier order, so the
/// rebuilt frontier is deterministic at any thread count.
class FrontierTracker {
 public:
  FrontierTracker(int num_shards, VertexId num_vertices)
      : queued_(static_cast<std::size_t>(num_vertices), 0),
        send_keep_(num_shards), recv_wake_(num_shards) {}

  [[nodiscard]] std::span<const VertexId> frontier() const {
    return frontier_list_;
  }
  /// Init-time push, before the first round (no dedup — seed each vertex
  /// once).
  void seed(VertexId v) { frontier_list_.push_back(v); }

  void keep_from_send(VertexId v, int shard) { enqueue(v, send_keep_[shard]); }
  void wake_from_receive(VertexId v, int shard) {
    enqueue(v, recv_wake_[shard]);
  }
  /// Barrier-time wake (sequential, from end_round effect application);
  /// only meaningful between merge_phases() and clear_flags().
  void wake_at_barrier(VertexId v) { enqueue(v, frontier_list_); }

  /// First half of end_round: rebuild the frontier from the per-shard
  /// lists. Programs with barrier effects call this, apply them (using
  /// wake_at_barrier), then clear_flags(); everyone else calls end_round().
  void merge_phases() {
    frontier_list_.clear();
    send_keep_.for_each([&](ArenaVector<VertexId>& part) {
      frontier_list_.insert(frontier_list_.end(), part.begin(), part.end());
      part.clear();
    });
    recv_wake_.for_each([&](ArenaVector<VertexId>& part) {
      frontier_list_.insert(frontier_list_.end(), part.begin(), part.end());
      part.clear();
    });
  }
  /// Second half: reset the dedup flags for the next round.
  void clear_flags() {
    for (VertexId v : frontier_list_) queued_[static_cast<std::size_t>(v)] = 0;
  }
  void end_round() {
    merge_phases();
    clear_flags();
  }

 private:
  template <typename List>
  void enqueue(VertexId v, List& out) {
    if (!queued_[static_cast<std::size_t>(v)]) {
      queued_[static_cast<std::size_t>(v)] = 1;
      out.push_back(v);
    }
  }

  std::vector<char> queued_;
  std::vector<VertexId> frontier_list_;
  // Per-shard wake lists on private arenas (arena.hpp): each worker appends
  // to its own slot, and once warm the lists stop allocating — part of the
  // zero-steady-state-allocation contract (DESIGN.md §9).
  PerShardArenaVec<VertexId> send_keep_;
  PerShardArenaVec<VertexId> recv_wake_;
};

namespace detail {

/// Fans fn(shard, ctx, item) over `items` split into contiguous blocks, one
/// per shard; runs inline (all items as shard 0) when the pool would cost
/// more than it saves. Identical observable order either way.
template <typename Fn>
void for_each_sharded(Simulator& sim, std::span<const VertexId> items,
                      Fn&& fn) {
  const std::size_t count = items.size();
  if (count == 0) return;
  const int shards = sim.num_shards();
  if (shards <= 1 || count < kParallelGrain) {
    fn(0, /*direct=*/true, items);
    return;
  }
  sim.pool().run(shards, [&](int s) {
    const std::size_t begin =
        count * static_cast<std::size_t>(s) / static_cast<std::size_t>(shards);
    const std::size_t end = count * (static_cast<std::size_t>(s) + 1) /
                            static_cast<std::size_t>(shards);
    if (begin < end) fn(s, /*direct=*/false, items.subspan(begin, end - begin));
  });
}

}  // namespace detail

/// Runs exactly ONE round of the program (or none, if the frontier is
/// empty): fan send() over the frontier, turn the round over, fan receive()
/// over the delivered vertices, then let the program merge at the
/// end_round() barrier. Returns the rounds consumed (0 or 1). The
/// single-step form of run_vertex_program, for drivers that interleave
/// phase-granular bookkeeping (traces, convergence probes) between rounds.
template <typename Program>
long long run_vertex_program_round(Simulator& sim, Program& prog) {
  const std::span<const VertexId> frontier = prog.frontier();
  if (frontier.empty()) return 0;
  const int shards = sim.num_shards();
  detail::for_each_sharded(
      sim, frontier,
      [&](int shard, bool direct, std::span<const VertexId> block) {
        VertexSender out(sim, shard, direct);
        for (VertexId v : block) {
          out.set_vertex(v);
          prog.send(v, out);
        }
      });
  sim.finish_round();
  detail::for_each_sharded(
      sim, sim.delivered_to(),
      [&](int shard, bool, std::span<const VertexId> block) {
        const ShardContext ctx{shard, shards};
        for (VertexId v : block) prog.receive(v, sim.inbox(v), ctx);
      });
  prog.end_round();
  return 1;
}

/// Drives a VertexProgram to quiescence: one round at a time while the
/// frontier is nonempty. Returns rounds consumed (quiescence itself costs
/// none).
template <typename Program>
long long run_vertex_program(Simulator& sim, Program& prog) {
  const long long start = sim.rounds();
  while (run_vertex_program_round(sim, prog) != 0) {
  }
  return sim.rounds() - start;
}

}  // namespace mns::congest
