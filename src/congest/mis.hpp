// Luby-style maximal independent set as a VertexProgram (DESIGN.md §13).
//
// Each phase every undecided vertex draws a priority — a pure hash of
// (seed, phase, vertex), no RNG state — and exchanges it with its undecided
// neighbors; a vertex whose (priority, id) beats all rivals joins the MIS
// and its neighbors drop out. Two communication rounds per phase (priority
// exchange, winner notification), with departures announcing themselves once
// so survivors stop messaging dead neighbors. Because priorities are
// stateless hashes and all cross-vertex effects merge at the sequential
// barrier, rounds and messages are bit-identical at every thread width and
// across transport ranks — the determinism discipline the parity tests and
// the committed bench baseline pin.
//
// Ported onto this engine from the round-synchronous fast-MIS style of
// SALSA-CLRS (SNIPPETS.md `fast_mis_2`); expected O(log n) phases [Luby 86].
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "congest/shortcut_source.hpp"
#include "congest/simulator.hpp"

namespace mns::congest {

struct MisOptions {
  /// Seeds the per-(phase, vertex) priority hashes; same seed = identical
  /// run, message for message.
  std::uint64_t seed = 1;
  /// Optional per-phase telemetry (stage = "luby-phase").
  RoundTraceHook trace;
};

struct MisResult {
  std::vector<char> in_mis;  ///< 1 iff the vertex joined the set
  VertexId size = 0;         ///< number of MIS members
  long long rounds = 0;      ///< measured communication rounds
  int phases = 0;            ///< Luby phases until quiescence
};

/// Runs Luby's algorithm to completion on the simulator's network.
[[nodiscard]] MisResult luby_mis(Simulator& sim, const MisOptions& options = {});

/// The phase priority of `v` — exposed so tests can pin determinism.
[[nodiscard]] std::int64_t mis_priority(std::uint64_t seed, int phase,
                                        VertexId v);

/// Sequential greedy oracle (ascending vertex id) — the reference a
/// distributed result's size is sanity-checked against.
[[nodiscard]] std::vector<char> greedy_mis(const Graph& g);

/// "" iff `in_mis` is independent (no two members adjacent) and maximal
/// (every non-member has a member neighbor) — i.e. a correct MIS.
[[nodiscard]] std::string verify_maximal_independent_set(
    const Graph& g, const std::vector<char>& in_mis);

}  // namespace mns::congest
