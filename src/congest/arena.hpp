// Bump-pointer arena for the per-round data path (DESIGN.md §9 "Memory
// model").
//
// The simulator's round turnover reuses a small set of buffers whose sizes
// reach a steady state after a few rounds (pending sends, packed inboxes,
// frontier, staged shard buffers, vertex-program accumulators). Backing them
// with a bump arena gives two things the general-purpose heap cannot:
//
//   * Zero steady-state allocations. Once every buffer hit its high-water
//     capacity, rounds perform NO allocator calls at all — the arena's
//     Stats::block_requests counter is the test hook that pins this
//     (tests/test_arena_contract.cpp).
//   * Locality. All hot per-round buffers live in a handful of contiguous
//     slabs instead of being scattered across the heap, which is what lets
//     finish_round()'s merge stream at n = 2^20.
//
// Threading contract: an Arena is NOT thread-safe. Every arena is owned by
// exactly one lane — the simulator's merge arena is touched only by the
// calling thread (stage_send never allocates from it), and each staging
// shard / PerShardArena slot owns a private arena touched only by the worker
// driving that shard. This mirrors the engine's determinism contract
// (DESIGN.md §7): shards never share mutable state.
//
// Lifetime: slabs are only released when the arena is destroyed (with its
// owner, e.g. the Simulator). deallocate() reclaims a block only when it is
// the most recent allocation (LIFO top rollback) — enough to recycle
// vector-grow patterns during warm-up; anything else is retained until
// destruction, bounding total reservation at a small constant factor of the
// high-water mark.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace mns::congest {

class Arena {
 public:
  /// Allocation counters — the steady-state test hook. block_requests is the
  /// number of allocate() calls (vector growths land here); slabs /
  /// bytes_reserved track what was actually requested from the OS heap.
  struct Stats {
    std::size_t block_requests = 0;
    std::size_t slabs = 0;
    std::size_t bytes_reserved = 0;

    friend bool operator==(const Stats&, const Stats&) = default;
  };

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` aligned to `align` (power of two). Opens a new
  /// geometrically grown slab when the current one is exhausted; the first
  /// slab is only created on first use, so idle arenas cost nothing.
  void* allocate(std::size_t bytes, std::size_t align) {
    ++stats_.block_requests;
    std::byte* p = align_up(cursor_, align);
    if (p == nullptr || p > end_ ||
        bytes > static_cast<std::size_t>(end_ - p)) {
      new_slab(bytes + align);
      p = align_up(cursor_, align);
    }
    cursor_ = p + bytes;
    return p;
  }

  /// LIFO rollback: reclaims the block only if it is the top of the current
  /// slab (the most recent allocation). Anything else is a no-op — the
  /// memory is recycled at arena destruction.
  void deallocate(void* p, std::size_t bytes) noexcept {
    std::byte* q = static_cast<std::byte*>(p);
    if (q + bytes == cursor_) cursor_ = q;
  }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  static constexpr std::size_t kMinSlabBytes = 1 << 16;

  static std::byte* align_up(std::byte* p, std::size_t align) noexcept {
    const std::uintptr_t a = reinterpret_cast<std::uintptr_t>(p);
    const std::uintptr_t mask = static_cast<std::uintptr_t>(align) - 1;
    return reinterpret_cast<std::byte*>((a + mask) & ~mask);
  }

  void new_slab(std::size_t at_least) {
    std::size_t size = kMinSlabBytes;
    if (!slabs_.empty()) size = slabs_.back().size * 2;
    if (size < at_least) size = at_least;
    slabs_.push_back(Slab{std::make_unique<std::byte[]>(size), size});
    ++stats_.slabs;
    stats_.bytes_reserved += size;
    cursor_ = slabs_.back().data.get();
    end_ = cursor_ + size;
  }

  struct Slab {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };
  std::vector<Slab> slabs_;
  std::byte* cursor_ = nullptr;
  std::byte* end_ = nullptr;
  Stats stats_;
};

/// std-conforming allocator over a non-owned Arena. Containers using it must
/// not outlive the arena. Two allocators compare equal iff they share the
/// arena (so moves between containers on the same arena are pointer swaps).
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    arena_->deallocate(p, n * sizeof(T));
  }

  [[nodiscard]] Arena* arena() const noexcept { return arena_; }

  template <typename U>
  friend bool operator==(const ArenaAllocator& a,
                         const ArenaAllocator<U>& b) noexcept {
    return a.arena() == b.arena();
  }

 private:
  Arena* arena_;
};

template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

/// Per-shard accumulator whose slots each own a PRIVATE arena: worker
/// threads append to disjoint slots, so the (single-threaded) arenas never
/// race, and the accumulators stop allocating once warm — same contract as
/// the simulator's staging shards. Merge with for_each in shard order to
/// keep results bit-identical to sequential execution (DESIGN.md §7).
template <typename T>
class PerShardArenaVec {
 public:
  explicit PerShardArenaVec(int num_shards)
      : num_(num_shards),
        slots_(std::make_unique<Slot[]>(static_cast<std::size_t>(num_shards))) {
  }

  [[nodiscard]] int num_shards() const noexcept { return num_; }

  [[nodiscard]] ArenaVector<T>& operator[](int shard) {
    return slots_[static_cast<std::size_t>(shard)].items;
  }

  /// Visits every slot in shard order (the deterministic merge order).
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (int s = 0; s < num_; ++s) fn(slots_[static_cast<std::size_t>(s)].items);
  }

  /// Sum of all slots' arena counters (steady-state allocation hook).
  [[nodiscard]] Arena::Stats arena_stats() const {
    Arena::Stats total;
    for (int s = 0; s < num_; ++s) {
      const Arena::Stats& st = slots_[static_cast<std::size_t>(s)].arena.stats();
      total.block_requests += st.block_requests;
      total.slabs += st.slabs;
      total.bytes_reserved += st.bytes_reserved;
    }
    return total;
  }

 private:
  struct alignas(64) Slot {
    Arena arena;
    ArenaVector<T> items{ArenaAllocator<T>(&arena)};
  };
  int num_ = 0;
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace mns::congest
