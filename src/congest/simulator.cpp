#include "congest/simulator.hpp"

#include <stdexcept>

namespace mns::congest {

Simulator::Simulator(const Graph& g, ExecutionPolicy policy) : g_(&g) {
  used_.assign(static_cast<std::size_t>(g.num_edges()) * 2, 0);
  inbox_begin_.assign(g.num_vertices(), 0);
  inbox_count_.assign(g.num_vertices(), 0);
  inbox_cursor_.assign(g.num_vertices(), 0);
  set_execution_policy(policy);
}

void Simulator::set_execution_policy(ExecutionPolicy policy) {
  if (!pending_.empty())
    throw std::logic_error(
        "Simulator::set_execution_policy: sends pending; the policy may only "
        "change between rounds");
  for (const SendShard& shard : shards_)
    if (!shard.entries.empty())
      throw std::logic_error(
          "Simulator::set_execution_policy: staged sends pending; the policy "
          "may only change between rounds");
  policy_ = policy;
  const int resolved = policy_.resolved();
  if (resolved != num_shards_) {
    num_shards_ = resolved;
    shards_.resize(static_cast<std::size_t>(num_shards_));
    pool_.reset();  // rebuilt lazily at the new width
  }
}

WorkerPool& Simulator::pool() {
  if (!pool_) pool_ = std::make_unique<WorkerPool>(num_shards_);
  return *pool_;
}

void Simulator::send(VertexId from, EdgeId edge, const Message& msg) {
  const Edge& e = g_->edge(edge);
  if (e.u != from && e.v != from)
    throw std::invalid_argument("Simulator::send: from not on edge");
  const std::size_t dir =
      2 * static_cast<std::size_t>(edge) + (from == e.u ? 0 : 1);
  if (used_[dir])
    throw std::invalid_argument(
        "Simulator::send: directed edge already used this round (CONGEST "
        "capacity violated)");
  used_[dir] = 1;
  used_list_.push_back(static_cast<std::uint32_t>(dir));
  VertexId to = (from == e.u) ? e.v : e.u;
  pending_to_.push_back(to);
  pending_.push_back(Delivery{from, edge, msg});
  ++messages_;
}

void Simulator::stage_send(int shard, VertexId from, EdgeId edge,
                           const Message& msg) {
  if (shard < 0 || static_cast<std::size_t>(shard) >= shards_.size())
    throw std::out_of_range("Simulator::stage_send: shard out of range");
  const Edge& e = g_->edge(edge);
  if (e.u != from && e.v != from)
    throw std::invalid_argument("Simulator::stage_send: from not on edge");
  const std::uint32_t dir = static_cast<std::uint32_t>(
      2 * static_cast<std::size_t>(edge) + (from == e.u ? 0 : 1));
  const VertexId to = (from == e.u) ? e.v : e.u;
  shards_[static_cast<std::size_t>(shard)].entries.push_back(
      StagedSend{dir, to, Delivery{from, edge, msg}});
}

void Simulator::finish_round() {
  // Validate the staged shard sends BEFORE mutating anything the caller can
  // observe, so a CONGEST capacity violation leaves the simulator exactly
  // as sequential send() would: round not counted, direct sends still
  // pending, inboxes intact. The poisoned round's staged sends are
  // discarded (they were never counted), keeping the simulator usable
  // after a caught violation. The check runs here, on one thread, in the
  // deterministic merge order.
  const std::size_t used_mark = used_list_.size();
  for (SendShard& shard : shards_) {
    for (const StagedSend& s : shard.entries) {
      if (used_[s.dir]) {
        for (std::size_t i = used_mark; i < used_list_.size(); ++i)
          used_[used_list_[i]] = 0;
        used_list_.resize(used_mark);
        for (SendShard& sh : shards_) sh.entries.clear();
        throw std::invalid_argument(
            "Simulator::finish_round: directed edge already used this round "
            "(CONGEST capacity violated by a staged send)");
      }
      used_[s.dir] = 1;
      used_list_.push_back(s.dir);
    }
  }
  ++rounds_;
  // Retire the previous round's inboxes: only the old frontier is touched.
  for (VertexId v : frontier_) inbox_count_[v] = 0;
  frontier_.clear();
  // Merge staged shard sends into the canonical pending list. Order is
  // direct send()s first (in call order), then shard 0, 1, ... each in its
  // own staging order. The vertex engine stages a contiguous block of the
  // canonical frontier into each shard, so this concatenation reproduces the
  // sequential send order EXACTLY — inboxes, counters and delivered_to() are
  // bit-identical at any thread count.
  for (SendShard& shard : shards_) {
    for (const StagedSend& s : shard.entries) {
      pending_to_.push_back(s.to);
      pending_.push_back(s.delivery);
      ++messages_;
    }
    shard.entries.clear();
  }
  // Count messages per destination; destinations joining the frontier on
  // their first message. Sort-free CSR: the per-destination counts become
  // contiguous ranges in frontier order.
  const std::size_t m = pending_.size();
  for (std::size_t i = 0; i < m; ++i) {
    VertexId to = pending_to_[i];
    if (inbox_count_[to]++ == 0) frontier_.push_back(to);
  }
  std::uint32_t offset = 0;
  for (VertexId v : frontier_) {
    inbox_begin_[v] = offset;
    inbox_cursor_[v] = offset;
    offset += inbox_count_[v];
  }
  // Scatter into the reused delivery buffer (capacity persists across
  // rounds; resize only adjusts the logical size).
  inbox_data_.resize(m);
  for (std::size_t i = 0; i < m; ++i)
    inbox_data_[inbox_cursor_[pending_to_[i]]++] = pending_[i];
  pending_.clear();
  pending_to_.clear();
  // Reset CONGEST capacity for the next round: only used entries touched.
  for (std::uint32_t dir : used_list_) used_[dir] = 0;
  used_list_.clear();
}

void Simulator::skip_rounds(long long rounds) {
  if (rounds < 0)
    throw std::invalid_argument(
        "Simulator::skip_rounds: negative round count would corrupt the "
        "charged-round accounting");
  rounds_ += rounds;
}

}  // namespace mns::congest
