#include "congest/simulator.hpp"

#include <stdexcept>
#include <string>

#include "transport/transport.hpp"

namespace mns::congest {

namespace {

/// Endpoint-violation text with the offending ids: contract tests assert the
/// `from` vertex and edge id appear verbatim, so misdirected sends are
/// debuggable from the what() string alone.
std::string endpoint_violation(const char* fn, VertexId from, EdgeId edge,
                               const Edge& e) {
  return std::string(fn) + ": from vertex " + std::to_string(from) +
         " is not an endpoint of edge " + std::to_string(edge) + " (" +
         std::to_string(e.u) + ", " + std::to_string(e.v) + ")";
}

}  // namespace

Simulator::Simulator(const Graph& g, ExecutionPolicy policy)
    : g_(&g),
      pending_to_(ArenaAllocator<VertexId>(&arena_)),
      pending_slot_(ArenaAllocator<std::uint32_t>(&arena_)),
      pending_msg_(ArenaAllocator<Message>(&arena_)),
      used_list_(ArenaAllocator<std::uint32_t>(&arena_)),
      inbox_slot_(ArenaAllocator<std::uint32_t>(&arena_)),
      inbox_msg_(ArenaAllocator<Message>(&arena_)),
      frontier_(ArenaAllocator<VertexId>(&arena_)) {
  used_.assign(static_cast<std::size_t>(g.num_edges()) * 2, 0);
  inbox_begin_.assign(g.num_vertices(), 0);
  inbox_count_.assign(g.num_vertices(), 0);
  inbox_cursor_.assign(g.num_vertices(), 0);
  set_execution_policy(policy);
}

void Simulator::set_execution_policy(ExecutionPolicy policy) {
  if (!pending_to_.empty())
    throw std::logic_error(
        "Simulator::set_execution_policy: sends pending; the policy may only "
        "change between rounds");
  for (int s = 0; s < num_shards_; ++s)
    if (!shards_[static_cast<std::size_t>(s)].entries.empty())
      throw std::logic_error(
          "Simulator::set_execution_policy: staged sends pending; the policy "
          "may only change between rounds");
  policy_ = policy;
  const int resolved = policy_.resolved();
  if (resolved != num_shards_) {
    num_shards_ = resolved;
    // SendShards own arenas (non-movable), so the block is rebuilt whole;
    // the old shards were verified empty above.
    shards_ = std::make_unique<SendShard[]>(static_cast<std::size_t>(resolved));
    pool_.reset();  // rebuilt lazily at the new width
  }
}

void Simulator::set_transport(transport::Transport* transport) {
  if (!pending_to_.empty())
    throw std::logic_error(
        "Simulator::set_transport: sends pending; the transport may only "
        "change between rounds");
  for (int s = 0; s < num_shards_; ++s)
    if (!shards_[static_cast<std::size_t>(s)].entries.empty())
      throw std::logic_error(
          "Simulator::set_transport: staged sends pending; the transport may "
          "only change between rounds");
  transport_ = transport;
}

WorkerPool& Simulator::pool() {
  if (!pool_) pool_ = std::make_unique<WorkerPool>(num_shards_);
  return *pool_;
}

Arena::Stats Simulator::arena_stats() const {
  Arena::Stats total = arena_.stats();
  for (int s = 0; s < num_shards_; ++s) {
    const Arena::Stats& st = shards_[static_cast<std::size_t>(s)].arena.stats();
    total.block_requests += st.block_requests;
    total.slabs += st.slabs;
    total.bytes_reserved += st.bytes_reserved;
  }
  return total;
}

void Simulator::send(VertexId from, EdgeId edge, const Message& msg) {
  const Edge& e = g_->edge(edge);
  if (e.u != from && e.v != from)
    throw std::invalid_argument(
        endpoint_violation("Simulator::send", from, edge, e));
  const std::size_t slot =
      2 * static_cast<std::size_t>(edge) + (from == e.u ? 0 : 1);
  if (used_[slot])
    throw std::invalid_argument(
        "Simulator::send: directed edge already used this round (CONGEST "
        "capacity violated)");
  used_[slot] = 1;
  used_list_.push_back(static_cast<std::uint32_t>(slot));
  VertexId to = (from == e.u) ? e.v : e.u;
  pending_to_.push_back(to);
  pending_slot_.push_back(static_cast<std::uint32_t>(slot));
  pending_msg_.push_back(msg);
  ++messages_;
}

void Simulator::stage_send(int shard, VertexId from, EdgeId edge,
                           const Message& msg) {
  // Validation strictly precedes the buffer write: a throwing call leaves
  // the shard's arena cursor untouched (DESIGN.md §9).
  if (shard < 0 || shard >= num_shards_)
    throw std::out_of_range("Simulator::stage_send: shard out of range");
  const Edge& e = g_->edge(edge);
  if (e.u != from && e.v != from)
    throw std::invalid_argument(
        endpoint_violation("Simulator::stage_send", from, edge, e));
  const std::uint32_t slot = static_cast<std::uint32_t>(
      2 * static_cast<std::size_t>(edge) + (from == e.u ? 0 : 1));
  const VertexId to = (from == e.u) ? e.v : e.u;
  shards_[static_cast<std::size_t>(shard)].entries.push_back(
      StagedSend{slot, to, msg});
}

void Simulator::finish_round() {
  // Validate the staged shard sends BEFORE mutating anything the caller can
  // observe, so a CONGEST capacity violation leaves the simulator exactly
  // as sequential send() would: round not counted, direct sends still
  // pending, inboxes intact. The poisoned round's staged sends are
  // discarded (they were never counted), keeping the simulator usable
  // after a caught violation. The check runs here, on one thread, in the
  // deterministic merge order.
  const std::size_t used_mark = used_list_.size();
  for (int sh = 0; sh < num_shards_; ++sh) {
    for (const StagedSend& s : shards_[static_cast<std::size_t>(sh)].entries) {
      if (used_[s.slot]) {
        for (std::size_t i = used_mark; i < used_list_.size(); ++i)
          used_[used_list_[i]] = 0;
        used_list_.resize(used_mark);
        for (int k = 0; k < num_shards_; ++k)
          shards_[static_cast<std::size_t>(k)].entries.clear();
        throw std::invalid_argument(
            "Simulator::finish_round: directed edge already used this round "
            "(CONGEST capacity violated by a staged send)");
      }
      used_[s.slot] = 1;
      used_list_.push_back(s.slot);
    }
  }
  ++rounds_;
  // Retire the previous round's inboxes: only the old frontier is touched.
  for (VertexId v : frontier_) inbox_count_[v] = 0;
  frontier_.clear();
  // Merge staged shard sends into the canonical pending list. Order is
  // direct send()s first (in call order), then shard 0, 1, ... each in its
  // own staging order. The vertex engine stages a contiguous block of the
  // canonical frontier into each shard, so this concatenation reproduces the
  // sequential send order EXACTLY — inboxes, counters and delivered_to() are
  // bit-identical at any thread count.
  for (int sh = 0; sh < num_shards_; ++sh) {
    SendShard& shard = shards_[static_cast<std::size_t>(sh)];
    for (const StagedSend& s : shard.entries) {
      pending_to_.push_back(s.to);
      pending_slot_.push_back(s.slot);
      pending_msg_.push_back(s.msg);
      ++messages_;
    }
    shard.entries.clear();
  }
  // Transport seam (DESIGN.md §11): the canonical merged batch is complete;
  // let the transport block for remote delivery and substitute authoritative
  // payload bytes before anything is scattered into inboxes. A throw here
  // poisons the round (documented on finish_round()).
  if (transport_ != nullptr) {
    transport::RoundTraffic traffic;
    traffic.round = rounds_;
    traffic.to = {pending_to_.data(), pending_to_.size()};
    traffic.slot = {pending_slot_.data(), pending_slot_.size()};
    traffic.payload = {pending_msg_.data(), pending_msg_.size()};
    transport_->exchange(traffic);
  }
  // Count messages per destination; destinations join the frontier on
  // their first message. Sort-free CSR: the per-destination counts become
  // contiguous ranges in frontier order.
  const std::size_t m = pending_to_.size();
  for (std::size_t i = 0; i < m; ++i) {
    VertexId to = pending_to_[i];
    if (inbox_count_[to]++ == 0) frontier_.push_back(to);
  }
  std::uint32_t offset = 0;
  for (VertexId v : frontier_) {
    inbox_begin_[v] = offset;
    inbox_cursor_[v] = offset;
    offset += inbox_count_[v];
  }
  // Scatter into the reused packed buffers (capacity persists across
  // rounds; resize only adjusts the logical size).
  inbox_slot_.resize(m);
  inbox_msg_.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    const std::uint32_t c = inbox_cursor_[pending_to_[i]]++;
    inbox_slot_[c] = pending_slot_[i];
    inbox_msg_[c] = pending_msg_[i];
  }
  pending_to_.clear();
  pending_slot_.clear();
  pending_msg_.clear();
  // Reset CONGEST capacity for the next round: only used entries touched.
  for (std::uint32_t slot : used_list_) used_[slot] = 0;
  used_list_.clear();
}

void Simulator::skip_rounds(long long rounds) {
  if (rounds < 0)
    throw std::invalid_argument(
        "Simulator::skip_rounds: negative round count would corrupt the "
        "charged-round accounting");
  rounds_ += rounds;
}

}  // namespace mns::congest
