#include "congest/simulator.hpp"

#include <algorithm>
#include <stdexcept>

namespace mns::congest {

Simulator::Simulator(const Graph& g) : g_(&g) {
  used_.assign(static_cast<std::size_t>(g.num_edges()) * 2, 0);
  inbox_offset_.assign(static_cast<std::size_t>(g.num_vertices()) + 1, 0);
}

void Simulator::send(VertexId from, EdgeId edge, const Message& msg) {
  const Edge& e = g_->edge(edge);
  if (e.u != from && e.v != from)
    throw std::invalid_argument("Simulator::send: from not on edge");
  const std::size_t dir = 2 * static_cast<std::size_t>(edge) +
                          (from == e.u ? 0 : 1);
  if (used_[dir])
    throw std::invalid_argument(
        "Simulator::send: directed edge already used this round (CONGEST "
        "capacity violated)");
  used_[dir] = 1;
  used_list_.push_back(static_cast<EdgeId>(dir));
  VertexId to = (from == e.u) ? e.v : e.u;
  pending_.push_back({to, Delivery{from, edge, msg}});
  ++messages_;
}

void Simulator::finish_round() {
  ++rounds_;
  // Rebuild inboxes from pending messages.
  const VertexId n = g_->num_vertices();
  std::vector<std::size_t> count(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [to, d] : pending_) ++count[static_cast<std::size_t>(to) + 1];
  inbox_offset_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId v = 0; v < n; ++v)
    inbox_offset_[static_cast<std::size_t>(v) + 1] =
        inbox_offset_[v] + count[static_cast<std::size_t>(v) + 1];
  inbox_data_.resize(pending_.size());
  std::vector<std::size_t> cursor(inbox_offset_.begin(),
                                  inbox_offset_.end() - 1);
  for (const auto& [to, d] : pending_) inbox_data_[cursor[to]++] = d;
  pending_.clear();
  for (EdgeId dir : used_list_) used_[dir] = 0;
  used_list_.clear();
}

void Simulator::skip_rounds(long long rounds) {
  if (rounds < 0) throw std::invalid_argument("skip_rounds: negative");
  rounds_ += rounds;
}

}  // namespace mns::congest
