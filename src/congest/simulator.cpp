#include "congest/simulator.hpp"

#include <stdexcept>

namespace mns::congest {

Simulator::Simulator(const Graph& g) : g_(&g) {
  used_.assign(static_cast<std::size_t>(g.num_edges()) * 2, 0);
  inbox_begin_.assign(g.num_vertices(), 0);
  inbox_count_.assign(g.num_vertices(), 0);
  inbox_cursor_.assign(g.num_vertices(), 0);
}

void Simulator::send(VertexId from, EdgeId edge, const Message& msg) {
  const Edge& e = g_->edge(edge);
  if (e.u != from && e.v != from)
    throw std::invalid_argument("Simulator::send: from not on edge");
  const std::size_t dir =
      2 * static_cast<std::size_t>(edge) + (from == e.u ? 0 : 1);
  if (used_[dir])
    throw std::invalid_argument(
        "Simulator::send: directed edge already used this round (CONGEST "
        "capacity violated)");
  used_[dir] = 1;
  used_list_.push_back(static_cast<std::uint32_t>(dir));
  VertexId to = (from == e.u) ? e.v : e.u;
  pending_to_.push_back(to);
  pending_.push_back(Delivery{from, edge, msg});
  ++messages_;
}

void Simulator::finish_round() {
  ++rounds_;
  // Retire the previous round's inboxes: only the old frontier is touched.
  for (VertexId v : frontier_) inbox_count_[v] = 0;
  frontier_.clear();
  // Count messages per destination; destinations joining the frontier on
  // their first message. Sort-free CSR: the per-destination counts become
  // contiguous ranges in frontier order.
  const std::size_t m = pending_.size();
  for (std::size_t i = 0; i < m; ++i) {
    VertexId to = pending_to_[i];
    if (inbox_count_[to]++ == 0) frontier_.push_back(to);
  }
  std::uint32_t offset = 0;
  for (VertexId v : frontier_) {
    inbox_begin_[v] = offset;
    inbox_cursor_[v] = offset;
    offset += inbox_count_[v];
  }
  // Scatter into the reused delivery buffer (capacity persists across
  // rounds; resize only adjusts the logical size).
  inbox_data_.resize(m);
  for (std::size_t i = 0; i < m; ++i)
    inbox_data_[inbox_cursor_[pending_to_[i]]++] = pending_[i];
  pending_.clear();
  pending_to_.clear();
  // Reset CONGEST capacity for the next round: only used entries touched.
  for (std::uint32_t dir : used_list_) used_[dir] = 0;
  used_list_.clear();
}

void Simulator::skip_rounds(long long rounds) {
  if (rounds < 0) throw std::invalid_argument("skip_rounds: negative");
  rounds_ += rounds;
}

}  // namespace mns::congest
