#include "congest/mst.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>

#include "congest/vertex_program.hpp"
#include "graph/union_find.hpp"

namespace mns::congest {

namespace {
constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();

/// One-round all-to-neighbours fragment-label exchange: every node offers
/// its fragment id on every incident edge; `recv` drains each delivered
/// inbox (writing only v-local state).
template <typename RecvFn>
struct ExchangeProgram {
  const Graph& g;
  const std::vector<PartId>& frag;
  RecvFn recv;
  std::vector<VertexId> everyone;
  bool done = false;

  ExchangeProgram(const Graph& graph, const std::vector<PartId>& f, RecvFn r)
      : g(graph), frag(f), recv(std::move(r)) {
    everyone.resize(static_cast<std::size_t>(g.num_vertices()));
    std::iota(everyone.begin(), everyone.end(), 0);
  }

  [[nodiscard]] std::span<const VertexId> frontier() const {
    return done ? std::span<const VertexId>() : std::span<const VertexId>(
                                                    everyone);
  }
  void send(VertexId v, VertexSender& out) {
    for (EdgeId e : g.incident_edges(v)) out.send(e, Message{0, 0, frag[v]});
  }
  void receive(VertexId v, Inbox inbox,
               const ShardContext&) {
    recv(v, inbox);
  }
  void end_round() { done = true; }
};

template <typename RecvFn>
long long run_fragment_exchange(Simulator& sim, const std::vector<PartId>& frag,
                                RecvFn recv) {
  ExchangeProgram<RecvFn> prog(sim.graph(), frag, std::move(recv));
  return run_vertex_program(sim, prog);
}

/// Pipelined upcast of (fragment, candidate) pairs toward the BFS root: one
/// improved pair per node per round until quiescent. table/unsent are
/// v-local; the frontier is every non-root node with unsent entries.
struct GhsUpcastProgram {
  const RootedTree& tree;
  std::vector<std::map<PartId, AggValue>>& table;
  std::vector<std::map<PartId, AggValue>> unsent;
  FrontierTracker tracker;

  GhsUpcastProgram(Simulator& sim, const RootedTree& t,
                   std::vector<std::map<PartId, AggValue>>& tab)
      : tree(t), table(tab), unsent(tab),
        tracker(sim.num_shards(), t.num_vertices()) {
    for (VertexId v = 0; v < tree.num_vertices(); ++v)
      if (v != tree.root() && !unsent[static_cast<std::size_t>(v)].empty())
        tracker.seed(v);
  }

  [[nodiscard]] std::span<const VertexId> frontier() const {
    return tracker.frontier();
  }

  void send(VertexId v, VertexSender& out) {
    auto& pending = unsent[static_cast<std::size_t>(v)];
    auto it = pending.begin();
    out.send(tree.parent_edge(v),
             Message{it->first, it->second.aux, it->second.value});
    pending.erase(it);
    if (!pending.empty()) tracker.keep_from_send(v, out.shard());
  }

  void receive(VertexId v, Inbox inbox,
               const ShardContext& ctx) {
    bool woke = false;
    for (const Delivery& d : inbox) {
      PartId p = d.msg.tag;
      AggValue cand{d.msg.value, d.msg.aux};
      auto& tab = table[static_cast<std::size_t>(v)];
      auto it = tab.find(p);
      if (it == tab.end() || cand < it->second) {
        tab[p] = cand;
        unsent[static_cast<std::size_t>(v)][p] = cand;
        woke = true;
      }
    }
    if (woke && v != tree.root()) tracker.wake_from_receive(v, ctx.shard);
  }

  void end_round() { tracker.end_round(); }
};

/// Pipelined downcast of the relabel table from the root: each node forwards
/// one queued (old fragment -> new id) pair to all children per round.
struct GhsDowncastProgram {
  const RootedTree& tree;
  std::vector<std::vector<std::pair<PartId, PartId>>>& to_send;
  std::vector<std::size_t> cursor;
  FrontierTracker tracker;

  GhsDowncastProgram(Simulator& sim, const RootedTree& t,
                     std::vector<std::vector<std::pair<PartId, PartId>>>& ts)
      : tree(t), to_send(ts),
        cursor(static_cast<std::size_t>(t.num_vertices()), 0),
        tracker(sim.num_shards(), t.num_vertices()) {
    for (VertexId v = 0; v < tree.num_vertices(); ++v)
      if (!to_send[static_cast<std::size_t>(v)].empty()) tracker.seed(v);
  }

  [[nodiscard]] std::span<const VertexId> frontier() const {
    return tracker.frontier();
  }

  void send(VertexId v, VertexSender& out) {
    auto [p, label] = to_send[static_cast<std::size_t>(v)]
                             [cursor[static_cast<std::size_t>(v)]];
    ++cursor[static_cast<std::size_t>(v)];
    for (VertexId c : tree.children(v))
      out.send(tree.parent_edge(c), Message{p, 0, label});
    if (cursor[static_cast<std::size_t>(v)] <
        to_send[static_cast<std::size_t>(v)].size())
      tracker.keep_from_send(v, out.shard());
  }

  void receive(VertexId v, Inbox inbox,
               const ShardContext& ctx) {
    for (const Delivery& d : inbox)
      to_send[static_cast<std::size_t>(v)].push_back(
          {d.msg.tag, static_cast<PartId>(d.msg.value)});
    tracker.wake_from_receive(v, ctx.shard);
  }

  void end_round() { tracker.end_round(); }
};

}  // namespace

std::vector<EdgeId> kruskal_mst(const Graph& g, const std::vector<Weight>& w) {
  require(static_cast<EdgeId>(w.size()) == g.num_edges(),
          "kruskal: weight size mismatch");
  std::vector<EdgeId> order(g.num_edges());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    return std::pair(w[a], a) < std::pair(w[b], b);
  });
  UnionFind uf(g.num_vertices());
  std::vector<EdgeId> mst;
  for (EdgeId e : order)
    if (uf.unite(g.edge(e).u, g.edge(e).v)) mst.push_back(e);
  return mst;
}

MstResult boruvka_mst(Simulator& sim, const std::vector<Weight>& w,
                      const MstOptions& options) {
  const Graph& g = sim.graph();
  const VertexId n = g.num_vertices();
  require(static_cast<bool>(options.source), "boruvka_mst: no shortcut source");
  require(static_cast<EdgeId>(w.size()) == g.num_edges(),
          "boruvka_mst: weight size mismatch");

  MstResult out;
  std::vector<PartId> frag(n);
  std::iota(frag.begin(), frag.end(), 0);
  long long start = sim.rounds();

  // Neighbour fragment ids, flat per directed receive slot 2e + side (side
  // keyed by the receiving endpoint; every exchange writes every slot) —
  // one reusable array instead of n per-vertex maps (DESIGN.md §9).
  std::vector<PartId> nbr_frag(2 * static_cast<std::size_t>(g.num_edges()));
  auto recv_slot = [&g](VertexId v, EdgeId e) {
    return 2 * static_cast<std::size_t>(e) + (g.edge(e).u == v ? 0u : 1u);
  };
  while (true) {
    Partition parts(std::vector<PartId>(frag.begin(), frag.end()));
    if (parts.num_parts() == 1) break;
    if (options.stop_at_fragment_size > 0) {
      VertexId smallest = n;
      for (PartId p = 0; p < parts.num_parts(); ++p)
        smallest = std::min(smallest,
                            static_cast<VertexId>(parts.members(p).size()));
      if (smallest >= options.stop_at_fragment_size) break;
    }
    ++out.phases;
    const long long phase_rounds_start = sim.rounds();
    const long long phase_messages_start = sim.messages_sent();
    const long long phase_charged_start = out.charged_construction_rounds;

    // 1 round: every node tells each neighbour its fragment id.
    (void)run_fragment_exchange(
        sim, frag, [&](VertexId v, Inbox inbox) {
          for (const Delivery& d : inbox)
            nbr_frag[recv_slot(v, d.edge)] =
                static_cast<PartId>(d.msg.value);
        });

    // Local min outgoing edge per node.
    std::vector<AggValue> initial(n, AggValue{kInf, 0});
    for (VertexId v = 0; v < n; ++v) {
      for (EdgeId e : g.incident_edges(v)) {
        if (nbr_frag[recv_slot(v, e)] == frag[v]) continue;
        AggValue cand{w[e], e};
        if (cand < initial[v]) initial[v] = cand;
      }
    }

    // Obtain this phase's shortcut and aggregate fragment minima. A FRESH
    // shortcut is charged one extra aggregation's worth of rounds (the
    // [HIZ16a] substitution, DESIGN.md §2); a cached one was already paid
    // for when it was first built.
    SourcedShortcut sc = options.source(g, parts);
    PartwiseAggregator agg(g, parts, *sc.shortcut);
    AggregationResult res = agg.aggregate_min(sim, initial);
    ++out.aggregations;
    if (sc.fresh) out.charged_construction_rounds += res.rounds;

    // Merge along chosen edges (star contraction via DSU).
    bool merged_any = false;
    UnionFind uf(parts.num_parts());
    std::vector<EdgeId> chosen;
    for (PartId p = 0; p < parts.num_parts(); ++p) {
      if (res.min_of_part[p].value == kInf) continue;  // no outgoing edge
      EdgeId e = res.min_of_part[p].aux;
      chosen.push_back(e);
      if (uf.unite(frag[g.edge(e).u], frag[g.edge(e).v])) merged_any = true;
    }
    std::sort(chosen.begin(), chosen.end());
    chosen.erase(std::unique(chosen.begin(), chosen.end()), chosen.end());
    out.edges.insert(out.edges.end(), chosen.begin(), chosen.end());
    if (!merged_any) break;  // disconnected graph or done

    std::vector<PartId> relabel = uf.dense_labels();
    std::vector<PartId> new_frag(n);
    for (VertexId v = 0; v < n; ++v) new_frag[v] = relabel[frag[v]];

    // Label dissemination: one aggregation on the NEW partition (members
    // flood the minimum old label; rounds measured; result label irrelevant
    // beyond synchronization). The next phase aggregates over this same
    // partition, so with a caching source its shortcut — charged here, on
    // first build — is served back without a second charge.
    Partition new_parts(std::vector<PartId>(new_frag.begin(), new_frag.end()));
    SourcedShortcut new_sc = options.source(g, new_parts);
    PartwiseAggregator agg2(g, new_parts, *new_sc.shortcut);
    std::vector<AggValue> labels(n);
    for (VertexId v = 0; v < n; ++v) labels[v] = AggValue{frag[v], 0};
    AggregationResult res2 = agg2.aggregate_min(sim, labels);
    ++out.aggregations;
    if (new_sc.fresh) out.charged_construction_rounds += res2.rounds;

    if (options.trace)
      options.trace(RoundTrace{
          "boruvka-phase", out.phases, sim.rounds() - phase_rounds_start,
          sim.messages_sent() - phase_messages_start,
          out.charged_construction_rounds - phase_charged_start});
    frag = std::move(new_frag);
  }

  std::sort(out.edges.begin(), out.edges.end());
  out.edges.erase(std::unique(out.edges.begin(), out.edges.end()),
                  out.edges.end());
  out.rounds = sim.rounds() - start;
  out.fragment_of = std::move(frag);
  return out;
}

MstResult controlled_ghs_mst(Simulator& sim, const RootedTree& bfs_tree,
                             const std::vector<Weight>& w,
                             const RoundTraceHook& trace) {
  const Graph& g = sim.graph();
  const VertexId n = g.num_vertices();
  long long start = sim.rounds();

  // Phase 1: shortcut-free Boruvka until fragments reach sqrt(n).
  MstOptions opt;
  opt.source = empty_shortcut_source();
  opt.trace = trace;
  opt.stop_at_fragment_size =
      static_cast<VertexId>(std::ceil(std::sqrt(static_cast<double>(n))));
  MstResult phase1 = boruvka_mst(sim, w, opt);

  MstResult out;
  out.edges = phase1.edges;
  out.phases = phase1.phases;
  out.aggregations = phase1.aggregations;
  std::vector<PartId> frag = phase1.fragment_of;

  // Phase 2: pipelined upcast/downcast over the BFS tree.
  while (true) {
    PartId num_frag = *std::max_element(frag.begin(), frag.end()) + 1;
    if (num_frag <= 1) break;
    ++out.phases;
    const long long phase_rounds_start = sim.rounds();
    const long long phase_messages_start = sim.messages_sent();

    // One round of fragment exchange with neighbours; local candidates.
    std::vector<std::map<PartId, AggValue>> table(n);
    (void)run_fragment_exchange(
        sim, frag, [&](VertexId v, Inbox inbox) {
          AggValue best{kInf, 0};
          for (const Delivery& d : inbox)
            if (static_cast<PartId>(d.msg.value) != frag[v]) {
              AggValue cand{w[d.edge], d.edge};
              best = std::min(best, cand);
            }
          if (best.value != kInf) table[static_cast<std::size_t>(v)][frag[v]] =
              best;
        });

    // Pipelined upcast: each node sends one improved (fragment, candidate)
    // pair to its parent per round until quiescent.
    {
      GhsUpcastProgram up(sim, bfs_tree, table);
      (void)run_vertex_program(sim, up);
    }

    // Root merges centrally.
    UnionFind uf(num_frag);
    bool merged_any = false;
    std::vector<EdgeId> chosen;
    for (const auto& [p, cand] : table[bfs_tree.root()]) {
      EdgeId e = cand.aux;
      chosen.push_back(e);
      if (uf.unite(frag[g.edge(e).u], frag[g.edge(e).v])) merged_any = true;
    }
    // Fragments whose candidates never reached the root cannot exist at
    // quiescence: every fragment with an outgoing edge has a candidate at
    // the root. If nothing merged, we are done (single fragment per
    // component).
    std::sort(chosen.begin(), chosen.end());
    chosen.erase(std::unique(chosen.begin(), chosen.end()), chosen.end());
    out.edges.insert(out.edges.end(), chosen.begin(), chosen.end());
    if (!merged_any) break;
    std::vector<PartId> relabel = uf.dense_labels();

    // Pipelined downcast of the relabel table (old fragment -> new id).
    std::vector<std::vector<std::pair<PartId, PartId>>> to_send(n);
    {
      std::vector<std::pair<PartId, PartId>> pairs;
      for (PartId p = 0; p < num_frag; ++p) pairs.push_back({p, relabel[p]});
      to_send[bfs_tree.root()] = std::move(pairs);
    }
    {
      GhsDowncastProgram down(sim, bfs_tree, to_send);
      (void)run_vertex_program(sim, down);
    }
    for (VertexId v = 0; v < n; ++v) frag[v] = relabel[frag[v]];
    if (trace)
      trace(RoundTrace{"ghs-phase", out.phases,
                       sim.rounds() - phase_rounds_start,
                       sim.messages_sent() - phase_messages_start, 0});
  }

  std::sort(out.edges.begin(), out.edges.end());
  out.edges.erase(std::unique(out.edges.begin(), out.edges.end()),
                  out.edges.end());
  out.rounds = sim.rounds() - start;
  out.fragment_of = std::move(frag);
  return out;
}

}  // namespace mns::congest
