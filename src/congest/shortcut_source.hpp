// ShortcutSource: how the CONGEST workloads obtain shortcuts, and how
// construction charging flows (DESIGN.md §2).
//
// A plain ShortcutProvider answers "give me the shortcut for this partition"
// but says nothing about who pays for building it. A ShortcutSource answers
// both: it returns the shortcut plus whether it was freshly constructed.
// Workloads charge the [HIZ16a] construction substitution only for FRESH
// shortcuts (recording the charge in their result's
// charged_construction_rounds, never in the simulator's measured rounds), so
// a Session cache that serves a previously built shortcut automatically
// yields the "charged once per distinct partition" discipline.
#pragma once

#include <functional>
#include <memory>
#include <utility>

#include "core/shortcut.hpp"

namespace mns::congest {

/// A shortcut handed to a workload, with its charging status. fresh == false
/// means the construction was already paid for (cache hit, or a baseline
/// that builds nothing) and must not be charged again.
struct SourcedShortcut {
  std::shared_ptr<const Shortcut> shortcut;
  bool fresh = true;
};

/// The hand-off point between the construction layer (Session's cache, or a
/// bare engine provider) and the CONGEST workloads.
using ShortcutSource =
    std::function<SourcedShortcut(const Graph&, const Partition&)>;

/// Adapts a plain provider: every invocation builds fresh (the uncached,
/// charge-every-time path — what benches call a "cold" run).
[[nodiscard]] inline ShortcutSource source_from_provider(
    ShortcutProvider provider) {
  return [provider = std::move(provider)](const Graph& g,
                                          const Partition& parts) {
    return SourcedShortcut{
        std::make_shared<const Shortcut>(provider(g, parts)), true};
  };
}

/// Source returning empty shortcuts (the flooding baseline, wrapping the
/// core empty_shortcut_provider). Never fresh: nothing is constructed, so
/// nothing is charged.
[[nodiscard]] inline ShortcutSource empty_shortcut_source() {
  return [provider = empty_shortcut_provider()](const Graph& g,
                                                const Partition& parts) {
    return SourcedShortcut{std::make_shared<const Shortcut>(provider(g, parts)),
                           false};
  };
}

/// One entry of the per-phase telemetry stream every workload can emit
/// (RunReport's RoundTrace hook): which stage of the run consumed what.
struct RoundTrace {
  const char* stage = "";  ///< "boruvka-phase", "packing-tree", ...
  int index = 0;           ///< phase / tree / scale-phase number within a run
  long long rounds = 0;    ///< measured communication rounds of this phase
  long long messages = 0;  ///< messages sent in this phase
  long long charged_rounds = 0;  ///< substitution charges attributed here
};
using RoundTraceHook = std::function<void(const RoundTrace&)>;

}  // namespace mns::congest
