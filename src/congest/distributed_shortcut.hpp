// Distributed tree-restricted shortcut construction — the uniform
// [HIZ16a]-style algorithm Theorem 1 assumes. Nothing here looks at graph
// structure: every part's climbing heads walk up the BFS tree one claim at a
// time, each tree edge admits at most `cap` distinct parts over the whole
// run, and all coordination flows through O(log n)-bit messages in the
// simulator (claims up, verdicts down, per-edge pipelining when several
// parts contend — so congestion costs real measured rounds).
//
// The local stopping rule is purely local, as a real uniform algorithm's
// must be: a head climbs until it merges into territory its part already
// claimed, is rejected (freezing into a block root), or reaches the root.
// This is the distributed counterpart of core's capped_greedy; block
// parameter and congestion of the produced shortcut are measured by the
// usual metrics.
#pragma once

#include "congest/simulator.hpp"
#include "core/partition.hpp"
#include "core/shortcut.hpp"
#include "graph/rooted_tree.hpp"

namespace mns::congest {

struct DistributedShortcutResult {
  Shortcut shortcut;
  long long rounds = 0;   ///< simulated construction rounds
  int frozen_heads = 0;   ///< total rejected climbs (block roots created)
};

/// Runs the construction on `sim`'s graph over the rooted BFS tree `tree`.
/// `cap` is the per-edge part capacity (congestion bound of the result).
[[nodiscard]] DistributedShortcutResult distributed_capped_greedy(
    Simulator& sim, const RootedTree& tree, const Partition& parts, int cap);

}  // namespace mns::congest
