#include "congest/sssp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <utility>

#include "congest/aggregation.hpp"
#include "congest/vertex_program.hpp"

namespace mns::congest {

namespace {

constexpr AggValue kNoValue{std::numeric_limits<std::int64_t>::max(),
                            std::numeric_limits<std::int32_t>::max()};

/// Event-driven lock-step Bellman-Ford as a VertexProgram: frontier nodes
/// re-broadcast their estimate; receivers relax (v-local writes only) and
/// queue newly woken nodes in per-shard lists. Doubles as exact_sssp's whole
/// run (unbounded budget) and approx_sssp's bounded bursts (the program
/// survives across bursts; frontier/in_frontier/dist live with the caller
/// because cluster jumps mutate them between bursts). The optional
/// reached/part-dirty hooks are approx-only cross-vertex effects, funneled
/// through PerShard accumulators and merged at the barrier.
struct BellmanFordProgram {
  const Graph& g;
  const std::vector<Weight>& w;
  std::vector<Weight>& dist;
  std::vector<char>& in_frontier;
  std::vector<VertexId>& frontier_list;
  // approx-only hooks; null for exact_sssp.
  long long* reached = nullptr;
  const Partition* const* parts = nullptr;  ///< current phase partition slot
  std::vector<char>* part_dirty = nullptr;

  long long budget = 0;  ///< rounds left in the current burst
  bool improved = false;
  PerShard<std::vector<VertexId>> next;
  PerShard<long long> reached_delta;
  PerShard<std::vector<PartId>> woken_parts;
  PerShard<char> improved_flag;

  BellmanFordProgram(Simulator& sim, const std::vector<Weight>& weights,
                     std::vector<Weight>& d, std::vector<char>& inf,
                     std::vector<VertexId>& fl)
      : g(sim.graph()), w(weights), dist(d), in_frontier(inf),
        frontier_list(fl), next(sim.num_shards()),
        reached_delta(sim.num_shards()), woken_parts(sim.num_shards()),
        improved_flag(sim.num_shards()) {}

  void start_burst(long long max_rounds) {
    budget = max_rounds;
    improved = false;
  }

  [[nodiscard]] std::span<const VertexId> frontier() const {
    // An exhausted budget hides (but keeps) the frontier: the next burst or
    // a cluster jump picks it back up.
    return budget > 0 ? std::span<const VertexId>(frontier_list)
                      : std::span<const VertexId>();
  }

  void send(VertexId v, VertexSender& out) {
    in_frontier[static_cast<std::size_t>(v)] = 0;
    for (EdgeId e : g.incident_edges(v))
      out.send(e, Message{0, 0, dist[static_cast<std::size_t>(v)]});
  }

  void receive(VertexId v, Inbox inbox,
               const ShardContext& ctx) {
    for (const Delivery& d : inbox) {
      const Weight cand = d.msg.value + w[static_cast<std::size_t>(d.edge)];
      if (cand >= dist[static_cast<std::size_t>(v)]) continue;
      if (reached != nullptr &&
          dist[static_cast<std::size_t>(v)] == kUnreachedWeight)
        ++reached_delta[ctx.shard];
      dist[static_cast<std::size_t>(v)] = cand;
      improved_flag[ctx.shard] = 1;
      if (parts != nullptr && *parts != nullptr) {
        const PartId p = (*parts)->part_of(v);
        if (p != kNoPart) woken_parts[ctx.shard].push_back(p);
      }
      if (!in_frontier[static_cast<std::size_t>(v)]) {
        in_frontier[static_cast<std::size_t>(v)] = 1;
        next[ctx.shard].push_back(v);
      }
    }
  }

  void end_round() {
    --budget;
    frontier_list.clear();
    next.for_each([&](std::vector<VertexId>& part) {
      frontier_list.insert(frontier_list.end(), part.begin(), part.end());
      part.clear();
    });
    reached_delta.for_each([&](long long& delta) {
      if (reached != nullptr) *reached += delta;
      delta = 0;
    });
    woken_parts.for_each([&](std::vector<PartId>& ids) {
      if (part_dirty != nullptr)
        for (PartId p : ids) (*part_dirty)[static_cast<std::size_t>(p)] = 1;
      ids.clear();
    });
    improved_flag.for_each([&](char& flag) {
      improved = improved || flag != 0;
      flag = 0;
    });
  }
};

/// Hop-capped weighted Voronoi cells around the seeds: a thin wrapper over
/// dijkstra_multi's hop cap. Everything beyond the cap stays unowned; the
/// forest's hop depth is what approx_sssp charges per phase.
struct CappedVoronoi {
  std::vector<VertexId> owner;  ///< owning seed or kInvalidVertex
  std::vector<Weight> dist;     ///< weighted distance to the owning seed
  int max_hops = 0;             ///< deepest settled vertex (the charge)
};

CappedVoronoi capped_voronoi(const Graph& g, const std::vector<Weight>& w,
                             const std::vector<VertexId>& seeds, int hop_cap) {
  ShortestPathResult r = dijkstra_multi(g, w, seeds, hop_cap);
  return CappedVoronoi{std::move(r.source), std::move(r.dist), r.max_hops()};
}

}  // namespace

std::vector<Weight> round_weights(const std::vector<Weight>& w,
                                  double epsilon) {
  require(epsilon > 0, "round_weights: epsilon must be positive");
  Weight wmax = 1;
  for (Weight x : w) {
    require(x >= 1, "round_weights: weights must be >= 1");
    wmax = std::max(wmax, x);
  }
  // Representative ladder 1 = r_0 < r_1 < ... with r_{b+1} =
  // max(r_b + 1, floor(r_b * (1+eps))): snapping an integer weight up to the
  // next representative costs at most a (1+eps) factor per edge (if the jump
  // was the +1 branch, the snap is exact). The ladder has <= 2/eps +1 branch
  // steps and then grows by a factor >= (1+eps/2) per step; refuse clearly
  // (instead of hanging) when epsilon is too small for the weight range.
  const double ladder_steps =
      2.0 / epsilon +
      2.0 * std::log(static_cast<double>(wmax) + 1.0) / std::log1p(epsilon) +
      16.0;
  require(ladder_steps <= 1e8,
          "round_weights: epsilon too small for the weight range");
  // Walk the ladder once, streaming assignments over the weights in sorted
  // order — no materialized ladder, O(m) memory.
  std::vector<std::size_t> order(w.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return w[a] < w[b]; });
  std::vector<Weight> out(w.size());
  Weight r = 1;
  std::size_t i = 0;
  while (i < order.size() && w[order[i]] <= r) out[order[i++]] = r;
  while (i < order.size()) {
    const Weight grown = static_cast<Weight>(
        static_cast<long double>(r) *
        (1.0L + static_cast<long double>(epsilon)));
    r = std::max(r + 1, grown);
    while (i < order.size() && w[order[i]] <= r) out[order[i++]] = r;
  }
  return out;
}

SsspResult exact_sssp(Simulator& sim, const std::vector<Weight>& w,
                      VertexId source) {
  const Graph& g = sim.graph();
  const VertexId n = g.num_vertices();
  require(static_cast<EdgeId>(w.size()) == g.num_edges(),
          "exact_sssp: weight size mismatch");
  for (Weight x : w) require(x >= 0, "exact_sssp: negative weight");
  require(source >= 0 && source < n, "exact_sssp: source out of range");

  SsspResult out;
  out.dist.assign(n, kUnreachedWeight);
  out.dist[source] = 0;
  std::vector<char> in_frontier(n, 0);
  std::vector<VertexId> frontier{source};
  in_frontier[source] = 1;
  BellmanFordProgram prog(sim, w, out.dist, in_frontier, frontier);
  prog.start_burst(std::numeric_limits<long long>::max());
  out.rounds = run_vertex_program(sim, prog);
  return out;
}

SsspResult approx_sssp(Simulator& sim, const std::vector<Weight>& w,
                       VertexId source, const ApproxSsspOptions& options) {
  const Graph& g = sim.graph();
  const VertexId n = g.num_vertices();
  require(static_cast<bool>(options.source), "approx_sssp: no shortcut source");
  require(options.bf_rounds_per_cycle >= 1,
          "approx_sssp: bf_rounds_per_cycle must be >= 1");
  require(source >= 0 && source < n, "approx_sssp: source out of range");
  require(static_cast<EdgeId>(w.size()) == g.num_edges(),
          "approx_sssp: weight size mismatch");
  // The provider's spanning-tree factory (and Definition 10 itself) assumes
  // one connected network, like distributed_bfs.
  require(is_connected(g), "approx_sssp: graph disconnected");
  const std::vector<Weight> w2 = round_weights(w, options.epsilon);

  const VertexId num_seeds =
      options.num_seeds > 0
          ? options.num_seeds
          : std::max<VertexId>(2, static_cast<VertexId>(std::ceil(
                                      std::sqrt(static_cast<double>(n)))));
  const int hop_cap =
      options.voronoi_hop_cap > 0
          ? options.voronoi_hop_cap
          : std::clamp(4 * (n / std::max<VertexId>(1, num_seeds)), VertexId{16},
                       std::max<VertexId>(16, n));

  SsspResult out;
  out.dist.assign(n, kUnreachedWeight);
  out.dist[source] = 0;
  std::vector<char> in_frontier(n, 0);
  std::vector<VertexId> frontier{source};
  in_frontier[source] = 1;
  long long reached = 1;
  long long reached_at_partition = 0;
  const long long start = sim.rounds();

  // Per-part "some member improved since the last jump" flags: a jump only
  // aggregates dirty parts — a clean part's min is provably unchanged, so
  // re-flooding its (possibly long-settled) cell would buy nothing and cost
  // congestion rounds. Jump-applied improvements do NOT re-dirty their own
  // part: they are base + cdist[u], so dist[u] + cdist[u] >= base, and the
  // part minimum cannot have dropped.
  std::unique_ptr<Partition> parts;
  const Partition* parts_raw = nullptr;
  std::unique_ptr<PartwiseAggregator> agg;
  std::vector<Weight> cdist;
  std::vector<char> part_dirty;

  // The jump-side relax (sequential, mark_part=false semantics); burst-side
  // relaxes live in BellmanFordProgram::receive with part marking on.
  auto jump_relax = [&](VertexId v, Weight cand) {
    if (cand >= out.dist[v]) return false;
    if (out.dist[v] == kUnreachedWeight) ++reached;
    out.dist[v] = cand;
    if (!in_frontier[v]) {
      in_frontier[v] = 1;
      frontier.push_back(v);
    }
    return true;
  };

  // Bounded event-driven Bellman-Ford burst (the same program as
  // exact_sssp, capped at `max_rounds`; reused across bursts).
  BellmanFordProgram burst(sim, w2, out.dist, in_frontier, frontier);
  burst.reached = &reached;
  burst.parts = &parts_raw;
  burst.part_dirty = &part_dirty;
  auto bf_burst = [&](int max_rounds) {
    burst.start_burst(max_rounds);
    (void)run_vertex_program(sim, burst);
    return burst.improved;
  };

  // Per-phase partition state: weighted Voronoi cells seeded around the
  // current wavefront, with cdist = intra-cell distance to the cell seed.
  // Per-scale-phase trace state: a phase spans from one partition rebuild to
  // the next (bursts, jumps, and the build charge included).
  long long phase_rounds_start = sim.rounds();
  long long phase_messages_start = sim.messages_sent();
  long long phase_charged_start = 0;
  auto emit_phase_trace = [&] {
    if (!options.trace || out.phases == 0) return;
    options.trace(RoundTrace{
        "scale-phase", out.phases, sim.rounds() - phase_rounds_start,
        sim.messages_sent() - phase_messages_start,
        out.charged_construction_rounds - phase_charged_start});
    phase_rounds_start = sim.rounds();
    phase_messages_start = sim.messages_sent();
    phase_charged_start = out.charged_construction_rounds;
  };

  auto rebuild_partition = [&] {
    emit_phase_trace();
    ++out.phases;
    if (options.fixed_cells != nullptr) {
      // Pinned LDD cells (DESIGN.md §13): one weight-independent clustering
      // for the whole run. cdist = forest distance to the cluster center
      // under w2 — still a real path length (u -> center -> v), so the
      // never-undershoot invariant and exactness-at-quiescence carry over.
      const LddDecomposition& ldd = *options.fixed_cells;
      require(ldd.parts.part_of_all().size() == static_cast<std::size_t>(n),
              "approx_sssp: fixed cells sized for a different graph");
      parts = std::make_unique<Partition>(ldd.parts);
      parts_raw = parts.get();
      SourcedShortcut sc = options.source(g, *parts);
      agg = std::make_unique<PartwiseAggregator>(g, *parts, *sc.shortcut);
      cdist = ldd_forest_distances(ldd, g, w2);
      part_dirty.assign(static_cast<std::size_t>(parts->num_parts()), 1);
      // A distributed ball growing settles in radius-many BFS rounds.
      if (sc.fresh) out.charged_construction_rounds += ldd.radius + 1;
      reached_at_partition = reached;
      return;
    }
    std::vector<char> is_seed(n, 0);
    std::vector<VertexId> seeds;
    if (options.wavefront_seeds) {
      // Wavefront seeds first (evenly spaced along the front by distance),
      // then a deterministic spread over still-unreached terrain so cells
      // exist wherever propagation goes next.
      std::vector<VertexId> wavefront;
      for (VertexId v = 0; v < n; ++v) {
        if (out.dist[v] == kUnreachedWeight) continue;
        for (VertexId u : g.neighbors(v))
          if (out.dist[u] == kUnreachedWeight) {
            wavefront.push_back(v);
            break;
          }
      }
      std::sort(wavefront.begin(), wavefront.end(),
                [&](VertexId a, VertexId b) {
                  return std::pair(out.dist[a], a) < std::pair(out.dist[b], b);
                });
      const VertexId front_size = static_cast<VertexId>(wavefront.size());
      const VertexId from_front =
          std::min(front_size, std::max<VertexId>(1, num_seeds / 2));
      for (VertexId i = 0; i < from_front; ++i) {
        const VertexId s = wavefront[static_cast<std::size_t>(i) *
                                     static_cast<std::size_t>(front_size) /
                                     static_cast<std::size_t>(from_front)];
        if (!is_seed[s]) {
          is_seed[s] = 1;
          seeds.push_back(s);
        }
      }
      if (seeds.empty()) {
        is_seed[source] = 1;
        seeds.push_back(source);
      }
      const VertexId stride = std::max<VertexId>(1, n / (num_seeds + 1));
      for (int pass = 0;
           pass < 2 && static_cast<VertexId>(seeds.size()) < num_seeds; ++pass)
        for (VertexId v = 0;
             v < n && static_cast<VertexId>(seeds.size()) < num_seeds;
             v += stride) {
          if (is_seed[v]) continue;
          if (pass == 0 && out.dist[v] != kUnreachedWeight) continue;
          is_seed[v] = 1;
          seeds.push_back(v);
        }
    } else {
      // Source-independent stride spread: the same partition for every query
      // on this network, so a caching source pays its construction once per
      // session instead of once per query (DESIGN.md §5).
      const VertexId stride = std::max<VertexId>(1, n / num_seeds);
      for (VertexId v = 0;
           v < n && static_cast<VertexId>(seeds.size()) < num_seeds;
           v += stride) {
        is_seed[v] = 1;
        seeds.push_back(v);
      }
    }

    CappedVoronoi vor = capped_voronoi(g, w2, seeds, hop_cap);
    std::vector<PartId> seed_index(n, kNoPart);
    for (std::size_t i = 0; i < seeds.size(); ++i)
      seed_index[seeds[i]] = static_cast<PartId>(i);
    std::vector<PartId> part_of(n, kNoPart);
    for (VertexId v = 0; v < n; ++v)
      if (vor.owner[v] != kInvalidVertex) part_of[v] = seed_index[vor.owner[v]];
    parts = std::make_unique<Partition>(std::move(part_of));
    parts_raw = parts.get();
    SourcedShortcut sc = options.source(g, *parts);
    agg = std::make_unique<PartwiseAggregator>(g, *parts, *sc.shortcut);
    cdist = std::move(vor.dist);
    part_dirty.assign(static_cast<std::size_t>(parts->num_parts()), 1);
    // Charge the centralized cell growth as the rounds its distributed
    // (Bellman-Ford-style) counterpart would take: the forest's hop depth.
    // A cache hit means this partition's cells and shortcut were already
    // paid for in this session — no second charge (DESIGN.md §2).
    if (sc.fresh) out.charged_construction_rounds += vor.max_hops + 1;
    reached_at_partition = reached;
  };

  auto need_repartition = [&] {
    if (!parts) return true;
    if (options.fixed_cells != nullptr) return false;  // cells are pinned
    if (static_cast<double>(reached - reached_at_partition) >
        options.repartition_growth * static_cast<double>(n))
      return true;
    if (frontier.empty()) return false;
    // The wavefront has mostly left the covered region.
    VertexId uncovered = 0;
    for (VertexId v : frontier)
      if (parts->part_of(v) == kNoPart) ++uncovered;
    return 2 * uncovered > static_cast<VertexId>(frontier.size());
  };

  // One shortcut-backed jump: every DIRTY cell aggregates min(dist + cdist)
  // and every member relaxes through the cell seed. All estimates remain
  // real path lengths, so the exactness-at-quiescence argument is untouched.
  // Returns the rounds the aggregation consumed (0 = nothing was dirty).
  std::vector<AggValue> init(n);
  auto cluster_jump = [&](bool* improved) {
    *improved = false;
    bool any_dirty = false;
    std::fill(init.begin(), init.end(), kNoValue);
    for (VertexId v = 0; v < n; ++v) {
      if (out.dist[v] == kUnreachedWeight) continue;
      const PartId p = parts->part_of(v);
      if (p == kNoPart || !part_dirty[static_cast<std::size_t>(p)]) continue;
      init[v] = AggValue{out.dist[v] + cdist[v], v};
      any_dirty = true;
    }
    if (!any_dirty) return 0LL;
    ++out.jumps;
    std::fill(part_dirty.begin(), part_dirty.end(), 0);
    const AggregationResult res = agg->aggregate_min(sim, init);
    for (PartId p = 0; p < parts->num_parts(); ++p) {
      if (res.min_of_part[p] == kNoValue) continue;
      const Weight base = res.min_of_part[p].value;
      for (VertexId u : parts->members(p))
        *improved |= jump_relax(u, base + cdist[u]);
    }
    return res.rounds;
  };

  // Cycle: a Bellman-Ford burst, then a jump. The burst budget adapts to the
  // measured cost of the previous jump, so cheap shortcuts (small quality)
  // mean frequent jumps while expensive ones amortize over longer bursts —
  // the total can never exceed a small multiple of the plain-BF rounds.
  int budget = options.bf_rounds_per_cycle;
  while (true) {
    if (need_repartition()) rebuild_partition();
    const bool bf_improved = bf_burst(budget);
    bool jump_improved = false;
    const long long jump_rounds = cluster_jump(&jump_improved);
    budget = std::max<int>(
        options.bf_rounds_per_cycle,
        static_cast<int>(std::min<long long>(jump_rounds, 1 << 20)));
    if (!bf_improved && !jump_improved && frontier.empty()) break;
  }
  emit_phase_trace();
  out.rounds = sim.rounds() - start;
  return out;
}

}  // namespace mns::congest
