#include "congest/solve_handle.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "congest/dominating_set.hpp"
#include "congest/mis.hpp"

namespace mns::congest {

namespace {

/// Projects the LDD shortcut onto a workload partition (DESIGN.md §13):
/// H_p = union of the cluster edge sets H_c over every LDD cluster c that
/// intersects p, sorted and deduped. Any H is correctness-safe for part-wise
/// aggregation (the empty source is the flooding baseline), so projection
/// trades per-partition construction for reuse of ONE cached shortcut.
/// Identical partitions short-circuit to the base shortcut itself.
std::shared_ptr<const Shortcut> project_ldd_shortcut(
    std::shared_ptr<const Shortcut> base, const Partition& cells,
    const Partition& parts) {
  const std::span<const PartId> cell_of = cells.part_of_all();
  const std::span<const PartId> part_of = parts.part_of_all();
  if (cells.num_parts() == parts.num_parts() &&
      std::equal(cell_of.begin(), cell_of.end(), part_of.begin(),
                 part_of.end()))
    return base;
  // (target part, cell) incidence pairs, deduped by sort.
  std::vector<std::pair<PartId, PartId>> inc;
  for (std::size_t v = 0; v < part_of.size(); ++v)
    if (part_of[v] != kNoPart) inc.emplace_back(part_of[v], cell_of[v]);
  std::sort(inc.begin(), inc.end());
  inc.erase(std::unique(inc.begin(), inc.end()), inc.end());
  auto out = std::make_shared<Shortcut>();
  out->edges_of_part.resize(static_cast<std::size_t>(parts.num_parts()));
  for (std::size_t i = 0; i < inc.size();) {
    const PartId p = inc[i].first;
    std::vector<EdgeId>& hp = out->edges_of_part[static_cast<std::size_t>(p)];
    for (; i < inc.size() && inc[i].first == p; ++i) {
      const std::vector<EdgeId>& hc =
          base->edges_of_part[static_cast<std::size_t>(inc[i].second)];
      hp.insert(hp.end(), hc.begin(), hc.end());
    }
    std::sort(hp.begin(), hp.end());
    hp.erase(std::unique(hp.begin(), hp.end()), hp.end());
  }
  return out;
}

}  // namespace

// -------------------------------------------------------- payload accessors

const MstPayload& RunReport::mst() const {
  const auto* p = std::get_if<MstPayload>(&payload);
  require(p != nullptr, "RunReport: not an MST payload");
  return *p;
}
const MinCutPayload& RunReport::min_cut() const {
  const auto* p = std::get_if<MinCutPayload>(&payload);
  require(p != nullptr, "RunReport: not a min-cut payload");
  return *p;
}
const SsspPayload& RunReport::sssp() const {
  const auto* p = std::get_if<SsspPayload>(&payload);
  require(p != nullptr, "RunReport: not an SSSP payload");
  return *p;
}
const BfsPayload& RunReport::bfs() const {
  const auto* p = std::get_if<BfsPayload>(&payload);
  require(p != nullptr, "RunReport: not a BFS payload");
  return *p;
}
const AggregatePayload& RunReport::aggregate() const {
  const auto* p = std::get_if<AggregatePayload>(&payload);
  require(p != nullptr, "RunReport: not an aggregation payload");
  return *p;
}
const MisPayload& RunReport::mis() const {
  const auto* p = std::get_if<MisPayload>(&payload);
  require(p != nullptr, "RunReport: not a MIS payload");
  return *p;
}
const DomsetPayload& RunReport::domset() const {
  const auto* p = std::get_if<DomsetPayload>(&payload);
  require(p != nullptr, "RunReport: not a dominating-set payload");
  return *p;
}

// ------------------------------------------------------------- solve handle

SolveHandle::SolveHandle(std::shared_ptr<const SolverCore> core,
                         ExecutionPolicy execution)
    : core_((require(core != nullptr, "SolveHandle: null core"),
             std::move(core))),
      default_execution_(execution),
      sim_(core_->graph(), execution) {
  register_builtin_workloads();
}

void SolveHandle::rebind(std::shared_ptr<const SolverCore> core) {
  require(core != nullptr, "SolveHandle: null core");
  // The simulator holds a reference into the current graph; a rebind may
  // swap structural knowledge (certificate/tree/cache) but never the
  // network itself.
  require(core->graph_ptr().get() == core_->graph_ptr().get(),
          "SolveHandle: rebind must keep the same graph");
  core_ = std::move(core);
}

ShortcutSource SolveHandle::make_source(const SolveOptions& opt) {
  if (!opt.use_shortcuts) return empty_shortcut_source();
  if (opt.partition == PartitionSource::kLdd) {
    // LDD provenance: every request resolves to the SAME cache entry (the
    // core LDD's shortcut), projected locally onto whatever partition the
    // workload aggregates over. Only the underlying construction is ever
    // charged — the projection is local bookkeeping, not communication.
    return [this, use_cache = opt.use_cache,
            charge = opt.charge_construction](const Graph& g,
                                              const Partition& parts) {
      require(&g == &core_->graph(),
              "SolveHandle: shortcut requested for foreign graph");
      const LddDecomposition& ldd = core_->ldd();
      SolverCore::Acquired a = core_->acquire(ldd.parts, use_cache);
      if (a.hit)
        ++hits_;
      else
        ++misses_;
      evictions_ += static_cast<long long>(a.evictions);
      SourcedShortcut s{
          project_ldd_shortcut(std::move(a.shortcut), ldd.parts, parts),
          a.fresh};
      if (!charge) s.fresh = false;
      return s;
    };
  }
  return [this, use_cache = opt.use_cache,
          charge = opt.charge_construction](const Graph& g,
                                            const Partition& parts) {
    require(&g == &core_->graph(),
            "SolveHandle: shortcut requested for foreign graph");
    SolverCore::Acquired a = core_->acquire(parts, use_cache);
    if (a.hit)
      ++hits_;
    else
      ++misses_;
    evictions_ += static_cast<long long>(a.evictions);
    SourcedShortcut s{std::move(a.shortcut), a.fresh};
    if (!charge) s.fresh = false;  // ablation: never charge construction
    return s;
  };
}

template <typename Body>
RunReport SolveHandle::run(const char* workload, const SolveOptions& opt,
                           Body&& body) {
  // Apply this solve's execution policy before anything is staged: 0 keeps
  // the handle default, -1 asks for hardware_concurrency, N pins N shards.
  ExecutionPolicy policy = default_execution_;
  if (opt.threads > 0) policy.threads = opt.threads;
  if (opt.threads < 0) policy.threads = 0;  // resolve to hardware width
  if (policy.resolved() != sim_.num_shards()) sim_.set_execution_policy(policy);
  const auto start_clock = std::chrono::steady_clock::now();
  const long long start_rounds = sim_.rounds();
  const long long start_messages = sim_.messages_sent();
  const long long start_hits = hits_;
  const long long start_misses = misses_;
  const long long start_evictions = evictions_;
  RunReport r;
  r.workload = workload;
  r.threads = sim_.num_shards();
  body(r);
  r.rounds = sim_.rounds() - start_rounds;
  r.messages = sim_.messages_sent() - start_messages;
  r.cache_hits = hits_ - start_hits;
  r.cache_misses = misses_ - start_misses;
  r.cache_evictions = evictions_ - start_evictions;
  r.wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start_clock)
                  .count();
  return r;
}

RunReport SolveHandle::solve(const Mst& q, const SolveOptions& opt) {
  return run("mst", opt, [&](RunReport& r) {
    MstOptions mopt;
    mopt.source = make_source(opt);
    mopt.stop_at_fragment_size = q.stop_at_fragment_size;
    mopt.trace = opt.trace;
    MstResult res = boruvka_mst(sim_, q.weights, mopt);
    r.charged_construction_rounds = res.charged_construction_rounds;
    r.phases = res.phases;
    r.aggregations = res.aggregations;
    r.payload = MstPayload{std::move(res.edges), std::move(res.fragment_of)};
  });
}

RunReport SolveHandle::solve(const GhsMst& q, const SolveOptions& opt) {
  return run("mst.ghs", opt, [&](RunReport& r) {
    // GHS is shortcut-free: nothing to cache or charge; only the trace
    // stream applies.
    MstResult res = controlled_ghs_mst(sim_, core_->tree(), q.weights,
                                       opt.trace);
    r.phases = res.phases;
    r.aggregations = res.aggregations;
    r.payload = MstPayload{std::move(res.edges), std::move(res.fragment_of)};
  });
}

RunReport SolveHandle::solve(const MinCut& q, const SolveOptions& opt) {
  return run("mincut", opt, [&](RunReport& r) {
    MinCutOptions copt;
    copt.source = make_source(opt);
    copt.num_trees = q.num_trees;
    copt.two_respecting = q.two_respecting;
    copt.trace = opt.trace;
    MinCutResult res = approx_min_cut(sim_, q.weights, copt);
    r.charged_construction_rounds = res.charged_construction_rounds;
    r.phases = res.trees;
    r.aggregations = res.aggregations;
    r.payload = MinCutPayload{res.value, res.trees};
  });
}

RunReport SolveHandle::solve(const ExactSssp& q, const SolveOptions& opt) {
  return run("sssp.exact", opt, [&](RunReport& r) {
    (void)opt;  // Bellman-Ford is shortcut-free
    SsspResult res = exact_sssp(sim_, q.weights, q.source);
    r.phases = res.phases;
    r.payload = SsspPayload{std::move(res.dist), res.jumps};
  });
}

RunReport SolveHandle::solve(const ApproxSssp& q, const SolveOptions& opt) {
  return run("sssp.approx", opt, [&](RunReport& r) {
    ApproxSsspOptions sopt;
    sopt.source = make_source(opt);
    sopt.epsilon = q.epsilon;
    sopt.num_seeds = q.num_seeds;
    sopt.bf_rounds_per_cycle = q.bf_rounds_per_cycle;
    sopt.repartition_growth = q.repartition_growth;
    sopt.voronoi_hop_cap = q.voronoi_hop_cap;
    sopt.wavefront_seeds = q.wavefront_seeds;
    sopt.trace = opt.trace;
    // LDD provenance pins the cells themselves: one fixed clustering, never
    // repartitioned, so every run over this core is the same cache entry.
    if (opt.partition == PartitionSource::kLdd) sopt.fixed_cells = &core_->ldd();
    SsspResult res = approx_sssp(sim_, q.weights, q.source, sopt);
    r.charged_construction_rounds = res.charged_construction_rounds;
    r.phases = res.phases;
    r.aggregations = res.jumps;
    r.payload = SsspPayload{std::move(res.dist), res.jumps};
  });
}

RunReport SolveHandle::solve(const Bfs& q, const SolveOptions& opt) {
  return run("bfs", opt, [&](RunReport& r) {
    (void)opt;  // flooding needs no shortcuts
    DistributedBfsResult res = distributed_bfs(sim_, q.root);
    r.phases = 1;
    r.payload = BfsPayload{std::move(res.dist), std::move(res.parent),
                           std::move(res.parent_edge)};
  });
}

RunReport SolveHandle::solve(const Mis& q, const SolveOptions& opt) {
  return run("mis", opt, [&](RunReport& r) {
    MisOptions mopt;
    mopt.seed = q.seed;
    mopt.trace = opt.trace;
    MisResult res = luby_mis(sim_, mopt);
    r.phases = res.phases;
    r.payload = MisPayload{std::move(res.in_mis), res.size};
  });
}

RunReport SolveHandle::solve(const DominatingSet& q, const SolveOptions& opt) {
  return run("domset", opt, [&](RunReport& r) {
    (void)q;  // span greedy has no knobs beyond the trace
    DominatingSetOptions dopt;
    dopt.trace = opt.trace;
    DominatingSetResult res =
        span_greedy_dominating_set(sim_, core_->tree(), dopt);
    r.phases = res.phases;
    r.payload = DomsetPayload{std::move(res.in_set), res.size};
  });
}

RunReport SolveHandle::solve(const Aggregate& q, const SolveOptions& opt) {
  return run("aggregate", opt, [&](RunReport& r) {
    require(static_cast<VertexId>(q.values.size()) ==
                core_->graph().num_vertices(),
            "SolveHandle: aggregate values size mismatch");
    SourcedShortcut s = make_source(opt)(core_->graph(), q.parts);
    PartwiseAggregator agg(core_->graph(), q.parts, *s.shortcut);
    AggregationResult res = agg.aggregate_min(sim_, q.values);
    r.phases = 1;
    r.aggregations = 1;
    if (s.fresh) r.charged_construction_rounds = res.rounds;
    r.payload = AggregatePayload{std::move(res.min_of_part)};
  });
}

// ---------------------------------------------------------------- registry

void SolveHandle::register_workload(std::string name, WorkloadFn fn) {
  require(!name.empty(), "SolveHandle: empty workload name");
  require(static_cast<bool>(fn), "SolveHandle: null workload");
  auto [it, inserted] = workloads_.emplace(std::move(name), std::move(fn));
  if (!inserted)
    throw InvariantViolation("SolveHandle: duplicate workload '" + it->first +
                             "'");
}

bool SolveHandle::has_workload(std::string_view name) const {
  return workloads_.find(name) != workloads_.end();
}

std::vector<std::string> SolveHandle::workload_names() const {
  std::vector<std::string> names;
  names.reserve(workloads_.size());
  for (const auto& [name, fn] : workloads_) names.push_back(name);
  return names;
}

RunReport SolveHandle::solve(std::string_view workload,
                             const WorkloadParams& params,
                             const SolveOptions& opt) {
  auto it = workloads_.find(workload);
  if (it == workloads_.end())
    throw InvariantViolation("SolveHandle: unknown workload '" +
                             std::string(workload) + "'");
  RunReport r = it->second(*this, params, opt);
  r.workload = std::string(workload);
  return r;
}

void SolveHandle::register_builtin_workloads() {
  register_workload("mst", [](SolveHandle& h, const WorkloadParams& p,
                              const SolveOptions& o) {
    return h.solve(Mst{p.weights, p.stop_at_fragment_size}, o);
  });
  register_workload("mst.ghs", [](SolveHandle& h, const WorkloadParams& p,
                                  const SolveOptions& o) {
    return h.solve(GhsMst{p.weights}, o);
  });
  register_workload("mincut", [](SolveHandle& h, const WorkloadParams& p,
                                 const SolveOptions& o) {
    return h.solve(MinCut{p.weights, p.num_trees, p.two_respecting}, o);
  });
  register_workload("sssp.exact", [](SolveHandle& h, const WorkloadParams& p,
                                     const SolveOptions& o) {
    return h.solve(ExactSssp{p.weights, p.source}, o);
  });
  register_workload("sssp.approx", [](SolveHandle& h, const WorkloadParams& p,
                                      const SolveOptions& o) {
    return h.solve(
        ApproxSssp{p.weights, p.source, p.epsilon, p.num_seeds,
                   p.bf_rounds_per_cycle, p.repartition_growth,
                   p.voronoi_hop_cap, p.wavefront_seeds},
        o);
  });
  register_workload("bfs", [](SolveHandle& h, const WorkloadParams& p,
                              const SolveOptions& o) {
    return h.solve(Bfs{p.source}, o);
  });
  register_workload("mis", [](SolveHandle& h, const WorkloadParams& p,
                              const SolveOptions& o) {
    return h.solve(Mis{p.seed}, o);
  });
  register_workload("domset", [](SolveHandle& h, const WorkloadParams& p,
                                 const SolveOptions& o) {
    (void)p;  // span greedy has no parameter knobs
    return h.solve(DominatingSet{}, o);
  });
}

const std::vector<std::string>& builtin_workload_names() {
  static const std::vector<std::string> names = {
      "bfs",         "domset", "mincut",     "mis",
      "mst",         "mst.ghs", "sssp.approx", "sssp.exact"};
  return names;
}

}  // namespace mns::congest
