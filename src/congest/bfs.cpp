#include "congest/bfs.hpp"

#include <stdexcept>

#include "congest/vertex_program.hpp"

namespace mns::congest {

namespace {

/// Flooding BFS as a VertexProgram: frontier nodes offer their distance on
/// every edge toward unsettled neighbours; an unsettled node adopts the
/// first delivery as its parent. All receive-side writes are v-local; the
/// next frontier is assembled from per-shard lists at the barrier.
struct BfsProgram {
  const Graph& g;
  DistributedBfsResult& r;
  std::vector<VertexId> active;
  PerShard<std::vector<VertexId>> next;

  BfsProgram(Simulator& sim, DistributedBfsResult& result, VertexId root)
      : g(sim.graph()), r(result), next(sim.num_shards()) {
    active.push_back(root);
  }

  [[nodiscard]] std::span<const VertexId> frontier() const { return active; }

  void send(VertexId v, VertexSender& out) {
    auto eids = g.incident_edges(v);
    auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < eids.size(); ++i) {
      if (r.dist[nbrs[i]] != -1) continue;  // local knowledge shortcut is
      // not available in CONGEST, but suppressing sends to already-settled
      // neighbors only reduces message counts, not rounds.
      out.send(eids[i], Message{0, 0, r.dist[v]});
    }
  }

  void receive(VertexId v, Inbox inbox,
               const ShardContext& ctx) {
    if (r.dist[v] != -1) return;
    const Delivery& d = inbox.front();
    r.dist[v] = static_cast<int>(d.msg.value) + 1;
    r.parent[v] = d.from;
    r.parent_edge[v] = d.edge;
    next[ctx.shard].push_back(v);
  }

  void end_round() {
    active.clear();
    next.for_each([&](std::vector<VertexId>& part) {
      active.insert(active.end(), part.begin(), part.end());
      part.clear();
    });
  }
};

}  // namespace

DistributedBfsResult distributed_bfs(Simulator& sim, VertexId root) {
  const Graph& g = sim.graph();
  const VertexId n = g.num_vertices();
  DistributedBfsResult r;
  r.dist.assign(n, -1);
  r.parent.assign(n, kInvalidVertex);
  r.parent_edge.assign(n, kInvalidEdge);
  r.dist[root] = 0;

  BfsProgram prog(sim, r, root);
  r.rounds = run_vertex_program(sim, prog);
  for (VertexId v = 0; v < n; ++v)
    if (r.dist[v] == -1)
      throw std::invalid_argument("distributed_bfs: graph disconnected");
  return r;
}

RootedTree tree_from_distributed_bfs(const DistributedBfsResult& r,
                                     VertexId root) {
  return RootedTree(root, r.parent, r.parent_edge);
}

}  // namespace mns::congest
