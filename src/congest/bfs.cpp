#include "congest/bfs.hpp"

#include <stdexcept>

namespace mns::congest {

DistributedBfsResult distributed_bfs(Simulator& sim, VertexId root) {
  const Graph& g = sim.graph();
  const VertexId n = g.num_vertices();
  DistributedBfsResult r;
  r.dist.assign(n, -1);
  r.parent.assign(n, kInvalidVertex);
  r.parent_edge.assign(n, kInvalidEdge);
  r.dist[root] = 0;

  std::vector<VertexId> frontier{root};
  std::vector<VertexId> next;
  r.rounds = run_round_loop(
      sim,
      [&] {
        if (frontier.empty()) return false;
        for (VertexId v : frontier) {
          auto eids = g.incident_edges(v);
          auto nbrs = g.neighbors(v);
          for (std::size_t i = 0; i < eids.size(); ++i) {
            if (r.dist[nbrs[i]] != -1) continue;  // local knowledge shortcut
            // is not available in CONGEST, but suppressing sends to
            // already-settled neighbors only reduces message counts, not
            // rounds.
            sim.send(v, eids[i], Message{0, 0, r.dist[v]});
          }
        }
        return true;
      },
      [&] {
        next.clear();
        for (VertexId v : sim.delivered_to()) {
          if (r.dist[v] != -1) continue;
          const Delivery& d = sim.inbox(v).front();
          r.dist[v] = static_cast<int>(d.msg.value) + 1;
          r.parent[v] = d.from;
          r.parent_edge[v] = d.edge;
          next.push_back(v);
        }
        frontier.swap(next);
      });
  for (VertexId v = 0; v < n; ++v)
    if (r.dist[v] == -1)
      throw std::invalid_argument("distributed_bfs: graph disconnected");
  return r;
}

RootedTree tree_from_distributed_bfs(const DistributedBfsResult& r,
                                     VertexId root) {
  return RootedTree(root, r.parent, r.parent_edge);
}

}  // namespace mns::congest
