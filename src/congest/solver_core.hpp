// congest::SolverCore — the immutable, shareable half of a solver session
// (DESIGN.md §10 "Serving architecture").
//
// The paper's economy is "pay for structure once, answer many queries
// cheaply": the expensive objects are the network, the structural
// certificate, the rooted spanning tree, and the shortcuts built from them —
// none of which a query mutates. SolverCore owns exactly that expensive,
// read-only state and nothing else:
//
//   graph + certificate     fixed at construction, never reassigned
//   rooted tree             built once (thread-safe, std::call_once), then const
//   shortcut cache          read-mostly: lookups take a shared lock, misses
//                           build OUTSIDE any lock and insert once, LRU
//                           accounting is a single atomic use-stamp per hit
//
// Because nothing observable mutates, one SolverCore can be shared by any
// number of threads: each concurrent request drives its own cheap
// SolveHandle (solve_handle.hpp) over the same core, and serve::QueryServer
// (src/serve/) fans batches of requests across a WorkerPool this way. The
// legacy congest::Session is now a thin facade over one core + one handle.
//
// Cache concurrency discipline (the DESIGN.md §10 contract):
//   * lookup: shared lock; on hit, stamp the entry from a global atomic use
//     clock (a total order over hits — "epoch-batched" LRU refresh without
//     an exclusive lock on the hot path) and copy the shared_ptr out.
//   * miss: release the lock, build via the engine, then take the exclusive
//     lock once to insert; a racing builder of the same partition keeps the
//     first-inserted entry (results are deterministic, so both builds are
//     bit-identical) and no duplicate is stored.
//   * eviction: under the exclusive lock, evict the entry with the SMALLEST
//     use stamp — exact LRU by the global hit order, never corrupted or
//     approximated by concurrency.
// Counters (hits/misses) of the core are atomics and count every acquire;
// per-REQUEST counters live in the SolveHandle so RunReports stay
// bit-identical across worker widths.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <vector>

#include "core/certificate.hpp"
#include "core/ldd.hpp"
#include "core/shortcut_engine.hpp"
#include "graph/delta.hpp"

namespace mns::io {
struct Snapshot;         // io/snapshot.hpp
struct CachedShortcut;   // io/snapshot.hpp
}  // namespace mns::io

namespace mns::congest {

/// What one structural update() did to the cached state (DESIGN.md §12).
/// The id maps let callers carry per-edge side data (weights) and remembered
/// vertex ids across the update; both are empty for weight-only batches
/// (which change no ids at all).
struct UpdateStats {
  std::size_t entries_kept = 0;         ///< cache entries that survived live
  std::size_t entries_invalidated = 0;  ///< entries dropped as dirty
  std::size_t subpaths_rebuilt = 0;     ///< re-hung rooted-tree subpaths
  bool structural = false;              ///< false: weight-only, nothing moved
  std::vector<VertexId> vertex_map;     ///< old id -> new id (structural only)
  std::vector<EdgeId> edge_map;         ///< old id -> new id (structural only)
};

/// Construction-time knobs of a SolverCore (the immutable subset of the old
/// SessionConfig: everything except the per-request execution policy).
struct CoreConfig {
  /// Roots the core's spanning tree (built ONCE, on first use, reused by
  /// every shortcut construction); default center_tree_factory().
  TreeFactory tree;
  /// Construction engine; default &ShortcutEngine::global(). Must outlive
  /// the core.
  const ShortcutEngine* engine = nullptr;
  /// Max cached shortcuts before LRU eviction.
  std::size_t cache_capacity = 64;
  /// Knobs for the core's low-diameter decomposition (built ONCE, on first
  /// use via ldd(); weight-independent, so it survives weight updates).
  LddOptions ldd;
};

class SolverCore {
 public:
  /// Takes ownership of the network. The certificate is the core's
  /// structural knowledge; every shortcut dispatches through it.
  explicit SolverCore(Graph g, StructuralCertificate certificate,
                      CoreConfig config = {});
  /// Shares an existing network (used by Session::set_certificate /
  /// set_tree_factory, which swap structural knowledge by building a NEW
  /// core over the SAME graph so simulators keep their references).
  SolverCore(std::shared_ptr<const Graph> g, StructuralCertificate certificate,
             CoreConfig config = {});

  /// Rebuilds a core from a snapshot (DESIGN.md §8): installs the
  /// snapshotted tree (config.tree only applies if the snapshot carries
  /// none) and re-keys every cached shortcut under this core's partition
  /// fingerprints, MRU order preserved — the first solve over a snapshotted
  /// partition is a cache HIT. Throws io::SnapshotError on invalid data.
  [[nodiscard]] static std::shared_ptr<const SolverCore> restore(
      io::Snapshot&& snapshot, CoreConfig config = {});

  /// Incremental update (DESIGN.md §12): applies a STRUCTURAL batch and
  /// returns the successor core over the post-update graph, doing the
  /// minimum work — the spanning tree (if already built) is patched by
  /// re-hanging only broken subpaths, the certificate is remapped, and
  /// every cache entry whose partition avoids the touched vertices and
  /// whose shortcut lost no edge MIGRATES live (ids remapped, LRU order
  /// preserved) so it stays a hit with zero construction charge. Dirty
  /// entries are dropped; nothing else is flushed. Weight-only batches must
  /// not come here (they need no new core — see Session::update). Call only
  /// while no handle is mid-solve, like clear_cache. Throws UpdateError on
  /// batches the structures cannot absorb.
  [[nodiscard]] std::shared_ptr<const SolverCore> update(
      const UpdateBatch& batch, UpdateStats& stats) const;

  /// Cumulative churn telemetry (persisted in snapshot v2).
  [[nodiscard]] UpdateHistory history() const noexcept;
  /// Records a weight-only update (no structural work, nothing invalidated).
  void note_weight_update() const noexcept {
    weight_updates_.fetch_add(1, std::memory_order_relaxed);
  }

  SolverCore(const SolverCore&) = delete;
  SolverCore& operator=(const SolverCore&) = delete;

  // -- the immutable state (const + noexcept: safe from any thread) --------
  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }
  [[nodiscard]] const std::shared_ptr<const Graph>& graph_ptr() const noexcept {
    return g_;
  }
  [[nodiscard]] const StructuralCertificate& certificate() const noexcept {
    return cert_;
  }
  [[nodiscard]] const ShortcutEngine& engine() const noexcept {
    return *engine_;
  }
  [[nodiscard]] const TreeFactory& tree_factory() const noexcept {
    return tree_factory_;
  }
  /// The core spanning tree, built on first use (std::call_once — safe to
  /// race) and immutable afterwards.
  [[nodiscard]] const RootedTree& tree() const;
  /// The core's low-diameter decomposition (core/ldd.hpp), built on first
  /// use (std::call_once) and immutable afterwards. Weight-independent: one
  /// decomposition per core serves every workload that asks for
  /// PartitionSource::kLdd, so its shortcut is ONE cache entry shared by all
  /// of them.
  [[nodiscard]] const LddDecomposition& ldd() const;
  [[nodiscard]] const LddOptions& ldd_options() const noexcept {
    return ldd_options_;
  }

  // -- the read-mostly shortcut acquisition path ---------------------------

  /// What acquire() hands back: the shortcut with its charging status
  /// (SourcedShortcut semantics, shortcut_source.hpp) plus whether the cache
  /// served it — callers (SolveHandles) count hit/miss per request.
  struct Acquired {
    std::shared_ptr<const Shortcut> shortcut;
    bool fresh = true;  ///< freshly constructed: the caller pays the charge
    bool hit = false;   ///< served from cache
    std::size_t evictions = 0;  ///< entries this acquire's insert evicted
  };
  /// use_cache == false bypasses the cache entirely (every build is a miss,
  /// nothing is inserted) — the benches' cold baseline.
  [[nodiscard]] Acquired acquire(const Partition& parts, bool use_cache) const;

  /// Builds, validates, AND measures the certificate's shortcut for `parts`
  /// (quality metrics for analysis/benches); the built shortcut is inserted
  /// into the cache (or its resident entry refreshed) WITHOUT touching the
  /// hit/miss counters — analysis is not query traffic.
  [[nodiscard]] BuildResult analyze(const Partition& parts) const;

  // -- cache introspection (stats are atomics: const + noexcept) -----------
  struct CacheStats {
    long long hits = 0;    ///< acquires served from cache, core lifetime
    long long misses = 0;  ///< acquires that built (cached or bypass)
    long long evictions = 0;  ///< entries LRU-evicted under capacity pressure
    std::size_t entries = 0;
    std::size_t capacity = 0;
  };
  [[nodiscard]] CacheStats cache_stats() const noexcept;
  [[nodiscard]] std::size_t cache_size() const noexcept;
  [[nodiscard]] long long cache_hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] long long cache_misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] long long cache_evictions() const noexcept {
    return evictions_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t cache_capacity() const noexcept {
    return cache_capacity_;
  }
  /// Drops every cached shortcut (counters are NOT reset). Not part of the
  /// serving discipline — call only while no handle is mid-solve.
  void clear_cache() const;

  // -- snapshot support ----------------------------------------------------
  /// Cached shortcuts, most-recently-used first (what Session::save writes).
  [[nodiscard]] std::vector<io::CachedShortcut> export_cache() const;
  /// Inserts a restored shortcut (counter-neutral, evicts per capacity).
  /// Call in LRU-to-MRU order so use stamps reproduce the snapshot order.
  void seed_cache(std::vector<PartId> part_of,
                  std::shared_ptr<const Shortcut> shortcut) const;

  /// The cache key: FNV-1a over num_parts then every part id, in vertex
  /// order — sensitive to any relabeling or permutation of part_of. Public
  /// and static so tools (mnsctl inspect) and tests can pin golden values.
  [[nodiscard]] static std::uint64_t partition_fingerprint(
      PartId num_parts, std::span<const PartId> part_of);

 private:
  struct CacheEntry {
    std::uint64_t key = 0;        ///< fingerprint(num_parts, part_of)
    std::vector<PartId> part_of;  ///< exact guard against hash collisions
    std::shared_ptr<const Shortcut> shortcut;
    /// Global-use-clock stamp of the last hit/insert; eviction takes the
    /// minimum. Atomic so hits can stamp under the SHARED lock.
    std::atomic<std::uint64_t> last_use;
    CacheEntry(std::uint64_t k, std::vector<PartId> p,
               std::shared_ptr<const Shortcut> s, std::uint64_t use)
        : key(k),
          part_of(std::move(p)),
          shortcut(std::move(s)),
          last_use(use) {}
  };

  [[nodiscard]] std::uint64_t fingerprint(
      PartId num_parts, std::span<const PartId> part_of) const {
    return partition_fingerprint(num_parts, part_of);
  }
  [[nodiscard]] std::uint64_t next_use() const {
    return use_clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  /// Dedupe-probe + evict + insert; cache_mutex_ must be held exclusively.
  /// Returns the number of entries evicted to make room.
  std::size_t insert_locked(std::uint64_t key, std::vector<PartId> part_of,
                            std::shared_ptr<const Shortcut> shortcut) const;

  std::shared_ptr<const Graph> g_;
  StructuralCertificate cert_;
  TreeFactory tree_factory_;
  const ShortcutEngine* engine_;
  std::size_t cache_capacity_;
  LddOptions ldd_options_;

  mutable std::once_flag tree_once_;
  mutable std::optional<RootedTree> tree_;
  mutable std::once_flag ldd_once_;
  mutable std::optional<LddDecomposition> ldd_;

  mutable std::shared_mutex cache_mutex_;
  mutable std::list<CacheEntry> entries_;
  mutable std::map<std::uint64_t, std::vector<std::list<CacheEntry>::iterator>>
      index_;
  mutable std::atomic<std::uint64_t> use_clock_{0};
  mutable std::atomic<long long> hits_{0};
  mutable std::atomic<long long> misses_{0};
  mutable std::atomic<long long> evictions_{0};

  /// Structural-update telemetry, written before the core is shared
  /// (update()/restore() on the successor core); weight-only updates bump
  /// the atomic counter on the live core.
  UpdateHistory history_{};
  mutable std::atomic<std::uint64_t> weight_updates_{0};
};

}  // namespace mns::congest
