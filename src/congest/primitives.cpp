#include "congest/primitives.hpp"

#include <algorithm>

#include "congest/bfs.hpp"
#include "congest/vertex_program.hpp"

namespace mns::congest {

namespace {

/// Root-to-leaves value flooding along tree edges: each frontier node pushes
/// the value to its children; a child adopts on first delivery.
struct BroadcastProgram {
  const RootedTree& tree;
  BroadcastResult& out;
  std::vector<char> has;
  std::vector<VertexId> active;
  PerShard<std::vector<VertexId>> next;

  BroadcastProgram(Simulator& sim, const RootedTree& t, BroadcastResult& o)
      : tree(t), out(o), has(static_cast<std::size_t>(t.num_vertices()), 0),
        next(sim.num_shards()) {
    has[tree.root()] = 1;
    // Only nodes with children enter the frontier: a leaf-only frontier
    // would buy a message-free round the old send()==false check never
    // counted.
    if (!tree.children(tree.root()).empty()) active.push_back(tree.root());
  }

  [[nodiscard]] std::span<const VertexId> frontier() const { return active; }

  void send(VertexId v, VertexSender& sender) {
    for (VertexId c : tree.children(v))
      sender.send(tree.parent_edge(c), Message{0, 0, out.received[v]});
  }

  void receive(VertexId c, Inbox inbox,
               const ShardContext& ctx) {
    if (has[c]) return;
    has[c] = 1;
    out.received[c] = inbox.front().msg.value;
    if (!tree.children(c).empty()) next[ctx.shard].push_back(c);
  }

  void end_round() {
    active.clear();
    next.for_each([&](std::vector<VertexId>& part) {
      active.insert(active.end(), part.begin(), part.end());
      part.clear();
    });
  }
};

/// Leaves-to-root min: a node reports to its parent once every child
/// reported; the ready list is the frontier. kSum switches the combine to
/// addition (convergecast_sum: subtree totals instead of minima).
enum class ConvergecastOp { kMin, kSum };

template <ConvergecastOp Op>
struct ConvergecastProgram {
  const RootedTree& tree;
  std::vector<int> waiting;
  std::vector<std::int64_t> best;
  std::vector<char> sent;
  std::vector<VertexId> ready;
  PerShard<std::vector<VertexId>> next_ready;

  ConvergecastProgram(Simulator& sim, const RootedTree& t,
                      const std::vector<std::int64_t>& values)
      : tree(t), waiting(static_cast<std::size_t>(t.num_vertices()), 0),
        best(values), sent(static_cast<std::size_t>(t.num_vertices()), 0),
        next_ready(sim.num_shards()) {
    const VertexId n = t.num_vertices();
    for (VertexId v = 0; v < n; ++v)
      waiting[v] = static_cast<int>(t.children(v).size());
    for (VertexId v = 0; v < n; ++v)
      if (v != t.root() && waiting[v] == 0) ready.push_back(v);
  }

  [[nodiscard]] std::span<const VertexId> frontier() const { return ready; }

  void send(VertexId v, VertexSender& sender) {
    sender.send(tree.parent_edge(v), Message{0, 0, best[v]});
    sent[v] = 1;
  }

  void receive(VertexId v, Inbox inbox,
               const ShardContext& ctx) {
    for (const Delivery& d : inbox) {
      if constexpr (Op == ConvergecastOp::kMin)
        best[v] = std::min(best[v], d.msg.value);
      else
        best[v] += d.msg.value;
      --waiting[v];
    }
    if (v != tree.root() && !sent[v] && waiting[v] == 0)
      next_ready[ctx.shard].push_back(v);
  }

  void end_round() {
    ready.clear();
    next_ready.for_each([&](std::vector<VertexId>& part) {
      ready.insert(ready.end(), part.begin(), part.end());
      part.clear();
    });
  }
};

/// Min-id flooding on the raw graph: every node re-broadcasts its current
/// best over all edges each round until nothing improves anywhere (an OR
/// reduction over per-shard changed flags).
struct LeaderProgram {
  const Graph& g;
  std::vector<VertexId>& best;
  std::vector<VertexId> everyone;
  PerShard<char> changed;
  bool running = true;

  LeaderProgram(Simulator& sim, std::vector<VertexId>& b)
      : g(sim.graph()), best(b), changed(sim.num_shards()) {
    everyone.resize(static_cast<std::size_t>(g.num_vertices()));
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      everyone[static_cast<std::size_t>(v)] = v;
  }

  [[nodiscard]] std::span<const VertexId> frontier() const {
    return running ? std::span<const VertexId>(everyone)
                   : std::span<const VertexId>();
  }

  void send(VertexId v, VertexSender& sender) {
    for (EdgeId e : g.incident_edges(v)) sender.send(e, Message{0, 0, best[v]});
  }

  void receive(VertexId v, Inbox inbox,
               const ShardContext& ctx) {
    for (const Delivery& d : inbox)
      if (d.msg.value < best[v]) {
        best[v] = static_cast<VertexId>(d.msg.value);
        changed[ctx.shard] = 1;
      }
  }

  void end_round() {
    bool any = false;
    changed.for_each([&](char& flag) {
      any = any || flag != 0;
      flag = 0;
    });
    running = any;
  }
};

}  // namespace

BroadcastResult broadcast(Simulator& sim, const RootedTree& tree,
                          std::int64_t value) {
  const VertexId n = tree.num_vertices();
  BroadcastResult out;
  out.received.assign(n, 0);
  out.received[tree.root()] = value;
  BroadcastProgram prog(sim, tree, out);
  out.rounds = run_vertex_program(sim, prog);
  return out;
}

ConvergecastResult convergecast_min(Simulator& sim, const RootedTree& tree,
                                    const std::vector<std::int64_t>& values) {
  const VertexId n = tree.num_vertices();
  require(static_cast<VertexId>(values.size()) == n,
          "convergecast_min: size mismatch");
  ConvergecastProgram<ConvergecastOp::kMin> prog(sim, tree, values);
  long long rounds = run_vertex_program(sim, prog);
  ConvergecastResult out;
  out.min_at_root = prog.best[tree.root()];
  out.rounds = rounds;
  return out;
}

ConvergecastSumResult convergecast_sum(Simulator& sim, const RootedTree& tree,
                                       const std::vector<std::int64_t>& values) {
  const VertexId n = tree.num_vertices();
  require(static_cast<VertexId>(values.size()) == n,
          "convergecast_sum: size mismatch");
  ConvergecastProgram<ConvergecastOp::kSum> prog(sim, tree, values);
  long long rounds = run_vertex_program(sim, prog);
  ConvergecastSumResult out;
  out.sum_at_root = prog.best[tree.root()];
  out.rounds = rounds;
  return out;
}

LeaderResult elect_leader(Simulator& sim) {
  const Graph& g = sim.graph();
  const VertexId n = g.num_vertices();
  std::vector<VertexId> best(n);
  for (VertexId v = 0; v < n; ++v) best[v] = v;
  LeaderProgram prog(sim, best);
  long long rounds = run_vertex_program(sim, prog);
  LeaderResult out;
  out.leader = best[0];
  out.rounds = rounds;
  return out;
}

DiameterEstimate estimate_diameter(Simulator& sim, VertexId start) {
  long long r0 = sim.rounds();
  DistributedBfsResult first = distributed_bfs(sim, start);
  VertexId far = start;
  for (VertexId v = 0; v < sim.graph().num_vertices(); ++v)
    if (first.dist[v] > first.dist[far]) far = v;
  DistributedBfsResult second = distributed_bfs(sim, far);
  int ecc = 0;
  for (int d : second.dist) ecc = std::max(ecc, d);
  DiameterEstimate out;
  out.estimate = ecc;
  out.rounds = sim.rounds() - r0;
  return out;
}

}  // namespace mns::congest
