#include "congest/primitives.hpp"

#include <algorithm>

#include "congest/bfs.hpp"

namespace mns::congest {

BroadcastResult broadcast(Simulator& sim, const RootedTree& tree,
                          std::int64_t value) {
  const VertexId n = tree.num_vertices();
  BroadcastResult out;
  out.received.assign(n, 0);
  std::vector<char> has(n, 0);
  out.received[tree.root()] = value;
  has[tree.root()] = 1;
  long long start = sim.rounds();
  std::vector<VertexId> frontier{tree.root()};
  while (!frontier.empty()) {
    bool any = false;
    for (VertexId v : frontier)
      for (VertexId c : tree.children(v)) {
        sim.send(v, tree.parent_edge(c), Message{0, 0, out.received[v]});
        any = true;
      }
    if (!any) break;
    sim.finish_round();
    std::vector<VertexId> next;
    for (VertexId v : frontier)
      for (VertexId c : tree.children(v)) {
        for (const Delivery& d : sim.inbox(c))
          if (d.from == v && !has[c]) {
            has[c] = 1;
            out.received[c] = d.msg.value;
            next.push_back(c);
          }
      }
    frontier = std::move(next);
  }
  out.rounds = sim.rounds() - start;
  return out;
}

ConvergecastResult convergecast_min(Simulator& sim, const RootedTree& tree,
                                    const std::vector<std::int64_t>& values) {
  const VertexId n = tree.num_vertices();
  require(static_cast<VertexId>(values.size()) == n,
          "convergecast_min: size mismatch");
  // Each node sends once all children reported; leaves start immediately.
  std::vector<int> waiting(n, 0);
  std::vector<std::int64_t> best(values);
  for (VertexId v = 0; v < n; ++v)
    waiting[v] = static_cast<int>(tree.children(v).size());
  long long start = sim.rounds();
  std::vector<char> sent(n, 0);
  bool done = false;
  while (!done) {
    bool any = false;
    for (VertexId v = 0; v < n; ++v) {
      if (v == tree.root() || sent[v] || waiting[v] > 0) continue;
      sim.send(v, tree.parent_edge(v), Message{0, 0, best[v]});
      sent[v] = 1;
      any = true;
    }
    if (!any) {
      done = true;
      break;
    }
    sim.finish_round();
    for (VertexId v = 0; v < n; ++v)
      for (const Delivery& d : sim.inbox(v)) {
        best[v] = std::min(best[v], d.msg.value);
        --waiting[v];
      }
  }
  ConvergecastResult out;
  out.min_at_root = best[tree.root()];
  out.rounds = sim.rounds() - start;
  return out;
}

LeaderResult elect_leader(Simulator& sim) {
  const Graph& g = sim.graph();
  const VertexId n = g.num_vertices();
  std::vector<VertexId> best(n);
  for (VertexId v = 0; v < n; ++v) best[v] = v;
  long long start = sim.rounds();
  bool changed = true;
  while (changed) {
    for (VertexId v = 0; v < n; ++v)
      for (EdgeId e : g.incident_edges(v))
        sim.send(v, e, Message{0, 0, best[v]});
    sim.finish_round();
    changed = false;
    for (VertexId v = 0; v < n; ++v)
      for (const Delivery& d : sim.inbox(v))
        if (d.msg.value < best[v]) {
          best[v] = static_cast<VertexId>(d.msg.value);
          changed = true;
        }
  }
  LeaderResult out;
  out.leader = best[0];
  out.rounds = sim.rounds() - start;
  return out;
}

DiameterEstimate estimate_diameter(Simulator& sim, VertexId start) {
  long long r0 = sim.rounds();
  DistributedBfsResult first = distributed_bfs(sim, start);
  VertexId far = start;
  for (VertexId v = 0; v < sim.graph().num_vertices(); ++v)
    if (first.dist[v] > first.dist[far]) far = v;
  DistributedBfsResult second = distributed_bfs(sim, far);
  int ecc = 0;
  for (int d : second.dist) ecc = std::max(ecc, d);
  DiameterEstimate out;
  out.estimate = ecc;
  out.rounds = sim.rounds() - r0;
  return out;
}

}  // namespace mns::congest
