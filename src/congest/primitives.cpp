#include "congest/primitives.hpp"

#include <algorithm>

#include "congest/bfs.hpp"

namespace mns::congest {

BroadcastResult broadcast(Simulator& sim, const RootedTree& tree,
                          std::int64_t value) {
  const VertexId n = tree.num_vertices();
  BroadcastResult out;
  out.received.assign(n, 0);
  std::vector<char> has(n, 0);
  out.received[tree.root()] = value;
  has[tree.root()] = 1;
  std::vector<VertexId> frontier{tree.root()};
  std::vector<VertexId> next;
  out.rounds = run_round_loop(
      sim,
      [&] {
        bool any = false;
        for (VertexId v : frontier)
          for (VertexId c : tree.children(v)) {
            sim.send(v, tree.parent_edge(c), Message{0, 0, out.received[v]});
            any = true;
          }
        return any;
      },
      [&] {
        next.clear();
        for (VertexId c : sim.delivered_to()) {
          if (has[c]) continue;
          has[c] = 1;
          out.received[c] = sim.inbox(c).front().msg.value;
          next.push_back(c);
        }
        frontier.swap(next);
      });
  return out;
}

ConvergecastResult convergecast_min(Simulator& sim, const RootedTree& tree,
                                    const std::vector<std::int64_t>& values) {
  const VertexId n = tree.num_vertices();
  require(static_cast<VertexId>(values.size()) == n,
          "convergecast_min: size mismatch");
  // Each node sends once all children reported; leaves start immediately.
  std::vector<int> waiting(n, 0);
  std::vector<std::int64_t> best(values);
  for (VertexId v = 0; v < n; ++v)
    waiting[v] = static_cast<int>(tree.children(v).size());
  std::vector<char> sent(n, 0);
  // Nodes whose subtree is complete and whose report is still unsent.
  std::vector<VertexId> ready;
  for (VertexId v = 0; v < n; ++v)
    if (v != tree.root() && waiting[v] == 0) ready.push_back(v);
  long long rounds = run_round_loop(
      sim,
      [&] {
        if (ready.empty()) return false;
        for (VertexId v : ready) {
          sim.send(v, tree.parent_edge(v), Message{0, 0, best[v]});
          sent[v] = 1;
        }
        ready.clear();
        return true;
      },
      [&] {
        for (VertexId v : sim.delivered_to()) {
          for (const Delivery& d : sim.inbox(v)) {
            best[v] = std::min(best[v], d.msg.value);
            --waiting[v];
          }
          if (v != tree.root() && !sent[v] && waiting[v] == 0)
            ready.push_back(v);
        }
      });
  ConvergecastResult out;
  out.min_at_root = best[tree.root()];
  out.rounds = rounds;
  return out;
}

LeaderResult elect_leader(Simulator& sim) {
  const Graph& g = sim.graph();
  const VertexId n = g.num_vertices();
  std::vector<VertexId> best(n);
  for (VertexId v = 0; v < n; ++v) best[v] = v;
  bool changed = true;
  long long rounds = run_round_loop(
      sim,
      [&] {
        if (!changed) return false;
        for (VertexId v = 0; v < n; ++v)
          for (EdgeId e : g.incident_edges(v))
            sim.send(v, e, Message{0, 0, best[v]});
        return true;
      },
      [&] {
        changed = false;
        for (VertexId v : sim.delivered_to())
          for (const Delivery& d : sim.inbox(v))
            if (d.msg.value < best[v]) {
              best[v] = static_cast<VertexId>(d.msg.value);
              changed = true;
            }
      });
  LeaderResult out;
  out.leader = best[0];
  out.rounds = rounds;
  return out;
}

DiameterEstimate estimate_diameter(Simulator& sim, VertexId start) {
  long long r0 = sim.rounds();
  DistributedBfsResult first = distributed_bfs(sim, start);
  VertexId far = start;
  for (VertexId v = 0; v < sim.graph().num_vertices(); ++v)
    if (first.dist[v] > first.dist[far]) far = v;
  DistributedBfsResult second = distributed_bfs(sim, far);
  int ecc = 0;
  for (int d : second.dist) ecc = std::max(ecc, d);
  DiameterEstimate out;
  out.estimate = ecc;
  out.rounds = sim.rounds() - r0;
  return out;
}

}  // namespace mns::congest
