#include "congest/mincut.hpp"

#include <algorithm>
#include <limits>

#include "graph/algorithms.hpp"

namespace mns::congest {

Weight exact_min_cut(const Graph& g, const std::vector<Weight>& w) {
  const VertexId n = g.num_vertices();
  require(n >= 2, "exact_min_cut: need >= 2 vertices");
  require(is_connected(g), "exact_min_cut: graph disconnected");
  // Stoer-Wagner with adjacency matrix of merged super-vertices.
  std::vector<std::vector<Weight>> a(n, std::vector<Weight>(n, 0));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    a[g.edge(e).u][g.edge(e).v] += w[e];
    a[g.edge(e).v][g.edge(e).u] += w[e];
  }
  std::vector<char> merged(n, 0);
  Weight best = std::numeric_limits<Weight>::max();
  for (VertexId phase = 0; phase + 1 < n; ++phase) {
    std::vector<Weight> wsum(n, 0);
    std::vector<char> added(n, 0);
    VertexId prev = kInvalidVertex, last = kInvalidVertex;
    for (VertexId i = 0; i < n - phase; ++i) {
      VertexId sel = kInvalidVertex;
      for (VertexId v = 0; v < n; ++v)
        if (!merged[v] && !added[v] &&
            (sel == kInvalidVertex || wsum[v] > wsum[sel]))
          sel = v;
      added[sel] = 1;
      prev = last;
      last = sel;
      for (VertexId v = 0; v < n; ++v)
        if (!merged[v] && !added[v]) wsum[v] += a[sel][v];
    }
    best = std::min(best, wsum[last]);
    // Merge last into prev.
    merged[last] = 1;
    for (VertexId v = 0; v < n; ++v) {
      a[prev][v] += a[last][v];
      a[v][prev] += a[v][last];
    }
  }
  return best;
}

std::vector<Weight> one_respecting_cut_values(
    const Graph& g, const std::vector<Weight>& w,
    const std::vector<EdgeId>& tree_edges) {
  const VertexId n = g.num_vertices();
  require(static_cast<VertexId>(tree_edges.size()) == n - 1,
          "best_one_respecting_cut: not a spanning tree");
  // Root the tree at 0; parent pointers via BFS over tree edges.
  std::vector<std::vector<std::pair<VertexId, EdgeId>>> adj(n);
  for (EdgeId e : tree_edges) {
    adj[g.edge(e).u].push_back({g.edge(e).v, e});
    adj[g.edge(e).v].push_back({g.edge(e).u, e});
  }
  std::vector<VertexId> parent(n, kInvalidVertex), order;
  std::vector<char> seen(n, 0);
  order.push_back(0);
  seen[0] = 1;
  for (std::size_t i = 0; i < order.size(); ++i) {
    VertexId v = order[i];
    for (auto [u, e] : adj[v])
      if (!seen[u]) {
        seen[u] = 1;
        parent[u] = v;
        order.push_back(u);
      }
  }
  require(order.size() == static_cast<std::size_t>(n),
          "best_one_respecting_cut: tree does not span");
  // depth for LCA-by-walking (fine at verification sizes).
  std::vector<int> depth(n, 0);
  for (std::size_t i = 1; i < order.size(); ++i)
    depth[order[i]] = depth[parent[order[i]]] + 1;
  auto lca = [&](VertexId x, VertexId y) {
    while (x != y) {
      if (depth[x] < depth[y])
        y = parent[y];
      else
        x = parent[x];
    }
    return x;
  };
  // contribution[v] = weighted degree; minus 2w at the LCA of each edge.
  std::vector<Weight> contrib(n, 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    contrib[g.edge(e).u] += w[e];
    contrib[g.edge(e).v] += w[e];
    contrib[lca(g.edge(e).u, g.edge(e).v)] -= 2 * w[e];
  }
  // Subtree sums bottom-up; cut(subtree(v)) for v != root.
  std::vector<Weight> sub(contrib);
  for (auto it = order.rbegin(); it != order.rend(); ++it)
    if (parent[*it] != kInvalidVertex) sub[parent[*it]] += sub[*it];
  sub[order[0]] = std::numeric_limits<Weight>::max();  // root keys no cut
  return sub;
}

Weight best_one_respecting_cut(const Graph& g, const std::vector<Weight>& w,
                               const std::vector<EdgeId>& tree_edges) {
  const std::vector<Weight> values =
      one_respecting_cut_values(g, w, tree_edges);
  return *std::min_element(values.begin(), values.end());
}

std::vector<Weight> two_respecting_cut_values(
    const Graph& g, const std::vector<Weight>& w,
    const std::vector<EdgeId>& tree_edges) {
  const VertexId n = g.num_vertices();
  require(static_cast<VertexId>(tree_edges.size()) == n - 1,
          "best_two_respecting_cut: not a spanning tree");
  // Root at 0, parents/depths via BFS over tree edges; tree edges are keyed
  // by their child vertex.
  std::vector<std::vector<VertexId>> adj(n);
  for (EdgeId e : tree_edges) {
    adj[g.edge(e).u].push_back(g.edge(e).v);
    adj[g.edge(e).v].push_back(g.edge(e).u);
  }
  std::vector<VertexId> parent(n, kInvalidVertex), order;
  std::vector<int> depth(n, 0);
  std::vector<char> seen(n, 0);
  order.push_back(0);
  seen[0] = 1;
  for (std::size_t i = 0; i < order.size(); ++i)
    for (VertexId u : adj[order[i]])
      if (!seen[u]) {
        seen[u] = 1;
        parent[u] = order[i];
        depth[u] = depth[order[i]] + 1;
        order.push_back(u);
      }
  require(order.size() == static_cast<std::size_t>(n),
          "best_two_respecting_cut: tree does not span");

  // Tree path of (x, y) as child-vertex edge keys.
  auto path_of = [&](VertexId x, VertexId y) {
    std::vector<VertexId> path;
    while (x != y) {
      if (depth[x] < depth[y]) std::swap(x, y);
      path.push_back(x);
      x = parent[x];
    }
    return path;
  };

  // cut(S_v) for every subtree via the 1-respecting machinery: contribution
  // wdeg - 2 * (weights of edges whose LCA is here), subtree-summed.
  std::vector<Weight> contrib(n, 0);
  // cross-pair accumulator: M[a][b] = total weight of graph edges whose tree
  // path contains both child-edges a and b.
  std::vector<std::vector<Weight>> both(n, std::vector<Weight>(n, 0));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    VertexId x = g.edge(e).u, y = g.edge(e).v;
    contrib[x] += w[e];
    contrib[y] += w[e];
    std::vector<VertexId> path = path_of(x, y);
    // LCA = the vertex where the two walks met; recompute for contrib.
    VertexId a = x, b = y;
    while (a != b) {
      if (depth[a] < depth[b]) std::swap(a, b);
      a = parent[a];
    }
    contrib[a] -= 2 * w[e];
    for (std::size_t i = 0; i < path.size(); ++i)
      for (std::size_t j = i + 1; j < path.size(); ++j) {
        both[path[i]][path[j]] += w[e];
        both[path[j]][path[i]] += w[e];
      }
  }
  std::vector<Weight> cut(contrib);
  for (auto it = order.rbegin(); it != order.rend(); ++it)
    if (parent[*it] != kInvalidVertex) cut[parent[*it]] += cut[*it];

  // Per child-vertex candidate: min over single edges and pairs involving
  // it, cut(S_a Δ S_b) = cut(S_a) + cut(S_b) - 2 * both(a, b).
  std::vector<Weight> values(n, std::numeric_limits<Weight>::max());
  for (VertexId v = 0; v < n; ++v)
    if (parent[v] != kInvalidVertex) values[v] = cut[v];
  for (VertexId a = 0; a < n; ++a) {
    if (parent[a] == kInvalidVertex) continue;
    for (VertexId b = a + 1; b < n; ++b) {
      if (parent[b] == kInvalidVertex) continue;
      Weight candidate = cut[a] + cut[b] - 2 * both[a][b];
      if (candidate > 0) {
        values[a] = std::min(values[a], candidate);
        values[b] = std::min(values[b], candidate);
      }
    }
  }
  return values;
}

Weight best_two_respecting_cut(const Graph& g, const std::vector<Weight>& w,
                               const std::vector<EdgeId>& tree_edges) {
  const std::vector<Weight> values =
      two_respecting_cut_values(g, w, tree_edges);
  return *std::min_element(values.begin(), values.end());
}

MinCutResult approx_min_cut(Simulator& sim, const std::vector<Weight>& w,
                            const MinCutOptions& options) {
  const Graph& g = sim.graph();
  require(static_cast<bool>(options.source),
          "approx_min_cut: no shortcut source");
  require(options.num_trees >= 1, "approx_min_cut: need >= 1 tree");
  long long start = sim.rounds();

  // Greedy tree packing: load-scaled weights, one distributed MST per tree.
  std::vector<Weight> load(g.num_edges(), 0);
  MinCutResult out;
  out.value = std::numeric_limits<Weight>::max();
  // Dissemination machinery for the per-tree cut minimum: the whole-network
  // partition, its shortcut, and the aggregator are identical for every
  // packing tree, so obtain them once. If it was built fresh, its charge is
  // the first dissemination's measured rounds (applied after that pass).
  Partition whole(std::vector<PartId>(g.num_vertices(), 0));
  SourcedShortcut whole_sc = options.source(g, whole);
  PartwiseAggregator whole_agg(g, whole, *whole_sc.shortcut);
  bool whole_charge_pending = whole_sc.fresh;
  for (int t = 0; t < options.num_trees; ++t) {
    const long long tree_rounds_start = sim.rounds();
    const long long tree_messages_start = sim.messages_sent();
    const long long tree_charged_start = out.charged_construction_rounds;
    std::vector<Weight> packing_weight(g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      // Relative load: load/capacity, scaled to stay integral.
      packing_weight[e] = (load[e] << 20) / std::max<Weight>(w[e], 1);
    }
    MstOptions mopt;
    mopt.source = options.source;
    MstResult mst = boruvka_mst(sim, packing_weight, mopt);
    out.charged_construction_rounds += mst.charged_construction_rounds;
    out.aggregations += mst.aggregations;
    for (EdgeId e : mst.edges) ++load[e];
    // Per-vertex candidate cuts (verifier-grade evaluation), then a REAL
    // part-wise min aggregation over the whole network on the provider's
    // shortcut — the "one aggregation pass per tree" that used to be a
    // skip_rounds guess, now measured round-by-round like every other
    // distributed routine in src/congest.
    std::vector<Weight> cand = options.two_respecting
                                   ? two_respecting_cut_values(g, w, mst.edges)
                                   : one_respecting_cut_values(g, w, mst.edges);
    const Weight score = *std::min_element(cand.begin(), cand.end());
    std::vector<AggValue> init(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      init[v] = cand[v] == std::numeric_limits<Weight>::max()
                    ? AggValue{std::numeric_limits<std::int64_t>::max(),
                               std::numeric_limits<std::int32_t>::max()}
                    : AggValue{cand[v], v};  // the root keys no cut
    AggregationResult res = whole_agg.aggregate_min(sim, init);
    ++out.aggregations;
    if (whole_charge_pending) {
      out.charged_construction_rounds += res.rounds;
      whole_charge_pending = false;
    }
    require(res.min_of_part[0].value == score,
            "approx_min_cut: disseminated cut disagrees with the verifier");
    out.value = std::min(out.value, score);
    ++out.trees;
    if (options.trace)
      options.trace(RoundTrace{
          "packing-tree", out.trees, sim.rounds() - tree_rounds_start,
          sim.messages_sent() - tree_messages_start,
          out.charged_construction_rounds - tree_charged_start});
  }
  out.rounds = sim.rounds() - start;
  return out;
}

}  // namespace mns::congest
