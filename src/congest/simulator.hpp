// Synchronous CONGEST-model simulator (paper §1.3.1).
//
// Communication proceeds in rounds; per round each node may send one message
// per incident edge per direction. Message payloads are fixed small PODs
// (128 bits ≈ O(log n) for any realistic n), enforced by the type. The
// simulator counts rounds and messages — rounds are the quantity every
// theorem in the paper bounds.
//
// The round-turnover path is allocation-free in steady state: all buffers
// live in a bump arena (arena.hpp; lifetime and budget rules in DESIGN.md §9
// "Memory model") and are reused across rounds, inboxes are built CSR-style
// by per-destination counting (no sorting), and finish_round() touches only
// the nodes that actually received or sent messages (the active frontier) —
// O(messages per round), NOT O(n). Algorithms with long sparse tails (BFS,
// convergecast, pipelined upcasts) simulate millions of rounds without
// paying for idle nodes.
//
// Wire format (DESIGN.md §9): a message in flight is 20 bytes — the directed
// edge slot `2e + side` packed into one uint32 (side 0 = sent by edge(e).u)
// plus the 16-byte payload — stored in structure-of-arrays form. The sender
// is NOT stored: it is re-derived from the slot via the graph by the Inbox
// decoding view, so receive paths still see full Delivery records while
// finish_round()'s merge streams through cache-line-dense buffers.
//
// Thread-parallel execution (DESIGN.md §7 "Parallel execution model"): an
// ExecutionPolicy{threads} shards the per-round send work across a worker
// pool. Worker threads stage sends into private per-shard buffers via
// stage_send(); finish_round() merges the shards in a fixed deterministic
// order (shard id, then staging order within the shard — which the vertex
// engine pins to the canonical frontier order), so rounds, message counts,
// inbox contents and delivered_to() are bit-identical to threads == 1.
// Parallelism is a wall-clock optimization, never a semantic change.
//
// Transport seam (DESIGN.md §11 "Transport layer"): an optional
// transport::Transport installed via set_transport() observes each round's
// canonical merged traffic at the round boundary — it may block until
// delivery is complete at this endpoint and substitute authoritative remote
// payload bytes, but never add, remove or reorder entries. The default
// (none installed) is bit-identical to transport::InProcessTransport.
#pragma once

#include <cstdint>
#include <iterator>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "congest/arena.hpp"
#include "congest/execution.hpp"
#include "graph/graph.hpp"

namespace mns::transport {
class Transport;
}  // namespace mns::transport

namespace mns::congest {

/// O(log n)-bit message: 128 bits of payload.
struct Message {
  std::int32_t tag = 0;    ///< algorithm-defined (e.g. part id)
  std::int32_t aux = 0;    ///< algorithm-defined (e.g. edge id)
  std::int64_t value = 0;  ///< algorithm-defined (e.g. weight / label)
};

/// A delivered message as receive paths see it. This is the DECODED form:
/// on the wire only the directed slot and the payload exist (20 bytes);
/// `from` is recomputed from slot + graph by the Inbox view.
struct Delivery {
  VertexId from = kInvalidVertex;
  EdgeId edge = kInvalidEdge;
  Message msg;
};

/// A vertex's inbox for the round that just finished: a thin decoding view
/// over the packed slot/payload arrays. Iteration and indexing yield
/// Delivery BY VALUE (decoded on the fly); `for (const Delivery& d : inbox)`
/// works unchanged. The raw packed arrays are exposed via slots()/payloads()
/// for reference decoders and parity tests.
class Inbox {
 public:
  Inbox() = default;
  Inbox(const Graph* g, const std::uint32_t* slots, const Message* msgs,
        std::size_t count) noexcept
      : g_(g), slots_(slots), msgs_(msgs), count_(count) {}

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  /// Decodes delivery i: edge = slot >> 1, from = the endpoint picked by the
  /// slot's side bit (0 = edge(e).u sent it).
  [[nodiscard]] Delivery operator[](std::size_t i) const {
    const std::uint32_t slot = slots_[i];
    const EdgeId e = static_cast<EdgeId>(slot >> 1);
    const Edge& ed = g_->edge(e);
    return Delivery{(slot & 1u) != 0 ? ed.v : ed.u, e, msgs_[i]};
  }
  [[nodiscard]] Delivery front() const { return (*this)[0]; }

  class iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = Delivery;
    using difference_type = std::ptrdiff_t;
    using reference = Delivery;
    using pointer = void;

    iterator() = default;
    iterator(const Inbox* box, std::size_t i) noexcept : box_(box), i_(i) {}
    [[nodiscard]] Delivery operator*() const { return (*box_)[i_]; }
    iterator& operator++() noexcept {
      ++i_;
      return *this;
    }
    iterator operator++(int) noexcept {
      iterator tmp = *this;
      ++i_;
      return tmp;
    }
    friend bool operator==(const iterator&, const iterator&) = default;

   private:
    const Inbox* box_ = nullptr;
    std::size_t i_ = 0;
  };

  [[nodiscard]] iterator begin() const noexcept { return {this, 0}; }
  [[nodiscard]] iterator end() const noexcept { return {this, count_}; }

  /// Raw packed directed slots (2e + side), parallel to payloads().
  [[nodiscard]] std::span<const std::uint32_t> slots() const noexcept {
    return {slots_, count_};
  }
  /// Raw payloads, parallel to slots().
  [[nodiscard]] std::span<const Message> payloads() const noexcept {
    return {msgs_, count_};
  }

 private:
  const Graph* g_ = nullptr;
  const std::uint32_t* slots_ = nullptr;
  const Message* msgs_ = nullptr;
  std::size_t count_ = 0;
};

class Simulator {
 public:
  explicit Simulator(const Graph& g, ExecutionPolicy policy = {});
  // The arena-backed buffers hold pointers into arena_; the simulator is
  // pinned in place (nothing in the codebase moves one).
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }

  /// Queues a message from `from` across `edge` for delivery next round.
  /// Throws if `from` is not an endpoint of `edge` or if this directed edge
  /// was already used this round (CONGEST capacity).
  void send(VertexId from, EdgeId edge, const Message& msg);

  // -- parallel staging (used by the vertex-program engine) ----------------

  /// How the per-round work is fanned out. May only change between rounds
  /// (throws if sends are pending).
  void set_execution_policy(ExecutionPolicy policy);
  [[nodiscard]] const ExecutionPolicy& execution_policy() const noexcept {
    return policy_;
  }
  /// Resolved shard count (== worker threads the engine fans over).
  [[nodiscard]] int num_shards() const noexcept { return num_shards_; }
  /// The lazily created worker pool matching the policy. Only meaningful
  /// when num_shards() > 1.
  [[nodiscard]] WorkerPool& pool();

  /// Stages a send into `shard`'s private buffer; delivery happens at the
  /// next finish_round(), merged deterministically (see class comment).
  /// Endpoint validation happens here (throws like send()); the CONGEST
  /// capacity check is deferred to the merge so that staging never writes
  /// shared state — each shard may be driven by a different thread, and the
  /// engine guarantees a vertex's sends all land in one shard, which by the
  /// capacity rule (slot 2e+side belongs to one endpoint) keeps shards
  /// disjoint. Capacity violations still throw, deterministically, from
  /// finish_round(). Validation precedes any buffer write, so a throwing
  /// call never advances an arena cursor (pinned by the contract tests).
  void stage_send(int shard, VertexId from, EdgeId edge, const Message& msg);

  /// Ends the round: delivers queued messages into inboxes. Cost is linear in
  /// the messages of this round and the previous one (frontier reset), never
  /// in the number of nodes. With a transport installed, its exchange() runs
  /// on the canonical merged batch before the inbox scatter; a
  /// TransportError poisons the round (the simulator must not be reused).
  void finish_round();

  /// Installs a message transport (non-owning; must outlive the simulator or
  /// be detached with nullptr). May only change between rounds, like
  /// set_execution_policy(). Default none == InProcessTransport semantics.
  void set_transport(transport::Transport* transport);
  [[nodiscard]] transport::Transport* transport_hook() const noexcept {
    return transport_;
  }

  /// Messages delivered to v in the round that just finished, as a decoding
  /// view over the packed buffers. The view stays valid until the next
  /// finish_round(). Out-of-range vertices throw (always on, consistent with
  /// send()'s endpoint validation — inbox_count_ would otherwise be read out
  /// of bounds and an NDEBUG assert could not be exercised by the contract
  /// tests).
  [[nodiscard]] Inbox inbox(VertexId v) const {
    if (v < 0 || static_cast<std::size_t>(v) >= inbox_count_.size())
      throw std::out_of_range("Simulator::inbox: vertex out of range");
    const std::uint32_t count = inbox_count_[v];
    if (count == 0) return {};  // begin may be stale for idle nodes
    return Inbox(g_, inbox_slot_.data() + inbox_begin_[v],
                 inbox_msg_.data() + inbox_begin_[v], count);
  }

  /// Nodes with a nonempty inbox from the round that just finished, in
  /// first-delivery order. Receive phases that iterate this instead of all
  /// vertices are O(messages delivered), not O(n). Valid until the next
  /// finish_round().
  [[nodiscard]] std::span<const VertexId> delivered_to() const noexcept {
    return {frontier_.data(), frontier_.size()};
  }

  /// Advances the round counter by `rounds` without communication (used to
  /// account for idle/waiting rounds in lock-step algorithms). Throws on
  /// negative counts without touching any state (or arena cursor).
  void skip_rounds(long long rounds);

  [[nodiscard]] long long rounds() const noexcept { return rounds_; }
  [[nodiscard]] long long messages_sent() const noexcept { return messages_; }

  /// Combined allocation counters of the merge arena and every staging
  /// shard's private arena — the zero-steady-state-allocation test hook
  /// (DESIGN.md §9): block_requests must be flat across warmed-up rounds.
  [[nodiscard]] Arena::Stats arena_stats() const;

 private:
  /// One staged send: precomputed directed slot + destination so the merge
  /// is a straight append with a capacity check. 24 bytes (was 40 with the
  /// unpacked Delivery inside).
  struct StagedSend {
    std::uint32_t slot;
    VertexId to;
    Message msg;
  };
  /// Per-shard private staging buffer with its own arena (worker threads
  /// touch disjoint shards; see arena.hpp's threading contract). alignas
  /// keeps two shards' hot state off one cache line (wall-clock only).
  struct alignas(64) SendShard {
    Arena arena;
    ArenaVector<StagedSend> entries{ArenaAllocator<StagedSend>(&arena)};
  };

  const Graph* g_;
  ExecutionPolicy policy_;
  int num_shards_ = 0;  ///< 0 until the constructor applies the policy
  std::unique_ptr<SendShard[]> shards_;
  std::unique_ptr<WorkerPool> pool_;
  /// Merge arena: backs every per-round buffer below. Touched only by the
  /// thread driving send()/finish_round(), never by staging workers.
  Arena arena_;
  // Pending sends for the current round, in send order (SoA: destination,
  // packed directed slot, payload).
  ArenaVector<VertexId> pending_to_;
  ArenaVector<std::uint32_t> pending_slot_;
  ArenaVector<Message> pending_msg_;
  // Directed edge used this round (2e + side), with touched-list reset.
  std::vector<char> used_;
  ArenaVector<std::uint32_t> used_list_;
  // Delivered inboxes: per-vertex [begin, begin+count) into the packed
  // slot/payload arrays. Only entries of vertices in frontier_ are
  // meaningful; everyone else has count 0 (maintained incrementally, never
  // rescanned).
  std::vector<std::uint32_t> inbox_begin_;
  std::vector<std::uint32_t> inbox_count_;
  std::vector<std::uint32_t> inbox_cursor_;
  ArenaVector<std::uint32_t> inbox_slot_;
  ArenaVector<Message> inbox_msg_;
  // Nodes with a nonempty inbox from the round that just finished.
  ArenaVector<VertexId> frontier_;
  transport::Transport* transport_ = nullptr;  ///< non-owning round hook
  long long rounds_ = 0;
  long long messages_ = 0;
};

}  // namespace mns::congest
