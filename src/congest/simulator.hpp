// Synchronous CONGEST-model simulator (paper §1.3.1).
//
// Communication proceeds in rounds; per round each node may send one message
// per incident edge per direction. Message payloads are fixed small PODs
// (128 bits ≈ O(log n) for any realistic n), enforced by the type. The
// simulator counts rounds and messages — rounds are the quantity every
// theorem in the paper bounds.
//
// The round-turnover path is allocation-free in steady state: all buffers
// are reused across rounds, inboxes are built CSR-style by per-destination
// counting (no sorting), and finish_round() touches only the nodes that
// actually received or sent messages (the active frontier) — O(messages per
// round), NOT O(n). Algorithms with long sparse tails (BFS, convergecast,
// pipelined upcasts) simulate millions of rounds without paying for idle
// nodes.
//
// Thread-parallel execution (DESIGN.md §7 "Parallel execution model"): an
// ExecutionPolicy{threads} shards the per-round send work across a worker
// pool. Worker threads stage sends into private per-shard buffers via
// stage_send(); finish_round() merges the shards in a fixed deterministic
// order (shard id, then staging order within the shard — which the vertex
// engine pins to the canonical frontier order), so rounds, message counts,
// inbox contents and delivered_to() are bit-identical to threads == 1.
// Parallelism is a wall-clock optimization, never a semantic change.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "congest/execution.hpp"
#include "graph/graph.hpp"

namespace mns::congest {

/// O(log n)-bit message: 128 bits of payload.
struct Message {
  std::int32_t tag = 0;    ///< algorithm-defined (e.g. part id)
  std::int32_t aux = 0;    ///< algorithm-defined (e.g. edge id)
  std::int64_t value = 0;  ///< algorithm-defined (e.g. weight / label)
};

struct Delivery {
  VertexId from = kInvalidVertex;
  EdgeId edge = kInvalidEdge;
  Message msg;
};

class Simulator {
 public:
  explicit Simulator(const Graph& g, ExecutionPolicy policy = {});

  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }

  /// Queues a message from `from` across `edge` for delivery next round.
  /// Throws if `from` is not an endpoint of `edge` or if this directed edge
  /// was already used this round (CONGEST capacity).
  void send(VertexId from, EdgeId edge, const Message& msg);

  // -- parallel staging (used by the vertex-program engine) ----------------

  /// How the per-round work is fanned out. May only change between rounds
  /// (throws if sends are pending).
  void set_execution_policy(ExecutionPolicy policy);
  [[nodiscard]] const ExecutionPolicy& execution_policy() const noexcept {
    return policy_;
  }
  /// Resolved shard count (== worker threads the engine fans over).
  [[nodiscard]] int num_shards() const noexcept { return num_shards_; }
  /// The lazily created worker pool matching the policy. Only meaningful
  /// when num_shards() > 1.
  [[nodiscard]] WorkerPool& pool();

  /// Stages a send into `shard`'s private buffer; delivery happens at the
  /// next finish_round(), merged deterministically (see class comment).
  /// Endpoint validation happens here (throws like send()); the CONGEST
  /// capacity check is deferred to the merge so that staging never writes
  /// shared state — each shard may be driven by a different thread, and the
  /// engine guarantees a vertex's sends all land in one shard, which by the
  /// capacity rule (slot 2e+side belongs to one endpoint) keeps shards
  /// disjoint. Capacity violations still throw, deterministically, from
  /// finish_round().
  void stage_send(int shard, VertexId from, EdgeId edge, const Message& msg);

  /// Ends the round: delivers queued messages into inboxes. Cost is linear in
  /// the messages of this round and the previous one (frontier reset), never
  /// in the number of nodes.
  void finish_round();

  /// Messages delivered to v in the round that just finished. The span stays
  /// valid until the next finish_round(). Out-of-range vertices throw
  /// (always on, consistent with send()'s endpoint validation — inbox_count_
  /// would otherwise be read out of bounds and an NDEBUG assert could not be
  /// exercised by the contract tests).
  [[nodiscard]] std::span<const Delivery> inbox(VertexId v) const {
    if (v < 0 || static_cast<std::size_t>(v) >= inbox_count_.size())
      throw std::out_of_range("Simulator::inbox: vertex out of range");
    const std::uint32_t count = inbox_count_[v];
    if (count == 0) return {};  // begin may be stale for idle nodes
    return {inbox_data_.data() + inbox_begin_[v], count};
  }

  /// Nodes with a nonempty inbox from the round that just finished, in
  /// first-delivery order. Receive phases that iterate this instead of all
  /// vertices are O(messages delivered), not O(n). Valid until the next
  /// finish_round().
  [[nodiscard]] std::span<const VertexId> delivered_to() const noexcept {
    return frontier_;
  }

  /// Advances the round counter by `rounds` without communication (used to
  /// account for idle/waiting rounds in lock-step algorithms).
  void skip_rounds(long long rounds);

  [[nodiscard]] long long rounds() const noexcept { return rounds_; }
  [[nodiscard]] long long messages_sent() const noexcept { return messages_; }

 private:
  /// One staged send: precomputed directed slot + destination so the merge
  /// is a straight append with a capacity check.
  struct StagedSend {
    std::uint32_t dir;
    VertexId to;
    Delivery delivery;
  };
  /// Per-shard private staging buffer. alignas keeps two shards' hot vector
  /// headers off one cache line (a wall-clock concern only).
  struct alignas(64) SendShard {
    std::vector<StagedSend> entries;
  };

  const Graph* g_;
  ExecutionPolicy policy_;
  int num_shards_ = 0;  ///< 0 until the constructor applies the policy
  std::vector<SendShard> shards_;
  std::unique_ptr<WorkerPool> pool_;
  // Pending sends for the current round, in send order.
  std::vector<VertexId> pending_to_;
  std::vector<Delivery> pending_;
  // Directed edge used this round (2e + side), with touched-list reset.
  std::vector<char> used_;
  std::vector<std::uint32_t> used_list_;
  // Delivered inboxes: per-vertex [begin, begin+count) into inbox_data_.
  // Only entries of vertices in frontier_ are meaningful; everyone else has
  // count 0 (maintained incrementally, never rescanned).
  std::vector<std::uint32_t> inbox_begin_;
  std::vector<std::uint32_t> inbox_count_;
  std::vector<std::uint32_t> inbox_cursor_;
  std::vector<Delivery> inbox_data_;
  // Nodes with a nonempty inbox from the round that just finished.
  std::vector<VertexId> frontier_;
  long long rounds_ = 0;
  long long messages_ = 0;
};

/// The round-loop helper — DEPRECATED in favor of the VertexProgram engine
/// (vertex_program.hpp), which expresses the same lock-step skeleton as
/// per-vertex hooks the engine can fan out across threads. Kept as the
/// sequential adapter for one release: existing free-form lambdas keep
/// working, they just never parallelize. The lock-step skeleton:
///
///   while (send())  { finish_round(); receive(); }
///
/// `send` queues this round's messages and reports whether the algorithm is
/// still running (false = quiescent; checked BEFORE the round is counted, so
/// a message-free final check costs no rounds). `receive` drains inboxes and
/// updates algorithm state. Returns the number of rounds consumed.
template <typename SendFn, typename ReceiveFn>
long long run_round_loop(Simulator& sim, SendFn&& send, ReceiveFn&& receive) {
  long long start = sim.rounds();
  while (send()) {
    sim.finish_round();
    receive();
  }
  return sim.rounds() - start;
}

}  // namespace mns::congest
