// Synchronous CONGEST-model simulator (paper §1.3.1).
//
// Communication proceeds in rounds; per round each node may send one message
// per incident edge per direction. Message payloads are fixed small PODs
// (128 bits ≈ O(log n) for any realistic n), enforced by the type. The
// simulator counts rounds and messages — rounds are the quantity every
// theorem in the paper bounds.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace mns::congest {

/// O(log n)-bit message: 128 bits of payload.
struct Message {
  std::int32_t tag = 0;    ///< algorithm-defined (e.g. part id)
  std::int32_t aux = 0;    ///< algorithm-defined (e.g. edge id)
  std::int64_t value = 0;  ///< algorithm-defined (e.g. weight / label)
};

struct Delivery {
  VertexId from = kInvalidVertex;
  EdgeId edge = kInvalidEdge;
  Message msg;
};

class Simulator {
 public:
  explicit Simulator(const Graph& g);

  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }

  /// Queues a message from `from` across `edge` for delivery next round.
  /// Throws if `from` is not an endpoint of `edge` or if this directed edge
  /// was already used this round (CONGEST capacity).
  void send(VertexId from, EdgeId edge, const Message& msg);

  /// Ends the round: delivers queued messages into inboxes.
  void finish_round();

  /// Messages delivered to v in the round that just finished.
  [[nodiscard]] std::span<const Delivery> inbox(VertexId v) const {
    return {inbox_data_.data() + inbox_offset_[v],
            inbox_data_.data() + inbox_offset_[v + 1]};
  }

  /// Advances the round counter by `rounds` without communication (used to
  /// account for idle/waiting rounds in lock-step algorithms).
  void skip_rounds(long long rounds);

  [[nodiscard]] long long rounds() const noexcept { return rounds_; }
  [[nodiscard]] long long messages_sent() const noexcept { return messages_; }

 private:
  const Graph* g_;
  // Pending sends for the current round.
  std::vector<std::pair<VertexId, Delivery>> pending_;  // (to, delivery)
  std::vector<char> used_;  // directed edge used this round: 2e + side
  std::vector<EdgeId> used_list_;
  // Delivered inboxes (CSR).
  std::vector<std::size_t> inbox_offset_;
  std::vector<Delivery> inbox_data_;
  long long rounds_ = 0;
  long long messages_ = 0;
};

}  // namespace mns::congest
