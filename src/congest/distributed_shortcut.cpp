#include "congest/distributed_shortcut.hpp"

#include <algorithm>
#include <deque>
#include <set>
#include <stdexcept>
#include <vector>

namespace mns::congest {

namespace {

// Message tags (Message::tag carries the part id; aux carries the verb).
constexpr std::int32_t kClaim = 1;    // child -> parent: admit part?
constexpr std::int32_t kAccept = 2;   // parent -> child
constexpr std::int32_t kReject = 3;   // parent -> child

}  // namespace

DistributedShortcutResult distributed_capped_greedy(Simulator& sim,
                                                    const RootedTree& tree,
                                                    const Partition& parts,
                                                    int cap) {
  if (cap < 1)
    throw std::invalid_argument("distributed_capped_greedy: cap < 1");
  const Graph& g = sim.graph();
  const VertexId n = g.num_vertices();
  require(tree.num_vertices() == n, "distributed shortcut: tree mismatch");
  long long start = sim.rounds();

  DistributedShortcutResult out;
  out.shortcut.edges_of_part.resize(parts.num_parts());

  // Local state per node: which parts own this node (territory), pending
  // outgoing claims on the parent edge (FIFO; one message per round), and
  // per-node admitted-part sets for each child edge (capacity enforcement is
  // local to the edge's upper endpoint, as in a real implementation).
  std::vector<std::set<PartId>> owned(n);
  std::vector<std::deque<PartId>> claim_queue(n);  // keyed by child vertex
  std::vector<std::set<PartId>> admitted(n);       // keyed by child vertex
  std::vector<std::deque<std::pair<PartId, std::int32_t>>> verdict_queue(n);
  // keyed by child vertex: verdicts the parent still owes that child.

  // Seed: every part member is territory and (if not the root) a head.
  long long active = 0;
  for (VertexId v = 0; v < n; ++v) {
    PartId p = parts.part_of(v);
    if (p == kNoPart) continue;
    owned[v].insert(p);
    if (v != tree.root()) {
      claim_queue[v].push_back(p);
      ++active;
    }
  }

  (void)run_round_loop(
      sim,
      [&] {
        if (active <= 0) return false;
        // Send phase: each node forwards one claim per parent edge and one
        // verdict per child edge (distinct directed edges, so both fit).
        for (VertexId v = 0; v < n; ++v) {
          if (!claim_queue[v].empty()) {
            sim.send(v, tree.parent_edge(v),
                     Message{claim_queue[v].front(), kClaim, v});
            claim_queue[v].pop_front();
          }
          if (!verdict_queue[v].empty()) {
            auto [p, verb] = verdict_queue[v].front();
            verdict_queue[v].pop_front();
            sim.send(tree.parent(v), tree.parent_edge(v), Message{p, verb, v});
          }
        }
        return true;
      },
      [&] {
        for (VertexId v : sim.delivered_to()) {
          for (const Delivery& d : sim.inbox(v)) {
            PartId p = d.msg.tag;
            if (d.msg.aux == kClaim) {
              // v is the parent endpoint; child is d.from.
              VertexId child = d.from;
              if (admitted[child].count(p)) {
                // Duplicate claim (same part, same edge): treat as accepted
                // without new bookkeeping.
                verdict_queue[child].push_back({p, kAccept});
                continue;
              }
              if (static_cast<int>(admitted[child].size()) < cap) {
                admitted[child].insert(p);
                out.shortcut.edges_of_part[p].push_back(
                    tree.parent_edge(child));
                verdict_queue[child].push_back({p, kAccept});
              } else {
                verdict_queue[child].push_back({p, kReject});
              }
            } else if (d.msg.aux == kAccept) {
              // v is the child; its head moves onto the parent vertex.
              VertexId parent = d.from;
              --active;
              if (!owned[parent].count(p)) {
                owned[parent].insert(p);
                if (parent != tree.root()) {
                  claim_queue[parent].push_back(p);
                  ++active;
                }
              }
              // else: merged into own territory; the head dissolves.
            } else {  // kReject
              --active;
              ++out.frozen_heads;
            }
          }
        }
      });

  // De-duplicate (a part can re-claim an edge it already owns via the
  // duplicate-claim path; ownership bookkeeping above prevents double
  // insertion, but keep the invariant explicit).
  for (auto& es : out.shortcut.edges_of_part) {
    std::sort(es.begin(), es.end());
    es.erase(std::unique(es.begin(), es.end()), es.end());
  }
  out.rounds = sim.rounds() - start;
  return out;
}

}  // namespace mns::congest
