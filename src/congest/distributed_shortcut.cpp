#include "congest/distributed_shortcut.hpp"

#include <algorithm>
#include <deque>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "congest/vertex_program.hpp"

namespace mns::congest {

namespace {

// Message tags (Message::tag carries the part id; aux carries the verb).
constexpr std::int32_t kClaim = 1;    // child -> parent: admit part?
constexpr std::int32_t kAccept = 2;   // parent -> child
constexpr std::int32_t kReject = 3;   // parent -> child

/// The claim/verdict protocol as a VertexProgram. Ownership discipline:
/// claim_queue[v] is popped by v (its owner) in the send phase;
/// verdict_queue[c] and admitted[c] are keyed by the child endpoint of a
/// tree edge but written only by c's unique parent — which is also the
/// vertex that pops verdict_queue[c] when sending, so every structure has
/// exactly one writer per phase. The two cross-vertex effects — an accepted
/// head moving onto the parent VERTEX (owned/claim_queue of the parent) and
/// a part acquiring a shortcut edge — are recorded into per-shard effect
/// lists by the receiving child and applied at the end_round() barrier in
/// delivered order, exactly when (and in the order) the sequential code
/// applied them inline.
struct CappedGreedyProgram {
  const RootedTree& tree;
  Shortcut& shortcut;
  int cap;
  int& frozen_heads;

  std::vector<std::set<PartId>> owned;
  std::vector<std::deque<PartId>> claim_queue;  // keyed by claiming vertex
  std::vector<std::set<PartId>> admitted;       // keyed by child vertex
  std::vector<std::deque<std::pair<PartId, std::int32_t>>> verdict_queue;
  // keyed by child vertex: verdicts the parent still owes that child.

  FrontierTracker tracker;
  /// Accepted heads arriving at the parent vertex: (parent, part).
  PerShard<std::vector<std::pair<VertexId, PartId>>> accepted;
  /// Tree edges admitted for a part this round: (part, edge).
  PerShard<std::vector<std::pair<PartId, EdgeId>>> admitted_edges;
  PerShard<int> frozen_delta;

  CappedGreedyProgram(Simulator& sim, const RootedTree& t,
                      const Partition& parts, Shortcut& sc, int edge_cap,
                      int& frozen)
      : tree(t), shortcut(sc), cap(edge_cap), frozen_heads(frozen),
        owned(static_cast<std::size_t>(t.num_vertices())),
        claim_queue(static_cast<std::size_t>(t.num_vertices())),
        admitted(static_cast<std::size_t>(t.num_vertices())),
        verdict_queue(static_cast<std::size_t>(t.num_vertices())),
        tracker(sim.num_shards(), t.num_vertices()),
        accepted(sim.num_shards()), admitted_edges(sim.num_shards()),
        frozen_delta(sim.num_shards()) {
    // Seed: every part member is territory and (if not the root) a head.
    for (VertexId v = 0; v < t.num_vertices(); ++v) {
      PartId p = parts.part_of(v);
      if (p == kNoPart) continue;
      owned[static_cast<std::size_t>(v)].insert(p);
      if (v != t.root()) {
        claim_queue[static_cast<std::size_t>(v)].push_back(p);
        tracker.seed(v);
      }
    }
  }

  [[nodiscard]] bool has_pending(VertexId v) const {
    if (!claim_queue[static_cast<std::size_t>(v)].empty()) return true;
    for (VertexId c : tree.children(v))
      if (!verdict_queue[static_cast<std::size_t>(c)].empty()) return true;
    return false;
  }

  [[nodiscard]] std::span<const VertexId> frontier() const {
    return tracker.frontier();
  }

  void send(VertexId v, VertexSender& out) {
    // One claim per parent edge and one verdict per child edge — distinct
    // directed edges, so everything fits one round's CONGEST capacity.
    auto& claims = claim_queue[static_cast<std::size_t>(v)];
    if (!claims.empty()) {
      out.send(tree.parent_edge(v), Message{claims.front(), kClaim, v});
      claims.pop_front();
    }
    for (VertexId c : tree.children(v)) {
      auto& verdicts = verdict_queue[static_cast<std::size_t>(c)];
      if (!verdicts.empty()) {
        auto [p, verb] = verdicts.front();
        verdicts.pop_front();
        out.send(tree.parent_edge(c), Message{p, verb, c});
      }
    }
    if (has_pending(v)) tracker.keep_from_send(v, out.shard());
  }

  void receive(VertexId v, Inbox inbox,
               const ShardContext& ctx) {
    bool wake = false;
    for (const Delivery& d : inbox) {
      PartId p = d.msg.tag;
      if (d.msg.aux == kClaim) {
        // v is the parent endpoint; child is d.from.
        const VertexId child = d.from;
        auto& adm = admitted[static_cast<std::size_t>(child)];
        if (adm.count(p)) {
          // Duplicate claim (same part, same edge): treat as accepted
          // without new bookkeeping.
          verdict_queue[static_cast<std::size_t>(child)].push_back(
              {p, kAccept});
        } else if (static_cast<int>(adm.size()) < cap) {
          adm.insert(p);
          admitted_edges[ctx.shard].push_back({p, tree.parent_edge(child)});
          verdict_queue[static_cast<std::size_t>(child)].push_back(
              {p, kAccept});
        } else {
          verdict_queue[static_cast<std::size_t>(child)].push_back(
              {p, kReject});
        }
        wake = true;  // v owes a verdict next round
      } else if (d.msg.aux == kAccept) {
        // v is the child; its head moves onto the parent vertex — the
        // parent's territory bookkeeping is a cross-vertex effect, deferred
        // to the barrier.
        accepted[ctx.shard].push_back({d.from, p});
      } else {  // kReject
        ++frozen_delta[ctx.shard];
      }
    }
    if (wake) tracker.wake_from_receive(v, ctx.shard);
  }

  void end_round() {
    tracker.merge_phases();
    admitted_edges.for_each([&](std::vector<std::pair<PartId, EdgeId>>& es) {
      for (auto [p, e] : es)
        shortcut.edges_of_part[static_cast<std::size_t>(p)].push_back(e);
      es.clear();
    });
    accepted.for_each([&](std::vector<std::pair<VertexId, PartId>>& heads) {
      for (auto [parent, p] : heads) {
        auto& terr = owned[static_cast<std::size_t>(parent)];
        if (terr.insert(p).second && parent != tree.root()) {
          claim_queue[static_cast<std::size_t>(parent)].push_back(p);
          tracker.wake_at_barrier(parent);
        }
        // else: merged into own territory; the head dissolves.
      }
      heads.clear();
    });
    frozen_delta.for_each([&](int& delta) {
      frozen_heads += delta;
      delta = 0;
    });
    tracker.clear_flags();
  }
};

}  // namespace

DistributedShortcutResult distributed_capped_greedy(Simulator& sim,
                                                    const RootedTree& tree,
                                                    const Partition& parts,
                                                    int cap) {
  if (cap < 1)
    throw std::invalid_argument("distributed_capped_greedy: cap < 1");
  const Graph& g = sim.graph();
  const VertexId n = g.num_vertices();
  require(tree.num_vertices() == n, "distributed shortcut: tree mismatch");
  long long start = sim.rounds();

  DistributedShortcutResult out;
  out.shortcut.edges_of_part.resize(parts.num_parts());

  CappedGreedyProgram prog(sim, tree, parts, out.shortcut, cap,
                           out.frozen_heads);
  (void)run_vertex_program(sim, prog);

  // De-duplicate (a part can re-claim an edge it already owns via the
  // duplicate-claim path; ownership bookkeeping above prevents double
  // insertion, but keep the invariant explicit).
  for (auto& es : out.shortcut.edges_of_part) {
    std::sort(es.begin(), es.end());
    es.erase(std::unique(es.begin(), es.end()), es.end());
  }
  out.rounds = sim.rounds() - start;
  return out;
}

}  // namespace mns::congest
