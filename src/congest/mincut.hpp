// Min-cut: exact Stoer-Wagner verifier (centralized) and the distributed
// tree-packing approximation of Corollary 1's (1+eps) algorithm shape
// [NS14, GK13 via Thorup/Karger]: greedily pack spanning trees (each packing
// tree is one MST computation over load-scaled weights — the round-dominant
// step, honestly simulated), then score each tree by its best 1-respecting
// cut. With enough trees the best 1-respecting cut across the packing is a
// (2+eps)-approximation (and in practice usually exact). Each tree's cut
// evaluation is verifier-grade centralized, but its dissemination is a real
// part-wise aggregation over the source's shortcut (the DESIGN.md §4
// substitution, no longer a skip_rounds guess). All distributed traffic —
// the packing MSTs and the dissemination aggregations — runs on the
// vertex-parallel round engine (DESIGN.md §7) by composition, so min-cut
// inherits thread scaling with bit-identical rounds/messages/values.
// Internal engine of Session::solve(MinCut) — user code goes through
// congest::Session.
#pragma once

#include "congest/mst.hpp"
#include "congest/simulator.hpp"

namespace mns::congest {

/// Exact global min cut (Stoer-Wagner, O(n^3)); for verification.
[[nodiscard]] Weight exact_min_cut(const Graph& g,
                                   const std::vector<Weight>& w);

struct MinCutResult {
  Weight value = 0;      ///< best 1-respecting cut over the packing
  long long rounds = 0;  ///< measured rounds (dominated by the MSTs)
  /// Construction charges for freshly built shortcuts (DESIGN.md §2),
  /// accumulated across the packing MSTs and the dissemination shortcut.
  long long charged_construction_rounds = 0;
  long long aggregations = 0;
  int trees = 0;

  [[nodiscard]] long long total_rounds() const {
    return rounds + charged_construction_rounds;
  }
};

struct MinCutOptions {
  /// Shortcut source shared by the packing MSTs and the per-tree cut
  /// dissemination (Session::solve wires the session cache in here).
  ShortcutSource source;
  int num_trees = 8;
  /// Score each packing tree by its best 2-respecting cut (Thorup's (1+eps)
  /// guarantee) instead of 1-respecting only (2-approx guarantee). The
  /// evaluation is centralized verifier-grade either way; the charged rounds
  /// are identical (see DESIGN.md §4).
  bool two_respecting = false;
  /// Optional per-packing-tree telemetry (stage = "packing-tree").
  RoundTraceHook trace;
};

[[nodiscard]] MinCutResult approx_min_cut(Simulator& sim,
                                          const std::vector<Weight>& w,
                                          const MinCutOptions& options);

/// Best 1-respecting cut of the spanning tree `tree_edges` (centralized
/// helper, also used to verify the distributed accounting).
[[nodiscard]] Weight best_one_respecting_cut(
    const Graph& g, const std::vector<Weight>& w,
    const std::vector<EdgeId>& tree_edges);

/// Best cut crossing the tree in at most TWO tree edges (1- or 2-respecting)
/// — the quantity Thorup's packing lemma guarantees approximates the min cut
/// to (1+eps) with enough trees. Centralized O(n^2) evaluation per tree;
/// used by tests/benches as the full-strength verifier.
[[nodiscard]] Weight best_two_respecting_cut(
    const Graph& g, const std::vector<Weight>& w,
    const std::vector<EdgeId>& tree_edges);

/// Per-vertex candidates behind best_one_respecting_cut(): cut(S_v) keyed by
/// the child vertex v of each tree edge (max() at the root, which keys no
/// edge). These are the values approx_min_cut disseminates.
[[nodiscard]] std::vector<Weight> one_respecting_cut_values(
    const Graph& g, const std::vector<Weight>& w,
    const std::vector<EdgeId>& tree_edges);

/// Per-vertex candidates behind best_two_respecting_cut(): for each child
/// vertex, the best 1- or 2-respecting cut using its tree edge.
[[nodiscard]] std::vector<Weight> two_respecting_cut_values(
    const Graph& g, const std::vector<Weight>& w,
    const std::vector<EdgeId>& tree_edges);

}  // namespace mns::congest
