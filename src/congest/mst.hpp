// Distributed MST (internal engine of Session::solve(Mst) — user code goes
// through congest::Session, which owns the shortcut cache and telemetry).
//
// boruvka_mst(): Boruvka phases on top of part-wise aggregation — the
// algorithm Theorem 1 accelerates. Each phase: one round of fragment-label
// exchange with neighbours, a part-wise min aggregation to pick each
// fragment's lightest outgoing edge (over the fragment's shortcut), a star-
// contraction merge, and one more aggregation on the new partition that
// disseminates the merged labels. Shortcuts arrive per phase from the
// injected ShortcutSource; freshly built ones are charged as an extra
// aggregation pass recorded in charged_construction_rounds (the [HIZ16a]
// substitution, DESIGN.md §2), cached ones are not charged again.
//
// controlled_ghs_mst(): the classical O~(D + sqrt(n)) baseline [GKP98]:
// fragment growth capped at sqrt(n), then pipelined upcast/downcast of
// fragment candidates over the BFS tree.
#pragma once

#include <functional>

#include "congest/aggregation.hpp"
#include "congest/shortcut_source.hpp"
#include "congest/simulator.hpp"
#include "graph/rooted_tree.hpp"

namespace mns::congest {

/// Kruskal reference (centralized) for verification.
[[nodiscard]] std::vector<EdgeId> kruskal_mst(const Graph& g,
                                              const std::vector<Weight>& w);

/// Re-exported from core/shortcut.hpp: Session wraps one into the
/// ShortcutSource the workloads consume.
using ShortcutProvider = ::mns::ShortcutProvider;

struct MstOptions {
  /// Where this run's per-phase shortcuts come from (Session::solve wires
  /// the session cache in here; source_from_provider() for bare providers).
  ShortcutSource source;
  /// Stop early once every fragment has at least this many vertices
  /// (controlled-GHS phase 1); 0 = run to a single fragment.
  VertexId stop_at_fragment_size = 0;
  /// Optional per-phase telemetry (stage = "boruvka-phase").
  RoundTraceHook trace;
};

struct MstResult {
  std::vector<EdgeId> edges;
  long long rounds = 0;  ///< measured communication rounds
  /// [HIZ16a] substitution charges for freshly built shortcuts (DESIGN.md
  /// §2); kept out of `rounds` so cached and cold runs measure identically.
  long long charged_construction_rounds = 0;
  long long aggregations = 0;  ///< part-wise aggregations performed
  int phases = 0;
  /// Fragment labels after the run (dense; for phase-1 handoff).
  std::vector<PartId> fragment_of;

  /// Measured + charged: the round count comparisons should quote.
  [[nodiscard]] long long total_rounds() const {
    return rounds + charged_construction_rounds;
  }
};

[[nodiscard]] MstResult boruvka_mst(Simulator& sim,
                                    const std::vector<Weight>& w,
                                    const MstOptions& options);

/// Controlled-GHS: Boruvka without shortcuts until fragments reach sqrt(n),
/// then pipelined candidate upcast/downcast over the given BFS tree.
/// `trace` receives phase-1 "boruvka-phase" entries and one "ghs-phase"
/// entry per pipelined phase-2 iteration.
[[nodiscard]] MstResult controlled_ghs_mst(Simulator& sim,
                                           const RootedTree& bfs_tree,
                                           const std::vector<Weight>& w,
                                           const RoundTraceHook& trace = {});

}  // namespace mns::congest
