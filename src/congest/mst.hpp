// Distributed MST.
//
// boruvka_mst(): Boruvka phases on top of part-wise aggregation — the
// algorithm Theorem 1 accelerates. Each phase: one round of fragment-label
// exchange with neighbours, a part-wise min aggregation to pick each
// fragment's lightest outgoing edge (over the fragment's shortcut), a star-
// contraction merge, and one more aggregation on the new partition that
// disseminates the merged labels. Shortcuts are rebuilt per phase by the
// injected provider; by default their construction is charged as an extra
// aggregation pass (see DESIGN.md on the [HIZ16a] substitution).
//
// controlled_ghs_mst(): the classical O~(D + sqrt(n)) baseline [GKP98]:
// fragment growth capped at sqrt(n), then pipelined upcast/downcast of
// fragment candidates over the BFS tree.
#pragma once

#include <functional>

#include "congest/aggregation.hpp"
#include "congest/simulator.hpp"
#include "graph/rooted_tree.hpp"

namespace mns::congest {

/// Kruskal reference (centralized) for verification.
[[nodiscard]] std::vector<EdgeId> kruskal_mst(const Graph& g,
                                              const std::vector<Weight>& w);

/// Re-exported from core/shortcut.hpp: ShortcutEngine::provider() is the
/// canonical way to obtain one.
using ShortcutProvider = ::mns::ShortcutProvider;

/// Provider returning empty shortcuts (the no-shortcut baseline).
[[nodiscard]] ShortcutProvider empty_shortcut_provider();

struct MstOptions {
  ShortcutProvider provider;
  /// Charge shortcut construction as one extra aggregation's worth of rounds
  /// per phase (approximating the distributed [HIZ16a] construction cost).
  bool charge_construction = true;
  /// Stop early once every fragment has at least this many vertices
  /// (controlled-GHS phase 1); 0 = run to a single fragment.
  VertexId stop_at_fragment_size = 0;
};

struct MstResult {
  std::vector<EdgeId> edges;
  long long rounds = 0;
  int phases = 0;
  /// Fragment labels after the run (dense; for phase-1 handoff).
  std::vector<PartId> fragment_of;
};

[[nodiscard]] MstResult boruvka_mst(Simulator& sim,
                                    const std::vector<Weight>& w,
                                    const MstOptions& options);

/// Controlled-GHS: Boruvka without shortcuts until fragments reach sqrt(n),
/// then pipelined candidate upcast/downcast over the given BFS tree.
[[nodiscard]] MstResult controlled_ghs_mst(Simulator& sim,
                                           const RootedTree& bfs_tree,
                                           const std::vector<Weight>& w);

}  // namespace mns::congest
