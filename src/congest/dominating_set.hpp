// Distributed dominating set by parallel span greedy (DESIGN.md §13).
//
// Each phase, every vertex whose closed neighborhood still contains
// uncovered vertices computes its span (how many it would newly cover) and
// the vertices that are span-maximum within distance 2 join the set — the
// parallelization of the classical greedy that never lets two nearby
// selections waste coverage on the same neighborhood. Four communication
// rounds per phase (coverage announcements, span exchange, maximum relay,
// join announcements), then a convergecast sums |D| to the tree root so the
// size is a value the NETWORK computed, not the driver.
//
// Approximation contract: every selected vertex had maximum span within
// distance 2 at selection time — the greedy invariant. On the repo's
// minor-excluded certificate families (bounded degeneracy) the measured size
// stays within a small constant of the sequential greedy oracle; that ratio
// is a pinned regression quantity (tests + bench_workloads baselines), not a
// proven theorem. The phase count is finite because the globally
// span-maximum vertex always selects itself, covering >= 1 new vertex.
//
// Determinism: span ties break by smaller vertex id; every cross-vertex
// effect merges at the sequential barrier — rounds/messages are
// bit-identical at every thread width and across transport ranks.
#pragma once

#include <string>
#include <vector>

#include "congest/shortcut_source.hpp"
#include "congest/simulator.hpp"
#include "graph/rooted_tree.hpp"

namespace mns::congest {

struct DominatingSetOptions {
  /// Optional per-phase telemetry (stage = "span-phase").
  RoundTraceHook trace;
};

struct DominatingSetResult {
  std::vector<char> in_set;  ///< 1 iff the vertex joined the dominating set
  VertexId size = 0;         ///< |D| as summed at the tree root (convergecast)
  long long rounds = 0;      ///< measured rounds, convergecast included
  int phases = 0;            ///< selection phases until full coverage
};

/// Runs the span greedy to full coverage, then convergecasts |D| over
/// `tree` (the session spanning tree).
[[nodiscard]] DominatingSetResult span_greedy_dominating_set(
    Simulator& sim, const RootedTree& tree,
    const DominatingSetOptions& options = {});

/// Sequential greedy oracle: repeatedly pick the vertex covering the most
/// still-uncovered vertices (ties: smaller id) — the reference bound for the
/// distributed result.
[[nodiscard]] std::vector<char> greedy_dominating_set(const Graph& g);

/// "" iff every vertex is in `in_set` or adjacent to a member.
[[nodiscard]] std::string verify_dominating_set(const Graph& g,
                                                const std::vector<char>& in_set);

}  // namespace mns::congest
