// Distributed single-source shortest path — the third headline workload of
// the paper's abstract (MST, min-cut, *shortest path*), in the shortcut
// framework of Haeupler-Li-Zuzic [PODC 2018] (see also Ghaffari-Haeupler on
// shortcuts for dense-minor-free graphs).
//
// exact_sssp(): the lock-step distributed Bellman-Ford baseline on the
// VertexProgram engine. A node re-broadcasts its distance estimate whenever it
// improves; at quiescence every edge has been relaxed with final values, so
// the result is exact. Rounds equal the largest hop count over shortest
// paths — which adversarial weightings (a light serpentine route through a
// grid) push to Theta(n) even on networks of diameter O(1). That hop-count
// wall is exactly the gap the shortcut machinery closes.
//
// approx_sssp(): (1+eps)-approximate SSSP. Two ingredients:
//
//  1. Weight rounding/scaling: every weight is snapped UP onto a geometric
//     (1+eps) ladder, so w <= w' <= (1+eps) w PER EDGE. Distances computed
//     exactly under w' are a (1+eps)-approximation under w for every vertex,
//     regardless of path structure — the guarantee is by construction, not
//     by analysis of the schedule.
//  2. Shortcut-accelerated cluster jumps: the graph is partitioned into
//     weighted Voronoi cells seeded from the current wavefront (re-built per
//     scale phase as the wavefront outgrows the old cells — the same
//     repeated re-partition access pattern as Boruvka, but weight-driven),
//     and short Bellman-Ford bursts are interleaved with part-wise min
//     aggregations over the provider's shortcut: each cell aggregates
//     min_v(dist[v] + cdist[v]) (cdist = intra-cell distance to the cell
//     seed) and every member u relaxes dist[u] <= min + cdist[u]. A jump
//     propagates a distance across an entire cell in shortcut-quality many
//     rounds instead of cell-hop-count many, while every estimate remains
//     the length of a real path (entry -> seed -> u), so estimates never
//     drop below the true distance. The run continues to global quiescence,
//     i.e. to the exact fixed point under w' — the (1+eps) guarantee of the
//     rounding therefore always holds; the jumps only change how many rounds
//     it takes to get there.
//
// Round accounting (the DESIGN.md §2-§3 substitution discipline, as in
// mincut): Bellman-Ford rounds and aggregation rounds are honestly
// simulated; the per-phase Voronoi/cdist construction is computed centrally
// and charged as the hop depth of the Voronoi forest — the rounds a
// distributed Bellman-Ford-style cell growth would take — recorded in
// charged_construction_rounds, and only for FRESH partitions (a session
// cache hit means the cells and their shortcut were already paid for).
// Internal engine of Session::solve(ApproxSssp) — user code goes through
// congest::Session.
#pragma once

#include "congest/shortcut_source.hpp"
#include "congest/simulator.hpp"
#include "core/ldd.hpp"
#include "graph/algorithms.hpp"

namespace mns::congest {

/// Re-exported from core/shortcut.hpp (as in mst.hpp):
/// Session wraps one into the ShortcutSource the workloads consume.
using ShortcutProvider = ::mns::ShortcutProvider;

struct SsspResult {
  /// Weighted distance from the source under the (possibly rounded) weights;
  /// kUnreachedWeight for vertices in other components.
  std::vector<Weight> dist;
  long long rounds = 0;  ///< measured rounds consumed
  /// Voronoi cell-growth charges for freshly built partitions (DESIGN.md
  /// §2-§3); kept out of `rounds` so cached and cold runs measure
  /// identically. Always 0 for exact_sssp.
  long long charged_construction_rounds = 0;
  int phases = 0;       ///< scale phases (re-partitions); approx only
  long long jumps = 0;  ///< part-wise aggregations performed; approx only

  [[nodiscard]] long long total_rounds() const {
    return rounds + charged_construction_rounds;
  }
};

/// Exact lock-step Bellman-Ford (the baseline). Requires non-negative
/// weights; vertices unreachable from `source` keep kUnreachedWeight.
[[nodiscard]] SsspResult exact_sssp(Simulator& sim,
                                    const std::vector<Weight>& w,
                                    VertexId source);

struct ApproxSsspOptions {
  /// Shortcut source for the per-phase wavefront partitions (Session::solve
  /// wires the session cache in here).
  ShortcutSource source;
  /// Approximation slack: returned distances are within (1+epsilon) of true.
  double epsilon = 0.25;
  /// Voronoi cells per phase; 0 = ceil(sqrt(n)).
  VertexId num_seeds = 0;
  /// Bellman-Ford rounds between consecutive cluster jumps.
  int bf_rounds_per_cycle = 8;
  /// Re-partition once this fraction of vertices joined the wavefront since
  /// the current partition was built (the scale-phase trigger).
  double repartition_growth = 0.5;
  /// Voronoi growth stops at this hop depth (bounding the charged per-phase
  /// construction cost); 0 = auto (a few cell diameters).
  int voronoi_hop_cap = 0;
  /// true: cells are seeded from the current wavefront (adapts to the query;
  /// partitions differ per source). false: a deterministic stride spread
  /// that depends only on the network — the SAME partition for every source,
  /// so a Session's shortcut cache serves k-source query batches with one
  /// construction (DESIGN.md §5).
  bool wavefront_seeds = true;
  /// Non-null: pin the cells to this low-diameter decomposition for the
  /// whole run (the kLdd partition source, DESIGN.md §13). The cells never
  /// repartition; cdist becomes the LDD forest distance to the cluster
  /// center under the rounded weights (real path lengths, so estimates
  /// still never undershoot), and a fresh construction charges radius + 1
  /// rounds — once per core, since every run resolves to the same cached
  /// shortcut. Overrides wavefront_seeds/num_seeds/voronoi_hop_cap. Must
  /// outlive the call.
  const LddDecomposition* fixed_cells = nullptr;
  /// Optional per-scale-phase telemetry (stage = "scale-phase").
  RoundTraceHook trace;
};

/// (1+eps)-approximate SSSP: geometric weight rounding + shortcut-based
/// cluster jumps, run to quiescence (exact under the rounded weights).
/// Requires strictly positive weights and a connected network (the shortcut
/// machinery's standing assumption). Guarantees, for every v:
///   d(v) <= result.dist[v] <= (1+epsilon) d(v).
[[nodiscard]] SsspResult approx_sssp(Simulator& sim,
                                     const std::vector<Weight>& w,
                                     VertexId source,
                                     const ApproxSsspOptions& options);

/// The rounding ladder used by approx_sssp: every weight snapped up to the
/// next representative, with w <= rounded <= (1+epsilon) w per edge.
/// Exposed for tests/benches.
[[nodiscard]] std::vector<Weight> round_weights(const std::vector<Weight>& w,
                                                double epsilon);

}  // namespace mns::congest
