// Standard CONGEST primitives on a rooted spanning tree: broadcast (root ->
// everyone, O(height) rounds), convergecast (min toward the root, O(height)),
// and leader election by min-id flooding (O(D) rounds). These are the O(D)
// building blocks all shortcut algorithms assume for free ([paper §1.3.1]:
// nodes learn n and D "in O(D) time, which is negligible in our context").
#pragma once

#include "congest/simulator.hpp"
#include "graph/rooted_tree.hpp"

namespace mns::congest {

/// Broadcasts `value` from the tree root to every node; returns the per-node
/// received values (== value everywhere) after measured rounds.
struct BroadcastResult {
  std::vector<std::int64_t> received;
  long long rounds = 0;
};
[[nodiscard]] BroadcastResult broadcast(Simulator& sim, const RootedTree& tree,
                                        std::int64_t value);

/// Convergecast: min of all `values` flows to the root (O(height) rounds).
struct ConvergecastResult {
  std::int64_t min_at_root = 0;
  long long rounds = 0;
};
[[nodiscard]] ConvergecastResult convergecast_min(
    Simulator& sim, const RootedTree& tree,
    const std::vector<std::int64_t>& values);

/// Convergecast: the SUM of all `values` flows to the root (O(height)
/// rounds) — each node reports its subtree total once every child reported.
struct ConvergecastSumResult {
  std::int64_t sum_at_root = 0;
  long long rounds = 0;
};
[[nodiscard]] ConvergecastSumResult convergecast_sum(
    Simulator& sim, const RootedTree& tree,
    const std::vector<std::int64_t>& values);

/// Leader election by min-id flooding on the raw graph: every node ends up
/// knowing the smallest vertex id; rounds = eccentricity-ish (O(D)).
struct LeaderResult {
  VertexId leader = kInvalidVertex;
  long long rounds = 0;
};
[[nodiscard]] LeaderResult elect_leader(Simulator& sim);

/// Distributed 2-approximate diameter: BFS from `start`, then BFS from the
/// farthest vertex found. The paper (§1.3.1) assumes nodes know D up to
/// constants and notes it is computable in O(D); this is that computation.
/// Guarantees D/2 <= estimate <= D.
struct DiameterEstimate {
  int estimate = 0;
  long long rounds = 0;
};
[[nodiscard]] DiameterEstimate estimate_diameter(Simulator& sim,
                                                 VertexId start);

}  // namespace mns::congest
