// congest::SolveHandle — the cheap, per-request half of a solver session
// (DESIGN.md §10 "Serving architecture").
//
// A SolveHandle owns everything one in-flight request needs and nothing it
// must share: the Simulator (round engine + arenas + staging shards), the
// execution policy, the per-request cache-hit/miss accounting, and the
// name-keyed workload registry. All expensive read-only state — graph,
// certificate, rooted tree, shortcut cache — lives in the SolverCore the
// handle points at (solver_core.hpp), so handles are cheap to create per
// request and any number of them can drive the SAME core from different
// threads concurrently. serve::QueryServer does exactly that; the legacy
// congest::Session wraps one core + one default handle.
//
// This header also defines the workload request structs, result payloads,
// RunReport and SolveOptions that were historically part of session.hpp —
// they are the vocabulary of every solve, whichever surface issues it.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "congest/aggregation.hpp"
#include "congest/bfs.hpp"
#include "congest/mincut.hpp"
#include "congest/mst.hpp"
#include "congest/shortcut_source.hpp"
#include "congest/simulator.hpp"
#include "congest/solver_core.hpp"
#include "congest/sssp.hpp"

namespace mns::congest {

// ---------------------------------------------------------------- workloads

/// Distributed MST (Boruvka over shortcut-backed aggregations).
struct Mst {
  std::vector<Weight> weights;
  /// Stop once every fragment has at least this many vertices; 0 = full MST.
  VertexId stop_at_fragment_size = 0;
};

/// The O~(D + sqrt(n)) controlled-GHS MST baseline over the core tree.
struct GhsMst {
  std::vector<Weight> weights;
};

/// (2+eps)/(1+eps) min cut via greedy tree packing.
struct MinCut {
  std::vector<Weight> weights;
  int num_trees = 8;
  bool two_respecting = false;
};

/// Exact lock-step Bellman-Ford SSSP (the no-shortcut baseline).
struct ExactSssp {
  std::vector<Weight> weights;
  VertexId source = 0;
};

/// (1+eps)-approximate shortcut-accelerated SSSP.
struct ApproxSssp {
  std::vector<Weight> weights;
  VertexId source = 0;
  double epsilon = 0.25;
  VertexId num_seeds = 0;        ///< 0 = ceil(sqrt(n))
  int bf_rounds_per_cycle = 8;
  double repartition_growth = 0.5;
  int voronoi_hop_cap = 0;       ///< 0 = auto
  /// false = source-independent cells: identical partitions across a k-source
  /// batch, so the shared cache pays construction once (DESIGN.md §5, §10).
  bool wavefront_seeds = true;
};

/// Distributed BFS tree construction by flooding (the O(D) primitive).
struct Bfs {
  VertexId root = 0;
};

/// Luby-style randomized-priority maximal independent set (congest/mis.hpp).
/// Priorities are pure hashes of (seed, phase, vertex): rounds, messages and
/// membership are bit-identical at every thread width and across transports.
struct Mis {
  std::uint64_t seed = 1;
};

/// Parallel span-greedy dominating set (congest/dominating_set.hpp): the
/// distance-2 span maxima join each phase; |D| is convergecast to the core
/// tree root.
struct DominatingSet {};

/// One part-wise min aggregation over an explicit partition (Definition 9) —
/// the primitive every workload above is built from. Repeated aggregations
/// over the same partition (e.g. periodic per-zone sensor queries) hit the
/// shortcut cache.
struct Aggregate {
  Partition parts;
  std::vector<AggValue> values;
};

// ----------------------------------------------------------------- payloads

struct MstPayload {
  std::vector<EdgeId> edges;
  std::vector<PartId> fragment_of;
};
struct MinCutPayload {
  Weight value = 0;
  int trees = 0;
};
struct SsspPayload {
  std::vector<Weight> dist;
  long long jumps = 0;
};
struct BfsPayload {
  std::vector<int> dist;
  std::vector<VertexId> parent;
  std::vector<EdgeId> parent_edge;
};
struct AggregatePayload {
  std::vector<AggValue> min_of_part;
};
struct MisPayload {
  std::vector<char> in_mis;  ///< 1 iff the vertex is in the MIS
  VertexId size = 0;
};
struct DomsetPayload {
  std::vector<char> in_set;  ///< 1 iff the vertex joined the dominating set
  VertexId size = 0;         ///< |D| as summed at the tree root
};

// --------------------------------------------------------------- run report

/// Uniform telemetry for every solve(): what the run cost and what the cache
/// did, plus the problem-specific payload.
struct RunReport {
  std::string workload;  ///< registry name ("mst", "sssp.approx", ...)
  long long rounds = 0;    ///< measured communication rounds of this run
  long long messages = 0;  ///< messages sent during this run
  /// Worker threads the round engine fanned this run over (DESIGN.md §7).
  /// Purely a wall-clock knob: every other field of the report is
  /// bit-identical across thread counts (pinned by the test_session parity
  /// sweep and bench_parallel_scaling).
  int threads = 1;
  /// Substitution charges for constructions paid by this run (DESIGN.md §2);
  /// cache hits re-pay nothing, so warm runs charge less than cold ones.
  long long charged_construction_rounds = 0;
  int phases = 0;              ///< Boruvka phases / packing trees / scale phases
  long long aggregations = 0;  ///< part-wise aggregations performed
  long long cache_hits = 0;    ///< shortcut-cache hits during this run
  long long cache_misses = 0;  ///< misses (constructions) during this run
  /// Cache entries this run's inserts LRU-evicted (churn pressure signal:
  /// nonzero means the working set outgrew the cache capacity).
  long long cache_evictions = 0;
  double wall_ms = 0.0;        ///< wall-clock time of the run

  std::variant<std::monostate, MstPayload, MinCutPayload, SsspPayload,
               BfsPayload, AggregatePayload, MisPayload, DomsetPayload>
      payload;

  /// Measured + charged: the round count comparisons should quote.
  [[nodiscard]] long long total_rounds() const {
    return rounds + charged_construction_rounds;
  }

  // Checked payload accessors (throw InvariantViolation on the wrong kind).
  [[nodiscard]] const MstPayload& mst() const;
  [[nodiscard]] const MinCutPayload& min_cut() const;
  [[nodiscard]] const SsspPayload& sssp() const;
  [[nodiscard]] const BfsPayload& bfs() const;
  [[nodiscard]] const AggregatePayload& aggregate() const;
  [[nodiscard]] const MisPayload& mis() const;
  [[nodiscard]] const DomsetPayload& domset() const;
};

// ------------------------------------------------------------ solve options

/// Where the shortcuts a solve aggregates over come from (DESIGN.md §13).
enum class PartitionSource {
  /// The workload's own partitions (Boruvka fragments, Voronoi cells, ...).
  kWorkload,
  /// The core's low-diameter decomposition: ONE weight-independent
  /// clustering whose shortcut is built (and cached) once, then projected
  /// onto whatever partition the workload aggregates over. Repeated solves —
  /// across workloads and weight vectors — share that single cache entry.
  kLdd,
};

/// Per-solve knobs shared by every workload.
struct SolveOptions {
  /// false = flooding baseline: empty shortcuts, nothing constructed or
  /// charged.
  bool use_shortcuts = true;
  /// false = cold run: bypass the cache, build every shortcut fresh (every
  /// build counts as a miss). Benches use this as the uncached baseline.
  bool use_cache = true;
  /// false = do not charge construction substitutions at all (ablations).
  bool charge_construction = true;
  /// Per-phase telemetry stream (Boruvka phase / packing tree / scale phase
  /// / GHS phase). Workloads with no phase structure (ExactSssp, Bfs,
  /// single-shot Aggregate) emit nothing.
  RoundTraceHook trace;
  /// Worker threads for this solve: 0 = the handle default, 1 = sequential,
  /// N = fan each round phase over N shards, -1 = hardware_concurrency.
  /// Never changes results — only wall clock (DESIGN.md §7).
  int threads = 0;
  /// Shortcut provenance (DESIGN.md §13). kLdd makes shortcut-backed
  /// workloads aggregate over projections of the core LDD's cached
  /// shortcut; sssp.approx additionally pins its cells to the LDD clusters
  /// (never repartitions). Ignored by shortcut-free workloads.
  PartitionSource partition = PartitionSource::kWorkload;
};

/// Parameter bundle for string dispatch: the union of every built-in
/// workload's knobs, defaulted like the typed structs. (Historically nested
/// as Session::WorkloadParams, which remains an alias.)
struct WorkloadParams {
  std::vector<Weight> weights;
  VertexId source = 0;  ///< SSSP source / BFS root
  VertexId stop_at_fragment_size = 0;
  int num_trees = 8;
  bool two_respecting = false;
  double epsilon = 0.25;
  VertexId num_seeds = 0;
  int bf_rounds_per_cycle = 8;
  double repartition_growth = 0.5;
  int voronoi_hop_cap = 0;
  bool wavefront_seeds = true;
  std::uint64_t seed = 1;  ///< MIS priority seed
};

/// The names register_builtin_workloads() installs, sorted — the single
/// source of truth tools (mnsctl usage) and tests quote.
[[nodiscard]] const std::vector<std::string>& builtin_workload_names();

// ------------------------------------------------------------- solve handle

class SolveHandle {
 public:
  /// Binds to a shared core. `execution` is the handle's default thread
  /// policy (overridable per solve via SolveOptions::threads).
  explicit SolveHandle(std::shared_ptr<const SolverCore> core,
                       ExecutionPolicy execution = {});

  SolveHandle(const SolveHandle&) = delete;
  SolveHandle& operator=(const SolveHandle&) = delete;

  [[nodiscard]] const SolverCore& core() const noexcept { return *core_; }
  [[nodiscard]] const std::shared_ptr<const SolverCore>& core_ptr()
      const noexcept {
    return core_;
  }
  [[nodiscard]] const Graph& graph() const noexcept { return core_->graph(); }
  [[nodiscard]] Simulator& simulator() noexcept { return sim_; }

  /// Installs a message transport on the round engine (non-owning; must
  /// outlive the handle or be detached with nullptr — DESIGN.md §11). Every
  /// subsequent solve's rounds exchange through it.
  void set_transport(transport::Transport* transport) {
    sim_.set_transport(transport);
  }

  /// Points the handle at a different core over the SAME graph object
  /// (Session::set_certificate swaps structural knowledge this way without
  /// invalidating the simulator). Throws if the graph differs.
  void rebind(std::shared_ptr<const SolverCore> core);

  // -- the uniform solve surface --
  [[nodiscard]] RunReport solve(const Mst& q, const SolveOptions& opt = {});
  [[nodiscard]] RunReport solve(const GhsMst& q, const SolveOptions& opt = {});
  [[nodiscard]] RunReport solve(const MinCut& q, const SolveOptions& opt = {});
  [[nodiscard]] RunReport solve(const ExactSssp& q,
                                const SolveOptions& opt = {});
  [[nodiscard]] RunReport solve(const ApproxSssp& q,
                                const SolveOptions& opt = {});
  [[nodiscard]] RunReport solve(const Bfs& q, const SolveOptions& opt = {});
  [[nodiscard]] RunReport solve(const Mis& q, const SolveOptions& opt = {});
  [[nodiscard]] RunReport solve(const DominatingSet& q,
                                const SolveOptions& opt = {});
  [[nodiscard]] RunReport solve(const Aggregate& q,
                                const SolveOptions& opt = {});

  // -- the name-keyed workload registry --

  /// Runs the named workload (builtin_workload_names(): "bfs", "domset",
  /// "mincut", "mis", "mst", "mst.ghs", "sssp.approx", "sssp.exact").
  /// Throws InvariantViolation naming the offender on unknown names.
  [[nodiscard]] RunReport solve(std::string_view workload,
                                const WorkloadParams& params,
                                const SolveOptions& opt = {});

  using WorkloadFn = std::function<RunReport(
      SolveHandle&, const WorkloadParams&, const SolveOptions&)>;
  /// Registers a strategy. Throws InvariantViolation on empty or duplicate
  /// names.
  void register_workload(std::string name, WorkloadFn fn);
  [[nodiscard]] bool has_workload(std::string_view name) const;
  /// Sorted registry names.
  [[nodiscard]] std::vector<std::string> workload_names() const;

  // -- per-handle cache accounting (what RunReports delta against) --
  [[nodiscard]] long long cache_hits() const noexcept { return hits_; }
  [[nodiscard]] long long cache_misses() const noexcept { return misses_; }
  [[nodiscard]] long long cache_evictions() const noexcept {
    return evictions_;
  }

 private:
  [[nodiscard]] ShortcutSource make_source(const SolveOptions& opt);
  void register_builtin_workloads();

  /// Runs `body` between telemetry snapshots and assembles the RunReport;
  /// applies the solve's execution policy (threads) to the simulator first.
  template <typename Body>
  RunReport run(const char* workload, const SolveOptions& opt, Body&& body);

  std::shared_ptr<const SolverCore> core_;
  ExecutionPolicy default_execution_;
  Simulator sim_;
  long long hits_ = 0;
  long long misses_ = 0;
  long long evictions_ = 0;
  std::map<std::string, WorkloadFn, std::less<>> workloads_;
};

}  // namespace mns::congest
