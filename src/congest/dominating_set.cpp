#include "congest/dominating_set.hpp"

#include <algorithm>

#include "congest/primitives.hpp"
#include "congest/vertex_program.hpp"

namespace mns::congest {

namespace {

constexpr std::int32_t kTagCovered = 0;  ///< I became covered last phase
constexpr std::int32_t kTagSpan = 1;     ///< my span (value) and id (aux)
constexpr std::int32_t kTagMax = 2;      ///< best span pair seen in my N[.]
constexpr std::int32_t kTagJoin = 3;     ///< I joined the dominating set

/// (span, id) with larger-span-then-smaller-id preference; span < 0 = none.
struct SpanPair {
  std::int64_t span = -1;
  VertexId id = kInvalidVertex;
};

bool better(const SpanPair& a, const SpanPair& b) {
  if (a.span != b.span) return a.span > b.span;
  return a.id < b.id;
}

/// Four rounds per phase: Status (new coverage announcements decrement
/// neighbor spans), Span (candidates exchange spans), Max (everyone who saw
/// a span relays the best, completing distance-2 visibility), Join (the
/// distance-2 maxima announce membership). Receive-side writes are v-local;
/// list rebuilds and status flips happen at the sequential barrier.
struct SpanGreedyProgram {
  enum class Round { kStatus, kSpan, kMax, kJoin };

  const Graph& g;
  std::vector<char>& in_set;
  std::vector<char> covered;
  std::vector<std::int64_t> span;  ///< uncovered vertices in N[v], exact
  std::vector<SpanPair> best1;     ///< max span pair over N[v] this phase
  std::vector<SpanPair> best2;     ///< max relayed pair this phase
  std::vector<VertexId> announce;  ///< newly covered, to announce at Status
  std::vector<VertexId> candidates, relay, selected, active;
  std::vector<VertexId> touched1_all, touched2_all;  ///< best1/best2 to reset
  PerShard<std::vector<VertexId>> touched1, touched2, newly_covered;
  VertexId uncovered;
  Round round = Round::kSpan;
  int phases = 0;

  SpanGreedyProgram(Simulator& sim, std::vector<char>& out)
      : g(sim.graph()),
        in_set(out),
        touched1(sim.num_shards()),
        touched2(sim.num_shards()),
        newly_covered(sim.num_shards()),
        uncovered(g.num_vertices()) {
    const VertexId n = g.num_vertices();
    covered.assign(static_cast<std::size_t>(n), 0);
    span.resize(static_cast<std::size_t>(n));
    for (VertexId v = 0; v < n; ++v)
      span[static_cast<std::size_t>(v)] = g.degree(v) + 1;
    best1.assign(static_cast<std::size_t>(n), SpanPair{});
    best2.assign(static_cast<std::size_t>(n), SpanPair{});
    begin_span_round();  // phase 1 has no coverage news: start at Span
  }

  void begin_span_round() {
    const VertexId n = g.num_vertices();
    candidates.clear();
    for (VertexId v = 0; v < n; ++v)
      if (span[static_cast<std::size_t>(v)] > 0) {
        candidates.push_back(v);
        best1[static_cast<std::size_t>(v)] =
            SpanPair{span[static_cast<std::size_t>(v)], v};
      }
    touched1_all = candidates;
    round = Round::kSpan;
    active = candidates;
  }

  [[nodiscard]] std::span<const VertexId> frontier() const { return active; }

  void send(VertexId v, VertexSender& out) {
    const std::span<const EdgeId> ie = g.incident_edges(v);
    switch (round) {
      case Round::kStatus:
        for (EdgeId e : ie) out.send(e, Message{kTagCovered, 0, 0});
        break;
      case Round::kSpan:
        for (EdgeId e : ie)
          out.send(e, Message{kTagSpan, v, span[static_cast<std::size_t>(v)]});
        break;
      case Round::kMax: {
        const SpanPair& b = best1[static_cast<std::size_t>(v)];
        for (EdgeId e : ie) out.send(e, Message{kTagMax, b.id, b.span});
        break;
      }
      case Round::kJoin:
        for (EdgeId e : ie) out.send(e, Message{kTagJoin, 0, 0});
        break;
    }
  }

  void receive(VertexId v, Inbox inbox, const ShardContext& ctx) {
    const auto sv = static_cast<std::size_t>(v);
    for (const Delivery& d : inbox) {
      switch (d.msg.tag) {
        case kTagCovered:
          --span[sv];
          break;
        case kTagSpan:
        case kTagMax: {
          const SpanPair cand{d.msg.value, d.msg.tag == kTagSpan
                                               ? d.from
                                               : d.msg.aux};
          SpanPair& mine = d.msg.tag == kTagSpan ? best1[sv] : best2[sv];
          if (mine.span < 0)
            (d.msg.tag == kTagSpan ? touched1 : touched2)[ctx.shard]
                .push_back(v);
          if (better(cand, mine)) mine = cand;
          break;
        }
        case kTagJoin:
        default:
          if (!covered[sv]) {
            covered[sv] = 1;
            --span[sv];  // v itself left the uncovered set
            newly_covered[ctx.shard].push_back(v);
          }
          break;
      }
    }
  }

  void end_round() {
    switch (round) {
      case Round::kStatus:
        begin_span_round();
        break;
      case Round::kSpan:
        // Relay set: candidates plus every vertex that saw a span — the
        // conduits between candidates two hops apart.
        relay = candidates;
        touched1.for_each([&](std::vector<VertexId>& part) {
          relay.insert(relay.end(), part.begin(), part.end());
          touched1_all.insert(touched1_all.end(), part.begin(), part.end());
          part.clear();
        });
        std::sort(relay.begin(), relay.end());
        round = Round::kMax;
        active = relay;
        break;
      case Round::kMax:
        touched2.for_each([&](std::vector<VertexId>& part) {
          touched2_all.insert(touched2_all.end(), part.begin(), part.end());
          part.clear();
        });
        // Distance-2 maximum test: v's own pair must top both what it saw
        // directly (best1 includes its own span) and what neighbors relayed.
        selected.clear();
        for (VertexId v : candidates) {
          const auto sv = static_cast<std::size_t>(v);
          const SpanPair mine{span[sv], v};
          if (better(best1[sv], mine)) continue;
          if (best2[sv].span >= 0 && better(best2[sv], mine)) continue;
          selected.push_back(v);
        }
        round = Round::kJoin;
        active = selected;
        break;
      case Round::kJoin: {
        announce.clear();
        for (VertexId v : selected) {
          const auto sv = static_cast<std::size_t>(v);
          in_set[sv] = 1;
          if (!covered[sv]) {  // may already be covered by a nearby joiner
            covered[sv] = 1;
            --span[sv];
            --uncovered;
            announce.push_back(v);
          }
        }
        newly_covered.for_each([&](std::vector<VertexId>& part) {
          for (VertexId u : part) {
            --uncovered;
            announce.push_back(u);
          }
          part.clear();
        });
        std::sort(announce.begin(), announce.end());
        for (VertexId v : touched1_all) best1[static_cast<std::size_t>(v)] = {};
        for (VertexId v : touched2_all) best2[static_cast<std::size_t>(v)] = {};
        touched1_all.clear();
        touched2_all.clear();
        ++phases;
        if (uncovered == 0) {
          active.clear();  // quiescent: the set dominates everything
        } else {
          round = Round::kStatus;
          active = announce;
        }
        break;
      }
    }
  }
};

}  // namespace

DominatingSetResult span_greedy_dominating_set(
    Simulator& sim, const RootedTree& tree,
    const DominatingSetOptions& options) {
  const Graph& g = sim.graph();
  const VertexId n = g.num_vertices();
  require(tree.num_vertices() == n,
          "span_greedy_dominating_set: tree does not span the graph");
  DominatingSetResult out;
  out.in_set.assign(static_cast<std::size_t>(n), 0);
  const long long start = sim.rounds();
  SpanGreedyProgram prog(sim, out.in_set);
  if (options.trace) {
    while (!prog.frontier().empty()) {
      const int this_phase = prog.phases;
      const long long r0 = sim.rounds();
      const long long m0 = sim.messages_sent();
      while (prog.phases == this_phase && !prog.frontier().empty())
        (void)run_vertex_program_round(sim, prog);
      options.trace(RoundTrace{"span-phase", this_phase + 1, sim.rounds() - r0,
                               sim.messages_sent() - m0, 0});
    }
  } else {
    (void)run_vertex_program(sim, prog);
  }
  out.phases = prog.phases;
  // The size is a quantity the network computes: subtree sums to the root.
  std::vector<std::int64_t> ones(static_cast<std::size_t>(n), 0);
  VertexId local = 0;
  for (VertexId v = 0; v < n; ++v)
    if (out.in_set[static_cast<std::size_t>(v)]) {
      ones[static_cast<std::size_t>(v)] = 1;
      ++local;
    }
  const ConvergecastSumResult sum = convergecast_sum(sim, tree, ones);
  out.size = static_cast<VertexId>(sum.sum_at_root);
  require(out.size == local,
          "span_greedy_dominating_set: convergecast disagrees with local count");
  out.rounds = sim.rounds() - start;
  return out;
}

std::vector<char> greedy_dominating_set(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<char> in(static_cast<std::size_t>(n), 0);
  std::vector<char> covered(static_cast<std::size_t>(n), 0);
  VertexId uncovered = n;
  while (uncovered > 0) {
    VertexId pick = kInvalidVertex;
    std::int64_t pick_span = 0;
    for (VertexId v = 0; v < n; ++v) {
      std::int64_t s = covered[static_cast<std::size_t>(v)] ? 0 : 1;
      for (VertexId u : g.neighbors(v))
        if (!covered[static_cast<std::size_t>(u)]) ++s;
      if (s > pick_span) {  // ties: smaller id wins (first seen)
        pick_span = s;
        pick = v;
      }
    }
    in[static_cast<std::size_t>(pick)] = 1;
    auto cover = [&](VertexId u) {
      if (!covered[static_cast<std::size_t>(u)]) {
        covered[static_cast<std::size_t>(u)] = 1;
        --uncovered;
      }
    };
    cover(pick);
    for (VertexId u : g.neighbors(pick)) cover(u);
  }
  return in;
}

std::string verify_dominating_set(const Graph& g,
                                  const std::vector<char>& in_set) {
  const VertexId n = g.num_vertices();
  if (static_cast<VertexId>(in_set.size()) != n)
    return "membership vector sized differently from the graph";
  for (VertexId v = 0; v < n; ++v) {
    if (in_set[static_cast<std::size_t>(v)]) continue;
    bool dominated = false;
    for (VertexId u : g.neighbors(v))
      if (in_set[static_cast<std::size_t>(u)]) {
        dominated = true;
        break;
      }
    if (!dominated) return "undominated vertex";
  }
  return "";
}

}  // namespace mns::congest
