// E19 (the serving thesis, DESIGN.md §10): sustained query throughput over
// ONE shared SolverCore. An open-loop synthetic load generator materializes
// the whole arrival queue up front — a mixed batch of MST / min-cut /
// k-source approx-SSSP requests, repeated — and worker pools of width 1, 2
// and 4 drain it, each worker driving its own SolveHandle against the same
// warm core. Reported per family x width:
//
//   deterministic (baseline-gated via mnsctl diff --baseline):
//     requests, rounds_total, messages_total, cache_hits, cache_misses,
//     charged_total (must be 0 post-warm-up), parity ("yes" iff every
//     concurrent RunReport is bit-identical to the sequential reference)
//   volatile (masked by the diff):
//     qps, p50_wall_ms, p99_wall_ms
//
// Exits nonzero on any parity violation or nonzero post-warm-up charge, so
// CI catches a broken cache discipline even before the baseline diff runs.
//
// Set MNS_BENCH_SMOKE=1 to run the smallest instance per family (CI; the
// committed bench/baselines/serve.json is the smoke trajectory).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "congest/solver_core.hpp"
#include "gen/apex.hpp"
#include "gen/clique_sum.hpp"
#include "gen/ktree.hpp"
#include "gen/planar.hpp"
#include "gen/weights.hpp"
#include "io/report_json.hpp"
#include "serve/query_server.hpp"

using namespace mns;

namespace {

struct Instance {
  std::string family;
  Graph graph;
  StructuralCertificate cert;
};

std::vector<Instance> instances(bool smoke) {
  std::vector<Instance> out;
  Rng rng(71);
  {
    const int side = smoke ? 16 : 32;
    out.push_back({"planar", gen::grid(side, side).graph(),
                   greedy_certificate()});
  }
  {
    const VertexId n = smoke ? 256 : 1024;
    gen::KTreeResult kt = gen::random_ktree(n, 3, rng);
    out.push_back({"treewidth", kt.graph,
                   treewidth_certificate(kt.decomposition)});
  }
  {
    const int side = smoke ? 16 : 32;
    gen::ApexResult ar =
        gen::add_apices(gen::grid(side, side).graph(), 1, 0.1, rng);
    out.push_back({"apex", ar.graph, apex_certificate(ar.apices)});
  }
  {
    Graph bag = gen::triangulated_grid(4, 4).graph();
    std::vector<gen::BagInput> inputs;
    for (int i = 0; i < (smoke ? 5 : 16); ++i)
      inputs.push_back({bag, gen::default_glue_cliques(bag, 2)});
    gen::CliqueSumResult cs = gen::compose_clique_sum(inputs, 2, 0.0, rng);
    out.push_back({"cliquesum", cs.graph,
                   cliquesum_certificate(cs.decomposition)});
  }
  return out;
}

/// The load mix: k spread-out SSSP sources (the server batches them onto one
/// shared partition), an MST and a min cut, repeated `repeat` times.
std::vector<serve::Request> load(const Graph& g, const std::vector<Weight>& w,
                                 int repeat) {
  std::vector<serve::Request> unit;
  serve::Request mst;
  mst.workload = "mst";
  mst.params.weights = w;
  unit.push_back(mst);
  serve::Request cut;
  cut.workload = "mincut";
  cut.params.weights = w;
  cut.params.num_trees = 4;
  unit.push_back(cut);
  const VertexId n = g.num_vertices();
  const VertexId stride = n / 8 + 1;
  for (VertexId src = 0; src < n; src += stride) {
    serve::Request sssp;
    sssp.workload = "sssp.approx";
    sssp.params.weights = w;
    sssp.params.source = src;
    unit.push_back(sssp);
  }
  std::vector<serve::Request> out;
  out.reserve(unit.size() * static_cast<std::size_t>(repeat));
  for (int r = 0; r < repeat; ++r)
    out.insert(out.end(), unit.begin(), unit.end());
  return out;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

int main() {
  const bool smoke = std::getenv("MNS_BENCH_SMOKE") != nullptr;
  const int repeat = smoke ? 2 : 8;
  bench::JsonReport report("serve");
  bench::header("E19: concurrent serving over one shared SolverCore");
  std::printf("%-10s %8s %8s %9s %12s %10s %8s %10s %10s %7s\n", "family", "n",
              "workers", "requests", "rounds", "hits", "builds", "qps",
              "p99_ms", "parity");
  bool ok = true;

  for (Instance& inst : instances(smoke)) {
    Rng wrng(73);
    std::vector<Weight> w = gen::unique_random_weights(inst.graph, wrng);
    std::vector<serve::Request> batch = load(inst.graph, w, repeat);

    congest::CoreConfig cc;
    cc.tree = center_tree_factory(1);
    auto core = std::make_shared<const congest::SolverCore>(
        inst.graph, inst.cert, std::move(cc));

    // Warm-then-serve discipline: the first sequential pass pays every
    // construction once; the second is the steady-state reference every
    // concurrent width must bit-match.
    serve::QueryServer warmer(core);
    (void)warmer.warm(batch);
    std::vector<serve::Response> ref = warmer.warm(batch);

    for (int width : {1, 2, 4}) {
      serve::ServerConfig cfg;
      cfg.workers = width;
      serve::QueryServer srv(core, cfg);
      const auto t0 = std::chrono::steady_clock::now();
      std::vector<serve::Response> got = srv.serve(batch);
      const double serve_ms = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count();

      long long rounds = 0, messages = 0, hits = 0, builds = 0, charged = 0;
      std::vector<double> lat;
      lat.reserve(got.size());
      bool parity = got.size() == ref.size();
      for (std::size_t i = 0; i < got.size(); ++i) {
        if (!got[i].ok() ||
            !io::run_reports_identical(got[i].report, ref[i].report))
          parity = false;
        rounds += got[i].report.rounds;
        messages += got[i].report.messages;
        hits += got[i].report.cache_hits;
        builds += got[i].report.cache_misses;
        charged += got[i].report.charged_construction_rounds;
        lat.push_back(got[i].report.wall_ms);
      }
      if (!parity || charged != 0) ok = false;
      const double qps =
          serve_ms > 0.0
              ? static_cast<double>(got.size()) * 1000.0 / serve_ms
              : 0.0;
      const double p50 = percentile(lat, 0.50);
      const double p99 = percentile(lat, 0.99);

      std::printf("%-10s %8d %8d %9zu %12lld %10lld %8lld %10.1f %10.3f %7s\n",
                  inst.family.c_str(), inst.graph.num_vertices(), width,
                  got.size(), rounds, hits, builds, qps, p99,
                  parity ? "yes" : "NO");
      report.row()
          .set("family", inst.family)
          .set("n", static_cast<long long>(inst.graph.num_vertices()))
          .set("workers", width)
          .set("requests", got.size())
          .set("rounds_total", rounds)
          .set("messages_total", messages)
          .set("cache_hits", hits)
          .set("cache_misses", builds)
          .set("charged_total", charged)
          .set("parity", parity ? "yes" : "no")
          .set("qps", qps)
          .set("p50_wall_ms", p50)
          .set("p99_wall_ms", p99);
    }
  }

  const bool wrote = report.write();
  if (!ok) {
    std::fprintf(stderr,
                 "bench_serve: parity violation or nonzero post-warm-up "
                 "charge\n");
    return 1;
  }
  return wrote ? 0 : 1;
}
