// Micro-benchmarks (google-benchmark): construction and measurement
// throughput of the library's hot paths — generator, BFS tree, the three
// shortcut constructors, metrics, folding, and one aggregation round.
#include <benchmark/benchmark.h>

#include "congest/aggregation.hpp"
#include "core/shortcut_engine.hpp"
#include "gen/ktree.hpp"
#include "gen/planar.hpp"
#include "graph/algorithms.hpp"

namespace {

using namespace mns;

const ShortcutEngine& engine() { return ShortcutEngine::global(); }

void BM_RandomMaximalPlanar(benchmark::State& state) {
  const VertexId n = static_cast<VertexId>(state.range(0));
  for (auto _ : state) {
    Rng rng(7);
    benchmark::DoNotOptimize(gen::random_maximal_planar(n, rng));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RandomMaximalPlanar)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 15);

void BM_BfsTree(benchmark::State& state) {
  Rng rng(7);
  EmbeddedGraph eg = gen::random_maximal_planar(
      static_cast<VertexId>(state.range(0)), rng);
  for (auto _ : state) {
    BfsResult r = bfs(eg.graph(), 0);
    benchmark::DoNotOptimize(RootedTree::from_bfs(r, 0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BfsTree)->Arg(1 << 12)->Arg(1 << 15);

void BM_GreedyShortcut(benchmark::State& state) {
  Rng rng(7);
  EmbeddedGraph eg = gen::random_maximal_planar(
      static_cast<VertexId>(state.range(0)), rng);
  const Graph& g = eg.graph();
  RootedTree t = RootedTree::from_bfs(bfs(g, 0), 0);
  Partition parts = voronoi_partition(g, 32, rng);
  StructuralCertificate cert = greedy_certificate();
  // build_shortcut: construction + validation only (the provider hot path);
  // measurement cost is isolated in BM_MeasureShortcut.
  for (auto _ : state)
    benchmark::DoNotOptimize(engine().build_shortcut(g, t, parts, cert));
}
BENCHMARK(BM_GreedyShortcut)->Arg(1 << 12)->Arg(1 << 15);

void BM_SteinerShortcut(benchmark::State& state) {
  Rng rng(7);
  EmbeddedGraph eg = gen::random_maximal_planar(
      static_cast<VertexId>(state.range(0)), rng);
  const Graph& g = eg.graph();
  RootedTree t = RootedTree::from_bfs(bfs(g, 0), 0);
  Partition parts = voronoi_partition(g, 32, rng);
  StructuralCertificate cert = steiner_certificate();
  for (auto _ : state)
    benchmark::DoNotOptimize(engine().build_shortcut(g, t, parts, cert));
}
BENCHMARK(BM_SteinerShortcut)->Arg(1 << 12)->Arg(1 << 15);

void BM_TreewidthShortcut(benchmark::State& state) {
  Rng rng(7);
  gen::KTreeResult kt =
      gen::random_ktree(static_cast<VertexId>(state.range(0)), 3, rng);
  RootedTree t = RootedTree::from_bfs(bfs(kt.graph, 0), 0);
  Partition parts = voronoi_partition(kt.graph, 32, rng);
  StructuralCertificate cert = treewidth_certificate(kt.decomposition);
  for (auto _ : state)
    benchmark::DoNotOptimize(engine().build_shortcut(kt.graph, t, parts, cert));
}
BENCHMARK(BM_TreewidthShortcut)->Arg(1 << 11)->Arg(1 << 13);

void BM_MeasureShortcut(benchmark::State& state) {
  Rng rng(7);
  EmbeddedGraph eg = gen::random_maximal_planar(
      static_cast<VertexId>(state.range(0)), rng);
  const Graph& g = eg.graph();
  RootedTree t = RootedTree::from_bfs(bfs(g, 0), 0);
  Partition parts = voronoi_partition(g, 32, rng);
  Shortcut sc = engine().build_shortcut(g, t, parts, greedy_certificate());
  for (auto _ : state)
    benchmark::DoNotOptimize(measure_shortcut(g, t, parts, sc));
}
BENCHMARK(BM_MeasureShortcut)->Arg(1 << 12)->Arg(1 << 15);

// Simulator round-turnover throughput: every directed edge carries a message
// (the all-to-all load pattern of flooding algorithms).
void BM_SimulatorFinishRoundDense(benchmark::State& state) {
  using namespace mns::congest;
  Rng rng(7);
  EmbeddedGraph eg = gen::random_maximal_planar(
      static_cast<VertexId>(state.range(0)), rng);
  const Graph& g = eg.graph();
  Simulator sim(g);
  for (auto _ : state) {
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      for (EdgeId e : g.incident_edges(v)) sim.send(v, e, Message{0, 0, 1});
    sim.finish_round();
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges() * 2);
}
BENCHMARK(BM_SimulatorFinishRoundDense)->Arg(1 << 12)->Arg(1 << 15);

// Sparse frontier: a handful of active nodes on a large graph — the load
// pattern of BFS/convergecast tails, where per-round O(n) bookkeeping
// dominates the actual message work.
void BM_SimulatorFinishRoundSparse(benchmark::State& state) {
  using namespace mns::congest;
  Rng rng(7);
  EmbeddedGraph eg = gen::random_maximal_planar(
      static_cast<VertexId>(state.range(0)), rng);
  const Graph& g = eg.graph();
  Simulator sim(g);
  const VertexId stride = g.num_vertices() / 64;
  for (auto _ : state) {
    for (VertexId i = 0; i < 64; ++i) {
      VertexId v = i * stride;
      sim.send(v, g.incident_edges(v)[0], Message{0, 0, 1});
    }
    sim.finish_round();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SimulatorFinishRoundSparse)->Arg(1 << 15);

// finish_round's deterministic shard merge at staging widths 1/4/8: every
// directed edge is staged into its vertex's contiguous shard block (the
// exact load the vertex engine produces), so the measured cost is the
// packed-SoA merge + CSR scatter itself, not pool wake-ups or send work.
void BM_SimulatorFinishRoundMerge(benchmark::State& state) {
  using namespace mns::congest;
  Rng rng(7);
  EmbeddedGraph eg = gen::random_maximal_planar(
      static_cast<VertexId>(state.range(0)), rng);
  const Graph& g = eg.graph();
  const int width = static_cast<int>(state.range(1));
  Simulator sim(g, ExecutionPolicy{width});
  const VertexId n = g.num_vertices();
  for (auto _ : state) {
    for (int s = 0; s < width; ++s) {
      const VertexId begin = static_cast<VertexId>(
          static_cast<long long>(n) * s / width);
      const VertexId end = static_cast<VertexId>(
          static_cast<long long>(n) * (s + 1) / width);
      for (VertexId v = begin; v < end; ++v)
        for (EdgeId e : g.incident_edges(v))
          sim.stage_send(s, v, e, Message{0, 0, 1});
    }
    sim.finish_round();
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges() * 2);
}
BENCHMARK(BM_SimulatorFinishRoundMerge)
    ->Args({1 << 15, 1})
    ->Args({1 << 15, 4})
    ->Args({1 << 15, 8});

void BM_AggregationWheel(benchmark::State& state) {
  using namespace mns::congest;
  const VertexId n = static_cast<VertexId>(state.range(0));
  GraphBuilder b(n);
  for (VertexId v = 1; v < n; ++v) {
    b.add_edge(0, v);
    b.add_edge(v, v == n - 1 ? 1 : v + 1);
  }
  Graph g = b.build();
  RootedTree t = RootedTree::from_bfs(bfs(g, 0), 0);
  Partition parts = ring_sectors(n, 1, n - 1, 8);
  Shortcut sc = engine().build_shortcut(g, t, parts, apex_certificate({0}));
  PartwiseAggregator agg(g, parts, sc);
  std::vector<AggValue> init(n);
  for (VertexId v = 0; v < n; ++v) init[v] = {v, v};
  for (auto _ : state) {
    Simulator sim(g);
    benchmark::DoNotOptimize(agg.aggregate_min(sim, init));
  }
}
BENCHMARK(BM_AggregationWheel)->Arg(1 << 10)->Arg(1 << 12);

}  // namespace

BENCHMARK_MAIN();
