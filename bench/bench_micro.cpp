// Micro-benchmarks (google-benchmark): construction and measurement
// throughput of the library's hot paths — generator, BFS tree, the three
// shortcut constructors, metrics, folding, and one aggregation round.
#include <benchmark/benchmark.h>

#include "congest/aggregation.hpp"
#include "core/engine.hpp"
#include "gen/ktree.hpp"
#include "gen/planar.hpp"
#include "graph/algorithms.hpp"

namespace {

using namespace mns;

void BM_RandomMaximalPlanar(benchmark::State& state) {
  const VertexId n = static_cast<VertexId>(state.range(0));
  for (auto _ : state) {
    Rng rng(7);
    benchmark::DoNotOptimize(gen::random_maximal_planar(n, rng));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RandomMaximalPlanar)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 15);

void BM_BfsTree(benchmark::State& state) {
  Rng rng(7);
  EmbeddedGraph eg = gen::random_maximal_planar(
      static_cast<VertexId>(state.range(0)), rng);
  for (auto _ : state) {
    BfsResult r = bfs(eg.graph(), 0);
    benchmark::DoNotOptimize(RootedTree::from_bfs(r, 0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BfsTree)->Arg(1 << 12)->Arg(1 << 15);

void BM_GreedyShortcut(benchmark::State& state) {
  Rng rng(7);
  EmbeddedGraph eg = gen::random_maximal_planar(
      static_cast<VertexId>(state.range(0)), rng);
  const Graph& g = eg.graph();
  RootedTree t = RootedTree::from_bfs(bfs(g, 0), 0);
  Partition parts = voronoi_partition(g, 32, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(build_greedy_shortcut(g, t, parts));
}
BENCHMARK(BM_GreedyShortcut)->Arg(1 << 12)->Arg(1 << 15);

void BM_SteinerShortcut(benchmark::State& state) {
  Rng rng(7);
  EmbeddedGraph eg = gen::random_maximal_planar(
      static_cast<VertexId>(state.range(0)), rng);
  const Graph& g = eg.graph();
  RootedTree t = RootedTree::from_bfs(bfs(g, 0), 0);
  Partition parts = voronoi_partition(g, 32, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(build_steiner_shortcut(g, t, parts));
}
BENCHMARK(BM_SteinerShortcut)->Arg(1 << 12)->Arg(1 << 15);

void BM_TreewidthShortcut(benchmark::State& state) {
  Rng rng(7);
  gen::KTreeResult kt =
      gen::random_ktree(static_cast<VertexId>(state.range(0)), 3, rng);
  RootedTree t = RootedTree::from_bfs(bfs(kt.graph, 0), 0);
  Partition parts = voronoi_partition(kt.graph, 32, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        build_treewidth_shortcut(kt.graph, t, parts, kt.decomposition));
}
BENCHMARK(BM_TreewidthShortcut)->Arg(1 << 11)->Arg(1 << 13);

void BM_MeasureShortcut(benchmark::State& state) {
  Rng rng(7);
  EmbeddedGraph eg = gen::random_maximal_planar(
      static_cast<VertexId>(state.range(0)), rng);
  const Graph& g = eg.graph();
  RootedTree t = RootedTree::from_bfs(bfs(g, 0), 0);
  Partition parts = voronoi_partition(g, 32, rng);
  Shortcut sc = build_greedy_shortcut(g, t, parts);
  for (auto _ : state)
    benchmark::DoNotOptimize(measure_shortcut(g, t, parts, sc));
}
BENCHMARK(BM_MeasureShortcut)->Arg(1 << 12)->Arg(1 << 15);

void BM_AggregationWheel(benchmark::State& state) {
  using namespace mns::congest;
  const VertexId n = static_cast<VertexId>(state.range(0));
  GraphBuilder b(n);
  for (VertexId v = 1; v < n; ++v) {
    b.add_edge(0, v);
    b.add_edge(v, v == n - 1 ? 1 : v + 1);
  }
  Graph g = b.build();
  RootedTree t = RootedTree::from_bfs(bfs(g, 0), 0);
  Partition parts = ring_sectors(n, 1, n - 1, 8);
  Shortcut sc = build_apex_shortcut(g, t, parts, {0}, make_greedy_oracle());
  PartwiseAggregator agg(g, parts, sc);
  std::vector<AggValue> init(n);
  for (VertexId v = 0; v < n; ++v) init[v] = {v, v};
  for (auto _ : state) {
    Simulator sim(g);
    benchmark::DoNotOptimize(agg.aggregate_min(sim, init));
  }
}
BENCHMARK(BM_AggregationWheel)->Arg(1 << 10)->Arg(1 << 12);

}  // namespace

BENCHMARK_MAIN();
