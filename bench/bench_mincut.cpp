// E12 (Corollary 1, min-cut side): distributed tree-packing min-cut on
// minor-free networks — rounds dominated by the MST subroutine (so the Õ(D^2)
// shape carries over) and approximation ratio verified against exact
// Stoer-Wagner. Served through congest::Session; the packing MSTs share the
// session's shortcut cache (the singleton and whole-network partitions hit
// on every tree after the first).
#include <cstdio>

#include "bench_util.hpp"
#include "congest/session.hpp"
#include "gen/clique_sum.hpp"
#include "gen/planar.hpp"
#include "gen/series_parallel.hpp"
#include "gen/weights.hpp"

using namespace mns;

namespace {

void run_case(bench::JsonReport& report, const char* family, const Graph& g,
              const std::vector<Weight>& w) {
  Weight exact = congest::exact_min_cut(g, w);
  congest::Session session = bench::make_session(g, greedy_certificate());
  congest::MinCut query{w};
  query.num_trees = 8;
  query.two_respecting = g.num_vertices() <= 256;  // O(n^2) verifier scale
  congest::RunReport res = session.solve(query);
  std::printf("%-22s n=%5d  exact=%6lld  packed=%6lld  ratio=%.3f  "
              "rounds=%8lld (%d trees, %d-respecting, %lld cache hits)\n",
              family, g.num_vertices(), static_cast<long long>(exact),
              static_cast<long long>(res.min_cut().value),
              static_cast<double>(res.min_cut().value) /
                  static_cast<double>(exact),
              res.total_rounds(), res.min_cut().trees,
              query.two_respecting ? 2 : 1, res.cache_hits);
  report.row().set("family", family).set("n", g.num_vertices())
      .set("exact", static_cast<long long>(exact))
      .set("packed", static_cast<long long>(res.min_cut().value))
      .set_run(res).set("trees", res.min_cut().trees);
}

}  // namespace

int main() {
  bench::header("E12: (1+eps)-style min-cut via tree packing (Corollary 1)");
  bench::JsonReport report("mincut");
  for (int n : {100, 200, 400}) {
    Rng rng(static_cast<unsigned>(n));
    EmbeddedGraph eg = gen::random_maximal_planar(n, rng);
    std::vector<Weight> w = gen::random_weights(eg.graph(), 1, 40, rng);
    run_case(report, "maximal planar", eg.graph(), w);
  }
  for (int regions : {4, 8}) {
    Rng rng(static_cast<unsigned>(regions * 13));
    std::vector<gen::BagInput> bags;
    for (int i = 0; i < regions; ++i) {
      Graph sp = gen::random_series_parallel(30, rng);
      bags.push_back({sp, gen::default_glue_cliques(sp, 2)});
    }
    gen::CliqueSumResult r = gen::compose_clique_sum(bags, 2, 0.0, rng);
    std::vector<Weight> w = gen::random_weights(r.graph, 1, 40, rng);
    char label[48];
    std::snprintf(label, sizeof label, "SP clique-sum x%d", regions);
    run_case(report, label, r.graph, w);
  }
  return 0;
}
