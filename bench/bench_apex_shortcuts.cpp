// E9 (Lemma 9, Theorem 8): apex graphs — the hard case where the diameter
// collapses (wheel: Theta(1)) while parts stay long. Measures apex-aware
// shortcut quality on wheels, planar+apex, and full almost-embeddable graphs,
// against the post-apex diameter and the structure-oblivious greedy.
#include <cstdio>

#include "bench_util.hpp"
#include "gen/almost_embeddable.hpp"
#include "gen/apex.hpp"
#include "gen/basic.hpp"
#include "gen/planar.hpp"

using namespace mns;

namespace {

void compare(bench::JsonReport& report, const char* family, const Graph& g,
             const std::vector<VertexId>& apices, const Partition& parts) {
  RootedTree t = bench::center_tree(g);
  // Ablation over the inner (within-cell) oracle of Lemma 9.
  struct Inner {
    const char* name;
    OracleKind oracle;
  };
  Inner inners[] = {
      {"apex+greedy (L9)", OracleKind::kGreedy},
      {"apex+steiner", OracleKind::kSteiner},
      {"apex+trivial", OracleKind::kTrivial},
  };
  for (auto& inner : inners) {
    BuildResult r = bench::engine().build(
        g, t, parts, apex_certificate(apices, inner.oracle));
    bench::metrics_row(report, family, g.num_vertices(), inner.name,
                       r.metrics);
  }
  BuildResult greedy =
      bench::engine().build(g, t, parts, greedy_certificate());
  bench::metrics_row(report, family, g.num_vertices(), "oblivious greedy",
                     greedy.metrics);
}

}  // namespace

int main() {
  bench::header("E9: apex graphs (Lemma 9 / Theorem 8 targets)");
  bench::JsonReport report("apex_shortcuts");

  for (int n : {1002, 4002, 16002}) {
    Graph w = gen::wheel(n);
    Partition sectors = ring_sectors(n, 1, n - 1, 8);
    compare(report, "wheel/8 sectors", w, {0}, sectors);
  }

  for (int s : {24, 48}) {
    EmbeddedGraph eg = gen::grid(s, s);
    gen::ApexResult ar = gen::add_universal_apex(eg.graph());
    Partition serp = grid_serpentines(s, s, std::max(2, s / 8));
    // Extend part_of with kNoPart for the apex vertex.
    std::vector<PartId> part_of(ar.graph.num_vertices(), kNoPart);
    for (VertexId v = 0; v < eg.graph().num_vertices(); ++v)
      part_of[v] = serp.part_of(v);
    compare(report, "grid+apex/serpent", ar.graph, ar.apices,
            Partition(part_of));
  }

  for (int q : {1, 2, 3}) {
    Rng rng(static_cast<unsigned>(q));
    gen::AlmostEmbeddableParams p;
    p.apices = q;
    p.genus = 1;
    p.num_vortices = 1;
    p.vortex_depth = 2;
    p.rows = 14;
    p.cols = 14;
    p.apex_attach_prob = 0.5;
    gen::AlmostEmbeddable ae = gen::random_almost_embeddable(p, rng);
    Partition parts = voronoi_partition(ae.graph, 12, rng);
    char label[48];
    std::snprintf(label, sizeof label, "almost-emb q=%d", q);
    compare(report, label, ae.graph, ae.apices, parts);
  }
  return 0;
}
