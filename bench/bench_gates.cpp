// E7 (Lemma 7): planar cell partitions of diameter d admit s-combinatorial
// gates with s = O(d) (paper constant 36d). Builds boundary gates on planar
// cells of varying diameter, validates properties 1-5, and reports the
// measured s next to the 36d reference.
#include <cstdio>

#include "bench_util.hpp"
#include "gen/planar.hpp"
#include "structure/cells.hpp"
#include "structure/gates.hpp"

using namespace mns;

int main() {
  bench::header("E7: combinatorial gates on planar cells (Lemma 7 target)");
  bench::JsonReport report("gates");
  std::printf("%10s %7s %7s %10s %10s %8s\n", "n", "cells", "max d", "s",
              "ref 36d", "valid");
  for (int n : {1000, 4000, 16000}) {
    for (int seeds : {8, 32, 128}) {
      Rng rng(static_cast<unsigned>(n + seeds));
      EmbeddedGraph eg = gen::random_maximal_planar(n, rng);
      const Graph& g = eg.graph();
      Partition vor = voronoi_partition(g, seeds, rng);
      // Reinterpret the Voronoi parts as cells.
      std::vector<CellId> cell_of(g.num_vertices());
      for (VertexId v = 0; v < g.num_vertices(); ++v)
        cell_of[v] = vor.part_of(v);
      CellPartition cells(cell_of);
      // Max cell diameter.
      int d = 0;
      for (CellId c = 0; c < cells.num_cells(); ++c) {
        InducedSubgraph sub = induced_subgraph(g, cells.members(c));
        d = std::max(d, diameter_exact(sub.graph));
      }
      GateSystem gs = build_boundary_gates(g, cells);
      double s = 0;
      std::string err = validate_gates(g, cells, gs, &s);
      std::printf("%10d %7d %7d %10.1f %10d %8s\n", n, cells.num_cells(), d, s,
                  36 * std::max(1, d), err.empty() ? "yes" : err.c_str());
      report.row().set("n", n).set("cells", cells.num_cells())
          .set("max_cell_diameter", d).set("gate_s", s)
          .set("valid", err.empty() ? "yes" : "no");
    }
  }
  return 0;
}
