// E22 (the workload catalogue): the two new VertexProgram workloads — Luby
// MIS and span-greedy dominating set — plus LDD as a second partition
// source, on all four certificate families (planar, treewidth, apex,
// clique-sum). Three claims, each deterministic so the committed baseline
// (bench/baselines/workloads.json) pins it:
//
//   (a) mis — the distributed MIS is a correct maximal independent set
//       (oracle-checked), its size tracks the sequential greedy, and its
//       round count is exactly 2 rounds/phase + the farewell tail.
//   (b) domset — the distributed dominating set covers the graph and stays
//       within 3x of the sequential greedy oracle on every family (the
//       bounded-degeneracy contract of DESIGN.md §13); |D| is the value the
//       NETWORK convergecast to the root, cross-checked here.
//   (c) ldd-source — solving mst / sssp.approx with
//       SolveOptions::partition = kLdd makes every workload partition
//       project from ONE cached LDD shortcut: the cold solve pays exactly
//       one build, every repeat is all-hits with zero construction charges,
//       and the answers are bit-identical to the default-source runs.
//
// Exits nonzero on any violation, so CI catches regressions.
//
// Set MNS_BENCH_SMOKE=1 to run the smallest instance per family (CI).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_instances.hpp"
#include "bench_util.hpp"
#include "congest/dominating_set.hpp"
#include "congest/mis.hpp"
#include "congest/session.hpp"
#include "gen/apex.hpp"
#include "io/report_json.hpp"

using namespace mns;

namespace {

struct Instance {
  std::string family;
  Graph graph;
  std::vector<Weight> weights;
  StructuralCertificate cert;
};

std::vector<Instance> instances(bool smoke) {
  std::vector<Instance> out;
  for (int side : smoke ? std::vector<int>{12} : std::vector<int>{12, 24}) {
    Graph g = gen::grid(side, side).graph();
    Rng rng(static_cast<unsigned>(side));
    std::vector<Weight> w = bench::dfs_light_weights(g, rng);
    out.push_back({"planar", std::move(g), std::move(w),
                   greedy_certificate()});
  }
  for (VertexId n : smoke ? std::vector<VertexId>{128}
                          : std::vector<VertexId>{128, 512}) {
    Rng rng(static_cast<unsigned>(n));
    bench::HubbedKPath kt = bench::hubbed_kpath(n, 3);
    std::vector<Weight> w = bench::spine_light_weights(kt.graph, n, rng);
    out.push_back({"treewidth", std::move(kt.graph), std::move(w),
                   treewidth_certificate(std::move(kt.decomposition))});
  }
  for (int side : smoke ? std::vector<int>{12} : std::vector<int>{12, 24}) {
    Rng rng(static_cast<unsigned>(100 + side));
    gen::ApexResult ar =
        gen::add_apices(gen::grid(side, side).graph(), 1, 0.10, rng);
    std::vector<Weight> w = bench::dfs_light_weights(ar.graph, rng);
    out.push_back({"apex", std::move(ar.graph), std::move(w),
                   apex_certificate(ar.apices)});
  }
  for (int bags : smoke ? std::vector<int>{4} : std::vector<int>{4, 12}) {
    Rng rng(static_cast<unsigned>(bags));
    bench::ApexChain chain = bench::apexed_chain_cliquesum(bags, rng);
    StructuralCertificate cert = bench::apex_chain_certificate(chain);
    out.push_back({"cliquesum", std::move(chain.graph),
                   std::move(chain.weights), std::move(cert)});
  }
  return out;
}

congest::Session::WorkloadParams params_for(const Instance& inst) {
  congest::Session::WorkloadParams p;
  p.weights = inst.weights;
  p.epsilon = 0.25;
  const VertexId n = inst.graph.num_vertices();
  p.num_seeds = std::max<VertexId>(
      8, static_cast<VertexId>(std::sqrt(static_cast<double>(n))) / 8);
  p.repartition_growth = 1.0;
  p.wavefront_seeds = false;  // source-independent cells: cacheable
  return p;
}

VertexId popcount(const std::vector<char>& member) {
  VertexId c = 0;
  for (char m : member) c += (m != 0) ? 1 : 0;
  return c;
}

/// (a) mis: oracle-verified maximality + greedy size tracking.
bool run_mis(bench::JsonReport& report, const Instance& inst) {
  const VertexId n = inst.graph.num_vertices();
  congest::Session session = bench::make_session(inst.graph, inst.cert);
  congest::RunReport r = session.solve("mis", params_for(inst));
  const congest::MisPayload& p = r.mis();

  const std::string verdict =
      congest::verify_maximal_independent_set(inst.graph, p.in_mis);
  const VertexId oracle = popcount(congest::greedy_mis(inst.graph));
  const bool ok = verdict.empty() && p.size == popcount(p.in_mis) &&
                  p.size > 0 && oracle > 0;
  std::printf("%-10s n=%6d  mis     |I|=%5d greedy=%5d phases=%3d "
              "rounds=%5lld messages=%8lld  %s\n",
              inst.family.c_str(), n, p.size, oracle, r.phases, r.rounds,
              r.messages, ok ? "verified" : verdict.c_str());
  report.row().set("mode", "mis").set("family", inst.family).set("n", n)
      .set("size", static_cast<long long>(p.size))
      .set("greedy_size", static_cast<long long>(oracle))
      .set_run(r).set("verified", ok ? "yes" : "no");
  return ok;
}

/// (b) domset: oracle-verified coverage within 3x of the sequential greedy.
bool run_domset(bench::JsonReport& report, const Instance& inst) {
  const VertexId n = inst.graph.num_vertices();
  congest::Session session = bench::make_session(inst.graph, inst.cert);
  congest::RunReport r = session.solve("domset", params_for(inst));
  const congest::DomsetPayload& p = r.domset();

  const std::string verdict =
      congest::verify_dominating_set(inst.graph, p.in_set);
  const VertexId oracle = popcount(congest::greedy_dominating_set(inst.graph));
  const bool within = p.size <= 3 * oracle;
  const bool ok = verdict.empty() && p.size == popcount(p.in_set) && within;
  std::printf("%-10s n=%6d  domset  |D|=%5d greedy=%5d phases=%3d "
              "rounds=%5lld messages=%8lld  %s\n",
              inst.family.c_str(), n, p.size, oracle, r.phases, r.rounds,
              r.messages,
              ok ? "verified" : (within ? verdict.c_str() : "RATIO-BLOWN"));
  report.row().set("mode", "domset").set("family", inst.family).set("n", n)
      .set("size", static_cast<long long>(p.size))
      .set("greedy_size", static_cast<long long>(oracle))
      .set_run(r).set("verified", ok ? "yes" : "no");
  return ok;
}

/// (c) ldd-source: cold pays one LDD build; every repeat is free; answers
/// bit-identical to the default partition source.
bool run_ldd_source(bench::JsonReport& report, const Instance& inst) {
  const VertexId n = inst.graph.num_vertices();
  const congest::Session::WorkloadParams params = params_for(inst);
  congest::SolveOptions ldd_opt;
  ldd_opt.partition = congest::PartitionSource::kLdd;

  // Reference answers from a plain (workload-source) session.
  congest::Session ref_session = bench::make_session(inst.graph, inst.cert);
  congest::RunReport ref_mst = ref_session.solve("mst", params);
  congest::RunReport ref_sssp = ref_session.solve("sssp.approx", params);

  congest::Session session = bench::make_session(inst.graph, inst.cert);
  bool ok = true;
  const char* stages[] = {"mst", "sssp.approx"};
  for (const char* stage : stages) {
    congest::RunReport cold = session.solve(stage, params, ldd_opt);
    congest::RunReport warm = session.solve(stage, params, ldd_opt);
    const bool one_build = cold.cache_misses <= 1;
    const bool free_repeat = warm.charged_construction_rounds == 0 &&
                             warm.cache_misses == 0 && warm.cache_hits > 0 &&
                             warm.rounds == cold.rounds;
    bool same_answer = false;
    if (std::string(stage) == "mst")
      same_answer = warm.mst().edges == ref_mst.mst().edges;
    else
      same_answer = warm.sssp().dist == ref_sssp.sssp().dist;
    ok = ok && one_build && free_repeat && same_answer;
    std::printf("%-10s n=%6d  ldd %-12s cold: charged=%5lld builds=%lld   "
                "warm: charged=%lld hits=%3lld  %s\n",
                inst.family.c_str(), n, stage,
                cold.charged_construction_rounds, cold.cache_misses,
                warm.charged_construction_rounds, warm.cache_hits,
                one_build && free_repeat
                    ? (same_answer ? "bit-identical" : "ANSWER-DRIFT")
                    : "CACHE-MISSED");
    report.row().set("mode", "ldd-source").set("family", inst.family)
        .set("n", n).set("workload", stage)
        .set("cold_charged", cold.charged_construction_rounds)
        .set("cold_builds", cold.cache_misses)
        .set("cold_rounds", cold.rounds)
        .set("cold_messages", cold.messages)
        .set("warm_charged", warm.charged_construction_rounds)
        .set("warm_hits", warm.cache_hits)
        .set("warm_rounds", warm.rounds)
        .set("verified", ok ? "yes" : "no");
  }
  return ok;
}

}  // namespace

int main() {
  const bool smoke = std::getenv("MNS_BENCH_SMOKE") != nullptr;
  bench::header("E22: workload catalogue (mis / domset / ldd partition source)");
  bench::JsonReport report("workloads");
  std::printf("oracle-checked MIS + dominating set, LDD-projected shortcut "
              "reuse; smoke=%d\n\n", smoke);
  bool all_ok = true;
  for (const Instance& inst : instances(smoke)) {
    all_ok &= run_mis(report, inst);
    all_ok &= run_domset(report, inst);
    all_ok &= run_ldd_source(report, inst);
  }
  all_ok &= report.write();
  std::printf("\n%s\n", all_ok
                  ? "all workloads oracle-verified; LDD-sourced repeats are "
                    "construction-free and bit-identical"
                  : "FAILURE: see rows above");
  return all_ok ? 0 : 1;
}
