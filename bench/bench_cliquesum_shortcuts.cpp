// E3 (Theorem 7): clique-sums preserve shortcut quality —
// b_G <= 2k + O(b_F), c_G <= O(k log^2 n) + c_F. Composes planar / k-tree
// bags into k-clique-sums of growing size and compares the composed quality
// against a single bag's baseline quality.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "gen/clique_sum.hpp"
#include "gen/ktree.hpp"
#include "gen/planar.hpp"

using namespace mns;

namespace {

ShortcutMetrics run_bag_baseline(const Graph& bag_graph) {
  RootedTree t = bench::center_tree(bag_graph);
  Rng rng(5);
  Partition parts = voronoi_partition(bag_graph, 6, rng);
  return bench::engine()
      .build(bag_graph, t, parts, greedy_certificate())
      .metrics;
}

}  // namespace

int main() {
  bench::header("E3: clique-sum composition (Theorem 7 targets)");
  bench::JsonReport report("cliquesum_shortcuts");
  const int k = 2;
  std::printf("bag family: triangulated 8x8 grids; glue cliques of size <= %d\n",
              k);

  Graph bag = gen::triangulated_grid(8, 8).graph();
  ShortcutMetrics base = run_bag_baseline(bag);
  std::printf("single-bag baseline: b_F=%d c_F=%d\n\n", base.block,
              base.congestion);
  std::printf("%6s %8s %6s %6s %8s %16s %20s\n", "bags", "n", "b", "c", "q",
              "ref b<=2k+O(b_F)", "ref c<=O(k lg^2 n)+c_F");

  for (int bags_count : {4, 16, 64, 256}) {
    Rng rng(static_cast<unsigned>(bags_count));
    std::vector<gen::BagInput> inputs;
    for (int i = 0; i < bags_count; ++i)
      inputs.push_back({bag, gen::default_glue_cliques(bag, k)});
    gen::CliqueSumResult r = gen::compose_clique_sum(inputs, k, 0.2, rng);
    RootedTree t = bench::center_tree(r.graph);
    Partition parts = voronoi_partition(
        r.graph, std::max(2, static_cast<int>(std::sqrt(r.graph.num_vertices()))),
        rng);
    BuildResult br = bench::engine().build(
        r.graph, t, parts, cliquesum_certificate(r.decomposition));
    const ShortcutMetrics& m = br.metrics;
    double lg = std::log2(static_cast<double>(r.graph.num_vertices()));
    std::printf("%6d %8d %6d %6d %8lld %16d %20.0f\n", bags_count,
                r.graph.num_vertices(), m.block, m.congestion, m.quality,
                2 * k + 4 * base.block, k * lg * lg + base.congestion);
    report.row().set("bags", bags_count).set("n", r.graph.num_vertices())
        .set("builder", br.builder).set_metrics(m);
  }
  return 0;
}
