// E6 (Theorem 9): genus-g + vortex graphs admit shortcuts with
// b = O((g+1)klD) and c = O((g+1)klD log n) via the treewidth route.
// Compares the structure-driven route against the uniform greedy one.
#include <cstdio>

#include "bench_util.hpp"
#include "gen/surfaces.hpp"
#include "gen/vortex.hpp"
#include "structure/surface_decomposition.hpp"

using namespace mns;

int main() {
  bench::header("E6: Genus+Vortex shortcuts (Theorem 9 targets)");
  bench::JsonReport report("genus_vortex_shortcuts");
  for (int genus : {0, 1, 2}) {
    for (int s : {10, 14}) {
      Rng rng(static_cast<unsigned>(genus * 31 + s));
      EmbeddedGraph base = gen::surface_grid(s, s, genus, rng);
      // One vortex of depth 2 on a simple face.
      Graph current = base.graph();
      std::vector<VortexSpec> specs;
      for (int f = 0; f < base.num_faces(); ++f) {
        if (!base.face_is_simple_cycle(f)) continue;
        gen::VortexResult vr =
            gen::add_vortex(current, base.face_vertices(f), 2, 4, rng);
        current = std::move(vr.graph);
        specs.push_back(std::move(vr.vortex));
        break;
      }
      RootedTree t = bench::center_tree(current);
      Partition parts = voronoi_partition(current, 10, rng);

      TreeDecomposition td_base = surface_bfs_decomposition(base, 0);
      TreeDecomposition td = augment_with_vortices(td_base, current, specs);
      BuildResult via_tw = bench::engine().build(
          current, t, parts, treewidth_certificate(std::move(td)));
      char label[64];
      std::snprintf(label, sizeof label, "genus=%d s=%d", genus, s);
      bench::metrics_row(report, label, current.num_vertices(),
                         "treewidth-route", via_tw.metrics);
      BuildResult greedy =
          bench::engine().build(current, t, parts, greedy_certificate());
      bench::metrics_row(report, label, current.num_vertices(), "greedy",
                         greedy.metrics);
    }
  }
  return 0;
}
