// Shared helpers for the experiment harnesses (DESIGN.md §6). Each bench
// binary prints a self-contained table regenerating one claim of the paper;
// they are deterministic (fixed seeds) so EXPERIMENTS.md numbers reproduce.
#pragma once

#include <cstdio>

#include "congest/mst.hpp"
#include "core/engine.hpp"
#include "graph/algorithms.hpp"
#include "graph/rooted_tree.hpp"

namespace mns::bench {

/// BFS tree rooted near the graph center (height <= D).
inline RootedTree center_tree(const Graph& g, unsigned seed = 1) {
  Rng rng(seed);
  VertexId c = approximate_center(g, rng);
  return RootedTree::from_bfs(bfs(g, c), c);
}

/// Shortcut provider: uniform greedy on a center BFS tree.
inline congest::ShortcutProvider greedy_provider() {
  return [](const Graph& g, const Partition& parts) {
    RootedTree t = center_tree(g);
    return build_greedy_shortcut(g, t, parts);
  };
}

/// Shortcut provider: apex-aware (Lemma 9) with greedy inner oracle.
inline congest::ShortcutProvider apex_provider(std::vector<VertexId> apices) {
  return [apices = std::move(apices)](const Graph& g, const Partition& parts) {
    RootedTree t = center_tree(g);
    return build_apex_shortcut(g, t, parts, apices, make_greedy_oracle());
  };
}

inline void header(const char* title) {
  std::printf("\n==== %s ====\n", title);
}

/// Prints one row of shortcut metrics.
inline void metrics_row(const char* family, int n, const char* method,
                        const ShortcutMetrics& m) {
  std::printf("%-22s %7d  %-18s  d_T=%5d  b=%4d  c=%5d  q=%7lld\n", family, n,
              method, m.tree_diameter, m.block, m.congestion, m.quality);
}

}  // namespace mns::bench
