// Shared helpers for the experiment harnesses (DESIGN.md §6). Each bench
// binary prints a self-contained table regenerating one claim of the paper;
// they are deterministic (fixed seeds) so EXPERIMENTS.md numbers reproduce.
//
// All workload traffic goes through congest::Session (the one solver API;
// shortcut construction dispatches through its certificate-keyed
// ShortcutEngine + cache) — benches never wire builders or providers by
// hand. Alongside the human-readable table every harness records a
// machine-readable BENCH_<name>.json. Every row that reports rounds also
// reports messages_sent, so the JSON captures congestion, not just round
// counts.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "congest/session.hpp"
#include "core/shortcut_engine.hpp"
#include "graph/algorithms.hpp"
#include "graph/rooted_tree.hpp"
#include "io/json.hpp"

namespace mns::bench {

/// Peak resident set size of this process, in bytes (getrusage ru_maxrss;
/// Linux reports KiB, macOS bytes). 0 when the platform has no getrusage.
/// Monotone over the process lifetime — a row records the high-water mark up
/// to the moment it was emitted, which is what the DESIGN.md §9 peak-RSS
/// budgets are stated against.
[[nodiscard]] inline long long peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<long long>(ru.ru_maxrss);
#else
  return static_cast<long long>(ru.ru_maxrss) * 1024;
#endif
#else
  return 0;
#endif
}

/// The shared default-configured engine every harness dispatches through.
inline const ShortcutEngine& engine() { return ShortcutEngine::global(); }

/// BFS tree rooted near the graph center (height <= D).
inline RootedTree center_tree(const Graph& g, unsigned seed = 1) {
  return center_tree_factory(seed)(g);
}

/// A Session over a copy of `g` with the given structural knowledge, rooted
/// on a center BFS tree — the standard harness entry point.
inline congest::Session make_session(const Graph& g, StructuralCertificate cert,
                                     unsigned tree_seed = 1) {
  congest::SessionConfig cfg;
  cfg.tree = center_tree_factory(tree_seed);
  return congest::Session(g, std::move(cert), std::move(cfg));
}

inline void header(const char* title) {
  std::printf("\n==== %s ====\n", title);
}

// ------------------------------------------------------------------------
// Machine-readable output: BENCH_<name>.json, one row object per table row.

/// One row of a JSON report; values are rendered eagerly so heterogeneous
/// rows stay simple.
class JsonRow {
 public:
  JsonRow& set(const std::string& key, long long value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonRow& set(const std::string& key, int value) {
    return set(key, static_cast<long long>(value));
  }
  JsonRow& set(const std::string& key, std::size_t value) {
    return set(key, static_cast<long long>(value));
  }
  JsonRow& set(const std::string& key, double value) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    fields_.emplace_back(key, buf);
    return *this;
  }
  JsonRow& set(const std::string& key, const char* value) {
    fields_.emplace_back(key, quoted(value));
    return *this;
  }
  JsonRow& set(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, quoted(value));
    return *this;
  }
  /// Standard metrics block: congestion / block / quality / d_T.
  JsonRow& set_metrics(const ShortcutMetrics& m) {
    return set("tree_diameter", m.tree_diameter)
        .set("block", m.block)
        .set("congestion", m.congestion)
        .set("quality", m.quality);
  }
  /// Standard telemetry block of one Session run: measured rounds AND
  /// messages (congestion), substitution charges, what the cache did, and
  /// the thread width the run executed at (wall_ms is only comparable
  /// across machines/trajectories alongside threads + the row's
  /// hardware_concurrency).
  JsonRow& set_run(const congest::RunReport& r) {
    return set("rounds", r.rounds)
        .set("messages", r.messages)
        .set("threads", r.threads)
        .set("charged_construction_rounds", r.charged_construction_rounds)
        .set("total_rounds", r.total_rounds())
        .set("phases", r.phases)
        .set("aggregations", r.aggregations)
        .set("cache_hits", r.cache_hits)
        .set("cache_misses", r.cache_misses)
        .set("wall_ms", r.wall_ms);
  }

  [[nodiscard]] std::string rendered() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i) out += ", ";
      out += quoted(fields_[i].first) + ": " + fields_[i].second;
    }
    out += "}";
    return out;
  }

 private:
  /// JSON string escaping per RFC 8259 — the one shared implementation
  /// (io/json.hpp) every machine-readable artifact goes through; a newline
  /// or tab in a field must not produce an unparseable BENCH file.
  static std::string quoted(const std::string& s) { return io::json_quote(s); }
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Collects rows and writes BENCH_<name>.json on destruction (or explicit
/// write()). Wall time covers the report's lifetime.
///
/// write() returns false on I/O failure (after warning to stderr) so a
/// harness main can exit nonzero instead of silently shipping no report —
/// CI treats a missing BENCH file as a failed run. The destructor fallback
/// necessarily swallows the status; call write() explicitly where the exit
/// code matters.
class JsonReport {
 public:
  explicit JsonReport(std::string name)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}
  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;
  ~JsonReport() {
    if (!written_) (void)write();
  }

  /// Every row opens with the hardware context (the machine's concurrency
  /// width) and the process's current peak RSS, so BENCH_*.json trajectories
  /// stay comparable across machines — a wall_ms regression on a 1-core CI
  /// box is not a regression on the 16-core baseline box — and memory
  /// regressions are visible in every recorded trajectory, not only in the
  /// dedicated scale harness. Both keys are volatile for baseline diffs
  /// (mnsctl diff masks them).
  JsonRow& row() {
    rows_.emplace_back();
    rows_.back()
        .set("hardware_concurrency", hardware_concurrency())
        .set("peak_rss_bytes", peak_rss_bytes());
    return rows_.back();
  }

  [[nodiscard]] static long long hardware_concurrency() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<long long>(hw) : 1;
  }

  [[nodiscard]] bool write() {
    written_ = true;
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_)
            .count();
    std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      // Benches stay usable in read-only dirs, but never fail silently.
      std::fprintf(stderr, "bench: cannot open %s for writing; %zu row(s) dropped\n",
                   path.c_str(), rows_.size());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"wall_time_ms\": %.3f,\n",
                 name_.c_str(), wall_ms);
    std::fprintf(f, "  \"rows\": [\n");
    for (std::size_t i = 0; i < rows_.size(); ++i)
      std::fprintf(f, "    %s%s\n", rows_[i].rendered().c_str(),
                   i + 1 < rows_.size() ? "," : "");
    std::fprintf(f, "  ]\n}\n");
    const bool flushed = std::ferror(f) == 0;
    const bool closed = std::fclose(f) == 0;
    if (!flushed || !closed) {
      std::fprintf(stderr, "bench: write error on %s\n", path.c_str());
      return false;
    }
    return true;
  }

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::vector<JsonRow> rows_;
  bool written_ = false;
};

/// Prints one row of shortcut metrics.
inline void metrics_row(const char* family, int n, const char* method,
                        const ShortcutMetrics& m) {
  std::printf("%-22s %7d  %-18s  d_T=%5d  b=%4d  c=%5d  q=%7lld\n", family, n,
              method, m.tree_diameter, m.block, m.congestion, m.quality);
}

/// Prints AND records one row of shortcut metrics.
inline void metrics_row(JsonReport& report, const char* family, int n,
                        const char* method, const ShortcutMetrics& m) {
  metrics_row(family, n, method, m);
  report.row().set("family", family).set("n", n).set("method", method)
      .set_metrics(m);
}

}  // namespace mns::bench
