// E15 (the abstract's third headline): distributed SSSP. Compares the exact
// lock-step Bellman-Ford baseline (rounds = shortest-path hop count, which
// adversarial weights push toward Theta(n)) against the shortcut-accelerated
// (1+eps) SSSP on all four certificate families: planar (uniform.greedy),
// treewidth, apex, clique-sum — both served by one congest::Session per
// instance. Every instance is adversarially weighted so that a long cheap
// route forces the baseline to pay one round per hop while the network's hop
// DIAMETER stays small — the regime the paper's theorems speak to — and
// cluster jumps leap whole Voronoi cells.
//
// Set MNS_BENCH_SMOKE=1 to run the smallest instance per family (CI).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_instances.hpp"
#include "bench_util.hpp"
#include "congest/session.hpp"
#include "gen/apex.hpp"

using namespace mns;

namespace {

/// Returns true iff both runs verified (main exits nonzero otherwise, so
/// the CI smoke step fails on a MISMATCH instead of just printing it).
[[nodiscard]] bool run_instance(bench::JsonReport& report, const char* family,
                                const Graph& g, const std::vector<Weight>& w,
                                StructuralCertificate cert, double eps,
                                VertexId num_seeds = 0) {
  const VertexId source = 0;
  ShortestPathResult oracle = dijkstra(g, w, source);

  congest::Session session = bench::make_session(g, std::move(cert));
  congest::RunReport bf = session.solve(congest::ExactSssp{w, source});
  bool exact_ok = bf.sssp().dist == oracle.dist;

  congest::ApproxSssp query{w, source};
  query.epsilon = eps;
  // Cells must span several jump-costs' worth of hops to pay for their
  // aggregations; sqrt(n)/8 seeds keep them long on every benched family.
  // The uniform seed spread covers the whole network from the start, so one
  // partition phase suffices (the uncovered-wavefront trigger still guards
  // the pathological case).
  query.num_seeds = num_seeds;
  query.repartition_growth = 1.0;
  congest::RunReport ap = session.solve(query);
  double max_ratio = 1.0;
  bool approx_ok = true;
  const std::vector<Weight>& ap_dist = ap.sssp().dist;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (oracle.dist[v] == kUnreachedWeight || oracle.dist[v] == 0) continue;
    if (ap_dist[v] < oracle.dist[v]) approx_ok = false;
    double ratio = static_cast<double>(ap_dist[v]) /
                   static_cast<double>(oracle.dist[v]);
    max_ratio = std::max(max_ratio, ratio);
  }
  approx_ok = approx_ok && max_ratio <= 1.0 + eps + 1e-9;
  const double speedup = static_cast<double>(bf.total_rounds()) /
                         static_cast<double>(ap.total_rounds());
  std::printf("%-10s n=%6d  BF rounds=%8lld  (1+eps) rounds=%8lld  "
              "speedup=%5.2fx  phases=%2d jumps=%4lld  max_ratio=%.4f %s\n",
              family, g.num_vertices(), bf.total_rounds(), ap.total_rounds(),
              speedup, ap.phases, ap.aggregations, max_ratio,
              exact_ok && approx_ok ? "" : "MISMATCH");
  report.row()
      .set("family", family)
      .set("n", g.num_vertices())
      .set("epsilon", eps)
      .set("rounds_bellman_ford", bf.total_rounds())
      .set("messages_bellman_ford", bf.messages)
      .set("vs_bellman_ford", speedup)
      .set_run(ap)
      .set("jumps", ap.aggregations)
      .set("max_ratio", max_ratio)
      .set("verified", exact_ok && approx_ok ? "yes" : "no");
  return exact_ok && approx_ok;
}

}  // namespace

int main() {
  const bool smoke = std::getenv("MNS_BENCH_SMOKE") != nullptr;
  bench::header(
      "E15: SSSP rounds (shortcut-accelerated (1+eps) vs Bellman-Ford)");
  bench::JsonReport report("sssp");
  const double eps = 0.25;
  std::printf("adversarial long-cheap-route weights; eps=%.2f; smoke=%d\n\n",
              eps, smoke);

  bool all_ok = true;
  auto long_cells = [](VertexId n) {
    return std::max<VertexId>(
        8, static_cast<VertexId>(std::sqrt(static_cast<double>(n))) / 8);
  };

  // -- planar (uniform.greedy certificate) --
  for (int side : smoke ? std::vector<int>{16} : std::vector<int>{16, 32, 64}) {
    Graph g = gen::grid(side, side).graph();
    Rng rng(static_cast<unsigned>(side));
    all_ok &= run_instance(report, "planar", g, bench::dfs_light_weights(g, rng),
                           greedy_certificate(), eps,
                           long_cells(g.num_vertices()));
  }

  // -- treewidth (hubbed k-paths with their recorded decompositions) --
  for (VertexId n : smoke ? std::vector<VertexId>{256}
                          : std::vector<VertexId>{256, 1024, 4096}) {
    Rng rng(static_cast<unsigned>(n));
    bench::HubbedKPath kt = bench::hubbed_kpath(n, 3);
    all_ok &= run_instance(
        report, "treewidth", kt.graph,
        bench::spine_light_weights(kt.graph, n, rng),
        treewidth_certificate(kt.decomposition), eps, long_cells(n));
  }

  // -- apex (grid + satellite apex, Lemma 9 certificate) --
  for (int side : smoke ? std::vector<int>{16} : std::vector<int>{16, 32, 64}) {
    Rng rng(static_cast<unsigned>(100 + side));
    gen::ApexResult ar =
        gen::add_apices(gen::grid(side, side).graph(), 1, 0.10, rng);
    all_ok &= run_instance(report, "apex", ar.graph,
                           bench::dfs_light_weights(ar.graph, rng),
                           apex_certificate(ar.apices), eps,
                           long_cells(ar.graph.num_vertices()));
  }

  // -- clique-sum: a chain of apexed grid bags through the FULL Theorem 6
  // pipeline (clique-sum folding + Lemma 9 apex-aware local oracles) --
  for (int bags : smoke ? std::vector<int>{4} : std::vector<int>{4, 16, 64}) {
    Rng rng(static_cast<unsigned>(bags));
    bench::ApexChain chain = bench::apexed_chain_cliquesum(bags, rng);
    all_ok &= run_instance(report, "cliquesum", chain.graph, chain.weights,
                           bench::apex_chain_certificate(chain), eps,
                           long_cells(chain.graph.num_vertices()));
  }
  // A report that cannot be written is a failed run (the CI bench gate
  // diffs the file), not a warning.
  all_ok &= report.write();
  return all_ok ? 0 : 1;
}
