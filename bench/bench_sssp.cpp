// E15 (the abstract's third headline): distributed SSSP. Compares the exact
// lock-step Bellman-Ford baseline (rounds = shortest-path hop count, which
// adversarial weights push toward Theta(n)) against the shortcut-accelerated
// (1+eps) SSSP on all four certificate families: planar (uniform.greedy),
// treewidth, apex, clique-sum. Every instance is adversarially weighted so
// that a long cheap route (a deep DFS spanning tree, a band spine, or
// concatenated per-bag serpentines) forces the baseline to pay one round per
// hop while the network's hop DIAMETER stays small — the regime the paper's
// theorems speak to — and cluster jumps leap whole Voronoi cells.
//
// Set MNS_BENCH_SMOKE=1 to run the smallest instance per family (CI).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.hpp"
#include "congest/sssp.hpp"
#include "gen/apex.hpp"
#include "gen/clique_sum.hpp"
#include "gen/ktree.hpp"
#include "gen/lk_family.hpp"
#include "gen/planar.hpp"

using namespace mns;

namespace {

/// Adversarial weights: a DFS spanning tree (deep by construction) gets the
/// light weights 1..n-1 shuffled; every non-tree edge is heavier than any
/// all-light path, so the shortest-path forest IS the deep DFS tree.
std::vector<Weight> dfs_light_weights(const Graph& g, Rng& rng) {
  const VertexId n = g.num_vertices();
  std::vector<char> seen(n, 0);
  std::vector<char> on_tree(g.num_edges(), 0);
  // True DFS (visited at POP time, so the tree is deep, not BFS-bushy):
  // the tree edge of a vertex is the edge it was discovered through.
  std::vector<std::pair<VertexId, EdgeId>> stack{{0, kInvalidEdge}};
  VertexId tree_edges = 0;
  while (!stack.empty()) {
    auto [v, via] = stack.back();
    stack.pop_back();
    if (seen[v]) continue;
    seen[v] = 1;
    if (via != kInvalidEdge) {
      on_tree[via] = 1;
      ++tree_edges;
    }
    auto nbrs = g.neighbors(v);
    auto eids = g.incident_edges(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i)
      if (!seen[nbrs[i]]) stack.push_back({nbrs[i], eids[i]});
  }
  std::vector<Weight> light(tree_edges);
  for (VertexId i = 0; i < tree_edges; ++i) light[i] = i + 1;
  std::shuffle(light.begin(), light.end(), rng);
  std::size_t li = 0;
  Weight heavy = 10 * static_cast<Weight>(n) * static_cast<Weight>(n);
  std::vector<Weight> w(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    w[e] = on_tree[e] ? light[li++] : heavy++;
  return w;
}

/// The treewidth pathology (the wheel example generalized): a "k-path" band
/// (vertex i adjacent to i-1..i-k) PLUS a universal hub, recorded with its
/// width-(k+1) path decomposition (the hub joins every bag). Diameter 2 via
/// the hub, but the cheap route is the n-hop band spine — exactly the
/// D << shortest-path-hops regime where Theorem 5 shortcuts pay off. Random
/// k-trees are no use here: their hop diameter is already O(log n), so plain
/// Bellman-Ford is unbeatable on them.
gen::KTreeResult hubbed_kpath(VertexId n, VertexId k) {
  GraphBuilder b(n + 1);
  const VertexId hub = n;
  for (VertexId v = 1; v < n; ++v)
    for (VertexId back = 1; back <= std::min(k, v); ++back)
      b.add_edge(v - back, v);
  for (VertexId v = 0; v < n; ++v) b.add_edge(v, hub);
  std::vector<std::vector<VertexId>> bags;
  std::vector<BagId> parent;
  for (VertexId i = 0; i + k < n; ++i) {
    std::vector<VertexId> bag;
    for (VertexId j = i; j <= i + k; ++j) bag.push_back(j);
    bag.push_back(hub);
    bags.push_back(std::move(bag));
    parent.push_back(static_cast<BagId>(i) - 1);
  }
  return {b.build(), TreeDecomposition(std::move(bags), std::move(parent))};
}

/// The clique-sum pathology (Theorem 6 shape): a CHAIN of apexed grid bags,
/// consecutive bags identified at one vertex where their serpentines meet,
/// so the per-bag boustrophedon routes concatenate into one n-hop cheap
/// route, while every bag's universal apex keeps the hop diameter at
/// ~2 hops per bag. Driven through the full clique-sum + Lemma 9 pipeline
/// (apex_aware + bag_apices).
struct ApexChain {
  Graph graph;
  CliqueSumDecomposition decomposition;
  std::vector<std::vector<VertexId>> bag_apices;
  std::vector<Weight> weights;
};

ApexChain apexed_chain_cliquesum(int bags, Rng& rng) {
  const int rows = 16, cols = 16;
  const VertexId per = rows * cols;
  const EmbeddedGraph cell_embedded = gen::grid(rows, cols);
  const Graph& cell = cell_embedded.graph();
  // Boustrophedon order of local grid ids; bag i's snake START (0,0) is
  // identified with bag i-1's snake END.
  std::vector<VertexId> snake;
  for (int r = 0; r < rows; ++r) {
    if (r % 2 == 0)
      for (int c = 0; c < cols; ++c) snake.push_back(static_cast<VertexId>(r * cols + c));
    else
      for (int c = cols - 1; c >= 0; --c) snake.push_back(static_cast<VertexId>(r * cols + c));
  }
  std::vector<std::vector<VertexId>> to_global(
      static_cast<std::size_t>(bags), std::vector<VertexId>(per));
  VertexId next = 0;
  for (int b = 0; b < bags; ++b)
    for (VertexId l = 0; l < per; ++l) {
      if (b > 0 && l == snake.front())
        to_global[b][l] = to_global[b - 1][snake.back()];
      else
        to_global[b][l] = next++;
    }
  std::vector<VertexId> apex(bags);
  for (int b = 0; b < bags; ++b) apex[b] = next++;
  GraphBuilder gb(next);
  for (int b = 0; b < bags; ++b) {
    for (EdgeId e = 0; e < cell.num_edges(); ++e)
      gb.add_edge(to_global[b][cell.edge(e).u], to_global[b][cell.edge(e).v]);
    for (VertexId l = 0; l < per; ++l) gb.add_edge(apex[b], to_global[b][l]);
  }
  Graph g = gb.build();

  std::vector<std::vector<VertexId>> bag_vertices(static_cast<std::size_t>(bags));
  std::vector<std::vector<EdgeId>> bag_edges(static_cast<std::size_t>(bags));
  std::vector<BagId> parent(static_cast<std::size_t>(bags));
  std::vector<std::vector<VertexId>> parent_clique(static_cast<std::size_t>(bags));
  std::vector<std::vector<VertexId>> bag_apices(static_cast<std::size_t>(bags));
  for (int b = 0; b < bags; ++b) {
    for (VertexId l = 0; l < per; ++l)
      bag_vertices[b].push_back(to_global[b][l]);
    bag_vertices[b].push_back(apex[b]);
    bag_apices[b] = {apex[b]};
    for (EdgeId e = 0; e < cell.num_edges(); ++e)
      bag_edges[b].push_back(
          g.find_edge(to_global[b][cell.edge(e).u], to_global[b][cell.edge(e).v]));
    for (VertexId l = 0; l < per; ++l)
      bag_edges[b].push_back(g.find_edge(apex[b], to_global[b][l]));
    parent[b] = static_cast<BagId>(b) - 1;
    if (b > 0) parent_clique[b] = {to_global[b][snake.front()]};
  }

  // One continuous light route through every bag's serpentine.
  std::vector<char> on_route(g.num_edges(), 0);
  VertexId route_len = 0;
  for (int b = 0; b < bags; ++b)
    for (std::size_t i = 0; i + 1 < snake.size(); ++i) {
      EdgeId e = g.find_edge(to_global[b][snake[i]], to_global[b][snake[i + 1]]);
      if (!on_route[e]) {
        on_route[e] = 1;
        ++route_len;
      }
    }
  std::vector<Weight> light(route_len);
  for (VertexId i = 0; i < route_len; ++i) light[i] = i + 1;
  std::shuffle(light.begin(), light.end(), rng);
  std::size_t li = 0;
  Weight heavy = 10 * static_cast<Weight>(g.num_vertices()) *
                 static_cast<Weight>(g.num_vertices());
  std::vector<Weight> w(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    w[e] = on_route[e] ? light[li++] : heavy++;

  return ApexChain{std::move(g),
                   CliqueSumDecomposition(std::move(bag_vertices),
                                          std::move(bag_edges),
                                          std::move(parent),
                                          std::move(parent_clique)),
                   std::move(bag_apices), std::move(w)};
}

/// Serpentine weights for hubbed_kpath: the band spine 0-1-2-...-(n-1)
/// carries the shuffled light weights, everything else (including every hub
/// edge) is heavier than any all-light route.
std::vector<Weight> spine_light_weights(const Graph& g, VertexId spine_len,
                                        Rng& rng) {
  std::vector<Weight> light(spine_len - 1);
  for (VertexId i = 0; i + 1 < spine_len; ++i) light[i] = i + 1;
  std::shuffle(light.begin(), light.end(), rng);
  Weight heavy = 10 * static_cast<Weight>(g.num_vertices()) *
                 static_cast<Weight>(g.num_vertices());
  std::vector<Weight> w(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(e);
    w[e] = (ed.v == ed.u + 1 && ed.v < spine_len) ? light[ed.u] : heavy++;
  }
  return w;
}

/// Returns true iff both runs verified (main exits nonzero otherwise, so
/// the CI smoke step fails on a MISMATCH instead of just printing it).
[[nodiscard]] bool run_instance(bench::JsonReport& report, const char* family,
                                const Graph& g, const std::vector<Weight>& w,
                                congest::ShortcutProvider provider, double eps,
                                VertexId num_seeds = 0) {
  const VertexId source = 0;
  ShortestPathResult oracle = dijkstra(g, w, source);

  congest::Simulator bf_sim(g);
  congest::SsspResult bf = congest::exact_sssp(bf_sim, w, source);
  bool exact_ok = bf.dist == oracle.dist;

  congest::ApproxSsspOptions opt;
  opt.provider = std::move(provider);
  opt.epsilon = eps;
  // Cells must span several jump-costs' worth of hops to pay for their
  // aggregations; sqrt(n)/8 seeds keep them long on every benched family.
  // The uniform seed spread covers the whole network from the start, so one
  // partition phase suffices (the uncovered-wavefront trigger still guards
  // the pathological case).
  opt.num_seeds = num_seeds;
  opt.repartition_growth = 1.0;
  congest::Simulator ap_sim(g);
  congest::SsspResult ap = congest::approx_sssp(ap_sim, w, source, opt);
  double max_ratio = 1.0;
  bool approx_ok = true;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (oracle.dist[v] == kUnreachedWeight || oracle.dist[v] == 0) continue;
    if (ap.dist[v] < oracle.dist[v]) approx_ok = false;
    double ratio = static_cast<double>(ap.dist[v]) /
                   static_cast<double>(oracle.dist[v]);
    max_ratio = std::max(max_ratio, ratio);
  }
  approx_ok = approx_ok && max_ratio <= 1.0 + eps + 1e-9;
  const double speedup =
      static_cast<double>(bf.rounds) / static_cast<double>(ap.rounds);
  std::printf("%-10s n=%6d  BF rounds=%8lld  (1+eps) rounds=%8lld  "
              "speedup=%5.2fx  phases=%2d jumps=%4lld  max_ratio=%.4f %s\n",
              family, g.num_vertices(), bf.rounds, ap.rounds, speedup,
              ap.phases, ap.jumps, max_ratio,
              exact_ok && approx_ok ? "" : "MISMATCH");
  report.row()
      .set("family", family)
      .set("n", g.num_vertices())
      .set("epsilon", eps)
      .set("rounds_bellman_ford", bf.rounds)
      .set("rounds_approx", ap.rounds)
      .set("vs_bellman_ford", speedup)
      .set("phases", ap.phases)
      .set("jumps", ap.jumps)
      .set("messages_bf", bf_sim.messages_sent())
      .set("messages_approx", ap_sim.messages_sent())
      .set("max_ratio", max_ratio)
      .set("verified", exact_ok && approx_ok ? "yes" : "no");
  return exact_ok && approx_ok;
}

}  // namespace

int main() {
  const bool smoke = std::getenv("MNS_BENCH_SMOKE") != nullptr;
  bench::header("E15: SSSP rounds (shortcut-accelerated (1+eps) vs Bellman-Ford)");
  bench::JsonReport report("sssp");
  const double eps = 0.25;
  std::printf("adversarial long-cheap-route weights; eps=%.2f; smoke=%d\n\n",
              eps, smoke);

  bool all_ok = true;
  auto long_cells = [](VertexId n) {
    return std::max<VertexId>(
        8, static_cast<VertexId>(std::sqrt(static_cast<double>(n))) / 8);
  };

  // -- planar (uniform.greedy certificate) --
  for (int side : smoke ? std::vector<int>{16} : std::vector<int>{16, 32, 64}) {
    Graph g = gen::grid(side, side).graph();
    Rng rng(static_cast<unsigned>(side));
    all_ok &= run_instance(report, "planar", g, dfs_light_weights(g, rng),
                           bench::greedy_provider(), eps,
                           long_cells(g.num_vertices()));
  }

  // -- treewidth (hubbed k-paths with their recorded decompositions) --
  for (VertexId n : smoke ? std::vector<VertexId>{256}
                          : std::vector<VertexId>{256, 1024, 4096}) {
    Rng rng(static_cast<unsigned>(n));
    gen::KTreeResult kt = hubbed_kpath(n, 3);
    all_ok &= run_instance(
        report, "treewidth", kt.graph, spine_light_weights(kt.graph, n, rng),
        bench::provider(treewidth_certificate(kt.decomposition)), eps,
        long_cells(n));
  }

  // -- apex (grid + satellite apex, Lemma 9 certificate) --
  for (int side : smoke ? std::vector<int>{16} : std::vector<int>{16, 32, 64}) {
    Rng rng(static_cast<unsigned>(100 + side));
    gen::ApexResult ar =
        gen::add_apices(gen::grid(side, side).graph(), 1, 0.10, rng);
    all_ok &= run_instance(report, "apex", ar.graph,
                           dfs_light_weights(ar.graph, rng),
                           bench::apex_provider(ar.apices), eps,
                           long_cells(ar.graph.num_vertices()));
  }

  // -- clique-sum: a chain of apexed grid bags through the FULL Theorem 6
  // pipeline (clique-sum folding + Lemma 9 apex-aware local oracles) --
  for (int bags : smoke ? std::vector<int>{4} : std::vector<int>{4, 16, 64}) {
    Rng rng(static_cast<unsigned>(bags));
    ApexChain chain = apexed_chain_cliquesum(bags, rng);
    CliqueSumCertificate cert{chain.decomposition};
    cert.apex_aware = true;
    cert.bag_apices = chain.bag_apices;
    all_ok &= run_instance(report, "cliquesum", chain.graph, chain.weights,
                           bench::provider(std::move(cert)), eps,
                           long_cells(chain.graph.num_vertices()));
  }
  return all_ok ? 0 : 1;
}
