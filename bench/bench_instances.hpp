// Shared adversarial instances for the workload harnesses (bench_mst_rounds,
// bench_sssp, bench_session). Each builder produces a small-diameter network
// of one certificate family together with weights whose cheap routes are
// LONG — the D << shortest-path-hops / snake-fragment regime the paper's
// theorems speak to, where shortcuts are essential.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "core/certificate.hpp"
#include "gen/planar.hpp"
#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "structure/clique_sum.hpp"
#include "structure/tree_decomposition.hpp"

namespace mns::bench {

/// The paper's motivating instance (§1): rows x cols grid + apex attached to
/// every other node (diameter ~4); the lightest edges trace the serpentine
/// so Boruvka fragments become snakes.
struct GridApexInstance {
  Graph graph;
  std::vector<Weight> weights;
  std::vector<VertexId> apices;
};

inline GridApexInstance grid_apex_instance(int rows, int cols, unsigned seed) {
  EmbeddedGraph eg = gen::grid(rows, cols);
  const VertexId grid_n = eg.graph().num_vertices();
  GraphBuilder b(grid_n + 1);
  for (EdgeId e = 0; e < eg.graph().num_edges(); ++e)
    b.add_edge(eg.graph().edge(e).u, eg.graph().edge(e).v);
  for (VertexId v = 0; v < grid_n; v += 2) b.add_edge(grid_n, v);
  GridApexInstance inst;
  inst.graph = b.build();
  inst.apices = {grid_n};
  auto id = [&](int r, int c) { return static_cast<VertexId>(r * cols + c); };
  std::vector<char> on_path(inst.graph.num_edges(), 0);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c + 1 < cols; ++c)
      on_path[inst.graph.find_edge(id(r, c), id(r, c + 1))] = 1;
    if (r + 1 < rows) {
      int turn = (r % 2 == 0) ? cols - 1 : 0;
      on_path[inst.graph.find_edge(id(r, turn), id(r + 1, turn))] = 1;
    }
  }
  std::vector<Weight> light;
  for (Weight x = 1; x <= grid_n; ++x) light.push_back(x);
  Rng rng(seed);
  std::shuffle(light.begin(), light.end(), rng);
  std::size_t li = 0;
  Weight heavy = 10 * static_cast<Weight>(inst.graph.num_vertices());
  inst.weights.assign(inst.graph.num_edges(), 0);
  for (EdgeId e = 0; e < inst.graph.num_edges(); ++e)
    inst.weights[e] = on_path[e] ? light[li++] : heavy++;
  return inst;
}

/// Adversarial weights: a DFS spanning tree (deep by construction) gets the
/// light weights 1..n-1 shuffled; every non-tree edge is heavier than any
/// all-light path, so the shortest-path forest IS the deep DFS tree.
inline std::vector<Weight> dfs_light_weights(const Graph& g, Rng& rng) {
  const VertexId n = g.num_vertices();
  std::vector<char> seen(n, 0);
  std::vector<char> on_tree(g.num_edges(), 0);
  // True DFS (visited at POP time, so the tree is deep, not BFS-bushy):
  // the tree edge of a vertex is the edge it was discovered through.
  std::vector<std::pair<VertexId, EdgeId>> stack{{0, kInvalidEdge}};
  VertexId tree_edges = 0;
  while (!stack.empty()) {
    auto [v, via] = stack.back();
    stack.pop_back();
    if (seen[v]) continue;
    seen[v] = 1;
    if (via != kInvalidEdge) {
      on_tree[via] = 1;
      ++tree_edges;
    }
    auto nbrs = g.neighbors(v);
    auto eids = g.incident_edges(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i)
      if (!seen[nbrs[i]]) stack.push_back({nbrs[i], eids[i]});
  }
  std::vector<Weight> light(tree_edges);
  for (VertexId i = 0; i < tree_edges; ++i) light[i] = i + 1;
  std::shuffle(light.begin(), light.end(), rng);
  std::size_t li = 0;
  Weight heavy = 10 * static_cast<Weight>(n) * static_cast<Weight>(n);
  std::vector<Weight> w(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    w[e] = on_tree[e] ? light[li++] : heavy++;
  return w;
}

/// Uniform-random weights: the shuffled ranks 1..m. Distinct values, so the
/// MST is unique and Kruskal-verifiable; relative order is that of i.i.d.
/// uniform draws. Unlike dfs_light_weights nothing is planted — this is the
/// CAPACITY regime (bench_scale): message volume reflects the family's own
/// structure, not an adversarial weight pattern (which at n = 2^20 would
/// multiply traffic ~4x without changing what the scale gate measures).
inline std::vector<Weight> uniform_weights(const Graph& g, Rng& rng) {
  std::vector<Weight> w(static_cast<std::size_t>(g.num_edges()));
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    w[static_cast<std::size_t>(e)] = e + 1;
  std::shuffle(w.begin(), w.end(), rng);
  return w;
}

/// The treewidth pathology (the wheel example generalized): a "k-path" band
/// (vertex i adjacent to i-1..i-k) PLUS a universal hub, recorded with its
/// width-(k+1) path decomposition (the hub joins every bag). Diameter 2 via
/// the hub, but the cheap route is the n-hop band spine — exactly the
/// D << shortest-path-hops regime where Theorem 5 shortcuts pay off.
struct HubbedKPath {
  Graph graph;
  TreeDecomposition decomposition;
};

inline HubbedKPath hubbed_kpath(VertexId n, VertexId k) {
  GraphBuilder b(n + 1);
  const VertexId hub = n;
  for (VertexId v = 1; v < n; ++v)
    for (VertexId back = 1; back <= std::min(k, v); ++back)
      b.add_edge(v - back, v);
  for (VertexId v = 0; v < n; ++v) b.add_edge(v, hub);
  std::vector<std::vector<VertexId>> bags;
  std::vector<BagId> parent;
  for (VertexId i = 0; i + k < n; ++i) {
    std::vector<VertexId> bag;
    for (VertexId j = i; j <= i + k; ++j) bag.push_back(j);
    bag.push_back(hub);
    bags.push_back(std::move(bag));
    parent.push_back(static_cast<BagId>(i) - 1);
  }
  return {b.build(), TreeDecomposition(std::move(bags), std::move(parent))};
}

/// Serpentine weights for hubbed_kpath: the band spine 0-1-2-...-(n-1)
/// carries the shuffled light weights, everything else (including every hub
/// edge) is heavier than any all-light route.
inline std::vector<Weight> spine_light_weights(const Graph& g,
                                               VertexId spine_len, Rng& rng) {
  std::vector<Weight> light(spine_len - 1);
  for (VertexId i = 0; i + 1 < spine_len; ++i) light[i] = i + 1;
  std::shuffle(light.begin(), light.end(), rng);
  Weight heavy = 10 * static_cast<Weight>(g.num_vertices()) *
                 static_cast<Weight>(g.num_vertices());
  std::vector<Weight> w(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(e);
    w[e] = (ed.v == ed.u + 1 && ed.v < spine_len) ? light[ed.u] : heavy++;
  }
  return w;
}

/// The clique-sum pathology (Theorem 6 shape): a CHAIN of apexed grid bags,
/// consecutive bags identified at one vertex where their serpentines meet,
/// so the per-bag boustrophedon routes concatenate into one n-hop cheap
/// route, while every bag's universal apex keeps the hop diameter at
/// ~2 hops per bag. Driven through the full clique-sum + Lemma 9 pipeline
/// (apex_aware + bag_apices).
struct ApexChain {
  Graph graph;
  CliqueSumDecomposition decomposition;
  std::vector<std::vector<VertexId>> bag_apices;
  std::vector<Weight> weights;
};

inline ApexChain apexed_chain_cliquesum(int bags, Rng& rng) {
  const int rows = 16, cols = 16;
  const VertexId per = rows * cols;
  const EmbeddedGraph cell_embedded = gen::grid(rows, cols);
  const Graph& cell = cell_embedded.graph();
  // Boustrophedon order of local grid ids; bag i's snake START (0,0) is
  // identified with bag i-1's snake END.
  std::vector<VertexId> snake;
  for (int r = 0; r < rows; ++r) {
    if (r % 2 == 0)
      for (int c = 0; c < cols; ++c)
        snake.push_back(static_cast<VertexId>(r * cols + c));
    else
      for (int c = cols - 1; c >= 0; --c)
        snake.push_back(static_cast<VertexId>(r * cols + c));
  }
  std::vector<std::vector<VertexId>> to_global(
      static_cast<std::size_t>(bags), std::vector<VertexId>(per));
  VertexId next = 0;
  for (int b = 0; b < bags; ++b)
    for (VertexId l = 0; l < per; ++l) {
      if (b > 0 && l == snake.front())
        to_global[b][l] = to_global[b - 1][snake.back()];
      else
        to_global[b][l] = next++;
    }
  std::vector<VertexId> apex(bags);
  for (int b = 0; b < bags; ++b) apex[b] = next++;
  GraphBuilder gb(next);
  for (int b = 0; b < bags; ++b) {
    for (EdgeId e = 0; e < cell.num_edges(); ++e)
      gb.add_edge(to_global[b][cell.edge(e).u], to_global[b][cell.edge(e).v]);
    for (VertexId l = 0; l < per; ++l) gb.add_edge(apex[b], to_global[b][l]);
  }
  Graph g = gb.build();

  std::vector<std::vector<VertexId>> bag_vertices(
      static_cast<std::size_t>(bags));
  std::vector<std::vector<EdgeId>> bag_edges(static_cast<std::size_t>(bags));
  std::vector<BagId> parent(static_cast<std::size_t>(bags));
  std::vector<std::vector<VertexId>> parent_clique(
      static_cast<std::size_t>(bags));
  std::vector<std::vector<VertexId>> bag_apices(
      static_cast<std::size_t>(bags));
  for (int b = 0; b < bags; ++b) {
    for (VertexId l = 0; l < per; ++l)
      bag_vertices[b].push_back(to_global[b][l]);
    bag_vertices[b].push_back(apex[b]);
    bag_apices[b] = {apex[b]};
    for (EdgeId e = 0; e < cell.num_edges(); ++e)
      bag_edges[b].push_back(g.find_edge(to_global[b][cell.edge(e).u],
                                         to_global[b][cell.edge(e).v]));
    for (VertexId l = 0; l < per; ++l)
      bag_edges[b].push_back(g.find_edge(apex[b], to_global[b][l]));
    parent[b] = static_cast<BagId>(b) - 1;
    if (b > 0) parent_clique[b] = {to_global[b][snake.front()]};
  }

  // One continuous light route through every bag's serpentine.
  std::vector<char> on_route(g.num_edges(), 0);
  VertexId route_len = 0;
  for (int b = 0; b < bags; ++b)
    for (std::size_t i = 0; i + 1 < snake.size(); ++i) {
      EdgeId e =
          g.find_edge(to_global[b][snake[i]], to_global[b][snake[i + 1]]);
      if (!on_route[e]) {
        on_route[e] = 1;
        ++route_len;
      }
    }
  std::vector<Weight> light(route_len);
  for (VertexId i = 0; i < route_len; ++i) light[i] = i + 1;
  std::shuffle(light.begin(), light.end(), rng);
  std::size_t li = 0;
  Weight heavy = 10 * static_cast<Weight>(g.num_vertices()) *
                 static_cast<Weight>(g.num_vertices());
  std::vector<Weight> w(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    w[e] = on_route[e] ? light[li++] : heavy++;

  return ApexChain{std::move(g),
                   CliqueSumDecomposition(std::move(bag_vertices),
                                          std::move(bag_edges),
                                          std::move(parent),
                                          std::move(parent_clique)),
                   std::move(bag_apices), std::move(w)};
}

/// The certificate of an ApexChain: the full Theorem 6 pipeline (clique-sum
/// folding + Lemma 9 apex-aware local oracles).
inline StructuralCertificate apex_chain_certificate(const ApexChain& chain) {
  CliqueSumCertificate cert{chain.decomposition};
  cert.apex_aware = true;
  cert.bag_apices = chain.bag_apices;
  return cert;
}

}  // namespace mns::bench
