// E11 (Corollary 1): Õ(D^2)-round MST on excluded-minor networks of small
// diameter, versus the Õ(D + sqrt(n)) controlled-GHS baseline and naive
// no-shortcut Boruvka. Two instance families:
//   (a) the paper's motivating instance — grid + apex attached to every
//       other node (diameter ~4) with adversarial serpentine weights, and
//   (b) the [SHK+12]-style lower-bound graph (diameter O(log n)) where no
//       algorithm can beat ~sqrt(n) — the instance minor-freeness excludes.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "congest/mincut.hpp"
#include "gen/lower_bound.hpp"
#include "gen/planar.hpp"
#include "gen/weights.hpp"

using namespace mns;

namespace {

struct Instance {
  Graph graph;
  std::vector<Weight> weights;
  std::vector<VertexId> apices;
  int diameter = 0;
};

/// Paper instance: rows x cols grid + apex on every other node; lightest
/// edges trace the serpentine so Boruvka fragments become snakes.
Instance paper_instance(int rows, int cols, unsigned seed) {
  EmbeddedGraph eg = gen::grid(rows, cols);
  const VertexId grid_n = eg.graph().num_vertices();
  GraphBuilder b(grid_n + 1);
  for (EdgeId e = 0; e < eg.graph().num_edges(); ++e)
    b.add_edge(eg.graph().edge(e).u, eg.graph().edge(e).v);
  for (VertexId v = 0; v < grid_n; v += 2) b.add_edge(grid_n, v);
  Instance inst;
  inst.graph = b.build();
  inst.apices = {grid_n};
  auto id = [&](int r, int c) { return static_cast<VertexId>(r * cols + c); };
  std::vector<char> on_path(inst.graph.num_edges(), 0);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c + 1 < cols; ++c)
      on_path[inst.graph.find_edge(id(r, c), id(r, c + 1))] = 1;
    if (r + 1 < rows) {
      int turn = (r % 2 == 0) ? cols - 1 : 0;
      on_path[inst.graph.find_edge(id(r, turn), id(r + 1, turn))] = 1;
    }
  }
  std::vector<Weight> light;
  for (Weight x = 1; x <= grid_n; ++x) light.push_back(x);
  Rng rng(seed);
  std::shuffle(light.begin(), light.end(), rng);
  std::size_t li = 0;
  Weight heavy = 10 * static_cast<Weight>(inst.graph.num_vertices());
  inst.weights.assign(inst.graph.num_edges(), 0);
  for (EdgeId e = 0; e < inst.graph.num_edges(); ++e)
    inst.weights[e] = on_path[e] ? light[li++] : heavy++;
  inst.diameter = diameter_exact(inst.graph);
  return inst;
}

void run_instance(bench::JsonReport& report, const char* family,
                  const Instance& inst) {
  const Graph& g = inst.graph;
  std::vector<EdgeId> ref = congest::kruskal_mst(g, inst.weights);
  std::sort(ref.begin(), ref.end());

  auto record = [&](const char* method, const congest::MstResult& res,
                    long long messages, bool ok) {
    std::printf("%-18s n=%6d D=%3d sqrt(n)=%5.0f  %-22s rounds=%8lld "
                "phases=%2d %s\n",
                family, g.num_vertices(), inst.diameter,
                std::sqrt(static_cast<double>(g.num_vertices())), method,
                res.rounds, res.phases, ok ? "" : "MISMATCH");
    report.row().set("family", family).set("n", g.num_vertices())
        .set("diameter", inst.diameter).set("method", method)
        .set("rounds", res.rounds).set("messages", messages)
        .set("phases", res.phases).set("verified", ok ? "yes" : "no");
  };

  auto run = [&](const char* method, congest::MstOptions opt) {
    congest::Simulator sim(g);
    congest::MstResult res = congest::boruvka_mst(sim, inst.weights, opt);
    record(method, res, sim.messages_sent(), res.edges == ref);
  };

  congest::MstOptions shortcuts;
  shortcuts.provider = inst.apices.empty()
                           ? bench::greedy_provider()
                           : bench::apex_provider(inst.apices);
  run("shortcut Boruvka", shortcuts);
  congest::MstOptions naive;
  naive.provider = congest::empty_shortcut_provider();
  naive.charge_construction = false;
  run("naive Boruvka", naive);

  // Controlled-GHS baseline.
  congest::Simulator sim(g);
  RootedTree t = bench::center_tree(g);
  congest::MstResult ghs = congest::controlled_ghs_mst(sim, t, inst.weights);
  record("controlled-GHS", ghs, sim.messages_sent(), ghs.edges == ref);
}

}  // namespace

int main() {
  bench::header("E11: MST rounds (Corollary 1 vs baselines)");
  bench::JsonReport report("mst_rounds");
  std::printf("methods per instance: shortcut Boruvka (construction charged), "
              "naive Boruvka, controlled-GHS\n\n");
  std::printf("-- (a) paper instance: grid + apex, adversarial weights --\n");
  for (auto [rows, cols] : {std::pair{32, 16}, {32, 32}, {64, 32}, {64, 64}}) {
    run_instance(report, "grid+apex", paper_instance(rows, cols, 3));
  }
  std::printf("\n-- (b) lower-bound family (NOT minor-free) --\n");
  for (int p : {8, 12, 16}) {
    gen::LowerBoundGraph lb = gen::lower_bound_graph(p);
    Instance inst;
    inst.graph = lb.graph;
    Rng rng(static_cast<unsigned>(p));
    inst.weights = gen::unique_random_weights(inst.graph, rng);
    inst.diameter = diameter_exact(inst.graph);
    run_instance(report, "lower-bound", inst);
  }
  return 0;
}
