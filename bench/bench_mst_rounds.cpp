// E11 (Corollary 1): Õ(D^2)-round MST on excluded-minor networks of small
// diameter, versus the Õ(D + sqrt(n)) controlled-GHS baseline and naive
// no-shortcut Boruvka — all three served by one congest::Session per
// instance. Two instance families:
//   (a) the paper's motivating instance — grid + apex attached to every
//       other node (diameter ~4) with adversarial serpentine weights, and
//   (b) the [SHK+12]-style lower-bound graph (diameter O(log n)) where no
//       algorithm can beat ~sqrt(n) — the instance minor-freeness excludes.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_instances.hpp"
#include "bench_util.hpp"
#include "congest/session.hpp"
#include "gen/lower_bound.hpp"
#include "gen/weights.hpp"

using namespace mns;

namespace {

void run_instance(bench::JsonReport& report, const char* family,
                  const Graph& g, const std::vector<Weight>& w,
                  StructuralCertificate cert, int diameter) {
  std::vector<EdgeId> ref = congest::kruskal_mst(g, w);
  std::sort(ref.begin(), ref.end());

  // One session serves the shortcut run, the flooding baseline, and the
  // controlled-GHS baseline on the same network.
  congest::Session session = bench::make_session(g, std::move(cert));

  auto record = [&](const char* method, const congest::RunReport& res,
                    bool ok) {
    std::printf("%-18s n=%6d D=%3d sqrt(n)=%5.0f  %-22s rounds=%8lld "
                "phases=%2d %s\n",
                family, g.num_vertices(), diameter,
                std::sqrt(static_cast<double>(g.num_vertices())), method,
                res.total_rounds(), res.phases, ok ? "" : "MISMATCH");
    report.row().set("family", family).set("n", g.num_vertices())
        .set("diameter", diameter).set("method", method).set_run(res)
        .set("verified", ok ? "yes" : "no");
  };

  congest::RunReport shortcuts = session.solve(congest::Mst{w});
  record("shortcut Boruvka", shortcuts, shortcuts.mst().edges == ref);

  congest::SolveOptions flooding;
  flooding.use_shortcuts = false;
  congest::RunReport naive = session.solve(congest::Mst{w}, flooding);
  record("naive Boruvka", naive, naive.mst().edges == ref);

  congest::RunReport ghs = session.solve(congest::GhsMst{w});
  record("controlled-GHS", ghs, ghs.mst().edges == ref);
}

}  // namespace

int main() {
  bench::header("E11: MST rounds (Corollary 1 vs baselines)");
  bench::JsonReport report("mst_rounds");
  std::printf("methods per instance: shortcut Boruvka (construction charged), "
              "naive Boruvka, controlled-GHS\n\n");
  std::printf("-- (a) paper instance: grid + apex, adversarial weights --\n");
  for (auto [rows, cols] : {std::pair{32, 16}, {32, 32}, {64, 32}, {64, 64}}) {
    bench::GridApexInstance inst = bench::grid_apex_instance(rows, cols, 3);
    run_instance(report, "grid+apex", inst.graph, inst.weights,
                 apex_certificate(inst.apices), diameter_exact(inst.graph));
  }
  std::printf("\n-- (b) lower-bound family (NOT minor-free) --\n");
  for (int p : {8, 12, 16}) {
    gen::LowerBoundGraph lb = gen::lower_bound_graph(p);
    Rng rng(static_cast<unsigned>(p));
    std::vector<Weight> w = gen::unique_random_weights(lb.graph, rng);
    run_instance(report, "lower-bound", lb.graph, w, greedy_certificate(),
                 diameter_exact(lb.graph));
  }
  return report.write() ? 0 : 1;
}
