// E1 (Theorem 4): planar graphs admit tree-restricted shortcuts with
// b = O(log d), c = O(d log d). Sweeps planar families and part shapes,
// reporting measured block/congestion/quality per construction next to the
// reference bounds. See EXPERIMENTS.md.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "gen/planar.hpp"
#include "structure/surface_decomposition.hpp"

using namespace mns;

namespace {

void run_case(bench::JsonReport& report, const char* family, const Graph& g,
              const RootedTree& t, const Partition& parts,
              bool with_treewidth_route, const EmbeddedGraph* embedded) {
  const int d = tree_diameter(t);
  {
    BuildResult r = bench::engine().build(g, t, parts, greedy_certificate());
    bench::metrics_row(report, family, g.num_vertices(), "greedy", r.metrics);
  }
  {
    BuildResult r = bench::engine().build(g, t, parts, steiner_certificate());
    bench::metrics_row(report, family, g.num_vertices(), "steiner", r.metrics);
  }
  if (with_treewidth_route && embedded != nullptr) {
    // The paper's own Genus+Vortex route (Lemma 2 with g=0, no vortices):
    // width-O(D) decomposition, then Theorem 5.
    TreeDecomposition td = surface_bfs_decomposition(*embedded, t.root());
    BuildResult r = bench::engine().build(
        g, t, parts, treewidth_certificate(std::move(td)));
    bench::metrics_row(report, family, g.num_vertices(), "treewidth-route",
                       r.metrics);
  }
  std::printf("%-22s %7s  reference: O(log d)=%.1f  O(d log d)=%.0f\n", "",
              "", std::log2(std::max(2, d)),
              d * std::log2(std::max(2, d)));
}

}  // namespace

int main() {
  bench::header("E1: planar shortcuts (Theorem 4 / [GH16] targets)");
  std::printf("part shapes: voronoi(sqrt n) and serpentines (adversarial)\n");
  bench::JsonReport report("planar_shortcuts");

  for (int s : {16, 32, 48, 64}) {
    EmbeddedGraph eg = gen::grid(s, s);
    const Graph& g = eg.graph();
    RootedTree t = bench::center_tree(g);
    Rng rng(11);
    Partition voronoi = voronoi_partition(
        g, std::max(2, static_cast<int>(std::sqrt(g.num_vertices()))), rng);
    run_case(report, "grid/voronoi", g, t, voronoi, s <= 24, &eg);
    Partition serp = grid_serpentines(s, s, std::max(2, s / 8));
    run_case(report, "grid/serpentine", g, t, serp, false, &eg);
  }

  for (int n : {1000, 4000, 16000}) {
    Rng rng(n);
    EmbeddedGraph eg = gen::random_maximal_planar(n, rng);
    const Graph& g = eg.graph();
    RootedTree t = bench::center_tree(g);
    Partition voronoi = voronoi_partition(
        g, std::max(2, static_cast<int>(std::sqrt(n))), rng);
    run_case(report, "maxplanar/voronoi", g, t, voronoi, false, &eg);
  }
  return report.write() ? 0 : 1;
}
