// E10 (Theorem 6, main theorem): random L_k members (clique-sums of
// k-almost-embeddable graphs) admit shortcuts with b = O(d) and
// c = O(d log n + log^2 n) via the full pipeline (Theorem 7 composition +
// Theorem 8 apex-aware local oracles), versus the structure-oblivious greedy.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "gen/lk_family.hpp"

using namespace mns;

int main() {
  bench::header("E10: excluded-minor pipeline (Theorem 6 targets)");
  std::printf("reference: b = O(d), c = O(d lg n + lg^2 n)\n");
  for (int bags : {4, 8, 16}) {
    Rng rng(static_cast<unsigned>(bags * 17));
    gen::AlmostEmbeddableParams bp;
    bp.apices = 1;
    bp.genus = 1;
    bp.num_vortices = 1;
    bp.vortex_depth = 2;
    bp.rows = 10;
    bp.cols = 10;
    gen::LkSample s = gen::random_lk_graph(bags, bp, 2, 0.15, rng);
    RootedTree t = bench::center_tree(s.graph);
    Partition parts = voronoi_partition(
        s.graph,
        std::max(2, static_cast<int>(std::sqrt(s.graph.num_vertices()))), rng);

    CliqueSumShortcutOptions opt;
    opt.bag_apices = s.global_apices;
    opt.local_oracle = make_apex_oracle(make_greedy_oracle());
    Shortcut pipeline =
        build_cliquesum_shortcut(s.graph, t, parts, s.decomposition,
                                 std::move(opt));
    char label[48];
    std::snprintf(label, sizeof label, "L_2 sample/%d bags", bags);
    ShortcutMetrics m = measure_shortcut(s.graph, t, parts, pipeline);
    bench::metrics_row(label, s.graph.num_vertices(), "pipeline (Thm 6)", m);
    double lg = std::log2(static_cast<double>(s.graph.num_vertices()));
    std::printf("%-22s %7s  reference: d=%d  d*lg n + lg^2 n = %.0f\n", "",
                "", m.tree_diameter, m.tree_diameter * lg + lg * lg);

    Shortcut greedy = build_greedy_shortcut(s.graph, t, parts);
    bench::metrics_row(label, s.graph.num_vertices(), "oblivious greedy",
                       measure_shortcut(s.graph, t, parts, greedy));
  }
  return 0;
}
