// E10 (Theorem 6, main theorem): random L_k members (clique-sums of
// k-almost-embeddable graphs) admit shortcuts with b = O(d) and
// c = O(d log n + log^2 n) via the full pipeline (Theorem 7 composition +
// Theorem 8 apex-aware local oracles), versus the structure-oblivious greedy.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "gen/lk_family.hpp"

using namespace mns;

int main() {
  bench::header("E10: excluded-minor pipeline (Theorem 6 targets)");
  bench::JsonReport report("excluded_minor");
  std::printf("reference: b = O(d), c = O(d lg n + lg^2 n)\n");
  for (int bags : {4, 8, 16}) {
    Rng rng(static_cast<unsigned>(bags * 17));
    gen::AlmostEmbeddableParams bp;
    bp.apices = 1;
    bp.genus = 1;
    bp.num_vortices = 1;
    bp.vortex_depth = 2;
    bp.rows = 10;
    bp.cols = 10;
    gen::LkSample s = gen::random_lk_graph(bags, bp, 2, 0.15, rng);
    RootedTree t = bench::center_tree(s.graph);
    Partition parts = voronoi_partition(
        s.graph,
        std::max(2, static_cast<int>(std::sqrt(s.graph.num_vertices()))), rng);

    CliqueSumCertificate cert{s.decomposition};
    cert.local_oracle = OracleKind::kGreedy;
    cert.apex_aware = true;
    cert.bag_apices = s.global_apices;
    BuildResult pipeline =
        bench::engine().build(s.graph, t, parts, std::move(cert));
    char label[48];
    std::snprintf(label, sizeof label, "L_2 sample/%d bags", bags);
    const ShortcutMetrics& m = pipeline.metrics;
    bench::metrics_row(report, label, s.graph.num_vertices(),
                       "pipeline (Thm 6)", m);
    double lg = std::log2(static_cast<double>(s.graph.num_vertices()));
    std::printf("%-22s %7s  reference: d=%d  d*lg n + lg^2 n = %.0f\n", "",
                "", m.tree_diameter, m.tree_diameter * lg + lg * lg);

    BuildResult greedy =
        bench::engine().build(s.graph, t, parts, greedy_certificate());
    bench::metrics_row(report, label, s.graph.num_vertices(),
                       "oblivious greedy", greedy.metrics);
  }
  return 0;
}
