// E13 (Theorem 1's mechanism): measured aggregation rounds track shortcut
// quality q = b*d + c. Same network and parts, different shortcut
// constructions — the framework's promise is that q predicts rounds.
#include <cstdio>

#include "bench_util.hpp"
#include "congest/aggregation.hpp"
#include "congest/distributed_shortcut.hpp"
#include "gen/basic.hpp"
#include "gen/planar.hpp"

using namespace mns;

namespace {

void run_variant(const char* name, const Graph& g, const RootedTree& t,
                 const Partition& parts, Shortcut sc) {
  ShortcutMetrics m = measure_shortcut(g, t, parts, sc);
  congest::PartwiseAggregator agg(g, parts, sc);
  congest::Simulator sim(g);
  std::vector<congest::AggValue> init(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    init[v] = {static_cast<Weight>((v * 2654435761u) % 100000), v};
  auto res = agg.aggregate_min(sim, init);
  std::printf("%-26s  q=%8lld (b=%4d c=%5d)  measured rounds=%6lld  "
              "msgs=%9lld\n",
              name, m.quality, m.block, m.congestion, res.rounds,
              sim.messages_sent());
}

}  // namespace

int main() {
  bench::header("E13: quality -> rounds correlation (Theorem 1 mechanism)");

  std::printf("-- wheel, 8 ring sectors (apex pathology) --\n");
  {
    const VertexId n = 4002;
    Graph g = gen::wheel(n);
    RootedTree t = RootedTree::from_bfs(bfs(g, 0), 0);
    Partition parts = ring_sectors(n, 1, n - 1, 8);
    Shortcut none;
    none.edges_of_part.resize(parts.num_parts());
    run_variant("none (flooding)", g, t, parts, std::move(none));
    run_variant("ancestor climb h=4", g, t, parts,
                build_ancestor_shortcut(g, t, parts, 4));
    run_variant("steiner", g, t, parts, build_steiner_shortcut(g, t, parts));
    run_variant("greedy [HIZ16a]", g, t, parts,
                build_greedy_shortcut(g, t, parts));
    run_variant("apex-aware (Lemma 9)", g, t, parts,
                build_apex_shortcut(g, t, parts, {0}, make_greedy_oracle()));
  }

  std::printf("\n-- 48x48 grid, serpentine zones --\n");
  {
    const int s = 48;
    EmbeddedGraph eg = gen::grid(s, s);
    const Graph& g = eg.graph();
    RootedTree t = bench::center_tree(g);
    Partition parts = grid_serpentines(s, s, 6);
    Shortcut none;
    none.edges_of_part.resize(parts.num_parts());
    run_variant("none (flooding)", g, t, parts, std::move(none));
    run_variant("ancestor climb h=8", g, t, parts,
                build_ancestor_shortcut(g, t, parts, 8));
    run_variant("steiner", g, t, parts, build_steiner_shortcut(g, t, parts));
    run_variant("greedy [HIZ16a]", g, t, parts,
                build_greedy_shortcut(g, t, parts));
  }

  std::printf("\n-- fully distributed: construction itself simulated --\n");
  {
    const VertexId n = 4002;
    Graph g = gen::wheel(n);
    RootedTree t = RootedTree::from_bfs(bfs(g, 0), 0);
    Partition parts = ring_sectors(n, 1, n - 1, 8);
    congest::Simulator sim(g);
    congest::DistributedShortcutResult built =
        congest::distributed_capped_greedy(sim, t, parts, 8);
    long long construction = sim.rounds();
    congest::PartwiseAggregator agg(g, parts, built.shortcut);
    std::vector<congest::AggValue> init(n);
    for (VertexId v = 0; v < n; ++v)
      init[v] = {static_cast<Weight>((v * 2654435761u) % 100000), v};
    auto res = agg.aggregate_min(sim, init);
    ShortcutMetrics m = measure_shortcut(g, t, parts, built.shortcut);
    std::printf("%-26s  q=%8lld (b=%4d c=%5d)  construction=%lld rounds, "
                "aggregation=%lld rounds\n",
                "distributed greedy cap=8", m.quality, m.block, m.congestion,
                construction, res.rounds);
  }
  return 0;
}
