// E13 (Theorem 1's mechanism): measured aggregation rounds track shortcut
// quality q = b*d + c. Same network and parts, different shortcut
// constructions — the framework's promise is that q predicts rounds.
#include <cstdio>

#include "bench_util.hpp"
#include "congest/aggregation.hpp"
#include "congest/distributed_shortcut.hpp"
#include "gen/basic.hpp"
#include "gen/planar.hpp"

using namespace mns;

namespace {

void run_variant(bench::JsonReport& report, const char* name, const Graph& g,
                 const Partition& parts, const ShortcutMetrics& m,
                 const Shortcut& sc) {
  congest::PartwiseAggregator agg(g, parts, sc);
  congest::Simulator sim(g);
  std::vector<congest::AggValue> init(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    init[v] = {static_cast<Weight>((v * 2654435761u) % 100000), v};
  auto res = agg.aggregate_min(sim, init);
  std::printf("%-26s  q=%8lld (b=%4d c=%5d)  measured rounds=%6lld  "
              "msgs=%9lld\n",
              name, m.quality, m.block, m.congestion, res.rounds,
              sim.messages_sent());
  report.row().set("method", name).set("n", g.num_vertices())
      .set_metrics(m).set("rounds", res.rounds)
      .set("messages", sim.messages_sent());
}

void run_certificate(bench::JsonReport& report, const char* name,
                     const Graph& g, const RootedTree& t,
                     const Partition& parts,
                     const StructuralCertificate& cert) {
  BuildResult r = bench::engine().build(g, t, parts, cert);
  run_variant(report, name, g, parts, r.metrics, r.shortcut);
}

void run_empty(bench::JsonReport& report, const Graph& g, const RootedTree& t,
               const Partition& parts) {
  Shortcut none;
  none.edges_of_part.resize(parts.num_parts());
  ShortcutMetrics m = measure_shortcut(g, t, parts, none);
  run_variant(report, "none (flooding)", g, parts, m, none);
}

}  // namespace

int main() {
  bench::header("E13: quality -> rounds correlation (Theorem 1 mechanism)");
  bench::JsonReport report("aggregation");

  std::printf("-- wheel, 8 ring sectors (apex pathology) --\n");
  {
    const VertexId n = 4002;
    Graph g = gen::wheel(n);
    RootedTree t = RootedTree::from_bfs(bfs(g, 0), 0);
    Partition parts = ring_sectors(n, 1, n - 1, 8);
    run_empty(report, g, t, parts);
    run_certificate(report, "ancestor climb h=4", g, t, parts,
                    ancestor_certificate(4));
    run_certificate(report, "steiner", g, t, parts, steiner_certificate());
    run_certificate(report, "greedy [HIZ16a]", g, t, parts,
                    greedy_certificate());
    run_certificate(report, "apex-aware (Lemma 9)", g, t, parts,
                    apex_certificate({0}));
  }

  std::printf("\n-- 48x48 grid, serpentine zones --\n");
  {
    const int s = 48;
    EmbeddedGraph eg = gen::grid(s, s);
    const Graph& g = eg.graph();
    RootedTree t = bench::center_tree(g);
    Partition parts = grid_serpentines(s, s, 6);
    run_empty(report, g, t, parts);
    run_certificate(report, "ancestor climb h=8", g, t, parts,
                    ancestor_certificate(8));
    run_certificate(report, "steiner", g, t, parts, steiner_certificate());
    run_certificate(report, "greedy [HIZ16a]", g, t, parts,
                    greedy_certificate());
  }

  std::printf("\n-- fully distributed: construction itself simulated --\n");
  {
    const VertexId n = 4002;
    Graph g = gen::wheel(n);
    RootedTree t = RootedTree::from_bfs(bfs(g, 0), 0);
    Partition parts = ring_sectors(n, 1, n - 1, 8);
    congest::Simulator sim(g);
    congest::DistributedShortcutResult built =
        congest::distributed_capped_greedy(sim, t, parts, 8);
    long long construction = sim.rounds();
    congest::PartwiseAggregator agg(g, parts, built.shortcut);
    std::vector<congest::AggValue> init(n);
    for (VertexId v = 0; v < n; ++v)
      init[v] = {static_cast<Weight>((v * 2654435761u) % 100000), v};
    auto res = agg.aggregate_min(sim, init);
    ShortcutMetrics m = measure_shortcut(g, t, parts, built.shortcut);
    std::printf("%-26s  q=%8lld (b=%4d c=%5d)  construction=%lld rounds, "
                "aggregation=%lld rounds\n",
                "distributed greedy cap=8", m.quality, m.block, m.congestion,
                construction, res.rounds);
    report.row().set("method", "distributed greedy cap=8")
        .set("n", g.num_vertices()).set_metrics(m)
        .set("construction_rounds", construction)
        .set("rounds", res.rounds).set("messages", sim.messages_sent());
  }
  return 0;
}
