// E13 (Theorem 1's mechanism): measured aggregation rounds track shortcut
// quality q = b*d + c. Same network and parts, different shortcut
// constructions — the framework's promise is that q predicts rounds. Each
// variant is one certificate swapped into a shared congest::Session
// (set_certificate invalidates the cache, analyze() measures the build and
// seeds it, solve(Aggregate) measures the rounds).
#include <cstdio>

#include "bench_util.hpp"
#include "congest/distributed_shortcut.hpp"
#include "congest/session.hpp"
#include "gen/basic.hpp"
#include "gen/planar.hpp"

using namespace mns;

namespace {

std::vector<congest::AggValue> hashed_values(VertexId n) {
  std::vector<congest::AggValue> init(n);
  for (VertexId v = 0; v < n; ++v)
    init[v] = {static_cast<Weight>((v * 2654435761u) % 100000), v};
  return init;
}

void record_variant(bench::JsonReport& report, const char* name, VertexId n,
                    const ShortcutMetrics& m, const congest::RunReport& res) {
  std::printf("%-26s  q=%8lld (b=%4d c=%5d)  measured rounds=%6lld  "
              "msgs=%9lld\n",
              name, m.quality, m.block, m.congestion, res.rounds,
              res.messages);
  report.row().set("method", name).set("n", n).set_metrics(m).set_run(res);
}

void run_certificate(bench::JsonReport& report, const char* name,
                     congest::Session& session, const Partition& parts,
                     StructuralCertificate cert) {
  session.set_certificate(std::move(cert));
  BuildResult r = session.analyze(parts);
  congest::RunReport res = session.solve(
      congest::Aggregate{parts, hashed_values(session.graph().num_vertices())});
  record_variant(report, name, session.graph().num_vertices(), r.metrics, res);
}

void run_empty(bench::JsonReport& report, congest::Session& session,
               const Partition& parts) {
  const Shortcut none = empty_shortcut_provider()(session.graph(), parts);
  ShortcutMetrics m =
      measure_shortcut(session.graph(), session.tree(), parts, none);
  congest::SolveOptions flooding;
  flooding.use_shortcuts = false;
  congest::RunReport res = session.solve(
      congest::Aggregate{parts, hashed_values(session.graph().num_vertices())},
      flooding);
  record_variant(report, "none (flooding)", session.graph().num_vertices(), m,
                 res);
}

congest::Session root0_session(const Graph& g) {
  congest::SessionConfig cfg;
  cfg.tree = [](const Graph& gg) {
    return RootedTree::from_bfs(bfs(gg, 0), 0);
  };
  return congest::Session(g, greedy_certificate(), std::move(cfg));
}

}  // namespace

int main() {
  bench::header("E13: quality -> rounds correlation (Theorem 1 mechanism)");
  bench::JsonReport report("aggregation");

  std::printf("-- wheel, 8 ring sectors (apex pathology) --\n");
  {
    const VertexId n = 4002;
    Graph g = gen::wheel(n);
    Partition parts = ring_sectors(n, 1, n - 1, 8);
    congest::Session session = root0_session(g);
    run_empty(report, session, parts);
    run_certificate(report, "ancestor climb h=4", session, parts,
                    ancestor_certificate(4));
    run_certificate(report, "steiner", session, parts, steiner_certificate());
    run_certificate(report, "greedy [HIZ16a]", session, parts,
                    greedy_certificate());
    run_certificate(report, "apex-aware (Lemma 9)", session, parts,
                    apex_certificate({0}));
  }

  std::printf("\n-- 48x48 grid, serpentine zones --\n");
  {
    const int s = 48;
    EmbeddedGraph eg = gen::grid(s, s);
    Partition parts = grid_serpentines(s, s, 6);
    congest::Session session = bench::make_session(eg.graph(),
                                                   greedy_certificate());
    run_empty(report, session, parts);
    run_certificate(report, "ancestor climb h=8", session, parts,
                    ancestor_certificate(8));
    run_certificate(report, "steiner", session, parts, steiner_certificate());
    run_certificate(report, "greedy [HIZ16a]", session, parts,
                    greedy_certificate());
  }

  std::printf("\n-- fully distributed: construction itself simulated --\n");
  {
    const VertexId n = 4002;
    Graph g = gen::wheel(n);
    RootedTree t = RootedTree::from_bfs(bfs(g, 0), 0);
    Partition parts = ring_sectors(n, 1, n - 1, 8);
    congest::Simulator sim(g);
    congest::DistributedShortcutResult built =
        congest::distributed_capped_greedy(sim, t, parts, 8);
    long long construction = sim.rounds();
    congest::PartwiseAggregator agg(g, parts, built.shortcut);
    std::vector<congest::AggValue> init = hashed_values(n);
    auto res = agg.aggregate_min(sim, init);
    ShortcutMetrics m = measure_shortcut(g, t, parts, built.shortcut);
    std::printf("%-26s  q=%8lld (b=%4d c=%5d)  construction=%lld rounds, "
                "aggregation=%lld rounds\n",
                "distributed greedy cap=8", m.quality, m.block, m.congestion,
                construction, res.rounds);
    report.row().set("method", "distributed greedy cap=8")
        .set("n", g.num_vertices()).set_metrics(m)
        .set("construction_rounds", construction)
        .set("rounds", res.rounds).set("messages", sim.messages_sent());
  }
  return 0;
}
