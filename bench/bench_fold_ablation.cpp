// E4 (Lemma 1 vs Theorem 7, Figure 4): the unfolded construction pays
// congestion ~ k * depth(DT); heavy-light folding compresses the
// decomposition tree to depth O(log^2 B) and removes that dependence.
// Chain-shaped decompositions make the contrast extremal.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "gen/basic.hpp"
#include "structure/clique_sum.hpp"

using namespace mns;

int main() {
  bench::header("E4: folding ablation (Lemma 1 depth term vs folded)");
  bench::JsonReport report("fold_ablation");
  std::printf("%6s %10s %12s %14s %12s %14s\n", "bags", "depth(DT)",
              "folded depth", "ref O(lg^2 B)", "c unfolded", "c folded");
  for (int chain : {64, 256, 1024}) {
    // Path graph with its natural chain decomposition {v, v+1}.
    Graph g = gen::path(chain + 1);
    std::vector<std::vector<VertexId>> bags;
    std::vector<BagId> parent;
    for (VertexId v = 0; v < chain; ++v) {
      bags.push_back({v, v + 1});
      parent.push_back(v == 0 ? kInvalidBag : v - 1);
    }
    TreeDecomposition td(bags, parent);
    CliqueSumDecomposition csd = clique_sum_from_tree_decomposition(td, g);
    FoldedDecomposition fd = fold_decomposition(csd);

    RootedTree t = bench::center_tree(g);
    Rng rng(3);
    Partition parts = voronoi_partition(g, 8, rng);

    CliqueSumCertificate unfolded{csd};
    unfolded.fold = false;
    BuildResult bu = bench::engine().build(g, t, parts, std::move(unfolded));
    CliqueSumCertificate folded{csd};
    folded.fold = true;
    BuildResult bf = bench::engine().build(g, t, parts, std::move(folded));
    double lg = std::log2(static_cast<double>(chain));
    std::printf("%6d %10d %12d %14.0f %12d %14d\n", chain, csd.depth(),
                fd.depth, lg * lg, bu.metrics.congestion,
                bf.metrics.congestion);
    report.row().set("bags", chain).set("depth", csd.depth())
        .set("folded_depth", fd.depth)
        .set("congestion_unfolded", bu.metrics.congestion)
        .set("congestion_folded", bf.metrics.congestion)
        .set("quality_unfolded", bu.metrics.quality)
        .set("quality_folded", bf.metrics.quality);
  }
  return 0;
}
