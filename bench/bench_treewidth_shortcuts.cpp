// E2 (Theorem 5): treewidth-k graphs admit shortcuts with b = O(k),
// c = O(k log n). Sweeps k and n on random k-trees using their recorded
// width-k decompositions.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "gen/ktree.hpp"

using namespace mns;

int main() {
  bench::header("E2: treewidth shortcuts (Theorem 5 / [HIZ16b] targets)");
  bench::JsonReport report("treewidth_shortcuts");
  std::printf("%4s %7s %6s %6s %8s %12s %14s\n", "k", "n", "b", "c", "q",
              "ref b=O(k)", "ref c=O(k lg n)");
  for (int k : {1, 2, 3, 4, 6, 8}) {
    for (int n : {1000, 4000, 16000}) {
      Rng rng(static_cast<unsigned>(k * 1000 + n));
      gen::KTreeResult kt = gen::random_ktree(n, k, rng);
      RootedTree t = bench::center_tree(kt.graph);
      Partition parts = voronoi_partition(
          kt.graph, std::max(2, static_cast<int>(std::sqrt(n))), rng);
      BuildResult r = bench::engine().build(
          kt.graph, t, parts, treewidth_certificate(kt.decomposition));
      const ShortcutMetrics& m = r.metrics;
      std::printf("%4d %7d %6d %6d %8lld %12d %14.1f\n", k, n, m.block,
                  m.congestion, m.quality, k + 1,
                  (k + 1) * std::log2(static_cast<double>(n)));
      report.row().set("k", k).set("n", n).set("builder", r.builder)
          .set_metrics(m);
    }
  }
  return 0;
}
