// E17 (the vertex-parallel round engine, DESIGN.md §7): wall-clock scaling
// of the sharded simulator at threads in {1, 2, 4, 8} on all four
// certificate families (planar, treewidth, apex, clique-sum), driving the
// two round-heaviest workloads (MST and (1+eps) SSSP) through
// congest::Session at each width.
//
// The headline assert is NOT the speedup — it is PARITY: at every width,
// rounds, messages, charged construction, phases and full payloads must be
// bit-identical to the threads=1 sequential oracle (parallelism may only
// move wall clock). The harness exits nonzero on any deviation, so CI
// catches determinism regressions on every run.
//
// Speedup is reported per row (wall_ms, speedup vs threads=1) into
// BENCH_parallel_scaling.json together with threads and
// hardware_concurrency; interpret it against the row's hardware context —
// on a 1-core container every width necessarily measures ~1x, which is why
// the speedup is recorded, not asserted, machine-independently.
//
// Set MNS_BENCH_SMOKE=1 to run the smallest instance per family (CI).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_instances.hpp"
#include "bench_util.hpp"
#include "congest/session.hpp"
#include "gen/apex.hpp"

using namespace mns;

namespace {

struct Instance {
  std::string family;
  Graph graph;
  std::vector<Weight> weights;
  StructuralCertificate cert;
};

std::vector<Instance> instances(bool smoke) {
  std::vector<Instance> out;
  {
    const int side = smoke ? 16 : 48;
    Graph g = gen::grid(side, side).graph();
    Rng rng(static_cast<unsigned>(side));
    std::vector<Weight> w = bench::dfs_light_weights(g, rng);
    out.push_back({"planar", std::move(g), std::move(w),
                   greedy_certificate()});
  }
  {
    const VertexId n = smoke ? 256 : 4096;
    Rng rng(static_cast<unsigned>(n));
    bench::HubbedKPath kt = bench::hubbed_kpath(n, 3);
    std::vector<Weight> w = bench::spine_light_weights(kt.graph, n, rng);
    out.push_back({"treewidth", std::move(kt.graph), std::move(w),
                   treewidth_certificate(std::move(kt.decomposition))});
  }
  {
    const int side = smoke ? 16 : 48;
    Rng rng(static_cast<unsigned>(100 + side));
    gen::ApexResult ar =
        gen::add_apices(gen::grid(side, side).graph(), 1, 0.10, rng);
    std::vector<Weight> w = bench::dfs_light_weights(ar.graph, rng);
    out.push_back({"apex", std::move(ar.graph), std::move(w),
                   apex_certificate(ar.apices)});
  }
  {
    const int bags = smoke ? 4 : 16;
    Rng rng(static_cast<unsigned>(bags));
    bench::ApexChain chain = bench::apexed_chain_cliquesum(bags, rng);
    StructuralCertificate cert = bench::apex_chain_certificate(chain);
    out.push_back({"cliquesum", std::move(chain.graph),
                   std::move(chain.weights), std::move(cert)});
  }
  return out;
}

struct Oracle {
  congest::RunReport mst;
  congest::RunReport sssp;
};

bool same_run(const congest::RunReport& a, const congest::RunReport& b) {
  return a.rounds == b.rounds && a.messages == b.messages &&
         a.charged_construction_rounds == b.charged_construction_rounds &&
         a.phases == b.phases && a.aggregations == b.aggregations;
}

int failures = 0;

void check(bool ok, const char* what, const std::string& family, int threads) {
  if (ok) return;
  ++failures;
  std::printf("  PARITY VIOLATION [%s, threads=%d]: %s\n", family.c_str(),
              threads, what);
}

}  // namespace

int main() {
  const bool smoke = std::getenv("MNS_BENCH_SMOKE") != nullptr;
  bench::JsonReport report("parallel_scaling");
  bench::header(
      "E17: vertex-parallel round engine — wall-clock scaling with "
      "bit-identical rounds/messages/results (DESIGN.md §7)");
  std::printf("hardware_concurrency = %lld\n",
              bench::JsonReport::hardware_concurrency());

  for (Instance& inst : instances(smoke)) {
    const VertexId n = inst.graph.num_vertices();
    std::printf("\n%-10s n=%-6d m=%d\n", inst.family.c_str(), n,
                inst.graph.num_edges());
    Oracle oracle;
    double base_mst_ms = 0, base_sssp_ms = 0;
    for (int threads : {1, 2, 4, 8}) {
      congest::SessionConfig cfg;
      cfg.tree = center_tree_factory(1);
      cfg.execution.threads = threads;
      congest::Session session(inst.graph, inst.cert, std::move(cfg));

      congest::RunReport mst = session.solve(congest::Mst{inst.weights});

      congest::ApproxSssp q{inst.weights, 0};
      q.wavefront_seeds = false;  // source-independent cells: cacheable
      congest::RunReport sssp = session.solve(q);

      const char* mst_parity = "oracle";
      const char* sssp_parity = "oracle";
      if (threads == 1) {
        oracle = {mst, sssp};
        base_mst_ms = mst.wall_ms;
        base_sssp_ms = sssp.wall_ms;
      } else {
        int before = failures;
        check(same_run(mst, oracle.mst), "mst telemetry", inst.family,
              threads);
        check(mst.mst().edges == oracle.mst.mst().edges, "mst edges",
              inst.family, threads);
        mst_parity = failures == before ? "ok" : "violated";
        before = failures;
        check(same_run(sssp, oracle.sssp), "sssp telemetry", inst.family,
              threads);
        check(sssp.sssp().dist == oracle.sssp.sssp().dist, "sssp dist",
              inst.family, threads);
        sssp_parity = failures == before ? "ok" : "violated";
      }
      const double mst_speedup =
          mst.wall_ms > 0 ? base_mst_ms / mst.wall_ms : 1.0;
      const double sssp_speedup =
          sssp.wall_ms > 0 ? base_sssp_ms / sssp.wall_ms : 1.0;
      std::printf(
          "  threads=%d  mst: %7lld rounds %9lld msgs %8.1f ms (%.2fx)   "
          "sssp: %7lld rounds %9lld msgs %8.1f ms (%.2fx)\n",
          threads, mst.rounds, mst.messages, mst.wall_ms, mst_speedup,
          sssp.rounds, sssp.messages, sssp.wall_ms, sssp_speedup);
      report.row()
          .set("family", inst.family)
          .set("n", static_cast<long long>(n))
          .set("workload", "mst")
          .set_run(mst)
          .set("speedup", mst_speedup)
          .set("parity", mst_parity);
      report.row()
          .set("family", inst.family)
          .set("n", static_cast<long long>(n))
          .set("workload", "sssp.approx")
          .set_run(sssp)
          .set("speedup", sssp_speedup)
          .set("parity", sssp_parity);
    }
  }

  const bool wrote = report.write();
  if (failures > 0) {
    std::printf("\n%d parity violation(s) — the engine is NOT bit-identical\n",
                failures);
    return 1;
  }
  std::printf(
      "\nAll widths bit-identical to the sequential oracle "
      "(rounds/messages/charges/payloads).\n");
  return wrote ? 0 : 1;
}
