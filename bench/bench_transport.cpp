// E20 (the transport thesis, DESIGN.md §11): the CONGEST protocols run over
// REAL acked datagram delivery — two socket-wired lock-step replicas — with
// rounds, messages and full payloads bit-identical to the single-process
// reference, clean AND under seeded drop/dup/reorder fault injection.
//
// Per family x workload {mst, sssp.approx} x mode {clean, faulted}:
//
//   deterministic (baseline-gated via mnsctl diff --baseline):
//     rounds, messages, rounds_exchanged, wire_records (canonical cut-edge
//     traffic), parity ("yes" iff BOTH ranks' RunReports bit-match the
//     sequential reference)
//   volatile (masked by the diff):
//     wall_ms, datagrams_sent/received, acks_sent, retransmits, faults_*
//
// Exits nonzero on any parity violation, so CI catches a transport that
// changes measured results even before the baseline diff runs.
//
// Set MNS_BENCH_SMOKE=1 to run the smallest instance per family (CI; the
// committed bench/baselines/transport.json is the smoke trajectory).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "gen/apex.hpp"
#include "gen/clique_sum.hpp"
#include "gen/ktree.hpp"
#include "gen/planar.hpp"
#include "gen/weights.hpp"
#include "io/report_json.hpp"
#include "transport/loopback.hpp"

using namespace mns;

namespace {

struct Instance {
  std::string family;
  Graph graph;
  StructuralCertificate cert;
};

std::vector<Instance> instances(bool smoke) {
  std::vector<Instance> out;
  Rng rng(79);
  {
    const int side = smoke ? 8 : 24;
    out.push_back(
        {"planar", gen::grid(side, side).graph(), greedy_certificate()});
  }
  {
    const VertexId n = smoke ? 96 : 512;
    gen::KTreeResult kt = gen::random_ktree(n, 3, rng);
    out.push_back(
        {"treewidth", kt.graph, treewidth_certificate(kt.decomposition)});
  }
  {
    const int side = smoke ? 7 : 20;
    gen::ApexResult ar =
        gen::add_apices(gen::grid(side, side).graph(), 1, 0.1, rng);
    out.push_back({"apex", ar.graph, apex_certificate(ar.apices)});
  }
  {
    Graph bag = gen::triangulated_grid(3, 3).graph();
    std::vector<gen::BagInput> inputs;
    for (int i = 0; i < (smoke ? 3 : 10); ++i)
      inputs.push_back({bag, gen::default_glue_cliques(bag, 2)});
    gen::CliqueSumResult cs = gen::compose_clique_sum(inputs, 2, 0.0, rng);
    out.push_back(
        {"cliquesum", cs.graph, cliquesum_certificate(cs.decomposition)});
  }
  return out;
}

struct DistResult {
  std::vector<congest::RunReport> reports;  ///< per rank
  std::vector<transport::TransportStats> stats;
  double wall_ms = 0.0;
  std::string error;
};

DistResult distributed_solve(const Instance& inst, const std::string& workload,
                             const congest::WorkloadParams& params, int ranks,
                             const transport::FaultConfig& faults) {
  DistResult out;
  auto cluster = transport::make_loopback_cluster(
      inst.graph, ranks, transport::SocketTransportConfig{}, faults);
  out.reports.resize(static_cast<std::size_t>(ranks));
  std::vector<std::string> errors(static_cast<std::size_t>(ranks));
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        congest::Session session = bench::make_session(inst.graph, inst.cert);
        session.set_transport(cluster[static_cast<std::size_t>(r)].get());
        out.reports[static_cast<std::size_t>(r)] =
            session.solve(workload, params, congest::SolveOptions{});
        session.set_transport(nullptr);
        cluster[static_cast<std::size_t>(r)]->shutdown();
      } catch (const std::exception& e) {
        errors[static_cast<std::size_t>(r)] = e.what();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  for (int r = 0; r < ranks; ++r) {
    if (!errors[static_cast<std::size_t>(r)].empty())
      out.error = "rank " + std::to_string(r) + ": " +
                  errors[static_cast<std::size_t>(r)];
    out.stats.push_back(cluster[static_cast<std::size_t>(r)]->stats());
  }
  return out;
}

}  // namespace

int main() {
  const bool smoke = std::getenv("MNS_BENCH_SMOKE") != nullptr;
  constexpr int kRanks = 2;
  transport::FaultConfig faulted;
  faulted.seed = 99;
  faulted.drop_rate = 0.15;
  faulted.dup_rate = 0.05;
  faulted.reorder_rate = 0.05;

  bench::JsonReport report("transport");
  bench::header("E20: socket transport parity (2 lock-step ranks over UDP)");
  std::printf("%-10s %7s %-12s %-7s %9s %10s %8s %9s %8s %7s\n", "family",
              "n", "workload", "mode", "rounds", "messages", "wire", "dgrams",
              "retrans", "parity");
  bool ok = true;

  for (Instance& inst : instances(smoke)) {
    Rng wrng(83);
    congest::WorkloadParams params;
    params.weights = gen::unique_random_weights(inst.graph, wrng);
    for (const char* workload : {"mst", "sssp.approx"}) {
      congest::Session ref_session =
          bench::make_session(inst.graph, inst.cert);
      const congest::RunReport ref =
          ref_session.solve(workload, params, congest::SolveOptions{});
      for (const bool with_faults : {false, true}) {
        const char* mode = with_faults ? "faulted" : "clean";
        DistResult dist = distributed_solve(
            inst, workload, params, kRanks,
            with_faults ? faulted : transport::FaultConfig{});
        bool parity = dist.error.empty();
        if (!dist.error.empty())
          std::fprintf(stderr, "bench_transport: %s/%s/%s: %s\n",
                       inst.family.c_str(), workload, mode,
                       dist.error.c_str());
        for (const congest::RunReport& r : dist.reports)
          if (!io::run_reports_identical(r, ref)) parity = false;
        if (!parity) ok = false;

        transport::TransportStats total;
        for (const transport::TransportStats& st : dist.stats) {
          total.rounds_exchanged =
              std::max(total.rounds_exchanged, st.rounds_exchanged);
          total.wire_records += st.wire_records;
          total.datagrams_sent += st.datagrams_sent;
          total.datagrams_received += st.datagrams_received;
          total.acks_sent += st.acks_sent;
          total.retransmits += st.retransmits;
          total.faults_dropped += st.faults_dropped;
          total.faults_duplicated += st.faults_duplicated;
          total.faults_held += st.faults_held;
        }
        std::printf(
            "%-10s %7d %-12s %-7s %9lld %10lld %8lld %9lld %8lld %7s\n",
            inst.family.c_str(), inst.graph.num_vertices(), workload, mode,
            ref.rounds, ref.messages, total.wire_records,
            total.datagrams_sent, total.retransmits, parity ? "yes" : "NO");
        report.row()
            .set("family", inst.family)
            .set("n", static_cast<long long>(inst.graph.num_vertices()))
            .set("workload", workload)
            .set("mode", mode)
            .set("ranks", kRanks)
            .set("rounds", ref.rounds)
            .set("messages", ref.messages)
            .set("rounds_exchanged", total.rounds_exchanged)
            .set("wire_records", total.wire_records)
            .set("parity", parity ? "yes" : "no")
            .set("wall_ms", dist.wall_ms)
            .set("datagrams_sent", total.datagrams_sent)
            .set("datagrams_received", total.datagrams_received)
            .set("acks_sent", total.acks_sent)
            .set("retransmits", total.retransmits)
            .set("faults_dropped", total.faults_dropped)
            .set("faults_duplicated", total.faults_duplicated)
            .set("faults_held", total.faults_held);
      }
    }
  }

  const bool wrote = report.write();
  if (!ok) {
    std::fprintf(stderr,
                 "bench_transport: PARITY VIOLATION — a socket-backed run "
                 "diverged from the single-process reference\n");
    return 1;
  }
  return wrote ? 0 : 1;
}
