// E21 — incremental updates vs. rebuild under graph churn (DESIGN.md §12).
//
// The paper's economy is "pay for structure once"; this harness pins that
// the payment SURVIVES churn. Each family runs one warm Session through a
// deterministic update schedule — heavy-edge re-weighting, a light-weight
// swap, an edge remove/re-insert toggle, and a vertex add/remove episode —
// and after every update solves the same workloads twice: on the warm
// session (incremental update()) and on a freshly rebuilt Session over the
// post-update graph (the rebuild straw man). Verified per update:
//
//   * payloads are identical to the rebuild oracle (MST edge set + weight +
//     fragments, exact SSSP distances, aggregate minima) — incremental
//     maintenance changes COST, never answers;
//   * a partial-cover probe partition placed away from the edit zone stays
//     a cache HIT with charged_construction_rounds == 0 across structural
//     edits (its entry MIGRATED live, entries_kept >= 1);
//   * over the schedule the warm session pays strictly fewer shortcut
//     builds and strictly fewer charged construction rounds than rebuilds.
//
// Families: planar grid, treewidth hubbed k-path, apex grid, clique-sum
// apexed chain — the four certificate pipelines. MNS_BENCH_SMOKE=1 shrinks
// the instances (CI); the schedule itself never shrinks, so every update
// path stays gated. Emits BENCH_churn.json (baseline: bench/baselines/
// churn.json).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "bench_instances.hpp"
#include "bench_util.hpp"
#include "core/partition.hpp"
#include "gen/apex.hpp"
#include "gen/planar.hpp"
#include "graph/delta.hpp"

namespace {

using namespace mns;
using congest::RunReport;

struct ChurnInstance {
  std::string family;
  Graph graph;
  std::vector<Weight> weights;
  StructuralCertificate cert;
  std::vector<PartId> probe_part_of;  ///< partial cover, away from the edits
  VertexId toggle_u = kInvalidVertex;  ///< the remove/re-insert edge
  VertexId toggle_v = kInvalidVertex;
};

/// Row-0 arcs of a grid-shaped id range: connected within the row, covering
/// nothing the update schedule touches (edits live in the LAST row / bag).
std::vector<PartId> row0_probe(VertexId n, VertexId row_len) {
  const Partition p = ring_sectors(n, 0, row_len, 2);
  return std::vector<PartId>(p.part_of_all().begin(), p.part_of_all().end());
}

ChurnInstance planar_instance(bool smoke) {
  const int side = smoke ? 8 : 16;
  ChurnInstance inst;
  inst.family = "planar";
  inst.graph = gen::grid_graph(side, side);
  Rng rng(static_cast<unsigned>(side));
  inst.weights = bench::dfs_light_weights(inst.graph, rng);
  inst.cert = greedy_certificate();
  inst.probe_part_of = row0_probe(inst.graph.num_vertices(), side);
  inst.toggle_u = static_cast<VertexId>((side - 1) * side + side - 2);
  inst.toggle_v = inst.toggle_u + 1;  // last-row horizontal edge
  return inst;
}

ChurnInstance treewidth_instance(bool smoke) {
  const VertexId n = smoke ? 96 : 192;
  ChurnInstance inst;
  inst.family = "treewidth";
  bench::HubbedKPath kt = bench::hubbed_kpath(n, 3);
  inst.graph = std::move(kt.graph);
  Rng rng(static_cast<unsigned>(n));
  inst.weights = bench::spine_light_weights(inst.graph, n, rng);
  inst.cert = treewidth_certificate(std::move(kt.decomposition));
  inst.probe_part_of = row0_probe(inst.graph.num_vertices(), 16);
  inst.toggle_u = n - 3;  // band edge (gap 2): heavy, in every bag with n-1
  inst.toggle_v = n - 1;
  return inst;
}

ChurnInstance apex_instance(bool smoke) {
  const int side = smoke ? 8 : 12;
  bench::GridApexInstance gi =
      bench::grid_apex_instance(side, side, static_cast<unsigned>(100 + side));
  ChurnInstance inst;
  inst.family = "apex";
  inst.graph = std::move(gi.graph);
  inst.weights = std::move(gi.weights);
  inst.cert = apex_certificate(gi.apices);
  inst.probe_part_of = row0_probe(inst.graph.num_vertices(), side);
  inst.toggle_u = static_cast<VertexId>((side - 1) * side + side - 2);
  inst.toggle_v = inst.toggle_u + 1;
  return inst;
}

ChurnInstance cliquesum_instance(bool smoke) {
  const int bags = smoke ? 2 : 3;
  Rng rng(static_cast<unsigned>(bags));
  bench::ApexChain chain = bench::apexed_chain_cliquesum(bags, rng);
  ChurnInstance inst;
  inst.family = "cliquesum";
  inst.cert = bench::apex_chain_certificate(chain);
  // Toggle the heaviest in-bag edge of the LAST bag (never bag 0, where the
  // probe lives) — endpoints are stable across the edge-only updates.
  const CliqueSumDecomposition& d = chain.decomposition;
  const BagId last = d.num_bags() - 1;
  EdgeId pick = kInvalidEdge;
  for (const EdgeId e : d.bag_edges(last))
    if (pick == kInvalidEdge || chain.weights[e] > chain.weights[pick])
      pick = e;
  inst.toggle_u = chain.graph.edge(pick).u;
  inst.toggle_v = chain.graph.edge(pick).v;
  inst.graph = std::move(chain.graph);
  inst.weights = std::move(chain.weights);
  inst.probe_part_of = row0_probe(inst.graph.num_vertices(), 16);
  return inst;
}

std::vector<congest::AggValue> ramp_values(VertexId n) {
  std::vector<congest::AggValue> v(static_cast<std::size_t>(n));
  for (VertexId i = 0; i < n; ++i)
    v[static_cast<std::size_t>(i)] = {(7 * i) % 101, i};
  return v;
}

/// Carries the probe's part map across a structural update, exactly as the
/// core migrated its cached entry (same maps, so the solve still hits).
std::vector<PartId> remap_probe(const std::vector<PartId>& part_of,
                                const congest::UpdateStats& stats,
                                VertexId new_n) {
  std::vector<PartId> out(static_cast<std::size_t>(new_n), kNoPart);
  for (std::size_t v = 0; v < part_of.size(); ++v) {
    const VertexId nv = stats.vertex_map[v];
    if (nv != kInvalidVertex) out[static_cast<std::size_t>(nv)] = part_of[v];
  }
  return out;
}

struct MstSummary {
  std::vector<EdgeId> sorted_edges;
  std::vector<PartId> fragment_of;
  Weight total = 0;
};

MstSummary summarize_mst(const RunReport& r, const std::vector<Weight>& w) {
  MstSummary s;
  s.sorted_edges = r.mst().edges;
  std::sort(s.sorted_edges.begin(), s.sorted_edges.end());
  s.fragment_of = r.mst().fragment_of;
  for (const EdgeId e : s.sorted_edges)
    s.total += w[static_cast<std::size_t>(e)];
  return s;
}

bool run_family(bench::JsonReport& report, ChurnInstance inst) {
  constexpr int kUpdates = 6;
  const unsigned tree_seed = 1;
  congest::Session warm =
      bench::make_session(inst.graph, inst.cert, tree_seed);
  std::vector<Weight> weights = inst.weights;
  std::vector<PartId> probe = inst.probe_part_of;

  // Warm-up (excluded from the tallies): pay construction once, as a
  // long-lived session already has by the time churn arrives.
  (void)warm.solve(congest::Mst{weights});
  (void)warm.solve(congest::Aggregate{Partition(probe),
                                      ramp_values(warm.graph().num_vertices())});

  long long warm_builds = 0, warm_charged = 0, warm_rounds = 0,
            warm_messages = 0;
  long long rb_builds = 0, rb_charged = 0, rb_rounds = 0, rb_messages = 0;
  long long kept_total = 0, invalidated_total = 0, subpaths_total = 0;
  bool ok = true;
  VertexId churn_vertex = kInvalidVertex;  // the u=4 addition, removed at u=5

  for (int u = 0; u < kUpdates; ++u) {
    UpdateBatch batch;
    if (u == 0 || u == 3) {
      // Re-weight the 4 heaviest edges to fresh, larger, distinct values:
      // every comparison Boruvka/SSSP ever makes is unchanged, so the warm
      // session's cached fragment partitions stay exact hits.
      std::vector<EdgeId> ids(weights.size());
      std::iota(ids.begin(), ids.end(), 0);
      std::sort(ids.begin(), ids.end(), [&](EdgeId a, EdgeId b) {
        return weights[static_cast<std::size_t>(a)] >
               weights[static_cast<std::size_t>(b)];
      });
      const Weight top = weights[static_cast<std::size_t>(ids[0])];
      for (int i = 0; i < 4 && i < static_cast<int>(ids.size()); ++i)
        batch.weight_changes.push_back({ids[static_cast<std::size_t>(i)],
                                        top + 1 + i});
    } else if (u == 1) {
      // Swap the two lightest weights: an honest payload-changing edit (the
      // distance profile moves; fragment evolution may too).
      EdgeId lo = 0, lo2 = 1;
      if (weights[1] < weights[0]) std::swap(lo, lo2);
      for (EdgeId e = 2; e < static_cast<EdgeId>(weights.size()); ++e) {
        if (weights[static_cast<std::size_t>(e)] <
            weights[static_cast<std::size_t>(lo)]) {
          lo2 = lo;
          lo = e;
        } else if (weights[static_cast<std::size_t>(e)] <
                   weights[static_cast<std::size_t>(lo2)]) {
          lo2 = e;
        }
      }
      batch.weight_changes.push_back(
          {lo, weights[static_cast<std::size_t>(lo2)]});
      batch.weight_changes.push_back(
          {lo2, weights[static_cast<std::size_t>(lo)]});
    } else if (u == 2) {
      batch.remove_edges.push_back(
          warm.graph().find_edge(inst.toggle_u, inst.toggle_v));
    } else if (u == 4) {
      // Re-insert the toggled edge AND attach one new vertex to its
      // endpoints — a compound structural batch.
      const Weight heavy =
          *std::max_element(weights.begin(), weights.end()) + 10;
      const VertexId ext = warm.graph().num_vertices();  // the new vertex
      batch.insert_edges.push_back({inst.toggle_u, inst.toggle_v, heavy});
      batch.insert_edges.push_back({inst.toggle_u, ext, heavy + 1});
      batch.insert_edges.push_back({inst.toggle_v, ext, heavy + 2});
      batch.add_vertices = 1;
    } else {  // u == 5
      batch.remove_vertices.push_back(churn_vertex);
    }

    const congest::UpdateStats stats = warm.update(batch, &weights);
    if (batch.structural()) {
      kept_total += static_cast<long long>(stats.entries_kept);
      invalidated_total += static_cast<long long>(stats.entries_invalidated);
      subpaths_total += static_cast<long long>(stats.subpaths_rebuilt);
      // The probe lives away from every edit: its entry must migrate.
      ok = ok && stats.entries_kept >= 1;
      probe = remap_probe(probe, stats, warm.graph().num_vertices());
    }
    if (u == 4) churn_vertex = warm.graph().num_vertices() - 1;

    // The rebuild straw man: a cold Session over the post-update graph with
    // the post-update certificate — what churn costs WITHOUT update().
    congest::Session rebuild =
        bench::make_session(warm.graph(), warm.certificate(), tree_seed);

    const VertexId n = warm.graph().num_vertices();
    const std::vector<congest::AggValue> values = ramp_values(n);
    RunReport w_mst = warm.solve(congest::Mst{weights});
    RunReport r_mst = rebuild.solve(congest::Mst{weights});
    RunReport w_agg = warm.solve(congest::Aggregate{Partition(probe), values});
    RunReport r_agg = rebuild.solve(congest::Aggregate{Partition(probe),
                                                       values});
    RunReport w_sp = warm.solve(congest::ExactSssp{weights, 0});
    RunReport r_sp = rebuild.solve(congest::ExactSssp{weights, 0});

    // Bit-identical answers: cost may differ, results never.
    const MstSummary wm = summarize_mst(w_mst, weights);
    const MstSummary rm = summarize_mst(r_mst, weights);
    const bool identical = wm.sorted_edges == rm.sorted_edges &&
                           wm.fragment_of == rm.fragment_of &&
                           wm.total == rm.total &&
                           w_sp.sssp().dist == r_sp.sssp().dist &&
                           w_agg.aggregate().min_of_part ==
                               r_agg.aggregate().min_of_part;
    // The surviving probe entry serves for free, even right after a
    // structural edit (u == 0: the whole warm MST is hits too).
    const bool probe_free = w_agg.cache_hits == 1 &&
                            w_agg.charged_construction_rounds == 0;
    const bool weight_only_free =
        u != 0 || (w_mst.charged_construction_rounds == 0 &&
                   w_mst.cache_misses == 0);
    ok = ok && identical && probe_free && weight_only_free;

    for (const RunReport* r : {&w_mst, &w_agg, &w_sp}) {
      warm_builds += r->cache_misses;
      warm_charged += r->charged_construction_rounds;
      warm_rounds += r->rounds;
      warm_messages += r->messages;
    }
    for (const RunReport* r : {&r_mst, &r_agg, &r_sp}) {
      rb_builds += r->cache_misses;
      rb_charged += r->charged_construction_rounds;
      rb_rounds += r->rounds;
      rb_messages += r->messages;
    }
  }

  // The point of the harness: churn without re-paying construction.
  ok = ok && warm_builds < rb_builds && warm_charged < rb_charged &&
       kept_total > 0;

  std::printf(
      "%-10s n=%5d  updates=%d  builds %lld vs %lld  charged %lld vs %lld  "
      "kept=%lld invalidated=%lld subpaths=%lld  %s\n",
      inst.family.c_str(), warm.graph().num_vertices(), kUpdates, warm_builds,
      rb_builds, warm_charged, rb_charged, kept_total, invalidated_total,
      subpaths_total, ok ? "verified" : "FAILED");
  report.row()
      .set("family", inst.family)
      .set("n", static_cast<long long>(warm.graph().num_vertices()))
      .set("updates", static_cast<long long>(kUpdates))
      .set("warm_builds", warm_builds)
      .set("rebuild_builds", rb_builds)
      .set("warm_charged_rounds", warm_charged)
      .set("rebuild_charged_rounds", rb_charged)
      .set("warm_rounds", warm_rounds)
      .set("rebuild_rounds", rb_rounds)
      .set("warm_messages", warm_messages)
      .set("rebuild_messages", rb_messages)
      .set("entries_kept", kept_total)
      .set("entries_invalidated", invalidated_total)
      .set("subpaths_rebuilt", subpaths_total)
      .set("verified", ok ? "yes" : "no");
  return ok;
}

}  // namespace

int main() {
  const bool smoke = std::getenv("MNS_BENCH_SMOKE") != nullptr;
  bench::header("E21: incremental updates vs rebuild under churn");
  bench::JsonReport report("churn");
  bool all_ok = true;
  all_ok = run_family(report, planar_instance(smoke)) && all_ok;
  all_ok = run_family(report, treewidth_instance(smoke)) && all_ok;
  all_ok = run_family(report, apex_instance(smoke)) && all_ok;
  all_ok = run_family(report, cliquesum_instance(smoke)) && all_ok;
  std::printf("\n%s\n",
              all_ok ? "all families: warm update beats rebuild, answers "
                       "oracle-identical"
                     : "FAILURE: see rows above");
  const bool written = report.write();
  return all_ok && written ? 0 : 1;
}
