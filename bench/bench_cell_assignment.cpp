// E8 (Lemmas 4-6): cell-assignability — every part misses at most 2 of the
// cells it intersects, and no cell serves more than beta parts where the
// gate parameter s bounds beta <= 2s. Planar cells + adversarial parts.
#include <cstdio>

#include "bench_util.hpp"
#include "gen/planar.hpp"
#include "structure/cells.hpp"
#include "structure/gates.hpp"

using namespace mns;

int main() {
  bench::header("E8: cell assignment (Lemmas 4-6 targets)");
  bench::JsonReport report("cell_assignment");
  std::printf("%8s %7s %7s %8s %8s %10s %12s\n", "n", "cells", "parts",
              "beta", "2s ref", "miss>2?", "max missing");
  for (int n : {2000, 8000}) {
    for (int cell_seeds : {16, 64}) {
      for (int part_seeds : {8, 32, 128}) {
        Rng rng(static_cast<unsigned>(n + cell_seeds * 7 + part_seeds));
        EmbeddedGraph eg = gen::random_maximal_planar(n, rng);
        const Graph& g = eg.graph();
        Partition cells_as_parts = voronoi_partition(g, cell_seeds, rng);
        std::vector<CellId> cell_of(g.num_vertices());
        for (VertexId v = 0; v < g.num_vertices(); ++v)
          cell_of[v] = cells_as_parts.part_of(v);
        CellPartition cells(cell_of);
        Partition parts = voronoi_partition(g, part_seeds, rng);

        std::vector<std::vector<CellId>> inter =
            cell_intersections(cells, parts.all_members());
        CellAssignment a = assign_cells(inter, cells.num_cells());
        std::size_t worst_missing = 0;
        int violations = 0;
        for (const auto& miss : a.missing_cells_of_part) {
          worst_missing = std::max(worst_missing, miss.size());
          if (miss.size() > 2) ++violations;
        }
        GateSystem gs = build_boundary_gates(g, cells);
        double s = 0;
        std::string err = validate_gates(g, cells, gs, &s);
        require(err.empty(), "E8: gate validation failed");
        std::printf("%8d %7d %7d %8d %8.1f %10d %12zu\n", n,
                    cells.num_cells(), parts.num_parts(), a.beta, 2 * s,
                    violations, worst_missing);
        report.row().set("n", n).set("cells", cells.num_cells())
            .set("parts", parts.num_parts()).set("beta", a.beta)
            .set("gate_s", s).set("violations", violations)
            .set("max_missing", worst_missing);
      }
    }
  }
  return 0;
}
