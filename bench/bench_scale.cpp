// E18 (the memory thesis, DESIGN.md §9): the packed-wire + arena round
// engine runs planar and clique-sum instances at n = 2^20 through the full
// Session pipeline (mst, then sssp.approx) inside a stated peak-RSS budget.
//
// Two instances, one per streamed generator path:
//
//   planar    — the 1024 x 1024 grid (gen::grid_graph: edges stream straight
//               into the builder; no embedding rotations are materialized),
//               greedy certificate, uniform-random weights (capacity regime,
//               see bench_instances.hpp: adversarial weights multiply
//               traffic ~4x without changing what this gate measures).
//   cliquesum — the apexed-grid chain (bench_instances) at the bag count
//               whose vertex total reaches 2^20, through the full Theorem 6
//               pipeline (folding + Lemma 9 apex-aware local oracles), with
//               its serpentine chain weights.
//
// Every row records the Session telemetry (rounds/messages — deterministic,
// diffed by the CI gate) plus the process peak RSS and its verdict against
// the DESIGN.md §9 budget
//
//     budget(n) = kBudgetFixedBytes + kBudgetPerVertexBytes * n
//
// `rss_budget_ok` is the gated field: peak RSS itself varies across
// machines/allocators (mnsctl diff masks it as volatile), but whether the
// run fits the stated envelope must not. Results are verified against the
// sequential oracles (Kruskal / Dijkstra); any mismatch or budget violation
// exits nonzero.
//
// Set MNS_BENCH_SMOKE=1 for the n = 2^14 shapes of the same two instances
// (CI); the committed baseline bench/baselines/scale.json is the smoke run.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_instances.hpp"
#include "bench_util.hpp"
#include "congest/mst.hpp"
#include "congest/session.hpp"
#include "gen/planar.hpp"

using namespace mns;

namespace {

// DESIGN.md §9 peak-RSS budget: fixed process overhead (binary, runtime,
// shortcut-engine registry, JSON report) plus a per-vertex envelope covering
// the instance (graph + weights), the session (tree + cached shortcuts), and
// the dominant cost — the aggregation engine's per-phase participation
// state, which grows superlinearly in n (measured ~x6.9 RSS per x4 vertices
// on the planar family: 438 MiB at 2^16, 3.0 GiB at 2^18). The LINEAR
// envelope is therefore calibrated at the binding top scale (n = 2^20,
// ~25% headroom over the extrapolated ~21 GiB peak) and is deliberately
// loose at smoke sizes — the verdict still catches order-of-magnitude
// regressions there, and the n = 2^20 rows are the real subject.
constexpr long long kBudgetFixedBytes = 256LL << 20;   // 256 MiB
constexpr long long kBudgetPerVertexBytes = 26LL << 10;  // 26 KiB / vertex

[[nodiscard]] long long rss_budget_bytes(VertexId n) {
  return kBudgetFixedBytes + kBudgetPerVertexBytes * static_cast<long long>(n);
}

/// Runs mst then sssp.approx on one instance through a single Session and
/// records one row per workload. Returns false on any verification failure
/// or budget violation.
bool run_instance(bench::JsonReport& report, const char* family, Graph graph,
                  std::vector<Weight> weights, StructuralCertificate cert) {
  const VertexId n = graph.num_vertices();
  const EdgeId m = graph.num_edges();
  const long long budget = rss_budget_bytes(n);
  congest::Session session = bench::make_session(graph, std::move(cert));

  bool ok = true;
  auto emit = [&](const char* workload, const congest::RunReport& r,
                  bool verified) {
    const long long rss = bench::peak_rss_bytes();
    const bool fits = rss <= budget;
    std::printf("%-10s n=%8d m=%8d  %-12s rounds=%9lld  messages=%12lld  "
                "peak_rss=%6.1f MiB  budget=%6.1f MiB %s%s\n",
                family, n, m, workload, r.total_rounds(), r.messages,
                static_cast<double>(rss) / (1 << 20),
                static_cast<double>(budget) / (1 << 20),
                verified ? "" : "MISMATCH ", fits ? "" : "OVER-BUDGET");
    report.row()
        .set("family", family)
        .set("n", n)
        .set("m", m)
        .set("workload", workload)
        .set_run(r)
        .set("rss_budget_bytes", budget)
        .set("rss_budget_ok", fits ? "yes" : "no")
        .set("verified", verified ? "yes" : "no");
    ok = ok && verified && fits;
  };

  // -- mst: Boruvka over shortcut-backed aggregations, checked edge-for-edge
  // against Kruskal --
  congest::RunReport mst = session.solve(congest::Mst{weights});
  std::vector<EdgeId> oracle_mst = congest::kruskal_mst(graph, weights);
  std::sort(oracle_mst.begin(), oracle_mst.end());
  emit("mst", mst, mst.mst().edges == oracle_mst);

  // -- sssp.approx: source-independent long Voronoi cells (the cacheable
  // configuration benched everywhere else), checked against Dijkstra --
  congest::ApproxSssp query{std::move(weights), /*source=*/0};
  query.epsilon = 0.25;
  query.num_seeds = std::max<VertexId>(
      8, static_cast<VertexId>(std::sqrt(static_cast<double>(n))) / 8);
  query.repartition_growth = 1.0;
  query.wavefront_seeds = false;
  congest::RunReport sssp = session.solve(query);
  ShortestPathResult oracle = dijkstra(graph, query.weights, 0);
  bool approx_ok = true;
  const std::vector<Weight>& dist = sssp.sssp().dist;
  for (VertexId v = 0; v < n && approx_ok; ++v) {
    if (oracle.dist[v] == kUnreachedWeight) continue;
    if (dist[v] < oracle.dist[v]) approx_ok = false;
    if (static_cast<double>(dist[v]) >
        (1.0 + query.epsilon + 1e-9) * static_cast<double>(oracle.dist[v]))
      approx_ok = false;
  }
  emit("sssp.approx", sssp, approx_ok);
  return ok;
}

}  // namespace

int main() {
  const bool smoke = std::getenv("MNS_BENCH_SMOKE") != nullptr;
  bench::header("E18: memory-lean round engine at n = 2^20");
  bench::JsonReport report("scale");
  std::printf("peak-RSS budget: %lld MiB + %lld B/vertex (DESIGN.md §9); "
              "smoke=%d\n\n",
              kBudgetFixedBytes >> 20, kBudgetPerVertexBytes, smoke);

  bool all_ok = true;

  // -- planar: side x side grid, streamed build --
  {
    const int side = smoke ? 128 : 1024;  // n = 2^14 / 2^20
    Graph g = gen::grid_graph(side, side);
    Rng rng(static_cast<unsigned>(side));
    std::vector<Weight> w = bench::uniform_weights(g, rng);
    all_ok &= run_instance(report, "planar", std::move(g), std::move(w),
                           greedy_certificate());
  }

  // -- clique-sum: apexed-grid chain; 256 fresh vertices + 1 apex per bag
  // (n = 256 * bags + 1), so 2^14 / 2^20 vertices at 64 / 4096 bags --
  {
    const int bags = smoke ? 64 : 4096;
    Rng rng(static_cast<unsigned>(bags));
    bench::ApexChain chain = bench::apexed_chain_cliquesum(bags, rng);
    StructuralCertificate cert = bench::apex_chain_certificate(chain);
    all_ok &= run_instance(report, "cliquesum", std::move(chain.graph),
                           std::move(chain.weights), std::move(cert));
  }

  all_ok &= report.write();
  return all_ok ? 0 : 1;
}
