// E16 (the Session thesis): multi-query traffic through one congest::Session
// vs cold per-call runs, on all four certificate families (planar,
// treewidth, apex, clique-sum). Two traffic patterns:
//
//   (a) k-source SSSP — k (1+eps) distance queries from spread-out sources
//       with source-independent Voronoi cells: the warm session builds each
//       partition's shortcut once and serves the remaining k-1 queries from
//       the cache, while the cold baseline re-pays construction per query.
//   (b) an MST -> min-cut -> SSSP analytics pipeline — one session amortizes
//       the partitions the workloads share (singleton, whole-network,
//       revisited Boruvka fragments) across all three.
//   (c) save -> restore across the process boundary (DESIGN.md §8) — a
//       warmed session is snapshotted and restored; the restored solves must
//       be BIT-IDENTICAL to the in-process warm solves and pay ZERO
//       construction charges (the snapshot carries the built shortcuts).
//
// "Beating" is deterministic, not a wall-clock artifact: warm total rounds
// (measured + charged construction, DESIGN.md §2) and shortcut builds
// (cache misses) must be strictly lower than cold at every size; measured
// rounds and all results are verified BIT-IDENTICAL to the cold runs and
// checked against the sequential oracles (Dijkstra / Kruskal /
// Stoer-Wagner). Wall time is reported alongside. Exits nonzero on any
// violation, so CI catches regressions.
//
// Set MNS_BENCH_SMOKE=1 to run the smallest instance per family (CI).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_instances.hpp"
#include "bench_util.hpp"
#include "congest/session.hpp"
#include "gen/apex.hpp"
#include "io/report_json.hpp"

using namespace mns;

namespace {

struct Instance {
  std::string family;
  Graph graph;
  std::vector<Weight> weights;
  StructuralCertificate cert;
};

std::vector<Instance> instances(bool smoke) {
  std::vector<Instance> out;
  for (int side : smoke ? std::vector<int>{16} : std::vector<int>{16, 32, 48}) {
    Graph g = gen::grid(side, side).graph();
    Rng rng(static_cast<unsigned>(side));
    std::vector<Weight> w = bench::dfs_light_weights(g, rng);
    out.push_back({"planar", std::move(g), std::move(w),
                   greedy_certificate()});
  }
  for (VertexId n : smoke ? std::vector<VertexId>{256}
                          : std::vector<VertexId>{256, 1024, 4096}) {
    Rng rng(static_cast<unsigned>(n));
    bench::HubbedKPath kt = bench::hubbed_kpath(n, 3);
    std::vector<Weight> w = bench::spine_light_weights(kt.graph, n, rng);
    out.push_back({"treewidth", std::move(kt.graph), std::move(w),
                   treewidth_certificate(std::move(kt.decomposition))});
  }
  for (int side : smoke ? std::vector<int>{16} : std::vector<int>{16, 32, 48}) {
    Rng rng(static_cast<unsigned>(100 + side));
    gen::ApexResult ar =
        gen::add_apices(gen::grid(side, side).graph(), 1, 0.10, rng);
    std::vector<Weight> w = bench::dfs_light_weights(ar.graph, rng);
    out.push_back({"apex", std::move(ar.graph), std::move(w),
                   apex_certificate(ar.apices)});
  }
  for (int bags : smoke ? std::vector<int>{4} : std::vector<int>{4, 16, 32}) {
    Rng rng(static_cast<unsigned>(bags));
    bench::ApexChain chain = bench::apexed_chain_cliquesum(bags, rng);
    StructuralCertificate cert = bench::apex_chain_certificate(chain);
    out.push_back({"cliquesum", std::move(chain.graph),
                   std::move(chain.weights), std::move(cert)});
  }
  return out;
}

/// Accumulated cost of a traffic batch.
struct Totals {
  long long total_rounds = 0;  ///< measured + charged
  long long charged = 0;
  long long messages = 0;
  long long misses = 0;
  long long hits = 0;
  double wall_ms = 0;
  void add(const congest::RunReport& r) {
    total_rounds += r.total_rounds();
    charged += r.charged_construction_rounds;
    messages += r.messages;
    misses += r.cache_misses;
    hits += r.cache_hits;
    wall_ms += r.wall_ms;
  }
};

congest::ApproxSssp sssp_query(const Instance& inst, VertexId source) {
  congest::ApproxSssp q{inst.weights, source};
  q.epsilon = 0.25;
  const VertexId n = inst.graph.num_vertices();
  q.num_seeds = std::max<VertexId>(
      8, static_cast<VertexId>(std::sqrt(static_cast<double>(n))) / 8);
  q.repartition_growth = 1.0;
  q.wavefront_seeds = false;  // source-independent cells: cacheable
  return q;
}

bool sssp_verified(const Instance& inst, const std::vector<Weight>& dist,
                   VertexId source, double eps) {
  ShortestPathResult oracle = dijkstra(inst.graph, inst.weights, source);
  for (VertexId v = 0; v < inst.graph.num_vertices(); ++v) {
    if (oracle.dist[v] == kUnreachedWeight || oracle.dist[v] == 0) continue;
    if (dist[v] < oracle.dist[v]) return false;
    if (static_cast<double>(dist[v]) >
        (1.0 + eps + 1e-9) * static_cast<double>(oracle.dist[v]))
      return false;
  }
  return true;
}

/// (a) k-source SSSP: one warm session vs k cold per-call runs.
bool run_ksource(bench::JsonReport& report, const Instance& inst, int k) {
  const VertexId n = inst.graph.num_vertices();
  std::vector<VertexId> sources;
  for (int i = 0; i < k; ++i)
    sources.push_back(static_cast<VertexId>(i) * n / static_cast<VertexId>(k));

  bool ok = true;
  Totals warm, cold;
  std::vector<std::vector<Weight>> warm_dist;
  std::vector<long long> warm_rounds;
  congest::Session session = bench::make_session(inst.graph, inst.cert);
  for (VertexId src : sources) {
    congest::RunReport r = session.solve(sssp_query(inst, src));
    ok = ok && sssp_verified(inst, r.sssp().dist, src, 0.25);
    warm_dist.push_back(r.sssp().dist);
    warm_rounds.push_back(r.rounds);
    warm.add(r);
  }
  congest::SolveOptions cold_opt;
  cold_opt.use_cache = false;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    congest::Session fresh = bench::make_session(inst.graph, inst.cert);
    congest::RunReport r = fresh.solve(sssp_query(inst, sources[i]), cold_opt);
    // Bit-identical distances AND measured rounds: the cache may only save
    // construction, never change the answer or the measured schedule.
    ok = ok && r.sssp().dist == warm_dist[i] && r.rounds == warm_rounds[i];
    cold.add(r);
  }
  const bool beats = warm.total_rounds < cold.total_rounds &&
                     warm.misses < cold.misses;
  ok = ok && beats;
  std::printf("%-10s n=%6d  k=%d sssp  warm: rounds=%8lld builds=%3lld "
              "hits=%3lld %8.1fms   cold: rounds=%8lld builds=%3lld "
              "%8.1fms  %s%s\n",
              inst.family.c_str(), n, k, warm.total_rounds, warm.misses,
              warm.hits, warm.wall_ms, cold.total_rounds, cold.misses,
              cold.wall_ms, beats ? "warm-wins" : "WARM-LOSES",
              ok ? "" : " MISMATCH");
  report.row().set("mode", "ksource-sssp").set("family", inst.family)
      .set("n", n).set("k", k)
      .set("warm_total_rounds", warm.total_rounds)
      .set("warm_charged", warm.charged)
      .set("warm_messages", warm.messages)
      .set("warm_builds", warm.misses).set("warm_hits", warm.hits)
      .set("warm_wall_ms", warm.wall_ms)
      .set("cold_total_rounds", cold.total_rounds)
      .set("cold_charged", cold.charged)
      .set("cold_messages", cold.messages)
      .set("cold_builds", cold.misses).set("cold_wall_ms", cold.wall_ms)
      .set("verified", ok ? "yes" : "no");
  return ok;
}

/// (b) MST -> min-cut -> SSSP pipeline: one session vs per-call cold runs.
bool run_pipeline(bench::JsonReport& report, const Instance& inst) {
  const VertexId n = inst.graph.num_vertices();
  congest::Session::WorkloadParams params;
  params.weights = inst.weights;
  params.num_trees = 6;
  params.epsilon = 0.25;
  params.num_seeds = std::max<VertexId>(
      8, static_cast<VertexId>(std::sqrt(static_cast<double>(n))) / 8);
  params.repartition_growth = 1.0;
  params.wavefront_seeds = false;
  const char* stages[] = {"mst", "mincut", "sssp.approx"};

  bool ok = true;
  Totals warm, cold;
  std::vector<congest::RunReport> warm_runs, cold_runs;
  congest::Session session = bench::make_session(inst.graph, inst.cert);
  for (const char* stage : stages) {
    warm_runs.push_back(session.solve(stage, params));
    warm.add(warm_runs.back());
  }
  congest::SolveOptions cold_opt;
  cold_opt.use_cache = false;
  for (const char* stage : stages) {
    congest::Session fresh = bench::make_session(inst.graph, inst.cert);
    cold_runs.push_back(fresh.solve(stage, params, cold_opt));
    cold.add(cold_runs.back());
  }

  // Results and measured rounds bit-identical warm vs cold; answers checked
  // against the sequential oracles.
  std::vector<EdgeId> kruskal = congest::kruskal_mst(inst.graph, inst.weights);
  std::sort(kruskal.begin(), kruskal.end());
  ok = ok && warm_runs[0].mst().edges == kruskal &&
       cold_runs[0].mst().edges == kruskal;
  ok = ok && warm_runs[1].min_cut().value == cold_runs[1].min_cut().value;
  if (n <= 400) {
    const Weight exact = congest::exact_min_cut(inst.graph, inst.weights);
    ok = ok && warm_runs[1].min_cut().value >= exact &&
         warm_runs[1].min_cut().value <= 2 * exact + 1;
  }
  ok = ok && warm_runs[2].sssp().dist == cold_runs[2].sssp().dist &&
       sssp_verified(inst, warm_runs[2].sssp().dist, 0, 0.25);
  for (int i = 0; i < 3; ++i)
    ok = ok && warm_runs[i].rounds == cold_runs[i].rounds;

  const bool beats = warm.total_rounds < cold.total_rounds &&
                     warm.misses < cold.misses;
  ok = ok && beats;
  std::printf("%-10s n=%6d  pipeline   warm: rounds=%8lld builds=%3lld "
              "hits=%3lld %8.1fms   cold: rounds=%8lld builds=%3lld "
              "%8.1fms  %s%s\n",
              inst.family.c_str(), n, warm.total_rounds, warm.misses,
              warm.hits, warm.wall_ms, cold.total_rounds, cold.misses,
              cold.wall_ms, beats ? "warm-wins" : "WARM-LOSES",
              ok ? "" : " MISMATCH");
  report.row().set("mode", "pipeline").set("family", inst.family).set("n", n)
      .set("warm_total_rounds", warm.total_rounds)
      .set("warm_charged", warm.charged)
      .set("warm_messages", warm.messages)
      .set("warm_builds", warm.misses).set("warm_hits", warm.hits)
      .set("warm_wall_ms", warm.wall_ms)
      .set("cold_total_rounds", cold.total_rounds)
      .set("cold_charged", cold.charged)
      .set("cold_messages", cold.messages)
      .set("cold_builds", cold.misses).set("cold_wall_ms", cold.wall_ms)
      .set("verified", ok ? "yes" : "no");
  return ok;
}

/// (c) save -> restore: warm a session, snapshot it, restore, and require
/// the restored solves to be bit-identical with zero construction charges.
bool run_restore(bench::JsonReport& report, const Instance& inst) {
  const VertexId n = inst.graph.num_vertices();
  congest::Session::WorkloadParams params;
  params.weights = inst.weights;
  params.epsilon = 0.25;
  params.num_seeds = std::max<VertexId>(
      8, static_cast<VertexId>(std::sqrt(static_cast<double>(n))) / 8);
  params.repartition_growth = 1.0;
  params.wavefront_seeds = false;
  const char* stages[] = {"mst", "sssp.approx"};
  const std::string path = "BENCH_session_restore_tmp.mns";

  bool ok = true;
  congest::Session warm = bench::make_session(inst.graph, inst.cert);
  for (const char* stage : stages) (void)warm.solve(stage, params);  // prime
  warm.save(path, inst.weights);
  std::vector<congest::RunReport> warm_runs;
  for (const char* stage : stages)
    warm_runs.push_back(warm.solve(stage, params));

  congest::Session restored = congest::Session::restore(path);
  for (std::size_t i = 0; i < std::size(stages); ++i) {
    congest::RunReport r = restored.solve(stages[i], params);
    const bool identical = mns::io::run_reports_identical(warm_runs[i], r);
    const bool free_of_charge =
        r.charged_construction_rounds == 0 && r.cache_misses == 0;
    ok = ok && identical && free_of_charge;
    std::printf("%-10s n=%6d  restore %-12s rounds=%8lld charged=%lld "
                "hits=%3lld  %s\n",
                inst.family.c_str(), n, stages[i], r.rounds,
                r.charged_construction_rounds, r.cache_hits,
                identical && free_of_charge ? "bit-identical"
                                            : "RESTORE-MISMATCH");
    report.row().set("mode", "restore").set("family", inst.family).set("n", n)
        .set("workload", stages[i]).set_run(r)
        .set("verified", identical && free_of_charge ? "yes" : "no");
  }
  std::remove(path.c_str());
  return ok;
}

}  // namespace

int main() {
  const bool smoke = std::getenv("MNS_BENCH_SMOKE") != nullptr;
  bench::header("E16: session multi-query traffic (warm cache vs cold calls)");
  bench::JsonReport report("session");
  std::printf("k-source (1+eps) SSSP batches and MST->mincut->SSSP pipelines; "
              "smoke=%d\n\n", smoke);
  bool all_ok = true;
  for (const Instance& inst : instances(smoke)) {
    all_ok &= run_ksource(report, inst, /*k=*/6);
    all_ok &= run_pipeline(report, inst);
    all_ok &= run_restore(report, inst);
  }
  all_ok &= report.write();
  std::printf("\n%s\n", all_ok ? "all warm sessions beat cold construction, "
                                 "restored snapshots solve bit-identically "
                                 "for free, all results oracle-verified"
                               : "FAILURE: see rows above");
  return all_ok ? 0 : 1;
}
