// E5 (Lemmas 2-3): a genus-g, diameter-D graph with l vortices of depth k
// has treewidth O((g+1) k l D) — measured width of the constructed
// decompositions (surface BFS + dual tree + vortex augmentation) against the
// bound's shape.
#include <cstdio>

#include "bench_util.hpp"
#include "gen/surfaces.hpp"
#include "gen/vortex.hpp"
#include "structure/surface_decomposition.hpp"

using namespace mns;

int main() {
  bench::header("E5: Genus+Vortex treewidth (Lemmas 2-3 targets)");
  bench::JsonReport report("vortex_treewidth");
  std::printf("%3s %3s %3s %4s %6s %7s %7s %18s\n", "g", "k", "l", "s", "n",
              "height", "width", "ref (g+1)*k*l*h");
  for (int genus : {0, 1, 2}) {
    for (int s : {8, 12, 16}) {
      for (int l : {0, 1, 2}) {
        for (int depth : {1, 2, 3}) {
          if (l == 0 && depth > 1) continue;  // duplicate row
          Rng rng(static_cast<unsigned>(genus * 100 + s * 10 + l + depth));
          EmbeddedGraph base = gen::surface_grid(s, s, genus, rng);

          // Attach l vortices on disjoint simple faces.
          Graph current = base.graph();
          std::vector<VortexSpec> specs;
          std::vector<char> used(base.graph().num_vertices(), 0);
          for (int f = 0; f < base.num_faces() &&
                          static_cast<int>(specs.size()) < l;
               ++f) {
            if (!base.face_is_simple_cycle(f)) continue;
            auto fv = base.face_vertices(f);
            bool ok = true;
            for (VertexId v : fv)
              if (used[v]) ok = false;
            if (!ok) continue;
            for (VertexId v : fv) used[v] = 1;
            gen::VortexResult vr = gen::add_vortex(current, fv, depth, 4, rng);
            current = std::move(vr.graph);
            specs.push_back(std::move(vr.vortex));
          }
          if (static_cast<int>(specs.size()) < l) continue;

          TreeDecomposition td_base = surface_bfs_decomposition(base, 0);
          TreeDecomposition td =
              specs.empty() ? std::move(td_base)
                            : augment_with_vortices(td_base, current, specs);
          std::string err = td.validate(current);
          require(err.empty(), "E5: invalid decomposition");
          int height = bfs(base.graph(), 0).max_distance();
          std::printf("%3d %3d %3d %4d %6d %7d %7d %18d\n", genus, depth, l, s,
                      current.num_vertices(), height, td.width(),
                      (genus + 1) * depth * std::max(1, l) * height);
          report.row().set("genus", genus).set("vortex_depth", depth)
              .set("vortices", l).set("s", s)
              .set("n", current.num_vertices()).set("height", height)
              .set("width", td.width());
        }
      }
    }
  }
  return 0;
}
