// E14 (supplementary, [HIZ16a] substitution check): the fully distributed
// shortcut construction's measured round cost and the quality of what it
// builds, versus the centralized construction on identical instances. This
// quantifies the "construction charged as one aggregation" substitution used
// by the MST benches.
#include <cstdio>

#include "bench_util.hpp"
#include "congest/distributed_shortcut.hpp"
#include "congest/simulator.hpp"
#include "gen/basic.hpp"
#include "gen/planar.hpp"

using namespace mns;

namespace {

void run_case(bench::JsonReport& report, const char* family, const Graph& g,
              const RootedTree& t, const Partition& parts, int cap) {
  congest::Simulator sim(g);
  congest::DistributedShortcutResult dist =
      congest::distributed_capped_greedy(sim, t, parts, cap);
  ShortcutMetrics md = measure_shortcut(g, t, parts, dist.shortcut);
  BuildResult central = bench::engine().build(g, t, parts,
                                              greedy_certificate());
  std::printf("%-18s n=%6d cap=%2d  construction=%6lld rounds  "
              "q_dist=%6lld (b=%3d c=%3d)  q_central=%6lld\n",
              family, g.num_vertices(), cap, dist.rounds, md.quality,
              md.block, md.congestion, central.metrics.quality);
  report.row().set("family", family).set("n", g.num_vertices())
      .set("cap", cap).set("construction_rounds", dist.rounds)
      .set("messages", sim.messages_sent()).set_metrics(md)
      .set("central_quality", central.metrics.quality);
}

}  // namespace

int main() {
  bench::header(
      "E14: distributed construction cost vs centralized ([HIZ16a] check)");
  bench::JsonReport report("distributed_construction");
  for (int n : {1002, 4002, 16002}) {
    Graph g = gen::wheel(n);
    RootedTree t = RootedTree::from_bfs(bfs(g, 0), 0);
    Partition parts = ring_sectors(n, 1, n - 1, 8);
    for (int cap : {2, 8}) run_case(report, "wheel", g, t, parts, cap);
  }
  for (int s : {24, 48}) {
    EmbeddedGraph eg = gen::grid(s, s);
    const Graph& g = eg.graph();
    RootedTree t = bench::center_tree(g);
    Partition parts = grid_serpentines(s, s, std::max(2, s / 8));
    for (int cap : {2, 8}) run_case(report, "grid/serpentine", g, t, parts, cap);
  }
  {
    Rng rng(4);
    EmbeddedGraph eg = gen::random_maximal_planar(4000, rng);
    const Graph& g = eg.graph();
    RootedTree t = bench::center_tree(g);
    Partition parts = voronoi_partition(g, 64, rng);
    for (int cap : {2, 8}) run_case(report, "maxplanar", g, t, parts, cap);
  }
  return 0;
}
