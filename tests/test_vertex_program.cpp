// Contract tests for the vertex-parallel round engine (DESIGN.md §7): the
// WorkerPool primitive, PerShard merging, and — above all — the determinism
// contract: a VertexProgram produces bit-identical rounds, messages, inbox
// traffic and results at every thread count, including frontiers large
// enough to actually cross kParallelGrain and exercise the pool.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "congest/bfs.hpp"
#include "congest/primitives.hpp"
#include "congest/vertex_program.hpp"
#include "gen/basic.hpp"
#include "gen/planar.hpp"
#include "graph/algorithms.hpp"

namespace mns {
namespace {

using congest::Delivery;
using congest::ExecutionPolicy;
using congest::Inbox;
using congest::Message;
using congest::PerShard;
using congest::ShardContext;
using congest::Simulator;
using congest::VertexSender;
using congest::WorkerPool;

TEST(WorkerPool, RunsEveryTaskExactlyOnce) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  std::vector<std::atomic<int>> hits(64);
  pool.run(64, [&](int t) { ++hits[static_cast<std::size_t>(t)]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Reusable across generations, including fewer tasks than threads.
  std::atomic<int> total{0};
  pool.run(2, [&](int) { ++total; });
  EXPECT_EQ(total.load(), 2);
}

TEST(WorkerPool, PropagatesTheFirstTaskException) {
  WorkerPool pool(3);
  EXPECT_THROW(
      pool.run(8,
               [&](int t) {
                 if (t % 2 == 1) throw std::runtime_error("task failed");
               }),
      std::runtime_error);
  // The pool survives a throwing generation.
  std::atomic<int> total{0};
  pool.run(3, [&](int) { ++total; });
  EXPECT_EQ(total.load(), 3);
}

TEST(PerShard, MergesInShardOrder) {
  PerShard<std::vector<int>> acc(3);
  acc[2].push_back(30);
  acc[0].push_back(10);
  acc[1].push_back(20);
  acc[0].push_back(11);
  std::vector<int> merged;
  acc.for_each([&](std::vector<int>& part) {
    merged.insert(merged.end(), part.begin(), part.end());
  });
  EXPECT_EQ(merged, (std::vector<int>{10, 11, 20, 30}));
}

// A deliberately stateful program: token counting over a large frontier
// (every vertex echoes a value to every neighbour; receivers keep a running
// minimum), sized so the parallel path genuinely engages the pool.
struct EchoMinProgram {
  const Graph& g;
  std::vector<std::int64_t> best;
  std::vector<VertexId> everyone;
  int rounds_left;
  PerShard<char> changed;
  bool running = true;

  EchoMinProgram(Simulator& sim, int rounds)
      : g(sim.graph()), rounds_left(rounds), changed(sim.num_shards()) {
    const VertexId n = g.num_vertices();
    best.resize(static_cast<std::size_t>(n));
    for (VertexId v = 0; v < n; ++v)
      best[static_cast<std::size_t>(v)] = (v * 2654435761LL) % 100000;
    everyone.resize(static_cast<std::size_t>(n));
    std::iota(everyone.begin(), everyone.end(), 0);
  }

  [[nodiscard]] std::span<const VertexId> frontier() const {
    return running && rounds_left > 0 ? std::span<const VertexId>(everyone)
                                      : std::span<const VertexId>();
  }
  void send(VertexId v, VertexSender& out) {
    for (EdgeId e : g.incident_edges(v))
      out.send(e, Message{0, 0, best[static_cast<std::size_t>(v)]});
  }
  void receive(VertexId v, Inbox inbox,
               const ShardContext& ctx) {
    for (const Delivery& d : inbox)
      if (d.msg.value < best[static_cast<std::size_t>(v)]) {
        best[static_cast<std::size_t>(v)] = d.msg.value;
        changed[ctx.shard] = 1;
      }
  }
  void end_round() {
    --rounds_left;
    bool any = false;
    changed.for_each([&](char& flag) {
      any = any || flag != 0;
      flag = 0;
    });
    running = any;
  }
};

TEST(VertexProgramEngine, BitIdenticalAcrossThreadCounts) {
  Rng rng(11);
  Graph g = gen::random_maximal_planar(900, rng).graph();
  ASSERT_GE(static_cast<std::size_t>(g.num_vertices()),
            congest::kParallelGrain);  // the pool path must really engage

  std::vector<std::int64_t> reference;
  long long ref_rounds = 0, ref_messages = 0;
  for (int threads : {1, 2, 4, 8}) {
    Simulator sim(g, ExecutionPolicy{threads});
    EchoMinProgram prog(sim, 64);
    long long rounds = run_vertex_program(sim, prog);
    if (threads == 1) {
      reference = prog.best;
      ref_rounds = rounds;
      ref_messages = sim.messages_sent();
      continue;
    }
    EXPECT_EQ(prog.best, reference) << threads << " threads";
    EXPECT_EQ(rounds, ref_rounds) << threads << " threads";
    EXPECT_EQ(sim.messages_sent(), ref_messages) << threads << " threads";
  }
}

TEST(VertexProgramEngine, PortedPrimitivesMatchAcrossThreadCounts) {
  // The ported workloads themselves (BFS flood + leader election) through
  // both code paths: n is large enough that each round crosses the grain.
  Rng rng(23);
  Graph g = gen::random_maximal_planar(600, rng).graph();
  Simulator seq(g, ExecutionPolicy{1});
  Simulator par(g, ExecutionPolicy{4});

  congest::DistributedBfsResult b1 = congest::distributed_bfs(seq, 0);
  congest::DistributedBfsResult b2 = congest::distributed_bfs(par, 0);
  EXPECT_EQ(b1.dist, b2.dist);
  EXPECT_EQ(b1.parent, b2.parent);  // not just distances: identical trees
  EXPECT_EQ(b1.parent_edge, b2.parent_edge);
  EXPECT_EQ(b1.rounds, b2.rounds);

  congest::LeaderResult l1 = congest::elect_leader(seq);
  congest::LeaderResult l2 = congest::elect_leader(par);
  EXPECT_EQ(l1.leader, l2.leader);
  EXPECT_EQ(l1.rounds, l2.rounds);
  EXPECT_EQ(seq.messages_sent(), par.messages_sent());
}

TEST(VertexProgramEngine, StagedProgramErrorsPropagateToCaller) {
  // A buggy program that violates CONGEST capacity from a worker thread:
  // the deferred check must surface as the usual std::invalid_argument on
  // the calling thread, not crash a worker.
  Graph g = gen::star(600);
  struct BadProgram {
    const Graph& g;
    std::vector<VertexId> leaves;
    bool done = false;
    explicit BadProgram(const Graph& graph) : g(graph) {
      for (VertexId v = 1; v < g.num_vertices(); ++v) leaves.push_back(v);
    }
    [[nodiscard]] std::span<const VertexId> frontier() const {
      return done ? std::span<const VertexId>()
                  : std::span<const VertexId>(leaves);
    }
    void send(VertexId v, VertexSender& out) {
      out.send(g.find_edge(0, v), Message{});
      out.send(g.find_edge(0, v), Message{});  // second use of the same slot
    }
    void receive(VertexId, Inbox, const ShardContext&) {}
    void end_round() { done = true; }
  };
  Simulator sim(g, ExecutionPolicy{4});
  BadProgram prog(g);
  EXPECT_THROW(run_vertex_program(sim, prog), std::invalid_argument);
}

}  // namespace
}  // namespace mns
