// Tests for combinatorial gates (Definition 17): validator behaviour on
// hand-built systems and the boundary construction on planar cell partitions.
#include <gtest/gtest.h>

#include "gen/basic.hpp"
#include "gen/planar.hpp"
#include "graph/algorithms.hpp"
#include "graph/rooted_tree.hpp"
#include "structure/cells.hpp"
#include "structure/gates.hpp"

namespace mns {
namespace {

// Path 0-1-2-3: two cells {0,1} and {2,3}; inter-cell edge {1,2}.
struct PathFixture {
  Graph g = gen::path(4);
  CellPartition cells{std::vector<CellId>{0, 0, 1, 1}};
};

TEST(Gates, ValidatorAcceptsCorrectSystem) {
  PathFixture f;
  GateSystem gs;
  gs.gates = {{1, 2}};
  gs.fences = {{1, 2}};
  double s = -1;
  EXPECT_EQ(validate_gates(f.g, f.cells, gs, &s), "");
  EXPECT_DOUBLE_EQ(s, 1.0);  // 2 fence vertices / 2 cells
}

TEST(Gates, ValidatorRejectsFenceOutsideGate) {
  PathFixture f;
  GateSystem gs;
  gs.gates = {{1, 2}};
  gs.fences = {{0, 1, 2}};
  EXPECT_NE(validate_gates(f.g, f.cells, gs, nullptr), "");
}

TEST(Gates, ValidatorRejectsUncoveredInterCellEdge) {
  PathFixture f;
  GateSystem gs;  // empty system misses edge {1,2}
  std::string err = validate_gates(f.g, f.cells, gs, nullptr);
  EXPECT_NE(err.find("property 3"), std::string::npos);
}

TEST(Gates, ValidatorRejectsBoundaryNotInFence) {
  PathFixture f;
  GateSystem gs;
  gs.gates = {{1, 2}};
  gs.fences = {{1}};  // vertex 2 borders vertex 3 outside the gate
  std::string err = validate_gates(f.g, f.cells, gs, nullptr);
  EXPECT_NE(err.find("property 2"), std::string::npos);
}

TEST(Gates, ValidatorRejectsThreeCellGate) {
  Graph g = gen::path(6);
  CellPartition cells(std::vector<CellId>{0, 0, 1, 1, 2, 2});
  GateSystem gs;
  gs.gates = {{1, 2, 3, 4}};
  gs.fences = {{1, 2, 3, 4}};
  std::string err = validate_gates(g, cells, gs, nullptr);
  EXPECT_NE(err.find("property 4"), std::string::npos);
}

TEST(Gates, ValidatorRejectsSharedNonFenceVertex) {
  Graph g = gen::path(6);
  CellPartition cells(std::vector<CellId>{0, 0, 1, 1, 2, 2});
  GateSystem gs;
  // Vertex 2 is non-fence in both gates.
  gs.gates = {{1, 2, 3}, {2, 3, 4}};
  gs.fences = {{1, 3}, {3, 4}};
  std::string err = validate_gates(g, cells, gs, nullptr);
  // Either property 2 or 5 must fire; both gates misuse vertex 2.
  EXPECT_NE(err, "");
}

TEST(Gates, BoundaryConstructionValidOnPath) {
  PathFixture f;
  GateSystem gs = build_boundary_gates(f.g, f.cells);
  ASSERT_EQ(gs.size(), 1u);
  EXPECT_EQ(gs.gates[0], (std::vector<VertexId>{1, 2}));
  double s = 0;
  EXPECT_EQ(validate_gates(f.g, f.cells, gs, &s), "");
}

class GateSweep : public ::testing::TestWithParam<int> {};

TEST_P(GateSweep, BoundaryGatesValidOnPlanarVoronoiCells) {
  Rng rng(GetParam());
  EmbeddedGraph eg = gen::random_maximal_planar(300, rng);
  const Graph& g = eg.graph();
  // Cells from BFS-tree subtree split (the canonical cell construction).
  RootedTree t = RootedTree::from_bfs(bfs(g, 0), 0);
  TreeCells tc = cells_from_tree_minus_vertices(t, std::vector<VertexId>{0});
  GateSystem gs = build_boundary_gates(g, tc.partition);
  double s = 0;
  EXPECT_EQ(validate_gates(g, tc.partition, gs, &s), "")
      << "seed " << GetParam();
  EXPECT_GT(s, 0.0);
  // Planarity keeps the total fence mass linear in the cell count times a
  // diameter-ish factor; sanity: far below n.
  EXPECT_LT(s, g.num_vertices());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GateSweep, ::testing::Values(1, 5, 9, 13));

}  // namespace
}  // namespace mns
