// Tests for the constructive treewidth machinery of Lemmas 2-3:
// star triangulation, BFS + dual-tree decompositions of embedded graphs, and
// vortex augmentation. Width bounds are checked against the O((g+1)k*l*D)
// shape the paper proves.
#include <gtest/gtest.h>

#include "gen/planar.hpp"
#include "gen/surfaces.hpp"
#include "gen/vortex.hpp"
#include "graph/algorithms.hpp"
#include "structure/surface_decomposition.hpp"

namespace mns {
namespace {

TEST(StarTriangulate, GridBecomesTriangulated) {
  EmbeddedGraph g = gen::grid(4, 4);
  StarTriangulation st = star_triangulate(g);
  EXPECT_EQ(st.first_center, 16);
  // One center per quad face (9) plus one for the outer face.
  EXPECT_EQ(st.embedded.graph().num_vertices(), 16 + 9 + 1);
  EXPECT_EQ(st.embedded.genus(), 0);
  for (int f = 0; f < st.embedded.num_faces(); ++f)
    EXPECT_EQ(st.embedded.faces()[f].size(), 3u);
}

TEST(StarTriangulate, AlreadyTriangulatedUnchanged) {
  Rng rng(1);
  EmbeddedGraph g = gen::random_maximal_planar(30, rng);
  StarTriangulation st = star_triangulate(g);
  EXPECT_EQ(st.first_center, g.graph().num_vertices());
  EXPECT_EQ(st.embedded.graph().num_edges(), g.graph().num_edges());
}

TEST(StarTriangulate, TorusKeepsGenus) {
  EmbeddedGraph t = gen::torus_grid(4, 4);
  StarTriangulation st = star_triangulate(t);
  EXPECT_EQ(st.embedded.genus(), 1);
  for (int f = 0; f < st.embedded.num_faces(); ++f)
    EXPECT_EQ(st.embedded.faces()[f].size(), 3u);
}

class SurfaceDecompSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SurfaceDecompSweep, ValidOnSurfaceGrids) {
  auto [genus, size] = GetParam();
  Rng rng(99);
  EmbeddedGraph g = gen::surface_grid(size, size, genus, rng);
  TreeDecomposition td = surface_bfs_decomposition(g, 0);
  EXPECT_EQ(td.validate(g.graph()), "")
      << "genus " << genus << " size " << size;
  // Width bound: O((g+1) * BFS height). Constant 8 covers the 3-corner-path
  // + 4g generator-path structure with the +1 triangulation slack.
  int height = bfs(g.graph(), 0).max_distance();
  EXPECT_LE(td.width(), 8 * (genus + 1) * (height + 2));
}

INSTANTIATE_TEST_SUITE_P(
    Params, SurfaceDecompSweep,
    ::testing::Combine(::testing::Values(0, 1, 2), ::testing::Values(5, 9)));

TEST(SurfaceDecomp, ValidOnMaximalPlanar) {
  Rng rng(7);
  EmbeddedGraph g = gen::random_maximal_planar(150, rng);
  TreeDecomposition td = surface_bfs_decomposition(g, 0);
  EXPECT_EQ(td.validate(g.graph()), "");
}

TEST(SurfaceDecomp, WidthTracksDiameterNotSize) {
  // Long thin grid: diameter dominated by the long side, but width should
  // track the SHORT side (BFS from the middle of the long side gives height
  // ~ rows/2 + cols; choose rows small).
  EmbeddedGraph g = gen::grid(3, 40);
  TreeDecomposition td = surface_bfs_decomposition(g, 1 * 40 + 20);
  EXPECT_EQ(td.validate(g.graph()), "");
  int height = bfs(g.graph(), 1 * 40 + 20).max_distance();
  EXPECT_LE(td.width(), 8 * (height + 2));
  EXPECT_LT(td.width(), 60);  // far below n = 120
}

TEST(VortexAugment, SingleVortexOnGrid) {
  Rng rng(21);
  EmbeddedGraph base = gen::grid(6, 6);
  // Vortex on the outer face.
  int outer = -1;
  for (int f = 0; f < base.num_faces(); ++f)
    if (base.faces()[f].size() > 4) outer = f;
  ASSERT_NE(outer, -1);
  auto cyc = base.face_vertices(outer);
  gen::VortexResult vr = gen::add_vortex(base.graph(), cyc, 2, 5, rng);

  TreeDecomposition td_base = surface_bfs_decomposition(base, 0);
  std::vector<VortexSpec> specs{vr.vortex};
  TreeDecomposition td_full = augment_with_vortices(td_base, vr.graph, specs);
  EXPECT_EQ(td_full.validate(vr.graph), "");
  // Width grows by at most k * (arc span) per bag; sanity: bounded by
  // base width * (depth+1) + internals.
  EXPECT_LE(td_full.width(), (td_base.width() + 1) * 3 + 5);
}

TEST(VortexAugment, MultipleVorticesOnTorus) {
  Rng rng(22);
  EmbeddedGraph base = gen::torus_grid(6, 6);
  // Two disjoint quad faces as vortex cycles.
  std::vector<std::vector<VertexId>> cycles;
  std::vector<char> used(base.graph().num_vertices(), 0);
  for (int f = 0; f < base.num_faces() && cycles.size() < 2; ++f) {
    auto fv = base.face_vertices(f);
    bool ok = true;
    for (VertexId v : fv)
      if (used[v]) ok = false;
    if (!ok) continue;
    for (VertexId v : fv) used[v] = 1;
    cycles.push_back(fv);
  }
  ASSERT_EQ(cycles.size(), 2u);

  Graph current = base.graph();
  std::vector<VortexSpec> specs;
  for (const auto& cyc : cycles) {
    gen::VortexResult vr = gen::add_vortex(current, cyc, 2, 3, rng);
    current = std::move(vr.graph);
    specs.push_back(std::move(vr.vortex));
  }
  TreeDecomposition td_base = surface_bfs_decomposition(base, 0);
  TreeDecomposition td_full = augment_with_vortices(td_base, current, specs);
  EXPECT_EQ(td_full.validate(current), "");
}

}  // namespace
}  // namespace mns
