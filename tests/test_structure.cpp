// Tests for the structure module: tree decompositions (axioms, heuristics),
// clique-sum decompositions (Definition 8 properties), folding (§2.2), cell
// partitions and cell assignment (Definitions 14-15, Lemmas 4-6).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "graph/rooted_tree.hpp"
#include "structure/cells.hpp"
#include "structure/clique_sum.hpp"
#include "structure/tree_decomposition.hpp"

namespace mns {
namespace {

Graph path_graph(VertexId n) {
  GraphBuilder b(n);
  for (VertexId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

Graph cycle_graph(VertexId n) {
  GraphBuilder b(n);
  for (VertexId v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  return b.build();
}

// ---------------------------------------------------------------- TD tests

TEST(TreeDecomposition, PathDecompositionIsValid) {
  Graph g = path_graph(5);
  // Bags {0,1},{1,2},{2,3},{3,4} chained.
  std::vector<std::vector<VertexId>> bags{{0, 1}, {1, 2}, {2, 3}, {3, 4}};
  std::vector<BagId> parent{kInvalidBag, 0, 1, 2};
  TreeDecomposition td(bags, parent);
  EXPECT_EQ(td.validate(g), "");
  EXPECT_EQ(td.width(), 1);
  EXPECT_EQ(td.depth(), 3);
  EXPECT_EQ(td.root(), 0);
}

TEST(TreeDecomposition, DetectsMissingVertex) {
  Graph g = path_graph(3);
  std::vector<std::vector<VertexId>> bags{{0, 1}};
  std::vector<BagId> parent{kInvalidBag};
  TreeDecomposition td(bags, parent);
  EXPECT_NE(td.validate(g), "");
}

TEST(TreeDecomposition, DetectsUncoveredEdge) {
  Graph g = cycle_graph(4);
  std::vector<std::vector<VertexId>> bags{{0, 1}, {1, 2}, {2, 3}};
  std::vector<BagId> parent{kInvalidBag, 0, 1};
  TreeDecomposition td(bags, parent);
  EXPECT_NE(td.validate(g), "");  // edge {3,0} uncovered
}

TEST(TreeDecomposition, DetectsDisconnectedHolderSet) {
  Graph g = path_graph(4);
  std::vector<std::vector<VertexId>> bags{{0, 1}, {1, 2}, {2, 3, 0}};
  std::vector<BagId> parent{kInvalidBag, 0, 1};
  // Vertex 0 is in bags 0 and 2 but not 1.
  TreeDecomposition td(bags, parent);
  std::string err = td.validate(g);
  EXPECT_NE(err.find("not connected"), std::string::npos);
}

TEST(TreeDecomposition, RejectsMalformedTrees) {
  std::vector<std::vector<VertexId>> bags{{0}, {0}};
  EXPECT_THROW(
      TreeDecomposition(bags, std::vector<BagId>{kInvalidBag, kInvalidBag}),
      std::invalid_argument);  // two roots
  EXPECT_THROW(TreeDecomposition(bags, std::vector<BagId>{1, 0}),
               std::invalid_argument);  // cycle / no root
  EXPECT_THROW(TreeDecomposition({}, {}), std::invalid_argument);
}

TEST(TreeDecomposition, BagsContaining) {
  std::vector<std::vector<VertexId>> bags{{0, 1}, {1, 2}};
  TreeDecomposition td(bags, std::vector<BagId>{kInvalidBag, 0});
  EXPECT_EQ(td.bags_containing(1), (std::vector<BagId>{0, 1}));
  EXPECT_EQ(td.bags_containing(2), (std::vector<BagId>{1}));
}

TEST(MinDegreeDecomposition, ValidOnCycle) {
  Graph g = cycle_graph(8);
  TreeDecomposition td = min_degree_decomposition(g);
  EXPECT_EQ(td.validate(g), "");
  EXPECT_EQ(td.width(), 2);  // cycles have treewidth exactly 2
}

TEST(MinDegreeDecomposition, ValidOnTree) {
  Graph g = path_graph(10);
  TreeDecomposition td = min_degree_decomposition(g);
  EXPECT_EQ(td.validate(g), "");
  EXPECT_EQ(td.width(), 1);
}

TEST(MinDegreeDecomposition, ExactOnCompleteGraph) {
  GraphBuilder b(5);
  for (VertexId u = 0; u < 5; ++u)
    for (VertexId v = u + 1; v < 5; ++v) b.add_edge(u, v);
  Graph g = b.build();
  TreeDecomposition td = min_degree_decomposition(g);
  EXPECT_EQ(td.validate(g), "");
  EXPECT_EQ(td.width(), 4);
}

class MinDegreeSweep : public ::testing::TestWithParam<int> {};

TEST_P(MinDegreeSweep, AlwaysValidOnRandomGraphs) {
  Rng rng(GetParam());
  const VertexId n = 40;
  std::uniform_int_distribution<VertexId> pick(0, n - 1);
  GraphBuilder b(n);
  for (VertexId v = 1; v < n; ++v) {
    std::uniform_int_distribution<VertexId> anc(0, v - 1);
    b.add_edge(anc(rng), v);  // spanning tree for connectivity
  }
  for (int i = 0; i < 30; ++i) {
    VertexId u = pick(rng), v = pick(rng);
    if (u != v) b.add_edge(u, v);
  }
  Graph g = b.build();
  TreeDecomposition td = min_degree_decomposition(g);
  EXPECT_EQ(td.validate(g), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinDegreeSweep,
                         ::testing::Values(3, 7, 21, 64, 91));

// ------------------------------------------------------- clique-sum tests

// G = two triangles sharing edge {1,2}: a 2-clique-sum.
struct TwoTriangles {
  Graph g;
  CliqueSumDecomposition csd;
};
TwoTriangles two_triangles() {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 2);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  Graph g = b.build();
  EdgeId e01 = g.find_edge(0, 1), e02 = g.find_edge(0, 2),
         e12 = g.find_edge(1, 2), e13 = g.find_edge(1, 3),
         e23 = g.find_edge(2, 3);
  std::vector<std::vector<VertexId>> verts{{0, 1, 2}, {1, 2, 3}};
  std::vector<std::vector<EdgeId>> edges{{e01, e02, e12}, {e12, e13, e23}};
  std::vector<BagId> parent{kInvalidBag, 0};
  std::vector<std::vector<VertexId>> cliques{{}, {1, 2}};
  return {g, CliqueSumDecomposition(verts, edges, parent, cliques)};
}

TEST(CliqueSum, TwoTrianglesValid) {
  TwoTriangles t = two_triangles();
  EXPECT_EQ(t.csd.validate(t.g), "");
  EXPECT_EQ(t.csd.max_clique_size(), 2);
  EXPECT_EQ(t.csd.depth(), 1);
}

TEST(CliqueSum, DetectsWrongClique) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  Graph g = b.build();
  std::vector<std::vector<VertexId>> verts{{0, 1, 2}, {1, 2, 3}};
  std::vector<std::vector<EdgeId>> edges{{0, 1}, {1, 2}};
  std::vector<BagId> parent{kInvalidBag, 0};
  // Declared clique {1} differs from true intersection {1,2}.
  std::vector<std::vector<VertexId>> cliques{{}, {1}};
  CliqueSumDecomposition csd(verts, edges, parent, cliques);
  EXPECT_NE(csd.validate(g), "");
}

TEST(CliqueSum, DetectsUncoveredEdge) {
  TwoTriangles t = two_triangles();
  // Rebuild with an edge list missing e13.
  EdgeId e01 = t.g.find_edge(0, 1), e02 = t.g.find_edge(0, 2),
         e12 = t.g.find_edge(1, 2), e23 = t.g.find_edge(2, 3);
  std::vector<std::vector<VertexId>> verts{{0, 1, 2}, {1, 2, 3}};
  std::vector<std::vector<EdgeId>> edges{{e01, e02, e12}, {e12, e23}};
  std::vector<BagId> parent{kInvalidBag, 0};
  std::vector<std::vector<VertexId>> cliques{{}, {1, 2}};
  CliqueSumDecomposition csd(verts, edges, parent, cliques);
  std::string err = csd.validate(t.g);
  EXPECT_NE(err.find("property 5"), std::string::npos);
}

TEST(CliqueSum, FromTreeDecomposition) {
  Graph g = path_graph(5);
  std::vector<std::vector<VertexId>> bags{{0, 1}, {1, 2}, {2, 3}, {3, 4}};
  std::vector<BagId> parent{kInvalidBag, 0, 1, 2};
  TreeDecomposition td(bags, parent);
  CliqueSumDecomposition csd = clique_sum_from_tree_decomposition(td, g);
  EXPECT_EQ(csd.validate(g), "");
  EXPECT_EQ(csd.max_clique_size(), 1);
}

// Folding: long path decomposition compresses to logarithmic depth.
TEST(Folding, PathDepthBecomesLogarithmic) {
  const VertexId n = 257;
  Graph g = path_graph(n);
  std::vector<std::vector<VertexId>> bags;
  std::vector<BagId> parent;
  for (VertexId v = 0; v + 1 < n; ++v) {
    bags.push_back({v, v + 1});
    parent.push_back(v == 0 ? kInvalidBag : v - 1);
  }
  TreeDecomposition td(bags, parent);
  CliqueSumDecomposition csd = clique_sum_from_tree_decomposition(td, g);
  EXPECT_EQ(csd.depth(), static_cast<int>(bags.size()) - 1);
  FoldedDecomposition fd = fold_decomposition(csd);
  EXPECT_LE(fd.depth, 10);  // ~log2(256) = 8
  // Every original bag appears in exactly one group.
  std::vector<int> seen(csd.num_bags(), 0);
  for (const auto& grp : fd.groups)
    for (BagId b : grp) ++seen[b];
  for (BagId b = 0; b < csd.num_bags(); ++b) EXPECT_EQ(seen[b], 1);
  // Separators are at most double edges.
  for (BagId v = 0; v < fd.num_nodes(); ++v)
    EXPECT_LE(fd.parent_separator_bags[v].size(), 2u);
}

TEST(Folding, FoldedVertexSetsStayConnected) {
  // A random clique-sum-like chain; verify per-vertex group-connectivity in
  // the folded tree (the property Theorem 7's proof relies on).
  const VertexId n = 64;
  Graph g = path_graph(n);
  std::vector<std::vector<VertexId>> bags;
  std::vector<BagId> parent;
  for (VertexId v = 0; v + 1 < n; ++v) {
    bags.push_back({v, v + 1});
    parent.push_back(v == 0 ? kInvalidBag : v - 1);
  }
  TreeDecomposition td(bags, parent);
  CliqueSumDecomposition csd = clique_sum_from_tree_decomposition(td, g);
  FoldedDecomposition fd = fold_decomposition(csd);

  // node sets per vertex.
  std::vector<std::set<BagId>> nodes_of_vertex(n);
  for (BagId node = 0; node < fd.num_nodes(); ++node)
    for (BagId b : fd.groups[node])
      for (VertexId v : csd.bag_vertices(b)) nodes_of_vertex[v].insert(node);
  for (VertexId v = 0; v < n; ++v) {
    const auto& hs = nodes_of_vertex[v];
    int roots = 0;
    for (BagId x : hs)
      if (fd.parent[x] == kInvalidBag || !hs.count(fd.parent[x])) ++roots;
    EXPECT_EQ(roots, 1) << "vertex " << v << " splits in the folded tree";
  }
}

TEST(Folding, BranchyTreeDepthIsPolylog) {
  // Caterpillar decomposition tree: a long chain with a leaf bag per link.
  Rng rng(5);
  const int chain = 200;
  std::vector<std::vector<VertexId>> bags;
  std::vector<BagId> parent;
  // Vertices: chain vertex i = i; leaf vertex i = chain + i.
  GraphBuilder gb(2 * chain);
  for (int i = 0; i + 1 < chain; ++i) gb.add_edge(i, i + 1);
  for (int i = 0; i < chain; ++i) gb.add_edge(i, chain + i);
  Graph g = gb.build();
  for (int i = 0; i < chain; ++i) {
    bags.push_back(i == 0 ? std::vector<VertexId>{0}
                          : std::vector<VertexId>{static_cast<VertexId>(i - 1),
                                                  static_cast<VertexId>(i)});
    parent.push_back(i == 0 ? kInvalidBag : i - 1);
  }
  for (int i = 0; i < chain; ++i) {
    bags.push_back({static_cast<VertexId>(i), static_cast<VertexId>(chain + i)});
    parent.push_back(i);
  }
  TreeDecomposition td(bags, parent);
  CliqueSumDecomposition csd = clique_sum_from_tree_decomposition(td, g);
  FoldedDecomposition fd = fold_decomposition(csd);
  EXPECT_LE(fd.depth, 20);  // O(log^2) of 400 bags
}

// ------------------------------------------------------------- cell tests

TEST(Cells, FromTreeMinusApex) {
  // Wheel: hub 0, ring 1..6. BFS tree from 0 = star. Removing hub leaves 6
  // singleton cells.
  const VertexId n = 7;
  GraphBuilder b(n);
  for (VertexId v = 1; v < n; ++v) {
    b.add_edge(0, v);
    b.add_edge(v, v == n - 1 ? 1 : v + 1);
  }
  Graph g = b.build();
  RootedTree t = RootedTree::from_bfs(bfs(g, 0), 0);
  std::vector<VertexId> removed{0};
  TreeCells tc = cells_from_tree_minus_vertices(t, removed);
  EXPECT_EQ(tc.partition.num_cells(), 6);
  for (CellId c = 0; c < 6; ++c) {
    EXPECT_EQ(tc.partition.members(c).size(), 1u);
    EXPECT_EQ(tc.uplink_target[c], 0);
  }
  EXPECT_EQ(tc.partition.validate(g, 0), "");
}

TEST(Cells, SubtreesBecomeCells) {
  // Path rooted in the middle; removing the root leaves 2 cells.
  Graph g = path_graph(9);
  RootedTree t = RootedTree::from_bfs(bfs(g, 4), 4);
  std::vector<VertexId> removed{4};
  TreeCells tc = cells_from_tree_minus_vertices(t, removed);
  EXPECT_EQ(tc.partition.num_cells(), 2);
  EXPECT_EQ(tc.partition.validate(g, 3), "");
  for (CellId c = 0; c < 2; ++c) EXPECT_EQ(tc.uplink_target[c], 4);
}

TEST(Cells, ValidateCatchesDisconnectedCell) {
  Graph g = path_graph(5);
  // Claim {0, 2} is one cell: disconnected.
  std::vector<CellId> cell_of{0, kInvalidCell, 0, kInvalidCell, kInvalidCell};
  CellPartition cp(cell_of);
  EXPECT_NE(cp.validate(g, -1), "");
}

TEST(Cells, ValidateCatchesOversizedDiameter) {
  Graph g = path_graph(6);
  std::vector<CellId> cell_of{0, 0, 0, 0, 0, 0};
  CellPartition cp(cell_of);
  EXPECT_EQ(cp.validate(g, 5), "");
  EXPECT_NE(cp.validate(g, 4), "");
}

TEST(CellAssignment, PartsMissAtMostTwoCells) {
  // 4 cells; 3 parts touching various subsets.
  std::vector<std::vector<CellId>> intersects{
      {0, 1, 2, 3}, {0, 1}, {1, 2, 3}};
  CellAssignment a = assign_cells(intersects, 4);
  for (std::size_t p = 0; p < intersects.size(); ++p) {
    EXPECT_LE(a.missing_cells_of_part[p].size(), 2u) << "part " << p;
    // assigned + missing == intersected
    std::set<CellId> got(a.cells_of_part[p].begin(), a.cells_of_part[p].end());
    for (CellId c : a.missing_cells_of_part[p]) got.insert(c);
    EXPECT_EQ(got, std::set<CellId>(intersects[p].begin(), intersects[p].end()));
  }
}

TEST(CellAssignment, BetaBoundedByMaxCellDegree) {
  std::vector<std::vector<CellId>> intersects{{0, 1, 2}, {0, 1, 2}, {0, 1, 2}};
  CellAssignment a = assign_cells(intersects, 3);
  EXPECT_LE(a.beta, 3);
}

TEST(CellAssignment, EmptyInputs) {
  CellAssignment a = assign_cells({}, 0);
  EXPECT_EQ(a.beta, 0);
  CellAssignment b = assign_cells({{}, {}}, 3);
  EXPECT_EQ(b.beta, 0);
  EXPECT_TRUE(b.cells_of_part[0].empty());
}

class CellAssignmentSweep : public ::testing::TestWithParam<int> {};

TEST_P(CellAssignmentSweep, InvariantsHoldOnRandomIncidences) {
  Rng rng(GetParam());
  const CellId C = 30;
  const int P = 40;
  std::uniform_int_distribution<CellId> pick(0, C - 1);
  std::uniform_int_distribution<int> cnt(1, 8);
  std::vector<std::vector<CellId>> intersects(P);
  for (int p = 0; p < P; ++p) {
    int k = cnt(rng);
    std::set<CellId> s;
    for (int i = 0; i < k; ++i) s.insert(pick(rng));
    intersects[p].assign(s.begin(), s.end());
  }
  CellAssignment a = assign_cells(intersects, C);
  // (i) each part misses at most 2 cells.
  for (int p = 0; p < P; ++p)
    EXPECT_LE(a.missing_cells_of_part[p].size(), 2u);
  // (ii) per-cell load equals beta at most; recompute loads directly.
  std::vector<int> load(C, 0);
  for (int p = 0; p < P; ++p)
    for (CellId c : a.cells_of_part[p]) ++load[c];
  for (CellId c = 0; c < C; ++c) EXPECT_LE(load[c], a.beta);
  // assigned ∪ missing == intersected, disjointly.
  for (int p = 0; p < P; ++p) {
    std::set<CellId> as(a.cells_of_part[p].begin(), a.cells_of_part[p].end());
    std::set<CellId> ms(a.missing_cells_of_part[p].begin(),
                        a.missing_cells_of_part[p].end());
    for (CellId c : ms) EXPECT_FALSE(as.count(c));
    std::set<CellId> un = as;
    un.insert(ms.begin(), ms.end());
    EXPECT_EQ(un,
              std::set<CellId>(intersects[p].begin(), intersects[p].end()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CellAssignmentSweep,
                         ::testing::Values(2, 9, 13, 31, 55, 77));

}  // namespace
}  // namespace mns
