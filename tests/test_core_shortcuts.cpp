// Tests for the shortcut framework: partitions (Def 9), metrics (Defs 10-13),
// the uniform constructions, the Steiner-minor local trees, and sanity of the
// quality numbers on canonical instances (wheel, grid stripes).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/construct_tree.hpp"
#include "core/shortcut_engine.hpp"
#include "core/local_tree.hpp"
#include "core/partition.hpp"
#include "core/shortcut.hpp"
#include "gen/basic.hpp"
#include "gen/planar.hpp"
#include "graph/algorithms.hpp"

namespace mns {
namespace {

RootedTree bfs_tree(const Graph& g, VertexId root) {
  return RootedTree::from_bfs(bfs(g, root), root);
}

Shortcut engine_build(const Graph& g, const RootedTree& t, const Partition& p,
                      const StructuralCertificate& cert) {
  return ShortcutEngine::global().build(g, t, p, cert).shortcut;
}

TEST(Partition, FromPartsAndValidate) {
  Graph g = gen::cycle(8);
  Partition p =
      Partition::from_parts(8, {{0, 1, 2}, {4, 5}, {7}});
  EXPECT_EQ(p.num_parts(), 3);
  EXPECT_EQ(p.part_of(1), 0);
  EXPECT_EQ(p.part_of(3), kNoPart);
  EXPECT_EQ(p.validate(g), "");
}

TEST(Partition, ValidateRejectsDisconnectedPart) {
  Graph g = gen::cycle(8);
  Partition p = Partition::from_parts(8, {{0, 2}});
  EXPECT_NE(p.validate(g), "");
}

TEST(Partition, RejectsOverlapAndSparseIds) {
  EXPECT_THROW(Partition::from_parts(4, {{0, 1}, {1, 2}}),
               std::invalid_argument);
  std::vector<PartId> sparse{0, 2, kNoPart, kNoPart};  // id 1 missing
  EXPECT_THROW({ Partition bad(sparse); }, std::invalid_argument);
}

TEST(Partition, VoronoiCoversAndConnects) {
  Rng rng(3);
  Graph g = gen::grid(10, 10).graph();
  Partition p = voronoi_partition(g, 7, rng);
  EXPECT_EQ(p.num_parts(), 7);
  EXPECT_EQ(p.validate(g), "");
  // Voronoi over a connected graph assigns everyone.
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    EXPECT_NE(p.part_of(v), kNoPart);
}

TEST(Partition, RingSectorsOnWheel) {
  Partition p = ring_sectors(9, 1, 8, 4);
  EXPECT_EQ(p.num_parts(), 4);
  EXPECT_EQ(p.part_of(0), kNoPart);  // hub unassigned
  Graph w = gen::wheel(9);
  EXPECT_EQ(p.validate(w), "");
}

TEST(Partition, GridStripes) {
  Partition p = grid_stripes(6, 4, 2);
  EXPECT_EQ(p.num_parts(), 3);
  Graph g = gen::grid(6, 4).graph();
  EXPECT_EQ(p.validate(g), "");
}

TEST(Partition, GridSerpentinesAreConnectedSnakes) {
  const int rows = 12, cols = 12, width = 3;
  Graph g = gen::grid(rows, cols).graph();
  Partition p = grid_serpentines(rows, cols, width);
  EXPECT_EQ(p.num_parts(), cols / width);
  EXPECT_EQ(p.validate(g), "");
  // Each serpentine's induced diameter is ~rows*width/2, far above the grid
  // diameter rows+cols — the adversarial property the parts exist for.
  for (PartId q = 0; q < p.num_parts(); ++q) {
    InducedSubgraph sub = induced_subgraph(g, p.members(q));
    EXPECT_GE(diameter_exact(sub.graph), rows * width / 2 - width);
    EXPECT_GT(diameter_exact(sub.graph), rows + cols - 2);
  }
  EXPECT_THROW(grid_serpentines(4, 4, 0), std::invalid_argument);
  EXPECT_THROW(grid_serpentines(4, 4, 5), std::invalid_argument);
}

TEST(Metrics, TreeDiameterMatchesGraphDiameter) {
  Graph g = gen::path(17);
  RootedTree t = bfs_tree(g, 5);
  EXPECT_EQ(tree_diameter(t), 16);
}

TEST(Metrics, EmptyShortcutBlocks) {
  // With no shortcut edges, every part vertex is its own block.
  Graph g = gen::cycle(12);
  RootedTree t = bfs_tree(g, 0);
  Partition p = Partition::from_parts(12, {{3, 4, 5}, {8, 9}});
  Shortcut sc;
  sc.edges_of_part.resize(2);
  ShortcutMetrics m = measure_shortcut(g, t, p, sc);
  EXPECT_EQ(m.congestion, 0);
  EXPECT_EQ(m.block_of_part[0], 3);
  EXPECT_EQ(m.block_of_part[1], 2);
  EXPECT_EQ(m.block, 3);
}

TEST(Metrics, CongestionCountsSharedEdges) {
  Graph g = gen::star(4);  // center 0
  RootedTree t = bfs_tree(g, 0);
  Partition p = Partition::from_parts(5, {{1}, {2}, {3}});
  EdgeId e01 = g.find_edge(0, 1);
  Shortcut sc;
  sc.edges_of_part = {{e01}, {e01}, {e01}};
  ShortcutMetrics m = measure_shortcut(g, t, p, sc);
  EXPECT_EQ(m.congestion, 3);
}

TEST(Metrics, ValidateTreeRestriction) {
  Graph g = gen::cycle(6);
  RootedTree t = bfs_tree(g, 0);
  // The cycle has exactly one non-tree edge; find it.
  std::set<EdgeId> tree_edges;
  for (VertexId v = 1; v < 6; ++v) tree_edges.insert(t.parent_edge(v));
  EdgeId non_tree = kInvalidEdge;
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    if (!tree_edges.count(e)) non_tree = e;
  ASSERT_NE(non_tree, kInvalidEdge);

  Shortcut ok;
  ok.edges_of_part = {{*tree_edges.begin()}};
  EXPECT_EQ(validate_tree_restricted(g, t, ok), "");

  Shortcut bad;
  bad.edges_of_part = {{non_tree}};
  EXPECT_NE(validate_tree_restricted(g, t, bad), "");

  Shortcut dup;
  dup.edges_of_part = {{*tree_edges.begin(), *tree_edges.begin()}};
  EXPECT_NE(validate_tree_restricted(g, t, dup), "");
}

TEST(SteinerShortcut, SingleBlockPerPart) {
  Rng rng(5);
  Graph g = gen::grid(8, 8).graph();
  RootedTree t = bfs_tree(g, 0);
  Partition p = voronoi_partition(g, 6, rng);
  Shortcut sc = engine_build(g, t, p, steiner_certificate());
  EXPECT_EQ(validate_tree_restricted(g, t, sc), "");
  ShortcutMetrics m = measure_shortcut(g, t, p, sc);
  EXPECT_EQ(m.block, 1);
}

TEST(AncestorShortcut, FullClimbGivesOneBlock) {
  Rng rng(6);
  Graph g = gen::grid(6, 6).graph();
  RootedTree t = bfs_tree(g, 0);
  Partition p = voronoi_partition(g, 5, rng);
  Shortcut sc = engine_build(g, t, p, ancestor_certificate(-1));
  EXPECT_EQ(validate_tree_restricted(g, t, sc), "");
  ShortcutMetrics m = measure_shortcut(g, t, p, sc);
  EXPECT_EQ(m.block, 1);  // everyone reaches the root
}

TEST(AncestorShortcut, ZeroLevelsIsEmpty) {
  Graph g = gen::path(6);
  RootedTree t = bfs_tree(g, 0);
  Partition p = Partition::from_parts(6, {{2, 3}});
  Shortcut sc = engine_build(g, t, p, ancestor_certificate(0));
  EXPECT_TRUE(sc.edges_of_part[0].empty());
}

TEST(GreedyShortcut, ValidAndConnectsParts) {
  Rng rng(7);
  Graph g = gen::grid(10, 10).graph();
  RootedTree t = bfs_tree(g, 0);
  Partition p = voronoi_partition(g, 8, rng);
  Shortcut sc = engine_build(g, t, p, greedy_certificate());
  EXPECT_EQ(validate_tree_restricted(g, t, sc), "");
  ShortcutMetrics m = measure_shortcut(g, t, p, sc);
  EXPECT_GE(m.block, 1);
  EXPECT_LE(m.block, 100);
  EXPECT_GE(m.congestion, 1);
}

TEST(CappedGreedy, RespectsCongestionCap) {
  Rng rng(8);
  Graph g = gen::grid(12, 12).graph();
  RootedTree t = bfs_tree(g, 0);
  Partition p = voronoi_partition(g, 20, rng);
  for (int cap : {1, 2, 4}) {
    std::vector<std::vector<VertexId>> sets;
    for (PartId q = 0; q < p.num_parts(); ++q) {
      auto m = p.members(q);
      sets.emplace_back(m.begin(), m.end());
    }
    auto res = capped_greedy(t, sets, cap);
    std::vector<int> load(t.num_vertices(), 0);
    for (const auto& es : res)
      for (VertexId v : es) ++load[v];
    for (VertexId v = 0; v < t.num_vertices(); ++v)
      EXPECT_LE(load[v], cap) << "cap " << cap;
  }
}

TEST(WheelCase, RingPartsGetGoodQualityViaApexConstruction) {
  // The paper's motivating example: wheel graph, ring split into sectors.
  // Without shortcuts each sector has Theta(n) diameter; the apex-aware
  // construction (Lemma 9) must deliver small block and congestion.
  const VertexId n = 202;  // hub + 201-ring... hub 0, ring 1..201
  Graph g = gen::wheel(n);
  RootedTree t = bfs_tree(g, 0);  // BFS tree = star from hub
  Partition p = ring_sectors(n, 1, n - 1, 6);
  Shortcut sc = engine_build(g, t, p, apex_certificate({0}));
  EXPECT_EQ(validate_tree_restricted(g, t, sc), "");
  ShortcutMetrics m = measure_shortcut(g, t, p, sc);
  // Cells are singleton spokes; the assignment gives each sector nearly all
  // of its spokes: block small, congestion small.
  EXPECT_LE(m.block, 8);
  EXPECT_LE(m.congestion, 8);
}

TEST(LocalTree, SteinerMinorOfPathSubset) {
  Graph g = gen::path(10);
  RootedTree t = bfs_tree(g, 0);
  std::vector<VertexId> verts{2, 5, 9};
  LocalTree lt = steiner_minor(t, verts);
  EXPECT_EQ(lt.tree.num_vertices(), 3);
  EXPECT_EQ(lt.to_global, (std::vector<VertexId>{2, 5, 9}));
  // Path: 9 hangs under 5 hangs under 2; all contracted => virtual edges.
  VertexId l2 = 0, l5 = 1, l9 = 2;
  EXPECT_EQ(lt.tree.root(), l2);
  EXPECT_EQ(lt.tree.parent(l5), l2);
  EXPECT_EQ(lt.tree.parent(l9), l5);
  EXPECT_EQ(lt.real_parent_edge[l5], kInvalidEdge);
  EXPECT_EQ(lt.real_parent_edge[l9], kInvalidEdge);
}

TEST(LocalTree, RealEdgesDetected) {
  Graph g = gen::path(6);
  RootedTree t = bfs_tree(g, 0);
  std::vector<VertexId> verts{1, 2, 4};
  LocalTree lt = steiner_minor(t, verts);
  // Edge (2 -> 1) is a real tree edge; (4 -> 2) is contracted.
  VertexId l1 = 0, l2 = 1, l4 = 2;
  EXPECT_EQ(lt.tree.parent(l2), l1);
  EXPECT_NE(lt.real_parent_edge[l2], kInvalidEdge);
  EXPECT_EQ(g.other_endpoint(lt.real_parent_edge[l2], 2), 1);
  EXPECT_EQ(lt.tree.parent(l4), l2);
  EXPECT_EQ(lt.real_parent_edge[l4], kInvalidEdge);
}

TEST(LocalTree, BranchingLcaOutsideSet) {
  // Star: terminals are three leaves; LCA (center) not in the set.
  Graph g = gen::star(4);
  RootedTree t = bfs_tree(g, 0);
  std::vector<VertexId> verts{1, 2, 3};
  LocalTree lt = steiner_minor(t, verts);
  EXPECT_EQ(lt.tree.num_vertices(), 3);
  // One terminal becomes the local root; the others attach virtually.
  int roots = 0;
  for (VertexId v = 0; v < 3; ++v)
    if (lt.tree.parent(v) == kInvalidVertex) ++roots;
  EXPECT_EQ(roots, 1);
  for (VertexId v = 0; v < 3; ++v) {
    if (v != lt.tree.root()) {
      EXPECT_EQ(lt.real_parent_edge[v], kInvalidEdge);
    }
  }
}

TEST(LocalTree, DiameterStaysBounded) {
  Rng rng(11);
  EmbeddedGraph eg = gen::random_maximal_planar(300, rng);
  const Graph& g = eg.graph();
  RootedTree t = bfs_tree(g, 0);
  std::uniform_int_distribution<VertexId> pick(0, g.num_vertices() - 1);
  std::vector<VertexId> verts;
  for (int i = 0; i < 60; ++i) verts.push_back(pick(rng));
  LocalTree lt = steiner_minor(t, verts);
  // Minor of T: local depth cannot exceed T's vertex count and in practice
  // stays near T's height; sanity-bound it by T's height + 2.
  EXPECT_LE(lt.tree.height(), t.height() + 2);
}

class UniformConstructionSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(UniformConstructionSweep, AllConstructionsValidOnRandomInstances) {
  auto [seed, num_parts] = GetParam();
  Rng rng(seed);
  EmbeddedGraph eg = gen::random_maximal_planar(240, rng);
  const Graph& g = eg.graph();
  Rng rootrng(seed + 1);
  RootedTree t = bfs_tree(g, approximate_center(g, rootrng));
  Partition p = voronoi_partition(g, num_parts, rng);
  ASSERT_EQ(p.validate(g), "");

  for (const StructuralCertificate& cert :
       {greedy_certificate(), steiner_certificate()}) {
    BuildResult r = ShortcutEngine::global().build(g, t, p, cert);
    EXPECT_EQ(validate_tree_restricted(g, t, r.shortcut), "");
    EXPECT_GE(r.metrics.quality, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Params, UniformConstructionSweep,
    ::testing::Combine(::testing::Values(1, 2, 3), ::testing::Values(4, 16)));

}  // namespace
}  // namespace mns
